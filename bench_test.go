// Package repro's root benchmarks time the workload behind each experiment
// table E1–E14 (see DESIGN.md for the experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports, alongside ns/op, a domain metric via
// b.ReportMetric (rounds, messages, executions) so benchmark output doubles
// as a compact reproduction record.
package repro

import (
	"errors"
	"fmt"
	"testing"

	"repro/agree"
	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/mr99"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ffd"
	"repro/internal/lockstep"
	"repro/internal/sim"
	"repro/internal/simulate"
	"repro/internal/smr"
	"repro/internal/snapshot"

	"repro/internal/async"
)

// run executes one agree.Run and fails the benchmark on any error.
func run(b *testing.B, cfg agree.Config) *agree.Report {
	b.Helper()
	rep, err := agree.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		b.Fatal(rep.ConsensusErr)
	}
	return rep
}

// BenchmarkE1RoundsVsFaults times the Theorem 1 workload: one worst-case
// CRW execution with n=32, f=8 (decides in exactly 9 rounds).
func BenchmarkE1RoundsVsFaults(b *testing.B) {
	var rounds int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 32, Faults: agree.CoordinatorCrashes(8)})
		rounds = rep.MaxDecideRound()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkE1FailureFree times the one-round happy path at n=64.
func BenchmarkE1FailureFree(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 64})
		msgs = rep.Counters.TotalMsgs()
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkE2BitComplexity times the Theorem 2 adversarial workload (full
// data steps, no commits, t+1 rounds) at n=32, b=64.
func BenchmarkE2BitComplexity(b *testing.B) {
	var bits int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 32, Bits: 64,
			Faults: agree.CoordinatorCrashesDelivering(31, 0)})
		bits = rep.Counters.TotalBits()
	}
	b.ReportMetric(float64(bits), "bits")
}

// BenchmarkE3Crossover times the Section 2.2 sweep: 2 protocols × 5 fault
// counts priced under the cost model.
func BenchmarkE3Crossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for f := 0; f < 5; f++ {
			run(b, agree.Config{N: 10, Faults: agree.CoordinatorCrashes(f)})
			run(b, agree.Config{N: 10, T: 8, Protocol: agree.ProtocolEarlyStop,
				Faults: agree.CoordinatorCrashes(f)})
		}
	}
}

// BenchmarkE3Timed times the empirical crossover workload behind the
// rewritten E3: the same 2 protocols × 5 fault counts, executed on the
// continuous-time engine under gigabit-Ethernet latencies (every message a
// timed event; completion times measured on the event clock, not priced
// analytically).
func BenchmarkE3Timed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for f := 0; f < 5; f++ {
			run(b, agree.Config{N: 10, Engine: agree.EngineTimed,
				Latency: agree.ProfileLatency("1g"), Faults: agree.CoordinatorCrashes(f)})
			run(b, agree.Config{N: 10, T: 8, Protocol: agree.ProtocolEarlyStop,
				Engine: agree.EngineTimed, Latency: agree.ProfileLatency("1g"),
				Faults: agree.CoordinatorCrashes(f)})
		}
	}
}

// BenchmarkE4EarlyStop times the classic early-stopping baseline at n=32,
// f=2 (decides in 4 rounds, Θ(n²) messages per round).
func BenchmarkE4EarlyStop(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 32, T: 31, Protocol: agree.ProtocolEarlyStop,
			Faults: agree.CoordinatorCrashes(2)})
		msgs = rep.Counters.TotalMsgs()
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkE4FloodSet times the FloodSet baseline at n=32, t=8 (always t+1
// rounds).
func BenchmarkE4FloodSet(b *testing.B) {
	var msgs int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 32, T: 8, Protocol: agree.ProtocolFloodSet})
		msgs = rep.Counters.TotalMsgs()
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkE5Exhaustive times the full state-space exploration of n=4, t=2
// (the Theorem 4/5 tightness check: 151 executions).
func BenchmarkE5Exhaustive(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := []sim.Value{10, 11, 12, 13}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{}),
				Adv:       adversary.NewFromChooser(ch, 2, 4),
				Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 6},
				Proposals: props,
			}
		}
		stats, err := check.Explore(factory,
			func(ex check.Execution, res *sim.Result, engineErr error) error {
				if engineErr != nil {
					return engineErr
				}
				if err := check.Consensus(ex.Proposals, res); err != nil {
					return err
				}
				return check.RoundBound(res, check.BoundFPlus1)
			}, check.ExploreOpts{Budget: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if len(stats.Counterexamples) != 0 {
			b.Fatal("unexpected violation")
		}
		execs = stats.Executions
	}
	b.ReportMetric(float64(execs), "executions")
}

// e5BenchFactory builds the E5 workload (n=4, t=2, 151 executions) for the
// exploration benchmarks.
func e5BenchFactory(ch interface{ Choose(int) int }) check.Execution {
	props := []sim.Value{10, 11, 12, 13}
	return check.Execution{
		Procs:     core.NewSystem(props, core.Options{}),
		Adv:       adversary.NewFromChooser(ch, 2, 4),
		Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 6},
		Proposals: props,
	}
}

// e5BenchValidator validates consensus plus the f+1 bound.
func e5BenchValidator(ex check.Execution, res *sim.Result, engineErr error) error {
	if engineErr != nil {
		return engineErr
	}
	if err := check.Consensus(ex.Proposals, res); err != nil {
		return err
	}
	return check.RoundBound(res, check.BoundFPlus1)
}

// BenchmarkExploreParallel times the sharded explorer on the E5 workload
// (the speedup over BenchmarkE5Exhaustive scales with core count; on one
// core it degrades to the sequential path).
func BenchmarkExploreParallel(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		stats, err := check.ExploreParallel(e5BenchFactory, e5BenchValidator,
			check.ExploreOpts{Budget: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if len(stats.Counterexamples) != 0 {
			b.Fatal("unexpected violation")
		}
		execs = stats.Executions
	}
	b.ReportMetric(float64(execs), "executions")
}

// benchProc is a minimal allocation-free process for measuring the engine's
// own hot-path cost: p1 broadcasts a preallocated data plan in round 1 and
// every process decides (and halts) in round 2.
type benchProc struct {
	id      sim.ProcID
	plan    sim.SendPlan // preallocated; empty except for p1 in round 1
	decided bool
}

func (p *benchProc) ID() sim.ProcID { return p.id }
func (p *benchProc) Send(r sim.Round) sim.SendPlan {
	if r == 1 {
		return p.plan
	}
	return sim.SendPlan{}
}
func (p *benchProc) Receive(r sim.Round, inbox []sim.Message) {
	if r == 2 {
		p.decided = true
	}
}
func (p *benchProc) Decided() (sim.Value, bool) { return 7, p.decided }
func (p *benchProc) Halted() bool               { return p.decided }

// TestEngineHappyPathAllocs pins the allocation count of the engine's
// no-trace hot path: with the engine reset between runs (as the explorer
// does) and processes that allocate nothing, a two-round broadcast run may
// only allocate the Result and its three maps. The seed engine spent
// hundreds of allocations here on map bookkeeping, eager trace strings and
// delivery masks.
func TestEngineHappyPathAllocs(t *testing.T) {
	const n = 8
	procs := make([]sim.Process, n)
	bps := make([]*benchProc, n)
	for i := range procs {
		bp := &benchProc{id: sim.ProcID(i + 1)}
		if i == 0 {
			for j := 2; j <= n; j++ {
				bp.plan.Data = append(bp.plan.Data,
					sim.Outgoing{To: sim.ProcID(j), Payload: sim.Est{V: 7, B: 64}})
			}
			bp.plan.Control = make([]sim.ProcID, 0, n-1)
			for j := n; j >= 2; j-- {
				bp.plan.Control = append(bp.plan.Control, sim.ProcID(j))
			}
		}
		bps[i] = bp
		procs[i] = bp
	}
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 4}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		for _, bp := range bps {
			bp.decided = false
		}
		if err := eng.Reset(procs, adversary.None{}); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up inbox buffers
	allocs := testing.AllocsPerRun(200, run)
	// Result struct + Decisions/DecideRound/Crashed maps; allow a little
	// headroom for map bucket layout differences across Go versions.
	const maxAllocs = 12
	if allocs > maxAllocs {
		t.Errorf("engine happy path allocates %.1f allocs/run, want <= %d", allocs, maxAllocs)
	}
}

// TestE1FailureFreeAllocs guards the ISSUE 1 acceptance criterion at the
// workload level: the full E1 failure-free run (n=64, protocol allocations
// included) must stay well under half the seed's 600 allocs/op.
func TestE1FailureFreeAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(20, func() {
		rep, err := agree.Run(agree.Config{N: 64})
		if err != nil {
			t.Fatal(err)
		}
		if rep.ConsensusErr != nil {
			t.Fatal(rep.ConsensusErr)
		}
	})
	const maxAllocs = 300 // seed: 600
	if allocs > maxAllocs {
		t.Errorf("E1 failure-free run allocates %.1f allocs/run, want <= %d (seed: 600)", allocs, maxAllocs)
	}
}

// BenchmarkE6Simulation times the Section 2.2 extended-on-classic
// simulation at n=16 (16 micro rounds per macro round).
func BenchmarkE6Simulation(b *testing.B) {
	var micro int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 16, SimulateOnClassic: true})
		micro = rep.Rounds
	}
	b.ReportMetric(float64(micro), "microrounds")
}

// BenchmarkE7FastFD times the discrete-event fast-failure-detector run at
// n=10, f=4 (decides at D + 4d).
func BenchmarkE7FastFD(b *testing.B) {
	cfg := ffd.Config{N: 10, D: 1.0, Dd: 0.05}
	props := make([]sim.Value, 10)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	var decideAt float64
	for i := 0; i < b.N; i++ {
		res, err := ffd.Run(cfg, props, ffd.KillFirstF{F: 4})
		if err != nil {
			b.Fatal(err)
		}
		decideAt = float64(res.MaxDecideTime())
	}
	b.ReportMetric(decideAt, "decide-time")
}

// BenchmarkE8BridgeMR99 times one failure-free MR99 instance at n=16 (one
// round: n-1 + n(n-1) messages).
func BenchmarkE8BridgeMR99(b *testing.B) {
	props := make([]sim.Value, 16)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	var msgs int
	for i := 0; i < b.N; i++ {
		res, err := mr99.Run(mr99.Config{N: 16, T: 7}, props, &mr99.GSTOracle{GST: 1})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Trace[0].Step1Msgs + res.Trace[0].Step2Msgs
	}
	b.ReportMetric(float64(msgs), "msgs")
}

// BenchmarkE9Messages times the message-count comparison workload: CRW vs
// FloodSet at n=32 under 4 coordinator crashes.
func BenchmarkE9Messages(b *testing.B) {
	var crwMsgs, floodMsgs int
	for i := 0; i < b.N; i++ {
		crw := run(b, agree.Config{N: 32, Faults: agree.CoordinatorCrashesDelivering(4, 0)})
		fs := run(b, agree.Config{N: 32, T: 31, Protocol: agree.ProtocolFloodSet,
			Faults: agree.CoordinatorCrashes(4)})
		crwMsgs, floodMsgs = crw.Counters.TotalMsgs(), fs.Counters.TotalMsgs()
	}
	b.ReportMetric(float64(crwMsgs), "crw-msgs")
	b.ReportMetric(float64(floodMsgs), "flood-msgs")
}

// BenchmarkE10Ablation times the exhaustive counterexample search for the
// commit-as-data ablation (n=3, t=1).
func BenchmarkE10Ablation(b *testing.B) {
	var found int
	for i := 0; i < b.N; i++ {
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := []sim.Value{10, 11, 12}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{CommitAsData: true}),
				Adv:       adversary.NewFromChooser(ch, 1, 3),
				Cfg:       sim.Config{Model: sim.ModelClassic, Horizon: 5},
				Proposals: props,
			}
		}
		stats, err := check.Explore(factory,
			func(ex check.Execution, res *sim.Result, engineErr error) error {
				if engineErr != nil {
					return engineErr
				}
				return check.Consensus(ex.Proposals, res)
			}, check.ExploreOpts{Budget: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		found = len(stats.Counterexamples)
	}
	b.ReportMetric(float64(found), "counterexamples")
}

// sweepBenchConfigs is the BenchmarkSweep workload: 64 CRW scenarios at
// n=16 cycling through worst-case fault counts f = 0..7, the shape of a
// fault-sweep campaign.
func sweepBenchConfigs() []agree.Config {
	configs := make([]agree.Config, 64)
	for i := range configs {
		configs[i] = agree.Config{N: 16, Faults: agree.CoordinatorCrashes(i % 8)}
	}
	return configs
}

// BenchmarkSweep times the scenario-sweep harness against the pre-harness
// idiom (one agree.Run per config, paying engine construction every call).
// The workers=1 variant isolates the engine-reuse dividend (same work, one
// engine); the parallel variant adds the worker pool (speedup scales with
// core count — on one CPU it degrades to the sequential path). Each variant
// reports configs/sec as its domain throughput metric.
func BenchmarkSweep(b *testing.B) {
	configs := sweepBenchConfigs()
	batch := float64(len(configs))
	b.Run("repeated-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range configs {
				run(b, cfg)
			}
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
	})
	b.Run("workers=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if sr := agree.Sweep(configs, agree.SweepOptions{Workers: 1}); sr.Aggregate.Errored != 0 {
				b.Fatal("sweep errored")
			}
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if sr := agree.Sweep(configs, agree.SweepOptions{}); sr.Aggregate.Errored != 0 {
				b.Fatal("sweep errored")
			}
		}
		b.ReportMetric(batch*float64(b.N)/b.Elapsed().Seconds(), "configs/s")
	})
}

// BenchmarkFuzz times the randomized fuzzing campaign (agree.Fuzz) on the
// faithful algorithm at n=16: a 256-seed campaign per iteration, reporting
// fuzz executions per second as the domain throughput metric. The workers=1
// variant is the single-core generator+oracle cost; the parallel variant
// adds the worker pool (bit-identical report, speedup scales with cores).
func BenchmarkFuzz(b *testing.B) {
	cfg := agree.FuzzConfig{N: 16, T: 5, Seeds: 256, CrashProb: 0.25}
	for _, variant := range []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"parallel", 0}} {
		b.Run(variant.name, func(b *testing.B) {
			execs := 0
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Workers = variant.workers
				rep, err := agree.Fuzz(c)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Findings) != 0 {
					b.Fatalf("faithful algorithm produced findings: %+v", rep.Findings[0])
				}
				execs += rep.Executions
			}
			b.ReportMetric(float64(execs)/b.Elapsed().Seconds(), "execs/s")
		})
	}
}

// benchLockstepReuse drives one persistent lockstep runtime through b.N
// rebuilt workloads (n procs, f coordinator crashes). Engine construction —
// per-process goroutines and the n×n channel matrix — is paid once before the
// timer starts; each iteration pays only process construction, Reset and the
// run itself, which is how the sweep harness drives the engine now that it is
// Reusable.
func benchLockstepReuse(b *testing.B, n, f int) {
	b.Helper()
	props := make([]sim.Value, n)
	for j := range props {
		props[j] = sim.Value(100 + j)
	}
	cfg := lockstep.Config{Model: sim.ModelExtended}
	rt, err := lockstep.New(cfg, core.NewSystem(props, core.Options{}),
		adversary.CoordinatorKiller{F: f})
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Reset(cfg, core.NewSystem(props, core.Options{}),
			adversary.CoordinatorKiller{F: f}); err != nil {
			b.Fatal(err)
		}
		if _, err := rt.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockstepEngine times the goroutine runtime against the
// deterministic engine's workload (n=32, f=4): the cost of real concurrency
// on the reuse path (goroutines parked between runs, not respawned).
func BenchmarkLockstepEngine(b *testing.B) {
	benchLockstepReuse(b, 32, 4)
}

// BenchmarkLockstepEngineN scales the reused goroutine runtime across system
// sizes at f = n/8 (the headline BenchmarkLockstepEngine ratio); the cold
// construction path across sizes lives in BenchmarkEngineScaling.
func BenchmarkLockstepEngineN(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchLockstepReuse(b, n, n/8)
		})
	}
}

// BenchmarkDeterministicEngine is the sequential-engine twin of
// BenchmarkLockstepEngine.
func BenchmarkDeterministicEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run(b, agree.Config{N: 32, Faults: agree.CoordinatorCrashes(4)})
	}
}

// BenchmarkTimedEngine is the continuous-time twin of
// BenchmarkLockstepEngine / BenchmarkDeterministicEngine (n=32, f=4): the
// cost of scheduling every message as a discrete event with seeded
// within-bound jitter.
func BenchmarkTimedEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run(b, agree.Config{N: 32, Engine: agree.EngineTimed,
			Latency: agree.JitterLatency(7, 1, 0.1, 0.1, 0.85),
			Faults:  agree.CoordinatorCrashes(4)})
	}
}

// BenchmarkTelemetryOverhead prices the telemetry recorder on the two
// workloads it instruments most densely: the E1 failure-free happy path
// (per-round series on the deterministic engine) and the timed workload
// (round series plus DES batch spans and heap/pool samples). The /off
// variants run the default nil-recorder path — their ns/op and allocs/op
// must match the uninstrumented engine benchmarks — and the /on variants
// record and retain everything; the ratio between the two is the headline
// overhead number in docs/benchmarks.md.
func BenchmarkTelemetryOverhead(b *testing.B) {
	shapes := []struct {
		name string
		cfg  agree.Config
	}{
		{"e1", agree.Config{N: 64}},
		{"timed", agree.Config{N: 32, Engine: agree.EngineTimed,
			Latency: agree.JitterLatency(7, 1, 0.1, 0.1, 0.85),
			Faults:  agree.CoordinatorCrashes(4)}},
	}
	for _, s := range shapes {
		for _, enabled := range []bool{false, true} {
			cfg := s.cfg
			cfg.Telemetry = enabled
			mode := "off"
			if enabled {
				mode = "on"
			}
			b.Run(s.name+"/"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run(b, cfg)
				}
			})
		}
	}
}

// BenchmarkTimedEngineN scales the timed workload across system sizes at
// f = n/8 (the headline BenchmarkTimedEngine ratio): event-count growth is
// quadratic in n, so this series shows how far the pooled scheduler keeps
// per-event cost flat.
func BenchmarkTimedEngineN(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, agree.Config{N: n, Engine: agree.EngineTimed,
					Latency: agree.JitterLatency(7, 1, 0.1, 0.1, 0.85),
					Faults:  agree.CoordinatorCrashes(n / 8)})
			}
		})
	}
}

// BenchmarkSnapshot times one Chandy–Lamport snapshot over a busy 6-node
// token bank on the asynchronous goroutine engine.
func BenchmarkSnapshot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		collector := snapshot.NewCollector()
		handlers := make([]async.Handler, 6)
		for j := 1; j <= 6; j++ {
			var plan []snapshot.PlannedTransfer
			for k := 1; k <= 6; k++ {
				if k != j {
					plan = append(plan, snapshot.PlannedTransfer{
						To: async.NodeID(k), Amount: 50, Hops: 4})
				}
			}
			handlers[j-1] = snapshot.NewNode(
				snapshot.NewBank(async.NodeID(j), 6, 1000, plan), collector, j == 1)
		}
		eng, err := async.NewEngine(handlers)
		if err != nil {
			b.Fatal(err)
		}
		eng.Run()
		if !collector.Complete(6) {
			b.Fatal("snapshot incomplete")
		}
	}
}

// BenchmarkSimulationStride measures the raw cost of the micro-round
// expansion as n grows.
func BenchmarkSimulationStride(b *testing.B) {
	var stride int
	for i := 0; i < b.N; i++ {
		rep := run(b, agree.Config{N: 24, SimulateOnClassic: true,
			Faults: agree.NoFaults()})
		stride = rep.Rounds / rep.MacroRounds
	}
	if stride != simulate.Stride(24) {
		b.Fatalf("stride = %d, want %d", stride, simulate.Stride(24))
	}
}

// BenchmarkDES times the raw discrete-event core (100k cascading events).
func BenchmarkDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s des.Sim
		count := 0
		var tick func()
		tick = func() {
			count++
			if count < 100_000 {
				s.After(1, tick)
			}
		}
		s.At(0, tick)
		s.Run(des.Infinity)
	}
}

// BenchmarkE11AverageCase times one batch of randomized average-case runs
// (20 seeds, n=8).
func BenchmarkE11AverageCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 20; seed++ {
			run(b, agree.Config{N: 8, Faults: agree.RandomFaults(seed, 0.01, 7)})
		}
	}
}

// BenchmarkE13Valency times the valency classification of a mixed
// 3-process configuration (exhausts all continuations).
func BenchmarkE13Valency(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := []sim.Value{0, 1, 1}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{}),
				Adv:       adversary.NewFromChooser(ch, 2, 3),
				Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 5},
				Proposals: props,
			}
		}
		v, err := check.ValencySet(factory, check.ExploreOpts{Budget: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if !v.Bivalent() {
			b.Fatal("expected bivalent")
		}
		execs = v.Executions
	}
	b.ReportMetric(float64(execs), "executions")
}

// BenchmarkE14LossyChannels times a CRW run under 15% random channel loss
// (the unreliable-network ablation), expressed as randomized send omissions
// through the first-class omission fault model.
func BenchmarkE14LossyChannels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		props := []sim.Value{10, 11, 12, 13}
		procs := core.NewSystem(props, core.Options{})
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 6},
			procs, adversary.NewRandomOmission(int64(i), 0.15, 0, len(props), len(props)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil && !errors.Is(err, sim.ErrNoProgress) {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Omission times one batch of randomized omission-model runs
// (20 seeds, n=8, mixed send+receive omissions through the public FaultSpec):
// the E11-style average-case workload transposed to the omission fault
// model. Consensus may legitimately fail under omissions, so only engine
// errors other than horizon exhaustion are fatal.
func BenchmarkE11Omission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 20; seed++ {
			rep, err := agree.Run(agree.Config{N: 8, Faults: agree.OmissionFaults(seed, 0.05, 0.05, 7)})
			if err != nil && !errors.Is(err, sim.ErrNoProgress) {
				b.Fatal(err)
			}
			_ = rep
		}
	}
}

// BenchmarkSMRThroughput times a 50-slot replicated log over the paper's
// algorithm (one round per commit, failure-free).
func BenchmarkSMRThroughput(b *testing.B) {
	var perCommit float64
	for i := 0; i < b.N; i++ {
		res, err := smr.Run(smr.Config{N: 8, Slots: 50})
		if err != nil {
			b.Fatal(err)
		}
		perCommit = res.RoundsPerCommit()
	}
	b.ReportMetric(perCommit, "rounds/commit")
}

// BenchmarkServe times the replicated-log service end to end: an n=8
// pipelined log on the timed engine under Poisson arrivals, 2000 commands
// per run, reporting the sustained simulated-time throughput (which is
// deterministic, so the metric doubles as a regression pin).
func BenchmarkServe(b *testing.B) {
	var perHour float64
	for i := 0; i < b.N; i++ {
		rep, err := agree.Serve(agree.ServeConfig{
			N: 8, RotateLeader: true,
			Latency:     agree.ProfileLatency("1g"),
			Workload:    agree.PoissonArrivals(200_000, 1),
			MaxCommands: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		perHour = rep.CommandsPerHour
	}
	b.ReportMetric(perHour/1e6, "Mcmds/simhour")
}

// BenchmarkWorstScheduleSearch times the exhaustive worst-schedule search
// for n=4, t=2 (the constructive Theorem 4 witness).
func BenchmarkWorstScheduleSearch(b *testing.B) {
	factory := func(ch interface{ Choose(int) int }) check.Execution {
		props := []sim.Value{10, 11, 12, 13}
		return check.Execution{
			Procs:     core.NewSystem(props, core.Options{}),
			Adv:       adversary.NewFromChooser(ch, 2, 4),
			Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 6},
			Proposals: props,
		}
	}
	for i := 0; i < b.N; i++ {
		w, err := check.FindWorstSchedule(factory, check.ExploreOpts{Budget: 1_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if w.DecideRound != 3 {
			b.Fatalf("worst decide round = %d, want 3", w.DecideRound)
		}
	}
}

// BenchmarkEngineScaling compares both engines across system sizes on the
// worst-case f = n/4 workload: the deterministic kernel's cost is dominated
// by message routing, the lockstep runtime's by goroutine barriers.
func BenchmarkEngineScaling(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		n := n
		b.Run(fmt.Sprintf("deterministic/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run(b, agree.Config{N: n, Faults: agree.CoordinatorCrashes(n / 4)})
			}
		})
		b.Run(fmt.Sprintf("lockstep/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				props := make([]sim.Value, n)
				for j := range props {
					props[j] = sim.Value(100 + j)
				}
				rt, err := lockstep.New(lockstep.Config{Model: sim.ModelExtended},
					core.NewSystem(props, core.Options{}),
					adversary.CoordinatorKiller{F: n / 4})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExhaustiveN5T4 times the deepest default exhaustive configuration
// (24,959 executions, Theorem 4 tightness at t+1 = 5).
func BenchmarkExhaustiveN5T4(b *testing.B) {
	var execs int
	for i := 0; i < b.N; i++ {
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := []sim.Value{10, 11, 12, 13, 14}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{}),
				Adv:       adversary.NewFromChooser(ch, 4, 5),
				Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 7},
				Proposals: props,
			}
		}
		stats, err := check.Explore(factory,
			func(ex check.Execution, res *sim.Result, engineErr error) error {
				if engineErr != nil {
					return engineErr
				}
				return check.Consensus(ex.Proposals, res)
			}, check.ExploreOpts{Budget: 10_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if len(stats.Counterexamples) != 0 {
			b.Fatal("unexpected violation")
		}
		execs = stats.Executions
	}
	b.ReportMetric(float64(execs), "executions")
}
