package trace_test

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *trace.Log
	l.Add(trace.Event{Kind: trace.KindSend}) // must not panic
	if l.Len() != 0 || l.Events() != nil || l.Filter(trace.KindSend) != nil {
		t.Error("nil log not empty")
	}
	if l.String() != "" {
		t.Error("nil log renders non-empty")
	}
}

func TestAddAndFilter(t *testing.T) {
	l := trace.New()
	l.Add(trace.Event{Round: 1, Kind: trace.KindSend, From: 1, To: 2, Detail: "data"})
	l.Add(trace.Event{Round: 1, Kind: trace.KindCrash, From: 1})
	l.Add(trace.Event{Round: 2, Kind: trace.KindSend, From: 2, To: 3, Detail: "control"})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	sends := l.Filter(trace.KindSend)
	if len(sends) != 2 || sends[0].To != 2 || sends[1].To != 3 {
		t.Errorf("Filter(send) = %v", sends)
	}
	if got := l.Filter(trace.KindDecide); got != nil {
		t.Errorf("Filter(decide) = %v, want nil", got)
	}
}

func TestEventRendering(t *testing.T) {
	cases := []struct {
		e    trace.Event
		want []string
	}{
		{trace.Event{Round: 1, Kind: trace.KindSend, From: 1, To: 2, Detail: "data"},
			[]string{"r1", "send", "p1 -> p2", "data"}},
		{trace.Event{Round: 3, Kind: trace.KindDecide, From: 4, Detail: "value 7"},
			[]string{"r3", "decide", "p4", "value 7"}},
		{trace.Event{Round: 2, Kind: trace.KindNote, Detail: "hello"},
			[]string{"r2", "note", "hello"}},
	}
	for _, c := range cases {
		s := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("%q lacks %q", s, w)
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	pairs := map[trace.Kind]string{
		trace.KindSend:    "send",
		trace.KindDrop:    "drop",
		trace.KindDeliver: "deliver",
		trace.KindCrash:   "crash",
		trace.KindDecide:  "decide",
		trace.KindHalt:    "halt",
		trace.KindNote:    "note",
	}
	for k, want := range pairs {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(trace.Kind(99).String(), "99") {
		t.Error("unknown kind should embed its number")
	}
}

func TestLogStringOneEventPerLine(t *testing.T) {
	l := trace.New()
	l.Add(trace.Event{Round: 1, Kind: trace.KindSend, From: 1, To: 2})
	l.Add(trace.Event{Round: 1, Kind: trace.KindHalt, From: 2})
	lines := strings.Split(strings.TrimRight(l.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Errorf("rendered %d lines, want 2:\n%s", len(lines), l.String())
	}
}
