// Package trace records structured events of a simulated execution.
//
// A Log is an append-only sequence of events (sends, deliveries, drops,
// crashes, decisions, halts). It is used by the command-line tools to print
// human-readable execution transcripts and by tests to assert fine-grained
// ordering properties of the engines.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// KindSend records a message leaving its sender.
	KindSend Kind = iota + 1
	// KindDrop records a message suppressed by a crash during the send phase.
	KindDrop
	// KindDeliver records a message arriving at its destination.
	KindDeliver
	// KindCrash records a process crashing.
	KindCrash
	// KindDecide records a process deciding a value.
	KindDecide
	// KindHalt records a process terminating (returning from the protocol).
	KindHalt
	// KindNote records free-form engine annotations.
	KindNote
)

// kindNames is indexed by Kind (index 0 is the invalid zero kind). An array
// lookup keeps String allocation- and lock-free on the transcript hot path,
// where a map lookup would hash on every rendered event.
var kindNames = [...]string{
	KindSend:    "send",
	KindDrop:    "drop",
	KindDeliver: "deliver",
	KindCrash:   "crash",
	KindDecide:  "decide",
	KindHalt:    "halt",
	KindNote:    "note",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one entry of an execution transcript.
type Event struct {
	// Round is the round (or logical step) the event occurred in; 0 when the
	// engine is not round-based.
	Round int
	// Kind classifies the event.
	Kind Kind
	// From is the acting process (sender, crasher, decider).
	From int
	// To is the destination process for message events; 0 otherwise.
	To int
	// Detail is a short human-readable annotation (payload, value, reason).
	Detail string
}

// String renders the event in a compact transcript form.
func (e Event) String() string {
	switch e.Kind {
	case KindSend, KindDrop, KindDeliver:
		return fmt.Sprintf("r%d %-8s p%d -> p%d %s", e.Round, e.Kind, e.From, e.To, e.Detail)
	case KindCrash, KindDecide, KindHalt:
		return fmt.Sprintf("r%d %-8s p%d %s", e.Round, e.Kind, e.From, e.Detail)
	default:
		return fmt.Sprintf("r%d %-8s %s", e.Round, e.Kind, e.Detail)
	}
}

// Log is an append-only event transcript. A nil *Log discards all events, so
// engines can unconditionally call Add on an optional log.
type Log struct {
	events []Event
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Enabled reports whether events are being recorded. It is nil-receiver safe:
// a nil *Log reports false. Engines use it to skip building events (and their
// detail strings) entirely on the no-trace hot path.
func (l *Log) Enabled() bool { return l != nil }

// Add appends an event. Add on a nil log is a no-op.
func (l *Log) Add(e Event) {
	if l == nil {
		return
	}
	l.events = append(l.events, e)
}

// Reset empties the log for reuse, keeping the allocated capacity, so
// reusable engines can recycle one transcript across runs instead of
// reallocating. Reset on a nil log is a no-op.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.events = l.events[:0]
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Filter returns the events of the given kind, in order.
func (l *Log) Filter(k Kind) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders the whole transcript, one event per line.
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
