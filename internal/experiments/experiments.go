// Package experiments regenerates every quantitative claim of the paper as a
// printable table. Each experiment E1–E16 corresponds to a row of the
// experiment index in DESIGN.md; EXPERIMENTS.md records the paper-claim vs
// measured comparison produced by these functions.
//
// The functions are deterministic: every table can be regenerated exactly
// with cmd/agreebench, and the root-level benchmarks time their underlying
// workloads.
package experiments

import (
	"fmt"
	"strings"

	"repro/agree"
)

// sweepOpts are the agree.Sweep options applied by the experiments that
// batch their configurations through the sweep harness (E1, E4, E9).
// cmd/agreebench sets them from its -workers / -crosscheck flags.
var sweepOpts agree.SweepOptions

// SetSweepOptions configures how the batched experiments execute: worker
// count for the parallel sweep and cross-engine checking. The tables
// produced are identical for every option combination (the sweep is
// deterministic); only wall-clock time and the depth of validation change.
// It also resets the engine-pool accounting reported by PoolUsage.
func SetSweepOptions(o agree.SweepOptions) {
	sweepOpts = o
	poolBuilt, poolReuses = 0, 0
}

// poolBuilt / poolReuses accumulate the engine-pool account across every
// batched sweep run since the last SetSweepOptions.
var poolBuilt, poolReuses int

// batchSweep is the single sweep entry point of the batched experiments: it
// runs agree.Sweep and folds the engine construction/reuse account into the
// package accumulator so callers (cmd/agreebench) can report how much work
// the Reusable engines saved across a -workers run.
func batchSweep(configs []agree.Config, opts agree.SweepOptions) *agree.SweepReport {
	sr := agree.Sweep(configs, opts)
	poolBuilt += sr.Aggregate.EnginesBuilt
	poolReuses += sr.Aggregate.EngineReuses
	return sr
}

// PoolUsage returns the engine-pool account accumulated by batched
// experiments since the last SetSweepOptions: engines constructed and jobs
// served by an already-built (reused) engine.
func PoolUsage() (built, reuses int) { return poolBuilt, poolReuses }

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (E1..E16).
	ID string
	// Title describes the experiment.
	Title string
	// Claim is the paper's claim being checked.
	Claim string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows.
	Rows [][]string
	// Verdict summarizes whether the measured behaviour matches the claim.
	Verdict string
}

// AddRow appends a row built from arbitrary values.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders floats compactly (3 decimals, trailing zeros trimmed).
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.3f", f)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "paper claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Verdict != "" {
		fmt.Fprintf(&b, "verdict: %s\n", t.Verdict)
	}
	return b.String()
}

// All runs every experiment and returns the tables in order.
func All() []*Table {
	return []*Table{
		E1RoundsVsFaults(),
		E2BitComplexity(),
		E3Crossover(),
		E4Baselines(),
		E5Exhaustive(),
		E6Simulation(),
		E7FastFD(),
		E8Bridge(),
		E9Messages(),
		E10Ablation(),
		E11AverageCase(),
		E12LANRealism(),
		E13Valency(),
		E14LossyChannels(),
		E15Omission(),
		E16TimingFaults(),
	}
}

// ByID returns the experiment with the given id (E1..E16), or nil.
func ByID(id string) *Table {
	switch strings.ToUpper(id) {
	case "E1":
		return E1RoundsVsFaults()
	case "E2":
		return E2BitComplexity()
	case "E3":
		return E3Crossover()
	case "E4":
		return E4Baselines()
	case "E5":
		return E5Exhaustive()
	case "E6":
		return E6Simulation()
	case "E7":
		return E7FastFD()
	case "E8":
		return E8Bridge()
	case "E9":
		return E9Messages()
	case "E10":
		return E10Ablation()
	case "E11":
		return E11AverageCase()
	case "E12":
		return E12LANRealism()
	case "E13":
		return E13Valency()
	case "E14":
		return E14LossyChannels()
	case "E15":
		return E15Omission()
	case "E16":
		return E16TimingFaults()
	default:
		return nil
	}
}

// verdict builds a PASS/FAIL verdict string.
func verdict(ok bool, detail string) string {
	if ok {
		return "PASS — " + detail
	}
	return "FAIL — " + detail
}
