package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestAllExperimentsPass(t *testing.T) {
	// Every experiment must regenerate with a PASS verdict: this is the
	// repository's end-to-end reproduction check.
	if testing.Short() {
		t.Skip("experiments are exhaustive; skipped in -short mode")
	}
	for _, tab := range experiments.All() {
		tab := tab
		t.Run(tab.ID, func(t *testing.T) {
			if !strings.HasPrefix(tab.Verdict, "PASS") {
				t.Errorf("%s verdict: %s\n%s", tab.ID, tab.Verdict, tab.String())
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", tab.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"E1", "e3", "E10", "E11", "e12", "E13", "E14", "E15", "e16"} {
		if tab := experiments.ByID(id); tab == nil {
			t.Errorf("ByID(%q) = nil", id)
		}
	}
	if tab := experiments.ByID("E99"); tab != nil {
		t.Error("ByID(E99) should be nil")
	}
}

func TestAllCoversEveryID(t *testing.T) {
	tabs := experiments.All()
	if len(tabs) != 16 {
		t.Fatalf("All() returned %d experiments, want 16", len(tabs))
	}
	seen := map[string]bool{}
	for _, tab := range tabs {
		if seen[tab.ID] {
			t.Errorf("duplicate experiment id %s", tab.ID)
		}
		seen[tab.ID] = true
		if byID := experiments.ByID(tab.ID); byID == nil || byID.ID != tab.ID {
			t.Errorf("ByID(%s) inconsistent with All()", tab.ID)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &experiments.Table{
		ID:      "T",
		Title:   "test",
		Claim:   "c",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", true)
	s := tab.String()
	for _, want := range []string{"T — test", "paper claim: c", "a", "bb", "2.5", "true"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering lacks %q:\n%s", want, s)
		}
	}
}
