package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/agree"
	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/mr99"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ffd"
	"repro/internal/lan"
	"repro/internal/sim"
	"repro/internal/simulate"
	"repro/internal/timing"
)

// E3Crossover reproduces the Section 2.2 cost analysis empirically: the
// extended and classic protocols execute on the continuous-time engine
// (internal/timed), whose event clock measures the completion time of the
// actual run — (f+1)(D+δ) against min(f+2, t+1)·D is no longer an analytic
// pricing of round counts but a property of executed wall-clock schedules.
// The measured winner must flip exactly where timing.Cost predicts: at
// δ/D = 1/(f+1) on a synthetic D=1 network (part one), and at the predicted
// crossover fault count on every LAN profile of internal/lan (part two).
func E3Crossover() *Table {
	t := &Table{
		ID:      "E3",
		Title:   "time crossover, measured: (f+1)(D+δ) vs min(f+2,t+1)·D on the timed engine",
		Claim:   "measured completion times match timing.Cost and the winner flips at δ < D/(f+1) (Section 2.2)",
		Columns: []string{"network", "f", "δ/D", "ext time", "classic time", "winner", "predicted", "match"},
	}
	const tt = 8
	const n = tt + 2
	// eq compares measured times against analytic predictions: the event
	// clock accumulates round durations, so allow relative rounding slack.
	eq := func(a, b float64) bool {
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= 1e-9*math.Max(scale, 1e-30)
	}
	// winnerOf classifies a measured (or analytic) time pair.
	winnerOf := func(ext, cl float64) string {
		switch {
		case eq(ext, cl):
			return "tie"
		case ext < cl:
			return "extended"
		default:
			return "classic"
		}
	}
	// measure runs both protocols on the timed engine under a latency spec
	// and returns their measured completion times.
	type timePair struct {
		ext, cl float64
		err     error
	}
	measure := func(f int, spec agree.LatencySpec) timePair {
		sr := batchSweep([]agree.Config{
			{N: n, Protocol: agree.ProtocolCRW, Engine: agree.EngineTimed,
				Latency: spec, Faults: agree.CoordinatorCrashes(f)},
			{N: n, T: tt, Protocol: agree.ProtocolEarlyStop, Engine: agree.EngineTimed,
				Latency: spec, Faults: agree.CoordinatorCrashes(f)},
		}, sweepOpts)
		for _, item := range sr.Items {
			if item.Err != nil {
				return timePair{err: item.Err}
			}
			if item.Report.ConsensusErr != nil {
				return timePair{err: item.Report.ConsensusErr}
			}
			if item.Report.Counters.Late != 0 {
				return timePair{err: fmt.Errorf("in-bound model produced %d late messages", item.Report.Counters.Late)}
			}
		}
		return timePair{ext: sr.Items[0].Report.SimTime, cl: sr.Items[1].Report.SimTime}
	}

	ok := true
	// Part one: synthetic D=1 network, sweeping the δ/D ratio. The measured
	// times must equal the analytic costs for the protocols' round counts,
	// and the measured winner must match the analytic prediction.
	const d = 1.0
	for _, f := range []int{0, 1, 2, 3, 6} {
		for _, ratio := range []float64{0, 0.05, 0.1, 0.2, 0.25, 0.34, 0.5, 0.9, 1.0, 1.5} {
			c := timing.Cost{D: d, Delta: d * ratio}
			tp := measure(f, agree.FixedLatency(d, d*ratio))
			if tp.err != nil {
				ok = false
				t.AddRow("D=1", f, ratio, "error: "+tp.err.Error(), "-", "-", "-", false)
				continue
			}
			winner := winnerOf(tp.ext, tp.cl)
			predicted := winnerOf(c.ExtendedTime(timing.ExtendedOptimalRounds(f)),
				c.ClassicTime(timing.ClassicOptimalRounds(f, tt)))
			// The empirical-vs-analytic check: measured times equal the
			// priced optimal round counts, not just the same winner.
			match := winner == predicted &&
				eq(tp.ext, c.ExtendedTime(timing.ExtendedOptimalRounds(f))) &&
				eq(tp.cl, c.ClassicTime(timing.ClassicOptimalRounds(f, tt)))
			ok = ok && match
			t.AddRow("D=1", f, ratio, tp.ext, tp.cl, winner, predicted, match)
		}
	}

	// Part two: every LAN profile of internal/lan, sweeping f. The
	// empirical crossover fault count (the largest f the extended model
	// still wins at) must match the analytic prediction on each profile.
	for _, p := range lan.Profiles() {
		c := timing.Cost{D: p.D(64), Delta: p.Delta()}
		ratio := p.Ratio(64)
		empCross, anaCross := -1, -1
		profileOK := true
		for f := 0; f <= tt; f++ {
			tp := measure(f, agree.ProfileLatency(profileSpecName(p)))
			if tp.err != nil {
				profileOK = false
				t.AddRow(p.Name, f, ratio, "error: "+tp.err.Error(), "-", "-", "-", false)
				continue
			}
			winner := winnerOf(tp.ext, tp.cl)
			predicted := winnerOf(c.ExtendedTime(timing.ExtendedOptimalRounds(f)),
				c.ClassicTime(timing.ClassicOptimalRounds(f, tt)))
			match := winner == predicted
			profileOK = profileOK && match
			if winner == "extended" {
				empCross = f
			}
			if predicted == "extended" {
				anaCross = f
			}
			t.AddRow(p.Name, f, fmt.Sprintf("%.4f", ratio),
				fmt.Sprintf("%.1fµs", tp.ext*1e6), fmt.Sprintf("%.1fµs", tp.cl*1e6),
				winner, predicted, match)
		}
		if empCross != anaCross {
			profileOK = false
			t.AddRow(p.Name, "-", "-", "-", "-",
				fmt.Sprintf("crossover f*=%d", empCross), fmt.Sprintf("f*=%d", anaCross), false)
		}
		ok = ok && profileOK
	}
	t.Verdict = verdict(ok, "measured times equal timing.Cost; winner flips at δ/D = 1/(f+1) on D=1 and at the predicted f* on every LAN profile")
	return t
}

// profileSpecName maps an internal/lan profile onto the public
// agree.ProfileLatency name.
func profileSpecName(p lan.Profile) string {
	switch p.Name {
	case lan.Ethernet100M.Name:
		return "100m"
	case lan.Ethernet1G.Name:
		return "1g"
	case lan.Ethernet10G.Name:
		return "10g"
	default:
		return p.Name
	}
}

// E5Exhaustive reproduces the proofs' quantification over all executions
// (Lemmas 1–3) and the tightness of the f+1 bound (Theorems 4–5): for small
// systems, every execution of the model satisfies uniform consensus and
// decides by round f+1, and some execution needs exactly t+1 rounds.
func E5Exhaustive() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "exhaustive model checking of the CRW algorithm",
		Claim:   "all executions uniform-safe and within f+1 rounds; bound attained (Theorems 1, 4, 5)",
		Columns: []string{"n", "t", "executions", "violations", "max decide round", "t+1", "tight"},
	}
	ok := true
	for _, tc := range []struct{ n, t int }{
		{3, 1}, {3, 2}, {4, 1}, {4, 2}, {4, 3}, {5, 1}, {5, 2}, {5, 3}, {5, 4}, {6, 2},
	} {
		stats, err := exploreCRW(tc.n, tc.t, core.Options{})
		if err != nil {
			ok = false
			t.AddRow(tc.n, tc.t, "error: "+err.Error(), "-", "-", tc.t+1, false)
			continue
		}
		tight := int(stats.MaxDecideRound) == tc.t+1 && len(stats.Counterexamples) == 0
		ok = ok && tight
		t.AddRow(tc.n, tc.t, stats.Executions, len(stats.Counterexamples),
			int(stats.MaxDecideRound), tc.t+1, tight)
	}
	t.Verdict = verdict(ok, "zero violations; worst execution decides exactly at t+1")
	return t
}

// exploreCRW enumerates all executions of the CRW variant for n processes
// with crash budget t, validating consensus and (for the faithful variant)
// the f+1 bound.
func exploreCRW(n, t int, opts core.Options) (check.Stats, error) {
	factory := func(ch interface{ Choose(int) int }) check.Execution {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		model := sim.ModelExtended
		if opts.CommitAsData {
			model = sim.ModelClassic
		}
		return check.Execution{
			Procs:     core.NewSystem(props, opts),
			Adv:       adversary.NewFromChooser(ch, t, sim.Round(n)),
			Cfg:       sim.Config{Model: model, Horizon: sim.Round(n + 2)},
			Proposals: props,
		}
	}
	validator := func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if err := check.Consensus(ex.Proposals, res); err != nil {
			return err
		}
		// The f+1 bound is checked for the extended-model variants (it is
		// exactly what the ascending-order ablation violates); the
		// commit-as-data ablation targets uniform agreement instead.
		if !opts.CommitAsData {
			return check.RoundBound(res, check.BoundFPlus1)
		}
		return nil
	}
	return check.Explore(factory, validator, check.ExploreOpts{Budget: 50_000_000, MaxCounterexamples: 4})
}

// E6Simulation reproduces the Section 2.2 computability-equivalence
// construction: the extended model simulated on the classic model preserves
// decisions while inflating rounds by the stride n (one micro round per
// control position plus the data micro round).
func E6Simulation() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "extended-on-classic simulation overhead",
		Claim:   "same decisions, rounds inflated by factor n (Section 2.2)",
		Columns: []string{"n", "f", "native rounds", "micro rounds", "macro rounds", "factor", "same decisions"},
	}
	ok := true
	for _, n := range []int{3, 4, 8, 16} {
		for _, f := range []int{0, 1, 2} {
			if f >= n {
				continue
			}
			native, err1 := agree.Run(agree.Config{N: n, Faults: agree.CoordinatorCrashes(f)})
			simd, err2 := agree.Run(agree.Config{N: n, SimulateOnClassic: true,
				Faults: simulatedKiller(n, f)})
			if err1 != nil || err2 != nil {
				ok = false
				continue
			}
			same := native.ConsensusErr == nil && simd.ConsensusErr == nil &&
				len(native.Decisions) == len(simd.Decisions)
			for id, v := range native.Decisions {
				if simd.Decisions[id] != v {
					same = false
				}
			}
			match := same && simd.MacroRounds == native.Rounds &&
				simd.Rounds == native.Rounds*simulate.Stride(n)
			ok = ok && match
			t.AddRow(n, f, native.Rounds, simd.Rounds, simd.MacroRounds,
				simulate.Stride(n), match)
		}
	}
	t.Verdict = verdict(ok, "simulation preserves decisions at n× round cost")
	return t
}

// simulatedKiller translates the macro-round coordinator-killer schedule into
// micro rounds: p_r crashes in the data micro round of macro round r,
// delivering nothing.
func simulatedKiller(n, f int) agree.FaultSpec {
	plans := map[int]agree.CrashPlan{}
	for r := 1; r <= f; r++ {
		micro := (r-1)*simulate.Stride(n) + 1
		plans[r] = agree.CrashPlan{Round: micro}
	}
	return agree.ScriptedFaults(plans)
}

// E7FastFD reproduces the related-work comparison with the fast failure
// detector model of [1]: measured decision times equal D + f·d, versus the
// extended model's (f+1)(D+δ); both models decide within one communication
// delay when f = 0.
func E7FastFD() *Table {
	t := &Table{
		ID:      "E7",
		Title:   "fast-failure-detector consensus time vs extended model",
		Claim:   "FFD decides by D + f·d ([1]); extended by (f+1)(D+δ); equal at f=0, δ=0",
		Columns: []string{"f", "d/D", "ffd time", "D+f·d", "ext time (δ=d)", "ffd wins"},
	}
	ok := true
	const n = 10
	for _, f := range []int{0, 1, 2, 4, 6} {
		for _, ratio := range []float64{0.01, 0.05, 0.1} {
			cfg := ffd.Config{N: n, D: 1.0, Dd: des.Time(ratio)}
			props := make([]sim.Value, n)
			for i := range props {
				props[i] = sim.Value(100 + i)
			}
			res, err := ffd.Run(cfg, props, ffd.KillFirstF{F: f})
			if err != nil {
				ok = false
				continue
			}
			want := ffd.WorstCaseDecideTime(cfg, f)
			got := res.MaxDecideTime()
			match := approxEq(float64(got), float64(want))
			ok = ok && match
			extTime := float64(f+1) * (1.0 + ratio)
			wins := float64(got) < extTime || f == 0
			t.AddRow(f, ratio, float64(got), float64(want), extTime, wins)
		}
	}
	t.Verdict = verdict(ok, "measured FFD decision times equal D + f·d exactly")
	return t
}

func approxEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// E8Bridge reproduces the Section 4 comparison: one CRW round (coordinator
// data broadcast + pipelined commit) against one MR99 round (coordinator
// broadcast + all-to-all second step), message for message.
func E8Bridge() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "synchronous/asynchronous bridge: CRW round vs MR99 round",
		Claim:   "the commit message replaces MR99's n(n-1)-message second step (Section 4)",
		Columns: []string{"n", "crw data", "crw commit", "crw total", "mr99 step1", "mr99 step2", "mr99 total", "ratio"},
	}
	ok := true
	for _, n := range []int{4, 8, 16, 32} {
		crw, err := agree.Run(agree.Config{N: n})
		if err != nil {
			ok = false
			continue
		}
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(100 + i)
		}
		res, err := mr99.Run(mr99.Config{N: n, T: (n - 1) / 2}, props, &mr99.GSTOracle{GST: 1})
		if err != nil {
			ok = false
			continue
		}
		if len(res.Trace) == 0 {
			ok = false
			continue
		}
		tr := res.Trace[0]
		crwTotal := crw.Counters.TotalMsgs()
		mrTotal := tr.Step1Msgs + tr.Step2Msgs
		match := crw.Counters.DataMsgs == n-1 && crw.Counters.CtrlMsgs == n-1 &&
			tr.Step1Msgs == n-1 && tr.Step2Msgs == n*(n-1)
		ok = ok && match
		t.AddRow(n, crw.Counters.DataMsgs, crw.Counters.CtrlMsgs, crwTotal,
			tr.Step1Msgs, tr.Step2Msgs, mrTotal,
			fmt.Sprintf("%.1fx", float64(mrTotal)/float64(crwTotal)))
	}
	t.Verdict = verdict(ok, "CRW's 2(n-1) messages replace MR99's (n+1)(n-1) per round")
	return t
}

// E10Ablation demonstrates that both structural ingredients of the extended
// model are load-bearing, by exhaustively finding counterexamples when
// either is removed: the descending order of line 5 (its ascending variant
// breaks the f+1 bound) and the two-step send structure (folding the commit
// into the data step breaks uniform agreement).
func E10Ablation() *Table {
	t := &Table{
		ID:      "E10",
		Title:   "ablations: why the ordered second sending step matters",
		Claim:   "prefix-ordered commits are necessary for f+1 and for uniform agreement (Section 2)",
		Columns: []string{"variant", "n", "t", "executions", "property violated", "example script"},
	}
	ok := true

	// Faithful control: no violations.
	stats, err := exploreCRW(4, 2, core.Options{})
	if err != nil {
		ok = false
	} else {
		ok = ok && len(stats.Counterexamples) == 0
		t.AddRow("faithful (descending, two-step)", 4, 2, stats.Executions, "none", "-")
	}

	// Ascending order: bound violation, agreement intact.
	stats, err = exploreCRW(4, 1, core.Options{Order: core.OrderAscending})
	if err != nil {
		ok = false
	} else {
		violated := "none"
		script := "-"
		for _, ce := range stats.Counterexamples {
			if errors.Is(ce.Err, check.ErrRoundBound) {
				violated = "f+1 round bound"
				script = fmt.Sprint(ce.Script)
				break
			}
			if errors.Is(ce.Err, check.ErrAgreement) {
				violated = "uniform agreement (unexpected)"
				ok = false
			}
		}
		ok = ok && violated == "f+1 round bound"
		t.AddRow("ascending commit order", 4, 1, stats.Executions, violated, script)
	}

	// Commit as data: uniform agreement violation.
	stats, err = exploreCRW(3, 1, core.Options{CommitAsData: true})
	if err != nil {
		ok = false
	} else {
		violated := "none"
		script := "-"
		for _, ce := range stats.Counterexamples {
			if errors.Is(ce.Err, check.ErrAgreement) {
				violated = "uniform agreement"
				script = fmt.Sprint(ce.Script)
				break
			}
		}
		ok = ok && violated == "uniform agreement"
		t.AddRow("commit folded into data step", 3, 1, stats.Executions, violated, script)
	}

	t.Verdict = verdict(ok, "removing either ingredient is caught by the exhaustive explorer")
	return t
}
