package experiments

import (
	"fmt"

	"repro/agree"
)

// E16TimingFaults maps the boundary of the paper's synchrony assumption
// with the continuous-time engine: random per-message jitter whose whole
// range fits under the synchrony bound D is semantically invisible — zero
// late messages, the cross-check against the round engines passes, and the
// worst-case f+1 decision bound holds on the event clock — while jitter
// whose tail exceeds D turns into timing faults: late messages mapped to
// receive omissions, under which the algorithms may (and at these spreads
// do) lose rounds or uniform agreement itself. Partial synchrony degrades
// into exactly the omission fault model E15 charts, one late message at a
// time.
func E16TimingFaults() *Table {
	t := &Table{
		ID:      "E16",
		Title:   "timing faults: latency jitter against the synchrony bound (timed engine)",
		Claim:   "jitter within D is invisible (cross-checked vs round engines); jitter beyond D becomes receive omissions (Sections 1-2: synchrony is assumed, not enforced)",
		Columns: []string{"protocol", "jitter range", "bound", "late msgs", "rounds", "consensus", "crosscheck", "as predicted"},
	}
	const (
		n     = 8
		d     = 1.0
		delta = 0.1
		floor = 0.2
		seed  = 20060718 // deterministic per-message hash seed
	)
	type scenario struct {
		protocol agree.Protocol
		spread   float64
		f        int
	}
	scenarios := []scenario{
		// Within bound (floor+spread <= d): jitter is pure pricing noise.
		{agree.ProtocolCRW, 0.5, 0},
		{agree.ProtocolCRW, 0.8, 2},
		{agree.ProtocolEarlyStop, 0.8, 1},
		{agree.ProtocolFloodSet, 0.8, 0},
		// Beyond bound: the tail of the distribution misses the round.
		{agree.ProtocolCRW, 1.6, 0},
		{agree.ProtocolCRW, 2.4, 0},
		{agree.ProtocolEarlyStop, 2.4, 0},
		{agree.ProtocolFloodSet, 2.4, 0},
	}
	configs := make([]agree.Config, 0, len(scenarios))
	for _, sc := range scenarios {
		configs = append(configs, agree.Config{
			N:        n,
			T:        n - 2,
			Protocol: sc.protocol,
			Engine:   agree.EngineTimed,
			Faults:   agree.CoordinatorCrashes(sc.f),
			Latency:  agree.JitterLatency(seed, d, delta, floor, sc.spread),
		})
	}
	// CrossCheck on top of the caller's options: within-bound scenarios must
	// re-execute identically on the round engines; out-of-bound scenarios
	// are skipped by design (timing faults are a continuous-time semantics).
	opts := sweepOpts
	opts.CrossCheck = true
	sr := batchSweep(configs, opts)

	ok := true
	for i, sc := range scenarios {
		item := sr.Items[i]
		within := floor+sc.spread <= d
		if item.Err != nil {
			ok = false
			t.AddRow(string(sc.protocol), jitterRange(floor, sc.spread), d,
				"error: "+item.Err.Error(), "-", "-", "-", false)
			continue
		}
		rep := item.Report
		consensus := "ok"
		if rep.ConsensusErr != nil {
			consensus = "VIOLATION"
		}
		crosscheck := "skipped"
		if len(item.CrossChecked) > 0 {
			crosscheck = fmt.Sprintf("ok on %d engines", len(item.CrossChecked))
		}
		// The protocol's crash-model decision bound: f+1 for CRW,
		// min(f+2, t+1) for early stopping, t+1 for FloodSet.
		bound := sc.f + 1
		switch sc.protocol {
		case agree.ProtocolEarlyStop:
			bound = sc.f + 2
			if n-1 < bound {
				bound = n - 1
			}
		case agree.ProtocolFloodSet:
			bound = n - 1
		}
		var predicted bool
		if within {
			// Invisible: no late messages, consensus holds, the protocol's
			// decision bound holds on the event clock, and the run
			// re-executed identically on every other registered engine.
			predicted = rep.Counters.Late == 0 && rep.ConsensusErr == nil &&
				rep.MaxDecideRound() <= bound && len(item.CrossChecked) == 2
		} else {
			// Degraded: timing faults materialized as late messages; the
			// round engines cannot reproduce them, so no cross-check.
			predicted = rep.Counters.Late > 0 && len(item.CrossChecked) == 0
		}
		ok = ok && predicted
		t.AddRow(string(sc.protocol), jitterRange(floor, sc.spread), d,
			rep.Counters.Late, rep.Rounds, consensus, crosscheck, predicted)
	}
	t.Verdict = verdict(ok, "within-bound jitter invisible and cross-checked; out-of-bound jitter yields late messages (receive omissions)")
	return t
}

// jitterRange renders a jitter latency range for the table.
func jitterRange(floor, spread float64) string {
	return fmt.Sprintf("[%.1f, %.1f)", floor, floor+spread)
}
