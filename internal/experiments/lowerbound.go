package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
)

// E13Valency reproduces the proof machinery of Section 5 (Theorem 3, after
// Aguilera–Toueg's bivalency argument): mixed-proposal initial
// configurations are bivalent; a clean round collapses them to univalent
// (the value-locking of Lemma 2); and the adversary maintains bivalence by
// silently killing coordinators — which is precisely why f+1 rounds are
// unavoidable.
func E13Valency() *Table {
	t := &Table{
		ID:      "E13",
		Title:   "valency structure of the extended model (Section 5 proof machinery)",
		Claim:   "mixed inputs bivalent; a clean round locks the value; killing coordinators preserves bivalence (Theorem 3)",
		Columns: []string{"configuration", "constrained prefix", "executions", "valency"},
	}
	ok := true

	type prefix struct {
		name  string
		until sim.Round
		adv   sim.Adversary
	}
	cases := []struct {
		name      string
		proposals []sim.Value
		t         int
		prefix    prefix
		wantBi    bool
		wantVals  []sim.Value
	}{
		{"mixed {0,1,1}", []sim.Value{0, 1, 1}, 2,
			prefix{"none", 0, nil}, true, []sim.Value{0, 1}},
		{"uniform {7,7,7}", []sim.Value{7, 7, 7}, 2,
			prefix{"none", 0, nil}, false, []sim.Value{7}},
		{"mixed {0,1,1}", []sim.Value{0, 1, 1}, 2,
			prefix{"round 1 clean", 1, adversary.None{}}, false, []sim.Value{0}},
		{"mixed {0,1,2,3}", []sim.Value{0, 1, 2, 3}, 3,
			prefix{"kill p1 silently", 1, adversary.CoordinatorKiller{F: 1}}, true, []sim.Value{1, 2, 3}},
		{"mixed {0,1,2,3}", []sim.Value{0, 1, 2, 3}, 3,
			prefix{"kill p1, p2 silently", 2, adversary.CoordinatorKiller{F: 2}}, true, []sim.Value{2, 3}},
	}
	for _, c := range cases {
		c := c
		n := len(c.proposals)
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := append([]sim.Value(nil), c.proposals...)
			budget := c.t - int(c.prefix.until)
			if c.prefix.adv == nil || c.prefix.until == 0 {
				budget = c.t
			}
			var adv sim.Adversary = adversary.NewFromChooser(ch, budget, sim.Round(n))
			if c.prefix.adv != nil && c.prefix.until > 0 {
				adv = adversary.Staged{Until: c.prefix.until, First: c.prefix.adv, Rest: adv}
			}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{}),
				Adv:       adv,
				Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2)},
				Proposals: props,
			}
		}
		v, err := check.ValencySet(factory, check.ExploreOpts{Budget: 20_000_000})
		if err != nil {
			ok = false
			t.AddRow(c.name, c.prefix.name, "error: "+err.Error(), "-")
			continue
		}
		match := v.Bivalent() == c.wantBi && equalValues(v.Values, c.wantVals)
		ok = ok && match
		t.AddRow(c.name, c.prefix.name, v.Executions, v.String())
	}
	t.Verdict = verdict(ok, "valency behaves exactly as the lower-bound proof requires")
	return t
}

func equalValues(a, b []sim.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// E14LossyChannels reproduces the model's scoping statement (Sections 1 and
// 2.2): the extended model is meant for LANs with reliable communication and
// "is not for networks where unreliable communication requires message
// retransmission". Concretely: with lossy channels the algorithm's
// guarantees collapse even with ZERO crashes — losing a single DATA message
// while the pipelined COMMIT survives makes a process decide its stale
// estimate.
//
// Loss is expressed through the first-class omission fault model: a lossy
// channel is a send omission at the sender (every process allowed to be
// omission faulty = every message independently losable), so the ablation
// needs no special engine hook and runs identically on both engines.
func E14LossyChannels() *Table {
	t := &Table{
		ID:      "E14",
		Title:   "ablation: unreliable channels break the model",
		Claim:   "the model requires reliable channels; under loss, agreement fails with zero crashes (Sections 1, 2.2)",
		Columns: []string{"scenario", "faults", "distinct decisions", "agreement"},
	}
	ok := true
	props := []sim.Value{10, 11, 12, 13}
	n := len(props)

	runWith := func(adv sim.Adversary) (*sim.Result, error) {
		procs := core.NewSystem(props, core.Options{})
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 6}, procs, adv)
		if err != nil {
			return nil, err
		}
		return eng.Run()
	}

	// Reliable control run.
	res, err := runWith(adversary.None{})
	if err != nil {
		ok = false
	} else {
		agree := len(res.DistinctDecisions()) == 1
		ok = ok && agree
		t.AddRow("reliable channels (control)", res.Faults(), len(res.DistinctDecisions()), agree)
	}

	// Targeted single loss: DATA p1->p2 in round 1 vanishes, the COMMIT
	// survives; p2 decides its own proposal while everyone else decides
	// p1's. (The round-1 coordinator broadcasts data to p2..pn in order, so
	// the first data position is the p2 message.)
	res, err = runWith(adversary.NewOmissionScript(n, map[sim.ProcID][]adversary.OmissionPlan{
		1: {{Round: 1, SendData: []bool{false}}},
	}))
	if err != nil {
		ok = false
	} else {
		broken := len(res.DistinctDecisions()) > 1 && res.Faults() == 0
		ok = ok && broken
		t.AddRow("lose one DATA (commit survives)", res.Faults(), len(res.DistinctDecisions()), !broken)
	}

	// Random loss sweep: count agreement violations across seeds. Every
	// process may be omission faulty and each sent message is independently
	// lost — the classic lossy-network scenario.
	const seeds, rate = 200, 0.15
	violations := 0
	for seed := int64(0); seed < seeds; seed++ {
		res, err := runWith(adversary.NewRandomOmission(seed, rate, 0, n, n))
		if err != nil {
			continue // loss can also starve termination; agreement is the focus here
		}
		if len(res.DistinctDecisions()) > 1 {
			violations++
		}
	}
	ok = ok && violations > 0
	t.AddRow(fmt.Sprintf("random %.0f%% loss, %d seeds", rate*100, seeds),
		0, fmt.Sprintf("%d violating runs", violations), violations == 0)

	t.Verdict = verdict(ok, "a single lost message breaks uniform agreement — reliable channels are a real precondition")
	return t
}
