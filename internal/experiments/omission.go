package experiments

import (
	"errors"

	"repro/agree"
	"repro/internal/check"
)

// E15Omission maps the boundary of the paper's fault model with the
// first-class omission machinery: the crash model (which the paper proves
// correct) is exhaustively violation-free, while a single send- or
// receive-omission event — one notch beyond the model's reliable-channel
// assumption — already breaks uniform agreement, found both exhaustively at
// proof sizes (the E10-style ablation search) and by the randomized fuzzer
// at production sizes, where every finding shrinks to a minimal replayable
// omission script.
func E15Omission() *Table {
	t := &Table{
		ID:      "E15",
		Title:   "ablation: omission faults break the crash-model guarantees",
		Claim:   "the algorithm tolerates crash faults only; one omission event beyond the model breaks uniform agreement (Section 2.1)",
		Columns: []string{"search", "n", "fault model", "executions/seeds", "agreement violations", "min events"},
	}
	ok := true

	// Control: the crash model at the same size is exhaustively clean.
	rep, err := agree.Explore(agree.ExploreConfig{N: 3, T: 1})
	if err != nil {
		ok = false
		t.AddRow("exhaustive (control)", 3, "crash (t=1)", "error: "+err.Error(), "-", "-")
	} else {
		ok = ok && len(rep.Counterexamples) == 0
		t.AddRow("exhaustive (control)", 3, "crash (t=1)", rep.Executions, len(rep.Counterexamples), "-")
	}

	// Exhaustive omission search: at most one omission event, zero crashes
	// (OmissionOnly zeroes the crash budget; MaxFaults re-checks that no
	// enumerated execution crashed anybody), every schedule enumerated — the
	// violation is unavoidable, not a sampling artifact, and each
	// counterexample is a single omission event by construction.
	rep, err = agree.Explore(agree.ExploreConfig{
		N: 3, OmissionBudget: 1, OmissionOnly: true, MaxCounterexamples: 1_000_000,
	})
	if err != nil {
		ok = false
		t.AddRow("exhaustive", 3, "omission only (budget 1)", "error: "+err.Error(), "-", "-")
	} else {
		agreementViolations := 0
		for _, ce := range rep.Counterexamples {
			if errors.Is(ce.Err, check.ErrAgreement) {
				agreementViolations++
			}
		}
		ok = ok && agreementViolations > 0 && rep.MaxFaults == 0
		t.AddRow("exhaustive", 3, "omission only (budget 1)", rep.Executions, agreementViolations, 1)
	}

	// Randomized omission campaign at production size: findings expected,
	// each replay-verified and shrunk; the minimal shrunk schedule is a
	// single omission event.
	frep, err := agree.Fuzz(agree.FuzzConfig{
		N: 8, Seeds: 150, SendOmitProb: 0.08, RecvOmitProb: 0.04,
		OmissionOnly: true, Shrink: true,
	})
	if err != nil {
		ok = false
		t.AddRow("fuzzer", 8, "omission (random walk)", "error: "+err.Error(), "-", "-")
	} else {
		minEvents := -1
		for _, f := range frep.Findings {
			if ev := f.ShrunkCrashes + f.ShrunkOmissions; minEvents < 0 || ev < minEvents {
				minEvents = ev
			}
		}
		ok = ok && len(frep.Findings) > 0 && minEvents == 1
		t.AddRow("fuzzer", 8, "omission (random walk)", frep.Seeds, len(frep.Findings), minEvents)
	}

	t.Verdict = verdict(ok, "crash schedules are exhaustively safe; a single omission event breaks agreement, exactly at the model's boundary")
	return t
}
