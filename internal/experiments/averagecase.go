package experiments

import (
	"fmt"

	"repro/agree"
	"repro/internal/lan"
	"repro/internal/stats"
	"repro/internal/timing"
)

// E11AverageCase quantifies the paper's practical argument (Section 2.2)
// that "failures are possible but rare, so f = 0 and f = 1 are the most
// common values": under randomized per-round crash probabilities, it
// measures the distribution of decision rounds for the paper's algorithm and
// the classic baseline, showing the expected case sits at 1–2 rounds — a
// full round ahead of the classic model — long before the worst case
// matters.
func E11AverageCase() *Table {
	t := &Table{
		ID:      "E11",
		Title:   "average-case decision rounds under random crashes",
		Claim:   "f=0,1 dominate in practice, so the expected gain of the extended model is a full round (Section 2.2)",
		Columns: []string{"n", "crash prob", "runs", "mean f", "crw rounds", "earlystop rounds", "crw P99", "mean gain"},
	}
	const seeds = 400
	ok := true
	for _, n := range []int{8, 16} {
		tt := n - 1
		for _, prob := range []float64{0.001, 0.01, 0.05} {
			var faults, crwRounds, esRounds, gain stats.Sample
			for seed := int64(0); seed < seeds; seed++ {
				crw, err1 := agree.Run(agree.Config{N: n,
					Faults: agree.RandomFaults(seed, prob, tt)})
				es, err2 := agree.Run(agree.Config{N: n, T: tt, Protocol: agree.ProtocolEarlyStop,
					Faults: agree.RandomFaults(seed, prob, tt)})
				if err1 != nil || err2 != nil ||
					crw.ConsensusErr != nil || es.ConsensusErr != nil {
					ok = false
					continue
				}
				faults.Add(float64(crw.Faults()))
				crwRounds.Add(float64(crw.MaxDecideRound()))
				esRounds.Add(float64(es.MaxDecideRound()))
				gain.Add(float64(es.MaxDecideRound() - crw.MaxDecideRound()))
			}
			// The headline property: on average the extended-model algorithm
			// saves about one round over the classic baseline.
			rowOK := gain.Mean() > 0.5 && crwRounds.Mean() < esRounds.Mean()
			ok = ok && rowOK
			t.AddRow(n, prob, faults.N(), faults.Mean(),
				crwRounds.Mean(), esRounds.Mean(), crwRounds.Percentile(99), gain.Mean())
		}
	}
	t.Verdict = verdict(ok, "expected decision stays near 1 round; gain over the classic baseline ≈ 1 round")
	return t
}

// E12LANRealism grounds Section 2.2's "always satisfied for realistic values
// of δ and D": with textbook Ethernet parameters, δ/D is a fraction of a
// percent to a few percent, so the extended model wins up to fault counts
// far beyond anything a LAN cluster would survive anyway.
func E12LANRealism() *Table {
	t := &Table{
		ID:      "E12",
		Title:   "derived δ/D on real LAN profiles",
		Claim:   "δ < D/(f+1) holds for realistic δ, D, so the extended model is practically relevant (Section 2.2)",
		Columns: []string{"profile", "b (bits)", "D (µs)", "δ (µs)", "δ/D", "extended wins up to f"},
	}
	ok := true
	for _, p := range lan.Profiles() {
		for _, b := range []int{64, 1024, 8192} {
			ratio := p.Ratio(b)
			upTo := p.ExtendedWinsUpTo(b)
			// The crossover rule must agree with the timing package.
			cost := timing.Cost{D: p.D(b), Delta: p.Delta()}
			const bigT = 1 << 20
			consistent := cost.ExtendedWins(upTo, bigT) && !cost.ExtendedWins(upTo+1, bigT)
			ok = ok && consistent && upTo >= 10
			t.AddRow(p.Name, b,
				fmt.Sprintf("%.1f", p.D(b)*1e6),
				fmt.Sprintf("%.2f", p.Delta()*1e6),
				fmt.Sprintf("%.4f", ratio), upTo)
		}
	}
	t.Verdict = verdict(ok, "δ/D ≤ a few percent on every profile: the win condition holds for all realistic f")
	return t
}
