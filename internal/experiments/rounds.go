package experiments

import (
	"fmt"

	"repro/agree"
	"repro/internal/core"
	"repro/internal/timing"
)

// E1RoundsVsFaults reproduces Theorem 1 and the Section 3.2 discussion: the
// paper's algorithm decides in exactly f+1 rounds under the worst-case
// coordinator-killing schedule, and in a single round whenever the first
// coordinator survives, independent of n and of the number of non-coordinator
// crashes.
func E1RoundsVsFaults() *Table {
	t := &Table{
		ID:      "E1",
		Title:   "CRW decision rounds vs actual faults (worst-case adversary)",
		Claim:   "decision in at most f+1 rounds; exactly 1 round when p1 does not crash (Theorem 1)",
		Columns: []string{"n", "f", "rounds", "f+1", "match"},
	}
	// The whole matrix is submitted as one batch: the worst-case grid plus
	// the one-round scripted cases (crash high-id processes, keep p1 alive).
	type spec struct {
		n, f     int
		nonCoord bool
	}
	var specs []spec
	var configs []agree.Config
	for _, n := range []int{4, 8, 16, 32, 64} {
		for _, f := range []int{0, 1, 2, 3, n / 2, n - 1} {
			if f >= n {
				continue
			}
			specs = append(specs, spec{n: n, f: f})
			configs = append(configs, agree.Config{N: n, Protocol: agree.ProtocolCRW,
				Faults: agree.CoordinatorCrashes(f)})
		}
	}
	for _, n := range []int{8, 32} {
		specs = append(specs, spec{n: n, nonCoord: true})
		configs = append(configs, agree.Config{N: n, Protocol: agree.ProtocolCRW,
			Faults: agree.ScriptedFaults(map[int]agree.CrashPlan{
				n:     {Round: 1},
				n - 1: {Round: 1},
			})})
	}
	sr := batchSweep(configs, sweepOpts)
	ok := true
	for i, sp := range specs {
		item := sr.Items[i]
		if sp.nonCoord {
			if item.Err != nil {
				ok = false
				continue
			}
			rep := item.Report
			match := rep.ConsensusErr == nil && rep.MaxDecideRound() == 1 && rep.Faults() == 2
			ok = ok && match
			t.AddRow(sp.n, fmt.Sprintf("%d (non-coord)", rep.Faults()), rep.MaxDecideRound(), 1, match)
			continue
		}
		if item.Err != nil {
			t.AddRow(sp.n, sp.f, "error: "+item.Err.Error(), sp.f+1, false)
			ok = false
			continue
		}
		rep := item.Report
		match := rep.ConsensusErr == nil && rep.MaxDecideRound() == sp.f+1
		ok = ok && match
		t.AddRow(sp.n, sp.f, rep.MaxDecideRound(), sp.f+1, match)
	}
	t.Verdict = verdict(ok, "rounds equal f+1 under the coordinator killer; 1 round when p1 survives")
	return t
}

// E4Baselines reproduces the introduction's comparison: the paper's f+1
// against the classic model's min(f+2, t+1) early-stopping bound and the
// t+1 of FloodSet, measured on real executions.
func E4Baselines() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "decision rounds: CRW (extended) vs EarlyStop and FloodSet (classic)",
		Claim:   "f+1 vs min(f+2, t+1) vs t+1 (Section 1)",
		Columns: []string{"n", "t", "f", "crw", "earlystop", "floodset", "f+1", "min(f+2,t+1)", "t+1"},
	}
	// Each table row is a triple of configurations (one per protocol); the
	// triples are flattened into a single sweep batch and read back with a
	// stride of three.
	type spec struct{ n, tt, f int }
	var specs []spec
	var configs []agree.Config
	for _, n := range []int{4, 8, 16, 32} {
		tt := n - 1
		for _, f := range []int{0, 1, 2, n / 2} {
			if f > tt {
				continue
			}
			specs = append(specs, spec{n: n, tt: tt, f: f})
			configs = append(configs,
				agree.Config{N: n, Protocol: agree.ProtocolCRW,
					Faults: agree.CoordinatorCrashes(f)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolEarlyStop,
					Faults: agree.CoordinatorCrashes(f)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolFloodSet,
					Faults: agree.CoordinatorCrashes(f)})
		}
	}
	sr := batchSweep(configs, sweepOpts)
	ok := true
	for i, sp := range specs {
		crwIt, esIt, fsIt := sr.Items[3*i], sr.Items[3*i+1], sr.Items[3*i+2]
		if crwIt.Err != nil || esIt.Err != nil || fsIt.Err != nil {
			ok = false
			continue
		}
		crw, es, fs := crwIt.Report, esIt.Report, fsIt.Report
		wantES := timing.ClassicOptimalRounds(sp.f, sp.tt)
		rowOK := crw.MaxDecideRound() == sp.f+1 &&
			es.MaxDecideRound() <= wantES &&
			fs.MaxDecideRound() == sp.tt+1 &&
			crw.ConsensusErr == nil && es.ConsensusErr == nil && fs.ConsensusErr == nil
		ok = ok && rowOK
		t.AddRow(sp.n, sp.tt, sp.f, crw.MaxDecideRound(), es.MaxDecideRound(), fs.MaxDecideRound(),
			sp.f+1, wantES, sp.tt+1)
	}
	t.Verdict = verdict(ok, "CRW always one round ahead of the classic early-stopping baseline")
	return t
}

// E2BitComplexity reproduces Theorem 2: best-case bits (n-1)(b+1) measured
// exactly, and worst-case bits bounded by the theorem's scenario sum.
func E2BitComplexity() *Table {
	t := &Table{
		ID:      "E2",
		Title:   "bit complexity (Theorem 2)",
		Claim:   "best case (n-1)(b+1) bits; worst case bounded by sum_{i<=t+1}(n-i)(b+1)",
		Columns: []string{"n", "b", "scenario", "msgs", "bits", "formula", "within"},
	}
	ok := true
	for _, n := range []int{4, 8, 16, 64} {
		for _, b := range []int{8, 64, 1024} {
			// Best case: failure-free single round.
			rep, err := agree.Run(agree.Config{N: n, Bits: b})
			if err != nil {
				ok = false
				continue
			}
			best := core.BestCaseBits(n, b)
			match := rep.Counters.TotalBits() == best
			ok = ok && match
			t.AddRow(n, b, "best (f=0)", rep.Counters.TotalMsgs(), rep.Counters.TotalBits(), best, match)

			// Adversarial case: every coordinator crashes after a full data
			// step but before any commit escapes — the schedule that
			// maximizes transmitted data while forcing the run to t+1
			// rounds. (Theorem 2's scenario also counts full commit
			// sequences; delivering them would end the run early, which is
			// why the theorem is an upper bound — see EXPERIMENTS.md.)
			tt := n - 1
			worstRep, err := agree.Run(agree.Config{N: n, Bits: b,
				Faults: agree.CoordinatorCrashesDelivering(tt, 0)})
			if err != nil {
				ok = false
				continue
			}
			bound := core.WorstCaseBits(n, tt, b)
			within := worstRep.Counters.TotalBits() <= bound
			ok = ok && within
			t.AddRow(n, b, fmt.Sprintf("adversarial (f=%d)", worstRep.Faults()),
				worstRep.Counters.TotalMsgs(), worstRep.Counters.TotalBits(), bound, within)
		}
	}
	t.Verdict = verdict(ok, "best case exact; adversarial runs within the Theorem 2 bound")
	return t
}

// E9Messages reproduces the message-count side of Theorem 2's analysis:
// total messages of CRW under heavy fault schedules vs the flooding
// baselines' n(n-1) per round.
func E9Messages() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "total messages: CRW vs flooding baselines",
		Claim:   "CRW sends O(n) messages per round (coordinator only) vs Θ(n²) for flooding (Theorem 2 proof)",
		Columns: []string{"n", "f", "crw msgs", "crw bound", "earlystop msgs", "floodset msgs"},
	}
	// Flattened protocol triples, like E4: one sweep batch, stride three.
	type spec struct{ n, tt, f int }
	var specs []spec
	var configs []agree.Config
	for _, n := range []int{4, 8, 16, 32} {
		tt := n - 1
		for _, f := range []int{0, 1, n / 4, n / 2} {
			specs = append(specs, spec{n: n, tt: tt, f: f})
			configs = append(configs,
				agree.Config{N: n,
					Faults: agree.CoordinatorCrashesDelivering(f, 0)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolEarlyStop,
					Faults: agree.CoordinatorCrashes(f)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolFloodSet,
					Faults: agree.CoordinatorCrashes(f)})
		}
	}
	sr := batchSweep(configs, sweepOpts)
	ok := true
	for i, sp := range specs {
		crwIt, esIt, fsIt := sr.Items[3*i], sr.Items[3*i+1], sr.Items[3*i+2]
		if crwIt.Err != nil || esIt.Err != nil || fsIt.Err != nil {
			ok = false
			continue
		}
		crw, es, fs := crwIt.Report, esIt.Report, fsIt.Report
		bound := core.WorstCaseDataMessages(sp.n, sp.tt) + core.WorstCaseCommitMessages(sp.n, sp.tt)
		rowOK := crw.Counters.TotalMsgs() <= bound &&
			crw.Counters.TotalMsgs() < fs.Counters.TotalMsgs()
		ok = ok && rowOK
		t.AddRow(sp.n, sp.f, crw.Counters.TotalMsgs(), bound,
			es.Counters.TotalMsgs(), fs.Counters.TotalMsgs())
	}
	t.Verdict = verdict(ok, "coordinator-based CRW transmits far fewer messages than flooding")
	return t
}
