package timing_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestOptimalRounds(t *testing.T) {
	cases := []struct {
		f, t    int
		classic int
		ext     int
	}{
		{0, 3, 2, 1},
		{1, 3, 3, 2},
		{2, 3, 4, 3},
		{3, 3, 4, 4}, // classic capped at t+1
		{0, 1, 2, 1},
		{1, 1, 2, 2},
	}
	for _, c := range cases {
		if got := timing.ClassicOptimalRounds(c.f, c.t); got != c.classic {
			t.Errorf("ClassicOptimalRounds(%d,%d) = %d, want %d", c.f, c.t, got, c.classic)
		}
		if got := timing.ExtendedOptimalRounds(c.f); got != c.ext {
			t.Errorf("ExtendedOptimalRounds(%d) = %d, want %d", c.f, got, c.ext)
		}
	}
}

func TestCrossoverMatchesPaperRule(t *testing.T) {
	// Section 2.2: for f <= t-1 the extended model wins iff δ < D/(f+1).
	const d = 1.0
	for f := 0; f <= 5; f++ {
		tt := 7
		want := d / float64(f+1)
		if got := timing.CrossoverDelta(d, f, tt); math.Abs(got-want) > 1e-12 {
			t.Errorf("CrossoverDelta(f=%d) = %g, want %g", f, got, want)
		}
	}
	// At f == t the classic optimal is t+1 == f+1: no advantage possible.
	if got := timing.CrossoverDelta(d, 4, 4); got != 0 {
		t.Errorf("CrossoverDelta(f=t) = %g, want 0", got)
	}
}

func TestAdvantageSignAroundCrossover(t *testing.T) {
	const d = 1.0
	for f := 0; f <= 4; f++ {
		tt := 6
		star := timing.CrossoverDelta(d, f, tt)
		below := timing.Cost{D: d, Delta: star * 0.9}
		above := timing.Cost{D: d, Delta: star * 1.1}
		if !below.ExtendedWins(f, tt) {
			t.Errorf("f=%d: extended should win below crossover (δ=%g)", f, below.Delta)
		}
		if above.ExtendedWins(f, tt) {
			t.Errorf("f=%d: extended should lose above crossover (δ=%g)", f, above.Delta)
		}
	}
}

func TestTimesAndString(t *testing.T) {
	c := timing.Cost{D: 2, Delta: 0.5}
	if got := c.ExtendedRound(); got != 2.5 {
		t.Errorf("ExtendedRound = %g, want 2.5", got)
	}
	if got := c.ClassicTime(3); got != 6 {
		t.Errorf("ClassicTime(3) = %g, want 6", got)
	}
	if got := c.ExtendedTime(2); got != 5 {
		t.Errorf("ExtendedTime(2) = %g, want 5", got)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestAdvantagePropertyDeltaZero(t *testing.T) {
	// Property: with δ = 0 the extended model never loses (it needs at most
	// as many rounds as the classic optimum, for every f <= t).
	f := func(fRaw, tRaw uint8) bool {
		tt := int(tRaw%8) + 1
		ff := int(fRaw) % (tt + 1)
		c := timing.Cost{D: 1, Delta: 0}
		return c.Advantage(ff, tt) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdvantageMonotoneInDelta(t *testing.T) {
	// Property: the advantage strictly decreases as δ grows.
	f := func(fRaw, tRaw uint8, d1, d2 float64) bool {
		tt := int(tRaw%8) + 1
		ff := int(fRaw) % (tt + 1)
		a, b := math.Abs(d1), math.Abs(d2)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Keep δ in a physically meaningful range to avoid float overflow.
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		if a > b {
			a, b = b, a
		}
		if a == b {
			return true
		}
		lo := timing.Cost{D: 1, Delta: a}
		hi := timing.Cost{D: 1, Delta: b}
		return lo.Advantage(ff, tt) > hi.Advantage(ff, tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
