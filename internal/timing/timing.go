// Package timing implements the round-duration cost model of Section 2.2.
//
// In the traditional synchronous model a round lasts D — an upper bound on
// message transfer delay plus local processing time. The extended model adds
// the control sending step, pipelined right behind the data step on the same
// channels, which lengthens the round by δ with δ << D (δ does not have to
// cover a message transfer delay: the control message is pipelined behind the
// data message, so D + δ still bounds the arrival of both).
//
// A consensus run deciding in R_ext rounds of the extended model therefore
// costs R_ext·(D+δ) time, against R_cl·D for an R_cl-round classic-model
// algorithm. With the optimal round counts (f+1 for the extended model,
// min(f+2, t+1) for the classic model) the extended model wins iff
//
//	(f+1)(D+δ) < min(f+2, t+1)·D.
//
// For f <= t-2 this reduces to δ/D < 1/(f+1); for f ∈ {t-1, t} the classic
// bound is already t+1 = f+2 or f+1 and the advantage shrinks or vanishes.
// Experiment E3 sweeps δ/D and f to chart the crossover.
package timing

import "fmt"

// Cost describes the per-round time parameters.
type Cost struct {
	// D is the classic round duration (message delay + processing bound).
	D float64
	// Delta is the extra duration of the extended model's control step (δ).
	Delta float64
}

// ExtendedRound returns the duration of one extended-model round, D+δ.
func (c Cost) ExtendedRound() float64 { return c.D + c.Delta }

// ClassicTime returns the completion time of a classic-model run of r rounds.
func (c Cost) ClassicTime(r int) float64 { return float64(r) * c.D }

// ExtendedTime returns the completion time of an extended-model run of r
// rounds.
func (c Cost) ExtendedTime(r int) float64 { return float64(r) * c.ExtendedRound() }

// ClassicOptimalRounds returns the classic-model uniform consensus decision
// bound min(f+2, t+1).
func ClassicOptimalRounds(f, t int) int {
	r := f + 2
	if t+1 < r {
		r = t + 1
	}
	return r
}

// ExtendedOptimalRounds returns the extended-model decision bound f+1
// (Theorems 1 and 4).
func ExtendedOptimalRounds(f int) int { return f + 1 }

// Advantage returns the time gained by running the optimal extended-model
// algorithm instead of the optimal classic-model one, for f actual crashes
// out of t tolerated: positive means the extended model is faster.
func (c Cost) Advantage(f, t int) float64 {
	return c.ClassicTime(ClassicOptimalRounds(f, t)) - c.ExtendedTime(ExtendedOptimalRounds(f))
}

// ExtendedWins reports whether the extended model strictly beats the classic
// model for the given fault count.
func (c Cost) ExtendedWins(f, t int) bool { return c.Advantage(f, t) > 0 }

// CrossoverDelta returns the largest δ (exclusive) for which the extended
// model still beats the classic model with f crashes out of t tolerated:
// δ* = D·(min(f+2,t+1) - (f+1))/(f+1). The extended model wins iff
// δ < δ*. When min(f+2,t+1) == f+1 (i.e. f == t) the crossover is 0: the
// extended model cannot win on time and only ties at δ = 0.
func CrossoverDelta(d float64, f, t int) float64 {
	rc := ClassicOptimalRounds(f, t)
	re := ExtendedOptimalRounds(f)
	return d * float64(rc-re) / float64(re)
}

// CrossoverRatio returns δ*/D for the given fault count (see CrossoverDelta).
// For f <= t-1 this is 1/(f+1), matching Section 2.2's δ < D/(f+1) rule.
func CrossoverRatio(f, t int) float64 { return CrossoverDelta(1, f, t) }

// String renders the cost parameters.
func (c Cost) String() string { return fmt.Sprintf("D=%g δ=%g", c.D, c.Delta) }
