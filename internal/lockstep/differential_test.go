package lockstep_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/agree"
	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/lockstep"
	"repro/internal/sim"
)

// randomScript generates a random but deterministic (order-insensitive)
// scripted adversary: a set of processes, each with a crash round and a
// legal truncation. Script adversaries are pure functions of (process,
// round), so both engines see identical fault behaviour regardless of
// scheduling.
func randomScript(rng *rand.Rand, n int) *adversary.Script {
	plans := map[sim.ProcID]adversary.CrashPlan{}
	crashes := rng.Intn(n) // 0..n-1 crashes
	perm := rng.Perm(n)
	for i := 0; i < crashes; i++ {
		p := sim.ProcID(perm[i] + 1)
		cp := adversary.CrashPlan{Round: sim.Round(rng.Intn(n) + 1)}
		// Legal truncations only: either a data-step crash (mask, no
		// control) or a control-step crash (all data, prefix).
		if rng.Intn(2) == 0 {
			mask := make([]bool, n) // oversized masks are truncated positionally
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			cp.DataMask = mask[:rng.Intn(n)]
			cp.CtrlPrefix = 0
		} else {
			cp.DeliverAllData = true
			cp.CtrlPrefix = rng.Intn(n + 1)
		}
		plans[p] = cp
	}
	return adversary.NewScript(plans)
}

// TestDifferentialEnginesUnderRandomScripts fuzzes both engines with the
// same randomly scripted crash schedules and requires bit-identical results:
// same rounds, decisions, decide rounds, crash sets and traffic counters.
func TestDifferentialEnginesUnderRandomScripts(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 3
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(rng.Intn(1000))
		}

		mk := func() (sim.Adversary, []sim.Process) {
			return randomScript(rand.New(rand.NewSource(seed)), n),
				core.NewSystem(props, core.Options{})
		}

		adv1, procs1 := mk()
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2)},
			procs1, adv1)
		if err != nil {
			return false
		}
		want, err := eng.Run()
		if err != nil {
			return false
		}

		adv2, procs2 := mk()
		rt, err := lockstep.New(lockstep.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2)},
			procs2, adv2)
		if err != nil {
			return false
		}
		got, err := rt.Run()
		if err != nil {
			return false
		}

		if got.Rounds != want.Rounds || len(got.Decisions) != len(want.Decisions) ||
			len(got.Crashed) != len(want.Crashed) {
			t.Logf("seed=%d n=%d: rounds %d/%d decisions %v/%v crashed %v/%v",
				seed, n, got.Rounds, want.Rounds, got.Decisions, want.Decisions,
				got.Crashed, want.Crashed)
			return false
		}
		for id, v := range want.Decisions {
			if got.Decisions[id] != v || got.DecideRound[id] != want.DecideRound[id] {
				return false
			}
		}
		for id, r := range want.Crashed {
			if got.Crashed[id] != r {
				return false
			}
		}
		return got.Counters.DataMsgs == want.Counters.DataMsgs &&
			got.Counters.CtrlMsgs == want.Counters.CtrlMsgs &&
			got.Counters.DataBits == want.Counters.DataBits &&
			got.Counters.DroppedData == want.Counters.DroppedData &&
			got.Counters.DroppedCtrl == want.Counters.DroppedCtrl
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomAgreeScript mirrors randomScript at the public API level: a random
// but order-insensitive agree.ScriptedFaults spec, legal for every protocol
// (oversized masks are truncated positionally; control prefixes clamp to the
// plan's control sequence, which is empty for the classic protocols).
func randomAgreeScript(rng *rand.Rand, n int) agree.FaultSpec {
	plans := map[int]agree.CrashPlan{}
	crashes := rng.Intn(n)
	perm := rng.Perm(n)
	for i := 0; i < crashes; i++ {
		cp := agree.CrashPlan{Round: rng.Intn(n) + 1}
		if rng.Intn(2) == 0 {
			mask := make([]bool, rng.Intn(n))
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			cp.DataMask = mask
		} else {
			cp.DeliverAllData = true
			// A control sequence has at most n-1 destinations; larger
			// prefixes are rejected by FaultSpec validation.
			cp.CtrlPrefix = rng.Intn(n)
		}
		plans[perm[i]+1] = cp
	}
	return agree.ScriptedFaults(plans)
}

// TestCrossCheckDifferentialAllProtocols extends the engine differential
// beyond CRW to ProtocolEarlyStop and ProtocolFloodSet, driven through the
// sweep harness's CrossCheck mode: every configuration runs on the
// deterministic engine and is re-executed on every other registered engine
// (the lockstep runtime and the continuous-time timed engine), and any
// semantic divergence (rounds, decisions, crash set, counters) fails the
// item. scripts/verify.sh runs this under -race.
func TestCrossCheckDifferentialAllProtocols(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 3
		faults := randomAgreeScript(rng, n)
		configs := []agree.Config{
			{N: n, Protocol: agree.ProtocolCRW, Faults: faults},
			{N: n, Protocol: agree.ProtocolEarlyStop, Faults: faults},
			{N: n, Protocol: agree.ProtocolFloodSet, Faults: faults},
		}
		sr := agree.Sweep(configs, agree.SweepOptions{Workers: 3, CrossCheck: true})
		for i, item := range sr.Items {
			if item.Err != nil {
				t.Logf("seed=%d n=%d %s: %v", seed, n, configs[i].Protocol, item.Err)
				return false
			}
			if len(item.CrossChecked) == 0 {
				t.Logf("seed=%d n=%d %s: cross-check silently skipped", seed, n, configs[i].Protocol)
				return false
			}
			if item.Report.ConsensusErr != nil {
				t.Logf("seed=%d n=%d %s: %v", seed, n, configs[i].Protocol, item.Report.ConsensusErr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestCrossCheckDifferentialFuzzSchedules differential-tests 100
// fuzzer-generated random schedules: each is recorded by the fuzz package's
// random-walk adversary on the deterministic engine, converted to the
// public replay format, and swept with CrossCheck, which re-executes every
// configuration on each other registered engine — the lockstep runtime and
// the timed engine — and fails the item on any semantic divergence. Unlike randomScript above, these schedules come from the
// exact generator the fuzzing campaigns use — masks sized to the real send
// plans, legal crash points only — so this is the differential gate for
// the fuzzer's replay path. scripts/verify.sh runs this under -race.
func TestCrossCheckDifferentialFuzzSchedules(t *testing.T) {
	const schedules = 100
	eng, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]agree.Config, 0, schedules)
	for seed := int64(0); len(configs) < schedules; seed++ {
		n := 3 + int(seed%8) // 3..10 processes
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(100 + i)
		}
		factory := func() fuzz.Target {
			return fuzz.Target{
				Model:     sim.ModelExtended,
				Horizon:   sim.Round(n + 2),
				Procs:     core.NewSystem(props, core.Options{}),
				Proposals: props,
			}
		}
		out, err := fuzz.RunSeed(eng, factory, fuzz.ConsensusOracle(check.BoundFPlus1), seed,
			fuzz.Options{Gen: fuzz.Gen{T: n - 1, CrashProb: 0.3}})
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			t.Fatalf("seed %d: faithful algorithm violated %v (script %q)", seed, out.Err, out.Script.String())
		}
		spec, err := agree.ReplayFaults(out.Script.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		configs = append(configs, agree.Config{N: n, Faults: spec})
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 4, CrossCheck: true})
	for i, item := range sr.Items {
		if item.Err != nil {
			t.Errorf("schedule %d (n=%d): %v", i, configs[i].N, item.Err)
			continue
		}
		if len(item.CrossChecked) == 0 {
			t.Errorf("schedule %d (n=%d): cross-check silently skipped", i, configs[i].N)
		}
		if item.Report.ConsensusErr != nil {
			t.Errorf("schedule %d (n=%d): %v", i, configs[i].N, item.Report.ConsensusErr)
		}
	}
	if sr.Aggregate.CrossChecked != schedules {
		t.Errorf("cross-checked %d of %d schedules", sr.Aggregate.CrossChecked, schedules)
	}
}

// TestCrossCheckDifferentialOmissionSchedules is the omission-model engine
// differential: 100 fuzzer-generated mixed crash+omission schedules — from
// the exact recording walk the omission campaigns use — are converted to the
// public replay format and swept with CrossCheck, so every schedule runs on
// the deterministic engine and is re-executed on the lockstep runtime; any
// semantic divergence (rounds, decisions, crash set, omissive set, counters)
// fails the item. Consensus may legitimately break under omissions (that is
// the fault model's point), so the test asserts only cross-engine equality,
// including equality of the consensus verdict. Schedules that starve
// termination are skipped (both engines would error before producing a
// comparable report). scripts/verify.sh runs this under -race.
func TestCrossCheckDifferentialOmissionSchedules(t *testing.T) {
	const schedules = 100
	eng, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	configs := make([]agree.Config, 0, schedules)
	withOmissions := 0
	for seed := int64(0); len(configs) < schedules; seed++ {
		n := 3 + int(seed%8) // 3..10 processes
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(100 + i)
		}
		factory := func() fuzz.Target {
			return fuzz.Target{
				Model:     sim.ModelExtended,
				Horizon:   sim.Round(n + 2),
				Procs:     core.NewSystem(props, core.Options{}),
				Proposals: props,
			}
		}
		out, err := fuzz.RunSeed(eng, factory, fuzz.ConsensusOracle(nil), seed, fuzz.Options{
			Gen: fuzz.Gen{T: n - 1, CrashProb: 0.15,
				SendOmitProb: 0.12, RecvOmitProb: 0.08, MaxOmissive: n - 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		spec, err := agree.ReplayFaults(out.Script.String())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := agree.Config{N: n, Faults: spec}
		// Horizon exhaustion yields an engine error, not a report; those
		// schedules cannot be compared through the sweep and are skipped.
		if _, err := agree.Run(cfg); err != nil {
			continue
		}
		if out.Omissive > 0 {
			withOmissions++
		}
		configs = append(configs, cfg)
	}
	if withOmissions < schedules/4 {
		t.Fatalf("only %d of %d schedules carry omission events; the differential is not exercising the omission model", withOmissions, schedules)
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 4, CrossCheck: true})
	for i, item := range sr.Items {
		if item.Err != nil {
			t.Errorf("schedule %d (n=%d, %v): %v", i, configs[i].N, configs[i].Faults, item.Err)
			continue
		}
		if len(item.CrossChecked) == 0 {
			t.Errorf("schedule %d (n=%d): cross-check silently skipped", i, configs[i].N)
		}
	}
	if sr.Aggregate.CrossChecked != schedules {
		t.Errorf("cross-checked %d of %d schedules", sr.Aggregate.CrossChecked, schedules)
	}
}

// randomOmissionSpec builds a random but order-insensitive mixed
// crash+omission spec at the public API level: a few crash plans plus
// per-round omission plans (send masks, receive masks, full drops), always
// legal for FaultSpec validation (omissions strictly before crash rounds).
func randomOmissionSpec(rng *rand.Rand, n int) agree.FaultSpec {
	crashes := map[int]agree.CrashPlan{}
	omissions := map[int][]agree.OmissionPlan{}
	perm := rng.Perm(n)
	nCrash := rng.Intn(n / 2)
	for i := 0; i < nCrash; i++ {
		crashes[perm[i]+1] = agree.CrashPlan{Round: rng.Intn(n) + 2, DeliverAllData: true, CtrlPrefix: rng.Intn(n)}
	}
	nOmit := 1 + rng.Intn(n-1)
	for i := 0; i < nOmit; i++ {
		p := perm[rng.Intn(n)] + 1
		maxRound := n + 1
		if cp, ok := crashes[p]; ok {
			maxRound = cp.Round - 1
		}
		if maxRound < 1 {
			continue
		}
		rounds := map[int]bool{}
		for _, op := range omissions[p] {
			rounds[op.Round] = true
		}
		round := rng.Intn(maxRound) + 1
		if rounds[round] {
			continue
		}
		op := agree.OmissionPlan{Round: round}
		switch rng.Intn(4) {
		case 0:
			op.DropAllSend = true
		case 1:
			op.DropAllRecv = true
		case 2:
			mask := make([]bool, rng.Intn(n))
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			op.SendData = mask
			op.SendCtrl = mask
		default:
			mask := make([]bool, n)
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			op.Recv = mask
		}
		omissions[p] = append(omissions[p], op)
	}
	return agree.CrashesWithOmissions(crashes, omissions)
}

// TestCrossCheckDifferentialScriptedOmissions property-tests the public
// scripted-omission constructors across both engines and all three
// protocols: any semantic divergence between the deterministic and lockstep
// execution of the same mixed crash+omission spec fails the item.
// scripts/verify.sh runs this under -race.
func TestCrossCheckDifferentialScriptedOmissions(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 3
		faults := randomOmissionSpec(rng, n)
		configs := []agree.Config{
			{N: n, Protocol: agree.ProtocolCRW, Faults: faults},
			{N: n, Protocol: agree.ProtocolEarlyStop, Faults: faults},
			{N: n, Protocol: agree.ProtocolFloodSet, Faults: faults},
		}
		sr := agree.Sweep(configs, agree.SweepOptions{Workers: 3, CrossCheck: true})
		for i, item := range sr.Items {
			if item.Err != nil {
				// Omission schedules may starve termination; a primary-engine
				// error is acceptable, but any cross-check error — a
				// divergence, or a reference engine failing where the primary
				// succeeded — is not.
				if strings.Contains(item.Err.Error(), "crosscheck") {
					t.Logf("seed=%d n=%d %s: %v", seed, n, configs[i].Protocol, item.Err)
					return false
				}
				continue
			}
			if len(item.CrossChecked) == 0 {
				t.Logf("seed=%d n=%d %s: cross-check silently skipped", seed, n, configs[i].Protocol)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
