package lockstep_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/earlystop"
	"repro/internal/consensus/floodset"
	"repro/internal/core"
	"repro/internal/lockstep"
	"repro/internal/sim"
)

func props(n int) []sim.Value {
	vs := make([]sim.Value, n)
	for i := range vs {
		vs[i] = sim.Value(100 + i)
	}
	return vs
}

// buildSystem constructs a fresh protocol instance by name.
func buildSystem(t *testing.T, kind string, pr []sim.Value) ([]sim.Process, sim.Model) {
	t.Helper()
	n := len(pr)
	switch kind {
	case "crw":
		return core.NewSystem(pr, core.Options{}), sim.ModelExtended
	case "floodset":
		return floodset.NewSystem(pr, n-1, 64), sim.ModelClassic
	case "earlystop":
		return earlystop.NewSystem(pr, n-1, 64), sim.ModelClassic
	default:
		t.Fatalf("unknown protocol %q", kind)
		return nil, 0
	}
}

// adversaries returns a fresh instance of each deterministic (order
// insensitive) adversary scenario.
func adversaries(n int) map[string]func() sim.Adversary {
	return map[string]func() sim.Adversary{
		"none": func() sim.Adversary { return adversary.None{} },
		"coordkiller-silent": func() sim.Adversary {
			return adversary.CoordinatorKiller{F: 2}
		},
		"coordkiller-data": func() sim.Adversary {
			return adversary.CoordinatorKiller{F: 2, DeliverAllData: true}
		},
		"script-prefix": func() sim.Adversary {
			return adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
				1: {Round: 1, DeliverAllData: true, CtrlPrefix: 1},
				3: {Round: 2, DeliverAllData: true, CtrlPrefix: adversary.CtrlAll},
			})
		},
		"script-subset": func() sim.Adversary {
			return adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
				2: {Round: 1, DataMask: []bool{true, false, true}},
			})
		},
	}
}

func TestLockstepMatchesDeterministicEngine(t *testing.T) {
	// Cross-validation: for every protocol and deterministic adversary, the
	// goroutine runtime and the deterministic engine must agree on rounds,
	// decisions, decide rounds, crash sets, and transmitted message counts.
	const n = 5
	for _, kind := range []string{"crw", "floodset", "earlystop"} {
		for name, mkAdv := range adversaries(n) {
			t.Run(fmt.Sprintf("%s/%s", kind, name), func(t *testing.T) {
				pr := props(n)

				procs1, model := buildSystem(t, kind, pr)
				eng, err := sim.NewEngine(sim.Config{Model: model, Horizon: n + 2}, procs1, mkAdv())
				if err != nil {
					t.Fatal(err)
				}
				want, err := eng.Run()
				if err != nil {
					t.Fatalf("deterministic engine: %v", err)
				}

				procs2, _ := buildSystem(t, kind, pr)
				rt, err := lockstep.New(lockstep.Config{Model: model, Horizon: n + 2}, procs2, mkAdv())
				if err != nil {
					t.Fatal(err)
				}
				got, err := rt.Run()
				if err != nil {
					t.Fatalf("lockstep runtime: %v", err)
				}

				if got.Rounds != want.Rounds {
					t.Errorf("rounds: lockstep %d vs engine %d", got.Rounds, want.Rounds)
				}
				if len(got.Decisions) != len(want.Decisions) {
					t.Errorf("deciders: lockstep %v vs engine %v", got.Decisions, want.Decisions)
				}
				for id, v := range want.Decisions {
					if got.Decisions[id] != v {
						t.Errorf("p%d decision: lockstep %d vs engine %d", id, int64(got.Decisions[id]), int64(v))
					}
					if got.DecideRound[id] != want.DecideRound[id] {
						t.Errorf("p%d decide round: lockstep %d vs engine %d",
							id, got.DecideRound[id], want.DecideRound[id])
					}
				}
				for id, r := range want.Crashed {
					if got.Crashed[id] != r {
						t.Errorf("p%d crash round: lockstep %d vs engine %d", id, got.Crashed[id], r)
					}
				}
				if got.Counters.DataMsgs != want.Counters.DataMsgs ||
					got.Counters.CtrlMsgs != want.Counters.CtrlMsgs ||
					got.Counters.DataBits != want.Counters.DataBits ||
					got.Counters.CtrlBits != want.Counters.CtrlBits {
					t.Errorf("counters: lockstep %s vs engine %s", got.Counters.String(), want.Counters.String())
				}
			})
		}
	}
}

func TestLockstepConsensusUnderManyScriptedFaults(t *testing.T) {
	// Sweep scripted crash schedules (deterministic, order-insensitive) and
	// validate consensus through the goroutine runtime.
	const n = 6
	for f := 0; f <= n-1; f++ {
		pr := props(n)
		procs := core.NewSystem(pr, core.Options{})
		rt, err := lockstep.New(lockstep.Config{Model: sim.ModelExtended}, procs,
			adversary.CoordinatorKiller{F: f})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if err := check.Consensus(pr, res); err != nil {
			t.Errorf("f=%d: %v", f, err)
		}
		if got, want := res.MaxDecideRound(), sim.Round(f+1); got != want {
			t.Errorf("f=%d: max decide round %d, want %d", f, got, want)
		}
	}
}

func TestLockstepRejectsControlUnderClassic(t *testing.T) {
	pr := props(3)
	procs := core.NewSystem(pr, core.Options{}) // emits control messages
	rt, err := lockstep.New(lockstep.Config{Model: sim.ModelClassic}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if !errors.Is(err, sim.ErrControlInClassic) {
		t.Fatalf("err = %v, want ErrControlInClassic", err)
	}
}

func TestLockstepConstructorValidation(t *testing.T) {
	if _, err := lockstep.New(lockstep.Config{}, nil, adversary.None{}); err == nil {
		t.Error("accepted zero processes")
	}
	pr := props(3)
	if _, err := lockstep.New(lockstep.Config{}, core.NewSystem(pr, core.Options{}), nil); err == nil {
		t.Error("accepted nil adversary")
	}
}

func TestLockstepHorizonExhaustion(t *testing.T) {
	// Kill every coordinator: with t = n-1 = f all processes crash... use
	// n-1 crashes so p_n survives; horizon 1 is then too short for f >= 1.
	pr := props(4)
	procs := core.NewSystem(pr, core.Options{})
	rt, err := lockstep.New(lockstep.Config{Model: sim.ModelExtended, Horizon: 1}, procs,
		adversary.CoordinatorKiller{F: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run()
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

func TestLockstepManyProcesses(t *testing.T) {
	// A larger system exercises real goroutine concurrency.
	const n = 64
	pr := props(n)
	procs := core.NewSystem(pr, core.Options{})
	rt, err := lockstep.New(lockstep.Config{Model: sim.ModelExtended}, procs,
		adversary.CoordinatorKiller{F: 5, DeliverAllData: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := check.Consensus(pr, res); err != nil {
		t.Fatal(err)
	}
	if got, want := res.MaxDecideRound(), sim.Round(6); got != want {
		t.Errorf("max decide round = %d, want %d", got, want)
	}
}
