// Package lockstep is a concurrent runtime for the synchronous models: one
// goroutine per process, one buffered Go channel per directed process pair,
// and a driver that enforces the round structure with barriers.
//
// It executes the same sim.Process state machines as the deterministic engine
// in internal/sim, under the same sim.Adversary interface, and produces the
// same sim.Result. The repository's cross-validation tests run identical
// (process, adversary) configurations through both engines and assert
// identical decisions — evidence that the deterministic kernel faithfully
// implements the model the goroutine runtime realizes "for real".
//
// The mapping onto Go concurrency mirrors the model closely:
//
//   - every ordered pair of processes gets a channel of capacity 2, because a
//     channel of the extended model never holds more than one data message
//     and one control message per round (footnote 3 of the paper);
//   - the send phase of a round runs concurrently in all process goroutines;
//     a crashing process performs the escaped prefix of its sends and then
//     its goroutine exits, exactly like a crash mid-send-phase;
//   - the barrier between the send and receive phases is the model's
//     synchrony assumption (a message sent in round r arrives in round r).
//
// Adversary calls are serialized with a mutex, but the order in which
// concurrent processes consult the adversary is scheduling-dependent: use
// order-insensitive adversaries (None, Script, CoordinatorKiller — anything
// that is a pure function of process and round) when comparing against the
// deterministic engine.
package lockstep

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Config configures a lockstep run.
type Config struct {
	// Model selects classic or extended semantics.
	Model sim.Model
	// Horizon bounds the number of rounds (default n+2).
	Horizon sim.Round
}

// Runtime executes processes concurrently in lockstep rounds.
type Runtime struct {
	cfg   Config
	procs []sim.Process
	adv   sim.Adversary
	omit  sim.Omitter // adv's omission extension, nil when absent

	advMu sync.Mutex
	// mat[i][j] is the channel from p_{i+1} to p_{j+1}.
	mat [][]chan sim.Message
}

// sendReport is a worker's account of its send phase.
type sendReport struct {
	id      sim.ProcID
	crashed bool
	omitted bool // the adversary injected an omission fault this round
	err     error
	ctr     metrics.Counters
}

// recvReport is a worker's account of its receive phase.
type recvReport struct {
	id      sim.ProcID
	decided bool
	value   sim.Value
	halted  bool
	ctr     metrics.Counters // receive-omission accounting
	led     metrics.Ledger   // delivery-ledger slice of this receive phase
}

// worker is the per-process goroutine state.
type worker struct {
	proc  sim.Process
	start chan sim.Round
	sent  chan sendReport
	recv  chan struct{}
	done  chan recvReport
	quit  chan struct{} // closed by the driver on abnormal termination
}

// New builds a runtime over the given processes (ids 1..n in order).
func New(cfg Config, procs []sim.Process, adv sim.Adversary) (*Runtime, error) {
	if len(procs) == 0 {
		return nil, errors.New("lockstep: no processes")
	}
	for i, p := range procs {
		if p.ID() != sim.ProcID(i+1) {
			return nil, fmt.Errorf("lockstep: process at index %d has id %d, want %d", i, p.ID(), i+1)
		}
	}
	if adv == nil {
		return nil, errors.New("lockstep: nil adversary")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = sim.Round(len(procs) + 2)
	}
	n := len(procs)
	mat := make([][]chan sim.Message, n)
	for i := range mat {
		mat[i] = make([]chan sim.Message, n)
		for j := range mat[i] {
			if i != j {
				// One data + one control message per channel per round.
				mat[i][j] = make(chan sim.Message, 2)
			}
		}
	}
	rt := &Runtime{cfg: cfg, procs: procs, adv: adv, mat: mat}
	rt.omit, _ = adv.(sim.Omitter)
	return rt, nil
}

// consult serializes adversary access across worker goroutines: the crash
// decision first and — exactly like the deterministic engine — the omission
// decision only when the process survives (a crash truncation subsumes any
// send omission, and a crashed process receives nothing anyway).
func (rt *Runtime) consult(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome, sim.Omission) {
	rt.advMu.Lock()
	defer rt.advMu.Unlock()
	crash, outcome := rt.adv.Crashes(p, r, plan)
	if crash || rt.omit == nil {
		return crash, outcome, sim.Omission{}
	}
	return false, sim.CrashOutcome{}, rt.omit.Omits(p, r, plan)
}

// run is the worker goroutine body.
func (rt *Runtime) run(w *worker) {
	id := w.proc.ID()
	n := len(rt.procs)
	for r := range w.start {
		plan := w.proc.Send(r)
		rep := sendReport{id: id}
		if rt.cfg.Model == sim.ModelClassic && len(plan.Control) > 0 {
			rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrControlInClassic, id, r)
			w.sent <- rep
			return
		}
		if err := sim.ValidatePlan(id, n, plan); err != nil {
			rep.err = fmt.Errorf("%v (round %d)", err, r)
			w.sent <- rep
			return
		}
		// The capacity-2 channels encode the model's per-round channel
		// discipline; reject plans that would overflow (and deadlock).
		perDest := map[sim.ProcID]int{}
		for _, o := range plan.Data {
			perDest[o.To]++
		}
		for _, to := range plan.Control {
			perDest[to]++
		}
		for to, cnt := range perDest {
			if cnt > 2 {
				rep.err = fmt.Errorf("lockstep: p%d sends %d messages to p%d in round %d (channel capacity 2)",
					id, cnt, to, r)
				w.sent <- rep
				return
			}
		}
		crash, outcome, om := rt.consult(id, r, plan)
		if crash && !outcome.ValidFor(plan) {
			rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOutcome, id, r)
			w.sent <- rep
			return
		}
		if !om.IsZero() && !om.ValidFor(plan) {
			rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOmission, id, r)
			w.sent <- rep
			return
		}
		if !crash {
			outcome = sim.FullDelivery(plan)
		}
		// Data sending step: the escaped subset goes out in plan order. A
		// crash truncation and a send omission are accounted differently
		// (dropped vs omitted), matching the deterministic engine exactly.
		for i, o := range plan.Data {
			if !outcome.DataDelivered[i] {
				rep.ctr.DroppedData++
				continue
			}
			if om.Data != nil && !om.Data[i] {
				rep.ctr.OmittedData++
				continue
			}
			m := sim.Message{From: id, To: o.To, Round: r, Kind: sim.Data, Payload: o.Payload}
			rt.mat[id-1][o.To-1] <- m
			rep.ctr.AddData(m.Bits())
		}
		// Control sending step, immediately after, in the prescribed order;
		// a crash lets exactly a prefix escape, a send omission may suppress
		// any subset (the sender is alive and executes the whole step).
		for i, to := range plan.Control {
			if i >= outcome.CtrlPrefix {
				rep.ctr.DroppedCtrl++
				continue
			}
			if om.Ctrl != nil && !om.Ctrl[i] {
				rep.ctr.OmittedCtrl++
				continue
			}
			rt.mat[id-1][to-1] <- sim.Message{From: id, To: to, Round: r, Kind: sim.Control}
			rep.ctr.AddCtrl()
		}
		rep.crashed = crash
		rep.omitted = !om.IsZero()
		w.sent <- rep
		if crash {
			return // the crash: this goroutine is gone forever
		}

		select {
		case <-w.recv: // barrier: all round-r messages are now in the channels
		case <-w.quit: // the driver aborted the run
			return
		}
		inbox := rt.drain(id)
		rrep := recvReport{id: id}
		if om.Recv != nil {
			// Receive omission: deliveries from masked-out senders vanish
			// before the process sees its inbox.
			w2 := 0
			for _, m := range inbox {
				if i := int(m.From) - 1; i < len(om.Recv) && !om.Recv[i] {
					rrep.ctr.OmittedRecv++
					rrep.led.RecvOmitted(m.Kind == sim.Control)
					continue
				}
				inbox[w2] = m
				w2++
			}
			inbox = inbox[:w2]
		}
		for _, m := range inbox {
			rrep.led.Delivered(m.Kind == sim.Control)
		}
		sim.SortInbox(inbox)
		w.proc.Receive(r, inbox)
		v, dec := w.proc.Decided()
		rrep.decided, rrep.value = dec, v
		rrep.halted = w.proc.Halted()
		w.done <- rrep
		if rrep.halted {
			return // the protocol returned
		}
	}
}

// drain empties every incoming channel of process id (non-blocking: all
// senders have completed their send phase).
func (rt *Runtime) drain(id sim.ProcID) []sim.Message {
	var inbox []sim.Message
	for i := range rt.procs {
		ch := rt.mat[i][id-1]
		if ch == nil {
			continue
		}
		for {
			select {
			case m := <-ch:
				inbox = append(inbox, m)
			default:
				goto next
			}
		}
	next:
	}
	return inbox
}

// Run executes the system until every alive process halts, the horizon is
// reached, or a model violation occurs.
func (rt *Runtime) Run() (*sim.Result, error) {
	n := len(rt.procs)
	workers := make([]*worker, n)
	quit := make(chan struct{})
	for i, p := range rt.procs {
		w := &worker{
			proc:  p,
			start: make(chan sim.Round),
			sent:  make(chan sendReport, 1),
			recv:  make(chan struct{}),
			done:  make(chan recvReport, 1),
			quit:  quit,
		}
		workers[i] = w
		go rt.run(w)
	}
	defer func() {
		close(quit)
		for _, w := range workers {
			close(w.start)
		}
	}()

	res := &sim.Result{
		Decisions:   map[sim.ProcID]sim.Value{},
		DecideRound: map[sim.ProcID]sim.Round{},
		Crashed:     map[sim.ProcID]sim.Round{},
	}
	alive := make(map[sim.ProcID]bool, n)
	halted := map[sim.ProcID]bool{}
	omissive := map[sim.ProcID]int{}
	for _, p := range rt.procs {
		alive[p.ID()] = true
	}
	active := func() []*worker {
		var ws []*worker
		for _, w := range workers {
			id := w.proc.ID()
			if alive[id] && !halted[id] {
				ws = append(ws, w)
			}
		}
		return ws
	}

	var r sim.Round
	for r = 1; r <= rt.cfg.Horizon; r++ {
		ws := active()
		if len(ws) == 0 {
			r--
			break
		}
		// Send phase (concurrent across workers).
		for _, w := range ws {
			w.start <- r
		}
		crashedNow := map[sim.ProcID]bool{}
		var firstErr error
		for _, w := range ws {
			rep := <-w.sent
			res.Counters.Merge(rep.ctr)
			if rep.err != nil && firstErr == nil {
				firstErr = rep.err
			}
			if rep.omitted {
				omissive[rep.id]++
			}
			if rep.crashed {
				alive[rep.id] = false
				res.Crashed[rep.id] = r
				crashedNow[rep.id] = true
			}
		}
		if firstErr != nil {
			res.Counters.Rounds = int(r)
			res.Rounds = r
			setOmissive(res, omissive)
			return res, firstErr
		}
		// Receive phase (concurrent across surviving workers).
		var receivers []*worker
		for _, w := range ws {
			if id := w.proc.ID(); alive[id] && !crashedNow[id] {
				receivers = append(receivers, w)
			}
		}
		for _, w := range receivers {
			w.recv <- struct{}{}
		}
		for _, w := range receivers {
			rep := <-w.done
			res.Counters.Merge(rep.ctr)
			res.Ledger.Merge(rep.led)
			if rep.decided {
				if _, seen := res.Decisions[rep.id]; !seen {
					res.Decisions[rep.id] = rep.value
					res.DecideRound[rep.id] = r
				}
			}
			if rep.halted {
				halted[rep.id] = true
			}
		}
		// Drain channels of processes that died or halted so capacity-2
		// buffers can never block a future sender. The drained messages were
		// transmitted but never consumed; the ledger records their fate by
		// destination state (crashed vs halted).
		for id, a := range alive {
			if !a || halted[id] {
				for _, m := range rt.drain(id) {
					if !a {
						res.Ledger.DeadDest(m.Kind == sim.Control)
					} else {
						res.Ledger.HaltedDest(m.Kind == sim.Control)
					}
				}
			}
		}
		if len(active()) == 0 {
			break
		}
	}
	if r > rt.cfg.Horizon {
		r = rt.cfg.Horizon
		if len(active()) != 0 {
			res.Rounds = r
			res.Counters.Rounds = int(r)
			setOmissive(res, omissive)
			return res, sim.ErrNoProgress
		}
	}
	res.Rounds = r
	res.Counters.Rounds = int(r)
	setOmissive(res, omissive)
	return res, nil
}

// setOmissive attaches the per-process omission counts to a result, leaving
// Omissive nil for omission-free runs exactly like the deterministic engine.
func setOmissive(res *sim.Result, omissive map[sim.ProcID]int) {
	if len(omissive) > 0 {
		res.Omissive = omissive
	}
}
