// Package lockstep is a concurrent runtime for the synchronous models: one
// goroutine per process, one buffered Go channel per directed process pair,
// and a driver that enforces the round structure with barriers.
//
// It executes the same sim.Process state machines as the deterministic engine
// in internal/sim, under the same sim.Adversary interface, and produces the
// same sim.Result. The repository's cross-validation tests run identical
// (process, adversary) configurations through both engines and assert
// identical decisions — evidence that the deterministic kernel faithfully
// implements the model the goroutine runtime realizes "for real".
//
// The mapping onto Go concurrency mirrors the model closely:
//
//   - every ordered pair of processes gets a channel of capacity 2, because a
//     channel of the extended model never holds more than one data message
//     and one control message per round (footnote 3 of the paper);
//   - the send phase of a round runs concurrently in all process goroutines;
//     a crashing process performs the escaped prefix of its sends and then
//     its goroutine goes silent for the rest of the run, exactly like a crash
//     mid-send-phase;
//   - the barrier between the send and receive phases is the model's
//     synchrony assumption (a message sent in round r arrives in round r).
//
// Worker goroutines and the channel matrix are persistent: a Runtime built by
// New survives its Run, and Reset rearms it — new processes, adversary and
// configuration — without respawning goroutines or reallocating channels.
// That is what makes the runtime Reusable to the sweep harness: a worker
// executing a thousand lockstep jobs pays for one goroutine set. Call Close
// to terminate the goroutines when the runtime is retired.
//
// Adversary calls are serialized with a mutex, but the order in which
// concurrent processes consult the adversary is scheduling-dependent: use
// order-insensitive adversaries (None, Script, CoordinatorKiller — anything
// that is a pure function of process and round) when comparing against the
// deterministic engine.
package lockstep

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config configures a lockstep run.
type Config struct {
	// Model selects classic or extended semantics.
	Model sim.Model
	// Horizon bounds the number of rounds (default n+2).
	Horizon sim.Round
	// Telemetry, if non-nil, receives run/round spans and per-round traffic
	// series. Recording happens entirely in the single-threaded driver loop
	// (between the phase barriers), so the recorder needs no locking even
	// though the workers run concurrently. The nil path costs nothing.
	Telemetry *telemetry.Recorder
}

// Runtime executes processes concurrently in lockstep rounds. A Runtime runs
// one job per arming: New arms the first job, Reset each subsequent one.
type Runtime struct {
	cfg   Config
	procs []sim.Process
	adv   sim.Adversary
	omit  sim.Omitter // adv's omission extension, nil when absent

	advMu sync.Mutex
	// mat[i][j] is the channel from p_{i+1} to p_{j+1}.
	mat [][]chan sim.Message

	workers []*worker
	quit    chan struct{} // per-run abort signal, closed when Run returns

	consumed bool
	closed   bool

	// Driver-side scratch, reused across runs. Indexed by process (id-1).
	alive      []bool
	halted     []bool
	crashedNow []bool
	omissive   []int
	started    []*worker
	receivers  []*worker
	drainBuf   []sim.Message
}

// ctlMsg rearms an idle worker for the next run, or shuts it down.
type ctlMsg struct {
	proc     sim.Process
	quit     chan struct{}
	shutdown bool
}

// sendReport is a worker's account of its send phase.
type sendReport struct {
	id      sim.ProcID
	crashed bool
	omitted bool // the adversary injected an omission fault this round
	err     error
	ctr     metrics.Counters
}

// recvReport is a worker's account of its receive phase.
type recvReport struct {
	id      sim.ProcID
	decided bool
	value   sim.Value
	halted  bool
	ctr     metrics.Counters // receive-omission accounting
	led     metrics.Ledger   // delivery-ledger slice of this receive phase
}

// worker is the per-process goroutine state. idx and the channels are fixed
// at spawn; proc and quit are rearmed through ctl and only ever touched by
// the worker goroutine itself — the driver identifies a worker by idx alone.
type worker struct {
	rt  *Runtime
	idx int // process index: the worker runs p_{idx+1}

	proc sim.Process
	quit chan struct{}

	ctl   chan ctlMsg
	start chan sim.Round
	sent  chan sendReport
	recv  chan struct{}
	done  chan recvReport

	inbox   []sim.Message // worker-owned drain scratch
	destCnt []int         // per-destination send count scratch
}

// loop is the persistent worker goroutine: idle between runs, executing one
// round per start signal. A crash, halt, protocol error or run abort returns
// the worker to idle — never exits the goroutine — so the driver simply
// stops starting it; only a shutdown ctl terminates the loop.
func (w *worker) loop() {
	for {
		select {
		case c := <-w.ctl:
			if c.shutdown {
				return
			}
			w.proc, w.quit = c.proc, c.quit
		case r := <-w.start:
			w.rt.round(w, r)
		}
	}
}

// New builds a runtime over the given processes (ids 1..n in order) and arms
// it for one Run.
func New(cfg Config, procs []sim.Process, adv sim.Adversary) (*Runtime, error) {
	rt := &Runtime{}
	if err := rt.init(cfg, procs, adv); err != nil {
		return nil, err
	}
	return rt, nil
}

// Reset rearms the runtime for a new job, reusing the worker goroutines and
// the channel matrix (they are rebuilt only when the process count changes).
// On error the runtime keeps its previous (consumed) arming. Reset must not
// be called concurrently with Run.
func (rt *Runtime) Reset(cfg Config, procs []sim.Process, adv sim.Adversary) error {
	return rt.init(cfg, procs, adv)
}

// init validates and installs a job; shared by New and Reset. Validation
// happens before any mutation so a failed Reset leaves the runtime intact.
func (rt *Runtime) init(cfg Config, procs []sim.Process, adv sim.Adversary) error {
	if rt.closed {
		return errors.New("lockstep: runtime is closed")
	}
	if len(procs) == 0 {
		return errors.New("lockstep: no processes")
	}
	for i, p := range procs {
		if p.ID() != sim.ProcID(i+1) {
			return fmt.Errorf("lockstep: process at index %d has id %d, want %d", i, p.ID(), i+1)
		}
	}
	if adv == nil {
		return errors.New("lockstep: nil adversary")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = sim.Round(len(procs) + 2)
	}
	n := len(procs)
	if len(rt.workers) != n {
		rt.stopWorkers()
		rt.mat = make([][]chan sim.Message, n)
		for i := range rt.mat {
			rt.mat[i] = make([]chan sim.Message, n)
			for j := range rt.mat[i] {
				if i != j {
					// One data + one control message per channel per round.
					rt.mat[i][j] = make(chan sim.Message, 2)
				}
			}
		}
		rt.workers = make([]*worker, n)
		for i := range rt.workers {
			w := &worker{
				rt:    rt,
				idx:   i,
				ctl:   make(chan ctlMsg),
				start: make(chan sim.Round),
				sent:  make(chan sendReport, 1),
				recv:  make(chan struct{}),
				done:  make(chan recvReport, 1),
			}
			rt.workers[i] = w
			go w.loop()
		}
	} else {
		// An aborted run can leave messages in flight; sweep them out so the
		// capacity-2 discipline starts fresh.
		for i := range rt.procs {
			rt.drainBuf = rt.drainInto(rt.drainBuf[:0], sim.ProcID(i+1))
		}
	}
	rt.cfg, rt.procs, rt.adv = cfg, procs, adv
	rt.omit, _ = adv.(sim.Omitter)
	rt.quit = make(chan struct{})
	// The ctl handshake both delivers the new job and orders every write
	// above before the worker's next read of the runtime fields.
	for i, w := range rt.workers {
		w.ctl <- ctlMsg{proc: procs[i], quit: rt.quit}
	}
	rt.consumed = false
	return nil
}

// Close terminates the worker goroutines. The runtime cannot be used
// afterwards; Close is idempotent and must not run concurrently with Run.
func (rt *Runtime) Close() {
	if rt.closed {
		return
	}
	rt.closed = true
	rt.stopWorkers()
}

// stopWorkers shuts down the current goroutine set (all workers are idle
// between runs, so the ctl sends cannot block indefinitely).
func (rt *Runtime) stopWorkers() {
	for _, w := range rt.workers {
		w.ctl <- ctlMsg{shutdown: true}
	}
	rt.workers = nil
}

// consult serializes adversary access across worker goroutines: the crash
// decision first and — exactly like the deterministic engine — the omission
// decision only when the process survives (a crash truncation subsumes any
// send omission, and a crashed process receives nothing anyway).
func (rt *Runtime) consult(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome, sim.Omission) {
	rt.advMu.Lock()
	defer rt.advMu.Unlock()
	crash, outcome := rt.adv.Crashes(p, r, plan)
	if crash || rt.omit == nil {
		return crash, outcome, sim.Omission{}
	}
	return false, sim.CrashOutcome{}, rt.omit.Omits(p, r, plan)
}

// round executes one round in worker w: send phase, barrier, receive phase.
// Returning (on crash, halt, error or abort) parks the worker in its idle
// loop.
func (rt *Runtime) round(w *worker, r sim.Round) {
	id := w.proc.ID()
	n := len(rt.procs)
	plan := w.proc.Send(r)
	rep := sendReport{id: id}
	if rt.cfg.Model == sim.ModelClassic && len(plan.Control) > 0 {
		rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrControlInClassic, id, r)
		w.sent <- rep
		return
	}
	if err := sim.ValidatePlan(id, n, plan); err != nil {
		rep.err = fmt.Errorf("%v (round %d)", err, r)
		w.sent <- rep
		return
	}
	// The capacity-2 channels encode the model's per-round channel
	// discipline; reject plans that would overflow (and deadlock).
	if cap(w.destCnt) < n {
		w.destCnt = make([]int, n)
	}
	cnt := w.destCnt[:n]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, o := range plan.Data {
		cnt[o.To-1]++
	}
	for _, to := range plan.Control {
		cnt[to-1]++
	}
	for j, c := range cnt {
		if c > 2 {
			rep.err = fmt.Errorf("lockstep: p%d sends %d messages to p%d in round %d (channel capacity 2)",
				id, c, j+1, r)
			w.sent <- rep
			return
		}
	}
	crash, outcome, om := rt.consult(id, r, plan)
	if crash && !outcome.ValidFor(plan) {
		rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOutcome, id, r)
		w.sent <- rep
		return
	}
	if !om.IsZero() && !om.ValidFor(plan) {
		rep.err = fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOmission, id, r)
		w.sent <- rep
		return
	}
	if !crash {
		outcome = sim.FullDelivery(plan)
	}
	// Data sending step: the escaped subset goes out in plan order. A
	// crash truncation and a send omission are accounted differently
	// (dropped vs omitted), matching the deterministic engine exactly.
	for i, o := range plan.Data {
		if !outcome.DataDelivered[i] {
			rep.ctr.DroppedData++
			continue
		}
		if om.Data != nil && !om.Data[i] {
			rep.ctr.OmittedData++
			continue
		}
		m := sim.Message{From: id, To: o.To, Round: r, Kind: sim.Data, Payload: o.Payload}
		rt.mat[id-1][o.To-1] <- m
		rep.ctr.AddData(m.Bits())
	}
	// Control sending step, immediately after, in the prescribed order;
	// a crash lets exactly a prefix escape, a send omission may suppress
	// any subset (the sender is alive and executes the whole step).
	for i, to := range plan.Control {
		if i >= outcome.CtrlPrefix {
			rep.ctr.DroppedCtrl++
			continue
		}
		if om.Ctrl != nil && !om.Ctrl[i] {
			rep.ctr.OmittedCtrl++
			continue
		}
		rt.mat[id-1][to-1] <- sim.Message{From: id, To: to, Round: r, Kind: sim.Control}
		rep.ctr.AddCtrl()
	}
	rep.crashed = crash
	rep.omitted = !om.IsZero()
	w.sent <- rep
	if crash {
		return // the crash: this worker is silent for the rest of the run
	}

	select {
	case <-w.recv: // barrier: all round-r messages are now in the channels
	case <-w.quit: // the driver aborted the run
		return
	}
	w.inbox = rt.drainInto(w.inbox[:0], id)
	inbox := w.inbox
	rrep := recvReport{id: id}
	if om.Recv != nil {
		// Receive omission: deliveries from masked-out senders vanish
		// before the process sees its inbox.
		w2 := 0
		for _, m := range inbox {
			if i := int(m.From) - 1; i < len(om.Recv) && !om.Recv[i] {
				rrep.ctr.OmittedRecv++
				rrep.led.RecvOmitted(m.Kind == sim.Control)
				continue
			}
			inbox[w2] = m
			w2++
		}
		inbox = inbox[:w2]
	}
	for _, m := range inbox {
		rrep.led.Delivered(m.Kind == sim.Control)
	}
	sim.SortInbox(inbox)
	w.proc.Receive(r, inbox)
	v, dec := w.proc.Decided()
	rrep.decided, rrep.value = dec, v
	rrep.halted = w.proc.Halted()
	w.done <- rrep
}

// drainInto empties every incoming channel of process id into buf
// (non-blocking: all senders have completed their send phase).
func (rt *Runtime) drainInto(buf []sim.Message, id sim.ProcID) []sim.Message {
	for i := range rt.procs {
		ch := rt.mat[i][id-1]
		if ch == nil {
			continue
		}
		for {
			select {
			case m := <-ch:
				buf = append(buf, m)
			default:
				goto next
			}
		}
	next:
	}
	return buf
}

// resizeInts returns s resized to n elements, zeroed, reusing capacity.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeFlags returns s resized to n elements, all false, reusing capacity.
func resizeFlags(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// Run executes the system until every alive process halts, the horizon is
// reached, or a model violation occurs. Run may be called once per arming;
// Reset arms the next job.
func (rt *Runtime) Run() (*sim.Result, error) {
	if rt.closed {
		return nil, errors.New("lockstep: runtime is closed")
	}
	if rt.consumed {
		return nil, errors.New("lockstep: Runtime.Run called twice (Reset the runtime between jobs)")
	}
	rt.consumed = true
	n := len(rt.procs)
	// Closing quit releases any worker still parked at the barrier of an
	// aborted run back to its idle loop.
	defer close(rt.quit)

	res := &sim.Result{
		Decisions:   map[sim.ProcID]sim.Value{},
		DecideRound: map[sim.ProcID]sim.Round{},
		Crashed:     map[sim.ProcID]sim.Round{},
	}
	rt.alive = resizeFlags(rt.alive, n)
	rt.halted = resizeFlags(rt.halted, n)
	rt.crashedNow = resizeFlags(rt.crashedNow, n)
	rt.omissive = resizeInts(rt.omissive, n)
	for i := range rt.alive {
		rt.alive[i] = true
	}
	activeCount := func() int {
		c := 0
		for i := range rt.alive {
			if rt.alive[i] && !rt.halted[i] {
				c++
			}
		}
		return c
	}

	recording := rt.cfg.Telemetry.Enabled()
	var prevCtr metrics.Counters
	var prevLed metrics.Ledger
	var r sim.Round
	for r = 1; r <= rt.cfg.Horizon; r++ {
		if recording {
			prevCtr, prevLed = res.Counters, res.Ledger
		}
		ws := rt.started[:0]
		for i, w := range rt.workers {
			if rt.alive[i] && !rt.halted[i] {
				ws = append(ws, w)
			}
		}
		rt.started = ws
		if len(ws) == 0 {
			r--
			break
		}
		// Send phase (concurrent across workers).
		for _, w := range ws {
			w.start <- r
		}
		for i := range rt.crashedNow {
			rt.crashedNow[i] = false
		}
		var firstErr error
		for _, w := range ws {
			rep := <-w.sent
			res.Counters.Merge(rep.ctr)
			if rep.err != nil && firstErr == nil {
				firstErr = rep.err
			}
			if rep.omitted {
				rt.omissive[rep.id-1]++
			}
			if rep.crashed {
				rt.alive[rep.id-1] = false
				res.Crashed[rep.id] = r
				rt.crashedNow[rep.id-1] = true
			}
		}
		if firstErr != nil {
			res.Counters.Rounds = int(r)
			res.Rounds = r
			setOmissive(res, rt.omissive)
			return res, firstErr
		}
		// Receive phase (concurrent across surviving workers).
		recvs := rt.receivers[:0]
		for _, w := range ws {
			if rt.alive[w.idx] && !rt.crashedNow[w.idx] {
				recvs = append(recvs, w)
			}
		}
		rt.receivers = recvs
		for _, w := range recvs {
			w.recv <- struct{}{}
		}
		for _, w := range recvs {
			rep := <-w.done
			res.Counters.Merge(rep.ctr)
			res.Ledger.Merge(rep.led)
			if rep.decided {
				if _, seen := res.Decisions[rep.id]; !seen {
					res.Decisions[rep.id] = rep.value
					res.DecideRound[rep.id] = r
				}
			}
			if rep.halted {
				rt.halted[w.idx] = true
			}
		}
		// Drain channels of processes that died or halted so capacity-2
		// buffers can never block a future sender. The drained messages were
		// transmitted but never consumed; the ledger records their fate by
		// destination state (crashed vs halted).
		for i := range rt.alive {
			if !rt.alive[i] || rt.halted[i] {
				rt.drainBuf = rt.drainInto(rt.drainBuf[:0], sim.ProcID(i+1))
				for _, m := range rt.drainBuf {
					if !rt.alive[i] {
						res.Ledger.DeadDest(m.Kind == sim.Control)
					} else {
						res.Ledger.HaltedDest(m.Kind == sim.Control)
					}
				}
			}
		}
		if recording {
			rt.recordRound(res, r, prevCtr, prevLed)
		}
		if activeCount() == 0 {
			break
		}
	}
	if r > rt.cfg.Horizon {
		r = rt.cfg.Horizon
		if activeCount() != 0 {
			res.Rounds = r
			res.Counters.Rounds = int(r)
			setOmissive(res, rt.omissive)
			return res, sim.ErrNoProgress
		}
	}
	res.Rounds = r
	res.Counters.Rounds = int(r)
	setOmissive(res, rt.omissive)
	if recording {
		rt.cfg.Telemetry.Span(telemetry.SpanRun, telemetry.TrackEngine, 0, int32(r), 0, float64(r))
		if r > 0 {
			rt.cfg.Telemetry.Sample(telemetry.SeriesRoundsPerSec, float64(r), 1)
		}
	}
	return res, nil
}

// recordRound emits one round's telemetry from the driver loop: the round
// span over its unit time interval and the traffic deltas of the round,
// computed against the result snapshots taken before the send phase. The
// driver owns the result between barriers, so no synchronization is needed.
func (rt *Runtime) recordRound(res *sim.Result, r sim.Round, prevCtr metrics.Counters, prevLed metrics.Ledger) {
	rec := rt.cfg.Telemetry
	t := float64(r)
	rec.Span(telemetry.SpanRound, telemetry.TrackEngine, int32(r), 0, t-1, t)
	dc := res.Counters.Minus(prevCtr)
	dl := res.Ledger.Minus(prevLed)
	rec.Sample(telemetry.SeriesDataMsgs, t, float64(dc.DataMsgs))
	rec.Sample(telemetry.SeriesCtrlMsgs, t, float64(dc.CtrlMsgs))
	rec.Sample(telemetry.SeriesDelivered, t, float64(dl.DeliveredData+dl.DeliveredCtrl))
	rec.Sample(telemetry.SeriesDropped, t, float64(dc.DroppedData+dc.DroppedCtrl))
	rec.Sample(telemetry.SeriesOmitted, t, float64(dc.OmittedData+dc.OmittedCtrl+dc.OmittedRecv))
	rec.Sample(telemetry.SeriesLate, t, float64(dc.Late))
}

// setOmissive attaches the per-process omission counts to a result, leaving
// Omissive nil for omission-free runs exactly like the deterministic engine.
func setOmissive(res *sim.Result, omissive []int) {
	for i, c := range omissive {
		if c == 0 {
			continue
		}
		if res.Omissive == nil {
			res.Omissive = map[sim.ProcID]int{}
		}
		res.Omissive[sim.ProcID(i+1)] = c
	}
}
