// Package des is a minimal deterministic discrete-event simulator used by
// the continuous-time substrates of this repository (the fast failure
// detector model of experiment E7 and the timed consensus engine of
// internal/timed).
//
// Events are callbacks scheduled at absolute times and executed in
// nondecreasing time order; ties are broken by scheduling order (FIFO), which
// keeps runs fully deterministic. Scheduling returns a Handle that can cancel
// the event before it fires (timers that are superseded), implemented by lazy
// deletion so cancellation is O(1).
//
// The core is built for reuse on hot paths: event records come from a
// block-allocated free list and are recycled the moment they execute (or
// their lazy tombstone surfaces), the priority queue is a hand-rolled 4-ary
// heap (no interface boxing, shallower than a binary heap), and Reset rewinds
// a simulation for the next run while keeping every buffer. Handles are
// generation-counted so a handle retained past execution, cancellation, or
// Reset can never cancel the recycled event that now occupies its slot.
package des

import (
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// Time is simulated time. Units are whatever the caller chooses (the FFD
// experiments use the classic round duration D as the unit).
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Action is the allocation-free callback form: schedulers that would
// otherwise capture per-event state in a closure (one heap allocation per
// event) implement Act on a pooled record and pass the record itself.
type Action interface {
	Act()
}

// event is one scheduled callback slot. Slots are pooled: executed and
// lazily-discarded events return to the simulation's free list and are
// reused by later Schedule calls, with gen incremented on every recycle so
// stale Handles cannot touch the new tenant.
//
// seq is the heap tie-break key; ord is the ground-truth scheduling order.
// They are normally identical, but the order audit must not trust the key the
// heap sorts by (a detector comparing the heap against its own key can never
// fire), so violations are detected against ord. The LIFOTies test hook
// mangles only seq, leaving ord truthful — which is exactly what makes the
// planted reordering observable.
type event struct {
	at  Time
	seq uint64
	ord uint64
	gen uint32
	fn  func()
	act Action
}

// live reports whether the event still holds a callback (not executed, not
// cancelled).
func (e *event) live() bool { return e.fn != nil || e.act != nil }

// eventBlock is the free-list growth quantum: events are allocated in slabs
// so a cold simulation pays O(peak/blockSize) allocations, not O(events).
const blockSize = 64

// Sim is a discrete-event simulation. The zero value is ready to use.
type Sim struct {
	heap      []*event // 4-ary min-heap on (at, seq)
	free      []*event // recycled event slots
	now       Time
	seq       uint64
	stopped   bool
	steps     int
	cancelled int // cancelled events still sitting in the heap

	// Audit bookkeeping (see Audit): every event ever scheduled must be
	// accounted for as executed, still pending, or cancelled.
	scheduled     int
	cancelledEver int
	// Order audit: the (time, scheduling order) of the last executed event,
	// and the first recorded violation of the execution contract.
	lastAt         Time
	lastOrd        uint64
	orderViolation string

	// LIFOTies is a law-audit test hook: when set, newly scheduled events get
	// a tie-break key that reverses FIFO order among same-time events (ties
	// pop LIFO) while their ground-truth scheduling order stays truthful. A
	// run with simultaneous events then violates the FIFO tie contract, which
	// Audit must detect. Never set outside tests.
	LIFOTies bool

	// Telemetry, when non-nil, receives one event-batch span per maximal run
	// of same-time events (spanning from the batch's timestamp to the next
	// clock advance) plus heap-depth and pool-hit-rate samples at each
	// advance, on the DES track. The owner of the Sim sets it before Run; a
	// nil recorder costs nothing on the hot path.
	Telemetry *telemetry.Recorder

	// Event-pool accounting: allocs counts every event-slot request, poolHits
	// the requests served without growing the free list. Plain increments —
	// they ride the zero-alloc hot path unconditionally.
	allocs   int
	poolHits int

	// Open event-batch state for Telemetry (meaningful only when recording).
	batchOpen  bool
	batchStart Time
	batchCount int32
	batchOrd   int32
}

// Handle refers to a scheduled event and can cancel it before it fires. The
// zero Handle is valid and cancels nothing. A Handle pins the identity of
// one scheduling act, not a memory slot: once its event has executed, been
// cancelled, or been swept away by Reset, the handle is spent forever —
// even after the pooled slot is recycled for a fresh event.
type Handle struct {
	s   *Sim
	e   *event
	gen uint32
}

// Cancel removes the event from the schedule if it has not executed yet. It
// reports whether the event was actually cancelled (false when it already
// ran, was already cancelled, the simulation was Reset, or the handle is
// zero). The removal is lazy: the slot stays in the heap and is skipped —
// without executing or advancing the clock — when it surfaces.
func (h Handle) Cancel() bool {
	if h.e == nil || h.e.gen != h.gen || !h.e.live() {
		return false
	}
	h.e.fn, h.e.act = nil, nil
	h.s.cancelled++
	h.s.cancelledEver++
	return true
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events executed so far (cancelled events are
// never executed and never counted).
func (s *Sim) Steps() int { return s.steps }

// alloc takes an event slot from the free list, growing it by one slab when
// empty.
func (s *Sim) alloc() *event {
	s.allocs++
	if len(s.free) > 0 {
		s.poolHits++
	}
	if len(s.free) == 0 {
		blk := make([]event, blockSize)
		for i := range blk {
			s.free = append(s.free, &blk[i])
		}
	}
	e := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	return e
}

// release recycles a spent event slot: the generation bump invalidates every
// outstanding Handle to it before the slot can be handed to a new tenant.
func (s *Sim) release(e *event) {
	e.gen++
	e.fn, e.act = nil, nil
	s.free = append(s.free, e)
}

// schedule is the common body of At/AtAct.
func (s *Sim) schedule(t Time, fn func(), act Action) Handle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	key := s.seq
	if s.LIFOTies {
		key = math.MaxUint64 - s.seq
	}
	e := s.alloc()
	e.at, e.seq, e.ord, e.fn, e.act = t, key, s.seq, fn, act
	s.push(e)
	s.scheduled++
	return Handle{s: s, e: e, gen: e.gen}
}

// At schedules fn at absolute time t. Scheduling in the past (t < Now) runs
// the event at the current time instead — events never rewind the clock.
func (s *Sim) At(t Time, fn func()) Handle { return s.schedule(t, fn, nil) }

// After schedules fn at Now()+d.
func (s *Sim) After(d Time, fn func()) Handle { return s.At(s.now+d, fn) }

// AtAct schedules a pooled Action at absolute time t. It is the
// allocation-free twin of At: the caller owns the record, so nothing is
// captured and nothing escapes per event.
func (s *Sim) AtAct(t Time, act Action) Handle { return s.schedule(t, nil, act) }

// AfterAct schedules a pooled Action at Now()+d.
func (s *Sim) AfterAct(d Time, act Action) Handle { return s.AtAct(s.now+d, act) }

// Stop ends the run after the current event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty, an event calls
// Stop, or the next event would be later than until. It returns the final
// simulated time.
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	recording := s.Telemetry.Enabled()
	for len(s.heap) > 0 && !s.stopped {
		next := s.heap[0]
		if !next.live() {
			// Lazily deleted by Cancel: discard without running it or
			// advancing the clock, and recycle the slot.
			s.pop()
			s.cancelled--
			s.release(next)
			continue
		}
		if next.at > until {
			break
		}
		s.pop()
		if recording {
			// A batch is a maximal run of same-time events; its span closes —
			// and the heap/pool gauges are sampled — when the clock advances.
			if s.batchOpen && next.at != s.batchStart {
				s.closeBatch(next.at)
			}
			if !s.batchOpen {
				s.batchOpen, s.batchStart, s.batchCount = true, next.at, 0
			}
			s.batchCount++
		}
		// Execution-order contract, checked against the ground-truth
		// scheduling order rather than the heap's own tie-break key: time
		// never rewinds, and same-time events run in scheduling (FIFO) order.
		// Only the first violation is recorded; the clean path is
		// allocation-free.
		if s.orderViolation == "" {
			if next.at < s.lastAt {
				s.orderViolation = fmt.Sprintf(
					"des: clock went backwards: event at t=%v after t=%v", next.at, s.lastAt)
			} else if next.at == s.lastAt && next.ord < s.lastOrd {
				s.orderViolation = fmt.Sprintf(
					"des: FIFO tie order violated at t=%v: event #%d ran after #%d",
					next.at, next.ord, s.lastOrd)
			}
		}
		s.lastAt = next.at
		s.lastOrd = next.ord
		s.now = next.at
		s.steps++
		fn, act := next.fn, next.act
		// Recycle the slot before running: a Handle retained past execution
		// must see the event as spent (Cancel returns false) rather than
		// "cancel" it and corrupt the pending count. The generation bump in
		// release guarantees that even after the slot is re-let.
		s.release(next)
		if act != nil {
			act.Act()
		} else {
			fn()
		}
	}
	if s.batchOpen {
		// Trailing batch: the clock never advanced past it, so the span is
		// instantaneous at the final time.
		s.closeBatch(s.now)
	}
	return s.now
}

// closeBatch emits the open event-batch span ending at the given clock
// advance, plus the heap-depth and pool-hit-rate samples at that boundary.
func (s *Sim) closeBatch(end Time) {
	s.Telemetry.Span(telemetry.SpanBatch, telemetry.TrackDES, s.batchOrd, s.batchCount,
		float64(s.batchStart), float64(end))
	s.Telemetry.Sample(telemetry.SeriesHeapSize, float64(end), float64(s.Pending()))
	if s.allocs > 0 {
		s.Telemetry.Sample(telemetry.SeriesPoolHitRate, float64(end),
			float64(s.poolHits)/float64(s.allocs))
	}
	s.batchOrd++
	s.batchOpen = false
	s.batchCount = 0
}

// Pending returns the number of events still scheduled to run (cancelled
// events awaiting lazy removal are excluded).
func (s *Sim) Pending() int { return len(s.heap) - s.cancelled }

// Reset rewinds the simulation to its initial state for the next run while
// keeping every allocation: the heap slice, the free list, and every pooled
// event slot survive, so a reused Sim schedules without allocating. Pending
// events are discarded (their Handles become permanently spent), the clock
// returns to zero, and the audit books open fresh.
func (s *Sim) Reset() {
	for _, e := range s.heap {
		s.release(e)
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.steps = 0
	s.cancelled = 0
	s.scheduled = 0
	s.cancelledEver = 0
	s.lastAt = 0
	s.lastOrd = 0
	s.orderViolation = ""
	s.allocs = 0
	s.poolHits = 0
	s.batchOpen = false
	s.batchStart = 0
	s.batchCount = 0
	s.batchOrd = 0
}

// Audit checks the simulation's execution-order contract and event
// bookkeeping after (or during) a run:
//
//   - the simulated clock never went backwards and same-time events executed
//     in scheduling (FIFO) order, judged against the ground-truth scheduling
//     sequence, not the heap's tie-break key;
//   - every event ever scheduled is accounted for exactly once:
//     scheduled == executed + pending + cancelled.
//
// It returns nil on a clean run (no allocation) and a descriptive error for
// the first violation observed.
func (s *Sim) Audit() error {
	if s.orderViolation != "" {
		return fmt.Errorf("%s", s.orderViolation)
	}
	if s.scheduled != s.steps+s.Pending()+s.cancelledEver {
		return fmt.Errorf("des: event bookkeeping leak: scheduled %d != executed %d + pending %d + cancelled %d",
			s.scheduled, s.steps, s.Pending(), s.cancelledEver)
	}
	return nil
}

// The priority queue: a hand-rolled 4-ary min-heap on (at, seq). Compared to
// container/heap's interface-boxed binary heap it saves the dynamic dispatch
// per comparison and halves the tree depth — sift-down does more comparisons
// per level but touches fewer cache lines, which wins for the short-horizon
// queues the timed engine keeps (one round of in-flight messages).

// less orders events by time, then tie-break key.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e into the heap.
func (s *Sim) push(e *event) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !less(e, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.heap = h
}

// pop removes and returns the minimum event.
func (s *Sim) pop() *event {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	s.heap = h
	if n == 0 {
		return top
	}
	// Sift last down from the root.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if less(h[j], h[m]) {
				m = j
			}
		}
		if !less(h[m], last) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = last
	return top
}
