// Package des is a minimal deterministic discrete-event simulator used by
// the continuous-time substrates of this repository (the fast failure
// detector model of experiment E7 and the timed consensus engine of
// internal/timed).
//
// Events are callbacks scheduled at absolute times and executed in
// nondecreasing time order; ties are broken by scheduling order (FIFO), which
// keeps runs fully deterministic. Scheduling returns a Handle that can cancel
// the event before it fires (timers that are superseded), implemented by lazy
// deletion so cancellation is O(1).
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated time. Units are whatever the caller chooses (the FFD
// experiments use the classic round duration D as the unit).
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// event is one scheduled callback.
//
// seq is the heap tie-break key; ord is the ground-truth scheduling order.
// They are normally identical, but the order audit must not trust the key the
// heap sorts by (a detector comparing the heap against its own key can never
// fire), so violations are detected against ord. The LIFOTies test hook
// mangles only seq, leaving ord truthful — which is exactly what makes the
// planted reordering observable.
type event struct {
	at  Time
	seq uint64
	ord uint64
	fn  func()
}

// eventHeap orders events by time, then scheduling sequence.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation. The zero value is ready to use.
type Sim struct {
	queue     eventHeap
	now       Time
	seq       uint64
	stopped   bool
	steps     int
	cancelled int // cancelled events still sitting in the heap

	// Audit bookkeeping (see Audit): every event ever scheduled must be
	// accounted for as executed, still pending, or cancelled.
	scheduled     int
	cancelledEver int
	// Order audit: the (time, scheduling order) of the last executed event,
	// and the first recorded violation of the execution contract.
	lastAt         Time
	lastOrd        uint64
	orderViolation string

	// LIFOTies is a law-audit test hook: when set, newly scheduled events get
	// a tie-break key that reverses FIFO order among same-time events (ties
	// pop LIFO) while their ground-truth scheduling order stays truthful. A
	// run with simultaneous events then violates the FIFO tie contract, which
	// Audit must detect. Never set outside tests.
	LIFOTies bool
}

// Handle refers to a scheduled event and can cancel it before it fires. The
// zero Handle is valid and cancels nothing.
type Handle struct {
	s *Sim
	e *event
}

// Cancel removes the event from the schedule if it has not executed yet. It
// reports whether the event was actually cancelled (false when it already
// ran, was already cancelled, or the handle is zero). The removal is lazy:
// the slot stays in the heap and is skipped — without executing or advancing
// the clock — when it surfaces.
func (h Handle) Cancel() bool {
	if h.e == nil || h.e.fn == nil {
		return false
	}
	h.e.fn = nil
	h.s.cancelled++
	h.s.cancelledEver++
	return true
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events executed so far (cancelled events are
// never executed and never counted).
func (s *Sim) Steps() int { return s.steps }

// At schedules fn at absolute time t. Scheduling in the past (t < Now) runs
// the event at the current time instead — events never rewind the clock.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	key := s.seq
	if s.LIFOTies {
		key = math.MaxUint64 - s.seq
	}
	e := &event{at: t, seq: key, ord: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	s.scheduled++
	return Handle{s: s, e: e}
}

// After schedules fn at Now()+d.
func (s *Sim) After(d Time, fn func()) Handle { return s.At(s.now+d, fn) }

// Stop ends the run after the current event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty, an event calls
// Stop, or the next event would be later than until. It returns the final
// simulated time.
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.fn == nil {
			// Lazily deleted by Cancel: discard without running it or
			// advancing the clock.
			heap.Pop(&s.queue)
			s.cancelled--
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		// Execution-order contract, checked against the ground-truth
		// scheduling order rather than the heap's own tie-break key: time
		// never rewinds, and same-time events run in scheduling (FIFO) order.
		// Only the first violation is recorded; the clean path is
		// allocation-free.
		if s.orderViolation == "" {
			if next.at < s.lastAt {
				s.orderViolation = fmt.Sprintf(
					"des: clock went backwards: event at t=%v after t=%v", next.at, s.lastAt)
			} else if next.at == s.lastAt && next.ord < s.lastOrd {
				s.orderViolation = fmt.Sprintf(
					"des: FIFO tie order violated at t=%v: event #%d ran after #%d",
					next.at, next.ord, s.lastOrd)
			}
		}
		s.lastAt = next.at
		s.lastOrd = next.ord
		s.now = next.at
		s.steps++
		fn := next.fn
		// Clear the slot before running: a Handle retained past execution
		// must see the event as spent (Cancel returns false) rather than
		// "cancel" it and corrupt the pending count.
		next.fn = nil
		fn()
	}
	return s.now
}

// Pending returns the number of events still scheduled to run (cancelled
// events awaiting lazy removal are excluded).
func (s *Sim) Pending() int { return len(s.queue) - s.cancelled }

// Audit checks the simulation's execution-order contract and event
// bookkeeping after (or during) a run:
//
//   - the simulated clock never went backwards and same-time events executed
//     in scheduling (FIFO) order, judged against the ground-truth scheduling
//     sequence, not the heap's tie-break key;
//   - every event ever scheduled is accounted for exactly once:
//     scheduled == executed + pending + cancelled.
//
// It returns nil on a clean run (no allocation) and a descriptive error for
// the first violation observed.
func (s *Sim) Audit() error {
	if s.orderViolation != "" {
		return fmt.Errorf("%s", s.orderViolation)
	}
	if s.scheduled != s.steps+s.Pending()+s.cancelledEver {
		return fmt.Errorf("des: event bookkeeping leak: scheduled %d != executed %d + pending %d + cancelled %d",
			s.scheduled, s.steps, s.Pending(), s.cancelledEver)
	}
	return nil
}
