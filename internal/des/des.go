// Package des is a minimal deterministic discrete-event simulator used by
// the continuous-time substrates of this repository (the fast failure
// detector model of experiment E7 and the timed consensus engine of
// internal/timed).
//
// Events are callbacks scheduled at absolute times and executed in
// nondecreasing time order; ties are broken by scheduling order (FIFO), which
// keeps runs fully deterministic. Scheduling returns a Handle that can cancel
// the event before it fires (timers that are superseded), implemented by lazy
// deletion so cancellation is O(1).
package des

import (
	"container/heap"
	"math"
)

// Time is simulated time. Units are whatever the caller chooses (the FFD
// experiments use the classic round duration D as the unit).
type Time float64

// Infinity is a time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by time, then scheduling sequence.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulation. The zero value is ready to use.
type Sim struct {
	queue     eventHeap
	now       Time
	seq       uint64
	stopped   bool
	steps     int
	cancelled int // cancelled events still sitting in the heap
}

// Handle refers to a scheduled event and can cancel it before it fires. The
// zero Handle is valid and cancels nothing.
type Handle struct {
	s *Sim
	e *event
}

// Cancel removes the event from the schedule if it has not executed yet. It
// reports whether the event was actually cancelled (false when it already
// ran, was already cancelled, or the handle is zero). The removal is lazy:
// the slot stays in the heap and is skipped — without executing or advancing
// the clock — when it surfaces.
func (h Handle) Cancel() bool {
	if h.e == nil || h.e.fn == nil {
		return false
	}
	h.e.fn = nil
	h.s.cancelled++
	return true
}

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events executed so far (cancelled events are
// never executed and never counted).
func (s *Sim) Steps() int { return s.steps }

// At schedules fn at absolute time t. Scheduling in the past (t < Now) runs
// the event at the current time instead — events never rewind the clock.
func (s *Sim) At(t Time, fn func()) Handle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return Handle{s: s, e: e}
}

// After schedules fn at Now()+d.
func (s *Sim) After(d Time, fn func()) Handle { return s.At(s.now+d, fn) }

// Stop ends the run after the current event returns.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events in order until the queue is empty, an event calls
// Stop, or the next event would be later than until. It returns the final
// simulated time.
func (s *Sim) Run(until Time) Time {
	s.stopped = false
	for len(s.queue) > 0 && !s.stopped {
		next := s.queue[0]
		if next.fn == nil {
			// Lazily deleted by Cancel: discard without running it or
			// advancing the clock.
			heap.Pop(&s.queue)
			s.cancelled--
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.steps++
		fn := next.fn
		// Clear the slot before running: a Handle retained past execution
		// must see the event as spent (Cancel returns false) rather than
		// "cancel" it and corrupt the pending count.
		next.fn = nil
		fn()
	}
	return s.now
}

// Pending returns the number of events still scheduled to run (cancelled
// events awaiting lazy removal are excluded).
func (s *Sim) Pending() int { return len(s.queue) - s.cancelled }
