package des_test

import (
	"container/heap"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

// TestHandleSpentAfterRecycling pins the Handle lifetime contract under
// event pooling: a handle retained past its event's execution must stay
// spent even after the pooled slot has been re-let to a new event. Before
// generation counting, a raw-pointer handle would have silently cancelled
// the slot's new tenant.
func TestHandleSpentAfterRecycling(t *testing.T) {
	var s des.Sim
	h1 := s.At(1, func() {})
	s.Run(des.Infinity) // h1's event executes and its slot is recycled
	if h1.Cancel() {
		t.Fatal("Cancel returned true for an executed event")
	}
	// The pool hands h1's slot to the next scheduled event.
	fired := false
	h2 := s.At(2, func() { fired = true })
	if h1.Cancel() {
		t.Fatal("stale handle cancelled the slot's new tenant")
	}
	s.Run(des.Infinity)
	if !fired {
		t.Fatal("recycled-slot event did not fire (stale handle corrupted it)")
	}
	if h2.Cancel() {
		t.Fatal("Cancel returned true after the recycled-slot event executed")
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("Audit: %v", err)
	}
}

// TestHandleSpentAfterReset pins the other half of the lifetime contract: a
// handle retained across Sim.Reset reports Cancel() == false, and cannot
// touch events of the next run even when they reuse its old slot.
func TestHandleSpentAfterReset(t *testing.T) {
	var s des.Sim
	stale := make([]des.Handle, 0, 8)
	for i := 0; i < 8; i++ {
		stale = append(stale, s.At(des.Time(i), func() {}))
	}
	s.Run(3) // some executed, some still pending
	s.Reset()
	for i, h := range stale {
		if h.Cancel() {
			t.Fatalf("handle %d survived Reset", i)
		}
	}
	// The next run reuses the recycled slots; stale handles must stay inert.
	fired := 0
	for i := 0; i < 8; i++ {
		s.At(des.Time(i), func() { fired++ })
	}
	for _, h := range stale {
		if h.Cancel() {
			t.Fatal("stale handle cancelled an event of the next run")
		}
	}
	s.Run(des.Infinity)
	if fired != 8 {
		t.Fatalf("next run fired %d events, want 8 (stale handles interfered)", fired)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("Audit after Reset: %v", err)
	}
}

// TestResetRewindsEverything pins Reset semantics: clock, step count,
// pending events and audit books all return to the zero state, and the next
// run is indistinguishable from a run on a fresh Sim.
func TestResetRewindsEverything(t *testing.T) {
	var s des.Sim
	s.At(5, func() {})
	h := s.At(7, func() {})
	h.Cancel()
	s.At(9, func() {})
	s.Run(6) // one executed, one tombstone, one pending
	s.Reset()
	if s.Now() != 0 || s.Steps() != 0 || s.Pending() != 0 {
		t.Fatalf("after Reset: Now=%v Steps=%d Pending=%d, want all zero", s.Now(), s.Steps(), s.Pending())
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("Audit after Reset: %v", err)
	}
	var order []int
	for i := 3; i >= 1; i-- {
		i := i
		s.At(des.Time(i), func() { order = append(order, i) })
	}
	s.Run(des.Infinity)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-Reset run order = %v, want [1 2 3]", order)
	}
	if s.Steps() != 3 {
		t.Errorf("post-Reset Steps = %d, want 3", s.Steps())
	}
}

// TestSchedulingAllocFree pins the pooling dividend: once the free list is
// warm, the schedule→run cycle allocates nothing.
func TestSchedulingAllocFree(t *testing.T) {
	var s des.Sim
	tick := func() {}
	run := func() {
		s.Reset()
		for i := 0; i < 32; i++ {
			s.At(des.Time(i%7), tick)
		}
		s.Run(des.Infinity)
	}
	run() // warm the pool and the heap slice
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Errorf("warm schedule/run cycle allocates %.1f allocs/run, want 0", allocs)
	}
}

// refSim is the retained reference implementation for the pooled/4-ary
// differential: the pre-pooling des core verbatim — container/heap's
// interface-boxed binary heap, one heap-allocated event per schedule, no
// recycling. It executes (time, ord) sequences that the rebuilt core must
// reproduce exactly.
type refSim struct {
	queue     refHeap
	now       des.Time
	seq       uint64
	steps     int
	cancelled int
	scheduled int
	cancEver  int
}

type refEvent struct {
	at  des.Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type refHandle struct {
	s *refSim
	e *refEvent
}

func (h refHandle) cancel() bool {
	if h.e == nil || h.e.fn == nil {
		return false
	}
	h.e.fn = nil
	h.s.cancelled++
	h.s.cancEver++
	return true
}

func (s *refSim) at(t des.Time, fn func()) refHandle {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := &refEvent{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	s.scheduled++
	return refHandle{s: s, e: e}
}

func (s *refSim) run(until des.Time) {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.fn == nil {
			heap.Pop(&s.queue)
			s.cancelled--
			continue
		}
		if next.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.steps++
		fn := next.fn
		next.fn = nil
		fn()
	}
}

func (s *refSim) reset() { *s = refSim{} }

func (s *refSim) pending() int { return len(s.queue) - s.cancelled }

func (s *refSim) booksBalance() bool {
	return s.scheduled == s.steps+s.pending()+s.cancEver
}

// execRecord is one executed event as observed by the differential: the
// simulated time it ran at and its global scheduling order within the
// current run.
type execRecord struct {
	at  des.Time
	ord int
}

// simOp is one differential script step, interpreted identically by both
// simulators.
type simOp struct {
	kind   int      // 0 schedule, 1 cancel, 2 run-until, 3 reset
	at     des.Time // schedule target / run horizon
	victim int      // cancel: index into the handle log (mod its length)
	child  bool     // schedule: the event itself schedules a child at now+0.5
}

// TestPooledSimDifferentialProperty is the satellite testing/quick property:
// the pooled, 4-ary, resettable des.Sim produces the same (time, ord)
// execution sequence — and the same clean Audit verdict — as the retained
// reference implementation (refSim: the pre-pooling container/heap core),
// over random interleavings of scheduling (from outside and from inside
// events), cancellation, Run horizons, and Reset. The op script is generated
// once and replayed against both simulators, so any divergence is a
// pooling/heap/Reset bug, not test noise.
func TestPooledSimDifferentialProperty(t *testing.T) {
	prop := func(seed int64, nOpsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nOps := int(nOpsRaw%48) + 8
		ops := make([]simOp, nOps)
		for i := range ops {
			o := simOp{kind: rng.Intn(4), at: des.Time(rng.Intn(12)), victim: rng.Int() >> 1, child: rng.Intn(3) == 0}
			if o.kind == 3 && rng.Intn(3) != 0 {
				o.kind = 0 // keep Reset rare enough that runs have depth
			}
			ops[i] = o
		}
		ops = append(ops, simOp{kind: 2, at: des.Infinity}) // final drain

		var got, want []execRecord
		var s des.Sim
		gotClean := drivePooled(&s, ops, &got)
		var r refSim
		wantClean := driveRef(&r, ops, &want)

		if gotClean != wantClean {
			t.Logf("seed %d: audit clean %v (pooled) vs %v (reference)", seed, gotClean, wantClean)
			return false
		}
		if len(got) != len(want) {
			t.Logf("seed %d: executed %d events (pooled) vs %d (reference)", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("seed %d: execution %d = %+v (pooled) vs %+v (reference)", seed, i, got[i], want[i])
				return false
			}
		}
		if s.Now() != r.now || s.Steps() != r.steps || s.Pending() != r.pending() {
			t.Logf("seed %d: state Now/Steps/Pending %v/%d/%d vs %v/%d/%d",
				seed, s.Now(), s.Steps(), s.Pending(), r.now, r.steps, r.pending())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// drivePooled replays an op script on the pooled des.Sim, appending executed
// (time, per-run ord) records, and reports whether every Audit along the way
// was clean. Reset clears the handle log: the Handle-across-Reset contract
// (spent forever) is pinned by its own regression test, while the reference
// core predates that contract.
func drivePooled(s *des.Sim, ops []simOp, got *[]execRecord) bool {
	clean := true
	var handles []des.Handle
	ord := 0
	var schedule func(at des.Time, child bool)
	schedule = func(at des.Time, child bool) {
		id := ord
		ord++
		h := s.At(at, func() {
			*got = append(*got, execRecord{at: s.Now(), ord: id})
			if child {
				schedule(s.Now()+0.5, false)
			}
		})
		handles = append(handles, h)
	}
	for _, o := range ops {
		switch o.kind {
		case 0:
			schedule(o.at, o.child)
		case 1:
			if len(handles) > 0 {
				handles[o.victim%len(handles)].Cancel()
			}
		case 2:
			s.Run(o.at)
			if s.Audit() != nil {
				clean = false
			}
		case 3:
			s.Reset()
			handles = handles[:0]
			ord = 0
		}
	}
	if s.Audit() != nil {
		clean = false
	}
	return clean
}

// driveRef replays the identical op script on the reference implementation.
// Its structure mirrors drivePooled line for line; only the simulator type
// differs.
func driveRef(r *refSim, ops []simOp, want *[]execRecord) bool {
	clean := true
	var handles []refHandle
	ord := 0
	var schedule func(at des.Time, child bool)
	schedule = func(at des.Time, child bool) {
		id := ord
		ord++
		h := r.at(at, func() {
			*want = append(*want, execRecord{at: r.now, ord: id})
			if child {
				schedule(r.now+0.5, false)
			}
		})
		handles = append(handles, h)
	}
	for _, o := range ops {
		switch o.kind {
		case 0:
			schedule(o.at, o.child)
		case 1:
			if len(handles) > 0 {
				handles[o.victim%len(handles)].cancel()
			}
		case 2:
			r.run(o.at)
			if !r.booksBalance() {
				clean = false
			}
		case 3:
			r.reset()
			handles = handles[:0]
			ord = 0
		}
	}
	if !r.booksBalance() {
		clean = false
	}
	return clean
}
