package des_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s des.Sim
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(des.Infinity)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", s.Steps())
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	var s des.Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(des.Infinity)
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var s des.Sim
	var at des.Time
	s.At(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run(des.Infinity)
	if at != 5 {
		t.Errorf("After fired at %v, want 5", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s des.Sim
	var at des.Time = -1
	s.At(10, func() {
		s.At(1, func() { at = s.Now() }) // in the past: runs "now"
	})
	s.Run(des.Infinity)
	if at != 10 {
		t.Errorf("past event ran at %v, want 10", at)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	var s des.Sim
	ran := 0
	s.At(1, func() { ran++ })
	s.At(100, func() { ran++ })
	s.Run(50)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run(des.Infinity)
	if ran != 2 {
		t.Errorf("ran %d events after resume, want 2", ran)
	}
}

func TestStopEndsRun(t *testing.T) {
	var s des.Sim
	ran := 0
	s.At(1, func() { ran++; s.Stop() })
	s.At(2, func() { ran++ })
	s.Run(des.Infinity)
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (Stop ignored)", ran)
	}
}

func TestEventsCanCascade(t *testing.T) {
	var s des.Sim
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			s.After(1, recurse)
		}
	}
	s.At(0, recurse)
	end := s.Run(des.Infinity)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if end != 100 {
		t.Errorf("end time = %v, want 100", end)
	}
}

// TestExecutionOrderProperty is the satellite testing/quick property for the
// event core: under arbitrary random interleavings of scheduling (from
// outside and from inside running events, including past times) and
// cancellation, the executed events form a sequence that is nondecreasing in
// time with FIFO tie-breaking by scheduling order, cancelled events never
// run, and Steps/Pending stay consistent.
func TestExecutionOrderProperty(t *testing.T) {
	type executed struct {
		at  des.Time
		seq int // global scheduling order
	}
	prop := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s des.Sim
		var got []executed
		var handles []des.Handle
		cancelled := map[int]bool{}
		ran := map[int]bool{}
		seq := 0

		// schedule registers one event at time at, recording its identity.
		var schedule func(at des.Time)
		schedule = func(at des.Time) {
			id := seq
			seq++
			h := s.At(at, func() {
				ran[id] = true
				got = append(got, executed{at: maxTime(at, s.Now()), seq: id})
				// Events may themselves schedule (possibly in the past,
				// which clamps to Now) and cancel pending events.
				if rng.Intn(3) == 0 && seq < int(nOps)+64 {
					schedule(s.Now() + des.Time(rng.Float64()*4-1))
				}
				if rng.Intn(4) == 0 && len(handles) > 0 {
					victim := rng.Intn(len(handles))
					if handles[victim].Cancel() {
						cancelled[victim] = true
					}
				}
			})
			handles = append(handles, h)
		}

		n := int(nOps%64) + 1
		for i := 0; i < n; i++ {
			schedule(des.Time(rng.Float64() * 10))
			// Cancel a random earlier handle now and then, before running.
			if rng.Intn(4) == 0 {
				victim := rng.Intn(len(handles))
				if handles[victim].Cancel() {
					cancelled[victim] = true
				}
			}
		}
		s.Run(des.Infinity)

		// Nondecreasing in time; FIFO (by scheduling order) among ties.
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				t.Logf("seed %d: time went backwards: %v after %v", seed, got[i], got[i-1])
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				t.Logf("seed %d: FIFO tie-break violated: seq %d ran after %d at t=%v",
					seed, got[i-1].seq, got[i].seq, got[i].at)
				return false
			}
		}
		// Cancelled events never ran; everything else ran exactly once.
		for id := range cancelled {
			if ran[id] {
				t.Logf("seed %d: cancelled event %d executed", seed, id)
				return false
			}
		}
		if len(got)+len(cancelled) != seq {
			t.Logf("seed %d: %d executed + %d cancelled != %d scheduled",
				seed, len(got), len(cancelled), seq)
			return false
		}
		if s.Steps() != len(got) {
			t.Logf("seed %d: Steps %d != executed %d", seed, s.Steps(), len(got))
			return false
		}
		if s.Pending() != 0 {
			t.Logf("seed %d: Pending %d after drain", seed, s.Pending())
			return false
		}
		if err := s.Audit(); err != nil {
			t.Logf("seed %d: Audit: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func maxTime(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}

// TestAuditCleanRuns pins the checked invariant on well-behaved schedules:
// after any mix of execution, cancellation and an early horizon, Audit
// reports clean books.
func TestAuditCleanRuns(t *testing.T) {
	var s des.Sim
	s.At(1, func() {})
	s.At(2, func() { s.After(1, func() {}) })
	h := s.At(4, func() {})
	s.At(5, func() {})
	h.Cancel()
	s.Run(3) // t=5 event still pending
	if err := s.Audit(); err != nil {
		t.Fatalf("Audit mid-run: %v", err)
	}
	s.Run(des.Infinity)
	if err := s.Audit(); err != nil {
		t.Fatalf("Audit after drain: %v", err)
	}
}

// TestAuditCatchesLIFOTies plants the FIFO-tie mutation: LIFOTies mangles the
// heap's tie-break key while the ground-truth scheduling order stays honest,
// so the order detector must report the first same-time pair that executed in
// reverse scheduling order.
func TestAuditCatchesLIFOTies(t *testing.T) {
	var s des.Sim
	s.LIFOTies = true
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		s.At(7, func() { order = append(order, i) })
	}
	s.Run(des.Infinity)
	if order[0] == 0 {
		t.Fatalf("LIFOTies mutation did not reorder ties: %v", order)
	}
	err := s.Audit()
	if err == nil {
		t.Fatal("Audit passed a LIFO tie order")
	}
	if got := err.Error(); !strings.Contains(got, "FIFO tie order violated") {
		t.Errorf("Audit error = %q, want FIFO tie violation", got)
	}
}

// TestAuditCatchesLIFOTiesUnderProperty re-runs the random-interleaving
// property with the mutation planted: any seed that produces at least one
// same-time pair must be flagged by Audit.
func TestAuditCatchesLIFOTiesUnderProperty(t *testing.T) {
	var s des.Sim
	s.LIFOTies = true
	rng := rand.New(rand.NewSource(42))
	ties := 0
	for i := 0; i < 50; i++ {
		t := des.Time(rng.Intn(10)) // small range forces ties
		s.At(t, func() {})
		s.At(t, func() { ties++ })
	}
	s.Run(des.Infinity)
	if err := s.Audit(); err == nil {
		t.Fatal("Audit passed despite mangled tie keys")
	}
}

// TestCancelSemantics pins the Handle contract directly: double cancel,
// cancel after execution, and the zero handle.
func TestCancelSemantics(t *testing.T) {
	var s des.Sim
	fired := 0
	h1 := s.At(1, func() { fired++ })
	h2 := s.At(2, func() { fired++ })
	if !h2.Cancel() {
		t.Error("first Cancel returned false")
	}
	if h2.Cancel() {
		t.Error("second Cancel returned true")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d with one live and one cancelled event, want 1", s.Pending())
	}
	s.Run(des.Infinity)
	if fired != 1 {
		t.Errorf("fired %d events, want 1", fired)
	}
	if h1.Cancel() {
		t.Error("Cancel after execution returned true")
	}
	var zero des.Handle
	if zero.Cancel() {
		t.Error("zero Handle cancelled something")
	}
	if s.Now() != 1 {
		t.Errorf("Now = %v; a cancelled later event advanced the clock", s.Now())
	}
}
