package des_test

import (
	"testing"

	"repro/internal/des"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s des.Sim
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run(des.Infinity)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
	if s.Steps() != 3 {
		t.Errorf("Steps = %d, want 3", s.Steps())
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	var s des.Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run(des.Infinity)
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var s des.Sim
	var at des.Time
	s.At(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run(des.Infinity)
	if at != 5 {
		t.Errorf("After fired at %v, want 5", at)
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var s des.Sim
	var at des.Time = -1
	s.At(10, func() {
		s.At(1, func() { at = s.Now() }) // in the past: runs "now"
	})
	s.Run(des.Infinity)
	if at != 10 {
		t.Errorf("past event ran at %v, want 10", at)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	var s des.Sim
	ran := 0
	s.At(1, func() { ran++ })
	s.At(100, func() { ran++ })
	s.Run(50)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	s.Run(des.Infinity)
	if ran != 2 {
		t.Errorf("ran %d events after resume, want 2", ran)
	}
}

func TestStopEndsRun(t *testing.T) {
	var s des.Sim
	ran := 0
	s.At(1, func() { ran++; s.Stop() })
	s.At(2, func() { ran++ })
	s.Run(des.Infinity)
	if ran != 1 {
		t.Errorf("ran %d events, want 1 (Stop ignored)", ran)
	}
}

func TestEventsCanCascade(t *testing.T) {
	var s des.Sim
	depth := 0
	var recurse func()
	recurse = func() {
		if depth < 100 {
			depth++
			s.After(1, recurse)
		}
	}
	s.At(0, recurse)
	end := s.Run(des.Infinity)
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if end != 100 {
		t.Errorf("end time = %v, want 100", end)
	}
}
