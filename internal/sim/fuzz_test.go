package sim

import (
	"testing"
)

// FuzzInboxOrdering is the native fuzz target for the engine's deterministic
// inbox ordering, the property every bit-identical-replay guarantee in this
// repo bottoms out in. Arbitrary bytes are decoded into an inbox (a sender
// and a kind per message pair), and the insertion sort must (1) order by
// (sender, data-before-control) with no adjacent inversion, (2) preserve the
// message multiset, (3) be stable — equal-key messages keep their arrival
// order — and (4) produce the same key sequence for any permutation of the
// same multiset (checked against the reversed inbox).
//
// Run the checked-in corpus as part of the normal test suite, or hunt with
//
//	go test -fuzz=FuzzInboxOrdering -fuzztime=20s ./internal/sim
func FuzzInboxOrdering(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 3, 0})
	f.Add([]byte{5, 1, 5, 0, 5, 1, 1, 0})
	f.Add([]byte{})
	f.Add([]byte{8, 0, 7, 1, 6, 0, 5, 1, 4, 0, 3, 1, 2, 0, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var in []Message
		for i := 0; i+1 < len(data); i += 2 {
			m := Message{
				From:  ProcID(int(data[i]%8) + 1),
				To:    1,
				Round: 1,
				Kind:  Data,
			}
			if data[i+1]&1 == 1 {
				m.Kind = Control
			} else {
				// The payload value tags the message's arrival position, so
				// the stability check below can tell equal-key messages apart.
				m.Payload = Est{V: Value(i), B: 64}
			}
			in = append(in, m)
		}
		orig := append([]Message(nil), in...)
		SortInbox(in)

		// (1) Sorted: no adjacent pair is inverted.
		for i := 1; i < len(in); i++ {
			if msgAfter(in[i-1], in[i]) {
				t.Fatalf("inversion at %d: %v before %v", i, in[i-1], in[i])
			}
		}
		// (2) Same multiset.
		count := map[Message]int{}
		for _, m := range orig {
			count[m]++
		}
		for _, m := range in {
			count[m]--
			if count[m] < 0 {
				t.Fatalf("message %v appears more often after sorting", m)
			}
		}
		for m, c := range count {
			if c != 0 {
				t.Fatalf("message %v lost by sorting", m)
			}
		}
		// (3) Stable: per equal key, arrival order preserved.
		key := func(m Message) [2]int { return [2]int{int(m.From), int(m.Kind)} }
		perKey := func(ms []Message) map[[2]int][]Message {
			out := map[[2]int][]Message{}
			for _, m := range ms {
				out[key(m)] = append(out[key(m)], m)
			}
			return out
		}
		want, got := perKey(orig), perKey(in)
		for k, ws := range want {
			gs := got[k]
			for i := range ws {
				if gs[i] != ws[i] {
					t.Fatalf("key %v: order changed at %d: %v vs %v", k, i, gs[i], ws[i])
				}
			}
		}
		// (4) Key sequence independent of arrival permutation.
		rev := make([]Message, len(orig))
		for i, m := range orig {
			rev[len(orig)-1-i] = m
		}
		SortInbox(rev)
		for i := range in {
			if key(in[i]) != key(rev[i]) {
				t.Fatalf("key sequence depends on arrival order at %d: %v vs %v", i, in[i], rev[i])
			}
		}
	})
}
