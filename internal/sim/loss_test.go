package sim_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

// These tests cover the lossy-channel ablation hook (Config.Loss). The
// paper's model explicitly assumes reliable channels; the hook exists to
// demonstrate that assumption is load-bearing (experiment E14).

func TestLossHookDropsSelectedMessages(t *testing.T) {
	procs := echoSystem(3, false, 1)
	lost := 0
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic, Loss: func(m sim.Message) bool {
		if m.From == 1 {
			lost++
			return true
		}
		return false
	}}, procs, adversary.None{})
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if lost != 2 {
		t.Errorf("lost = %d, want 2 (both of p1's messages)", lost)
	}
	// p1's value 1 never escaped: p2 and p3 decide min of {2,3}.
	if v := res.Decisions[2]; v != 2 {
		t.Errorf("p2 decided %d, want 2", int64(v))
	}
	if res.Counters.DroppedData != 2 {
		t.Errorf("dropped data = %d, want 2", res.Counters.DroppedData)
	}
	// p1 itself still decides its own value: loss breaks agreement even in
	// this toy protocol.
	if v := res.Decisions[1]; v != 1 {
		t.Errorf("p1 decided %d, want 1", int64(v))
	}
}

func TestLossBreaksCRWAgreementWithoutCrashes(t *testing.T) {
	// The E14 counterexample in unit-test form: lose exactly the DATA from
	// p1 to p2 while the pipelined COMMIT survives. p2 commits its stale
	// estimate; everyone else commits p1's. Zero crashes.
	props := []sim.Value{10, 11, 12}
	procs := core.NewSystem(props, core.Options{})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 5,
		Loss: func(m sim.Message) bool {
			return m.Kind == sim.Data && m.From == 1 && m.To == 2
		}}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Faults() != 0 {
		t.Fatalf("faults = %d, want 0", res.Faults())
	}
	if got := res.DistinctDecisions(); len(got) != 2 {
		t.Fatalf("distinct decisions = %v, want an agreement violation", got)
	}
	if res.Decisions[2] != 11 {
		t.Errorf("p2 decided %d, want its stale proposal 11", int64(res.Decisions[2]))
	}
	if res.Decisions[3] != 10 {
		t.Errorf("p3 decided %d, want p1's 10", int64(res.Decisions[3]))
	}
}

func TestNilLossIsReliable(t *testing.T) {
	props := []sim.Value{10, 11, 12}
	procs := core.NewSystem(props, core.Options{})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DistinctDecisions()) != 1 {
		t.Fatalf("reliable run disagreed: %v", res.Decisions)
	}
	if res.Counters.DroppedData != 0 || res.Counters.DroppedCtrl != 0 {
		t.Error("reliable run dropped messages")
	}
}
