package sim_test

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

// These tests cover the first-class omission fault model (sim.Omitter),
// which replaced the old Config.Loss ablation hook: send- and
// receive-omission faults applied by the engine itself, identically on both
// engines. The paper's model explicitly assumes reliable channels, so the
// CRW scenarios below demonstrate that assumption is load-bearing
// (experiment E14/E15).

func TestSendOmissionDropsWholePlan(t *testing.T) {
	procs := echoSystem(3, false, 1)
	adv := adversary.NewOmissionScript(3, map[sim.ProcID][]adversary.OmissionPlan{
		1: {{Round: 1, DropAllSend: true}},
	})
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adv)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// p1's value 1 never escaped: p2 and p3 decide min of {2,3}.
	if v := res.Decisions[2]; v != 2 {
		t.Errorf("p2 decided %d, want 2", int64(v))
	}
	if res.Counters.OmittedData != 2 {
		t.Errorf("omitted data = %d, want 2 (both of p1's messages)", res.Counters.OmittedData)
	}
	if res.Counters.DroppedData != 0 {
		t.Errorf("dropped data = %d, want 0 (omissions are not crash truncations)", res.Counters.DroppedData)
	}
	// p1 itself is alive, decides its own value, and is reported omissive:
	// omission breaks agreement even in this toy protocol, with zero crashes.
	if v := res.Decisions[1]; v != 1 {
		t.Errorf("p1 decided %d, want 1", int64(v))
	}
	if res.Faults() != 0 {
		t.Errorf("faults = %d, want 0", res.Faults())
	}
	if res.OmissionFaulty() != 1 || res.Omissive[1] != 1 {
		t.Errorf("omissive = %v, want p1 with 1 omissive round", res.Omissive)
	}
}

func TestSendOmissionBreaksCRWAgreementWithoutCrashes(t *testing.T) {
	// The E14 counterexample in unit-test form: omit exactly the DATA from
	// p1 to p2 while the pipelined COMMIT goes through. p2 commits its stale
	// estimate; everyone else commits p1's. Zero crashes. (The round-1
	// coordinator broadcasts data to p2..pn in order, so data position 0 is
	// the p2 message.)
	props := []sim.Value{10, 11, 12}
	procs := core.NewSystem(props, core.Options{})
	adv := adversary.NewOmissionScript(3, map[sim.ProcID][]adversary.OmissionPlan{
		1: {{Round: 1, SendData: []bool{false}}},
	})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 5}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Faults() != 0 {
		t.Fatalf("faults = %d, want 0", res.Faults())
	}
	if got := res.DistinctDecisions(); len(got) != 2 {
		t.Fatalf("distinct decisions = %v, want an agreement violation", got)
	}
	if res.Decisions[2] != 11 {
		t.Errorf("p2 decided %d, want its stale proposal 11", int64(res.Decisions[2]))
	}
	if res.Decisions[3] != 10 {
		t.Errorf("p3 decided %d, want p1's 10", int64(res.Decisions[3]))
	}
	if res.Counters.OmittedData != 1 {
		t.Errorf("omitted data = %d, want 1", res.Counters.OmittedData)
	}
}

func TestRecvOmissionSuppressesSelectedSenders(t *testing.T) {
	// p2 is receive-omission faulty towards p1 in round 1: every round-1
	// message from p1 (data and control alike) vanishes at p2's interface.
	props := []sim.Value{10, 11, 12}
	procs := core.NewSystem(props, core.Options{})
	adv := adversary.NewOmissionScript(3, map[sim.ProcID][]adversary.OmissionPlan{
		2: {{Round: 1, Recv: []bool{false, true, true}}},
	})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 5}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil && !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.OmittedRecv == 0 {
		t.Error("no deliveries were suppressed")
	}
	if res.Faults() != 0 {
		t.Errorf("faults = %d, want 0", res.Faults())
	}
	if res.OmissionFaulty() != 1 || res.Omissive[2] != 1 {
		t.Errorf("omissive = %v, want p2 with 1 omissive round", res.Omissive)
	}
	// p1 and p3 saw a failure-free round 1 and decide p1's estimate; p2
	// missed the coordinator entirely and must not have decided 10 in
	// round 1 with them.
	if res.Decisions[1] != 10 || res.Decisions[3] != 10 {
		t.Errorf("p1/p3 decided %v, want both 10", res.Decisions)
	}
	if r, ok := res.DecideRound[2]; ok && r == 1 {
		t.Errorf("p2 decided in round 1 despite missing the coordinator")
	}
}

func TestNoOmissionsIsReliable(t *testing.T) {
	props := []sim.Value{10, 11, 12}
	procs := core.NewSystem(props, core.Options{})
	adv := adversary.NewOmissionScript(3, nil) // an omitter that never omits
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DistinctDecisions()) != 1 {
		t.Fatalf("reliable run disagreed: %v", res.Decisions)
	}
	c := res.Counters
	if c.OmittedData != 0 || c.OmittedCtrl != 0 || c.OmittedRecv != 0 || c.DroppedData != 0 || c.DroppedCtrl != 0 {
		t.Errorf("reliable run lost messages: %s", c.String())
	}
	if res.Omissive != nil {
		t.Errorf("omissive = %v, want nil", res.Omissive)
	}
}

// badOmitter returns a send-omission mask that does not match the plan.
type badOmitter struct{ adversary.None }

func (badOmitter) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	if p != 1 || r != 1 {
		return sim.Omission{}
	}
	return sim.Omission{Data: make([]bool, len(plan.Data)+3)}
}

func TestMalformedOmissionRejected(t *testing.T) {
	procs := echoSystem(3, false, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, badOmitter{})
	if _, err := e.Run(); !errors.Is(err, sim.ErrBadOmission) {
		t.Fatalf("err = %v, want ErrBadOmission", err)
	}
}

// TestCrashSubsumesOmission pins the consultation contract: the omitter is
// not consulted for a process in the round it crashes.
func TestCrashSubsumesOmission(t *testing.T) {
	procs := echoSystem(3, false, 1)
	crash := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{1: {Round: 1}})
	consulted := map[sim.ProcID]bool{}
	adv := adversary.Combine(crash, omitFunc(func(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
		consulted[p] = true
		return sim.Omission{}
	}))
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adv)
	if _, err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if consulted[1] {
		t.Error("omitter consulted for the crashing process")
	}
	if !consulted[2] || !consulted[3] {
		t.Error("omitter not consulted for surviving processes")
	}
}

// omitFunc adapts a function to sim.Omitter.
type omitFunc func(sim.ProcID, sim.Round, sim.SendPlan) sim.Omission

func (f omitFunc) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	return f(p, r, plan)
}
