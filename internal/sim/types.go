// Package sim implements the round-based synchronous computation models of
// the paper: the traditional synchronous model and the extended model of
// Section 2, in which the send phase of a round is made of two back-to-back
// steps — a data sending step followed by an ordered control (synchronization)
// sending step.
//
// The engine is deterministic: processes are state machines and every source
// of nondeterminism (who crashes when, which data messages escape a crashing
// sender, how long a prefix of the ordered control sequence escapes) is
// delegated to an Adversary. This makes the engine usable both for single
// executions (with scripted or randomized adversaries) and for exhaustive
// state-space exploration (with a backtracking adversary, see internal/check).
//
// Crash semantics follow the paper exactly:
//
//   - If a process crashes during the data sending step, an arbitrary subset
//     of its data messages is delivered.
//   - If it crashes during the control sending step, the control message
//     reaches an arbitrary prefix of the ordered destination sequence.
//   - A message sent in round r is received in round r; a process that
//     crashes in round r receives nothing in round r.
//   - Once a process decides and returns, it halts: it sends nothing in later
//     rounds (this mirrors the "return" statements of Figure 1 and is
//     load-bearing for the uniform agreement proof).
package sim

import "fmt"

// ProcID identifies a process. Processes are numbered 1..n as in the paper
// (p1 is the first rotating coordinator).
type ProcID int

// Round is a 1-based round number. The engine provides it as the global
// read-only clock variable of Section 2.1.
type Round int

// Value is a proposal / decision value. The paper treats values as opaque
// b-bit quantities; int64 payloads plus an explicit bit width in the payload
// types reproduce the bit accounting of Theorem 2.
type Value int64

// NoValue is a sentinel for "no value present".
const NoValue Value = -1 << 62

// Model selects which synchronous model the engine enforces.
type Model uint8

const (
	// ModelClassic is the traditional round-based synchronous model: the send
	// phase has only the data sending step. Protocols running under it must
	// not emit control messages; the engine rejects plans that do.
	ModelClassic Model = iota + 1
	// ModelExtended is the paper's model: data step followed, without a
	// break, by the ordered control step.
	ModelExtended
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case ModelClassic:
		return "classic"
	case ModelExtended:
		return "extended"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// MsgKind distinguishes the two kinds of messages of the extended model.
type MsgKind uint8

const (
	// Data messages carry protocol payloads; their content may depend on
	// messages received in previous rounds.
	Data MsgKind = iota + 1
	// Control messages carry no data (one bit); they are sent in the second
	// sending step of a round, in a prescribed destination order.
	Control
)

// String returns the kind name.
func (k MsgKind) String() string {
	switch k {
	case Data:
		return "data"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("msgkind(%d)", uint8(k))
	}
}

// Payload is the content of a data message. Implementations declare their
// size in bits so the engine can account costs per Theorem 2.
type Payload interface {
	// Bits returns the size of the payload in bits.
	Bits() int
	// String renders the payload for traces.
	String() string
}

// Est is the simplest payload: a single value of a declared bit width. It is
// what the paper's algorithm sends (the coordinator's current estimate).
type Est struct {
	V Value
	B int
}

// Bits returns the declared bit width of the estimate.
func (e Est) Bits() int { return e.B }

// String renders the estimate value.
func (e Est) String() string { return fmt.Sprintf("est(%d)", int64(e.V)) }

// Message is a message in transit or delivered.
type Message struct {
	From    ProcID
	To      ProcID
	Round   Round
	Kind    MsgKind
	Payload Payload // nil for control messages
}

// Bits returns the transmitted size of the message: the payload size for data
// messages, one bit for control messages (footnote 7 of the paper).
func (m Message) Bits() int {
	if m.Kind == Control {
		return 1
	}
	if m.Payload == nil {
		return 0
	}
	return m.Payload.Bits()
}

// String renders the message for traces.
func (m Message) String() string {
	if m.Kind == Control {
		return fmt.Sprintf("COMMIT p%d->p%d@r%d", m.From, m.To, m.Round)
	}
	return fmt.Sprintf("DATA p%d->p%d@r%d %v", m.From, m.To, m.Round, m.Payload)
}

// Outgoing is one data message a process intends to send in the data step.
type Outgoing struct {
	To      ProcID
	Payload Payload
}

// SendPlan is everything a process emits during the send phase of one round:
// the data messages of the first step and the ordered control destinations of
// the second step. Under ModelClassic, Control must be empty.
//
// The two steps are executed sequentially with no local computation in
// between: the engine calls Send exactly once per round and the plan commits
// the process to both steps atomically (up to crash truncation).
type SendPlan struct {
	Data    []Outgoing
	Control []ProcID
}

// IsEmpty reports whether the plan sends nothing.
func (p SendPlan) IsEmpty() bool { return len(p.Data) == 0 && len(p.Control) == 0 }

// Process is a synchronous round-based state machine.
//
// The engine drives each alive, non-halted process through the three phases
// of Section 2.1 every round: it calls Send (the send phase — both steps),
// delivers messages, then calls Receive (the receive phase plus the local
// computation phase). A process signals decision via Decided and termination
// via Halted; a halted process is correct but silent (it has returned).
type Process interface {
	// ID returns the process identity (1-based).
	ID() ProcID
	// Send returns the process's send plan for round r. It must not mutate
	// state in a way that depends on messages of round r (per the model, the
	// send phase precedes the receive phase).
	Send(r Round) SendPlan
	// Receive delivers the messages received in round r and runs the local
	// computation phase. The inbox slice is only valid for the duration of
	// the call: the engine recycles its backing array for later rounds, so
	// implementations must copy any messages they need to retain.
	Receive(r Round, inbox []Message)
	// Decided reports whether the process has decided, and the value.
	Decided() (Value, bool)
	// Halted reports whether the process has terminated (returned). A halted
	// process must have decided.
	Halted() bool
}

// CrashOutcome describes how a crash during the send phase truncates the
// plan: DataDelivered[i] reports whether plan.Data[i] escaped, and CtrlPrefix
// is the number of control messages (a prefix of plan.Control) that escaped.
//
// This single shape expresses every crash point of the model: crashing before
// sending anything is all-false/0; crashing between the two steps is all-true/0;
// crashing after the full send phase (but before the computation phase, e.g.
// just before line 6 of Figure 1) is all-true/len(Control).
//
// Because the two steps are executed sequentially and a process crashes at a
// single point in time, a non-zero control prefix implies the data step
// completed: CtrlPrefix > 0 requires every DataDelivered entry to be true.
// The engine rejects outcomes violating this with ErrBadOutcome — allowing
// them would let a process receive a COMMIT without the coordinator's DATA,
// which provably breaks the algorithm (see the CommitAsData ablation, E10).
type CrashOutcome struct {
	DataDelivered []bool
	CtrlPrefix    int
}

// ValidFor reports whether the outcome is well-formed for the plan: the mask
// matches the data count, the prefix is in range, and a non-zero prefix
// implies full data delivery (single crash point, sequential steps).
func (o CrashOutcome) ValidFor(plan SendPlan) bool {
	if len(o.DataDelivered) != len(plan.Data) {
		return false
	}
	if o.CtrlPrefix < 0 || o.CtrlPrefix > len(plan.Control) {
		return false
	}
	if o.CtrlPrefix > 0 {
		for _, d := range o.DataDelivered {
			if !d {
				return false
			}
		}
	}
	return true
}

// Omission describes the omission faults of one process in one round. The
// zero value means "no omission". Unlike a crash, an omission leaves the
// process alive: it keeps executing the protocol, only its communication is
// silently degraded — the send/receive-omission fault model that sits between
// crash faults and fully lossy channels.
//
//   - Data[i] reports whether plan.Data[i] is transmitted (false = send
//     omission of that message). A nil Data transmits every data message.
//   - Ctrl[i] reports whether plan.Control[i] is transmitted. A nil Ctrl
//     transmits the whole control sequence. Unlike a crash — which cuts the
//     ordered control step at a prefix — a send omission may drop any subset:
//     the process is alive and executes the full step, individual messages
//     simply vanish in its faulty network interface.
//   - Recv[i] reports whether messages from p_{i+1} reach the process this
//     round (false = receive omission of that sender's messages). A nil Recv
//     delivers everything; senders beyond the mask's length are delivered.
type Omission struct {
	Data []bool
	Ctrl []bool
	Recv []bool
}

// IsZero reports whether the omission is the no-fault value.
func (o Omission) IsZero() bool { return o.Data == nil && o.Ctrl == nil && o.Recv == nil }

// ValidFor reports whether the omission is well-formed for the plan: non-nil
// send masks must match the plan exactly (the receive mask is positional over
// process ids and may be any length).
func (o Omission) ValidFor(plan SendPlan) bool {
	if o.Data != nil && len(o.Data) != len(plan.Data) {
		return false
	}
	if o.Ctrl != nil && len(o.Ctrl) != len(plan.Control) {
		return false
	}
	return true
}

// DeliveredMask materializes a positional delivered-mask to length k with
// missing positions delivered — the padding rule every omission spec layer
// (scripted adversaries, fuzz-script replay) shares, load-bearing for
// cross-layer replay fidelity.
func DeliveredMask(mask []bool, k int) []bool {
	out := make([]bool, k)
	for i := range out {
		out[i] = i >= len(mask) || mask[i]
	}
	return out
}

// Omitter is an optional extension of Adversary for send/receive-omission
// faults. Engines consult it once per alive, unhalted process per round,
// immediately after Crashes returned false (a crashing process's truncation
// already subsumes any send omission, and it receives nothing anyway).
//
// Like Crashes, implementations used for cross-engine comparison must be pure
// functions of (process, round, plan): the lockstep runtime consults the
// omitter in goroutine scheduling order.
type Omitter interface {
	Omits(p ProcID, r Round, plan SendPlan) Omission
}

// Adversary controls every nondeterministic choice of the model.
type Adversary interface {
	// Crashes is consulted once per alive process per round, after the
	// process produced its send plan. If it returns crash=true, the process
	// crashes during this round's send phase and outcome describes the
	// truncation; the process receives nothing this round and is removed.
	//
	// Implementations must keep the total number of crashes within the
	// resilience bound t they were configured with.
	Crashes(p ProcID, r Round, plan SendPlan) (crash bool, outcome CrashOutcome)
}

// ValidatePlan checks a send plan: destinations must be existing processes
// other than the sender, and the ordered control sequence must not name a
// destination twice (a channel carries at most one control message per round
// — footnote 3 of the paper). Multiple data messages to one destination are
// tolerated here because the CommitAsData ablation folds the commit into the
// data step; the faithful protocols send at most one data message per channel
// per round, which the lockstep runtime's capacity-2 channels additionally
// enforce.
func ValidatePlan(from ProcID, n int, plan SendPlan) error {
	for _, o := range plan.Data {
		if o.To < 1 || int(o.To) > n {
			return fmt.Errorf("sim: p%d sends data to nonexistent p%d", from, o.To)
		}
		if o.To == from {
			return fmt.Errorf("sim: p%d sends data to itself", from)
		}
	}
	seenCtrl := make(map[ProcID]bool, len(plan.Control))
	for _, to := range plan.Control {
		if to < 1 || int(to) > n {
			return fmt.Errorf("sim: p%d sends control to nonexistent p%d", from, to)
		}
		if to == from {
			return fmt.Errorf("sim: p%d sends control to itself", from)
		}
		if seenCtrl[to] {
			return fmt.Errorf("sim: p%d sends two control messages to p%d in one round", from, to)
		}
		seenCtrl[to] = true
	}
	return nil
}

// FullDelivery returns the outcome of a crash that happens after the entire
// send phase completed (everything escaped).
func FullDelivery(plan SendPlan) CrashOutcome {
	d := make([]bool, len(plan.Data))
	for i := range d {
		d[i] = true
	}
	return CrashOutcome{DataDelivered: d, CtrlPrefix: len(plan.Control)}
}

// NoDelivery returns the outcome of a crash before anything was sent.
func NoDelivery(plan SendPlan) CrashOutcome {
	return CrashOutcome{DataDelivered: make([]bool, len(plan.Data)), CtrlPrefix: 0}
}
