package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Errors returned by the engine.
var (
	// ErrControlInClassic is returned when a protocol emits control messages
	// under ModelClassic, which has no second sending step.
	ErrControlInClassic = errors.New("sim: control message emitted under the classic model")
	// ErrNoProgress is returned when the horizon is reached with undecided
	// alive processes.
	ErrNoProgress = errors.New("sim: horizon reached before all alive processes decided")
	// ErrBadOutcome is returned when an adversary produces a malformed crash
	// outcome (wrong subset length or out-of-range prefix).
	ErrBadOutcome = errors.New("sim: adversary returned malformed crash outcome")
	// ErrBadOmission is returned when an omitter produces a malformed
	// omission (send masks not matching the plan).
	ErrBadOmission = errors.New("sim: adversary returned malformed omission")
	// ErrHaltedWithoutDecision is returned when a process reports Halted
	// without having decided, which no correct protocol may do.
	ErrHaltedWithoutDecision = errors.New("sim: process halted without deciding")
)

// Config configures an execution of the synchronous engine.
type Config struct {
	// Model selects classic or extended semantics.
	Model Model
	// Horizon bounds the number of rounds; the run fails with ErrNoProgress
	// if some alive process has not decided by then. Use at least t+1 for the
	// classic algorithms and f+2 for the paper's algorithm. Zero defaults to
	// n + 2.
	Horizon Round
	// Trace, if non-nil, receives the execution transcript. The no-trace path
	// is the engine's hot path: with Trace nil, rounds execute without any
	// event or detail-string construction.
	Trace *trace.Log
	// Telemetry, if non-nil, receives run/round spans (one simulated time
	// unit per round) and per-round traffic series sampled from the engine's
	// counters. The nil path costs nothing.
	Telemetry *telemetry.Recorder
}

// Result summarizes a finished execution.
type Result struct {
	// Rounds is the number of rounds executed until every alive process
	// halted (or horizon, on error).
	Rounds Round
	// Decisions maps every process that decided — including processes that
	// crashed after deciding — to its decision value. Uniform agreement is a
	// property of this whole map.
	Decisions map[ProcID]Value
	// DecideRound maps each decided process to the round it decided in.
	DecideRound map[ProcID]Round
	// Crashed maps each crashed process to the round it crashed in.
	Crashed map[ProcID]Round
	// Omissive maps each process that committed at least one omission fault
	// to its number of omissive rounds (rounds in which the adversary
	// returned a non-zero Omission for it). Omissive processes stay alive and
	// may appear in Decisions.
	Omissive map[ProcID]int
	// Counters holds the communication cost of the run.
	Counters metrics.Counters
	// Ledger records the fate of every transmitted message, per kind, backing
	// the conservation law checked by internal/laws: for each kind,
	// transmitted == delivered + receive-omitted + late + dead-destination +
	// halted-destination.
	Ledger metrics.Ledger
	// ClockViolation is a description of the first simulated-clock ordering
	// or bookkeeping violation detected by the engine's event core, or "" on
	// a clean run. Only continuous-time engines (internal/timed, via
	// des.Sim.Audit) can set it; round-abstraction engines always leave it
	// empty.
	ClockViolation string
	// SimTime is the simulated wall-clock completion time of the run, in the
	// time units of the engine's latency model. Only continuous-time engines
	// (internal/timed) set it; the round-abstraction engines leave it zero.
	// Cross-engine comparisons deliberately exclude it: it prices the same
	// semantic execution, it does not change it.
	SimTime float64
}

// Faults returns the number of crashes that occurred in the run (the paper's
// f).
func (r *Result) Faults() int { return len(r.Crashed) }

// OmissionFaulty returns the number of processes that committed at least one
// omission fault.
func (r *Result) OmissionFaulty() int { return len(r.Omissive) }

// MaxDecideRound returns the latest round at which some process decided, or 0
// if nobody decided.
func (r *Result) MaxDecideRound() Round {
	var max Round
	for _, rd := range r.DecideRound {
		if rd > max {
			max = rd
		}
	}
	return max
}

// DistinctDecisions returns the sorted set of distinct decided values. It
// allocates a single slice (no intermediate set): the values are collected,
// sorted, and deduplicated in place.
func (r *Result) DistinctDecisions() []Value {
	out := make([]Value, 0, len(r.Decisions))
	for _, v := range r.Decisions {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, v := range out {
		if i == 0 || v != out[w-1] {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// Engine executes a set of processes under an adversary in lockstep rounds.
//
// All per-process state lives in slices indexed by process (id-1), so the
// round loop performs no map operations and — with tracing disabled — no
// allocations after warm-up. An engine can be rewound with Reset to run many
// executions without reallocating its buffers, which is what the exhaustive
// explorer (internal/check) does.
type Engine struct {
	cfg            Config
	defaultHorizon bool // cfg.Horizon was 0 and derived from n
	procs          []Process
	adv            Adversary
	omit           Omitter // adv's omission extension, nil when absent

	alive      []bool
	halted     []bool
	decided    []bool
	decVal     []Value
	decRnd     []Round
	crashRnd   []Round  // 0 = never crashed (rounds are 1-based)
	crashedNow []bool   // scratch: crashed during the current round
	omitCnt    []int    // omissive rounds per process
	recvOmit   [][]bool // scratch: receive-omission mask of the current round
	inbox      [][]Message

	aliveUnhalted int // alive processes that have not halted; allQuiet is ==0
	nDecided      int
	nCrashed      int
	ctr           metrics.Counters
	led           metrics.Ledger

	// Telemetry snapshots for per-round deltas; touched only when recording.
	telCtr metrics.Counters
	telLed metrics.Ledger
}

// inboxSeedCap is the per-process inbox capacity carved out of the flat
// buffer a fresh engine allocates: enough for the faithful protocols (at most
// one data and one control message per round) plus slack; flooding protocols
// grow past it once and then reuse the grown buffers.
const inboxSeedCap = 4

// NewEngine builds an engine over the given processes. Process IDs must be
// the contiguous range 1..n in order.
func NewEngine(cfg Config, procs []Process, adv Adversary) (*Engine, error) {
	e := &Engine{cfg: cfg, defaultHorizon: cfg.Horizon <= 0}
	if err := e.Reset(procs, adv); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rewinds the engine to its initial state over a fresh process set and
// adversary, reusing the internal buffers of the previous execution. The
// configuration (model, horizon, trace, loss hook) is retained; if the
// original Horizon was the n+2 default it is re-derived for the new process
// count. Reset validates its arguments exactly like NewEngine.
func (e *Engine) Reset(procs []Process, adv Adversary) error {
	if len(procs) == 0 {
		return errors.New("sim: no processes")
	}
	for i, p := range procs {
		if p.ID() != ProcID(i+1) {
			return fmt.Errorf("sim: process at index %d has id %d, want %d", i, p.ID(), i+1)
		}
	}
	if adv == nil {
		return errors.New("sim: nil adversary")
	}
	n := len(procs)
	if e.defaultHorizon {
		e.cfg.Horizon = Round(n + 2)
	}
	e.procs = procs
	e.adv = adv
	e.omit, _ = adv.(Omitter)
	if cap(e.alive) < n {
		e.alive = make([]bool, n)
		e.halted = make([]bool, n)
		e.decided = make([]bool, n)
		e.decVal = make([]Value, n)
		e.decRnd = make([]Round, n)
		e.crashRnd = make([]Round, n)
		e.crashedNow = make([]bool, n)
		e.inbox = make([][]Message, n)
		// Seed every inbox from one flat backing array: a fresh engine pays
		// one allocation instead of one per first-delivery per process. An
		// inbox that outgrows its seed capacity reallocates privately.
		flat := make([]Message, n*inboxSeedCap)
		for i := range e.inbox {
			e.inbox[i] = flat[i*inboxSeedCap : i*inboxSeedCap : (i+1)*inboxSeedCap]
		}
	} else {
		e.alive = e.alive[:n]
		e.halted = e.halted[:n]
		e.decided = e.decided[:n]
		e.decVal = e.decVal[:n]
		e.decRnd = e.decRnd[:n]
		e.crashRnd = e.crashRnd[:n]
		e.crashedNow = e.crashedNow[:n]
		e.inbox = e.inbox[:n]
	}
	// The omission scratch exists only for omission-capable adversaries, so
	// the crash-model hot path (and its allocation count) is untouched by
	// the omission fault model.
	if e.omit == nil {
		e.omitCnt = e.omitCnt[:0]
		e.recvOmit = e.recvOmit[:0]
	} else if cap(e.omitCnt) < n {
		e.omitCnt = make([]int, n)
		e.recvOmit = make([][]bool, n)
	} else {
		e.omitCnt = e.omitCnt[:n]
		e.recvOmit = e.recvOmit[:n]
	}
	for i := 0; i < n; i++ {
		e.alive[i] = true
		e.halted[i] = false
		e.decided[i] = false
		e.decVal[i] = 0
		e.decRnd[i] = 0
		e.crashRnd[i] = 0
		e.crashedNow[i] = false
		e.inbox[i] = e.inbox[i][:0]
	}
	for i := range e.omitCnt {
		e.omitCnt[i] = 0
		e.recvOmit[i] = nil
	}
	e.aliveUnhalted = n
	e.nDecided = 0
	e.nCrashed = 0
	e.ctr = metrics.Counters{}
	e.led = metrics.Ledger{}
	e.telCtr = metrics.Counters{}
	e.telLed = metrics.Ledger{}
	return nil
}

// N returns the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// Run executes rounds until every alive process has halted, the horizon is
// reached, or a model violation occurs. It returns the result in all cases;
// the result is partial when err != nil.
func (e *Engine) Run() (*Result, error) {
	var r Round
	var runErr error
	recording := e.cfg.Telemetry.Enabled()
	for r = 1; r <= e.cfg.Horizon; r++ {
		if e.allQuiet() {
			r--
			break
		}
		if err := e.round(r); err != nil {
			runErr = err
			break
		}
		if recording {
			e.recordRound(r)
		}
		if e.allQuiet() {
			break
		}
	}
	if r > e.cfg.Horizon {
		r = e.cfg.Horizon
		if runErr == nil && !e.allQuiet() {
			runErr = ErrNoProgress
		}
	}
	res := &Result{
		Rounds:      r,
		Decisions:   make(map[ProcID]Value, e.nDecided),
		DecideRound: make(map[ProcID]Round, e.nDecided),
		Crashed:     make(map[ProcID]Round, e.nCrashed),
		Counters:    e.ctr,
		Ledger:      e.led,
	}
	for i := range e.procs {
		id := ProcID(i + 1)
		if e.decided[i] {
			res.Decisions[id] = e.decVal[i]
			res.DecideRound[id] = e.decRnd[i]
		}
		if e.crashRnd[i] != 0 {
			res.Crashed[id] = e.crashRnd[i]
		}
		if i < len(e.omitCnt) && e.omitCnt[i] != 0 {
			if res.Omissive == nil {
				res.Omissive = make(map[ProcID]int)
			}
			res.Omissive[id] = e.omitCnt[i]
		}
	}
	res.Counters.Rounds = int(r)
	if recording && runErr == nil {
		e.cfg.Telemetry.Span(telemetry.SpanRun, telemetry.TrackEngine, 0, int32(r), 0, float64(r))
		if r > 0 {
			// On the round abstraction one round is one simulated time unit,
			// so rounds per simulated second is 1 by construction; sampling it
			// keeps the series present for cross-engine comparisons.
			e.cfg.Telemetry.Sample(telemetry.SeriesRoundsPerSec, float64(r), 1)
		}
	}
	return res, runErr
}

// recordRound emits the telemetry of one finished round: a round span over
// its unit time interval and the per-round traffic deltas against the
// previous snapshot. Called only when recording.
func (e *Engine) recordRound(r Round) {
	rec := e.cfg.Telemetry
	t := float64(r)
	rec.Span(telemetry.SpanRound, telemetry.TrackEngine, int32(r), 0, t-1, t)
	dc := e.ctr.Minus(e.telCtr)
	dl := e.led.Minus(e.telLed)
	rec.Sample(telemetry.SeriesDataMsgs, t, float64(dc.DataMsgs))
	rec.Sample(telemetry.SeriesCtrlMsgs, t, float64(dc.CtrlMsgs))
	rec.Sample(telemetry.SeriesDelivered, t, float64(dl.DeliveredData+dl.DeliveredCtrl))
	rec.Sample(telemetry.SeriesDropped, t, float64(dc.DroppedData+dc.DroppedCtrl))
	rec.Sample(telemetry.SeriesOmitted, t, float64(dc.OmittedData+dc.OmittedCtrl+dc.OmittedRecv))
	rec.Sample(telemetry.SeriesLate, t, float64(dc.Late))
	e.telCtr = e.ctr
	e.telLed = e.led
}

// allQuiet reports whether every alive process has halted. The engine keeps
// a running count, so this is O(1) per call.
func (e *Engine) allQuiet() bool { return e.aliveUnhalted == 0 }

// round executes one round: send phase (both steps, with crash truncation),
// delivery, then receive/compute phase.
func (e *Engine) round(r Round) error {
	// Send phase. Collect deliveries first; all messages sent in round r are
	// received in round r, after every sender has executed its send phase.
	for i := range e.crashedNow {
		e.crashedNow[i] = false
	}
	for i := range e.recvOmit {
		e.recvOmit[i] = nil
	}
	for _, p := range e.procs {
		id := p.ID()
		i := int(id) - 1
		if !e.alive[i] || e.halted[i] {
			continue
		}
		plan := p.Send(r)
		if e.cfg.Model == ModelClassic && len(plan.Control) > 0 {
			return fmt.Errorf("%w (process p%d, round %d)", ErrControlInClassic, id, r)
		}
		if err := ValidatePlan(id, len(e.procs), plan); err != nil {
			return fmt.Errorf("%v (round %d)", err, r)
		}
		crash, outcome := e.adv.Crashes(id, r, plan)
		if crash {
			if !outcome.ValidFor(plan) {
				return fmt.Errorf("%w (process p%d, round %d)", ErrBadOutcome, id, r)
			}
			e.alive[i] = false
			e.crashRnd[i] = r
			e.crashedNow[i] = true
			e.aliveUnhalted--
			e.nCrashed++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindCrash, From: int(id),
					Detail: fmt.Sprintf("during send (data %s, ctrl prefix %d/%d)",
						subsetString(outcome.DataDelivered), outcome.CtrlPrefix, len(plan.Control))})
			}
			e.emit(id, r, plan, outcome)
			continue
		}
		if e.omit != nil {
			if om := e.omit.Omits(id, r, plan); !om.IsZero() {
				if !om.ValidFor(plan) {
					return fmt.Errorf("%w (process p%d, round %d)", ErrBadOmission, id, r)
				}
				e.omitCnt[i]++
				e.recvOmit[i] = om.Recv
				if e.cfg.Trace.Enabled() {
					e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindNote, From: int(id),
						Detail: omissionString(om)})
				}
				e.emitOmitted(id, r, plan, om)
				continue
			}
		}
		e.emitAll(id, r, plan)
	}

	// Receive + compute phase. Crashed processes (including those that
	// crashed this round) receive nothing.
	for _, p := range e.procs {
		id := p.ID()
		i := int(id) - 1
		if !e.alive[i] {
			continue
		}
		if e.halted[i] {
			// A halted process stays alive but silent; anything queued for it
			// is discarded so its buffer does not grow round over round.
			for _, m := range e.inbox[i] {
				e.led.HaltedDest(m.Kind == Control)
			}
			e.inbox[i] = e.inbox[i][:0]
			continue
		}
		in := e.inbox[i]
		e.inbox[i] = in[:0] // recycle the buffer for the next round
		if i < len(e.recvOmit) && e.recvOmit[i] != nil {
			in = e.applyRecvOmission(in, e.recvOmit[i], r)
		}
		for _, m := range in {
			e.led.Delivered(m.Kind == Control)
		}
		SortInbox(in)
		p.Receive(r, in)
		if v, ok := p.Decided(); ok {
			if !e.decided[i] {
				e.decided[i] = true
				e.decVal[i] = v
				e.decRnd[i] = r
				e.nDecided++
				if e.cfg.Trace.Enabled() {
					e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDecide,
						From: int(id), Detail: fmt.Sprintf("value %d", int64(v))})
				}
			}
		}
		if p.Halted() {
			if !e.decided[i] {
				return fmt.Errorf("%w (process p%d, round %d)", ErrHaltedWithoutDecision, id, r)
			}
			if !e.halted[i] {
				e.halted[i] = true
				e.aliveUnhalted--
				if e.cfg.Trace.Enabled() {
					e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindHalt, From: int(id)})
				}
			}
		}
	}
	// Messages addressed to processes that crashed this round are dropped.
	for i, c := range e.crashedNow {
		if c {
			for _, m := range e.inbox[i] {
				e.led.DeadDest(m.Kind == Control)
			}
			e.inbox[i] = e.inbox[i][:0]
		}
	}
	return nil
}

// emitAll queues every message of a plan for delivery: the no-crash fast
// path, equivalent to emit with FullDelivery(plan) but without materializing
// the delivered-subset mask.
func (e *Engine) emitAll(from ProcID, r Round, plan SendPlan) {
	for _, o := range plan.Data {
		m := Message{From: from, To: o.To, Round: r, Kind: Data, Payload: o.Payload}
		e.ctr.AddData(m.Bits())
		e.deliver(m)
	}
	for _, to := range plan.Control {
		m := Message{From: from, To: to, Round: r, Kind: Control}
		e.ctr.AddCtrl()
		e.deliver(m)
	}
}

// emitOmitted queues a plan for delivery under a send-omission mask: unlike a
// crash truncation, the sender stays alive, any subset of either step may
// vanish, and the suppressed messages are accounted as omitted (they never
// reached the channel) rather than dropped.
func (e *Engine) emitOmitted(from ProcID, r Round, plan SendPlan, om Omission) {
	for i, o := range plan.Data {
		if om.Data != nil && !om.Data[i] {
			e.ctr.OmittedData++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
					From: int(from), To: int(o.To), Detail: "data (send omission)"})
			}
			continue
		}
		m := Message{From: from, To: o.To, Round: r, Kind: Data, Payload: o.Payload}
		e.ctr.AddData(m.Bits())
		e.deliver(m)
	}
	for i, to := range plan.Control {
		if om.Ctrl != nil && !om.Ctrl[i] {
			e.ctr.OmittedCtrl++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
					From: int(from), To: int(to), Detail: "control (send omission)"})
			}
			continue
		}
		m := Message{From: from, To: to, Round: r, Kind: Control}
		e.ctr.AddCtrl()
		e.deliver(m)
	}
}

// applyRecvOmission compacts an inbox in place to the messages that survive a
// receive-omission mask, accounting the suppressed deliveries.
func (e *Engine) applyRecvOmission(in []Message, mask []bool, r Round) []Message {
	w := 0
	for _, m := range in {
		if i := int(m.From) - 1; i < len(mask) && !mask[i] {
			e.ctr.OmittedRecv++
			e.led.RecvOmitted(m.Kind == Control)
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
					From: int(m.From), To: int(m.To), Detail: m.Kind.String() + " (receive omission)"})
			}
			continue
		}
		in[w] = m
		w++
	}
	return in[:w]
}

// emit applies a (possibly truncating) crash outcome to a send plan, queueing
// the surviving messages for delivery and accounting costs.
func (e *Engine) emit(from ProcID, r Round, plan SendPlan, out CrashOutcome) {
	for i, o := range plan.Data {
		if !out.DataDelivered[i] {
			e.ctr.DroppedData++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
					From: int(from), To: int(o.To), Detail: "data"})
			}
			continue
		}
		m := Message{From: from, To: o.To, Round: r, Kind: Data, Payload: o.Payload}
		e.ctr.AddData(m.Bits())
		e.deliver(m)
	}
	for i, to := range plan.Control {
		if i >= out.CtrlPrefix {
			e.ctr.DroppedCtrl++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
					From: int(from), To: int(to), Detail: "control"})
			}
			continue
		}
		m := Message{From: from, To: to, Round: r, Kind: Control}
		e.ctr.AddCtrl()
		e.deliver(m)
	}
}

// deliver queues a message for the destination's receive phase of the current
// round. Messages to already-crashed processes vanish.
func (e *Engine) deliver(m Message) {
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindSend,
			From: int(m.From), To: int(m.To), Detail: m.Kind.String()})
	}
	i := int(m.To) - 1
	if !e.alive[i] {
		e.led.DeadDest(m.Kind == Control)
		return
	}
	e.inbox[i] = append(e.inbox[i], m)
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindDeliver,
			From: int(m.From), To: int(m.To), Detail: m.Kind.String()})
	}
}

// SortInbox orders an inbox deterministically: by sender, data before
// control. Protocol behaviour must not depend on the order, but determinism
// keeps executions reproducible bit-for-bit — and the engines' cross-check
// contract depends on every engine presenting identical inboxes, so this is
// THE canonical order: all engines (deterministic, lockstep, timed) must
// call this one function rather than reimplement it. Inboxes are small (at
// most a few messages per sender), so a stable insertion sort beats
// sort.SliceStable and performs no allocations.
func SortInbox(in []Message) {
	for i := 1; i < len(in); i++ {
		m := in[i]
		j := i - 1
		for j >= 0 && msgAfter(in[j], m) {
			in[j+1] = in[j]
			j--
		}
		in[j+1] = m
	}
}

// msgAfter reports whether a orders strictly after b: by sender, then data
// before control. Equal keys return false, which keeps the insertion stable.
func msgAfter(a, b Message) bool {
	if a.From != b.From {
		return a.From > b.From
	}
	return a.Kind > b.Kind
}

// omissionString renders an omission event compactly for traces, listing the
// delivered subsets of each affected class, e.g.
// "omission (data {1}/2, recv {2,3}/3)".
func omissionString(o Omission) string {
	s := "omission ("
	first := true
	add := func(label string, mask []bool) {
		if mask == nil {
			return
		}
		if !first {
			s += ", "
		}
		s += label + " " + subsetString(mask)
		first = false
	}
	add("data", o.Data)
	add("ctrl", o.Ctrl)
	add("recv", o.Recv)
	return s + ")"
}

// subsetString renders a delivered-subset mask compactly, e.g. "{1,3}/4".
func subsetString(mask []bool) string {
	s := "{"
	first := true
	for i, b := range mask {
		if !b {
			continue
		}
		if !first {
			s += ","
		}
		s += fmt.Sprint(i + 1)
		first = false
	}
	return fmt.Sprintf("%s}/%d", s, len(mask))
}
