package sim

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Errors returned by the engine.
var (
	// ErrControlInClassic is returned when a protocol emits control messages
	// under ModelClassic, which has no second sending step.
	ErrControlInClassic = errors.New("sim: control message emitted under the classic model")
	// ErrNoProgress is returned when the horizon is reached with undecided
	// alive processes.
	ErrNoProgress = errors.New("sim: horizon reached before all alive processes decided")
	// ErrBadOutcome is returned when an adversary produces a malformed crash
	// outcome (wrong subset length or out-of-range prefix).
	ErrBadOutcome = errors.New("sim: adversary returned malformed crash outcome")
	// ErrHaltedWithoutDecision is returned when a process reports Halted
	// without having decided, which no correct protocol may do.
	ErrHaltedWithoutDecision = errors.New("sim: process halted without deciding")
)

// Config configures an execution of the synchronous engine.
type Config struct {
	// Model selects classic or extended semantics.
	Model Model
	// Horizon bounds the number of rounds; the run fails with ErrNoProgress
	// if some alive process has not decided by then. Use at least t+1 for the
	// classic algorithms and f+2 for the paper's algorithm. Zero defaults to
	// n + 2.
	Horizon Round
	// Trace, if non-nil, receives the execution transcript.
	Trace *trace.Log
	// Loss, if non-nil, makes channels unreliable: a transmitted message for
	// which Loss returns true silently vanishes. The paper's model assumes
	// reliable channels (Section 2.1) and argues it is NOT meant for lossy
	// networks; this hook exists solely for the ablation experiment that
	// demonstrates why — under loss the algorithm's agreement and
	// termination guarantees collapse.
	Loss func(m Message) bool
}

// Result summarizes a finished execution.
type Result struct {
	// Rounds is the number of rounds executed until every alive process
	// halted (or horizon, on error).
	Rounds Round
	// Decisions maps every process that decided — including processes that
	// crashed after deciding — to its decision value. Uniform agreement is a
	// property of this whole map.
	Decisions map[ProcID]Value
	// DecideRound maps each decided process to the round it decided in.
	DecideRound map[ProcID]Round
	// Crashed maps each crashed process to the round it crashed in.
	Crashed map[ProcID]Round
	// Counters holds the communication cost of the run.
	Counters metrics.Counters
}

// Faults returns the number of crashes that occurred in the run (the paper's
// f).
func (r *Result) Faults() int { return len(r.Crashed) }

// MaxDecideRound returns the latest round at which some process decided, or 0
// if nobody decided.
func (r *Result) MaxDecideRound() Round {
	var max Round
	for _, rd := range r.DecideRound {
		if rd > max {
			max = rd
		}
	}
	return max
}

// DistinctDecisions returns the sorted set of distinct decided values.
func (r *Result) DistinctDecisions() []Value {
	seen := map[Value]bool{}
	for _, v := range r.Decisions {
		seen[v] = true
	}
	out := make([]Value, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Engine executes a set of processes under an adversary in lockstep rounds.
type Engine struct {
	cfg   Config
	procs []Process
	adv   Adversary

	alive   map[ProcID]bool
	halted  map[ProcID]bool
	decided map[ProcID]Value
	decRnd  map[ProcID]Round
	crashed map[ProcID]Round
	inbox   map[ProcID][]Message
	ctr     metrics.Counters
}

// NewEngine builds an engine over the given processes. Process IDs must be
// the contiguous range 1..n in order.
func NewEngine(cfg Config, procs []Process, adv Adversary) (*Engine, error) {
	if len(procs) == 0 {
		return nil, errors.New("sim: no processes")
	}
	for i, p := range procs {
		if p.ID() != ProcID(i+1) {
			return nil, fmt.Errorf("sim: process at index %d has id %d, want %d", i, p.ID(), i+1)
		}
	}
	if adv == nil {
		return nil, errors.New("sim: nil adversary")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = Round(len(procs) + 2)
	}
	e := &Engine{
		cfg:     cfg,
		procs:   procs,
		adv:     adv,
		alive:   make(map[ProcID]bool, len(procs)),
		halted:  make(map[ProcID]bool),
		decided: make(map[ProcID]Value),
		decRnd:  make(map[ProcID]Round),
		crashed: make(map[ProcID]Round),
		inbox:   make(map[ProcID][]Message),
	}
	for _, p := range procs {
		e.alive[p.ID()] = true
	}
	return e, nil
}

// N returns the number of processes.
func (e *Engine) N() int { return len(e.procs) }

// Run executes rounds until every alive process has halted, the horizon is
// reached, or a model violation occurs. It returns the result in all cases;
// the result is partial when err != nil.
func (e *Engine) Run() (*Result, error) {
	var r Round
	var runErr error
	for r = 1; r <= e.cfg.Horizon; r++ {
		if e.allQuiet() {
			r--
			break
		}
		if err := e.round(r); err != nil {
			runErr = err
			break
		}
		if e.allQuiet() {
			break
		}
	}
	if r > e.cfg.Horizon {
		r = e.cfg.Horizon
		if runErr == nil && !e.allQuiet() {
			runErr = ErrNoProgress
		}
	}
	res := &Result{
		Rounds:      r,
		Decisions:   e.decided,
		DecideRound: e.decRnd,
		Crashed:     e.crashed,
		Counters:    e.ctr,
	}
	res.Counters.Rounds = int(r)
	return res, runErr
}

// allQuiet reports whether every alive process has halted.
func (e *Engine) allQuiet() bool {
	for id, a := range e.alive {
		if a && !e.halted[id] {
			return false
		}
	}
	return true
}

// round executes one round: send phase (both steps, with crash truncation),
// delivery, then receive/compute phase.
func (e *Engine) round(r Round) error {
	// Send phase. Collect deliveries first; all messages sent in round r are
	// received in round r, after every sender has executed its send phase.
	crashedNow := map[ProcID]bool{}
	for _, p := range e.procs {
		id := p.ID()
		if !e.alive[id] || e.halted[id] {
			continue
		}
		plan := p.Send(r)
		if e.cfg.Model == ModelClassic && len(plan.Control) > 0 {
			return fmt.Errorf("%w (process p%d, round %d)", ErrControlInClassic, id, r)
		}
		if err := ValidatePlan(id, len(e.procs), plan); err != nil {
			return fmt.Errorf("%v (round %d)", err, r)
		}
		crash, outcome := e.adv.Crashes(id, r, plan)
		if crash {
			if !outcome.ValidFor(plan) {
				return fmt.Errorf("%w (process p%d, round %d)", ErrBadOutcome, id, r)
			}
			e.alive[id] = false
			e.crashed[id] = r
			crashedNow[id] = true
			e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindCrash, From: int(id),
				Detail: fmt.Sprintf("during send (data %s, ctrl prefix %d/%d)",
					subsetString(outcome.DataDelivered), outcome.CtrlPrefix, len(plan.Control))})
			e.emit(id, r, plan, outcome)
			continue
		}
		e.emit(id, r, plan, FullDelivery(plan))
	}

	// Receive + compute phase. Crashed processes (including those that
	// crashed this round) receive nothing.
	for _, p := range e.procs {
		id := p.ID()
		if !e.alive[id] || e.halted[id] || crashedNow[id] {
			continue
		}
		in := e.inbox[id]
		delete(e.inbox, id)
		sortInbox(in)
		p.Receive(r, in)
		if v, ok := p.Decided(); ok {
			if _, seen := e.decided[id]; !seen {
				e.decided[id] = v
				e.decRnd[id] = r
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDecide,
					From: int(id), Detail: fmt.Sprintf("value %d", int64(v))})
			}
		}
		if p.Halted() {
			if _, ok := e.decided[id]; !ok {
				return fmt.Errorf("%w (process p%d, round %d)", ErrHaltedWithoutDecision, id, r)
			}
			if !e.halted[id] {
				e.halted[id] = true
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindHalt, From: int(id)})
			}
		}
	}
	// Messages addressed to processes that crashed this round are dropped.
	for id := range crashedNow {
		delete(e.inbox, id)
	}
	return nil
}

// emit applies a (possibly truncating) crash outcome to a send plan, queueing
// the surviving messages for delivery and accounting costs.
func (e *Engine) emit(from ProcID, r Round, plan SendPlan, out CrashOutcome) {
	for i, o := range plan.Data {
		m := Message{From: from, To: o.To, Round: r, Kind: Data, Payload: o.Payload}
		if !out.DataDelivered[i] {
			e.ctr.DroppedData++
			e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
				From: int(from), To: int(o.To), Detail: "data"})
			continue
		}
		e.ctr.AddData(m.Bits())
		e.deliver(m)
	}
	for i, to := range plan.Control {
		if i >= out.CtrlPrefix {
			e.ctr.DroppedCtrl++
			e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
				From: int(from), To: int(to), Detail: "control"})
			continue
		}
		m := Message{From: from, To: to, Round: r, Kind: Control}
		e.ctr.AddCtrl()
		e.deliver(m)
	}
}

// deliver queues a message for the destination's receive phase of the current
// round. Messages to already-crashed processes vanish, as do messages the
// lossy-channel hook (ablation only) decides to drop.
func (e *Engine) deliver(m Message) {
	e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindSend,
		From: int(m.From), To: int(m.To), Detail: m.Kind.String()})
	if e.cfg.Loss != nil && e.cfg.Loss(m) {
		e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindDrop,
			From: int(m.From), To: int(m.To), Detail: m.Kind.String() + " (channel loss)"})
		if m.Kind == Control {
			e.ctr.DroppedCtrl++
		} else {
			e.ctr.DroppedData++
		}
		return
	}
	if !e.alive[m.To] {
		return
	}
	e.inbox[m.To] = append(e.inbox[m.To], m)
	e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindDeliver,
		From: int(m.From), To: int(m.To), Detail: m.Kind.String()})
}

// sortInbox orders an inbox deterministically: by sender, data before
// control. Protocol behaviour must not depend on the order, but determinism
// keeps executions reproducible bit-for-bit.
func sortInbox(in []Message) {
	sort.SliceStable(in, func(i, j int) bool {
		if in[i].From != in[j].From {
			return in[i].From < in[j].From
		}
		return in[i].Kind < in[j].Kind
	})
}

// subsetString renders a delivered-subset mask compactly, e.g. "{1,3}/4".
func subsetString(mask []bool) string {
	s := "{"
	first := true
	for i, b := range mask {
		if !b {
			continue
		}
		if !first {
			s += ","
		}
		s += fmt.Sprint(i + 1)
		first = false
	}
	return fmt.Sprintf("%s}/%d", s, len(mask))
}
