package sim_test

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// mkPlan builds a plan from fuzz inputs: data destinations and control
// destinations drawn from raw bytes over a system of size n.
func mkPlan(n int, dataRaw, ctrlRaw []uint8) sim.SendPlan {
	var plan sim.SendPlan
	for _, d := range dataRaw {
		plan.Data = append(plan.Data, sim.Outgoing{
			To: sim.ProcID(int(d)%n + 1), Payload: sim.Est{V: 1, B: 8}})
	}
	seen := map[sim.ProcID]bool{}
	for _, c := range ctrlRaw {
		to := sim.ProcID(int(c)%n + 1)
		if !seen[to] {
			seen[to] = true
			plan.Control = append(plan.Control, to)
		}
	}
	return plan
}

func TestPropertyFullAndNoDeliveryAlwaysValid(t *testing.T) {
	// FullDelivery and NoDelivery produce valid outcomes for every plan.
	prop := func(nRaw uint8, dataRaw, ctrlRaw []uint8) bool {
		n := int(nRaw%8) + 2
		plan := mkPlan(n, dataRaw, ctrlRaw)
		return sim.FullDelivery(plan).ValidFor(plan) && sim.NoDelivery(plan).ValidFor(plan)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPartialDataWithControlInvalid(t *testing.T) {
	// Any outcome with a nonzero control prefix and at least one undelivered
	// data message violates the single-crash-point rule and must be invalid.
	prop := func(nRaw uint8, dataRaw, ctrlRaw []uint8, drop uint8) bool {
		n := int(nRaw%8) + 2
		plan := mkPlan(n, dataRaw, ctrlRaw)
		if len(plan.Data) == 0 || len(plan.Control) == 0 {
			return true
		}
		out := sim.FullDelivery(plan)
		out.DataDelivered[int(drop)%len(plan.Data)] = false
		out.CtrlPrefix = 1
		return !out.ValidFor(plan)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutOfRangePrefixInvalid(t *testing.T) {
	prop := func(nRaw uint8, ctrlRaw []uint8) bool {
		n := int(nRaw%8) + 2
		plan := mkPlan(n, nil, ctrlRaw)
		out := sim.FullDelivery(plan)
		out.CtrlPrefix = len(plan.Control) + 1
		if out.ValidFor(plan) {
			return false
		}
		out.CtrlPrefix = -1
		return !out.ValidFor(plan)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyValidatePlanCatchesBadDestinations(t *testing.T) {
	// Self-sends and out-of-range destinations are always rejected; plans
	// built from in-range non-self destinations always pass.
	prop := func(nRaw, from uint8, dataRaw, ctrlRaw []uint8) bool {
		n := int(nRaw%8) + 2
		sender := sim.ProcID(int(from)%n + 1)
		plan := mkPlan(n, dataRaw, ctrlRaw)
		// Filter out self-sends so the plan is legal.
		var data []sim.Outgoing
		for _, o := range plan.Data {
			if o.To != sender {
				data = append(data, o)
			}
		}
		var ctrl []sim.ProcID
		for _, c := range plan.Control {
			if c != sender {
				ctrl = append(ctrl, c)
			}
		}
		plan = sim.SendPlan{Data: data, Control: ctrl}
		if sim.ValidatePlan(sender, n, plan) != nil {
			return false
		}
		// Self-send rejected.
		bad := plan
		bad.Data = append(append([]sim.Outgoing(nil), plan.Data...),
			sim.Outgoing{To: sender, Payload: sim.Est{V: 1, B: 8}})
		if sim.ValidatePlan(sender, n, bad) == nil {
			return false
		}
		// Out-of-range rejected.
		bad2 := plan
		bad2.Control = append(append([]sim.ProcID(nil), plan.Control...), sim.ProcID(n+1))
		return sim.ValidatePlan(sender, n, bad2) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDuplicateControlRejected(t *testing.T) {
	prop := func(nRaw, to uint8) bool {
		n := int(nRaw%8) + 3
		dest := sim.ProcID(int(to)%(n-1) + 2) // never the sender p1
		plan := sim.SendPlan{Control: []sim.ProcID{dest, dest}}
		return sim.ValidatePlan(1, n, plan) != nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
