package sim_test

import (
	"errors"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
	"repro/internal/trace"
)

// echoProc is a minimal test protocol: in round 1 every process broadcasts
// its value (data) and optionally a control sequence; each process decides
// the smallest value it knows at the end of round decideAt.
type echoProc struct {
	id       sim.ProcID
	n        int
	val      sim.Value
	ctrl     bool
	decideAt sim.Round

	decided bool
	dec     sim.Value
	halted  bool
}

func (p *echoProc) ID() sim.ProcID { return p.id }

func (p *echoProc) Send(r sim.Round) sim.SendPlan {
	if r != 1 {
		return sim.SendPlan{}
	}
	var plan sim.SendPlan
	for j := 1; j <= p.n; j++ {
		if sim.ProcID(j) == p.id {
			continue
		}
		plan.Data = append(plan.Data, sim.Outgoing{To: sim.ProcID(j), Payload: sim.Est{V: p.val, B: 8}})
		if p.ctrl {
			plan.Control = append(plan.Control, sim.ProcID(j))
		}
	}
	return plan
}

func (p *echoProc) Receive(r sim.Round, inbox []sim.Message) {
	for _, m := range inbox {
		if e, ok := m.Payload.(sim.Est); ok && e.V < p.val {
			p.val = e.V
		}
	}
	if r >= p.decideAt {
		p.decided, p.dec, p.halted = true, p.val, true
	}
}

func (p *echoProc) Decided() (sim.Value, bool) { return p.dec, p.decided }
func (p *echoProc) Halted() bool               { return p.halted }

func echoSystem(n int, ctrl bool, decideAt sim.Round) []sim.Process {
	procs := make([]sim.Process, n)
	for i := 0; i < n; i++ {
		procs[i] = &echoProc{id: sim.ProcID(i + 1), n: n, val: sim.Value(i + 1), ctrl: ctrl, decideAt: decideAt}
	}
	return procs
}

func mustEngine(t *testing.T, cfg sim.Config, procs []sim.Process, adv sim.Adversary) *sim.Engine {
	t.Helper()
	e, err := sim.NewEngine(cfg, procs, adv)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEngineFailureFreeBroadcast(t *testing.T) {
	procs := echoSystem(4, false, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adversary.None{})
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	for id := sim.ProcID(1); id <= 4; id++ {
		if v, ok := res.Decisions[id]; !ok || v != 1 {
			t.Errorf("p%d decided %d,%t; want 1,true", id, int64(v), ok)
		}
	}
	if got := res.Counters.DataMsgs; got != 12 {
		t.Errorf("data messages = %d, want 12", got)
	}
	if got := res.Counters.DataBits; got != 12*8 {
		t.Errorf("data bits = %d, want %d", got, 12*8)
	}
}

func TestEngineRejectsControlUnderClassic(t *testing.T) {
	procs := echoSystem(3, true, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adversary.None{})
	_, err := e.Run()
	if !errors.Is(err, sim.ErrControlInClassic) {
		t.Fatalf("err = %v, want ErrControlInClassic", err)
	}
}

func TestEngineAllowsControlUnderExtended(t *testing.T) {
	procs := echoSystem(3, true, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelExtended}, procs, adversary.None{})
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.CtrlMsgs != 6 {
		t.Errorf("control messages = %d, want 6", res.Counters.CtrlMsgs)
	}
	if res.Counters.CtrlBits != 6 {
		t.Errorf("control bits = %d, want 6", res.Counters.CtrlBits)
	}
}

func TestEngineCrashSubsetSemantics(t *testing.T) {
	// p1 crashes in round 1 delivering data only to p3 (mask position 2 of
	// [->2, ->3, ->4]). p3 should learn value 1; p2 and p4 should not.
	procs := echoSystem(4, false, 1)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DataMask: []bool{false, true, false}},
	})
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adv)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, crashed := res.Crashed[1]; !crashed {
		t.Fatal("p1 did not crash")
	}
	if _, decided := res.Decisions[1]; decided {
		t.Error("crashed p1 decided")
	}
	if v := res.Decisions[3]; v != 1 {
		t.Errorf("p3 decided %d, want 1 (received p1's value)", int64(v))
	}
	if v := res.Decisions[2]; v != 2 {
		t.Errorf("p2 decided %d, want 2 (p1's message dropped)", int64(v))
	}
	if v := res.Decisions[4]; v != 2 {
		t.Errorf("p4 decided %d, want 2 (learned only p2, p3)", int64(v))
	}
	if res.Counters.DroppedData == 0 {
		t.Error("expected dropped data messages")
	}
}

func TestEngineCrashPrefixSemantics(t *testing.T) {
	// In the extended model a control sequence is truncated to a prefix.
	// p1's control order is [p2, p3, p4] (echoProc emits ascending); with
	// prefix 2 exactly p2 and p3 receive the control message.
	procs := echoSystem(4, true, 1)
	log := trace.New()
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: 2},
	})
	e := mustEngine(t, sim.Config{Model: sim.ModelExtended, Trace: log}, procs, adv)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Counters.CtrlMsgs != 2+9 { // p1's prefix 2 + full 3 from each of p2..p4
		t.Errorf("control messages = %d, want 11", res.Counters.CtrlMsgs)
	}
	if res.Counters.DroppedCtrl != 1 {
		t.Errorf("dropped control = %d, want 1", res.Counters.DroppedCtrl)
	}
	// The delivered control messages from p1 must be exactly to p2 and p3.
	var ctrlTo []int
	for _, ev := range log.Filter(trace.KindDeliver) {
		if ev.From == 1 && ev.Detail == "control" {
			ctrlTo = append(ctrlTo, ev.To)
		}
	}
	if len(ctrlTo) != 2 || ctrlTo[0] != 2 || ctrlTo[1] != 3 {
		t.Errorf("p1 control deliveries = %v, want [2 3]", ctrlTo)
	}
}

func TestEngineCrashedReceivesNothing(t *testing.T) {
	// p2 crashes during round 1's send phase: it must not decide even though
	// messages were addressed to it.
	procs := echoSystem(3, false, 1)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		2: {Round: 1, DeliverAllData: true},
	})
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adv)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := res.Decisions[2]; ok {
		t.Error("p2 decided despite crashing before its receive phase")
	}
	if v := res.Decisions[3]; v != 1 {
		t.Errorf("p3 decided %d, want 1", int64(v))
	}
}

func TestEngineHaltedProcessStopsSending(t *testing.T) {
	// With decideAt=1 every process halts after round 1; a second round must
	// not happen and message counts must reflect one round only.
	procs := echoSystem(3, false, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic, Horizon: 5}, procs, adversary.None{})
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
	if res.Counters.DataMsgs != 6 {
		t.Errorf("data messages = %d, want 6", res.Counters.DataMsgs)
	}
}

func TestEngineHorizonExhaustion(t *testing.T) {
	procs := echoSystem(3, false, 99) // never decides within horizon
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic, Horizon: 3}, procs, adversary.None{})
	_, err := e.Run()
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

type badAdversary struct{}

func (badAdversary) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	return true, sim.CrashOutcome{DataDelivered: []bool{true}, CtrlPrefix: 99}
}

func TestEngineRejectsMalformedOutcome(t *testing.T) {
	procs := echoSystem(3, false, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, badAdversary{})
	_, err := e.Run()
	if !errors.Is(err, sim.ErrBadOutcome) {
		t.Fatalf("err = %v, want ErrBadOutcome", err)
	}
}

func TestEngineRejectsBadProcessIDs(t *testing.T) {
	procs := []sim.Process{&echoProc{id: 2, n: 1, val: 1, decideAt: 1}}
	if _, err := sim.NewEngine(sim.Config{}, procs, adversary.None{}); err == nil {
		t.Fatal("NewEngine accepted non-contiguous process ids")
	}
	if _, err := sim.NewEngine(sim.Config{}, nil, adversary.None{}); err == nil {
		t.Fatal("NewEngine accepted zero processes")
	}
	if _, err := sim.NewEngine(sim.Config{}, echoSystem(2, false, 1), nil); err == nil {
		t.Fatal("NewEngine accepted nil adversary")
	}
}

func TestEngineDropsMessagesToCrashedProcesses(t *testing.T) {
	// p3 crashes in round 1 (sending everything); messages addressed to it in
	// the same round vanish and it never decides.
	procs := echoSystem(3, false, 2)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		3: {Round: 1, DeliverAllData: true},
	})
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adv)
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, ok := res.Decisions[3]; ok {
		t.Error("crashed p3 decided")
	}
	// p1 and p2 still learn p3's value 3? No: they learn values 1,2,3 and
	// decide min = 1 at round 2.
	if v := res.Decisions[1]; v != 1 {
		t.Errorf("p1 decided %d, want 1", int64(v))
	}
}

func TestResultHelpers(t *testing.T) {
	procs := echoSystem(3, false, 1)
	e := mustEngine(t, sim.Config{Model: sim.ModelClassic}, procs, adversary.None{})
	res, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if f := res.Faults(); f != 0 {
		t.Errorf("Faults = %d, want 0", f)
	}
	if m := res.MaxDecideRound(); m != 1 {
		t.Errorf("MaxDecideRound = %d, want 1", m)
	}
	if d := res.DistinctDecisions(); len(d) != 1 || d[0] != 1 {
		t.Errorf("DistinctDecisions = %v, want [1]", d)
	}
}

func TestMessageBits(t *testing.T) {
	d := sim.Message{Kind: sim.Data, Payload: sim.Est{V: 7, B: 32}}
	if d.Bits() != 32 {
		t.Errorf("data bits = %d, want 32", d.Bits())
	}
	c := sim.Message{Kind: sim.Control}
	if c.Bits() != 1 {
		t.Errorf("control bits = %d, want 1", c.Bits())
	}
	empty := sim.Message{Kind: sim.Data}
	if empty.Bits() != 0 {
		t.Errorf("nil-payload bits = %d, want 0", empty.Bits())
	}
}

func TestDeliveryHelpers(t *testing.T) {
	plan := sim.SendPlan{
		Data:    []sim.Outgoing{{To: 2}, {To: 3}},
		Control: []sim.ProcID{3, 2},
	}
	full := sim.FullDelivery(plan)
	if len(full.DataDelivered) != 2 || !full.DataDelivered[0] || !full.DataDelivered[1] || full.CtrlPrefix != 2 {
		t.Errorf("FullDelivery = %+v", full)
	}
	none := sim.NoDelivery(plan)
	if len(none.DataDelivered) != 2 || none.DataDelivered[0] || none.DataDelivered[1] || none.CtrlPrefix != 0 {
		t.Errorf("NoDelivery = %+v", none)
	}
	if plan.IsEmpty() {
		t.Error("non-empty plan reported empty")
	}
	if !(sim.SendPlan{}).IsEmpty() {
		t.Error("empty plan reported non-empty")
	}
}

func TestModelAndKindStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{sim.ModelClassic.String(), "classic"},
		{sim.ModelExtended.String(), "extended"},
		{sim.Data.String(), "data"},
		{sim.Control.String(), "control"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
