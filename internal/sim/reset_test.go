package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// TestEngineResetMatchesFreshEngine checks that a reused engine produces
// bit-identical results to a freshly constructed one, across different
// scenarios and process counts (including shrinking and growing n, which
// exercises the buffer-reuse paths).
func TestEngineResetMatchesFreshEngine(t *testing.T) {
	scenarios := []struct {
		n   int
		adv sim.Adversary
	}{
		{4, adversary.None{}},
		{4, adversary.CoordinatorKiller{F: 2}},
		{7, adversary.CoordinatorKiller{F: 3, DeliverAllData: true, CtrlPrefix: adversary.CtrlAll}},
		{2, adversary.None{}},
		{4, adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
			2: {Round: 1, DeliverAllData: true, CtrlPrefix: 1},
		})},
	}
	reused, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended}, echoSystem(3, true, 2), adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reused.Run(); err != nil {
		t.Fatalf("priming run: %v", err)
	}
	for i, sc := range scenarios {
		if err := reused.Reset(echoSystem(sc.n, true, 2), sc.adv); err != nil {
			t.Fatalf("scenario %d: Reset: %v", i, err)
		}
		got, gotErr := reused.Run()

		fresh, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended}, echoSystem(sc.n, true, 2), sc.adv)
		if err != nil {
			t.Fatalf("scenario %d: NewEngine: %v", i, err)
		}
		want, wantErr := fresh.Run()

		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("scenario %d: reused err %v, fresh err %v", i, gotErr, wantErr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("scenario %d: reused result %+v, fresh result %+v", i, got, want)
		}
	}
}

// TestEngineResetRederivesDefaultHorizon checks that an engine built with
// the zero-value (defaulted) horizon re-derives n+2 when Reset changes n.
func TestEngineResetRederivesDefaultHorizon(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic}, echoSystem(2, false, 10), adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	// decideAt 10 > horizon: the run must stop at horizon n+2 with ErrNoProgress.
	res, runErr := eng.Run()
	if runErr == nil || res.Rounds != 4 {
		t.Fatalf("n=2: rounds %d err %v, want horizon 4 and ErrNoProgress", res.Rounds, runErr)
	}
	if err := eng.Reset(echoSystem(6, false, 10), adversary.None{}); err != nil {
		t.Fatal(err)
	}
	res, runErr = eng.Run()
	if runErr == nil || res.Rounds != 8 {
		t.Fatalf("n=6 after Reset: rounds %d err %v, want re-derived horizon 8 and ErrNoProgress",
			res.Rounds, runErr)
	}
}

// TestEngineResetValidation checks Reset rejects the same malformed inputs
// NewEngine does.
func TestEngineResetValidation(t *testing.T) {
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic}, echoSystem(2, false, 1), adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(nil, adversary.None{}); err == nil {
		t.Error("Reset accepted zero processes")
	}
	if err := eng.Reset(echoSystem(2, false, 1), nil); err == nil {
		t.Error("Reset accepted nil adversary")
	}
	bad := echoSystem(3, false, 1)
	bad[1], bad[2] = bad[2], bad[1]
	if err := eng.Reset(bad, adversary.None{}); err == nil {
		t.Error("Reset accepted non-contiguous process ids")
	}
	// The engine must still be usable after rejected Resets.
	if err := eng.Reset(echoSystem(2, false, 1), adversary.None{}); err != nil {
		t.Fatalf("valid Reset after rejections: %v", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("run after recovery: %v", err)
	}
}
