// Package ffd implements the fast-failure-detector synchronous model of
// Aguilera, Le Lann and Toueg (DISC 2002) — reference [1] of the paper — and
// a rotating-coordinator uniform consensus algorithm for it that decides by
// time D + f·d, the bound the paper cites when positioning the extended
// synchronous model ("both our protocol and the fast failure detector-based
// protocol decide in a single round when there is no crash").
//
// Model. Processes communicate by messages with delay exactly D (an upper
// bound, taken as exact for the worst-case analysis). Each process has a
// read-only failure detector variable that is safe (contains only crashed
// processes) and d-live: if a process crashes at time τ, every alive process
// suspects it by τ+d, with d << D.
//
// Algorithm (a reconstruction from the cited result; the substitution is
// recorded in DESIGN.md). Process p takes over as coordinator when every
// lower-id process is suspected; on takeover it broadcasts (p, est) where
// est is the value of the highest-id coordinator it has heard from (its own
// proposal if none). A broadcast is instantaneous; a crash during it
// delivers an arbitrary subset. Because d < D, a receiver of (c, v) at time
// τ_send + D already suspects c if and only if c crashed during its
// broadcast: an unsuspected sender's broadcast is known to be complete, its
// value is locked, and the receiver decides v. The coordinator itself
// decides at broadcast completion — the exact analog of line 6 of the
// paper's Figure 1, with the fast failure detector playing the role the
// ordered COMMIT step plays in the extended model.
//
// Worst case: the first f coordinators crash at takeover; p_{k} takes over
// at (k-1)·d, so the correct coordinator p_{f+1} broadcasts at f·d and every
// process decides by f·d + D = D + f·d.
package ffd

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/sim"
)

// Config parametrizes a run.
type Config struct {
	// N is the number of processes.
	N int
	// D is the message delay (also the classic round duration).
	D des.Time
	// Dd is the failure-detection latency d; must satisfy 0 < Dd < D.
	Dd des.Time
}

// Validate checks the model constraints.
func (c Config) Validate() error {
	if c.N < 1 {
		return errors.New("ffd: need at least one process")
	}
	if !(c.Dd > 0 && c.Dd < c.D) {
		return fmt.Errorf("ffd: need 0 < d < D, got d=%v D=%v", c.Dd, c.D)
	}
	return nil
}

// Schedule decides crash behaviour: when coordinator p broadcasts at time t,
// Crash reports whether it crashes during the broadcast and, if so, which of
// its n-1 messages (indexed by destination order p_1.. skipping itself)
// escape.
type Schedule interface {
	Crash(p sim.ProcID, t des.Time, dests []sim.ProcID) (bool, []bool)
}

// NoCrash is the failure-free schedule.
type NoCrash struct{}

// Crash implements Schedule.
func (NoCrash) Crash(sim.ProcID, des.Time, []sim.ProcID) (bool, []bool) { return false, nil }

// KillFirstF crashes the first F coordinators at their takeover broadcast.
// DeliverTo optionally selects destinations that still receive the dying
// broadcast (nil = nobody).
type KillFirstF struct {
	F         int
	DeliverTo map[sim.ProcID]bool
}

// Crash implements Schedule.
func (k KillFirstF) Crash(p sim.ProcID, _ des.Time, dests []sim.ProcID) (bool, []bool) {
	if int(p) > k.F {
		return false, nil
	}
	mask := make([]bool, len(dests))
	for i, to := range dests {
		mask[i] = k.DeliverTo[to]
	}
	return true, mask
}

// Result summarizes a run.
type Result struct {
	// Decisions maps every decided process to its value.
	Decisions map[sim.ProcID]sim.Value
	// DecideTime maps every decided process to its decision time.
	DecideTime map[sim.ProcID]des.Time
	// Crashed maps crashed processes to their crash times.
	Crashed map[sim.ProcID]des.Time
	// Broadcasts is the number of coordinator broadcasts performed.
	Broadcasts int
	// Messages is the number of point-to-point messages delivered.
	Messages int
}

// MaxDecideTime returns the latest decision time (0 if nobody decided).
func (r *Result) MaxDecideTime() des.Time {
	var max des.Time
	for _, t := range r.DecideTime {
		if t > max {
			max = t
		}
	}
	return max
}

// Faults returns the number of crashes.
func (r *Result) Faults() int { return len(r.Crashed) }

// proc is the per-process state.
type proc struct {
	id        sim.ProcID
	est       sim.Value
	bestCoord sim.ProcID // highest coordinator heard from (0 = none)
	suspected map[sim.ProcID]bool
	crashed   bool
	decided   bool
	decision  sim.Value
	tookOver  bool
}

// Run executes one consensus instance and returns the result.
func Run(cfg Config, proposals []sim.Value, sched Schedule) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(proposals) != cfg.N {
		return nil, fmt.Errorf("ffd: %d proposals for %d processes", len(proposals), cfg.N)
	}
	s := &des.Sim{}
	res := &Result{
		Decisions:  map[sim.ProcID]sim.Value{},
		DecideTime: map[sim.ProcID]des.Time{},
		Crashed:    map[sim.ProcID]des.Time{},
	}
	procs := make([]*proc, cfg.N)
	for i := range procs {
		procs[i] = &proc{
			id:        sim.ProcID(i + 1),
			est:       proposals[i],
			suspected: map[sim.ProcID]bool{},
		}
	}

	decide := func(p *proc, v sim.Value) {
		if p.decided || p.crashed {
			return
		}
		p.decided = true
		p.decision = v
		res.Decisions[p.id] = v
		res.DecideTime[p.id] = s.Now()
	}

	var takeover func(p *proc)

	// suspect delivers the d-late crash notification of target to p and
	// triggers a takeover if p is now the lowest unsuspected process.
	suspect := func(p *proc, target sim.ProcID) {
		if p.crashed {
			return
		}
		p.suspected[target] = true
		takeover(p)
	}

	crash := func(p *proc) {
		p.crashed = true
		res.Crashed[p.id] = s.Now()
		for _, q := range procs {
			if q != p {
				q := q
				id := p.id
				s.After(cfg.Dd, func() { suspect(q, id) })
			}
		}
	}

	takeover = func(p *proc) {
		if p.crashed || p.tookOver {
			return
		}
		for j := sim.ProcID(1); j < p.id; j++ {
			if !p.suspected[j] {
				return
			}
		}
		p.tookOver = true
		res.Broadcasts++
		dests := make([]sim.ProcID, 0, cfg.N-1)
		for _, q := range procs {
			if q.id != p.id {
				dests = append(dests, q.id)
			}
		}
		crashNow, mask := sched.Crash(p.id, s.Now(), dests)
		from, est := p.id, p.est
		for i, to := range dests {
			if crashNow && (mask == nil || !mask[i]) {
				continue
			}
			q := procs[to-1]
			s.After(cfg.D, func() { receive(s, cfg, res, q, from, est, decide) })
		}
		if crashNow {
			crash(p)
			return
		}
		// Broadcast completed: the value is locked; the coordinator decides
		// immediately (the analog of Figure 1's line 6).
		decide(p, p.est)
	}

	// p_1 is the initial coordinator: it takes over at time 0.
	s.At(0, func() { takeover(procs[0]) })

	s.Run(des.Infinity)

	// Sanity: every surviving process must have decided.
	for _, p := range procs {
		if !p.crashed && !p.decided {
			return res, fmt.Errorf("ffd: p%d never decided", p.id)
		}
	}
	return res, nil
}

// receive processes the arrival of (from, est) at q.
func receive(s *des.Sim, cfg Config, res *Result, q *proc, from sim.ProcID, est sim.Value,
	decide func(*proc, sim.Value)) {
	if q.crashed {
		return
	}
	res.Messages++
	if from > q.bestCoord {
		q.bestCoord = from
		q.est = est
	}
	// d < D: if the sender crashed during its broadcast, q already suspects
	// it. An unsuspected sender completed its broadcast — value locked.
	if !q.suspected[from] {
		decide(q, est)
	}
}

// WorstCaseDecideTime returns the model's worst-case decision time D + f·d.
func WorstCaseDecideTime(cfg Config, f int) des.Time {
	return cfg.D + des.Time(f)*cfg.Dd
}

// SortedDecideTimes returns the decision times in increasing order (for
// table output).
func (r *Result) SortedDecideTimes() []des.Time {
	out := make([]des.Time, 0, len(r.DecideTime))
	for _, t := range r.DecideTime {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
