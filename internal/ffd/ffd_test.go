package ffd_test

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/ffd"
	"repro/internal/sim"
)

func props(n int) []sim.Value {
	vs := make([]sim.Value, n)
	for i := range vs {
		vs[i] = sim.Value(100 + i)
	}
	return vs
}

func approx(a, b des.Time) bool { return math.Abs(float64(a-b)) < 1e-9 }

func TestFailureFreeDecidesAtD(t *testing.T) {
	cfg := ffd.Config{N: 5, D: 1.0, Dd: 0.05}
	res, err := ffd.Run(cfg, props(5), ffd.NoCrash{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults() != 0 {
		t.Fatalf("faults = %d", res.Faults())
	}
	// p1 decides at its broadcast (time 0); everyone else at D.
	if !approx(res.DecideTime[1], 0) {
		t.Errorf("p1 decided at %v, want 0", res.DecideTime[1])
	}
	for id := sim.ProcID(2); id <= 5; id++ {
		if !approx(res.DecideTime[id], cfg.D) {
			t.Errorf("p%d decided at %v, want %v", id, res.DecideTime[id], cfg.D)
		}
		if res.Decisions[id] != 100 {
			t.Errorf("p%d decided %d, want 100", id, int64(res.Decisions[id]))
		}
	}
	if got, want := res.MaxDecideTime(), cfg.D; !approx(got, want) {
		t.Errorf("max decide time = %v, want %v", got, want)
	}
}

func TestWorstCaseDecideTimeDPlusFd(t *testing.T) {
	// The first f coordinators crash at their takeover broadcasts, delivering
	// nothing: the correct coordinator p_{f+1} takes over at f·d and everyone
	// decides by D + f·d, the bound of [1].
	cfg := ffd.Config{N: 8, D: 1.0, Dd: 0.05}
	for f := 0; f <= 5; f++ {
		res, err := ffd.Run(cfg, props(8), ffd.KillFirstF{F: f})
		if err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if res.Faults() != f {
			t.Fatalf("f=%d: faults = %d", f, res.Faults())
		}
		want := ffd.WorstCaseDecideTime(cfg, f)
		if got := res.MaxDecideTime(); !approx(got, want) {
			t.Errorf("f=%d: max decide time = %v, want D+f·d = %v", f, got, want)
		}
		// All decisions carry the surviving coordinator's proposal, and no two
		// processes decide differently.
		for id, v := range res.Decisions {
			if v != sim.Value(100+f) {
				t.Errorf("f=%d: p%d decided %d, want %d", f, id, int64(v), 100+f)
			}
		}
	}
}

func TestPartialBroadcastDoesNotBreakAgreement(t *testing.T) {
	// p1 crashes mid-broadcast delivering only to p3. Because d < D, p3
	// suspects p1 before the message arrives and must not decide it; the next
	// coordinator's value wins. Uniform agreement holds.
	cfg := ffd.Config{N: 4, D: 1.0, Dd: 0.1}
	res, err := ffd.Run(cfg, props(4),
		ffd.KillFirstF{F: 1, DeliverTo: map[sim.ProcID]bool{3: true}})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[sim.Value]bool{}
	for _, v := range res.Decisions {
		distinct[v] = true
	}
	if len(distinct) != 1 {
		t.Fatalf("uniform agreement violated: %v", res.Decisions)
	}
	for id, v := range res.Decisions {
		if v != 101 { // p2's proposal
			t.Errorf("p%d decided %d, want 101", id, int64(v))
		}
	}
	// p3 received p1's dying message but decided only on p2's broadcast at
	// d + D.
	if want := cfg.Dd + cfg.D; !approx(res.DecideTime[3], want) {
		t.Errorf("p3 decided at %v, want %v", res.DecideTime[3], want)
	}
}

func TestDyingBroadcastLosesToFastDetection(t *testing.T) {
	// p1 delivers its dying broadcast to everyone, but the messages take D
	// to arrive while the crash is detected within d << D: p2 takes over at
	// time d — long before p1's value reaches it — and broadcasts its own
	// proposal, which wins. This is the defining timing behaviour of the
	// fast-failure-detector model: takeovers outpace in-flight data. Uniform
	// agreement holds throughout (late arrivals from suspected senders are
	// adopted as estimates but never decided).
	cfg := ffd.Config{N: 4, D: 1.0, Dd: 0.1}
	res, err := ffd.Run(cfg, props(4),
		ffd.KillFirstF{F: 1, DeliverTo: map[sim.ProcID]bool{2: true, 3: true, 4: true}})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range res.Decisions {
		if v != 101 {
			t.Errorf("p%d decided %d, want p2's value 101", id, int64(v))
		}
	}
	// p2 decides at its takeover broadcast (time d); the others at d + D.
	if !approx(res.DecideTime[2], cfg.Dd) {
		t.Errorf("p2 decided at %v, want %v", res.DecideTime[2], cfg.Dd)
	}
	for _, id := range []sim.ProcID{3, 4} {
		if want := cfg.Dd + cfg.D; !approx(res.DecideTime[id], want) {
			t.Errorf("p%d decided at %v, want %v", id, res.DecideTime[id], want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (ffd.Config{N: 3, D: 1, Dd: 1}).Validate(); err == nil {
		t.Error("accepted d == D")
	}
	if err := (ffd.Config{N: 3, D: 1, Dd: 0}).Validate(); err == nil {
		t.Error("accepted d == 0")
	}
	if err := (ffd.Config{N: 0, D: 1, Dd: 0.1}).Validate(); err == nil {
		t.Error("accepted n == 0")
	}
	if _, err := ffd.Run(ffd.Config{N: 3, D: 1, Dd: 0.1}, props(2), ffd.NoCrash{}); err == nil {
		t.Error("accepted proposal/process count mismatch")
	}
}

func TestComparisonAgainstExtendedModel(t *testing.T) {
	// Experiment E7's core claim: for small d and δ both models decide fast;
	// FFD time D+f·d vs extended-model time (f+1)(D+δ). With d = δ the FFD
	// model wins for f >= 1 (it pays d per crash instead of D+δ).
	cfg := ffd.Config{N: 8, D: 1.0, Dd: 0.05}
	delta := des.Time(0.05)
	for f := 1; f <= 5; f++ {
		ffdTime := ffd.WorstCaseDecideTime(cfg, f)
		extTime := des.Time(f+1) * (cfg.D + delta)
		if ffdTime >= extTime {
			t.Errorf("f=%d: FFD %v should beat extended %v at equal overhead", f, ffdTime, extTime)
		}
	}
	// At f=0 both models decide within one message delay (+δ for extended).
	if ffdTime := ffd.WorstCaseDecideTime(cfg, 0); !approx(ffdTime, cfg.D) {
		t.Errorf("f=0: FFD time %v, want D", ffdTime)
	}
}

func TestExhaustiveDeliverySubsets(t *testing.T) {
	// Sweep every delivery subset of every single-crash and double-crash
	// schedule for a small system: uniform agreement and termination must
	// hold in all of them. This is the FFD analog of the synchronous
	// explorer's subset enumeration.
	cfg := ffd.Config{N: 4, D: 1.0, Dd: 0.1}
	ids := []sim.ProcID{1, 2, 3, 4}
	subsets := func(exclude sim.ProcID) [][]sim.ProcID {
		var others []sim.ProcID
		for _, id := range ids {
			if id != exclude {
				others = append(others, id)
			}
		}
		var out [][]sim.ProcID
		for mask := 0; mask < 1<<len(others); mask++ {
			var s []sim.ProcID
			for i, id := range others {
				if mask&(1<<i) != 0 {
					s = append(s, id)
				}
			}
			out = append(out, s)
		}
		return out
	}
	toSet := func(s []sim.ProcID) map[sim.ProcID]bool {
		m := map[sim.ProcID]bool{}
		for _, id := range s {
			m[id] = true
		}
		return m
	}

	runs := 0
	for _, f := range []int{1, 2} {
		for _, s1 := range subsets(1) {
			sched := ffd.KillFirstF{F: f, DeliverTo: toSet(s1)}
			res, err := ffd.Run(cfg, props(4), sched)
			if err != nil {
				t.Fatalf("f=%d subset %v: %v", f, s1, err)
			}
			runs++
			distinct := map[sim.Value]bool{}
			for _, v := range res.Decisions {
				distinct[v] = true
			}
			if len(distinct) != 1 {
				t.Fatalf("f=%d subset %v: agreement violated: %v", f, s1, res.Decisions)
			}
			if got, bound := res.MaxDecideTime(), ffd.WorstCaseDecideTime(cfg, f); got > bound+1e-9 {
				t.Errorf("f=%d subset %v: decide time %v exceeds D+f·d = %v", f, s1, got, bound)
			}
		}
	}
	t.Logf("swept %d FFD delivery-subset schedules", runs)
}

func TestBroadcastAndMessageCounts(t *testing.T) {
	cfg := ffd.Config{N: 5, D: 1.0, Dd: 0.05}
	res, err := ffd.Run(cfg, props(5), ffd.NoCrash{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcasts != 1 {
		t.Errorf("broadcasts = %d, want 1", res.Broadcasts)
	}
	if res.Messages != 4 {
		t.Errorf("messages = %d, want 4", res.Messages)
	}
	times := res.SortedDecideTimes()
	if len(times) != 5 || times[0] != 0 {
		t.Errorf("sorted decide times = %v", times)
	}
}
