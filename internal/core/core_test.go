package core_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
)

// run executes one CRW instance and returns the result.
func run(t *testing.T, proposals []sim.Value, opts core.Options, adv sim.Adversary) *sim.Result {
	t.Helper()
	procs := core.NewSystem(proposals, opts)
	model := sim.ModelExtended
	if opts.CommitAsData {
		model = sim.ModelClassic
	}
	eng, err := sim.NewEngine(sim.Config{Model: model, Horizon: sim.Round(len(proposals) + 2)}, procs, adv)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func proposals(n int) []sim.Value {
	vs := make([]sim.Value, n)
	for i := range vs {
		vs[i] = sim.Value(100 + i)
	}
	return vs
}

func TestFailureFreeDecidesInOneRound(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 32} {
		props := proposals(n)
		res := run(t, props, core.Options{}, adversary.None{})
		if res.Rounds != 1 {
			t.Errorf("n=%d: rounds = %d, want 1", n, res.Rounds)
		}
		if err := check.Consensus(props, res); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		for id, v := range res.Decisions {
			if v != props[0] {
				t.Errorf("n=%d: p%d decided %d, want p1's proposal %d", n, id, int64(v), int64(props[0]))
			}
		}
		if len(res.Decisions) != n {
			t.Errorf("n=%d: %d deciders, want %d", n, len(res.Decisions), n)
		}
	}
}

func TestCoordinatorKillerForcesFPlus1Rounds(t *testing.T) {
	// The silent coordinator-killer (no deliveries) is the schedule that
	// matches the lower bound: decision happens at round exactly f+1.
	const n = 6
	for f := 0; f <= n-1; f++ {
		props := proposals(n)
		adv := adversary.CoordinatorKiller{F: f}
		res := run(t, props, core.Options{}, adv)
		if res.Faults() != f {
			t.Fatalf("f=%d: faults = %d", f, res.Faults())
		}
		if err := check.Consensus(props, res); err != nil {
			t.Errorf("f=%d: %v", f, err)
		}
		if got, want := res.MaxDecideRound(), sim.Round(f+1); got != want {
			t.Errorf("f=%d: max decide round = %d, want %d", f, got, want)
		}
		// With silent crashes the surviving coordinator p_{f+1} imposes its
		// own proposal.
		for id, v := range res.Decisions {
			if v != props[f] {
				t.Errorf("f=%d: p%d decided %d, want %d", f, id, int64(v), int64(props[f]))
			}
		}
	}
}

func TestDataDeliveredKillerLocksFirstValue(t *testing.T) {
	// If crashing coordinators deliver all their DATA (but no COMMIT), the
	// first coordinator's estimate is adopted by everyone and is the value
	// eventually decided — the "value locking" of line 4.
	const n = 5
	for f := 1; f <= 3; f++ {
		props := proposals(n)
		adv := adversary.CoordinatorKiller{F: f, DeliverAllData: true}
		res := run(t, props, core.Options{}, adv)
		if err := check.Consensus(props, res); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		for id, v := range res.Decisions {
			if v != props[0] {
				t.Errorf("f=%d: p%d decided %d, want locked value %d", f, id, int64(v), int64(props[0]))
			}
		}
		if got, want := res.MaxDecideRound(), sim.Round(f+1); got != want {
			t.Errorf("f=%d: max decide round = %d, want %d", f, got, want)
		}
	}
}

func TestCommitPrefixDecidersAreHighIDs(t *testing.T) {
	// p1 crashes after delivering DATA to everyone and COMMIT to a prefix of
	// the descending order (p5, p4): exactly the high-id processes p4, p5
	// decide in round 1; the rest decide in round 2 under p2. All decide p1's
	// value.
	props := proposals(5)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: 2},
	})
	res := run(t, props, core.Options{}, adv)
	if err := check.Consensus(props, res); err != nil {
		t.Fatal(err)
	}
	for _, id := range []sim.ProcID{4, 5} {
		if r := res.DecideRound[id]; r != 1 {
			t.Errorf("p%d decided at round %d, want 1", id, r)
		}
	}
	for _, id := range []sim.ProcID{2, 3} {
		if r := res.DecideRound[id]; r != 2 {
			t.Errorf("p%d decided at round %d, want 2", id, r)
		}
	}
	for id, v := range res.Decisions {
		if v != props[0] {
			t.Errorf("p%d decided %d, want %d", id, int64(v), int64(props[0]))
		}
	}
	// Decision at round 2 respects the f+1 bound (f=1).
	if err := check.RoundBound(res, check.BoundFPlus1); err != nil {
		t.Error(err)
	}
}

func TestCommitImpliesDataInExtendedModel(t *testing.T) {
	// A crash during the control step means the data step completed, so a
	// COMMIT receiver always has the coordinator's estimate: the decision can
	// never be a stale value. Exercise every prefix length.
	const n = 4
	for prefix := 0; prefix <= n-1; prefix++ {
		props := proposals(n)
		adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
			1: {Round: 1, DeliverAllData: true, CtrlPrefix: prefix},
		})
		res := run(t, props, core.Options{}, adv)
		if err := check.Consensus(props, res); err != nil {
			t.Errorf("prefix=%d: %v", prefix, err)
		}
		for id, v := range res.Decisions {
			if v != props[0] {
				t.Errorf("prefix=%d: p%d decided %d, want %d", prefix, id, int64(v), int64(props[0]))
			}
		}
	}
}

func TestBitAccountingFailureFree(t *testing.T) {
	// Theorem 2 best case: p1 sends one b-bit data message and one 1-bit
	// commit to each of the n-1 others: (n-1)(b+1) bits total.
	const n, b = 8, 64
	props := proposals(n)
	res := run(t, props, core.Options{Bits: b}, adversary.None{})
	want := core.BestCaseBits(n, b)
	if got := res.Counters.TotalBits(); got != want {
		t.Errorf("total bits = %d, want %d", got, want)
	}
	if res.Counters.DataMsgs != n-1 || res.Counters.CtrlMsgs != n-1 {
		t.Errorf("messages = %d data + %d ctrl, want %d each",
			res.Counters.DataMsgs, res.Counters.CtrlMsgs, n-1)
	}
}

func TestWorstCaseFormulas(t *testing.T) {
	// sum_{i=1..t+1} (n-i) computed directly vs closed form.
	for n := 2; n <= 20; n++ {
		for tt := 0; tt < n; tt++ {
			want := 0
			for i := 1; i <= tt+1; i++ {
				want += n - i
			}
			if got := core.WorstCaseDataMessages(n, tt); got != want {
				t.Errorf("WorstCaseDataMessages(%d,%d) = %d, want %d", n, tt, got, want)
			}
		}
	}
	if got, want := core.BestCaseBits(5, 8), 4*9; got != want {
		t.Errorf("BestCaseBits(5,8) = %d, want %d", got, want)
	}
	if got, want := core.WorstCaseBits(5, 2, 8), core.WorstCaseDataMessages(5, 2)*8+core.WorstCaseCommitMessages(5, 2); got != want {
		t.Errorf("WorstCaseBits = %d, want %d", got, want)
	}
}

func TestMeasuredCostNeverExceedsTheorem2Bound(t *testing.T) {
	// Under randomized adversaries the measured bit cost stays within the
	// worst-case bound of Theorem 2.
	const n, b = 8, 32
	tt := n - 1
	bound := core.WorstCaseBits(n, tt, b)
	for seed := int64(0); seed < 50; seed++ {
		props := proposals(n)
		adv := adversary.NewRandom(seed, 0.3, tt)
		res := run(t, props, core.Options{Bits: b}, adv)
		if err := check.Consensus(props, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Counters.TotalBits(); got > bound {
			t.Errorf("seed %d: bits %d exceed Theorem 2 bound %d", seed, got, bound)
		}
	}
}

func TestAscendingCommitOrderViolatesBound(t *testing.T) {
	// Ablation E10a: with the ascending commit order, p1 can crash while
	// delivering DATA to everyone and COMMIT to p2, p3 (but not p4). Then
	// p2, p3 decide and return in round 1; rounds 2 and 3 have returned
	// coordinators; p4 only decides when it becomes coordinator in round 4.
	// f = 1 but the decision happens at round 4 — the f+1 bound of Theorem 1
	// fails, demonstrating the descending order of line 5 is load-bearing.
	props := proposals(4)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: 2},
	})
	procs := core.NewSystem(props, core.Options{Order: core.OrderAscending})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: 6}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Uniform agreement still holds (everyone decides p1's value)...
	if err := check.Consensus(props, res); err != nil {
		t.Fatal(err)
	}
	// ...but the f+1 round bound does not.
	if err := check.RoundBound(res, check.BoundFPlus1); err == nil {
		t.Fatalf("ascending order unexpectedly met the f+1 bound (max decide round %d, f=%d)",
			res.MaxDecideRound(), res.Faults())
	}
	if r := res.DecideRound[4]; r != 4 {
		t.Errorf("p4 decided at round %d, want 4", r)
	}
}

func TestCommitAsDataViolatesUniformAgreement(t *testing.T) {
	// Ablation E10b: sending the COMMIT as an ordinary data message removes
	// the two-step structure; a crash can then deliver the COMMIT without
	// the estimate. p2 decides its own stale proposal while p3 later decides
	// p3's — uniform agreement fails.
	//
	// p1's data plan under CommitAsData (descending commit order) is:
	//   [est->p2, est->p3, commit->p3, commit->p2]
	// The mask delivers only the commit to p2.
	props := proposals(3)
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DataMask: []bool{false, false, false, true}},
	})
	procs := core.NewSystem(props, core.Options{CommitAsData: true})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: 6}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := check.Consensus(props, res); err == nil {
		t.Fatalf("commit-as-data unexpectedly kept uniform agreement: decisions %v", res.Decisions)
	}
	if v := res.Decisions[2]; v != props[1] {
		t.Errorf("p2 decided %d, want its stale proposal %d", int64(v), int64(props[1]))
	}
	if v := res.Decisions[3]; v != props[2] {
		t.Errorf("p3 decided %d, want its own proposal %d", int64(v), int64(props[2]))
	}
}

func TestViolatedNeverSetInFaithfulRuns(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		props := proposals(5)
		procs := core.NewSystem(props, core.Options{})
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended}, procs,
			adversary.NewRandom(seed, 0.25, 4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range procs {
			if p.(*core.Protocol).Violated() {
				t.Fatalf("seed %d: line 9 (cannot happen) reached on p%d", seed, p.ID())
			}
		}
	}
}

func TestSingleProcessDecidesAlone(t *testing.T) {
	props := []sim.Value{42}
	res := run(t, props, core.Options{}, adversary.None{})
	if v := res.Decisions[1]; v != 42 {
		t.Errorf("decided %d, want 42", int64(v))
	}
	if res.Counters.TotalMsgs() != 0 {
		t.Errorf("messages = %d, want 0", res.Counters.TotalMsgs())
	}
}

func TestCommitOrderDests(t *testing.T) {
	p := core.New(2, 5, 7, core.Options{})
	plan := p.Send(2)
	wantCtrl := []sim.ProcID{5, 4, 3}
	if len(plan.Control) != len(wantCtrl) {
		t.Fatalf("control = %v, want %v", plan.Control, wantCtrl)
	}
	for i, id := range wantCtrl {
		if plan.Control[i] != id {
			t.Errorf("control[%d] = %d, want %d", i, plan.Control[i], id)
		}
	}
	if len(plan.Data) != 3 {
		t.Errorf("data plan length = %d, want 3", len(plan.Data))
	}
	// Non-coordinator rounds send nothing.
	if !p.Send(1).IsEmpty() {
		t.Error("non-coordinator sent messages")
	}
}
