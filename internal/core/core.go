// Package core implements the paper's primary contribution: the
// rotating-coordinator uniform consensus algorithm of Figure 1 for the
// extended synchronous model (Cao, Raynal, Wang, Wu — ICPP 2006).
//
// The algorithm, for process p_i with proposal v_i:
//
//	est := v_i
//	round r = 1, 2, ...:
//	  if r == i:            // p_i is the coordinator of round r
//	    send DATA(est) to every p_j, j > i          (line 4, data step)
//	    send COMMIT to p_n, p_{n-1}, ..., p_{i+1}   (line 5, ordered control step)
//	    return est                                  (line 6: decide)
//	  if r < i:
//	    if DATA(v) received from p_r: est := v      (line 7)
//	    if COMMIT received from p_r:  return est    (line 8: decide)
//	  if r > i: cannot happen                       (line 9)
//
// Properties reproduced by the experiments in this repository: uniform
// consensus, decision in at most f+1 rounds (f = actual crashes), one round
// when p_1 does not crash, and optimality (Section 5's f+1 lower bound).
//
// A note on the control sending order (line 5). The published text renders
// the loop bounds of line 5 illegibly, but the termination proof (Lemma 3)
// concludes from "p_{f+1} received the COMMIT" that every process p_j with
// j >= f+1 received it; with the model's prefix-delivery rule this holds only
// if the COMMIT sequence is ordered by decreasing process id (p_n first).
// With the increasing order the f+1 bound is false: p_1 can crash while
// delivering DATA to everyone and COMMIT to p_2..p_{n-1} but not p_n, after
// which every round-2..n-1 coordinator has already decided and returned, and
// p_n only decides in round n with f=1. This package therefore uses the
// decreasing order, and ships the increasing order as an ablation
// (OrderAscending) whose bound violation is demonstrated by the exhaustive
// explorer (experiment E10).
package core

import (
	"fmt"

	"repro/internal/sim"
)

// CommitOrder selects the destination order of the control sending step.
type CommitOrder uint8

const (
	// OrderDescending is the faithful order: COMMIT to p_n, ..., p_{i+1}.
	// The prefix-delivery rule then guarantees that if p_j receives the
	// COMMIT, so does every p_k with k > j — the property Lemma 3 relies on.
	OrderDescending CommitOrder = iota
	// OrderAscending is the ablation order: COMMIT to p_{i+1}, ..., p_n.
	// Uniform agreement still holds, but the f+1 decision bound fails.
	OrderAscending
)

// Options tunes the protocol for ablation experiments. The zero value is the
// faithful algorithm of Figure 1.
type Options struct {
	// Order is the control-message destination order.
	Order CommitOrder
	// CommitAsData sends the COMMIT as ordinary one-bit data messages in the
	// data sending step instead of control messages, i.e. it removes the
	// extended model's second step entirely. Crash delivery then becomes
	// arbitrary-subset, which breaks uniform agreement (a process can receive
	// the COMMIT without the DATA and decide a stale estimate) — experiment
	// E10 exhibits the counterexample. This variant is also what the
	// classic model would force, making the run legal under sim.ModelClassic.
	CommitAsData bool
	// Bits is the proposal bit width b of Theorem 2 (default 64).
	Bits int
}

func (o Options) bits() int {
	if o.Bits <= 0 {
		return 64
	}
	return o.Bits
}

// commitTag is the payload of a COMMIT sent as a data message (ablation
// only). It costs one bit, like a genuine control message.
type commitTag struct{}

// Bits returns 1: a commit carries no data.
func (commitTag) Bits() int { return 1 }

// String renders the tag.
func (commitTag) String() string { return "commit" }

// Protocol is one process executing the algorithm of Figure 1. It implements
// sim.Process for the deterministic engine and is also reused by the
// goroutine runtime.
type Protocol struct {
	id   sim.ProcID
	n    int
	opts Options

	est      sim.Value
	decided  bool
	decision sim.Value
	halted   bool
	violated bool
}

// New returns the process p_id out of n with the given proposal.
func New(id sim.ProcID, n int, proposal sim.Value, opts Options) *Protocol {
	return &Protocol{id: id, n: n, opts: opts, est: proposal}
}

// NewSystem builds the n processes of one consensus instance, with
// proposals[i] the proposal of p_{i+1}.
func NewSystem(proposals []sim.Value, opts Options) []sim.Process {
	procs := make([]sim.Process, len(proposals))
	for i, v := range proposals {
		procs[i] = New(sim.ProcID(i+1), len(proposals), v, opts)
	}
	return procs
}

// ID implements sim.Process.
func (p *Protocol) ID() sim.ProcID { return p.id }

// Estimate returns the current estimate (exposed for tests and traces).
func (p *Protocol) Estimate() sim.Value { return p.est }

// Violated reports whether the "cannot happen" branch (line 9) was reached —
// no execution of the faithful algorithm may set this.
func (p *Protocol) Violated() bool { return p.violated }

// Send implements the send phase of round r (lines 4–5).
func (p *Protocol) Send(r sim.Round) sim.SendPlan {
	if sim.Round(p.id) != r {
		return sim.SendPlan{} // only the coordinator of r sends
	}
	var plan sim.SendPlan
	payload := sim.Est{V: p.est, B: p.opts.bits()}
	dataCap := p.n - int(p.id)
	if p.opts.CommitAsData {
		dataCap *= 2 // the commit messages ride in the data step too
	}
	plan.Data = make([]sim.Outgoing, 0, dataCap)
	for j := int(p.id) + 1; j <= p.n; j++ {
		plan.Data = append(plan.Data, sim.Outgoing{To: sim.ProcID(j), Payload: payload})
	}
	dests := p.commitDests()
	if p.opts.CommitAsData {
		for _, to := range dests {
			plan.Data = append(plan.Data, sim.Outgoing{To: to, Payload: commitTag{}})
		}
	} else {
		plan.Control = dests
	}
	return plan
}

// commitDests returns the ordered control destination sequence of line 5.
func (p *Protocol) commitDests() []sim.ProcID {
	if int(p.id) >= p.n {
		return nil
	}
	dests := make([]sim.ProcID, 0, p.n-int(p.id))
	if p.opts.Order == OrderAscending {
		for j := int(p.id) + 1; j <= p.n; j++ {
			dests = append(dests, sim.ProcID(j))
		}
		return dests
	}
	for j := p.n; j > int(p.id); j-- {
		dests = append(dests, sim.ProcID(j))
	}
	return dests
}

// Receive implements the receive and computation phases of round r
// (lines 6–9). The engine only calls it if the process survived the round's
// send phase, so reaching it as the coordinator means lines 4–5 completed
// and line 6 (decide) executes.
func (p *Protocol) Receive(r sim.Round, inbox []sim.Message) {
	switch {
	case sim.Round(p.id) == r:
		p.decide(p.est) // line 6
	case sim.Round(p.id) > r:
		coord := sim.ProcID(r)
		commit := false
		for _, m := range inbox {
			if m.From != coord {
				continue
			}
			switch pay := m.Payload.(type) {
			case sim.Est:
				p.est = pay.V // line 7
			case commitTag:
				commit = true
			default:
				if m.Kind == sim.Control {
					commit = true
				}
			}
		}
		if commit {
			p.decide(p.est) // line 8
		}
	default:
		p.violated = true // line 9: cannot happen
	}
}

// decide records the decision and halts the process (the "return" of
// Figure 1).
func (p *Protocol) decide(v sim.Value) {
	p.decided = true
	p.decision = v
	p.halted = true
}

// Decided implements sim.Process.
func (p *Protocol) Decided() (sim.Value, bool) { return p.decision, p.decided }

// Halted implements sim.Process.
func (p *Protocol) Halted() bool { return p.halted }

// String renders the process state for traces.
func (p *Protocol) String() string {
	state := "running"
	if p.decided {
		state = fmt.Sprintf("decided(%d)", int64(p.decision))
	}
	return fmt.Sprintf("crw p%d/%d est=%d %s", p.id, p.n, int64(p.est), state)
}

// WorstCaseDataMessages returns the paper's Theorem 2 upper bound on the
// number of data messages: the first t+1 coordinators each send all their
// data messages, i.e. sum_{i=1..t+1} (n-i) = (t+1)n - (t+1)(t+2)/2.
func WorstCaseDataMessages(n, t int) int {
	k := t + 1
	if k > n {
		k = n
	}
	return k*n - k*(k+1)/2
}

// WorstCaseCommitMessages returns the paper's Theorem 2 upper bound on the
// number of commit messages under the same scenario (every coordinator's
// full control sequence escapes).
func WorstCaseCommitMessages(n, t int) int {
	return WorstCaseDataMessages(n, t)
}

// BestCaseBits returns Theorem 2's best-case bit complexity: a single round
// coordinated by p_1, which sends one b-bit data message and one 1-bit commit
// to each of the n-1 other processes: (n-1)(b+1).
func BestCaseBits(n, b int) int { return (n - 1) * (b + 1) }

// WorstCaseBits returns Theorem 2's worst-case bit complexity upper bound:
// data messages cost b bits and commits one bit each.
func WorstCaseBits(n, t, b int) int {
	return WorstCaseDataMessages(n, t)*b + WorstCaseCommitMessages(n, t)
}
