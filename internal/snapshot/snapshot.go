// Package snapshot implements the Chandy–Lamport distributed snapshot
// algorithm (ACM TOCS 1985) — reference [6] of the paper and its canonical
// example of a synchronization message in fault-free distributed computing.
//
// The marker message plays exactly the role the paper ascribes to it: it
// tells the receiver to record its state (if it has not already) and it
// cleanly separates, on each FIFO channel, the messages sent before the
// sender's recording point from those sent after — a "synchronization point"
// from which consistent global information can be assembled. The paper's
// COMMIT message is the synchronous-agreement sibling of this idea, which is
// why this substrate is part of the reproduction.
//
// The implementation is generic over the application: any App can be wrapped
// by a Node. The package also ships the classic token-bank application whose
// conservation invariant ("no money is created or destroyed") is the
// textbook way to validate snapshot consistency, used by the tests and the
// snapshot example.
package snapshot

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/async"
)

// App is the application layer living on one node.
type App interface {
	// Init may send initial application messages via send.
	Init(send func(to async.NodeID, payload any))
	// Handle processes one application payload; it may send messages.
	Handle(from async.NodeID, payload any, send func(to async.NodeID, payload any))
	// State returns a copy of the current local state for recording.
	State() any
}

// Marker is the snapshot synchronization message.
type Marker struct {
	// Origin identifies the snapshot initiator (to distinguish concurrent
	// snapshots; this implementation runs one snapshot per engine run).
	Origin async.NodeID
}

// ChannelState is the recorded in-transit content of one channel.
type ChannelState struct {
	From     async.NodeID
	To       async.NodeID
	Payloads []any
}

// Collector gathers the pieces of one global snapshot as nodes complete.
type Collector struct {
	mu       sync.Mutex
	states   map[async.NodeID]any
	channels []ChannelState
	done     int
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{states: map[async.NodeID]any{}}
}

// recordNode stores a node's recorded local state.
func (c *Collector) recordNode(id async.NodeID, state any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[id] = state
}

// recordChannel stores one channel's recorded in-transit messages.
func (c *Collector) recordChannel(cs ChannelState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.channels = append(c.channels, cs)
}

// nodeDone marks one node's snapshot participation complete.
func (c *Collector) nodeDone() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done++
}

// Complete reports whether all n nodes finished recording.
func (c *Collector) Complete(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done == n
}

// States returns the recorded local states keyed by node.
func (c *Collector) States() map[async.NodeID]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[async.NodeID]any, len(c.states))
	for k, v := range c.states {
		out[k] = v
	}
	return out
}

// Channels returns the recorded channel states, sorted by (From, To).
func (c *Collector) Channels() []ChannelState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]ChannelState(nil), c.channels...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Node wraps an App with the Chandy–Lamport protocol. It implements
// async.Handler.
type Node struct {
	app       App
	collector *Collector
	initiator bool

	recorded  bool
	recording map[async.NodeID]bool // channels still being recorded (by sender)
	chanState map[async.NodeID][]any
	n         int
}

// NewNode wraps app; if initiator is true the node starts the snapshot in
// Init (after the app's own Init). All nodes of a run must share the
// collector.
func NewNode(app App, collector *Collector, initiator bool) *Node {
	return &Node{app: app, collector: collector, initiator: initiator}
}

// Init implements async.Handler.
func (nd *Node) Init(ctx *async.Context) {
	nd.n = ctx.N()
	nd.app.Init(func(to async.NodeID, payload any) { ctx.Send(to, payload) })
	if nd.initiator {
		nd.record(ctx)
	}
}

// record takes the local snapshot and emits markers on all outgoing
// channels; it starts recording every incoming channel (except that the
// initiator's trigger has no incoming marker channel to exclude).
func (nd *Node) record(ctx *async.Context) {
	if nd.recorded {
		return
	}
	nd.recorded = true
	nd.collector.recordNode(ctx.ID(), nd.app.State())
	nd.recording = map[async.NodeID]bool{}
	nd.chanState = map[async.NodeID][]any{}
	for i := 1; i <= nd.n; i++ {
		id := async.NodeID(i)
		if id != ctx.ID() {
			nd.recording[id] = true
		}
	}
	// The marker is sent atomically with the recording on every outgoing
	// channel — the synchronization point.
	ctx.Broadcast(Marker{Origin: ctx.ID()})
	nd.maybeFinish(ctx)
}

// maybeFinish completes the node's participation once every incoming channel
// has delivered its marker.
func (nd *Node) maybeFinish(ctx *async.Context) {
	if !nd.recorded {
		return
	}
	for _, still := range nd.recording {
		if still {
			return
		}
	}
	if nd.recording != nil {
		for from, msgs := range nd.chanState {
			nd.collector.recordChannel(ChannelState{From: from, To: ctx.ID(), Payloads: msgs})
		}
		nd.recording = nil
		nd.collector.nodeDone()
	}
}

// OnMessage implements async.Handler.
func (nd *Node) OnMessage(ctx *async.Context, m async.Message) {
	if _, ok := m.Payload.(Marker); ok {
		if !nd.recorded {
			// First marker: record now. The channel it arrived on is empty
			// in the snapshot (FIFO: everything before the marker was
			// delivered pre-recording).
			nd.record(ctx)
		}
		nd.recording[m.From] = false
		nd.maybeFinish(ctx)
		return
	}
	// Application message: if it arrived on a channel still being recorded,
	// it was in transit at the snapshot point.
	if nd.recorded && nd.recording != nil && nd.recording[m.From] {
		nd.chanState[m.From] = append(nd.chanState[m.From], m.Payload)
	}
	nd.app.Handle(m.From, m.Payload, func(to async.NodeID, payload any) { ctx.Send(to, payload) })
}

// String renders the node state.
func (nd *Node) String() string {
	return fmt.Sprintf("snapshot-node(recorded=%t)", nd.recorded)
}
