package snapshot_test

import (
	"testing"

	"repro/internal/async"
	"repro/internal/snapshot"
)

// buildBankSystem wires n bank nodes with a busy transfer plan and wraps
// them in snapshot nodes; node 1 initiates the snapshot.
func buildBankSystem(n int, balance int64, hops int) ([]async.Handler, *snapshot.Collector, int64) {
	collector := snapshot.NewCollector()
	handlers := make([]async.Handler, n)
	total := int64(0)
	for i := 1; i <= n; i++ {
		var plan []snapshot.PlannedTransfer
		for j := 1; j <= n; j++ {
			if j != i {
				plan = append(plan, snapshot.PlannedTransfer{
					To: async.NodeID(j), Amount: balance / int64(2*n), Hops: hops,
				})
			}
		}
		bank := snapshot.NewBank(async.NodeID(i), n, balance, plan)
		handlers[i-1] = snapshot.NewNode(bank, collector, i == 1)
		total += balance
	}
	return handlers, collector, total
}

func TestSnapshotConservesTokens(t *testing.T) {
	// The fundamental consistency check: recorded balances plus recorded
	// in-channel tokens equal the initial total, for every scheduling. Run
	// many times to exercise different goroutine interleavings.
	const n, balance, hops = 5, 1000, 6
	for iter := 0; iter < 100; iter++ {
		handlers, collector, total := buildBankSystem(n, balance, hops)
		eng, err := async.NewEngine(handlers)
		if err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !collector.Complete(n) {
			t.Fatalf("iter %d: snapshot incomplete", iter)
		}
		got := snapshot.TotalBalances(collector.States()) +
			snapshot.TotalInChannels(collector.Channels())
		if got != total {
			t.Fatalf("iter %d: snapshot total = %d, want %d (states %v, channels %v)",
				iter, got, total, collector.States(), collector.Channels())
		}
	}
}

func TestSnapshotRecordsAllNodes(t *testing.T) {
	const n = 4
	handlers, collector, _ := buildBankSystem(n, 400, 3)
	eng, err := async.NewEngine(handlers)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	states := collector.States()
	if len(states) != n {
		t.Fatalf("recorded %d node states, want %d", len(states), n)
	}
	for i := 1; i <= n; i++ {
		if _, ok := states[async.NodeID(i)]; !ok {
			t.Errorf("node %d state missing", i)
		}
	}
	// Every channel state belongs to a real directed channel, no duplicates.
	seen := map[[2]async.NodeID]bool{}
	for _, cs := range collector.Channels() {
		key := [2]async.NodeID{cs.From, cs.To}
		if seen[key] {
			t.Errorf("duplicate channel state %v", key)
		}
		seen[key] = true
		if cs.From == cs.To {
			t.Errorf("self-channel recorded: %v", key)
		}
	}
}

func TestSnapshotSingleNode(t *testing.T) {
	collector := snapshot.NewCollector()
	bank := snapshot.NewBank(1, 1, 42, nil)
	eng, err := async.NewEngine([]async.Handler{snapshot.NewNode(bank, collector, true)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !collector.Complete(1) {
		t.Fatal("single-node snapshot incomplete")
	}
	if got := snapshot.TotalBalances(collector.States()); got != 42 {
		t.Errorf("recorded balance = %d, want 42", got)
	}
}

func TestSnapshotIdleSystem(t *testing.T) {
	// With no application traffic the snapshot still completes and records
	// the initial balances with empty channels.
	const n = 3
	collector := snapshot.NewCollector()
	handlers := make([]async.Handler, n)
	for i := 1; i <= n; i++ {
		handlers[i-1] = snapshot.NewNode(snapshot.NewBank(async.NodeID(i), n, 100, nil), collector, i == 1)
	}
	eng, err := async.NewEngine(handlers)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !collector.Complete(n) {
		t.Fatal("snapshot incomplete")
	}
	if got := snapshot.TotalBalances(collector.States()); got != 300 {
		t.Errorf("total = %d, want 300", got)
	}
	if got := snapshot.TotalInChannels(collector.Channels()); got != 0 {
		t.Errorf("in-channel tokens = %d, want 0", got)
	}
}

func TestMarkerCount(t *testing.T) {
	// Chandy–Lamport sends exactly one marker per directed channel:
	// n(n-1) marker messages in a complete graph.
	const n = 4
	handlers, collector, _ := buildBankSystem(n, 0, 0) // no app traffic
	eng, err := async.NewEngine(handlers)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !collector.Complete(n) {
		t.Fatal("snapshot incomplete")
	}
	if got, want := eng.MessagesSent(), n*(n-1); got != want {
		t.Errorf("messages sent = %d, want %d (markers only)", got, want)
	}
}
