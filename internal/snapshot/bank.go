package snapshot

import "repro/internal/async"

// Transfer is the token-bank application message: an amount of tokens moving
// between nodes, with a hop budget that guarantees quiescence.
type Transfer struct {
	Amount int64
	Hops   int
}

// Bank is the classic application used to validate snapshots: nodes hold
// token balances and pass tokens around; a consistent snapshot must conserve
// the total (recorded balances plus tokens in recorded channel states equal
// the initial total).
type Bank struct {
	ID      async.NodeID
	N       int
	Balance int64
	// Plan is the initial outgoing transfers (destination, amount, hops).
	Plan []PlannedTransfer
}

// PlannedTransfer is one scripted initial transfer.
type PlannedTransfer struct {
	To     async.NodeID
	Amount int64
	Hops   int
}

// NewBank returns a bank node with the given starting balance and transfer
// plan.
func NewBank(id async.NodeID, n int, balance int64, plan []PlannedTransfer) *Bank {
	return &Bank{ID: id, N: n, Balance: balance, Plan: plan}
}

// Init implements App: it issues the planned transfers.
func (b *Bank) Init(send func(to async.NodeID, payload any)) {
	for _, p := range b.Plan {
		if p.Amount <= 0 || p.Amount > b.Balance || p.To == b.ID {
			continue
		}
		b.Balance -= p.Amount
		send(p.To, Transfer{Amount: p.Amount, Hops: p.Hops})
	}
}

// next returns the ring successor of this node.
func (b *Bank) next() async.NodeID {
	return async.NodeID(int(b.ID)%b.N + 1)
}

// Handle implements App: receive tokens, and forward half of them along the
// ring while the hop budget lasts.
func (b *Bank) Handle(_ async.NodeID, payload any, send func(to async.NodeID, payload any)) {
	t, ok := payload.(Transfer)
	if !ok {
		return
	}
	b.Balance += t.Amount
	if t.Hops > 0 && t.Amount >= 2 && b.N > 1 {
		half := t.Amount / 2
		b.Balance -= half
		send(b.next(), Transfer{Amount: half, Hops: t.Hops - 1})
	}
}

// State implements App: the recorded state is the balance.
func (b *Bank) State() any { return b.Balance }

// TotalInChannels sums the token amounts captured in recorded channel
// states.
func TotalInChannels(channels []ChannelState) int64 {
	var sum int64
	for _, cs := range channels {
		for _, p := range cs.Payloads {
			if t, ok := p.(Transfer); ok {
				sum += t.Amount
			}
		}
	}
	return sum
}

// TotalBalances sums recorded balances.
func TotalBalances(states map[async.NodeID]any) int64 {
	var sum int64
	for _, s := range states {
		if b, ok := s.(int64); ok {
			sum += b
		}
	}
	return sum
}
