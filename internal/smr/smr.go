// Package smr builds the application the paper's introduction motivates:
// fault-tolerant state machine replication. A replicated log commits one
// command per slot, each slot decided by an independent uniform-consensus
// instance; crashes persist across slots (a replica that dies during slot s
// is dead for every later slot).
//
// Running the log over the paper's extended-model algorithm commits a slot
// per synchronous round in the common failure-free case; over the classic
// early-stopping baseline every slot costs at least two rounds. The smrlog
// example and BenchmarkSMR quantify the resulting throughput gap — the
// system-level payoff of the extended model's f+1 bound.
package smr

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/consensus/earlystop"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Protocol selects the per-slot consensus algorithm.
type Protocol string

// Supported per-slot protocols.
const (
	// ProtocolCRW uses the paper's extended-model algorithm.
	ProtocolCRW Protocol = "crw"
	// ProtocolEarlyStop uses the classic early-stopping baseline.
	ProtocolEarlyStop Protocol = "earlystop"
)

// Config configures a replicated log run.
type Config struct {
	// N is the number of replicas.
	N int
	// Slots is the number of log slots to commit.
	Slots int
	// Protocol selects the consensus algorithm (default ProtocolCRW).
	Protocol Protocol
	// Bits is the command bit width (default 64).
	Bits int
	// CrashDuringSlot schedules replica crashes: replica -> slot index
	// (1-based) during which it crashes at the start of the instance.
	CrashDuringSlot map[sim.ProcID]int
	// RotateLeader renumbers replicas per slot so the lowest-id live replica
	// plays the p1 role of Figure 1. Without it the algorithm's static
	// p1-first rotation wastes one round per dead coordinator on every slot;
	// with it the log returns to one round per commit after a crash. This is
	// a beyond-the-paper engineering optimization: the renumbering is a pure
	// permutation of process identities, so Theorem 1's guarantees carry
	// over unchanged (the proofs never use the numeric value of an id, only
	// the total order).
	RotateLeader bool
}

// Result summarizes a replicated log run.
type Result struct {
	// Logs is the committed log of each replica (crashed replicas hold the
	// prefix they decided before dying).
	Logs map[sim.ProcID][]sim.Value
	// RoundsPerSlot is the synchronous rounds each slot's instance took.
	RoundsPerSlot []sim.Round
	// TotalRounds is the end-to-end round count.
	TotalRounds int
	// Counters accumulates communication over all slots.
	Counters metrics.Counters
	// Ledger accumulates the per-slot delivery ledgers, so the message
	// conservation law holds end-to-end over the whole log: every message any
	// slot's instance transmitted is in exactly one sink, even as crashes
	// persist across slot boundaries.
	Ledger metrics.Ledger
	// Crashed maps dead replicas to the slot they died in.
	Crashed map[sim.ProcID]int
	// EnginesBuilt and EngineReuses account for the run's harness cache:
	// every slot executes on the same reused engine, so a cfg.Slots-slot log
	// builds one engine and reuses it cfg.Slots-1 times. (The seed
	// constructed a fresh sim.Engine per slot — pure waste once every engine
	// became Reusable.)
	EnginesBuilt int
	// EngineReuses counts slots served by the already-built engine.
	EngineReuses int
}

// RoundsPerCommit returns the throughput metric: total rounds divided by
// committed slots.
func (r *Result) RoundsPerCommit() float64 {
	if len(r.RoundsPerSlot) == 0 {
		return 0
	}
	return float64(r.TotalRounds) / float64(len(r.RoundsPerSlot))
}

// CommandIDBits is the width of the replica-id field in a Command encoding:
// replica ids occupy the low 20 bits, slots the bits above. The split keeps
// the encoding collision-free for up to 2^20-1 replicas and 2^42 slots —
// the scale track's n=4096 sits far inside the id field, and sim.NoValue
// (-1<<62) can never be produced.
const CommandIDBits = 20

// maxCommandSlot bounds the slot field so the encoding stays positive.
const maxCommandSlot = 1<<(62-CommandIDBits) - 1

// Command returns the canonical command value replica id proposes for a
// slot: a collision-free encoding of (slot, replica) with the replica id in
// the low CommandIDBits bits. Distinct (slot, id) pairs always map to
// distinct values — the earlier slot*1000+id encoding aliased
// Command(s, 1000) with Command(s+1, 0) once replica ids reached 1000.
// Out-of-range arguments are programming errors and panic.
func Command(slot int, id sim.ProcID) sim.Value {
	if id < 0 || int64(id) >= 1<<CommandIDBits {
		panic(fmt.Sprintf("smr: replica id %d outside the %d-bit command id field", id, CommandIDBits))
	}
	if slot < 0 || int64(slot) > maxCommandSlot {
		panic(fmt.Sprintf("smr: slot %d outside the command slot field (max %d)", slot, int64(maxCommandSlot)))
	}
	return sim.Value(int64(slot)<<CommandIDBits | int64(id))
}

// slotAdversary kills replicas scheduled for this slot and keeps previously
// dead replicas dead (they crash at the start of the instance sending
// nothing — indistinguishable, within one instance, from having crashed
// earlier). perm maps the instance's logical process ids to physical replica
// ids (identity without leader rotation).
type slotAdversary struct {
	dead    map[sim.ProcID]bool
	killNow map[sim.ProcID]bool
	perm    []sim.ProcID
}

func (a *slotAdversary) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	phys := a.perm[p-1]
	if r == 1 && (a.dead[phys] || a.killNow[phys]) {
		return true, sim.NoDelivery(plan)
	}
	return false, sim.CrashOutcome{}
}

// permutation orders the physical replicas for one slot: identity normally;
// with leader rotation, live replicas first (in id order) and dead ones
// last, so a live replica holds the p1 role.
func permutation(n int, dead map[sim.ProcID]bool, rotate bool) []sim.ProcID {
	perm := make([]sim.ProcID, 0, n)
	if !rotate {
		for id := 1; id <= n; id++ {
			perm = append(perm, sim.ProcID(id))
		}
		return perm
	}
	for id := 1; id <= n; id++ {
		if !dead[sim.ProcID(id)] {
			perm = append(perm, sim.ProcID(id))
		}
	}
	for id := 1; id <= n; id++ {
		if dead[sim.ProcID(id)] {
			perm = append(perm, sim.ProcID(id))
		}
	}
	return perm
}

// Run executes the replicated log and validates per-slot agreement. Every
// slot runs on one engine drawn from a per-run harness.Cache — the engines
// are all Reusable, so the log pays one engine construction for cfg.Slots
// instances instead of one per slot (the seed's fresh sim.NewEngine per slot
// bypassed the reuse path entirely).
func Run(cfg Config) (*Result, error) {
	if cfg.N < 1 {
		return nil, errors.New("smr: need at least one replica")
	}
	if cfg.Slots < 1 {
		return nil, errors.New("smr: need at least one slot")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolCRW
	}
	if cfg.Bits <= 0 {
		cfg.Bits = 64
	}
	res := &Result{
		Logs:    map[sim.ProcID][]sim.Value{},
		Crashed: map[sim.ProcID]int{},
	}
	dead := map[sim.ProcID]bool{}
	cache := harness.NewCache()
	defer cache.Close()

	for slot := 1; slot <= cfg.Slots; slot++ {
		killNow := map[sim.ProcID]bool{}
		for id, s := range cfg.CrashDuringSlot {
			if s == slot && !dead[id] {
				killNow[id] = true
			}
		}
		if len(dead)+len(killNow) >= cfg.N {
			return res, fmt.Errorf("smr: all replicas dead by slot %d", slot)
		}

		perm := permutation(cfg.N, dead, cfg.RotateLeader)
		proposals := make([]sim.Value, cfg.N)
		for i := range proposals {
			proposals[i] = Command(slot, perm[i])
		}
		procs, model, horizon := buildInstance(cfg, proposals)
		adv := &slotAdversary{dead: dead, killNow: killNow, perm: perm}
		eng, err := cache.Get(harness.KindDeterministic)
		if err != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, err)
		}
		out, err := eng.Run(harness.Job{Model: model, Horizon: horizon, Procs: procs, Adv: adv})
		if err != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, err)
		}
		// The harness adapter audited the budget-free laws (conservation,
		// ledger/counter consistency); the slot's crash budget is log-level
		// knowledge the engine never sees, so its law is audited here: exactly
		// the replicas dead or dying this slot, and nothing omissive.
		if aerr := laws.AuditBudget(out, laws.Budget{Crashes: len(dead) + len(killNow), Omissive: 0}); aerr != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, aerr)
		}

		committed, err := agreedValue(out)
		if err != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, err)
		}
		for id := range out.Decisions {
			res.Logs[perm[id-1]] = append(res.Logs[perm[id-1]], committed)
		}
		res.RoundsPerSlot = append(res.RoundsPerSlot, out.Rounds)
		res.TotalRounds += int(out.Rounds)
		res.Counters.Merge(out.Counters)
		res.Ledger.Merge(out.Ledger)

		for id := range killNow {
			dead[id] = true
			res.Crashed[id] = slot
		}
	}
	stats := cache.Stats()
	res.EnginesBuilt, res.EngineReuses = stats.Built, stats.ReuseHits
	return res, nil
}

// agreedValue extracts the single agreed decision of one slot's instance, or
// an error on divergence or an undecided instance.
func agreedValue(out *sim.Result) (sim.Value, error) {
	var committed sim.Value
	first := true
	for _, v := range out.Decisions {
		if first {
			committed = v
			first = false
		} else if v != committed {
			return 0, fmt.Errorf("divergent decisions %v", out.Decisions)
		}
	}
	if first {
		return 0, errors.New("nobody decided")
	}
	return committed, nil
}

// buildInstance constructs one slot's consensus instance.
func buildInstance(cfg Config, proposals []sim.Value) ([]sim.Process, sim.Model, sim.Round) {
	switch cfg.Protocol {
	case ProtocolEarlyStop:
		t := cfg.N - 1
		return earlystop.NewSystem(proposals, t, cfg.Bits), sim.ModelClassic, sim.Round(t + 2)
	default:
		return core.NewSystem(proposals, core.Options{Bits: cfg.Bits}),
			sim.ModelExtended, sim.Round(cfg.N + 2)
	}
}

// Validate checks cross-replica log consistency: every pair of logs agrees
// on their common prefix (a dead replica's log is a prefix of the
// survivors'). The reference log is chosen deterministically — the longest
// log of the lowest replica id, so equal-length divergent logs produce the
// same error on every run instead of depending on map iteration order — and
// every log, including other logs of the reference's length, is compared
// element by element against it. A log longer than the reference is
// impossible by construction but rejected explicitly rather than trusted
// (the seed indexed ref[i] unchecked, which would have panicked there).
func Validate(res *Result) error {
	ids := make([]sim.ProcID, 0, len(res.Logs))
	for id := range res.Logs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var refID sim.ProcID
	var ref []sim.Value
	for _, id := range ids {
		if log := res.Logs[id]; len(log) > len(ref) {
			refID, ref = id, log
		}
	}
	for _, id := range ids {
		log := res.Logs[id]
		if len(log) > len(ref) {
			return fmt.Errorf("smr: replica %d holds %d slots, more than the longest log (%d)",
				id, len(log), len(ref))
		}
		for i, v := range log {
			if ref[i] != v {
				return fmt.Errorf("smr: replicas %d and %d diverge at slot %d: %d vs %d",
					id, refID, i+1, int64(v), int64(ref[i]))
			}
		}
	}
	return nil
}
