package smr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// permCase is a randomized permutation input: quick.Value generates the
// system size, the dead set, and the rotation flag.
type permCase struct {
	n      int
	dead   map[sim.ProcID]bool
	rotate bool
}

// Generate implements quick.Generator.
func (permCase) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(64)
	dead := map[sim.ProcID]bool{}
	for id := 1; id <= n; id++ {
		if r.Intn(3) == 0 {
			dead[sim.ProcID(id)] = true
		}
	}
	return reflect.ValueOf(permCase{n: n, dead: dead, rotate: r.Intn(2) == 0})
}

// TestPermutationProperties pins the three contract properties of the
// per-slot replica ordering: the result is always a permutation of 1..n,
// live replicas precede dead ones under rotation, and without rotation the
// ordering is the identity regardless of the dead set.
func TestPermutationProperties(t *testing.T) {
	prop := func(c permCase) bool {
		perm := permutation(c.n, c.dead, c.rotate)
		if len(perm) != c.n {
			t.Logf("n=%d: permutation has length %d", c.n, len(perm))
			return false
		}
		seen := make(map[sim.ProcID]bool, c.n)
		for _, id := range perm {
			if id < 1 || int(id) > c.n || seen[id] {
				t.Logf("n=%d: %v is not a permutation of 1..n", c.n, perm)
				return false
			}
			seen[id] = true
		}
		if !c.rotate {
			for i, id := range perm {
				if id != sim.ProcID(i+1) {
					t.Logf("n=%d rotate=false: %v is not the identity", c.n, perm)
					return false
				}
			}
			return true
		}
		// Under rotation every live replica precedes every dead one.
		seenDead := false
		for _, id := range perm {
			if c.dead[id] {
				seenDead = true
			} else if seenDead {
				t.Logf("n=%d dead=%v: live replica %d follows a dead one in %v", c.n, c.dead, id, perm)
				return false
			}
		}
		// And both groups stay in ascending id order (determinism).
		for i := 1; i < len(perm); i++ {
			if c.dead[perm[i-1]] == c.dead[perm[i]] && perm[i-1] >= perm[i] {
				t.Logf("n=%d: ids out of order within a liveness group: %v", c.n, perm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
