package smr_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/smr"
)

func TestFailureFreeOneRoundPerSlot(t *testing.T) {
	res, err := smr.Run(smr.Config{N: 5, Slots: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.TotalRounds != 20 {
		t.Errorf("total rounds = %d, want 20 (one per slot)", res.TotalRounds)
	}
	if got := res.RoundsPerCommit(); got != 1 {
		t.Errorf("rounds/commit = %g, want 1", got)
	}
	// Every replica committed every slot, and slot s holds p1's command.
	for id, log := range res.Logs {
		if len(log) != 20 {
			t.Errorf("replica %d log length %d, want 20", id, len(log))
		}
		for i, v := range log {
			if want := smr.Command(i+1, 1); v != want {
				t.Errorf("replica %d slot %d = %d, want %d", id, i+1, int64(v), int64(want))
			}
		}
	}
}

func TestEarlyStopCostsTwoRoundsPerSlot(t *testing.T) {
	res, err := smr.Run(smr.Config{N: 5, Slots: 10, Protocol: smr.ProtocolEarlyStop})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(res); err != nil {
		t.Fatal(err)
	}
	if got := res.RoundsPerCommit(); got != 2 {
		t.Errorf("rounds/commit = %g, want 2 (classic floor)", got)
	}
}

func TestCrashMidLogKeepsConsistency(t *testing.T) {
	// p1 dies during slot 3: slots 1–2 commit its commands in one round;
	// slot 3 onwards p2 leads, costing one extra (wasted) round per slot.
	res, err := smr.Run(smr.Config{N: 4, Slots: 6,
		CrashDuringSlot: map[sim.ProcID]int{1: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(res); err != nil {
		t.Fatal(err)
	}
	if res.Crashed[1] != 3 {
		t.Errorf("crash slot = %d, want 3", res.Crashed[1])
	}
	// p1's log is the 2-slot prefix.
	if got := len(res.Logs[1]); got != 2 {
		t.Errorf("dead replica log length = %d, want 2", got)
	}
	for _, id := range []sim.ProcID{2, 3, 4} {
		if got := len(res.Logs[id]); got != 6 {
			t.Errorf("replica %d log length = %d, want 6", id, got)
		}
	}
	// Slots 1–2 committed p1's command, slots 3–6 p2's.
	for i, want := range []sim.Value{
		smr.Command(1, 1), smr.Command(2, 1),
		smr.Command(3, 2), smr.Command(4, 2), smr.Command(5, 2), smr.Command(6, 2),
	} {
		if got := res.Logs[2][i]; got != want {
			t.Errorf("slot %d = %d, want %d", i+1, int64(got), int64(want))
		}
	}
	// Rounds: 1+1 (slots 1,2) + 4×2 (dead p1 wastes round 1) = 10.
	if res.TotalRounds != 10 {
		t.Errorf("total rounds = %d, want 10", res.TotalRounds)
	}
}

func TestCascadingCrashes(t *testing.T) {
	res, err := smr.Run(smr.Config{N: 5, Slots: 8,
		CrashDuringSlot: map[sim.ProcID]int{1: 2, 2: 4, 3: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Crashed) != 3 {
		t.Errorf("crashed = %v, want 3 replicas", res.Crashed)
	}
	// Survivors committed all 8 slots.
	for _, id := range []sim.ProcID{4, 5} {
		if got := len(res.Logs[id]); got != 8 {
			t.Errorf("replica %d log length = %d, want 8", id, got)
		}
	}
}

func TestAllReplicasDeadFails(t *testing.T) {
	_, err := smr.Run(smr.Config{N: 2, Slots: 3,
		CrashDuringSlot: map[sim.ProcID]int{1: 1, 2: 1}})
	if err == nil {
		t.Fatal("accepted a run with all replicas dead")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := smr.Run(smr.Config{N: 0, Slots: 1}); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := smr.Run(smr.Config{N: 3, Slots: 0}); err == nil {
		t.Error("accepted Slots=0")
	}
}

func TestThroughputAdvantage(t *testing.T) {
	// The system-level payoff: over many slots the extended model commits
	// twice as fast as the classic baseline in the failure-free case.
	crw, err := smr.Run(smr.Config{N: 8, Slots: 50})
	if err != nil {
		t.Fatal(err)
	}
	es, err := smr.Run(smr.Config{N: 8, Slots: 50, Protocol: smr.ProtocolEarlyStop})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := es.RoundsPerCommit() / crw.RoundsPerCommit(); ratio != 2 {
		t.Errorf("classic/extended rounds-per-commit ratio = %g, want 2", ratio)
	}
}

func TestRotateLeaderRestoresThroughput(t *testing.T) {
	// Without rotation, p1's death costs one wasted round on every later
	// slot; with leader rotation the live lowest-id replica takes the p1
	// role and the log returns to one round per commit immediately.
	static, err := smr.Run(smr.Config{N: 4, Slots: 10,
		CrashDuringSlot: map[sim.ProcID]int{1: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := smr.Run(smr.Config{N: 4, Slots: 10, RotateLeader: true,
		CrashDuringSlot: map[sim.ProcID]int{1: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(rotated); err != nil {
		t.Fatal(err)
	}
	// Static: slot 1 = 1 round, slots 2..10 = 2 rounds each -> 19.
	if static.TotalRounds != 19 {
		t.Errorf("static rounds = %d, want 19", static.TotalRounds)
	}
	// Rotated: slot 1 = 1, slot 2 = 2 (crash happens mid-slot), 3..10 = 1 -> 11.
	if rotated.TotalRounds != 11 {
		t.Errorf("rotated rounds = %d, want 11", rotated.TotalRounds)
	}
	// From slot 3 on the committed commands are p2's.
	for i := 2; i < 10; i++ {
		if got, want := rotated.Logs[2][i], smr.Command(i+1, 2); got != want {
			t.Errorf("slot %d = %d, want %d", i+1, int64(got), int64(want))
		}
	}
}

func TestRotateLeaderUnderCascadingCrashes(t *testing.T) {
	res, err := smr.Run(smr.Config{N: 5, Slots: 12, RotateLeader: true,
		CrashDuringSlot: map[sim.ProcID]int{1: 2, 2: 5, 3: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := smr.Validate(res); err != nil {
		t.Fatal(err)
	}
	// Steady-state slots commit in one round despite three dead replicas.
	last := res.RoundsPerSlot[len(res.RoundsPerSlot)-1]
	if last != 1 {
		t.Errorf("final slot took %d rounds, want 1 under rotation", last)
	}
	for _, id := range []sim.ProcID{4, 5} {
		if got := len(res.Logs[id]); got != 12 {
			t.Errorf("replica %d log length = %d, want 12", id, got)
		}
	}
}

// TestCrossSlotConservation pins the conservation identity on the aggregated
// log-level ledger: with crashes persisting across slots (a replica that dies
// in slot s is dead for every later instance), every message any slot
// transmitted must still land in exactly one sink — crashes at slot
// boundaries must not leak messages from the books.
func TestCrossSlotConservation(t *testing.T) {
	configs := []smr.Config{
		{N: 5, Slots: 6},
		{N: 5, Slots: 6, CrashDuringSlot: map[sim.ProcID]int{1: 2, 3: 4}},
		{N: 5, Slots: 6, Protocol: smr.ProtocolEarlyStop, CrashDuringSlot: map[sim.ProcID]int{2: 1}},
		{N: 6, Slots: 8, RotateLeader: true, CrashDuringSlot: map[sim.ProcID]int{1: 1, 2: 3, 3: 5}},
	}
	for _, cfg := range configs {
		res, err := smr.Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		l, c := &res.Ledger, &res.Counters
		if got := l.SinkData(); got != c.DataMsgs {
			t.Errorf("%+v: %d data messages transmitted, sinks account for %d (%s)",
				cfg, c.DataMsgs, got, l.String())
		}
		if got := l.SinkCtrl(); got != c.CtrlMsgs {
			t.Errorf("%+v: %d control messages transmitted, sinks account for %d (%s)",
				cfg, c.CtrlMsgs, got, l.String())
		}
		// Crash-model log: nothing may land in the omission or late sinks.
		if l.RecvOmitData+l.RecvOmitCtrl+l.LateData+l.LateCtrl != 0 {
			t.Errorf("%+v: omission/late sinks non-zero in the crash model: %s", cfg, l.String())
		}
	}
}
