package smr_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/smr"
)

// A replicated log over the paper's algorithm commits one slot per
// synchronous round while the leader is healthy; with leader rotation it
// returns to that rate immediately after a crash.
func ExampleRun() {
	res, err := smr.Run(smr.Config{
		N:            4,
		Slots:        6,
		RotateLeader: true,
		CrashDuringSlot: map[sim.ProcID]int{
			1: 3, // the initial leader dies while committing slot 3
		},
	})
	if err != nil {
		panic(err)
	}
	if err := smr.Validate(res); err != nil {
		panic(err)
	}
	fmt.Println("total rounds:", res.TotalRounds)
	fmt.Printf("rounds/commit: %.2f\n", res.RoundsPerCommit())
	fmt.Println("survivor log length:", len(res.Logs[2]))
	// Output:
	// total rounds: 7
	// rounds/commit: 1.17
	// survivor log length: 6
}
