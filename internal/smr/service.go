package smr

// service.go is the long-running replicated-log service: consensus as a
// service rather than as one-shot runs. Serve drives *pipelined* consensus
// instances over a simulated service clock — a new slot launches every round
// duration while earlier slots are still completing, which is how a real
// replicated log overlaps instance k+1's first round with instance k's
// second — fed by a workload generator (internal/workload), executing each
// instance on an engine drawn from a per-run harness.Cache (one engine per
// service lifetime, every slot a reuse).
//
// The composition model: each slot's instance is executed atomically on the
// engine and priced by its measured SimTime (timed engines) or its round
// count (round engines); the service clock places instance starts
// roundDur apart and commits at start + instance duration. Crash times are
// quantized to slot launches — a replica whose crash time has passed is dead
// for every instance launched afterwards (it crashes at round 1 having sent
// nothing, indistinguishable within an instance from having died earlier).
//
// Client-observed commit latency is commit(slot) - arrival(command), and
// leader recovery is the service's headline fault metric: the simulated time
// from a leader crash to the earliest commit of any instance launched at or
// after it — one round under leader rotation, two without (the dead
// coordinator wastes the first round of every subsequent instance).

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/timed"
	"repro/internal/workload"
)

// OmitOptions injects deterministic omission faults into the command
// stream: each faulty replica drops its entire send plan with SendProb and
// blocks each inbound sender with RecvProb, per (slot, replica, round),
// from a pure SplitMix64 hash — replays are bit-identical per seed and
// independent of sampling order.
type OmitOptions struct {
	// Procs are the omission-faulty replicas (physical ids).
	Procs []sim.ProcID
	// SendProb is the per-round probability a faulty replica's whole send
	// plan is dropped.
	SendProb float64
	// RecvProb is the per-(round, sender) probability a faulty replica
	// misses that sender's messages.
	RecvProb float64
	// Seed selects the fault sample.
	Seed int64
}

// ServeOptions configures a replicated-log service run.
type ServeOptions struct {
	// N is the number of replicas.
	N int
	// Protocol selects the per-slot consensus algorithm (default ProtocolCRW).
	Protocol Protocol
	// Bits is the command bit width (default 64).
	Bits int
	// RotateLeader renumbers replicas per slot so a live replica holds the
	// p1 role (see Config.RotateLeader).
	RotateLeader bool
	// Engine selects the execution engine (default harness.KindTimed).
	Engine harness.Kind
	// Latency prices messages on a timed engine; nil selects the engine
	// default. Requires the timed capability. A timed.Jitter model is
	// re-seeded per slot (hashing slot into the seed) so timing faults vary
	// across the stream instead of repeating one per-round pattern.
	Latency timed.LatencyModel
	// Arrivals is the open-loop command source. Exactly one of Arrivals and
	// Clients must be set.
	Arrivals *workload.Open
	// Clients is the closed-loop client population: each client submits one
	// command, waits for its commit, thinks, and submits the next.
	Clients *workload.Closed
	// MaxCommands stops the service once this many commands committed
	// (the final batch may overshoot). At least one of MaxCommands,
	// Duration and MaxSlots must bound the run.
	MaxCommands int
	// Duration stops the service at the first slot that would launch after
	// this simulated time.
	Duration float64
	// MaxSlots bounds the number of slots.
	MaxSlots int
	// BatchLimit caps the commands committed per slot (0 = unbounded).
	BatchLimit int
	// NoPipeline launches each slot only after the previous one committed,
	// for methodology comparisons; the default overlaps instances one round
	// apart.
	NoPipeline bool
	// CrashAt schedules replica crashes: replica id -> simulated time. The
	// crash takes effect at the first slot launched at or after that time.
	CrashAt map[sim.ProcID]float64
	// Omit injects omission faults mid-stream; nil injects none.
	Omit *OmitOptions
	// Telemetry, when non-nil, records one slot span per committed slot on
	// the service track ([launch, commit], count = batch size), per-slot
	// rounds/batch-size/throughput series, and the commit latency of every
	// command into the recorder's histogram. Spans are on the service clock,
	// not the per-instance engine clock, so a whole stream reads as one
	// timeline. A nil recorder costs nothing.
	Telemetry *telemetry.Recorder
}

// Recovery records one leader crash and the service's recovery from it.
type Recovery struct {
	// Replica is the crashed leader (the replica holding the p1 role when
	// it died).
	Replica sim.ProcID
	// CrashTime is the scheduled crash time.
	CrashTime float64
	// Commit is the earliest commit time among instances launched at or
	// after the crash.
	Commit float64
}

// Duration returns the recovery time: Commit - CrashTime.
func (r Recovery) Duration() float64 { return r.Commit - r.CrashTime }

// LatencyStats summarizes the client-observed commit-latency distribution
// (nearest-rank percentiles over all committed commands).
type LatencyStats struct {
	P50, P99, P999 float64
	Mean, Max      float64
}

// ServeResult is the outcome of a service run.
type ServeResult struct {
	// Commands is the number of committed commands.
	Commands int
	// Slots is the number of committed log slots.
	Slots int
	// TotalRounds sums the rounds of every slot's instance.
	TotalRounds int
	// RoundsHist maps instance round counts to slot counts.
	RoundsHist map[int]int
	// LastCommit is the simulated time of the final commit.
	LastCommit float64
	// Latency is the commit-latency distribution.
	Latency LatencyStats
	// Recoveries lists every leader crash with its recovery time.
	Recoveries []Recovery
	// Crashed maps dead replicas to their scheduled crash time.
	Crashed map[sim.ProcID]float64
	// CrashSlot maps dead replicas to the first slot they were dead for.
	CrashSlot map[sim.ProcID]int
	// Omissive maps omission-faulty replicas to their omissive-round count
	// summed over slots.
	Omissive map[sim.ProcID]int
	// Counters and Ledger aggregate communication over all slots; the
	// cross-slot conservation identity is checked before Serve returns.
	Counters metrics.Counters
	Ledger   metrics.Ledger
	// EnginesBuilt / EngineReuses account the per-run engine cache (one
	// build, Slots-1 reuses).
	EnginesBuilt int
	EngineReuses int
}

// PerHour returns the sustained throughput in commands per simulated hour
// (3600 time units of the run's latency model).
func (r *ServeResult) PerHour() float64 {
	if r.LastCommit <= 0 {
		return 0
	}
	return float64(r.Commands) / r.LastCommit * 3600
}

// RoundsPerCommit returns total rounds over committed slots.
func (r *ServeResult) RoundsPerCommit() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.TotalRounds) / float64(r.Slots)
}

// svcOmitter implements sim.Omitter over physical replica ids for one slot,
// sampling from pure per-(slot, replica, round) hashes.
type svcOmitter struct {
	opt    *OmitOptions
	faulty []bool // indexed by physical id - 1
	slot   int
	perm   []sim.ProcID
	n      int
}

// u01 hashes one (slot, phys, round, stream) identity into [0, 1).
func (o *svcOmitter) u01(phys sim.ProcID, r sim.Round, stream uint64) float64 {
	h := mix(uint64(o.opt.Seed))
	h = mix(h ^ uint64(o.slot)<<1)
	h = mix(h ^ uint64(phys)<<24)
	h = mix(h ^ uint64(r)<<40)
	h = mix(h ^ stream<<56)
	return float64(h>>11) / (1 << 53)
}

// Omits implements sim.Omitter.
func (o *svcOmitter) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	phys := o.perm[p-1]
	if !o.faulty[phys-1] {
		return sim.Omission{}
	}
	var om sim.Omission
	if o.opt.SendProb > 0 && o.u01(phys, r, 1) < o.opt.SendProb {
		om.Data = make([]bool, len(plan.Data))
		om.Ctrl = make([]bool, len(plan.Control))
	}
	if o.opt.RecvProb > 0 {
		var recv []bool
		for j := 1; j <= o.n; j++ {
			if o.u01(phys, r, 2+uint64(j)) < o.opt.RecvProb {
				if recv == nil {
					recv = make([]bool, o.n)
					for k := range recv {
						recv[k] = true
					}
				}
				// The mask is positional over the instance's logical ids:
				// block the role that maps to physical sender j.
				for role, ph := range o.perm {
					if ph == sim.ProcID(j) {
						recv[role] = false
					}
				}
			}
		}
		om.Recv = recv
	}
	return om
}

// mix is the SplitMix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// svcAdversary combines the slot crash adversary with the optional omitter.
type svcAdversary struct {
	slotAdversary
	om *svcOmitter
}

// Omits implements sim.Omitter.
func (a *svcAdversary) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	return a.om.Omits(p, r, plan)
}

// arrival is one pending command.
type arrival struct {
	t  float64
	id int
}

// arrivalHeap is a min-heap of pending commands ordered by time (ties by
// command id, so the batch order is deterministic).
type arrivalHeap []arrival

func (h arrivalHeap) less(i, j int) bool {
	return h[i].t < h[j].t || (h[i].t == h[j].t && h[i].id < h[j].id)
}

func (h *arrivalHeap) push(a arrival) {
	*h = append(*h, a)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *arrivalHeap) pop() arrival {
	top := (*h)[0]
	n := len(*h) - 1
	(*h)[0] = (*h)[n]
	*h = (*h)[:n]
	hh := *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && hh.less(l, small) {
			small = l
		}
		if r < n && hh.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		hh[i], hh[small] = hh[small], hh[i]
		i = small
	}
	return top
}

// validate rejects unusable service configurations.
func (o *ServeOptions) validate() error {
	if o.N < 1 {
		return errors.New("smr: serve needs at least one replica")
	}
	if (o.Arrivals == nil) == (o.Clients == nil) {
		return errors.New("smr: serve needs exactly one workload source (Arrivals or Clients)")
	}
	if o.MaxCommands <= 0 && o.Duration <= 0 && o.MaxSlots <= 0 {
		return errors.New("smr: serve needs a stop condition (MaxCommands, Duration or MaxSlots)")
	}
	if o.MaxCommands < 0 || o.Duration < 0 || o.MaxSlots < 0 || o.BatchLimit < 0 {
		return errors.New("smr: serve bounds must be non-negative")
	}
	for id, t := range o.CrashAt {
		if id < 1 || int(id) > o.N {
			return fmt.Errorf("smr: crash schedule names nonexistent replica %d (n=%d)", id, o.N)
		}
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("smr: crash time %g of replica %d is not a finite non-negative time", t, id)
		}
	}
	if len(o.CrashAt) >= o.N {
		return fmt.Errorf("smr: crash schedule kills all %d replicas; the service needs a survivor", o.N)
	}
	if om := o.Omit; om != nil {
		if len(om.Procs) == 0 {
			return errors.New("smr: omission injection needs at least one faulty replica")
		}
		seen := map[sim.ProcID]bool{}
		for _, p := range om.Procs {
			if p < 1 || int(p) > o.N {
				return fmt.Errorf("smr: omission-faulty replica %d does not exist (n=%d)", p, o.N)
			}
			if seen[p] {
				return fmt.Errorf("smr: omission-faulty replica %d listed twice", p)
			}
			seen[p] = true
		}
		if om.SendProb < 0 || om.SendProb > 1 || om.RecvProb < 0 || om.RecvProb > 1 {
			return fmt.Errorf("smr: omission probabilities %g/%g out of [0, 1]", om.SendProb, om.RecvProb)
		}
	}
	return nil
}

// slotLatency derives the latency model of one slot: stateless models pass
// through; a Jitter model is re-seeded by hashing the slot index so the
// per-message jitter pattern varies along the stream while staying a pure
// function of (seed, slot, message).
func slotLatency(m timed.LatencyModel, slot int) timed.LatencyModel {
	if j, ok := m.(timed.Jitter); ok {
		j.Seed = int64(mix(uint64(j.Seed) ^ uint64(slot)))
		return j
	}
	return m
}

// Serve runs the replicated-log service to one of its stop conditions and
// returns the aggregated service report. Every slot's instance is audited
// against the PR 6 laws (conservation and ledger consistency by the engine
// adapter, the slot's fault budget here), and the cross-slot aggregate is
// conservation-checked before returning.
func Serve(opts ServeOptions) (*ServeResult, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.Protocol == "" {
		opts.Protocol = ProtocolCRW
	}
	if opts.Bits <= 0 {
		opts.Bits = 64
	}
	kind := opts.Engine
	if kind == "" {
		kind = harness.KindTimed
	}
	caps, ok := harness.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("smr: unknown engine %q", kind)
	}
	if opts.Latency != nil && !caps.Timed {
		return nil, fmt.Errorf("smr: engine %q lacks the timed capability required by a latency model", kind)
	}

	// Round duration on the service clock: from the latency model for timed
	// engines, one unit per round otherwise.
	cfg := Config{N: opts.N, Protocol: opts.Protocol, Bits: opts.Bits, RotateLeader: opts.RotateLeader}
	roundDur := 1.0
	if caps.Timed {
		lat := opts.Latency
		if lat == nil {
			lat = timed.DefaultModel()
		}
		d, delta := lat.Params()
		roundDur = float64(d)
		if opts.Protocol != ProtocolEarlyStop {
			roundDur += float64(delta)
		}
	}

	// Pending commands: open-loop sources are drained lazily, closed-loop
	// clients all become ready at time zero.
	var heap arrivalHeap
	nextID := 0
	if opts.Clients != nil {
		for c := 0; c < opts.Clients.Clients; c++ {
			heap.push(arrival{t: 0, id: nextID})
			nextID++
		}
	}
	nextArrival := func() float64 {
		if len(heap) > 0 {
			if opts.Arrivals != nil && opts.Arrivals.Peek() < heap[0].t {
				return opts.Arrivals.Peek()
			}
			return heap[0].t
		}
		if opts.Arrivals != nil {
			return opts.Arrivals.Peek()
		}
		return math.Inf(1)
	}
	// fill moves open-loop arrivals due by t into the heap.
	fill := func(t float64) {
		if opts.Arrivals == nil {
			return
		}
		for opts.Arrivals.Peek() <= t {
			heap.push(arrival{t: opts.Arrivals.Pop(), id: nextID})
			nextID++
		}
	}

	res := &ServeResult{
		RoundsHist: map[int]int{},
		Crashed:    map[sim.ProcID]float64{},
		CrashSlot:  map[sim.ProcID]int{},
	}
	var lat stats.Sample
	var latMax, latSum float64

	cache := harness.NewCache()
	defer cache.Close()

	dead := map[sim.ProcID]bool{}
	var faulty []bool
	if opts.Omit != nil {
		faulty = make([]bool, opts.N)
		for _, p := range opts.Omit.Procs {
			faulty[p-1] = true
		}
	}

	// Pending leader recoveries: resolved by the minimum commit time over
	// all instances launched at or after the crash (a pipelined successor
	// can commit before a slow multi-round predecessor).
	type pendingRec struct {
		replica sim.ProcID
		t       float64
		best    float64
	}
	var pending []pendingRec

	nextLaunch := 0.0
	committed := 0
	slot := 0
	proposals := make([]sim.Value, opts.N)
	var batch []arrival
	for {
		if opts.MaxCommands > 0 && committed >= opts.MaxCommands {
			break
		}
		if opts.MaxSlots > 0 && slot >= opts.MaxSlots {
			break
		}
		na := nextArrival()
		if math.IsInf(na, 1) {
			break
		}
		start := math.Max(nextLaunch, na)
		if opts.Duration > 0 && start > opts.Duration {
			break
		}
		slot++

		// Crash injection: replicas whose crash time has passed are dead
		// for this and every later instance.
		leader := leaderOf(opts.N, dead, opts.RotateLeader)
		for id, t := range opts.CrashAt {
			if t <= start && !dead[id] {
				dead[id] = true
				res.Crashed[id] = t
				res.CrashSlot[id] = slot
				if id == leader {
					pending = append(pending, pendingRec{replica: id, t: t, best: math.Inf(1)})
					leader = leaderOf(opts.N, dead, opts.RotateLeader)
				}
			}
		}
		if len(dead) >= opts.N {
			return res, fmt.Errorf("smr: all replicas dead at slot %d (t=%g)", slot, start)
		}

		// Batch: every pending command that arrived by the launch time.
		fill(start)
		batch = batch[:0]
		for len(heap) > 0 && heap[0].t <= start {
			if opts.BatchLimit > 0 && len(batch) >= opts.BatchLimit {
				break
			}
			batch = append(batch, heap.pop())
		}

		perm := permutation(opts.N, dead, opts.RotateLeader)
		for i := range proposals {
			proposals[i] = Command(slot, perm[i])
		}
		procs, model, horizon := buildInstance(cfg, proposals)
		var adv sim.Adversary
		crashAdv := slotAdversary{dead: dead, killNow: nil, perm: perm}
		if opts.Omit != nil {
			adv = &svcAdversary{slotAdversary: crashAdv,
				om: &svcOmitter{opt: opts.Omit, faulty: faulty, slot: slot, perm: perm, n: opts.N}}
		} else {
			adv = &crashAdv
		}
		eng, err := cache.Get(kind)
		if err != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, err)
		}
		out, err := eng.Run(harness.Job{Model: model, Horizon: horizon, Procs: procs, Adv: adv,
			Latency: slotLatency(opts.Latency, slot)})
		if err != nil {
			return res, fmt.Errorf("smr: slot %d (t=%g): %w", slot, start, err)
		}
		// The adapter audited the budget-free laws; the slot's fault budget
		// is service knowledge, audited here.
		budget := laws.Budget{Crashes: len(dead)}
		if opts.Omit != nil {
			budget.Omissive = len(opts.Omit.Procs)
		}
		if aerr := laws.AuditBudget(out, budget); aerr != nil {
			return res, fmt.Errorf("smr: slot %d: %w", slot, aerr)
		}
		if _, err := agreedValue(out); err != nil {
			return res, fmt.Errorf("smr: slot %d (t=%g): %w", slot, start, err)
		}

		dur := float64(out.Rounds)
		if caps.Timed {
			dur = out.SimTime
		}
		commit := start + dur
		res.Slots++
		res.TotalRounds += int(out.Rounds)
		res.RoundsHist[int(out.Rounds)]++
		res.LastCommit = commit
		res.Counters.Merge(out.Counters)
		res.Ledger.Merge(out.Ledger)
		for id, c := range out.Omissive {
			if res.Omissive == nil {
				res.Omissive = map[sim.ProcID]int{}
			}
			res.Omissive[perm[id-1]] += c
		}

		for _, a := range batch {
			l := commit - a.t
			lat.Add(l)
			latSum += l
			if l > latMax {
				latMax = l
			}
			opts.Telemetry.Observe(l)
		}
		committed += len(batch)
		if opts.Telemetry.Enabled() {
			opts.Telemetry.Span(telemetry.SpanSlot, telemetry.TrackService,
				int32(slot), int32(len(batch)), start, commit)
			opts.Telemetry.Sample(telemetry.SeriesSlotRounds, commit, float64(out.Rounds))
			opts.Telemetry.Sample(telemetry.SeriesSlotBatch, commit, float64(len(batch)))
			if commit > 0 {
				opts.Telemetry.Sample(telemetry.SeriesThroughput, commit, float64(committed)/commit)
			}
		}
		if opts.Clients != nil {
			for _, a := range batch {
				heap.push(arrival{t: commit + opts.Clients.ThinkGap(), id: a.id})
			}
		}
		for i := range pending {
			if pending[i].t <= start && commit < pending[i].best {
				pending[i].best = commit
			}
		}

		if opts.NoPipeline {
			nextLaunch = commit
		} else {
			nextLaunch = start + roundDur
		}
	}

	if committed == 0 {
		return res, errors.New("smr: service committed no commands (empty workload before the stop condition)")
	}
	res.Commands = committed
	res.Latency = LatencyStats{
		P50:  lat.Percentile(50),
		P99:  lat.Percentile(99),
		P999: lat.Percentile(99.9),
		Mean: latSum / float64(committed),
		Max:  latMax,
	}
	for _, p := range pending {
		if !math.IsInf(p.best, 1) {
			res.Recoveries = append(res.Recoveries, Recovery{Replica: p.replica, CrashTime: p.t, Commit: p.best})
		}
	}
	sort.Slice(res.Recoveries, func(i, j int) bool { return res.Recoveries[i].CrashTime < res.Recoveries[j].CrashTime })
	stats := cache.Stats()
	res.EnginesBuilt, res.EngineReuses = stats.Built, stats.ReuseHits

	// Cross-slot conservation: the aggregated ledger must still account for
	// every transmitted message of the whole stream.
	if got, want := res.Ledger.SinkData(), res.Counters.DataMsgs; got != want {
		return res, &laws.Violation{Law: laws.LawConservationData,
			Detail: fmt.Sprintf("service aggregate: %d data messages transmitted, sinks account for %d", want, got)}
	}
	if got, want := res.Ledger.SinkCtrl(), res.Counters.CtrlMsgs; got != want {
		return res, &laws.Violation{Law: laws.LawConservationCtrl,
			Detail: fmt.Sprintf("service aggregate: %d control messages transmitted, sinks account for %d", want, got)}
	}
	return res, nil
}

// leaderOf returns the replica holding the p1 role for the given dead set.
func leaderOf(n int, dead map[sim.ProcID]bool, rotate bool) sim.ProcID {
	return permutation(n, dead, rotate)[0]
}
