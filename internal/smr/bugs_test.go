package smr_test

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/smr"
)

// TestCommandEncodingCollisionFree pins the scale-track fix: the seed's
// slot*1000+id encoding aliased Command(s, 1000) with Command(s+1, 0), so
// replica ids >= 1000 silently collided across slots. The widened encoding
// must keep every (slot, id) pair distinct through n=4096.
func TestCommandEncodingCollisionFree(t *testing.T) {
	// The exact aliasing pair of the seed encoding.
	if smr.Command(3, 1000) == smr.Command(4, 0) {
		t.Fatal("Command(3, 1000) == Command(4, 0): the slot*1000+id aliasing is back")
	}
	const n = 4096
	seen := make(map[sim.Value]struct{}, 8*n)
	for slot := 1; slot <= 8; slot++ {
		for id := sim.ProcID(1); id <= n; id++ {
			v := smr.Command(slot, id)
			if _, dup := seen[v]; dup {
				t.Fatalf("Command(%d, %d) = %d collides with an earlier pair", slot, id, int64(v))
			}
			seen[v] = struct{}{}
		}
	}
	// Large-slot values stay clear of each other and of sim.NoValue.
	if smr.Command(1<<30, 1) == smr.Command(1<<30+1, 1) {
		t.Error("large slots collide")
	}
	if smr.Command(1<<30, n) == sim.NoValue {
		t.Error("command encoding produced the NoValue sentinel")
	}
}

// TestCommandRangeChecks pins the panics on out-of-field arguments.
func TestCommandRangeChecks(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("id over field", func() { smr.Command(1, 1<<smr.CommandIDBits) })
	mustPanic("negative id", func() { smr.Command(1, -1) })
	mustPanic("negative slot", func() { smr.Command(-1, 1) })
	mustPanic("slot over field", func() { smr.Command(1<<43, 1) })
	// The field boundaries themselves are legal.
	_ = smr.Command(1, 1<<smr.CommandIDBits-1)
	_ = smr.Command(1<<42-1, 1)
}

// TestRunReusesOneEngine pins the harness routing fix: a multi-slot log must
// build exactly one (Reusable) engine and route every further slot through
// it, instead of constructing a fresh engine per slot.
func TestRunReusesOneEngine(t *testing.T) {
	res, err := smr.Run(smr.Config{N: 6, Slots: 25,
		CrashDuringSlot: map[sim.ProcID]int{2: 7}, RotateLeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnginesBuilt != 1 {
		t.Errorf("EnginesBuilt = %d, want 1", res.EnginesBuilt)
	}
	if res.EngineReuses != 24 {
		t.Errorf("EngineReuses = %d, want 24 (one per slot after the first)", res.EngineReuses)
	}
}

// TestRunAllocsReflectEngineReuse gates the reuse path in allocation terms:
// per-slot cost must sit well under the seed's construct-an-engine-per-slot
// regime (~170 allocs per n=8 instance at the PR 1 baseline; the reused
// engine serves a failure-free slot for a fraction of that).
func TestRunAllocsReflectEngineReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	const slots = 50
	avg := testing.AllocsPerRun(10, func() {
		if _, err := smr.Run(smr.Config{N: 8, Slots: slots}); err != nil {
			t.Fatal(err)
		}
	})
	perSlot := avg / slots
	if perSlot > 100 {
		t.Errorf("allocs per slot = %.1f, want <= 100 (engine reuse lost?)", perSlot)
	}
}

// TestValidateCatchesDivergence pins the divergence path of Validate, which
// the seed never tested: equal-length divergent logs must be rejected no
// matter which log the reference choice lands on, and the error must be
// deterministic.
func TestValidateCatchesDivergence(t *testing.T) {
	res := &smr.Result{Logs: map[sim.ProcID][]sim.Value{
		1: {smr.Command(1, 1), smr.Command(2, 1)},
		2: {smr.Command(1, 1), smr.Command(2, 2)},
	}}
	err := smr.Validate(res)
	if err == nil {
		t.Fatal("equal-length divergent logs validated")
	}
	for i := 0; i < 20; i++ {
		if again := smr.Validate(res); again == nil || again.Error() != err.Error() {
			t.Fatalf("validation error is nondeterministic: %q vs %q", err, again)
		}
	}
	if !strings.Contains(err.Error(), "slot 2") {
		t.Errorf("error %q does not name the divergent slot", err)
	}
}

// TestValidateDivergentPrefix rejects a shorter log that contradicts the
// longest one (the classic crashed-replica divergence).
func TestValidateDivergentPrefix(t *testing.T) {
	res := &smr.Result{Logs: map[sim.ProcID][]sim.Value{
		1: {smr.Command(1, 1)},
		2: {smr.Command(1, 2), smr.Command(2, 2)},
		3: {smr.Command(1, 2), smr.Command(2, 2)},
	}}
	if err := smr.Validate(res); err == nil {
		t.Fatal("divergent prefix validated")
	}
	// And a true prefix passes.
	ok := &smr.Result{Logs: map[sim.ProcID][]sim.Value{
		1: {smr.Command(1, 2)},
		2: {smr.Command(1, 2), smr.Command(2, 2)},
	}}
	if err := smr.Validate(ok); err != nil {
		t.Fatalf("true prefix rejected: %v", err)
	}
}

// TestValidateEmptyAndSingle covers the degenerate shapes.
func TestValidateEmptyAndSingle(t *testing.T) {
	if err := smr.Validate(&smr.Result{Logs: map[sim.ProcID][]sim.Value{}}); err != nil {
		t.Errorf("empty result rejected: %v", err)
	}
	if err := smr.Validate(&smr.Result{Logs: map[sim.ProcID][]sim.Value{
		1: {smr.Command(1, 1)},
	}}); err != nil {
		t.Errorf("single log rejected: %v", err)
	}
}
