package smr_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/lan"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/timed"
	"repro/internal/workload"
)

// mustServe runs the service and fails the test on error.
func mustServe(t *testing.T, opts smr.ServeOptions) *smr.ServeResult {
	t.Helper()
	res, err := smr.Serve(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// openPoisson builds a fresh open-loop Poisson source (Serve consumes the
// iterator, so every invocation needs its own).
func openPoisson(t *testing.T, rate float64, seed int64) *workload.Open {
	t.Helper()
	o, err := workload.NewOpen(workload.Poisson{Rate: rate}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestServePipelinedThroughput pins the service's headline property: with
// pipelining a saturated log commits one slot per round duration, so the
// same workload finishes in a fraction of the unpipelined time.
func TestServePipelinedThroughput(t *testing.T) {
	base := func() smr.ServeOptions {
		clients, err := workload.NewClosed(6, 0, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return smr.ServeOptions{
			N: 4, RotateLeader: true,
			Latency:     timed.Fixed{D: 1, Delta: 0.1},
			Clients:     clients,
			MaxCommands: 600,
		}
	}
	pip := mustServe(t, base())
	opts := base()
	opts.NoPipeline = true
	seq := mustServe(t, opts)

	if pip.Commands != 600 || seq.Commands != 600 {
		t.Fatalf("commands = %d / %d, want 600 each", pip.Commands, seq.Commands)
	}
	// Failure-free extended-model slots decide in one round, so pipelined
	// and unpipelined coincide here on slot spacing — but the pipelined
	// schedule must launch exactly one slot per round duration.
	wantSlots := 100 // 6 commands per slot
	if pip.Slots != wantSlots {
		t.Errorf("pipelined slots = %d, want %d", pip.Slots, wantSlots)
	}
	if got, want := pip.LastCommit, float64(wantSlots-1)*1.1+1.1; math.Abs(got-want) > 1e-9*want {
		t.Errorf("pipelined last commit at %g, want %g", got, want)
	}
	if pip.PerHour() < 1 {
		t.Errorf("PerHour = %g, want positive", pip.PerHour())
	}
	// One engine for the whole service lifetime.
	if pip.EnginesBuilt != 1 || pip.EngineReuses != pip.Slots-1 {
		t.Errorf("engines built/reused = %d/%d, want 1/%d", pip.EnginesBuilt, pip.EngineReuses, pip.Slots-1)
	}
}

// TestServePipelineBeatsSequential exercises the regime where pipelining
// actually changes the schedule: with a dead static coordinator every slot
// takes two rounds, so the unpipelined log halves its launch rate while the
// pipelined one keeps launching every round duration.
func TestServePipelineBeatsSequential(t *testing.T) {
	base := func() smr.ServeOptions {
		o, err := workload.NewOpen(workload.Fixed{Rate: 10}, 0)
		if err != nil {
			t.Fatal(err)
		}
		return smr.ServeOptions{
			N: 4, RotateLeader: false,
			Latency:     timed.Fixed{D: 1, Delta: 0.1},
			Arrivals:    o,
			BatchLimit:  1,
			MaxCommands: 200,
			CrashAt:     map[sim.ProcID]float64{1: 0},
		}
	}
	pip := mustServe(t, base())
	opts := base()
	opts.NoPipeline = true
	seq := mustServe(t, opts)
	if pip.RoundsPerCommit() != 2 || seq.RoundsPerCommit() != 2 {
		t.Fatalf("rounds/commit = %g / %g, want 2 (dead static coordinator)", pip.RoundsPerCommit(), seq.RoundsPerCommit())
	}
	// Pipelined: slots launch every 1.1; sequential: every 2.2.
	if ratio := seq.LastCommit / pip.LastCommit; ratio < 1.8 {
		t.Errorf("sequential/pipelined makespan ratio = %g, want ~2", ratio)
	}
	if pip.PerHour() < 1.8*seq.PerHour() {
		t.Errorf("pipelined %g cmds/hour vs sequential %g, want ~2x", pip.PerHour(), seq.PerHour())
	}
}

// TestServeLeaderRecovery pins the recovery metric against the analytic
// bounds: a leader crash costs exactly one round duration with rotation (the
// next instance starts with a live coordinator) and two without (the dead
// coordinator wastes the first round of the recovery instance).
func TestServeLeaderRecovery(t *testing.T) {
	const roundDur = 1.1
	run := func(rotate bool) *smr.ServeResult {
		clients, err := workload.NewClosed(4, 0, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return mustServe(t, smr.ServeOptions{
			N: 4, RotateLeader: rotate,
			Latency:     timed.Fixed{D: 1, Delta: 0.1},
			Clients:     clients,
			MaxCommands: 100,
			CrashAt:     map[sim.ProcID]float64{1: 5 * roundDur},
		})
	}
	for _, tc := range []struct {
		rotate bool
		want   float64 // recovery in round durations
	}{
		{rotate: true, want: 1},
		{rotate: false, want: 2},
	} {
		res := run(tc.rotate)
		if len(res.Recoveries) != 1 {
			t.Fatalf("rotate=%v: %d recoveries, want 1 (%v)", tc.rotate, len(res.Recoveries), res.Recoveries)
		}
		rec := res.Recoveries[0]
		if rec.Replica != 1 {
			t.Errorf("rotate=%v: recovered from replica %d, want 1", tc.rotate, rec.Replica)
		}
		want := tc.want * roundDur
		if got := rec.Duration(); math.Abs(got-want) > 1e-9 {
			t.Errorf("rotate=%v: recovery = %g, want %g (%g round durations)", tc.rotate, got, want, tc.want)
		}
		if res.Crashed[1] != 5*roundDur {
			t.Errorf("rotate=%v: crash time recorded as %g, want %g", tc.rotate, res.Crashed[1], 5*roundDur)
		}
	}
}

// TestServeNonLeaderCrashNoRecovery pins that only leader crashes produce
// recovery records.
func TestServeNonLeaderCrashNoRecovery(t *testing.T) {
	clients, err := workload.NewClosed(4, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := mustServe(t, smr.ServeOptions{
		N: 4, RotateLeader: true,
		Latency:     timed.Fixed{D: 1, Delta: 0.1},
		Clients:     clients,
		MaxCommands: 100,
		CrashAt:     map[sim.ProcID]float64{3: 2.2},
	})
	if len(res.Recoveries) != 0 {
		t.Errorf("non-leader crash produced recoveries %v", res.Recoveries)
	}
	if _, dead := res.Crashed[3]; !dead {
		t.Error("crash of replica 3 not recorded")
	}
}

// TestServeOmissionInjection drives send-omission faults mid-stream. A
// non-coordinator's dropped rounds are benign for the extended-model
// protocol — decisions ride the coordinator's pipelined commit — but every
// omissive round must register in the service's omission ledger and the
// per-slot budget audit must stay clean.
func TestServeOmissionInjection(t *testing.T) {
	clients, err := workload.NewClosed(5, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := mustServe(t, smr.ServeOptions{
		N: 5, RotateLeader: true,
		Latency:     timed.Fixed{D: 1, Delta: 0.1},
		Clients:     clients,
		MaxCommands: 500,
		Omit:        &smr.OmitOptions{Procs: []sim.ProcID{4}, SendProb: 0.3, Seed: 17},
	})
	if res.Omissive[4] == 0 {
		t.Errorf("omissive ledger %v records nothing for the faulty replica", res.Omissive)
	}
	for id := range res.Omissive {
		if id != 4 {
			t.Errorf("replica %d registered omissive rounds without being configured faulty", id)
		}
	}
}

// TestServeOmissiveCoordinatorDetected pins the service's safety net: CRW is
// a crash-fault protocol, and a send-omissive *coordinator* breaks its
// agreement (it perceives a failure-free round and decides alone — the
// omission counterexample of internal/sim in service form). The service must
// detect the divergence, stop, and report the slot — deterministically.
func TestServeOmissiveCoordinatorDetected(t *testing.T) {
	build := func() smr.ServeOptions {
		clients, err := workload.NewClosed(5, 0, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		return smr.ServeOptions{
			N: 5, RotateLeader: true,
			Latency:     timed.Fixed{D: 1, Delta: 0.1},
			Clients:     clients,
			MaxCommands: 500,
			Omit:        &smr.OmitOptions{Procs: []sim.ProcID{1}, SendProb: 0.3, Seed: 17},
		}
	}
	_, err := smr.Serve(build())
	if err == nil || !strings.Contains(err.Error(), "divergent") {
		t.Fatalf("omissive coordinator not caught as divergence: %v", err)
	}
	_, again := smr.Serve(build())
	if again == nil || again.Error() != err.Error() {
		t.Errorf("divergence report nondeterministic: %q vs %q", err, again)
	}
}

// TestServeDeterministicReplay pins bit-identical replay: two invocations
// with identical options and seeds must produce deeply equal reports —
// including latency percentiles, recovery times and the message ledger.
func TestServeDeterministicReplay(t *testing.T) {
	build := func() smr.ServeOptions {
		return smr.ServeOptions{
			N: 6, RotateLeader: true,
			Latency:     timed.Jitter{D: 1, Delta: 0.1, Floor: 0.4, Spread: 0.5, Seed: 3},
			Arrivals:    openPoisson(t, 4, 99),
			MaxCommands: 400,
			CrashAt:     map[sim.ProcID]float64{2: 30},
			Omit:        &smr.OmitOptions{Procs: []sim.ProcID{5}, SendProb: 0.15, Seed: 8},
		}
	}
	a := mustServe(t, build())
	b := mustServe(t, build())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical service runs diverged:\n%+v\nvs\n%+v", a, b)
	}
	c := build()
	c.Arrivals = openPoisson(t, 4, 100)
	other := mustServe(t, c)
	if reflect.DeepEqual(a.Latency, other.Latency) {
		t.Error("different workload seeds produced identical latency distributions")
	}
}

// TestServeThroughputTarget pins the acceptance bar: on the timed engine
// with a gigabit-Ethernet latency profile, an n=8 service sustains at least
// one million committed commands per simulated hour.
func TestServeThroughputTarget(t *testing.T) {
	res := mustServe(t, smr.ServeOptions{
		N: 8, RotateLeader: true,
		Latency:     timed.Profile{P: lan.Ethernet1G, Bits: 64},
		Arrivals:    openPoisson(t, 500_000, 1), // 500k commands per simulated second
		MaxCommands: 20_000,
	})
	if got := res.PerHour(); got < 1e6 {
		t.Errorf("sustained %.0f commands per simulated hour, want >= 1e6", got)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 || res.Latency.Max < res.Latency.P999 {
		t.Errorf("latency stats inconsistent: %+v", res.Latency)
	}
}

// TestServeOpenLoopIdle pins open-loop behavior across idle gaps: with
// arrivals far slower than the round duration every command rides its own
// slot and commit latency is exactly one instance duration.
func TestServeOpenLoopIdle(t *testing.T) {
	o, err := workload.NewOpen(workload.Fixed{Rate: 0.1}, 0) // one arrival per 10 time units
	if err != nil {
		t.Fatal(err)
	}
	res := mustServe(t, smr.ServeOptions{
		N: 3, RotateLeader: true,
		Latency:     timed.Fixed{D: 1, Delta: 0.1},
		Arrivals:    o,
		MaxCommands: 20,
	})
	if res.Slots != 20 {
		t.Errorf("slots = %d, want 20 (one command per slot)", res.Slots)
	}
	for _, p := range []float64{res.Latency.P50, res.Latency.P99, res.Latency.Max} {
		if math.Abs(p-1.1) > 1e-9 {
			t.Errorf("idle-service latency %g, want exactly one instance duration 1.1", p)
		}
	}
}

// TestServeBatchLimit bounds the per-slot batch.
func TestServeBatchLimit(t *testing.T) {
	clients, err := workload.NewClosed(10, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := mustServe(t, smr.ServeOptions{
		N: 3, RotateLeader: true,
		Latency:     timed.Fixed{D: 1, Delta: 0.1},
		Clients:     clients,
		MaxCommands: 100,
		BatchLimit:  4,
	})
	if res.Slots < 25 {
		t.Errorf("slots = %d; a batch limit of 4 needs >= 25 slots for 100 commands", res.Slots)
	}
}

// TestServeDurationStop stops the service on the simulated clock.
func TestServeDurationStop(t *testing.T) {
	res := mustServe(t, smr.ServeOptions{
		N: 3, RotateLeader: true,
		Latency:  timed.Fixed{D: 1, Delta: 0.1},
		Arrivals: openPoisson(t, 50, 2),
		Duration: 20,
	})
	if res.LastCommit > 20+2.2+1e-9 {
		t.Errorf("last commit at %g, want within duration 20 plus one instance", res.LastCommit)
	}
	if res.Commands == 0 {
		t.Error("duration-bounded run committed nothing")
	}
}

// TestServeRoundEngine runs the service on the deterministic round engine,
// where the clock ticks one unit per round.
func TestServeRoundEngine(t *testing.T) {
	clients, err := workload.NewClosed(4, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := mustServe(t, smr.ServeOptions{
		N: 4, RotateLeader: true,
		Engine:      harness.KindDeterministic,
		Clients:     clients,
		MaxCommands: 40,
	})
	if res.Slots != 10 {
		t.Errorf("slots = %d, want 10", res.Slots)
	}
	if math.Abs(res.LastCommit-10) > 1e-9 {
		t.Errorf("round-engine last commit at %g, want 10 (one unit per round)", res.LastCommit)
	}
}

// TestServeValidation rejects unusable configurations with telling errors.
func TestServeValidation(t *testing.T) {
	open := func() *workload.Open { return openPoisson(t, 10, 0) }
	closed, err := workload.NewClosed(2, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts smr.ServeOptions
		want string
	}{
		{"no replicas", smr.ServeOptions{Arrivals: open(), MaxCommands: 1}, "replica"},
		{"no workload", smr.ServeOptions{N: 3, MaxCommands: 1}, "workload"},
		{"both workloads", smr.ServeOptions{N: 3, Arrivals: open(), Clients: closed, MaxCommands: 1}, "workload"},
		{"no stop", smr.ServeOptions{N: 3, Arrivals: open()}, "stop condition"},
		{"bad crash id", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			CrashAt: map[sim.ProcID]float64{7: 1}}, "nonexistent"},
		{"negative crash time", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			CrashAt: map[sim.ProcID]float64{1: -2}}, "finite"},
		{"kills everyone", smr.ServeOptions{N: 2, Arrivals: open(), MaxCommands: 1,
			CrashAt: map[sim.ProcID]float64{1: 0, 2: 0}}, "survivor"},
		{"bad omit proc", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			Omit: &smr.OmitOptions{Procs: []sim.ProcID{9}, SendProb: 0.1}}, "does not exist"},
		{"omit prob out of range", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			Omit: &smr.OmitOptions{Procs: []sim.ProcID{1}, SendProb: 1.5}}, "out of [0, 1]"},
		{"unknown engine", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			Engine: harness.Kind("warp")}, "unknown engine"},
		{"latency on round engine", smr.ServeOptions{N: 3, Arrivals: open(), MaxCommands: 1,
			Engine: harness.KindDeterministic, Latency: timed.Fixed{D: 1}}, "timed capability"},
	}
	for _, tc := range cases {
		_, err := smr.Serve(tc.opts)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
