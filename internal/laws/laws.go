// Package laws is the post-run audit layer: a set of conservation and
// ordering laws that every finished execution must satisfy, checked
// mechanically after each run regardless of which engine produced it.
//
// The differential tests prove the three engines agree with each other; a
// shared accounting or scheduling bug would sail through every cross-check.
// The laws close that gap: they are engine-independent identities derived
// from the model itself — the paper's cost theorems are statements about
// transmitted messages, so message conservation is checkable on every single
// execution, not just on the analytical bounds.
//
// The catalog (see docs/invariants.md for the full contract):
//
//   - conservation-data / conservation-ctrl: every transmitted message of the
//     kind ends in exactly one ledger sink —
//     sent == delivered + recv-omitted + late + dead-dest + halted-dest;
//   - ledger-counters: the ledger's per-kind splits re-add to the engine's
//     aggregate counters (OmittedRecv, Late);
//   - clock: the continuous-time engine's event core executed events in
//     nondecreasing time order with FIFO ties and leaked no events
//     (des.Sim.Audit, surfaced as sim.Result.ClockViolation);
//   - crash-budget / omission-budget: the run exhibits no more crashed or
//     omissive processes than the fault specification allows;
//   - determinism: the serialized report of a run is byte-identical across
//     re-runs and JSON round-trips (checked by agree.VerifyDeterminism and
//     the FuzzReportRoundTrip target, not per-run — running everything twice
//     would double every benchmark).
//
// All per-run checks are integer comparisons over fields the engines already
// maintain: the passing path performs no allocation, so the audit rides the
// zero-alloc hot paths gated by scripts/bench_compare.sh.
//
// The audit applies to successfully finished runs only. A run that aborts
// with an engine error (model violation, horizon exhaustion) is legitimately
// partial — messages can be in flight when the run is cut — so callers must
// skip the audit when the engine returned an error.
package laws

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Law names, used to classify violations in findings output ([Of]).
const (
	// LawConservationData: transmitted data messages == sum of data sinks.
	LawConservationData = "conservation-data"
	// LawConservationCtrl: transmitted control messages == sum of ctrl sinks.
	LawConservationCtrl = "conservation-ctrl"
	// LawLedgerCounters: the ledger's per-kind splits re-add to the aggregate
	// counters (OmittedRecv, Late) and no ledger field is negative.
	LawLedgerCounters = "ledger-counters"
	// LawClock: the event core's execution order respected the simulated
	// clock (monotone time, FIFO ties, no leaked events).
	LawClock = "clock"
	// LawCrashBudget: observed crashes never exceed the fault budget.
	LawCrashBudget = "crash-budget"
	// LawOmissionBudget: observed omissive processes never exceed the budget.
	LawOmissionBudget = "omission-budget"
	// LawDeterminism: the serialized report is byte-identical across re-runs
	// and JSON round-trips.
	LawDeterminism = "determinism"
)

// Violation is a law violation: which law, and what the books actually said.
type Violation struct {
	// Law is the violated law's name (one of the Law* constants).
	Law string
	// Detail describes the violation with the numbers involved.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string { return "laws: " + v.Law + ": " + v.Detail }

// Of classifies an error: it returns the name of the violated law if err is
// (or wraps) a *Violation, and "" otherwise.
func Of(err error) string {
	var v *Violation
	if errors.As(err, &v) {
		return v.Law
	}
	return ""
}

// Budget bounds the faults a fault specification can inject into one run.
// A negative field means unbounded (the law is not checked for that class).
type Budget struct {
	// Crashes bounds the number of crashed processes.
	Crashes int
	// Omissive bounds the number of distinct omission-faulty processes.
	Omissive int
}

// Unbounded returns a budget that disables both budget laws.
func Unbounded() Budget { return Budget{Crashes: -1, Omissive: -1} }

// Audit checks the budget-free laws on a successfully finished run: message
// conservation per kind, ledger/counter consistency, and the event-clock
// contract. It returns nil — without allocating — when every law holds, and
// a *Violation for the first broken law otherwise.
func Audit(res *sim.Result) error {
	l := &res.Ledger
	c := &res.Counters
	if l.DeliveredData < 0 || l.DeliveredCtrl < 0 ||
		l.RecvOmitData < 0 || l.RecvOmitCtrl < 0 ||
		l.LateData < 0 || l.LateCtrl < 0 ||
		l.DeadDestData < 0 || l.DeadDestCtrl < 0 ||
		l.HaltedDestData < 0 || l.HaltedDestCtrl < 0 {
		return &Violation{Law: LawLedgerCounters,
			Detail: fmt.Sprintf("negative ledger entry: %s", l.String())}
	}
	if got, want := l.RecvOmitData+l.RecvOmitCtrl, c.OmittedRecv; got != want {
		return &Violation{Law: LawLedgerCounters,
			Detail: fmt.Sprintf("ledger receive omissions %d+%d != Counters.OmittedRecv %d",
				l.RecvOmitData, l.RecvOmitCtrl, want)}
	}
	if got, want := l.LateData+l.LateCtrl, c.Late; got != want {
		return &Violation{Law: LawLedgerCounters,
			Detail: fmt.Sprintf("ledger late messages %d+%d != Counters.Late %d",
				l.LateData, l.LateCtrl, want)}
	}
	if sunk := l.SinkData(); sunk != c.DataMsgs {
		return &Violation{Law: LawConservationData,
			Detail: fmt.Sprintf("transmitted %d data messages but sinks account for %d (%s)",
				c.DataMsgs, sunk, l.String())}
	}
	if sunk := l.SinkCtrl(); sunk != c.CtrlMsgs {
		return &Violation{Law: LawConservationCtrl,
			Detail: fmt.Sprintf("transmitted %d control messages but sinks account for %d (%s)",
				c.CtrlMsgs, sunk, l.String())}
	}
	if res.ClockViolation != "" {
		return &Violation{Law: LawClock, Detail: res.ClockViolation}
	}
	return nil
}

// AuditBudget checks the fault-budget laws: the run's observed crashes and
// omissive processes never exceed the budget the fault specification was
// allowed to spend. Negative budget fields disable the corresponding law.
func AuditBudget(res *sim.Result, b Budget) error {
	if b.Crashes >= 0 && len(res.Crashed) > b.Crashes {
		return &Violation{Law: LawCrashBudget,
			Detail: fmt.Sprintf("%d processes crashed, budget allows %d", len(res.Crashed), b.Crashes)}
	}
	if b.Omissive >= 0 && len(res.Omissive) > b.Omissive {
		return &Violation{Law: LawOmissionBudget,
			Detail: fmt.Sprintf("%d omissive processes, budget allows %d", len(res.Omissive), b.Omissive)}
	}
	return nil
}

// AuditAll runs every per-run law: the budget-free laws of [Audit] followed
// by the budget laws of [AuditBudget].
func AuditAll(res *sim.Result, b Budget) error {
	if err := Audit(res); err != nil {
		return err
	}
	return AuditBudget(res, b)
}
