package laws_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// balanced returns a result whose books balance: 10 data and 6 control
// messages transmitted, spread over every sink, with the aggregate counters
// agreeing with the ledger splits.
func balanced() *sim.Result {
	return &sim.Result{
		Crashed:  map[sim.ProcID]sim.Round{1: 2},
		Omissive: map[sim.ProcID]int{3: 1},
		Counters: metrics.Counters{
			DataMsgs:    10,
			CtrlMsgs:    6,
			OmittedRecv: 3,
			Late:        2,
		},
		Ledger: metrics.Ledger{
			DeliveredData:  5,
			DeliveredCtrl:  3,
			RecvOmitData:   2,
			RecvOmitCtrl:   1,
			LateData:       1,
			LateCtrl:       1,
			DeadDestData:   1,
			DeadDestCtrl:   1,
			HaltedDestData: 1,
			HaltedDestCtrl: 0,
		},
	}
}

func TestAuditPassesBalancedBooks(t *testing.T) {
	if err := laws.Audit(balanced()); err != nil {
		t.Fatalf("Audit on balanced books: %v", err)
	}
	if err := laws.AuditAll(balanced(), laws.Budget{Crashes: 1, Omissive: 1}); err != nil {
		t.Fatalf("AuditAll within budget: %v", err)
	}
	if err := laws.AuditAll(balanced(), laws.Unbounded()); err != nil {
		t.Fatalf("AuditAll unbounded: %v", err)
	}
}

func TestAuditCatchesEachLaw(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*sim.Result)
		law    string
	}{
		{"double-counted delivery", func(r *sim.Result) { r.Ledger.DeliveredData++ }, laws.LawConservationData},
		{"lost data message", func(r *sim.Result) { r.Ledger.DeadDestData-- }, laws.LawConservationData},
		{"lost control message", func(r *sim.Result) { r.Ledger.DeliveredCtrl-- }, laws.LawConservationCtrl},
		{"phantom transmission", func(r *sim.Result) { r.Counters.DataMsgs++ }, laws.LawConservationData},
		{"recv-omit split drifts", func(r *sim.Result) { r.Counters.OmittedRecv++ }, laws.LawLedgerCounters},
		{"late split drifts", func(r *sim.Result) { r.Counters.Late-- }, laws.LawLedgerCounters},
		{"negative ledger entry", func(r *sim.Result) {
			r.Ledger.DeliveredData--
			r.Ledger.DeadDestData = -1
			r.Ledger.DeliveredData += 2 // sinks still sum: only negativity trips
		}, laws.LawLedgerCounters},
		{"clock violation surfaced", func(r *sim.Result) {
			r.ClockViolation = "des: clock went backwards: event at t=1 after t=2"
		}, laws.LawClock},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := balanced()
			tc.mutate(res)
			err := laws.Audit(res)
			if err == nil {
				t.Fatalf("Audit passed mutated books: %+v", res.Ledger)
			}
			if got := laws.Of(err); got != tc.law {
				t.Fatalf("violated law = %q (%v), want %q", got, err, tc.law)
			}
		})
	}
}

func TestAuditBudget(t *testing.T) {
	res := balanced() // 1 crashed, 1 omissive
	if err := laws.AuditBudget(res, laws.Budget{Crashes: 1, Omissive: 1}); err != nil {
		t.Fatalf("exact budget: %v", err)
	}
	err := laws.AuditBudget(res, laws.Budget{Crashes: 0, Omissive: 1})
	if laws.Of(err) != laws.LawCrashBudget {
		t.Fatalf("crash over budget: got %v", err)
	}
	err = laws.AuditBudget(res, laws.Budget{Crashes: 1, Omissive: 0})
	if laws.Of(err) != laws.LawOmissionBudget {
		t.Fatalf("omission over budget: got %v", err)
	}
	if err := laws.AuditBudget(res, laws.Unbounded()); err != nil {
		t.Fatalf("unbounded budget: %v", err)
	}
	// Negative fields disable each law independently.
	if err := laws.AuditBudget(res, laws.Budget{Crashes: -1, Omissive: 5}); err != nil {
		t.Fatalf("crashes unbounded: %v", err)
	}
}

func TestOfClassifiesWrappedViolations(t *testing.T) {
	v := &laws.Violation{Law: laws.LawConservationData, Detail: "books off by one"}
	if got := laws.Of(v); got != laws.LawConservationData {
		t.Errorf("Of(violation) = %q", got)
	}
	wrapped := fmt.Errorf("engine %q: %w", "timed", v)
	if got := laws.Of(wrapped); got != laws.LawConservationData {
		t.Errorf("Of(wrapped) = %q", got)
	}
	if got := laws.Of(errors.New("plain error")); got != "" {
		t.Errorf("Of(plain) = %q, want \"\"", got)
	}
	if got := laws.Of(nil); got != "" {
		t.Errorf("Of(nil) = %q, want \"\"", got)
	}
}

// TestAuditAllocFree pins the audit's zero-cost contract: the passing path
// must not allocate, so it can ride every engine's hot path and the bench
// gate's exact allocs/op comparison.
func TestAuditAllocFree(t *testing.T) {
	res := balanced()
	b := laws.Budget{Crashes: 1, Omissive: 1}
	allocs := testing.AllocsPerRun(200, func() {
		if err := laws.AuditAll(res, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("passing audit allocates %.1f allocs/op, want 0", allocs)
	}
}
