// Package harness is the pluggable execution layer between the public agree
// API and the engine implementations. It defines the Engine interface — one
// job in, one sim.Result out, with explicit capability flags — a registry of
// engine factories keyed by kind, and the worker-pool machinery (Cache,
// ForEach) that the scenario-sweep runner in package agree fans batches of
// configurations across.
//
// Every engine adapter is reusable: calling Run repeatedly on one Engine
// value executes independent jobs, and adapters that can recycle internal
// buffers between jobs (the deterministic engine, via sim.Engine.Reset) do
// so transparently. That is what makes a sweep cheap: each worker of a pool
// owns one Cache, so a thousand configurations pay for one engine.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/laws"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/timed"
	"repro/internal/trace"
)

// Kind identifies a registered engine. The public agree.EngineKind values
// convert directly to Kind.
type Kind string

// Kinds of the built-in engines registered by this package.
const (
	// KindDeterministic is the sequential round engine (internal/sim).
	KindDeterministic Kind = "deterministic"
	// KindLockstep is the goroutine-per-process runtime (internal/lockstep).
	KindLockstep Kind = "lockstep"
	// KindTimed is the continuous-time discrete-event engine (internal/timed).
	KindTimed Kind = "timed"
)

// Capabilities describes what an engine supports. Callers consult the flags
// before submitting a job so unsupported requests fail with an error naming
// the actual missing capability rather than a hard-coded engine name.
type Capabilities struct {
	// Trace: the engine can record an execution transcript into a
	// trace.Log supplied via Job.Trace.
	Trace bool
	// Deterministic: identical jobs produce bit-identical results. Engines
	// without this flag (the lockstep runtime) are still comparable across
	// engines when the adversary is a pure function of (process, round).
	Deterministic bool
	// Reusable: the engine recycles internal buffers across Run calls, so
	// batching many jobs onto one Engine value is cheaper than constructing
	// a fresh engine per job.
	Reusable bool
	// Timed: the engine executes on a simulated wall clock — it honors
	// Job.Latency and reports sim.Result.SimTime. Engines without this flag
	// reject jobs that specify a latency model.
	Timed bool
}

// Job is one engine-agnostic execution request: a process set with its
// adversary under a model, bounded by a horizon. Trace is optional and
// requires the Trace capability; Latency is optional and requires the Timed
// capability (a nil Latency on a timed engine selects timed.DefaultModel,
// which is within the synchrony bound and therefore semantically identical
// to the round abstraction).
type Job struct {
	Model   sim.Model
	Horizon sim.Round
	Procs   []sim.Process
	Adv     sim.Adversary
	Trace   *trace.Log
	Latency timed.LatencyModel
	// Telemetry, when non-nil, receives spans and metric samples over
	// simulated time for this run (internal/telemetry). All three engines
	// honor it; a nil recorder costs nothing on any hot path.
	Telemetry *telemetry.Recorder
}

// Engine executes jobs. Implementations must support any number of
// sequential Run calls on one value; they need not be safe for concurrent
// use (the pool gives every worker its own engines).
type Engine interface {
	// Kind returns the registry key of the engine.
	Kind() Kind
	// Capabilities returns the engine's capability flags.
	Capabilities() Capabilities
	// Run executes one job to completion and returns its result. The result
	// is freshly allocated and safe to retain; internal buffers may be
	// recycled by the next Run.
	Run(Job) (*sim.Result, error)
}

// audited applies the budget-free law audit (internal/laws) to an engine
// run's outcome: every successfully finished run leaving any adapter must
// satisfy message conservation and the event-clock contract. Runs that ended
// in an engine error are legitimately partial and pass through unaudited.
// Every adapter's Run returns through this function, so no execution —
// whether reached via agree.Run, a sweep, a cross-check, or a fuzz campaign —
// escapes the audit.
func audited(res *sim.Result, err error) (*sim.Result, error) {
	if err != nil {
		return res, err
	}
	if aerr := laws.Audit(res); aerr != nil {
		return res, aerr
	}
	return res, nil
}

// entry is one registered engine factory with its advertised capabilities.
type entry struct {
	caps    Capabilities
	factory func() Engine
}

var (
	regMu    sync.RWMutex
	registry = map[Kind]entry{}
)

// Register adds an engine factory to the registry under the kind and
// capabilities reported by a probe instance. It panics on a duplicate kind
// (registration is an init-time programming act, not a runtime condition).
func Register(factory func() Engine) {
	probe := factory()
	kind := probe.Kind()
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("harness: engine kind %q registered twice", kind))
	}
	registry[kind] = entry{caps: probe.Capabilities(), factory: factory}
}

// New instantiates a fresh engine of the given kind.
func New(kind Kind) (Engine, error) {
	regMu.RLock()
	e, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("harness: unknown engine %q (registered: %v)", kind, Kinds())
	}
	return e.factory(), nil
}

// Lookup returns the capabilities of a registered kind without instantiating
// an engine.
func Lookup(kind Kind) (Capabilities, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[kind]
	return e.caps, ok
}

// Kinds returns the registered engine kinds in sorted order.
func Kinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kind, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
