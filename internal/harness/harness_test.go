package harness_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/trace"
)

// job builds a fresh CRW job of n processes under a coordinator killer.
func job(n, f int) harness.Job {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	return harness.Job{
		Model:   sim.ModelExtended,
		Horizon: sim.Round(n + 2),
		Procs:   core.NewSystem(props, core.Options{}),
		Adv:     adversary.CoordinatorKiller{F: f},
	}
}

func TestRegistryHasBuiltinEngines(t *testing.T) {
	kinds := harness.Kinds()
	if len(kinds) != 3 || kinds[0] != harness.KindDeterministic ||
		kinds[1] != harness.KindLockstep || kinds[2] != harness.KindTimed {
		t.Fatalf("kinds = %v, want [deterministic lockstep timed]", kinds)
	}
	det, ok := harness.Lookup(harness.KindDeterministic)
	if !ok || !det.Trace || !det.Deterministic || !det.Reusable || det.Timed {
		t.Errorf("deterministic caps = %+v, want trace+deterministic+reusable", det)
	}
	ls, ok := harness.Lookup(harness.KindLockstep)
	if !ok || ls.Trace || ls.Deterministic || !ls.Reusable || ls.Timed {
		t.Errorf("lockstep caps = %+v, want reusable only", ls)
	}
	td, ok := harness.Lookup(harness.KindTimed)
	if !ok || !td.Trace || !td.Deterministic || !td.Reusable || !td.Timed {
		t.Errorf("timed caps = %+v, want trace+deterministic+reusable+timed", td)
	}
	if _, ok := harness.Lookup("bogus"); ok {
		t.Error("Lookup accepted an unregistered kind")
	}
	if _, err := harness.New("bogus"); err == nil {
		t.Error("New accepted an unregistered kind")
	}
}

// dupEngine is a registerable stub that collides with a built-in kind.
type dupEngine struct{}

func (dupEngine) Kind() harness.Kind                 { return harness.KindDeterministic }
func (dupEngine) Capabilities() harness.Capabilities { return harness.Capabilities{} }
func (dupEngine) Run(harness.Job) (*sim.Result, error) {
	return nil, nil
}

// TestRegisterDuplicateKindPanics pins the registry's duplicate guard:
// re-registering an existing kind is an init-time programming error and must
// panic with a message naming the colliding kind, never silently replace a
// working engine.
func TestRegisterDuplicateKindPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, string(harness.KindDeterministic)) ||
			!strings.Contains(msg, "registered twice") {
			t.Errorf("panic message %v does not name the duplicate kind", r)
		}
	}()
	harness.Register(func() harness.Engine { return dupEngine{} })
}

// TestKindsOrderingDeterministic pins that Kinds() is sorted and stable
// across calls: sweep cross-checks, CLI listings and test expectations all
// iterate it and rely on a reproducible order (the registry is a map
// underneath, so without the sort the order would wander).
func TestKindsOrderingDeterministic(t *testing.T) {
	first := harness.Kinds()
	if !sort.SliceIsSorted(first, func(i, j int) bool { return first[i] < first[j] }) {
		t.Errorf("Kinds() = %v is not sorted", first)
	}
	for i := 0; i < 32; i++ {
		again := harness.Kinds()
		if len(again) != len(first) {
			t.Fatalf("Kinds() length changed: %v vs %v", again, first)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("Kinds() order changed at call %d: %v vs %v", i, again, first)
			}
		}
	}
}

// TestTimedAdapter runs a job through the timed adapter and checks the
// semantic outcome matches the deterministic engine while SimTime is
// reported; it also pins the capability guards (sim/lockstep reject latency
// models, timed accepts traces).
func TestTimedAdapter(t *testing.T) {
	det, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	td, err := harness.New(harness.KindTimed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.Run(job(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	j := job(6, 2)
	j.Latency = timed.Fixed{D: 1, Delta: 0.25}
	got, err := td.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || len(got.Decisions) != len(want.Decisions) ||
		got.Counters != want.Counters {
		t.Errorf("timed result %+v differs from deterministic %+v", got, want)
	}
	if wantTime := float64(got.Rounds) * 1.25; got.SimTime != wantTime {
		t.Errorf("SimTime = %g, want %g", got.SimTime, wantTime)
	}
	if want.SimTime != 0 {
		t.Errorf("deterministic engine reported SimTime %g, want 0", want.SimTime)
	}

	// Traced timed job records a transcript.
	j = job(3, 0)
	j.Trace = trace.New()
	if _, err := td.Run(j); err != nil {
		t.Fatal(err)
	}
	if j.Trace.String() == "" {
		t.Error("traced timed job produced no transcript")
	}

	// Engines without the timed capability reject latency models.
	for _, kind := range []harness.Kind{harness.KindDeterministic, harness.KindLockstep} {
		eng, err := harness.New(kind)
		if err != nil {
			t.Fatal(err)
		}
		j := job(3, 0)
		j.Latency = timed.Fixed{D: 1}
		if _, err := eng.Run(j); err == nil {
			t.Errorf("engine %q accepted a latency model without the timed capability", kind)
		}
	}
}

// TestAdaptersAgree runs the same workload through both adapters and
// compares the semantic outcome.
func TestAdaptersAgree(t *testing.T) {
	det, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := harness.New(harness.KindLockstep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := det.Run(job(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ls.Run(job(6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || len(got.Decisions) != len(want.Decisions) ||
		got.Counters != want.Counters {
		t.Errorf("lockstep result %+v differs from deterministic %+v", got, want)
	}
	for id, v := range want.Decisions {
		if got.Decisions[id] != v {
			t.Errorf("p%d decided %d vs %d", id, got.Decisions[id], v)
		}
	}
}

// TestSimAdapterReuse drives one deterministic adapter through jobs of
// changing shapes and checks every run stays correct — the reuse path
// (same-shape jobs hit sim.Engine.Reset) must be invisible to results.
func TestSimAdapterReuse(t *testing.T) {
	eng, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct{ n, f int }{{4, 1}, {4, 2}, {4, 2}, {6, 0}, {4, 1}, {6, 5}}
	for i, s := range shapes {
		res, err := eng.Run(job(s.n, s.f))
		if err != nil {
			t.Fatalf("run %d (n=%d f=%d): %v", i, s.n, s.f, err)
		}
		if res.MaxDecideRound() != sim.Round(s.f+1) {
			t.Errorf("run %d (n=%d f=%d): decide round %d, want %d",
				i, s.n, s.f, res.MaxDecideRound(), s.f+1)
		}
		if len(res.Decisions) != s.n-s.f {
			t.Errorf("run %d: %d deciders, want %d", i, len(res.Decisions), s.n-s.f)
		}
	}
}

// TestSimAdapterTrace checks traced jobs record a transcript and do not
// leak events into later untraced jobs.
func TestSimAdapterTrace(t *testing.T) {
	eng, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	log := trace.New()
	j := job(3, 0)
	j.Trace = log
	if _, err := eng.Run(j); err != nil {
		t.Fatal(err)
	}
	if log.String() == "" {
		t.Error("traced job produced no transcript")
	}
	before := len(log.String())
	if _, err := eng.Run(job(3, 0)); err != nil {
		t.Fatal(err)
	}
	if len(log.String()) != before {
		t.Error("untraced job appended to the previous job's trace log")
	}
}

// TestLockstepAdapterRejectsTrace pins the capability backstop in the
// adapter itself.
func TestLockstepAdapterRejectsTrace(t *testing.T) {
	eng, err := harness.New(harness.KindLockstep)
	if err != nil {
		t.Fatal(err)
	}
	j := job(3, 0)
	j.Trace = trace.New()
	if _, err := eng.Run(j); err == nil {
		t.Error("lockstep adapter accepted a traced job")
	}
}

// TestForEachCoversAllIndicesDeterministically checks every index is
// visited exactly once for any worker count, and that each worker owns a
// private cache.
func TestForEachCoversAllIndicesDeterministically(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 4, 8, 200} {
		visits := make([]int, n)
		var mu sync.Mutex
		caches := map[*harness.Cache]bool{}
		harness.ForEach(n, workers, func(c *harness.Cache, i int) {
			mu.Lock()
			visits[i]++
			caches[c] = true
			mu.Unlock()
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
		if len(caches) > n && workers != 1 {
			t.Errorf("workers=%d: %d caches for %d jobs", workers, len(caches), n)
		}
	}
	// n = 0 must be a no-op, not a hang.
	harness.ForEach(0, 4, func(*harness.Cache, int) { t.Error("fn called for empty batch") })
}

// TestCacheReturnsSameEngine checks Get memoizes per kind.
func TestCacheReturnsSameEngine(t *testing.T) {
	c := harness.NewCache()
	a, err := c.Get(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache returned distinct engines for one kind")
	}
	if _, err := c.Get("bogus"); err == nil {
		t.Error("cache accepted an unregistered kind")
	}
}
