package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Cache lazily instantiates and retains one engine per kind. A sweep worker
// owns exactly one Cache, so every job it executes on a given kind lands on
// the same Engine value and benefits from that engine's buffer reuse.
type Cache struct {
	engines map[Kind]Engine
}

// NewCache returns an empty engine cache.
func NewCache() *Cache { return &Cache{engines: map[Kind]Engine{}} }

// Get returns the cache's engine for kind, instantiating it on first use.
func (c *Cache) Get(kind Kind) (Engine, error) {
	if eng, ok := c.engines[kind]; ok {
		return eng, nil
	}
	eng, err := New(kind)
	if err != nil {
		return nil, err
	}
	c.engines[kind] = eng
	return eng, nil
}

// ForEach invokes fn(cache, i) for every i in [0, n), fanned across a pool
// of workers that each own a private Cache. Indices are handed out through
// an atomic cursor, so scheduling is work-stealing; callers that write
// result slots by index get output in deterministic input order regardless
// of the worker count. workers <= 0 means GOMAXPROCS; a pool of one (or a
// batch of one) runs inline on the calling goroutine with no
// synchronization.
func ForEach(n, workers int, fn func(c *Cache, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		c := NewCache()
		for i := 0; i < n; i++ {
			fn(c, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewCache()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(c, i)
			}
		}()
	}
	wg.Wait()
}
