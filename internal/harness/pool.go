package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// PoolStats accounts for engine construction and reuse across a Cache or a
// ForEach pool: Built counts engine instantiations, ReuseHits counts Get
// calls served by an already-cached engine. Reusable engines make ReuseHits
// cheap — that is the whole point of the cache — so the ratio is the
// observable dividend of the Reusable capability.
type PoolStats struct {
	Built     int
	ReuseHits int
}

// add folds another stats record into s.
func (s *PoolStats) add(o PoolStats) {
	s.Built += o.Built
	s.ReuseHits += o.ReuseHits
}

// Cache lazily instantiates and retains one engine per kind. A sweep worker
// owns exactly one Cache, so every job it executes on a given kind lands on
// the same Engine value and benefits from that engine's buffer reuse. Close
// the cache when done: engines backed by persistent goroutine sets (the
// lockstep runtime) are released there.
type Cache struct {
	engines map[Kind]Engine
	stats   PoolStats
}

// NewCache returns an empty engine cache.
func NewCache() *Cache { return &Cache{engines: map[Kind]Engine{}} }

// Get returns the cache's engine for kind, instantiating it on first use.
func (c *Cache) Get(kind Kind) (Engine, error) {
	if eng, ok := c.engines[kind]; ok {
		c.stats.ReuseHits++
		return eng, nil
	}
	eng, err := New(kind)
	if err != nil {
		return nil, err
	}
	c.engines[kind] = eng
	c.stats.Built++
	return eng, nil
}

// Stats returns the cache's construction/reuse account so far.
func (c *Cache) Stats() PoolStats { return c.stats }

// Close releases every cached engine that holds releasable resources (the
// optional Close method — e.g. the lockstep adapter's persistent goroutine
// set) and empties the cache. The cache remains usable; subsequent Gets
// build fresh engines.
func (c *Cache) Close() {
	for _, eng := range c.engines {
		if cl, ok := eng.(interface{ Close() }); ok {
			cl.Close()
		}
	}
	clear(c.engines)
}

// ForEach invokes fn(cache, i) for every i in [0, n), fanned across a pool
// of workers that each own a private Cache (closed when its worker drains).
// Indices are handed out through an atomic cursor, so scheduling is
// work-stealing; callers that write result slots by index get output in
// deterministic input order regardless of the worker count. workers <= 0
// means GOMAXPROCS; a pool of one (or a batch of one) runs inline on the
// calling goroutine with no synchronization.
//
// The returned PoolStats aggregate engine construction and reuse over all
// workers. They are the only worker-count-dependent output: a pool of w
// workers builds up to w engines per kind touched.
func ForEach(n, workers int, fn func(c *Cache, i int)) PoolStats {
	return ForEachProf(n, workers, nil, fn)
}

// ForEachProf is ForEach with an optional wall-clock profile: when prof is
// non-nil, every worker charges the time it spends between jobs — waiting on
// the atomic cursor plus pool setup/teardown, i.e. its wall time minus the
// time inside fn — to telemetry.PhaseQueueWait. The phases inside a job
// (run, audit, cross-check) are charged by the callback itself; see
// agree.SweepOptions.Profile. A nil prof takes the exact ForEach path with no
// clock reads.
func ForEachProf(n, workers int, prof *telemetry.Profile, fn func(c *Cache, i int)) PoolStats {
	if n <= 0 {
		return PoolStats{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	body := fn
	if prof.Enabled() {
		body = func(c *Cache, i int) {
			t0 := time.Now()
			fn(c, i)
			// Negative queue-wait is impossible: fn time is subtracted from
			// the worker's wall time measured around the whole drain loop.
			prof.Add(telemetry.PhaseQueueWait, -time.Since(t0))
		}
	}
	if workers == 1 {
		start := time.Now()
		c := NewCache()
		defer c.Close()
		for i := 0; i < n; i++ {
			body(c, i)
		}
		if prof.Enabled() {
			prof.Add(telemetry.PhaseQueueWait, time.Since(start))
		}
		return c.Stats()
	}
	var (
		next  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		total PoolStats
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			c := NewCache()
			defer func() {
				if prof.Enabled() {
					prof.Add(telemetry.PhaseQueueWait, time.Since(start))
				}
				mu.Lock()
				total.add(c.Stats())
				mu.Unlock()
				c.Close()
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(c, i)
			}
		}()
	}
	wg.Wait()
	return total
}
