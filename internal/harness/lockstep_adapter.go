package harness

import (
	"fmt"

	"repro/internal/lockstep"
	"repro/internal/sim"
)

// lockstepEngine adapts the goroutine-per-process runtime
// (internal/lockstep) to the harness interface. The runtime's worker
// goroutines and channel matrix are persistent: the adapter keeps one
// lockstep.Runtime and rearms it with Reset per job, so it advertises
// Reusable. It records no transcripts and, because worker goroutines consult
// the adversary in scheduling order, makes no bit-determinism promise. Close
// (called by Cache.Close) terminates the goroutine set.
type lockstepEngine struct {
	rt *lockstep.Runtime
}

func init() {
	Register(func() Engine { return &lockstepEngine{} })
}

// Kind implements Engine.
func (e *lockstepEngine) Kind() Kind { return KindLockstep }

// Capabilities implements Engine.
func (e *lockstepEngine) Capabilities() Capabilities { return Capabilities{Reusable: true} }

// Run implements Engine.
func (e *lockstepEngine) Run(job Job) (*sim.Result, error) {
	if job.Trace != nil {
		return nil, fmt.Errorf("harness: engine %q has no trace capability", KindLockstep)
	}
	if job.Latency != nil {
		return nil, fmt.Errorf("harness: engine %q has no timed capability", KindLockstep)
	}
	cfg := lockstep.Config{Model: job.Model, Horizon: job.Horizon, Telemetry: job.Telemetry}
	if e.rt == nil {
		rt, err := lockstep.New(cfg, job.Procs, job.Adv)
		if err != nil {
			return nil, err
		}
		e.rt = rt
	} else if err := e.rt.Reset(cfg, job.Procs, job.Adv); err != nil {
		return nil, err
	}
	return audited(e.rt.Run())
}

// Close terminates the runtime's persistent worker goroutines.
func (e *lockstepEngine) Close() {
	if e.rt != nil {
		e.rt.Close()
		e.rt = nil
	}
}
