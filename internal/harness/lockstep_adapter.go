package harness

import (
	"fmt"

	"repro/internal/lockstep"
	"repro/internal/sim"
)

// lockstepEngine adapts the goroutine-per-process runtime
// (internal/lockstep) to the harness interface. The runtime is built fresh
// per job — its channel matrix and goroutines are consumed by one run — so
// the adapter advertises no Reusable capability; it also records no
// transcripts and, because worker goroutines consult the adversary in
// scheduling order, makes no bit-determinism promise.
type lockstepEngine struct{}

func init() {
	Register(func() Engine { return lockstepEngine{} })
}

// Kind implements Engine.
func (lockstepEngine) Kind() Kind { return KindLockstep }

// Capabilities implements Engine.
func (lockstepEngine) Capabilities() Capabilities { return Capabilities{} }

// Run implements Engine.
func (lockstepEngine) Run(job Job) (*sim.Result, error) {
	if job.Trace != nil {
		return nil, fmt.Errorf("harness: engine %q has no trace capability", KindLockstep)
	}
	if job.Latency != nil {
		return nil, fmt.Errorf("harness: engine %q has no timed capability", KindLockstep)
	}
	rt, err := lockstep.New(lockstep.Config{Model: job.Model, Horizon: job.Horizon}, job.Procs, job.Adv)
	if err != nil {
		return nil, err
	}
	return audited(rt.Run())
}
