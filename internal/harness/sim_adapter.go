package harness

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// simEngine adapts the sequential deterministic engine (internal/sim) to the
// harness interface. It keeps the last sim.Engine it built and rewinds it
// with Reset whenever the next job shares the engine's configuration, which
// is the zero-alloc reuse path a sweep worker rides: consecutive jobs of the
// same shape cost no engine construction at all.
type simEngine struct {
	eng     *sim.Engine
	model   sim.Model
	horizon sim.Round
	tr      *trace.Log
	tel     *telemetry.Recorder
}

func init() {
	Register(func() Engine { return &simEngine{} })
}

// Kind implements Engine.
func (e *simEngine) Kind() Kind { return KindDeterministic }

// Capabilities implements Engine.
func (e *simEngine) Capabilities() Capabilities {
	return Capabilities{Trace: true, Deterministic: true, Reusable: true}
}

// Run implements Engine. An untraced job whose model and horizon match the
// previous one reuses the cached engine via Reset; anything else (including
// every traced job, whose log is a fresh pointer) constructs a new engine.
// The reuse predicate must cover every sim.Config field a Job can set.
// (Fault behaviour — crashes and omissions alike — lives entirely in the
// adversary, which Reset replaces, so it never constrains reuse.)
func (e *simEngine) Run(job Job) (*sim.Result, error) {
	if job.Latency != nil {
		return nil, fmt.Errorf("harness: engine %q has no timed capability", KindDeterministic)
	}
	if e.eng != nil && job.Model == e.model && job.Horizon == e.horizon &&
		job.Trace == e.tr && job.Telemetry == e.tel {
		if err := e.eng.Reset(job.Procs, job.Adv); err != nil {
			return nil, err
		}
	} else {
		eng, err := sim.NewEngine(
			sim.Config{Model: job.Model, Horizon: job.Horizon, Trace: job.Trace, Telemetry: job.Telemetry},
			job.Procs, job.Adv)
		if err != nil {
			return nil, err
		}
		e.eng, e.model, e.horizon, e.tr, e.tel = eng, job.Model, job.Horizon, job.Trace, job.Telemetry
	}
	return audited(e.eng.Run())
}
