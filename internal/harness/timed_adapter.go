package harness

import (
	"repro/internal/sim"
	"repro/internal/timed"
)

// timedEngine adapts the continuous-time discrete-event engine
// (internal/timed) to the harness interface. The adapter keeps one
// timed.Engine and rearms it with Reset for every job after the first —
// timed.Engine.Reset replaces the whole job (config, processes, adversary,
// latency model) while keeping the event pool, the heap and the inbox
// scratch, so the adapter advertises Reusable unconditionally. It also
// advertises Deterministic: the event loop is single-threaded, adversaries
// are consulted in the same (round, process-id) order as the deterministic
// engine, and the seeded Jitter latency model derives randomness from pure
// per-message hashes.
type timedEngine struct {
	eng *timed.Engine
}

func init() {
	Register(func() Engine { return &timedEngine{} })
}

// Kind implements Engine.
func (e *timedEngine) Kind() Kind { return KindTimed }

// Capabilities implements Engine.
func (e *timedEngine) Capabilities() Capabilities {
	return Capabilities{Trace: true, Deterministic: true, Reusable: true, Timed: true}
}

// Run implements Engine.
func (e *timedEngine) Run(job Job) (*sim.Result, error) {
	cfg := timed.Config{
		Model:     job.Model,
		Horizon:   job.Horizon,
		Trace:     job.Trace,
		Latency:   job.Latency,
		Telemetry: job.Telemetry,
	}
	if e.eng == nil {
		eng, err := timed.New(cfg, job.Procs, job.Adv)
		if err != nil {
			return nil, err
		}
		e.eng = eng
	} else if err := e.eng.Reset(cfg, job.Procs, job.Adv); err != nil {
		return nil, err
	}
	return audited(e.eng.Run())
}
