package harness

import (
	"repro/internal/sim"
	"repro/internal/timed"
)

// timedEngine adapts the continuous-time discrete-event engine
// (internal/timed) to the harness interface. A timed.Engine is consumed by
// one run — its event queue and clock are not rewindable — so the adapter
// constructs one per job and advertises no Reusable capability. It does
// advertise Deterministic: the event loop is single-threaded, adversaries
// are consulted in the same (round, process-id) order as the deterministic
// engine, and the seeded Jitter latency model derives randomness from pure
// per-message hashes.
type timedEngine struct{}

func init() {
	Register(func() Engine { return timedEngine{} })
}

// Kind implements Engine.
func (timedEngine) Kind() Kind { return KindTimed }

// Capabilities implements Engine.
func (timedEngine) Capabilities() Capabilities {
	return Capabilities{Trace: true, Deterministic: true, Timed: true}
}

// Run implements Engine.
func (timedEngine) Run(job Job) (*sim.Result, error) {
	eng, err := timed.New(timed.Config{
		Model:   job.Model,
		Horizon: job.Horizon,
		Trace:   job.Trace,
		Latency: job.Latency,
	}, job.Procs, job.Adv)
	if err != nil {
		return nil, err
	}
	return audited(eng.Run())
}
