package scenario

import (
	"reflect"
	"testing"
)

// FuzzScenarioRoundTrip fuzzes the format's canonical-serialization contract:
// any text the strict parser accepts must serialize to a canonical form that
// parses back to the identical value, with String a fixpoint — and hostile
// inputs must be rejected with an error, never a panic. The seed corpus under
// testdata/fuzz/FuzzScenarioRoundTrip covers every key of the format plus the
// catalog's scenario classes (crash, omission, timing-fault, ablation).
func FuzzScenarioRoundTrip(f *testing.F) {
	f.Add(fullExample)
	f.Add("scenario: minimal\nn: 1\nexpect: pass\n")
	f.Add("scenario: a/b.c_d-e\nn: 3\nt: 1\nproposals: -1,0,9223372036854775807\nexpect: law:crash-budget\n")
	f.Add("scenario: x\nn: 3\nlatency: jitter seed=-1 d=0.1 delta=1e-9 floor=0 spread=2.25\nfaults: p1@r1:ro:100;p2@r3:so:110/101\nexpect: termination\n")
	f.Add("n: 0\nexpect:\nlatency: warp q=1\nfaults: p0@r0")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // rejected input; the contract only covers accepted text
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of accepted input does not parse: %v\ninput: %q\ncanonical: %q", err, text, canon)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the value:\ninput: %q\nfirst  %+v\nsecond %+v", text, s, s2)
		}
		if again := s2.String(); again != canon {
			t.Fatalf("String is not a fixpoint:\ninput: %q\nfirst  %q\nsecond %q", text, canon, again)
		}
	})
}
