package scenario

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Ext is the file extension of scenario files.
const Ext = ".scenario"

// Entry is one catalog entry: a scenario with the file it came from.
type Entry struct {
	// File is the path the scenario was loaded from (relative to the catalog
	// root for LoadDir entries, verbatim for LoadFile).
	File string
	// Scenario is the parsed scenario.
	Scenario *Scenario
}

// LoadFile parses one scenario file.
func LoadFile(path string) (Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(string(data))
	if err != nil {
		return Entry{}, fmt.Errorf("%s: %w", path, err)
	}
	return Entry{File: path, Scenario: s}, nil
}

// LoadDir loads every *.scenario file under dir (recursively) and returns the
// entries sorted by scenario name. The catalog discipline is enforced here:
// each scenario's name must equal its file path relative to dir without the
// extension, which makes names unique, greppable, and stable across loads.
func LoadDir(dir string) ([]Entry, error) {
	var entries []Entry
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, Ext) {
			return nil
		}
		e, err := LoadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		e.File = filepath.ToSlash(rel)
		if want := strings.TrimSuffix(e.File, Ext); e.Scenario.Name != want {
			return fmt.Errorf("scenario: %s: name %q does not match its path (want %q)",
				filepath.Join(dir, rel), e.Scenario.Name, want)
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("scenario: no %s files under %s", Ext, dir)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Scenario.Name < entries[j].Scenario.Name })
	return entries, nil
}
