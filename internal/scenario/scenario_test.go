package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/laws"
	"repro/internal/sim"
)

// fullExample exercises every key of the format.
const fullExample = `# a hand-written scenario with comments and shuffled keys
expect: pass
scenario: crash/worst-case-n8-f2
info: coordinator killer forces CRW to its f+1 bound
n: 8

protocol: crw
t: 3
proposals: 7, 7, 3, 3, 9, 9, 1, 1
engines: deterministic,timed
latency: jitter seed=3 d=1 delta=0.1 floor=0.25 spread=0.5
faults: p1@r1:/0;p2@r2:/0
rounds: 4
decide-round-max: 3
simtime: 4.4
simtime-max: 5
`

func TestParseFullExample(t *testing.T) {
	s, err := Parse(fullExample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := &Scenario{
		Name:      "crash/worst-case-n8-f2",
		Info:      "coordinator killer forces CRW to its f+1 bound",
		Protocol:  "crw",
		N:         8,
		T:         3,
		Proposals: []int64{7, 7, 3, 3, 9, 9, 1, 1},
		Engines:   []string{"deterministic", "timed"},
		Latency:   Latency{Kind: "jitter", Seed: 3, D: 1, Delta: 0.1, Floor: 0.25, Spread: 0.5},
		Faults:    "p1@r1:/0;p2@r2:/0",
		Expect:    Expect{Verdict: "pass", Rounds: 4, DecideRoundMax: 3, SimTime: 4.4, SimTimeMax: 5},
	}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("Parse mismatch:\ngot  %+v\nwant %+v", s, want)
	}
}

func TestRoundTripAndFixpoint(t *testing.T) {
	texts := []string{
		fullExample,
		"scenario: minimal\nn: 1\nexpect: pass\n",
		"scenario: omission/receive\nn: 3\nfaults: p1@r1:ro:110\nexpect: pass\n",
		"scenario: ablation/commit-as-data\nn: 5\ncommit-as-data: true\norder: asc\nfaults: p1@r1:10110/0\nexpect: agreement\n",
		"scenario: timed/profile\nn: 4\nengines: timed\nlatency: profile 1g\nexpect: pass\nsimtime-max: 0.001\n",
		"scenario: timed/fixed\nn: 4\nlatency: fixed d=1 delta=0.125\nexpect: pass\n",
	}
	for _, text := range texts {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		canon := s.String()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String()) of %q: %v", text, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Errorf("round trip of %q changed the value:\ngot  %+v\nwant %+v", text, s2, s)
		}
		if again := s2.String(); again != canon {
			t.Errorf("String not a fixpoint for %q:\nfirst  %q\nsecond %q", text, canon, again)
		}
	}
}

func TestStringOmitsDefaults(t *testing.T) {
	s, err := Parse("scenario: minimal\nn: 3\norder: desc\ncommit-as-data: false\nexpect: pass\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got, want := s.String(), "scenario: minimal\nn: 3\nexpect: pass\n"; got != want {
		t.Fatalf("String: got %q, want %q", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	valid := "scenario: ok\nn: 3\nexpect: pass\n"
	if _, err := Parse(valid); err != nil {
		t.Fatalf("baseline %q must parse: %v", valid, err)
	}
	cases := []struct {
		name, text, want string
	}{
		{"not key-value", "scenario ok\nn: 3\nexpect: pass\n", "not \"key: value\""},
		{"unknown key", valid + "bogus: 1\n", "unknown key"},
		{"duplicate key", valid + "n: 4\n", "duplicate key"},
		{"empty value", "scenario:\nn: 3\nexpect: pass\n", "no value"},
		{"missing scenario", "n: 3\nexpect: pass\n", `required key "scenario" missing`},
		{"missing n", "scenario: ok\nexpect: pass\n", `required key "n" missing`},
		{"missing expect", "scenario: ok\nn: 3\n", `required key "expect" missing`},
		{"bad n", "scenario: ok\nn: three\nexpect: pass\n", "bad n"},
		{"zero n", "scenario: ok\nn: 0\nexpect: pass\n", "at least 1"},
		{"t out of range", "scenario: ok\nn: 3\nt: 3\nexpect: pass\n", "out of range"},
		{"bad name", "scenario: Bad/Name\nn: 3\nexpect: pass\n", "bad name"},
		{"dotdot name", "scenario: a/../b\nn: 3\nexpect: pass\n", "bad name"},
		{"bad proposal", "scenario: ok\nn: 3\nproposals: 1,x,3\nexpect: pass\n", "bad proposal"},
		{"proposal count", "scenario: ok\nn: 3\nproposals: 1,2\nexpect: pass\n", "2 proposals for 3 processes"},
		{"bad protocol", "scenario: ok\nn: 3\nprotocol: paxos\nexpect: pass\n", "unknown protocol"},
		{"ablation on baseline", "scenario: ok\nn: 3\nprotocol: floodset\norder: asc\nexpect: pass\n", "crw protocol only"},
		{"bad order", "scenario: ok\nn: 3\norder: sideways\nexpect: pass\n", "bad order"},
		{"engines all", "scenario: ok\nn: 3\nengines: all\nexpect: pass\n", "omit the engines key"},
		{"engines unsorted", "scenario: ok\nn: 3\nengines: timed,deterministic\nexpect: pass\n", "sorted order"},
		{"engines duplicate", "scenario: ok\nn: 3\nengines: timed,timed\nexpect: pass\n", "duplicate engine"},
		{"bad verdict", "scenario: ok\nn: 3\nexpect: maybe\n", "unknown expect"},
		{"bare law verdict", "scenario: ok\nn: 3\nexpect: law:\n", "unknown expect"},
		{"negative rounds", "scenario: ok\nn: 3\nexpect: pass\nrounds: -1\n", "negative round"},
		{"bad simtime", "scenario: ok\nn: 3\nexpect: pass\nsimtime: NaN\n", "bad simtime"},
		{"inf simtime-max", "scenario: ok\nn: 3\nexpect: pass\nsimtime-max: +Inf\n", "bad simtime-max"},
		{"simtime needs timed", "scenario: ok\nn: 3\nengines: deterministic\nexpect: pass\nsimtime: 1\n", "timed engine"},
		{"bad script", "scenario: ok\nn: 3\nfaults: p1r1\nexpect: pass\n", "fuzz:"},
		{"script beyond n", "scenario: ok\nn: 3\nfaults: p4@r1:/0\nexpect: pass\n", "nonexistent p4"},
		{"ctrl beyond n", "scenario: ok\nn: 3\nfaults: p1@r1:/3\nexpect: pass\n", "control prefix"},
		{"recv mask beyond n", "scenario: ok\nn: 3\nfaults: p1@r1:ro:1110\nexpect: pass\n", "senders"},
		{"no survivor", "scenario: ok\nn: 2\nfaults: p1@r1:/0;p2@r1:/0\nexpect: pass\n", "survivor"},
		{"non-canonical script", "scenario: ok\nn: 3\nfaults: p2@r2:/0;p1@r1:/0\nexpect: pass\n", "canonical event order"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: Parse accepted %q", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestParseLatency(t *testing.T) {
	good := map[string]Latency{
		"fixed d=1 delta=0":   {Kind: "fixed", D: 1},
		"fixed delta=0.5 d=2": {Kind: "fixed", D: 2, Delta: 0.5},
		"profile 100m":        {Kind: "profile", Profile: "100m"},
		"jitter seed=-7 d=1 delta=0 floor=0 spread=0.25": {Kind: "jitter", Seed: -7, D: 1, Spread: 0.25},
	}
	for text, want := range good {
		got, err := parseLatency(text)
		if err != nil {
			t.Errorf("parseLatency(%q): %v", text, err)
			continue
		}
		if got != want {
			t.Errorf("parseLatency(%q) = %+v, want %+v", text, got, want)
		}
	}
	bad := map[string]string{
		"":                          "empty latency",
		"warp d=1":                  "unknown latency kind",
		"fixed d=1":                 `"delta" missing`,
		"fixed d=1 delta=0 x=2":     "unknown parameter",
		"fixed d=1 delta=0 d=2":     "duplicate parameter",
		"fixed d=zero delta=0":      "bad d value",
		"fixed d=0 delta=0":         "must be positive",
		"fixed d=1 delta=-1":        "negative",
		"fixed d=Inf delta=0":       "not finite",
		"profile":                   "profile name missing",
		"profile 1g 10g":            "exactly one bare profile name",
		"profile token-ring":        "unknown LAN profile",
		"jitter seed=1 d=1 delta=0": `missing`,
		"jitter seed=1.5 d=1 delta=0 floor=0 spread=1": "bad seed value",
	}
	for text, want := range bad {
		_, err := parseLatency(text)
		if err == nil {
			t.Errorf("parseLatency(%q) accepted", text)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("parseLatency(%q) error %q does not mention %q", text, err, want)
		}
	}
}

func TestLatencyWithinBound(t *testing.T) {
	if !(Latency{}).WithinBound() {
		t.Error("zero latency must be within bound")
	}
	if !(Latency{Kind: "jitter", D: 1, Floor: 0.5, Spread: 0.5}).WithinBound() {
		t.Error("floor+spread == d is within bound")
	}
	if (Latency{Kind: "jitter", D: 1, Floor: 0.6, Spread: 2.4}).WithinBound() {
		t.Error("floor+spread > d is out of bound")
	}
}

func TestConsensusOnly(t *testing.T) {
	cases := []struct {
		text string
		want bool
	}{
		{"scenario: a\nn: 3\nfaults: p1@r1:/0\nexpect: pass\n", false},
		{"scenario: b\nn: 3\nfaults: p1@r1:so:110/111\nexpect: pass\n", true},
		{"scenario: c\nn: 3\nfaults: p1@r1:ro:110\nexpect: pass\n", true},
		{"scenario: d\nn: 3\nlatency: jitter seed=1 d=1 delta=0.1 floor=0.6 spread=2.4\nexpect: pass\n", true},
		{"scenario: e\nn: 3\nlatency: jitter seed=1 d=1 delta=0.1 floor=0.1 spread=0.8\nexpect: pass\n", false},
	}
	for _, tc := range cases {
		s, err := Parse(tc.text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.text, err)
		}
		if got := s.ConsensusOnly(); got != tc.want {
			t.Errorf("ConsensusOnly(%s) = %v, want %v", s.Name, got, tc.want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, VerdictPass},
		{fmt.Errorf("wrap: %w", check.ErrValidity), VerdictValidity},
		{fmt.Errorf("wrap: %w", check.ErrAgreement), VerdictAgreement},
		{fmt.Errorf("wrap: %w", check.ErrTermination), VerdictTermination},
		{fmt.Errorf("wrap: %w", check.ErrRoundBound), VerdictRoundBound},
		{fmt.Errorf("wrap: %w", sim.ErrNoProgress), VerdictNoProgress},
		{fmt.Errorf("wrap: %w", &laws.Violation{Law: laws.LawCrashBudget, Detail: "x"}), "law:crash-budget"},
		{errors.New("engine exploded"), VerdictError},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestCheckDiffs(t *testing.T) {
	s, err := Parse("scenario: crash/pinned\nn: 4\nexpect: pass\nrounds: 2\ndecide-round-max: 1\nsimtime: 2.2\nsimtime-max: 2.5\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ok := Outcome{Verdict: VerdictPass, Rounds: 2, MaxDecideRound: 1, SimTime: 2.2, Timed: true}
	if err := s.Check("crash/pinned.scenario", "timed", ok); err != nil {
		t.Fatalf("matching outcome must pass: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(Outcome) Outcome
		mention []string
	}{
		{"verdict", func(o Outcome) Outcome { o.Verdict = VerdictAgreement; return o },
			[]string{"verdict agreement, expected pass"}},
		{"rounds", func(o Outcome) Outcome { o.Rounds = 3; return o },
			[]string{"rounds 3, expected 2"}},
		{"decide round", func(o Outcome) Outcome { o.MaxDecideRound = 2; return o },
			[]string{"decide round 2, expected <= 1"}},
		{"simtime exact", func(o Outcome) Outcome { o.SimTime = 2.3; return o },
			[]string{"simtime 2.3, expected 2.2"}},
	}
	for _, tc := range cases {
		err := s.Check("crash/pinned.scenario", "timed", tc.mutate(ok))
		if err == nil {
			t.Errorf("%s: divergence not caught", tc.name)
			continue
		}
		for _, want := range append(tc.mention, "crash/pinned.scenario", "timed", `scenario "crash/pinned"`) {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, want)
			}
		}
	}
	// Round engines run the same schedule unpriced: simtime expectations are
	// checked on timed engines only.
	unpriced := ok
	unpriced.SimTime, unpriced.Timed = 0, false
	if err := s.Check("crash/pinned.scenario", "deterministic", unpriced); err != nil {
		t.Fatalf("simtime must not be checked on round engines: %v", err)
	}
	// simtime-max is a bound, not an exact value.
	over := ok
	over.SimTime = 2.6
	s2 := *s
	s2.Expect.SimTime = 0
	if err := s2.Check("f", "timed", over); err == nil || !strings.Contains(err.Error(), "<= 2.5") {
		t.Fatalf("simtime-max bound not enforced: %v", err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, text string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("crash/b.scenario", "scenario: crash/b\nn: 3\nexpect: pass\n")
	write("crash/a.scenario", "scenario: crash/a\nn: 3\nexpect: pass\n")
	write("notes.txt", "not a scenario\n")
	entries, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(entries) != 2 || entries[0].Scenario.Name != "crash/a" || entries[1].Scenario.Name != "crash/b" {
		t.Fatalf("LoadDir entries wrong: %+v", entries)
	}
	if entries[0].File != "crash/a.scenario" {
		t.Fatalf("entry file %q not relative to the catalog root", entries[0].File)
	}

	write("crash/misnamed.scenario", "scenario: crash/other\nn: 3\nexpect: pass\n")
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "does not match its path") {
		t.Fatalf("name-path mismatch not caught: %v", err)
	}
	if err := os.Remove(filepath.Join(dir, "crash", "misnamed.scenario")); err != nil {
		t.Fatal(err)
	}

	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no .scenario files") {
		t.Fatalf("empty catalog not caught: %v", err)
	}
}

func TestLoadFileErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.scenario")
	if err := os.WriteFile(path, []byte("scenario: broken\nexpect: pass\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile(path)
	if err == nil || !strings.Contains(err.Error(), "broken.scenario") {
		t.Fatalf("load error must name the file: %v", err)
	}
}
