// Package scenario defines the repo's declarative scenario file format: a
// named, checked-in description of one consensus run — protocol, system size,
// engines, latency model, fault script — together with the outcome the run is
// expected to produce (verdict class, round bounds, simulated-time bounds).
//
// Scenario files are the durable home of the repo's scenario knowledge.
// Every shrunk fuzzer counterexample, every paper-claim grid point and every
// fault demo that used to live in Go code or CLI flag soup lands here as a
// file under scenarios/, and cmd/agreesim replays the whole catalog on every
// engine forever — a regression found once is re-checked on every CI run.
//
// The format is line-based "key: value" text with '#' comments:
//
//	scenario: crash/worst-case-n8-f2
//	info: coordinator killer forces CRW to its f+1 bound
//	protocol: crw
//	n: 8
//	faults: p1@r1:/0;p2@r2:/0
//	expect: pass
//	rounds: 4
//	decide-round-max: 3
//
// The parser is strict — unknown keys, duplicate keys, out-of-range values
// and fault scripts that do not fit the system size are errors, never
// silently ignored — and serialization is canonical: Parse(s.String()) yields
// a Scenario equal to s, and String is a fixpoint (the FuzzScenarioRoundTrip
// target fuzzes exactly this contract). Comments and key order of a
// hand-written file are not part of the value; rewriting a file through
// String normalizes it.
package scenario

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/check"
	"repro/internal/fuzz"
	"repro/internal/laws"
	"repro/internal/sim"
)

// Verdict classes a scenario can expect (Expect.Verdict) and a run can
// produce (Classify). The law class is open-ended: "law:<name>" for any law
// of the internal/laws catalog.
const (
	// VerdictPass: the run satisfies uniform consensus, the protocol's round
	// bound (crash-model runs) and every standing law.
	VerdictPass = "pass"
	// VerdictValidity: a process decided a value nobody proposed.
	VerdictValidity = "validity"
	// VerdictAgreement: two processes decided differently.
	VerdictAgreement = "agreement"
	// VerdictTermination: a surviving process never decided.
	VerdictTermination = "termination"
	// VerdictRoundBound: a decision landed beyond the protocol's bound.
	VerdictRoundBound = "round-bound"
	// VerdictNoProgress: the engine exhausted the horizon with undecided
	// processes still alive (sim.ErrNoProgress).
	VerdictNoProgress = "no-progress"
	// VerdictError: any other execution failure.
	VerdictError = "error"
	// lawPrefix tags law-violation verdicts: "law:" + the law's name.
	lawPrefix = "law:"
)

// Latency is the format-level latency model of a scenario. It mirrors the
// public agree.LatencySpec kinds without importing package agree (the agree
// scenario runner imports this package, not the other way around).
type Latency struct {
	// Kind is "", "fixed", "profile" or "jitter". The empty kind is no
	// latency model: round engines run the round abstraction, the timed
	// engine its default within-bound model.
	Kind string
	// D is the synchrony bound, Delta the control-step extension (fixed and
	// jitter kinds).
	D, Delta float64
	// Floor and Spread shape the jitter distribution: data latency is
	// Floor + U[0, Spread).
	Floor, Spread float64
	// Seed seeds the jitter's pure per-message hash.
	Seed int64
	// Profile names a LAN profile ("100m", "1g", "10g").
	Profile string
}

// IsZero reports whether no latency model is configured.
func (l Latency) IsZero() bool { return l.Kind == "" }

// WithinBound reports whether no sampled latency can exceed the synchrony
// bound. Out-of-bound scenarios inject timing faults and are judged on the
// consensus properties alone, exactly like omission scenarios.
func (l Latency) WithinBound() bool {
	if l.Kind == "jitter" {
		return l.Floor+l.Spread <= l.D
	}
	return true
}

// String renders the latency in the scenario file syntax ("" for none).
func (l Latency) String() string {
	switch l.Kind {
	case "fixed":
		return fmt.Sprintf("fixed d=%s delta=%s", g(l.D), g(l.Delta))
	case "profile":
		return "profile " + l.Profile
	case "jitter":
		return fmt.Sprintf("jitter seed=%d d=%s delta=%s floor=%s spread=%s",
			l.Seed, g(l.D), g(l.Delta), g(l.Floor), g(l.Spread))
	default:
		return ""
	}
}

// g renders a float with the minimal digits that round-trip exactly.
func g(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// validate rejects latencies that cannot define a round (mirroring the
// agree.LatencySpec rules) and non-finite parameters, which could not
// round-trip through the text format.
func (l Latency) validate() error {
	for _, f := range []float64{l.D, l.Delta, l.Floor, l.Spread} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("scenario: latency parameter %s is not finite", g(f))
		}
	}
	switch l.Kind {
	case "":
		if l != (Latency{}) {
			return errors.New("scenario: latency parameters without a latency kind")
		}
	case "fixed":
		if l.D <= 0 {
			return fmt.Errorf("scenario: latency d=%s must be positive", g(l.D))
		}
		if l.Delta < 0 {
			return fmt.Errorf("scenario: latency delta=%s is negative", g(l.Delta))
		}
	case "profile":
		switch l.Profile {
		case "100m", "1g", "10g":
		default:
			return fmt.Errorf("scenario: unknown LAN profile %q (known: 100m, 1g, 10g)", l.Profile)
		}
	case "jitter":
		if l.D <= 0 {
			return fmt.Errorf("scenario: latency d=%s must be positive", g(l.D))
		}
		if l.Delta < 0 {
			return fmt.Errorf("scenario: latency delta=%s is negative", g(l.Delta))
		}
		if l.Floor < 0 {
			return fmt.Errorf("scenario: latency floor=%s is negative", g(l.Floor))
		}
		if l.Spread < 0 {
			return fmt.Errorf("scenario: latency spread=%s is negative", g(l.Spread))
		}
	default:
		return fmt.Errorf("scenario: unknown latency kind %q (want fixed, profile or jitter)", l.Kind)
	}
	return nil
}

// parseLatency decodes the latency file syntax: "fixed d=1 delta=0.1",
// "profile 1g", "jitter seed=1 d=1 delta=0.1 floor=0.6 spread=2.4". Key=value
// parameters may appear in any order but each exactly once.
func parseLatency(text string) (Latency, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Latency{}, errors.New("scenario: empty latency value")
	}
	l := Latency{Kind: fields[0]}
	params := map[string]string{}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if l.Kind == "profile" {
			// The profile kind takes a bare name, not key=value pairs.
			if ok || l.Profile != "" {
				return Latency{}, fmt.Errorf("scenario: latency %q: profile takes exactly one bare profile name", text)
			}
			l.Profile = f
			continue
		}
		if !ok || k == "" || v == "" {
			return Latency{}, fmt.Errorf("scenario: latency %q: bad parameter %q (want key=value)", text, f)
		}
		if _, dup := params[k]; dup {
			return Latency{}, fmt.Errorf("scenario: latency %q: duplicate parameter %q", text, k)
		}
		params[k] = v
	}
	want := map[string]bool{}
	switch l.Kind {
	case "fixed":
		want["d"], want["delta"] = true, true
	case "jitter":
		want["seed"], want["d"], want["delta"], want["floor"], want["spread"] = true, true, true, true, true
	case "profile":
		if l.Profile == "" {
			return Latency{}, fmt.Errorf("scenario: latency %q: profile name missing", text)
		}
	default:
		return Latency{}, fmt.Errorf("scenario: unknown latency kind %q (want fixed, profile or jitter)", l.Kind)
	}
	for k := range params {
		if !want[k] {
			return Latency{}, fmt.Errorf("scenario: latency %q: unknown parameter %q", text, k)
		}
	}
	for k := range want {
		v, ok := params[k]
		if !ok {
			return Latency{}, fmt.Errorf("scenario: latency %q: parameter %q missing", text, k)
		}
		var err error
		if k == "seed" {
			l.Seed, err = strconv.ParseInt(v, 10, 64)
		} else {
			var f float64
			f, err = strconv.ParseFloat(v, 64)
			switch k {
			case "d":
				l.D = f
			case "delta":
				l.Delta = f
			case "floor":
				l.Floor = f
			case "spread":
				l.Spread = f
			}
		}
		if err != nil {
			return Latency{}, fmt.Errorf("scenario: latency %q: bad %s value %q", text, k, v)
		}
	}
	if err := l.validate(); err != nil {
		return Latency{}, err
	}
	return l, nil
}

// Expect is the outcome a scenario pins: the verdict class plus optional
// round and simulated-time bounds. Zero-valued bounds are unchecked.
type Expect struct {
	// Verdict is the expected verdict class: VerdictPass, a violation class,
	// or "law:<name>" for a law violation.
	Verdict string
	// Rounds, when positive, is the exact number of rounds the engine must
	// execute. Rounds are engine-independent for the order-insensitive fault
	// scripts scenarios carry, so one value pins all engines.
	Rounds int
	// DecideRoundMax, when positive, is the latest round any process may
	// decide in.
	DecideRoundMax int
	// SimTime, when positive, is the exact simulated completion time
	// (relative tolerance 1e-9). Checked on timed engines only: the round
	// engines execute the same run but do not price it.
	SimTime float64
	// SimTimeMax, when positive, is an upper bound on the simulated
	// completion time. Checked on timed engines only.
	SimTimeMax float64
}

// validVerdict reports whether v names a known verdict class.
func validVerdict(v string) bool {
	switch v {
	case VerdictPass, VerdictValidity, VerdictAgreement, VerdictTermination,
		VerdictRoundBound, VerdictNoProgress, VerdictError:
		return true
	}
	return strings.HasPrefix(v, lawPrefix) && len(v) > len(lawPrefix)
}

// Scenario is one declarative scenario: a named consensus run with its
// expected outcome. The zero value is not valid; build scenarios through
// Parse (or fill the fields and Validate).
type Scenario struct {
	// Name identifies the scenario: lowercase slash-separated path segments
	// ("crash/worst-case-n8-f2"). In a catalog directory the name must equal
	// the file's relative path without the .scenario extension.
	Name string
	// Info is a free-text one-line description.
	Info string
	// Protocol is "crw", "earlystop" or "floodset".
	Protocol string
	// N is the system size.
	N int
	// T is the resilience bound of the classic baselines; 0 defaults to N-1.
	T int
	// Proposals overrides the default proposal vector (100+i); nil uses the
	// default, otherwise the length must equal N.
	Proposals []int64
	// OrderAscending enables the ascending-commit-order ablation (CRW only):
	// the historical round-bound-violation counterexamples replay under it.
	OrderAscending bool
	// CommitAsData enables the commit-as-data ablation (CRW only): the
	// historical agreement-violation counterexamples replay under it.
	CommitAsData bool
	// Engines restricts the engines the scenario runs on (registry kinds,
	// sorted). Nil means every registered engine that supports the scenario
	// (a latency model restricts it to timed engines automatically).
	Engines []string
	// Latency is the latency model of the run (zero = none); a non-zero
	// latency restricts the scenario to timed engines.
	Latency Latency
	// Faults is the fault script in the fuzzer's replay grammar
	// ("p<proc>@r<round>:<mask>/<ctrl>", ":so:", ":ro:" events, ';'-joined;
	// "" is failure-free), stored in canonical event order.
	Faults string
	// Expect pins the outcome.
	Expect Expect
}

// field serialization order of String; also the closed set of known keys.
var fieldOrder = []string{
	"scenario", "info", "protocol", "n", "t", "proposals",
	"order", "commit-as-data", "engines", "latency", "faults",
	"expect", "rounds", "decide-round-max", "simtime", "simtime-max",
}

// String renders the scenario in canonical form: known keys in fixed order,
// defaults omitted, fault script in canonical event order. Parse(String())
// reproduces the value exactly, and String(Parse(String())) is a fixpoint.
func (s *Scenario) String() string {
	var b strings.Builder
	w := func(key, val string) {
		if val != "" {
			fmt.Fprintf(&b, "%s: %s\n", key, val)
		}
	}
	w("scenario", s.Name)
	w("info", s.Info)
	w("protocol", s.Protocol)
	w("n", strconv.Itoa(s.N))
	if s.T != 0 {
		w("t", strconv.Itoa(s.T))
	}
	if s.Proposals != nil {
		parts := make([]string, len(s.Proposals))
		for i, p := range s.Proposals {
			parts[i] = strconv.FormatInt(p, 10)
		}
		w("proposals", strings.Join(parts, ","))
	}
	if s.OrderAscending {
		w("order", "asc")
	}
	if s.CommitAsData {
		w("commit-as-data", "true")
	}
	w("engines", strings.Join(s.Engines, ","))
	w("latency", s.Latency.String())
	w("faults", s.Faults)
	w("expect", s.Expect.Verdict)
	if s.Expect.Rounds != 0 {
		w("rounds", strconv.Itoa(s.Expect.Rounds))
	}
	if s.Expect.DecideRoundMax != 0 {
		w("decide-round-max", strconv.Itoa(s.Expect.DecideRoundMax))
	}
	if s.Expect.SimTime != 0 {
		w("simtime", g(s.Expect.SimTime))
	}
	if s.Expect.SimTimeMax != 0 {
		w("simtime-max", g(s.Expect.SimTimeMax))
	}
	return b.String()
}

// Parse decodes a scenario file. The parser is strict: every line is blank,
// a '#' comment, or "key: value" with a known key; keys may not repeat;
// required keys (scenario, n, expect) must be present; every value is
// validated, including the fault script against the system size.
func Parse(text string) (*Scenario, error) {
	s := &Scenario{}
	seen := map[string]bool{}
	known := map[string]bool{}
	for _, k := range fieldOrder {
		known[k] = true
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("scenario: line %d: %q is not \"key: value\"", ln+1, line)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !known[key] {
			return nil, fmt.Errorf("scenario: line %d: unknown key %q", ln+1, key)
		}
		if seen[key] {
			return nil, fmt.Errorf("scenario: line %d: duplicate key %q", ln+1, key)
		}
		seen[key] = true
		if val == "" {
			return nil, fmt.Errorf("scenario: line %d: key %q has no value", ln+1, key)
		}
		if err := s.set(key, val); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", ln+1, err)
		}
	}
	for _, req := range []string{"scenario", "n", "expect"} {
		if !seen[req] {
			return nil, fmt.Errorf("scenario: required key %q missing", req)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// set assigns one parsed key.
func (s *Scenario) set(key, val string) error {
	atoi := func(what string) (int, error) {
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("scenario: bad %s %q", what, val)
		}
		return v, nil
	}
	var err error
	switch key {
	case "scenario":
		s.Name = val
	case "info":
		s.Info = val
	case "protocol":
		s.Protocol = val
	case "n":
		s.N, err = atoi("n")
	case "t":
		s.T, err = atoi("t")
	case "proposals":
		for _, p := range strings.Split(val, ",") {
			v, perr := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if perr != nil {
				return fmt.Errorf("scenario: bad proposal %q", p)
			}
			s.Proposals = append(s.Proposals, v)
		}
	case "order":
		switch val {
		case "asc":
			s.OrderAscending = true
		case "desc":
			// The default; accepted for explicitness, omitted by String.
		default:
			return fmt.Errorf("scenario: bad order %q (want asc or desc)", val)
		}
	case "commit-as-data":
		switch val {
		case "true":
			s.CommitAsData = true
		case "false":
		default:
			return fmt.Errorf("scenario: bad commit-as-data %q (want true or false)", val)
		}
	case "engines":
		for _, e := range strings.Split(val, ",") {
			s.Engines = append(s.Engines, strings.TrimSpace(e))
		}
	case "latency":
		s.Latency, err = parseLatency(val)
	case "faults":
		s.Faults = val
	case "expect":
		s.Expect.Verdict = val
	case "rounds":
		s.Expect.Rounds, err = atoi("rounds")
	case "decide-round-max":
		s.Expect.DecideRoundMax, err = atoi("decide-round-max")
	case "simtime":
		s.Expect.SimTime, err = parseFinite(val, "simtime")
	case "simtime-max":
		s.Expect.SimTimeMax, err = parseFinite(val, "simtime-max")
	}
	return err
}

// parseFinite parses a float and rejects non-finite values (they could not
// round-trip through the canonical form).
func parseFinite(val, what string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("scenario: bad %s %q", what, val)
	}
	return f, nil
}

// validName reports whether a scenario name is well-formed: non-empty
// lowercase path segments of [a-z0-9._-] joined by '/', no segment empty,
// leading with an alphanumeric, or equal to "." / "..".
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, seg := range strings.Split(name, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
		if c := seg[0]; (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
		for _, c := range seg {
			switch {
			case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
			default:
				return false
			}
		}
	}
	return true
}

// Validate checks the scenario's internal consistency: the name shape, the
// protocol, size and bound ranges, ablation applicability, the engine list,
// the latency model, the expectation, and the fault script (parsed, canonical,
// and within the system size). Parse calls it; hand-built scenarios must too.
func (s *Scenario) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("scenario: bad name %q (want lowercase [a-z0-9._-] path segments joined by '/')", s.Name)
	}
	switch s.Protocol {
	case "", "crw", "earlystop", "floodset":
	default:
		return fmt.Errorf("scenario %q: unknown protocol %q (want crw, earlystop or floodset)", s.Name, s.Protocol)
	}
	if s.N < 1 {
		return fmt.Errorf("scenario %q: n=%d must be at least 1", s.Name, s.N)
	}
	if s.T < 0 || s.T >= s.N && s.T != 0 {
		return fmt.Errorf("scenario %q: t=%d out of range (0 < t < n, or 0 for the default n-1)", s.Name, s.T)
	}
	if s.Proposals != nil && len(s.Proposals) != s.N {
		return fmt.Errorf("scenario %q: %d proposals for %d processes", s.Name, len(s.Proposals), s.N)
	}
	if (s.OrderAscending || s.CommitAsData) && s.Protocol != "" && s.Protocol != "crw" {
		return fmt.Errorf("scenario %q: the order/commit-as-data ablations apply to the crw protocol only", s.Name)
	}
	if len(s.Engines) > 0 {
		sorted := append([]string(nil), s.Engines...)
		sort.Strings(sorted)
		for i, e := range sorted {
			if e == "" || e == "all" {
				return fmt.Errorf("scenario %q: bad engine %q (omit the engines key to run on all engines)", s.Name, e)
			}
			if i > 0 && sorted[i-1] == e {
				return fmt.Errorf("scenario %q: duplicate engine %q", s.Name, e)
			}
		}
		if !sort.StringsAreSorted(s.Engines) {
			return fmt.Errorf("scenario %q: engines must be listed in sorted order (canonical form)", s.Name)
		}
	}
	if err := s.Latency.validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if !validVerdict(s.Expect.Verdict) {
		return fmt.Errorf("scenario %q: unknown expect %q (want pass, validity, agreement, termination, round-bound, no-progress, error or law:<name>)",
			s.Name, s.Expect.Verdict)
	}
	if s.Expect.Rounds < 0 || s.Expect.DecideRoundMax < 0 {
		return fmt.Errorf("scenario %q: negative round expectation", s.Name)
	}
	if s.Expect.SimTime < 0 || s.Expect.SimTimeMax < 0 {
		return fmt.Errorf("scenario %q: negative simtime expectation", s.Name)
	}
	if (s.Expect.SimTime > 0 || s.Expect.SimTimeMax > 0) && len(s.Engines) > 0 && !contains(s.Engines, "timed") {
		return fmt.Errorf("scenario %q: simtime expectations need a timed engine in the engines list", s.Name)
	}
	script, err := fuzz.Parse(s.Faults)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	if canon := script.String(); canon != s.Faults {
		return fmt.Errorf("scenario %q: fault script is not in canonical event order (want %q)", s.Name, canon)
	}
	return validateScript(s.Name, script, s.N)
}

// contains reports whether list holds v.
func contains(list []string, v string) bool {
	for _, e := range list {
		if e == v {
			return true
		}
	}
	return false
}

// validateScript applies the same script-vs-system-size rules the public
// replay path enforces: every event names an existing process, control
// prefixes and receive masks fit, and a survivor remains.
func validateScript(name string, script fuzz.Script, n int) error {
	for _, e := range script.Events {
		if e.Proc > n {
			return fmt.Errorf("scenario %q: fault script names nonexistent p%d (n=%d)", name, e.Proc, n)
		}
		if e.Kind == fuzz.EventCrash && e.Ctrl > n-1 {
			return fmt.Errorf("scenario %q: control prefix %d of p%d out of range (0..%d)", name, e.Ctrl, e.Proc, n-1)
		}
		if len(e.From) > n {
			return fmt.Errorf("scenario %q: receive-omission mask of p%d names %d senders (n=%d)", name, e.Proc, len(e.From), n)
		}
	}
	if script.Crashes() >= n {
		return fmt.Errorf("scenario %q: fault script crashes all %d processes; a run needs a survivor", name, n)
	}
	return nil
}

// Script returns the parsed fault script. The scenario must have passed
// Validate (Parse guarantees it); an unparsable script panics.
func (s *Scenario) Script() fuzz.Script {
	script, err := fuzz.Parse(s.Faults)
	if err != nil {
		panic(fmt.Sprintf("scenario %q: invalid script after validation: %v", s.Name, err))
	}
	return script
}

// ConsensusOnly reports whether the scenario is judged on the consensus
// properties alone, without the protocol's round bound: omission scripts and
// out-of-bound (timing-fault) latency models break the crash-model theorems
// the bounds come from, exactly as the fuzzer judges such campaigns.
func (s *Scenario) ConsensusOnly() bool {
	return s.Script().Omissions() > 0 || !s.Latency.WithinBound()
}

// Outcome is what one engine observed running a scenario, in the shape
// Check compares against the expectation.
type Outcome struct {
	// Verdict is the observed verdict class (Classify of the oracle error).
	Verdict string
	// Rounds is the number of rounds the engine executed.
	Rounds int
	// MaxDecideRound is the latest decision round (0 if nobody decided).
	MaxDecideRound int
	// SimTime is the simulated completion time; meaningful only when Timed.
	SimTime float64
	// Timed reports whether the engine prices executions (SimTime checks
	// apply only then; round engines run the same schedule unpriced).
	Timed bool
}

// Classify maps an oracle verdict error onto its verdict class: nil is
// VerdictPass, law violations are "law:<name>", the consensus violations map
// to their class, horizon exhaustion to VerdictNoProgress, anything else to
// VerdictError.
func Classify(err error) string {
	switch {
	case err == nil:
		return VerdictPass
	case laws.Of(err) != "":
		return lawPrefix + laws.Of(err)
	case errors.Is(err, check.ErrValidity):
		return VerdictValidity
	case errors.Is(err, check.ErrAgreement):
		return VerdictAgreement
	case errors.Is(err, check.ErrTermination):
		return VerdictTermination
	case errors.Is(err, check.ErrRoundBound):
		return VerdictRoundBound
	case errors.Is(err, sim.ErrNoProgress):
		return VerdictNoProgress
	default:
		return VerdictError
	}
}

// Check compares an observed outcome against the scenario's expectation. On
// divergence it returns an error naming the scenario, the file it came from,
// the engine, the diverging field, and the observed-vs-expected values — the
// deterministic diff CI prints when a catalog entry regresses.
func (s *Scenario) Check(file, engine string, o Outcome) error {
	diff := func(field string, got, want any) error {
		return fmt.Errorf("scenario %q (%s) on engine %s: %s %v, expected %v",
			s.Name, file, engine, field, got, want)
	}
	if o.Verdict != s.Expect.Verdict {
		return diff("verdict", o.Verdict, s.Expect.Verdict)
	}
	if s.Expect.Rounds > 0 && o.Rounds != s.Expect.Rounds {
		return diff("rounds", o.Rounds, s.Expect.Rounds)
	}
	if s.Expect.DecideRoundMax > 0 && o.MaxDecideRound > s.Expect.DecideRoundMax {
		return diff("decide round", o.MaxDecideRound, fmt.Sprintf("<= %d", s.Expect.DecideRoundMax))
	}
	if o.Timed {
		if want := s.Expect.SimTime; want > 0 {
			if rel := math.Abs(o.SimTime-want) / want; rel > 1e-9 {
				return diff("simtime", g(o.SimTime), g(want))
			}
		}
		if max := s.Expect.SimTimeMax; max > 0 && o.SimTime > max {
			return diff("simtime", g(o.SimTime), fmt.Sprintf("<= %s", g(max)))
		}
	}
	return nil
}
