package timed_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/consensus/earlystop"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/lan"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/trace"
)

// crwSystem builds a CRW process set with canonical proposals.
func crwSystem(n int) ([]sim.Process, []sim.Value) {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	return core.NewSystem(props, core.Options{}), props
}

func TestFailureFreeDecidesInOneRound(t *testing.T) {
	procs, _ := crwSystem(6)
	eng, err := timed.New(timed.Config{Model: sim.ModelExtended}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 || res.MaxDecideRound() != 1 {
		t.Errorf("rounds=%d decide=%d, want decide and halt in round 1", res.Rounds, res.MaxDecideRound())
	}
	if len(res.Decisions) != 6 {
		t.Errorf("%d deciders, want 6", len(res.Decisions))
	}
	// Default model: D=1, δ=0.1 → SimTime = rounds·1.1.
	want := float64(res.Rounds) * 1.1
	if math.Abs(res.SimTime-want) > 1e-9 {
		t.Errorf("SimTime = %g, want %g", res.SimTime, want)
	}
}

// TestSimTimeMatchesAnalyticCost pins the paper's claim the engine makes
// executable: under worst-case coordinator crashes the extended model's
// measured completion time is exactly rounds·(D+δ), and the classic model's
// exactly rounds·D.
func TestSimTimeMatchesAnalyticCost(t *testing.T) {
	const d, delta = 1.0, 0.25
	for f := 0; f <= 3; f++ {
		procs, _ := crwSystem(6)
		eng, err := timed.New(timed.Config{
			Model:   sim.ModelExtended,
			Latency: timed.Fixed{D: d, Delta: delta},
		}, procs, adversary.CoordinatorKiller{F: f})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxDecideRound() != sim.Round(f+1) {
			t.Errorf("f=%d: decide round %d, want %d", f, res.MaxDecideRound(), f+1)
		}
		want := float64(res.Rounds) * (d + delta)
		if math.Abs(res.SimTime-want) > 1e-9 {
			t.Errorf("f=%d: SimTime %g, want rounds·(D+δ) = %g", f, res.SimTime, want)
		}
	}

	// Classic model: the round lasts D; δ is not paid.
	props := []sim.Value{7, 7, 7, 7}
	es := earlystop.NewSystem(props, 3, 64)
	eng, err := timed.New(timed.Config{
		Model:   sim.ModelClassic,
		Latency: timed.Fixed{D: d, Delta: delta},
	}, es, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.Rounds) * d
	if math.Abs(res.SimTime-want) > 1e-9 {
		t.Errorf("classic: SimTime %g, want rounds·D = %g", res.SimTime, want)
	}
}

// TestWithinBoundJitterIsSemanticallyInvisible: jitter that never exceeds
// the bound wiggles message timing but cannot change decisions, rounds or
// counters — and produces no late messages.
func TestWithinBoundJitterIsSemanticallyInvisible(t *testing.T) {
	mk := func(lat timed.LatencyModel) *sim.Result {
		procs, _ := crwSystem(5)
		eng, err := timed.New(timed.Config{Model: sim.ModelExtended, Latency: lat},
			procs, adversary.CoordinatorKiller{F: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fixed := mk(timed.Fixed{D: 1, Delta: 0.1})
	jit := timed.Jitter{D: 1, Delta: 0.1, Floor: 0.2, Spread: 0.7, Seed: 42}
	if !jit.WithinBound() {
		t.Fatal("test jitter model should be within bound")
	}
	jres := mk(jit)
	if jres.Counters.Late != 0 {
		t.Errorf("within-bound jitter produced %d late messages", jres.Counters.Late)
	}
	if jres.Rounds != fixed.Rounds || jres.Counters != fixed.Counters ||
		len(jres.Decisions) != len(fixed.Decisions) {
		t.Errorf("within-bound jitter changed semantics: %+v vs %+v", jres, fixed)
	}
	for id, v := range fixed.Decisions {
		if jres.Decisions[id] != v || jres.DecideRound[id] != fixed.DecideRound[id] {
			t.Errorf("p%d: decision %d@r%d vs %d@r%d", id,
				jres.Decisions[id], jres.DecideRound[id], v, fixed.DecideRound[id])
		}
	}
}

// TestOutOfBoundJitterProducesTimingFaults: a jitter spread beyond the
// synchrony slack makes some messages late, which surface as
// Counters.Late — transmitted but never delivered.
func TestOutOfBoundJitterProducesTimingFaults(t *testing.T) {
	procs, _ := crwSystem(8)
	lat := timed.Jitter{D: 1, Delta: 0.1, Floor: 0.5, Spread: 1.5, Seed: 7}
	if lat.WithinBound() {
		t.Fatal("test jitter model should exceed the bound")
	}
	eng, err := timed.New(timed.Config{Model: sim.ModelExtended, Horizon: 20, Latency: lat},
		procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := eng.Run()
	if res.Counters.Late == 0 {
		t.Error("out-of-bound jitter produced no late messages")
	}
	// Late messages are accounted as transmitted: data+ctrl counts include
	// them, and the late count never exceeds the transmitted total.
	if res.Counters.Late > res.Counters.TotalMsgs() {
		t.Errorf("late %d > transmitted %d", res.Counters.Late, res.Counters.TotalMsgs())
	}
}

func TestProfileLatencyWithinBound(t *testing.T) {
	for _, p := range lan.Profiles() {
		m := timed.Profile{P: p, Bits: 64}
		d, delta := m.Params()
		if got := m.Latency(1, 2, 1, sim.Data); got > d {
			t.Errorf("%s: data latency %g exceeds D %g", p.Name, float64(got), float64(d))
		}
		if got := m.Latency(1, 2, 1, sim.Control); got > d+delta {
			t.Errorf("%s: ctrl latency %g exceeds D+δ %g", p.Name, float64(got), float64(delta))
		}
		procs, _ := crwSystem(4)
		eng, err := timed.New(timed.Config{Model: sim.ModelExtended, Latency: m},
			procs, adversary.CoordinatorKiller{F: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.Counters.Late != 0 {
			t.Errorf("%s: %d late messages on an in-bound profile", p.Name, res.Counters.Late)
		}
		want := float64(res.Rounds) * (p.D(64) + p.Delta())
		if math.Abs(res.SimTime-want) > want*1e-9 {
			t.Errorf("%s: SimTime %g, want %g", p.Name, res.SimTime, want)
		}
	}
}

func TestHorizonExhaustion(t *testing.T) {
	// Two silent coordinator crashes force a round-3 decision; a horizon of
	// 2 must end with ErrNoProgress and a partial result over exactly the
	// horizon rounds, matching the round engines' contract.
	procs, _ := crwSystem(5)
	eng, err := timed.New(timed.Config{Model: sim.ModelExtended, Horizon: 2},
		procs, adversary.CoordinatorKiller{F: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if res.Rounds != 2 || res.Counters.Rounds != 2 {
		t.Errorf("partial result rounds = %d/%d, want 2", res.Rounds, res.Counters.Rounds)
	}
}

func TestTraceRecordsTimedEvents(t *testing.T) {
	log := trace.New()
	procs, _ := crwSystem(3)
	eng, err := timed.New(timed.Config{Model: sim.ModelExtended, Trace: log},
		procs, adversary.CoordinatorKiller{F: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	out := log.String()
	for _, want := range []string{"send", "deliver", "decide", "crash", "t="} {
		if !strings.Contains(out, want) {
			t.Errorf("transcript lacks %q:\n%s", want, out)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	procs, _ := crwSystem(3)
	if _, err := timed.New(timed.Config{}, nil, adversary.None{}); err == nil {
		t.Error("accepted empty process set")
	}
	if _, err := timed.New(timed.Config{}, procs, nil); err == nil {
		t.Error("accepted nil adversary")
	}
	if _, err := timed.New(timed.Config{Latency: timed.Fixed{D: 0}}, procs, adversary.None{}); err == nil {
		t.Error("accepted non-positive D")
	}
	if _, err := timed.New(timed.Config{Latency: timed.Fixed{D: 1, Delta: -0.1}}, procs, adversary.None{}); err == nil {
		t.Error("accepted negative δ")
	}
	eng, err := timed.New(timed.Config{}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Error("second Run on a single-use engine did not error")
	}
}

func TestControlInClassicRejected(t *testing.T) {
	procs, _ := crwSystem(3) // CRW emits control messages
	eng, err := timed.New(timed.Config{Model: sim.ModelClassic}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); !errors.Is(err, sim.ErrControlInClassic) {
		t.Errorf("err = %v, want ErrControlInClassic", err)
	}
}

// TestJitterLatencyIsPure pins the property every latency model must have:
// repeated sampling of the same message yields the same latency, regardless
// of order or interleaving.
func TestJitterLatencyIsPure(t *testing.T) {
	m := timed.Jitter{D: 1, Delta: 0.1, Floor: 0.1, Spread: 0.8, Seed: 99}
	a := m.Latency(3, 5, 2, sim.Data)
	_ = m.Latency(1, 2, 1, sim.Control) // interleave another sample
	if b := m.Latency(3, 5, 2, sim.Data); a != b {
		t.Errorf("latency not pure: %g then %g", float64(a), float64(b))
	}
	if c := m.Latency(5, 3, 2, sim.Data); c == a {
		t.Log("note: symmetric pair hashed equal (allowed, just unlikely)")
	}
	lo, _ := m.Params()
	for from := sim.ProcID(1); from <= 8; from++ {
		for to := sim.ProcID(1); to <= 8; to++ {
			l := m.Latency(from, to, 1, sim.Data)
			if l < m.Floor || l >= m.Floor+m.Spread {
				t.Errorf("latency %g outside [floor, floor+spread)", float64(l))
			}
			_ = lo
		}
	}
}

// TestDESCancelUnusedTimer exercises the des cancellation path from the
// engine's package (the timed engine's substrate): a superseded timer must
// neither fire nor linger in Pending.
func TestDESCancelUnusedTimer(t *testing.T) {
	var s des.Sim
	fired := false
	h := s.At(5, func() { fired = true })
	s.At(1, func() {
		if !h.Cancel() {
			t.Error("cancel of a pending timer reported false")
		}
	})
	s.Run(des.Infinity)
	if fired {
		t.Error("cancelled timer fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", s.Pending())
	}
}
