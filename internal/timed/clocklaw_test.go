package timed

// This file is in-package (not timed_test) so it can reach the engine's
// embedded des.Sim and plant the LIFOTies mutation end-to-end: a mangled
// tie-break key inside the event core must surface as Result.ClockViolation,
// which internal/laws then classifies as the clock law.

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/laws"
	"repro/internal/sim"
)

func clockLawSystem(n int) []sim.Process {
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	return core.NewSystem(props, core.Options{})
}

func TestPlantedLIFOTiesSurfacesClockViolation(t *testing.T) {
	eng, err := New(Config{Model: sim.ModelExtended}, clockLawSystem(5), adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	eng.ds.LIFOTies = true
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("planted tie reorder aborted the run: %v", err)
	}
	if res.ClockViolation == "" {
		t.Fatal("LIFOTies mutation produced no ClockViolation")
	}
	if !strings.Contains(res.ClockViolation, "FIFO tie order violated") {
		t.Errorf("ClockViolation = %q, want FIFO tie violation", res.ClockViolation)
	}
	aerr := laws.Audit(res)
	if laws.Of(aerr) != laws.LawClock {
		t.Errorf("laws.Audit classified the violation as %q (%v), want %q",
			laws.Of(aerr), aerr, laws.LawClock)
	}
}

func TestCleanRunHasNoClockViolation(t *testing.T) {
	eng, err := New(Config{Model: sim.ModelExtended}, clockLawSystem(5), adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ClockViolation != "" {
		t.Errorf("clean run reported ClockViolation %q", res.ClockViolation)
	}
	if err := laws.Audit(res); err != nil {
		t.Errorf("laws.Audit on clean timed run: %v", err)
	}
}
