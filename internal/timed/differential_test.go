package timed_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/consensus/earlystop"
	"repro/internal/consensus/floodset"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/timed"
)

// randomMixedSpec builds a random but order-insensitive mixed
// crash+omission adversary: scripted crash plans (legal truncations only)
// plus scripted omission plans strictly before any crash of the same
// process. Pure functions of (process, round), so both engines see
// identical fault behaviour.
func randomMixedSpec(rng *rand.Rand, n int) sim.Adversary {
	crashes := map[sim.ProcID]adversary.CrashPlan{}
	omissions := map[sim.ProcID][]adversary.OmissionPlan{}
	perm := rng.Perm(n)
	nCrash := rng.Intn(n) // 0..n-1 crashes: somebody survives
	for i := 0; i < nCrash; i++ {
		p := sim.ProcID(perm[i] + 1)
		cp := adversary.CrashPlan{Round: sim.Round(rng.Intn(n) + 2)}
		if rng.Intn(2) == 0 {
			mask := make([]bool, rng.Intn(n))
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			cp.DataMask = mask
		} else {
			cp.DeliverAllData = true
			cp.CtrlPrefix = rng.Intn(n)
		}
		crashes[p] = cp
	}
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			continue
		}
		p := sim.ProcID(i + 1)
		maxRound := n + 1
		if cp, ok := crashes[p]; ok {
			maxRound = int(cp.Round) - 1
		}
		if maxRound < 1 {
			continue
		}
		op := adversary.OmissionPlan{Round: sim.Round(rng.Intn(maxRound) + 1)}
		switch rng.Intn(3) {
		case 0:
			op.DropAllSend = true
		case 1:
			op.DropAllRecv = true
		default:
			mask := make([]bool, n)
			for j := range mask {
				mask[j] = rng.Intn(2) == 1
			}
			op.Recv = mask
		}
		omissions[p] = append(omissions[p], op)
	}
	if len(omissions) == 0 {
		if len(crashes) == 0 {
			return adversary.None{}
		}
		return adversary.NewScript(crashes)
	}
	return adversary.Combine(adversary.NewScript(crashes), adversary.NewOmissionScript(n, omissions))
}

// diffResults compares every semantic field of two engine results except
// SimTime (the one field only continuous-time engines produce).
func diffResults(t *testing.T, label string, got, want *sim.Result) bool {
	t.Helper()
	ok := true
	if got.Rounds != want.Rounds {
		t.Logf("%s: rounds %d vs %d", label, got.Rounds, want.Rounds)
		ok = false
	}
	if len(got.Decisions) != len(want.Decisions) {
		t.Logf("%s: %d vs %d deciders", label, len(got.Decisions), len(want.Decisions))
		ok = false
	}
	for id, v := range want.Decisions {
		if got.Decisions[id] != v || got.DecideRound[id] != want.DecideRound[id] {
			t.Logf("%s: p%d decided %d@r%d vs %d@r%d", label, id,
				got.Decisions[id], got.DecideRound[id], v, want.DecideRound[id])
			ok = false
		}
	}
	if len(got.Crashed) != len(want.Crashed) {
		t.Logf("%s: crash sets %v vs %v", label, got.Crashed, want.Crashed)
		ok = false
	}
	for id, r := range want.Crashed {
		if got.Crashed[id] != r {
			t.Logf("%s: p%d crash round %d vs %d", label, id, got.Crashed[id], r)
			ok = false
		}
	}
	if len(got.Omissive) != len(want.Omissive) {
		t.Logf("%s: omissive sets %v vs %v", label, got.Omissive, want.Omissive)
		ok = false
	}
	for id, c := range want.Omissive {
		if got.Omissive[id] != c {
			t.Logf("%s: p%d omissive rounds %d vs %d", label, id, got.Omissive[id], c)
			ok = false
		}
	}
	if got.Counters != want.Counters {
		t.Logf("%s: counters %s vs %s", label, got.Counters.String(), want.Counters.String())
		ok = false
	}
	return ok
}

// TestTimedDifferentialAgainstDeterministic is the engine differential the
// timed substrate must pass to be registered at all: for random mixed
// crash+omission schedules across all three protocols, the continuous-time
// execution under any within-bound latency model is bit-identical to the
// deterministic round engine — same decisions, decide rounds, crash and
// omission bookkeeping, traffic counters, and run verdict. Only SimTime
// differs (it is the point of the engine). scripts/verify.sh runs this
// under -race.
func TestTimedDifferentialAgainstDeterministic(t *testing.T) {
	latencies := []timed.LatencyModel{
		nil, // engine default
		timed.Fixed{D: 2, Delta: 0.5},
		timed.Jitter{D: 1, Delta: 0.2, Floor: 0.1, Spread: 0.85, Seed: 5},
	}
	prop := func(seed int64, nRaw, protoRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%8) + 3
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(rng.Intn(1000))
		}
		model := sim.ModelExtended
		mkProcs := func() []sim.Process {
			switch protoRaw % 3 {
			case 1:
				return earlystop.NewSystem(props, n-1, 64)
			case 2:
				return floodset.NewSystem(props, n-1, 64)
			default:
				return core.NewSystem(props, core.Options{})
			}
		}
		if protoRaw%3 != 0 {
			model = sim.ModelClassic
		}
		horizon := sim.Round(n + 2)

		mkAdv := func() sim.Adversary {
			return randomMixedSpec(rand.New(rand.NewSource(seed)), n)
		}

		ref, err := sim.NewEngine(sim.Config{Model: model, Horizon: horizon}, mkProcs(), mkAdv())
		if err != nil {
			t.Log(err)
			return false
		}
		want, wantErr := ref.Run()

		for li, lat := range latencies {
			eng, err := timed.New(timed.Config{Model: model, Horizon: horizon, Latency: lat},
				mkProcs(), mkAdv())
			if err != nil {
				t.Log(err)
				return false
			}
			got, gotErr := eng.Run()
			if (gotErr == nil) != (wantErr == nil) {
				t.Logf("seed=%d n=%d proto=%d lat=%d: err %v vs %v", seed, n, protoRaw%3, li, gotErr, wantErr)
				return false
			}
			if got.Counters.Late != 0 {
				t.Logf("seed=%d: within-bound model %d produced %d late messages", seed, li, got.Counters.Late)
				return false
			}
			if got.SimTime <= 0 {
				t.Logf("seed=%d: timed engine reported SimTime %g", seed, got.SimTime)
				return false
			}
			if !diffResults(t, "timed vs deterministic", got, want) {
				t.Logf("seed=%d n=%d proto=%d lat=%d diverged", seed, n, protoRaw%3, li)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
