// Package timed is a continuous-time consensus engine: it executes the same
// sim.Process state machines as the round-based engines (internal/sim,
// internal/lockstep), under the same sim.Adversary / sim.Omitter fault
// interfaces, but on a discrete-event simulation (internal/des) in which
// every data and control message is a timed event priced by a pluggable
// LatencyModel.
//
// Round boundaries emerge from timers rather than lockstep barriers: a round
// starts at simulated time T, each alive process executes its send phase and
// every transmitted message is scheduled to arrive at T plus its sampled
// latency; one deadline sweep fires at the round deadline T + D (classic
// model) or T + D + δ (extended model), delivers whatever arrived in time to
// each process in id order, and runs the local computation phases. The
// paper's timing claim — an (f+1)-round extended run costs (f+1)(D+δ)
// against min(f+2, t+1)·D classically — thereby becomes executable:
// sim.Result.SimTime is measured from the event clock, not derived
// analytically.
//
// Synchrony is an assumption the latency model may violate: a data message
// whose latency exceeds D, or a control message whose latency exceeds D + δ,
// is a timing fault. The engine maps it to a receive omission — the message
// was transmitted but its destination never sees it (metrics.Counters.Late)
// — which is exactly how partial synchrony degrades into the omission fault
// model of the round engines.
//
// When every latency respects the bound the engine is semantically identical
// to internal/sim, bit for bit: same decisions, decide rounds, crash and
// omission bookkeeping, and traffic counters. The differential tests and the
// sweep harness's CrossCheck mode enforce this; only SimTime distinguishes
// the engines.
//
// The hot path is built for reuse: message arrivals ride pooled delivery
// records (des.Action) instead of per-message closures, the per-round
// deadline is one batched sweep event instead of n per-process timers, inbox
// scratch is recycled across rounds, and Reset rewinds an Engine — including
// its des.Sim and every pool — for the next job without reallocating.
package timed

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config configures a timed execution.
type Config struct {
	// Model selects classic or extended semantics (round duration D vs D+δ).
	Model sim.Model
	// Horizon bounds the number of rounds; zero defaults to n + 2.
	Horizon sim.Round
	// Trace, if non-nil, receives the execution transcript (with simulated
	// timestamps in the details).
	Trace *trace.Log
	// Latency prices messages and fixes the synchrony bound; nil uses
	// DefaultModel.
	Latency LatencyModel
	// Telemetry, if non-nil, receives run/round spans on event-clock time,
	// per-round traffic series, and — through the engine's des.Sim — event-
	// batch spans and heap/pool samples on the DES track. The nil path costs
	// nothing.
	Telemetry *telemetry.Recorder
}

// Engine executes one job on the discrete-event clock. A fresh engine (New)
// runs one job; Reset rearms it for the next job while keeping every buffer,
// which is what lets the harness mark the timed engine Reusable.
type Engine struct {
	cfg   Config
	procs []sim.Process
	adv   sim.Adversary
	omit  sim.Omitter
	lat   LatencyModel

	d, delta des.Time
	roundDur des.Time

	alive    []bool
	halted   []bool
	decided  []bool
	decVal   []sim.Value
	decRnd   []sim.Round
	crashRnd []sim.Round
	omitCnt  []int
	recvOmit [][]bool
	inbox    [][]sim.Message

	aliveUnhalted int
	nDecided      int
	nCrashed      int
	ctr           metrics.Counters
	led           metrics.Ledger

	// Pooled arrival records: one per in-flight message, recycled the moment
	// the message is delivered. freeDel is the free list; allDel pins every
	// record ever allocated so Reset can reclaim the ones still in flight
	// when a run is cut short.
	freeDel []*delivery
	allDel  []*delivery
	// sweepAct is the single per-round deadline event, reused every round
	// (at most one is ever outstanding).
	sweepAct sweepAction

	ds     des.Sim
	rounds sim.Round
	err    error
	ran    bool

	// Telemetry bookkeeping: the open round's start time and the counter
	// snapshots backing per-round deltas. Touched only when recording.
	roundOpenT des.Time
	telCtr     metrics.Counters
	telLed     metrics.Ledger
}

// delivery is a pooled message arrival: the allocation-free replacement for
// the per-message `func() { e.arrive(m) }` closure.
type delivery struct {
	e *Engine
	m sim.Message
}

// Act implements des.Action: deliver the message and recycle the record. The
// record is released before delivery (mirroring des.Sim.Run) so nothing
// dangles if arrive ends the run.
func (d *delivery) Act() {
	e, m := d.e, d.m
	e.freeDel = append(e.freeDel, d)
	e.arrive(m)
}

// sweepAction is the batched round-deadline event: one timer per round in
// place of n per-process receive timers plus a controller.
type sweepAction struct {
	e *Engine
	r sim.Round
}

// Act implements des.Action.
func (s *sweepAction) Act() { s.e.sweep(s.r) }

// New builds a timed engine over the given processes (ids 1..n in order).
func New(cfg Config, procs []sim.Process, adv sim.Adversary) (*Engine, error) {
	e := &Engine{}
	e.sweepAct.e = e
	if err := e.init(cfg, procs, adv); err != nil {
		return nil, err
	}
	return e, nil
}

// Reset rearms the engine for a new job, keeping the event pool, the heap,
// the inbox scratch and the delivery records of previous runs. On error the
// engine is unchanged and still holds its previous (consumed) job.
func (e *Engine) Reset(cfg Config, procs []sim.Process, adv sim.Adversary) error {
	return e.init(cfg, procs, adv)
}

// init validates and installs a job; shared by New and Reset. Validation
// happens before any mutation so a failed Reset leaves the engine intact.
func (e *Engine) init(cfg Config, procs []sim.Process, adv sim.Adversary) error {
	if len(procs) == 0 {
		return errors.New("timed: no processes")
	}
	for i, p := range procs {
		if p.ID() != sim.ProcID(i+1) {
			return fmt.Errorf("timed: process at index %d has id %d, want %d", i, p.ID(), i+1)
		}
	}
	if adv == nil {
		return errors.New("timed: nil adversary")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = sim.Round(len(procs) + 2)
	}
	lat := cfg.Latency
	if lat == nil {
		lat = DefaultModel()
	}
	if err := validateModel(lat); err != nil {
		return err
	}
	n := len(procs)
	e.cfg, e.procs, e.adv, e.lat = cfg, procs, adv, lat
	e.omit, _ = adv.(sim.Omitter)
	e.d, e.delta = lat.Params()
	e.roundDur = e.d
	if cfg.Model == sim.ModelExtended {
		e.roundDur += e.delta
	}
	e.alive = resizeBools(e.alive, n)
	e.halted = resizeBools(e.halted, n)
	e.decided = resizeBools(e.decided, n)
	e.decVal = resizeValues(e.decVal, n)
	e.decRnd = resizeRounds(e.decRnd, n)
	e.crashRnd = resizeRounds(e.crashRnd, n)
	if cap(e.inbox) < n {
		e.inbox = make([][]sim.Message, n)
	} else {
		e.inbox = e.inbox[:n]
		for i := range e.inbox {
			e.inbox[i] = e.inbox[i][:0]
		}
	}
	if e.omit != nil {
		if cap(e.omitCnt) < n {
			e.omitCnt = make([]int, n)
			e.recvOmit = make([][]bool, n)
		} else {
			e.omitCnt = e.omitCnt[:n]
			e.recvOmit = e.recvOmit[:n]
			for i := range e.omitCnt {
				e.omitCnt[i] = 0
				e.recvOmit[i] = nil
			}
		}
	} else {
		e.omitCnt = e.omitCnt[:0]
		e.recvOmit = e.recvOmit[:0]
	}
	for i := range e.alive {
		e.alive[i] = true
	}
	e.aliveUnhalted = n
	e.nDecided, e.nCrashed = 0, 0
	e.ctr = metrics.Counters{}
	e.led = metrics.Ledger{}
	e.freeDel = append(e.freeDel[:0], e.allDel...)
	e.ds.Reset()
	e.ds.Telemetry = cfg.Telemetry
	e.rounds = 0
	e.err = nil
	e.ran = false
	e.roundOpenT = 0
	e.telCtr = metrics.Counters{}
	e.telLed = metrics.Ledger{}
	return nil
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

func resizeValues(s []sim.Value, n int) []sim.Value {
	if cap(s) < n {
		return make([]sim.Value, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeRounds(s []sim.Round, n int) []sim.Round {
	if cap(s) < n {
		return make([]sim.Round, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// allocDel takes a delivery record from the free list, growing it by a slab
// when empty (same amortization as the des event pool).
func (e *Engine) allocDel() *delivery {
	if len(e.freeDel) == 0 {
		blk := make([]delivery, 32)
		for i := range blk {
			blk[i].e = e
			e.allDel = append(e.allDel, &blk[i])
			e.freeDel = append(e.freeDel, &blk[i])
		}
	}
	d := e.freeDel[len(e.freeDel)-1]
	e.freeDel = e.freeDel[:len(e.freeDel)-1]
	return d
}

// Run executes the system on the event clock until every alive process has
// halted, the horizon is reached, or a model violation occurs. It returns
// the result in all cases; the result is partial when err != nil. Run may be
// called once per job (use Reset to arm the next one).
func (e *Engine) Run() (*sim.Result, error) {
	if e.ran {
		return nil, errors.New("timed: Engine.Run called twice (Reset the engine between jobs)")
	}
	e.ran = true
	// Round 1 opens at t=0: run it directly instead of scheduling a
	// one-shot bootstrap event. A send-phase failure here aborts before the
	// event loop starts (inside the loop, fail's Stop would do the same).
	e.roundStart(1)
	if e.err == nil {
		e.ds.Run(des.Infinity)
	}

	res := &sim.Result{
		Rounds:      e.rounds,
		Decisions:   make(map[sim.ProcID]sim.Value, e.nDecided),
		DecideRound: make(map[sim.ProcID]sim.Round, e.nDecided),
		Crashed:     make(map[sim.ProcID]sim.Round, e.nCrashed),
		Counters:    e.ctr,
		Ledger:      e.led,
		SimTime:     float64(e.ds.Now()),
	}
	if err := e.ds.Audit(); err != nil {
		res.ClockViolation = err.Error()
	}
	for i := range e.procs {
		id := sim.ProcID(i + 1)
		if e.decided[i] {
			res.Decisions[id] = e.decVal[i]
			res.DecideRound[id] = e.decRnd[i]
		}
		if e.crashRnd[i] != 0 {
			res.Crashed[id] = e.crashRnd[i]
		}
		if i < len(e.omitCnt) && e.omitCnt[i] != 0 {
			if res.Omissive == nil {
				res.Omissive = make(map[sim.ProcID]int)
			}
			res.Omissive[id] = e.omitCnt[i]
		}
	}
	res.Counters.Rounds = int(e.rounds)
	if e.cfg.Telemetry.Enabled() && e.err == nil {
		e.cfg.Telemetry.Span(telemetry.SpanRun, telemetry.TrackEngine, 0, int32(e.rounds), 0, res.SimTime)
		if res.SimTime > 0 {
			e.cfg.Telemetry.Sample(telemetry.SeriesRoundsPerSec, res.SimTime,
				float64(e.rounds)/res.SimTime)
		}
	}
	return res, e.err
}

// recordRound emits the telemetry of one finished round: a round span over
// its event-clock interval and the per-round traffic deltas against the
// previous snapshot. Called at the end of the deadline sweep, only when
// recording.
func (e *Engine) recordRound(r sim.Round) {
	rec := e.cfg.Telemetry
	t := float64(e.ds.Now())
	rec.Span(telemetry.SpanRound, telemetry.TrackEngine, int32(r), 0, float64(e.roundOpenT), t)
	dc := e.ctr.Minus(e.telCtr)
	dl := e.led.Minus(e.telLed)
	rec.Sample(telemetry.SeriesDataMsgs, t, float64(dc.DataMsgs))
	rec.Sample(telemetry.SeriesCtrlMsgs, t, float64(dc.CtrlMsgs))
	rec.Sample(telemetry.SeriesDelivered, t, float64(dl.DeliveredData+dl.DeliveredCtrl))
	rec.Sample(telemetry.SeriesDropped, t, float64(dc.DroppedData+dc.DroppedCtrl))
	rec.Sample(telemetry.SeriesOmitted, t, float64(dc.OmittedData+dc.OmittedCtrl+dc.OmittedRecv))
	rec.Sample(telemetry.SeriesLate, t, float64(dc.Late))
	e.telCtr = e.ctr
	e.telLed = e.led
}

// fail aborts the run after the current event.
func (e *Engine) fail(err error) {
	e.err = err
	e.ds.Stop()
}

// allQuiet reports whether every alive process has halted.
func (e *Engine) allQuiet() bool { return e.aliveUnhalted == 0 }

// roundStart opens round r at the current simulated time: it runs the send
// phase of every alive, unhalted process in id order (the same adversary
// consultation order as the deterministic engine), scheduling each
// transmitted message's arrival, then arms the round's deadline sweep. FIFO
// tie-breaking in the event queue guarantees that an arrival at exactly the
// deadline still precedes the sweep (it was scheduled earlier), so the
// receive phases observe exactly the messages that respected the bound.
func (e *Engine) roundStart(r sim.Round) {
	e.rounds = r
	e.roundOpenT = e.ds.Now()
	deadline := e.ds.Now() + e.roundDur
	for i := range e.recvOmit {
		e.recvOmit[i] = nil
	}
	for _, p := range e.procs {
		id := p.ID()
		i := int(id) - 1
		if !e.alive[i] || e.halted[i] {
			continue
		}
		plan := p.Send(r)
		if e.cfg.Model == sim.ModelClassic && len(plan.Control) > 0 {
			e.fail(fmt.Errorf("%w (process p%d, round %d)", sim.ErrControlInClassic, id, r))
			return
		}
		if err := sim.ValidatePlan(id, len(e.procs), plan); err != nil {
			e.fail(fmt.Errorf("%v (round %d)", err, r))
			return
		}
		crash, outcome := e.adv.Crashes(id, r, plan)
		if crash {
			if !outcome.ValidFor(plan) {
				e.fail(fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOutcome, id, r))
				return
			}
			e.alive[i] = false
			e.crashRnd[i] = r
			e.aliveUnhalted--
			e.nCrashed++
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindCrash, From: int(id),
					Detail: fmt.Sprintf("t=%g during send (data %s, ctrl prefix %d/%d)",
						float64(e.ds.Now()), subsetString(outcome.DataDelivered), outcome.CtrlPrefix, len(plan.Control))})
			}
			e.emitCrashed(id, r, plan, outcome)
			continue
		}
		if e.omit != nil {
			if om := e.omit.Omits(id, r, plan); !om.IsZero() {
				if !om.ValidFor(plan) {
					e.fail(fmt.Errorf("%w (process p%d, round %d)", sim.ErrBadOmission, id, r))
					return
				}
				e.omitCnt[i]++
				e.recvOmit[i] = om.Recv
				e.emitOmitted(id, r, plan, om)
				continue
			}
		}
		for _, o := range plan.Data {
			e.send(sim.Message{From: id, To: o.To, Round: r, Kind: sim.Data, Payload: o.Payload})
		}
		for _, to := range plan.Control {
			e.send(sim.Message{From: id, To: to, Round: r, Kind: sim.Control})
		}
	}
	// One sweep event covers every process due at this deadline (processes
	// already crashed or halted receive nothing — arrive refuses deliveries
	// to both — so the sweep skips them). Alive/halted flags only change
	// inside send phases and sweeps, never between them, so the sweep sees
	// exactly the processes a per-process timer scheme would have armed.
	e.sweepAct.r = r
	e.ds.AtAct(deadline, &e.sweepAct)
}

// sweep is the round's deadline event: the receive and computation phase of
// every due process in id order — the order n per-process timers would have
// fired in under FIFO ties — followed by the round controller.
func (e *Engine) sweep(r sim.Round) {
	for _, p := range e.procs {
		i := int(p.ID()) - 1
		if !e.alive[i] || e.halted[i] {
			continue
		}
		e.receive(p, r)
		if e.err != nil {
			return
		}
	}
	e.roundEnd(r)
}

// emitCrashed transmits the escaped part of a crashing sender's plan: the
// delivered data subset and the escaped control prefix. Suppressed messages
// are accounted as dropped, exactly like the round engines.
func (e *Engine) emitCrashed(from sim.ProcID, r sim.Round, plan sim.SendPlan, out sim.CrashOutcome) {
	for i, o := range plan.Data {
		if !out.DataDelivered[i] {
			e.ctr.DroppedData++
			e.traceDrop(r, from, o.To, "data")
			continue
		}
		e.send(sim.Message{From: from, To: o.To, Round: r, Kind: sim.Data, Payload: o.Payload})
	}
	for i, to := range plan.Control {
		if i >= out.CtrlPrefix {
			e.ctr.DroppedCtrl++
			e.traceDrop(r, from, to, "control")
			continue
		}
		e.send(sim.Message{From: from, To: to, Round: r, Kind: sim.Control})
	}
}

// emitOmitted transmits a live sender's plan under a send-omission mask.
func (e *Engine) emitOmitted(from sim.ProcID, r sim.Round, plan sim.SendPlan, om sim.Omission) {
	for i, o := range plan.Data {
		if om.Data != nil && !om.Data[i] {
			e.ctr.OmittedData++
			e.traceDrop(r, from, o.To, "data (send omission)")
			continue
		}
		e.send(sim.Message{From: from, To: o.To, Round: r, Kind: sim.Data, Payload: o.Payload})
	}
	for i, to := range plan.Control {
		if om.Ctrl != nil && !om.Ctrl[i] {
			e.ctr.OmittedCtrl++
			e.traceDrop(r, from, to, "control (send omission)")
			continue
		}
		e.send(sim.Message{From: from, To: to, Round: r, Kind: sim.Control})
	}
}

// send transmits one message: it is accounted as sent, its latency is
// sampled, and — if the latency respects the synchrony bound of its kind —
// its arrival is scheduled on a pooled delivery record. A latency beyond the
// bound is a timing fault: the message misses its round and is mapped to a
// receive omission at the destination (Counters.Late).
func (e *Engine) send(m sim.Message) {
	if m.Kind == sim.Control {
		e.ctr.AddCtrl()
	} else {
		e.ctr.AddData(m.Bits())
	}
	lat := e.lat.Latency(m.From, m.To, m.Round, m.Kind)
	bound := e.d
	if m.Kind == sim.Control {
		bound = e.d + e.delta
	}
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindSend,
			From: int(m.From), To: int(m.To),
			Detail: fmt.Sprintf("%s t=%g lat=%g", m.Kind, float64(e.ds.Now()), float64(lat))})
	}
	if lat > bound {
		e.ctr.Late++
		e.led.Late(m.Kind == sim.Control)
		e.traceDrop(m.Round, m.From, m.To, fmt.Sprintf("%s late (lat %g > bound %g; timing fault -> receive omission)",
			m.Kind, float64(lat), float64(bound)))
		return
	}
	d := e.allocDel()
	d.m = m
	e.ds.AfterAct(lat, d)
}

// arrive delivers a message into its destination's inbox for the current
// round. Messages to crashed processes vanish (they were transmitted and
// accounted; nobody is there to receive them).
func (e *Engine) arrive(m sim.Message) {
	i := int(m.To) - 1
	if !e.alive[i] || e.halted[i] {
		// Crashed: nobody is there. Halted: alive but returned — the round
		// engines discard its deliveries at the receive phase; with the
		// sweep skipping it, the discard happens here instead.
		if !e.alive[i] {
			e.led.DeadDest(m.Kind == sim.Control)
		} else {
			e.led.HaltedDest(m.Kind == sim.Control)
		}
		return
	}
	e.inbox[i] = append(e.inbox[i], m)
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Add(trace.Event{Round: int(m.Round), Kind: trace.KindDeliver,
			From: int(m.From), To: int(m.To),
			Detail: fmt.Sprintf("%s t=%g", m.Kind, float64(e.ds.Now()))})
	}
}

// receive is process p's slice of the round-r deadline sweep: the receive
// phase plus the local computation phase, mirroring the deterministic
// engine's receive loop body exactly.
func (e *Engine) receive(p sim.Process, r sim.Round) {
	id := p.ID()
	i := int(id) - 1
	if !e.alive[i] {
		for _, m := range e.inbox[i] {
			e.led.DeadDest(m.Kind == sim.Control)
		}
		e.inbox[i] = e.inbox[i][:0]
		return
	}
	if e.halted[i] {
		// A halted process stays alive but silent; anything delivered to it
		// is discarded.
		for _, m := range e.inbox[i] {
			e.led.HaltedDest(m.Kind == sim.Control)
		}
		e.inbox[i] = e.inbox[i][:0]
		return
	}
	in := e.inbox[i]
	e.inbox[i] = in[:0]
	if i < len(e.recvOmit) && e.recvOmit[i] != nil {
		in = e.applyRecvOmission(in, e.recvOmit[i], r)
	}
	for _, m := range in {
		e.led.Delivered(m.Kind == sim.Control)
	}
	sim.SortInbox(in)
	p.Receive(r, in)
	if v, ok := p.Decided(); ok && !e.decided[i] {
		e.decided[i] = true
		e.decVal[i] = v
		e.decRnd[i] = r
		e.nDecided++
		if e.cfg.Trace.Enabled() {
			e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDecide,
				From: int(id), Detail: fmt.Sprintf("value %d t=%g", int64(v), float64(e.ds.Now()))})
		}
	}
	if p.Halted() {
		if !e.decided[i] {
			e.fail(fmt.Errorf("%w (process p%d, round %d)", sim.ErrHaltedWithoutDecision, id, r))
			return
		}
		if !e.halted[i] {
			e.halted[i] = true
			e.aliveUnhalted--
			if e.cfg.Trace.Enabled() {
				e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindHalt, From: int(id)})
			}
		}
	}
}

// applyRecvOmission compacts an inbox to the messages surviving an
// adversarial receive-omission mask.
func (e *Engine) applyRecvOmission(in []sim.Message, mask []bool, r sim.Round) []sim.Message {
	w := 0
	for _, m := range in {
		if i := int(m.From) - 1; i < len(mask) && !mask[i] {
			e.ctr.OmittedRecv++
			e.led.RecvOmitted(m.Kind == sim.Control)
			e.traceDrop(r, m.From, m.To, m.Kind.String()+" (receive omission)")
			continue
		}
		in[w] = m
		w++
	}
	return in[:w]
}

// roundEnd is the round controller, run at the end of the deadline sweep:
// it decides whether the system is done, out of budget, or starts round r+1
// at the current time (rounds are back to back — the receive and computation
// phases fit inside the round's D, per the model).
func (e *Engine) roundEnd(r sim.Round) {
	if e.cfg.Telemetry.Enabled() {
		e.recordRound(r)
	}
	if e.allQuiet() {
		e.ds.Stop()
		return
	}
	if r >= e.cfg.Horizon {
		e.fail(sim.ErrNoProgress)
		return
	}
	e.roundStart(r + 1)
}

// traceDrop records a suppressed message when tracing is enabled.
func (e *Engine) traceDrop(r sim.Round, from, to sim.ProcID, detail string) {
	if e.cfg.Trace.Enabled() {
		e.cfg.Trace.Add(trace.Event{Round: int(r), Kind: trace.KindDrop,
			From: int(from), To: int(to), Detail: detail})
	}
}

// subsetString renders a delivered-subset mask compactly, e.g. "{1,3}/4".
func subsetString(mask []bool) string {
	s := "{"
	first := true
	for i, b := range mask {
		if !b {
			continue
		}
		if !first {
			s += ","
		}
		s += fmt.Sprint(i + 1)
		first = false
	}
	return fmt.Sprintf("%s}/%d", s, len(mask))
}
