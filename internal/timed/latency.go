package timed

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/lan"
	"repro/internal/sim"
)

// LatencyModel prices every message of a continuous-time execution and fixes
// the synchrony bound the execution is judged against.
//
// Params returns the Section 2.2 timing parameters: D bounds the delivery of
// a data message (and is the classic round duration), δ extends the bound
// for the control message pipelined behind it (the extended round lasts
// D + δ). Latency samples the transfer latency of one concrete message.
//
// Implementations must be pure functions of their arguments plus immutable
// configuration: the engine may sample in any order and any number of times,
// and replaying a schedule (fuzz replay verification, shrinking, sweeps)
// must see identical latencies. Stateful generators are therefore forbidden
// — the seeded Jitter model derives its randomness from a per-message hash
// instead of a sequential RNG for exactly this reason.
type LatencyModel interface {
	// Params returns the synchrony parameters (D, δ), in whatever time unit
	// the model chooses. D must be positive, δ non-negative (and zero is
	// only meaningful for classic-model runs).
	Params() (d, delta des.Time)
	// Latency returns the transfer latency of one message. A data message
	// whose latency exceeds D — or a control message whose latency exceeds
	// D + δ — violates the synchrony bound and is mapped by the engine to a
	// receive omission at its destination (a timing fault).
	Latency(from, to sim.ProcID, r sim.Round, kind sim.MsgKind) des.Time
}

// Fixed is the worst-case synchronous network: every data message takes
// exactly D and every control message exactly D + δ — each message consumes
// its entire bound and nothing is ever late. It is the model under which the
// timed engine's completion times equal the analytic R·D / R·(D+δ) costs of
// internal/timing exactly, which is what experiment E3 exploits.
type Fixed struct {
	// D is the data-delivery bound (and classic round duration).
	D des.Time
	// Delta is the control-step extension δ.
	Delta des.Time
}

// Params implements LatencyModel.
func (m Fixed) Params() (des.Time, des.Time) { return m.D, m.Delta }

// Latency implements LatencyModel.
func (m Fixed) Latency(_, _ sim.ProcID, _ sim.Round, kind sim.MsgKind) des.Time {
	if kind == sim.Control {
		return m.D + m.Delta
	}
	return m.D
}

// DefaultModel is the latency model used when a job does not specify one:
// unit round duration with a 10% control step, always within bound — so an
// unconfigured timed run is semantically identical to the round engines and
// cross-checks cleanly against them.
func DefaultModel() LatencyModel { return Fixed{D: 1, Delta: 0.1} }

// Profile derives latencies from a concrete LAN technology (internal/lan):
// a data message costs propagation plus serialization of its frame, a
// control message one extra minimum-frame serialization behind it. Both are
// within the profile's D/δ bounds by construction — the headroom is exactly
// the profile's per-round processing budget.
type Profile struct {
	// P is the LAN profile.
	P lan.Profile
	// Bits is the data payload width b used for serialization and for the
	// bound D(b); zero defaults to 64.
	Bits int
}

func (m Profile) bits() int {
	if m.Bits > 0 {
		return m.Bits
	}
	return 64
}

// Params implements LatencyModel.
func (m Profile) Params() (des.Time, des.Time) {
	return des.Time(m.P.D(m.bits())), des.Time(m.P.Delta())
}

// Latency implements LatencyModel.
func (m Profile) Latency(_, _ sim.ProcID, _ sim.Round, kind sim.MsgKind) des.Time {
	if kind == sim.Control {
		return des.Time(m.P.CtrlLatency(m.bits()))
	}
	return des.Time(m.P.DataLatency(m.bits()))
}

// Jitter adds seeded random jitter over a latency floor: a data message
// takes Floor + U[0, Spread), a control message the same draw plus Delta
// (pipelined behind its data frame). When Floor + Spread exceeds D the tail
// of the distribution violates the synchrony bound, turning timing faults
// into a first-class, reproducible scenario class.
//
// The randomness is a pure per-message hash of (Seed, from, to, round,
// kind), not a sequential RNG: replays, shrink passes and cross-run
// comparisons all see identical latencies, and sampling order is
// irrelevant.
type Jitter struct {
	// D and Delta are the synchrony parameters, as in Fixed.
	D, Delta des.Time
	// Floor is the minimum latency (propagation).
	Floor des.Time
	// Spread is the jitter width: latencies are uniform in
	// [Floor, Floor+Spread).
	Spread des.Time
	// Seed selects the jitter sample; runs are deterministic per seed.
	Seed int64
}

// Params implements LatencyModel.
func (m Jitter) Params() (des.Time, des.Time) { return m.D, m.Delta }

// WithinBound reports whether no sampled latency can violate the synchrony
// bound (the whole jitter range fits under D). Within-bound jitter is
// semantically invisible — only completion times wiggle — so such models
// remain eligible for cross-engine checking.
func (m Jitter) WithinBound() bool { return m.Floor+m.Spread <= m.D }

// Latency implements LatencyModel.
func (m Jitter) Latency(from, to sim.ProcID, r sim.Round, kind sim.MsgKind) des.Time {
	l := m.Floor + des.Time(m.u01(from, to, r, kind))*m.Spread
	if kind == sim.Control {
		l += m.Delta
	}
	return l
}

// u01 hashes one message identity into [0, 1).
func (m Jitter) u01(from, to sim.ProcID, r sim.Round, kind sim.MsgKind) float64 {
	h := splitmix(uint64(m.Seed))
	h = splitmix(h ^ uint64(from))
	h = splitmix(h ^ uint64(to)<<16)
	h = splitmix(h ^ uint64(r)<<32)
	h = splitmix(h ^ uint64(kind)<<48)
	return float64(h>>11) / (1 << 53)
}

// splitmix is the SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// validateModel rejects models whose parameters cannot define a round.
func validateModel(m LatencyModel) error {
	d, delta := m.Params()
	if !(d > 0) {
		return fmt.Errorf("timed: latency model has non-positive round duration D=%g", float64(d))
	}
	if delta < 0 {
		return fmt.Errorf("timed: latency model has negative control extension δ=%g", float64(delta))
	}
	return nil
}
