package fuzz

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/timed"
)

// Gen tunes the random-walk schedule generator.
type Gen struct {
	// T is the crash budget: the walk crashes at most T processes. A zero
	// budget disables crash faults entirely (pure omission campaigns).
	T int
	// CrashProb is the per-(process, round) crash probability (default 0.25
	// when T > 0).
	CrashProb float64
	// MaxCrashRound, if positive, is the last round a fault (crash or
	// omission) may be injected in. Faults after every correct process has
	// decided cannot affect the outcome, so campaigns bound this at the
	// protocol's round bound to keep schedules dense.
	MaxCrashRound int
	// SendOmitProb is the per-(process, round) probability of injecting a
	// send-omission event (a random non-empty subset of the round's messages
	// vanishes). Zero disables send omissions.
	SendOmitProb float64
	// RecvOmitProb is the per-(process, round) probability of injecting a
	// receive-omission event (a random non-empty subset of senders is
	// blocked). Zero disables receive omissions.
	RecvOmitProb float64
	// MaxOmissive bounds the number of distinct omission-faulty processes
	// (0 = no bound).
	MaxOmissive int
}

// omitting reports whether the generator injects omission faults at all.
func (g Gen) omitting() bool { return g.SendOmitProb > 0 || g.RecvOmitProb > 0 }

// crashProb returns the configured or default crash probability.
func (g Gen) crashProb() float64 {
	if g.CrashProb <= 0 {
		return 0.25
	}
	return g.CrashProb
}

// recorder is the generating adversary: a seeded random walk over the legal
// fault choices of the model — crash or not (data-step vs control-step crash
// point, escaped subset / prefix) and, when the generator enables them,
// send/receive-omission events — recording every fault it injects as a
// replayable Event. On the deterministic engine — which consults the
// adversary in a fixed (round, process) order — the walk is a pure function
// of the seed.
type recorder struct {
	rng      *rand.Rand
	gen      Gen
	n        int // system size, for receive-omission sender masks
	crashes  int
	omissive map[int]bool
	events   []Event
}

// Crashes implements sim.Adversary. The choice tree mirrors
// adversary.FromChooser: crash point first (data step vs control step, when
// a control sequence exists), then either a uniform escaped subset (data
// step) or full data plus a uniform escaped prefix (control step).
func (rec *recorder) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if rec.crashes >= rec.gen.T {
		return false, sim.CrashOutcome{}
	}
	if rec.gen.MaxCrashRound > 0 && int(r) > rec.gen.MaxCrashRound {
		return false, sim.CrashOutcome{}
	}
	if rec.rng.Float64() >= rec.gen.crashProb() {
		return false, sim.CrashOutcome{}
	}
	rec.crashes++
	mask := make([]bool, len(plan.Data))
	ctrl := 0
	if len(plan.Control) > 0 && rec.rng.Intn(2) == 1 {
		// Control-step crash: the data step completed, a prefix escapes.
		for i := range mask {
			mask[i] = true
		}
		ctrl = rec.rng.Intn(len(plan.Control) + 1)
	} else {
		// Data-step crash: an arbitrary subset escapes, no control messages.
		for i := range mask {
			mask[i] = rec.rng.Intn(2) == 1
		}
	}
	rec.events = append(rec.events, Event{
		Proc: int(p), Round: int(r), Data: append([]bool(nil), mask...), Ctrl: ctrl,
	})
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: ctrl}
}

// omittingRecorder is the sim.Omitter face of a recorder. RunSeed attaches
// it only when the generator actually injects omissions, so crash-only
// campaigns keep a non-Omitter adversary and ride the engines' crash-model
// path untouched.
type omittingRecorder struct{ *recorder }

// Omits implements sim.Omitter: with probability SendOmitProb the process
// send-omits a random non-empty subset of this round's messages, and
// independently with probability RecvOmitProb it blocks a random non-empty
// subset of senders — while the budget of distinct omission-faulty processes
// lasts. Every injected event is recorded for replay.
func (rec omittingRecorder) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	g := rec.gen
	if g.MaxCrashRound > 0 && int(r) > g.MaxCrashRound {
		return sim.Omission{}
	}
	if g.MaxOmissive > 0 && !rec.omissive[int(p)] && len(rec.omissive) >= g.MaxOmissive {
		return sim.Omission{}
	}
	var om sim.Omission
	k := len(plan.Data) + len(plan.Control)
	if k > 0 && g.SendOmitProb > 0 && rec.rng.Float64() < g.SendOmitProb {
		// Uniform non-empty dropped subset over data then control positions.
		drop := rec.nonEmptySubset(k)
		om.Data = make([]bool, len(plan.Data))
		om.Ctrl = make([]bool, len(plan.Control))
		for i := 0; i < k; i++ {
			delivered := !drop[i]
			if i < len(plan.Data) {
				om.Data[i] = delivered
			} else {
				om.Ctrl[i-len(plan.Data)] = delivered
			}
		}
		rec.events = append(rec.events, Event{
			Kind: EventSendOmit, Proc: int(p), Round: int(r),
			Data:     append([]bool(nil), om.Data...),
			CtrlMask: append([]bool(nil), om.Ctrl...),
		})
	}
	if rec.n > 1 && g.RecvOmitProb > 0 && rec.rng.Float64() < g.RecvOmitProb {
		// Uniform non-empty blocked subset of the other processes.
		drop := rec.nonEmptySubset(rec.n - 1)
		om.Recv = make([]bool, rec.n)
		idx := 0
		for q := 1; q <= rec.n; q++ {
			if sim.ProcID(q) == p {
				om.Recv[q-1] = true
				continue
			}
			om.Recv[q-1] = !drop[idx]
			idx++
		}
		rec.events = append(rec.events, Event{
			Kind: EventRecvOmit, Proc: int(p), Round: int(r),
			From: append([]bool(nil), om.Recv...),
		})
	}
	if om.IsZero() {
		return sim.Omission{}
	}
	if rec.omissive == nil {
		rec.omissive = map[int]bool{}
	}
	rec.omissive[int(p)] = true
	return om
}

// nonEmptySubset draws a subset of {0..k-1} with each position included
// independently with probability 1/2, forcing one uniformly-chosen member
// when the draw comes out empty. (That redistribution puts the all-empty
// mass on the singletons, so the result slightly over-weights them relative
// to true conditioning on non-emptiness — a deliberate trade: the draw
// count stays fixed, keeping the walk a simple function of the seed, and
// over-weighting minimal fault footprints is fine for fuzzing.)
func (rec *recorder) nonEmptySubset(k int) []bool {
	drop := make([]bool, k)
	any := false
	for i := range drop {
		if rec.rng.Intn(2) == 1 {
			drop[i] = true
			any = true
		}
	}
	if !any {
		drop[rec.rng.Intn(k)] = true
	}
	return drop
}

// script returns the recorded schedule in canonical order.
func (rec *recorder) script() Script {
	s := Script{Events: rec.events}
	s.normalize()
	return s
}

// Target is one system under test: the engine inputs plus the proposals the
// oracle validates against. Latency is optional and only meaningful for
// engines with the timed capability; it rides along into every job the
// runner builds (the generating run and each replay), so timed campaigns
// sample identical latencies on every execution of a seed.
type Target struct {
	Model     sim.Model
	Horizon   sim.Round
	Procs     []sim.Process
	Proposals []sim.Value
	Latency   timed.LatencyModel
}

// Factory builds a fresh Target per execution (processes are stateful, so
// every run needs its own). Factories used by a parallel campaign must be
// safe for concurrent calls, which any factory constructing a fresh process
// set per call is.
type Factory func() Target

// Oracle validates one finished run; a non-nil error flags a violation.
// runErr is the engine's own error (e.g. horizon exhaustion without
// decisions), which consensus oracles treat as a termination violation.
type Oracle func(proposals []sim.Value, res *sim.Result, runErr error) error

// Options tunes a per-seed fuzz run.
type Options struct {
	// Gen configures the schedule generator.
	Gen Gen
	// Shrink minimizes the recorded script on violation.
	Shrink bool
	// MaxShrinkRuns caps the shrinker's replay budget (default 512).
	MaxShrinkRuns int
}

// Outcome is the result of fuzzing one seed.
type Outcome struct {
	// Seed is the generator seed of the run.
	Seed int64
	// Script is the recorded crash schedule.
	Script Script
	// Err is the oracle violation, nil for a passing run.
	Err error
	// Shrunk is the minimized script when shrinking ran (Err != nil and
	// Options.Shrink); it fails the oracle with ShrunkErr.
	Shrunk *Script
	// ShrunkErr is the oracle violation of the shrunk script.
	ShrunkErr error
	// Executions counts engine runs spent on this seed (1 + replay + shrink).
	Executions int
	// Rounds, MaxDecideRound, Faults and Omissive summarize the generated
	// run (Faults counts crashes, Omissive counts omission-faulty processes).
	Rounds         sim.Round
	MaxDecideRound sim.Round
	Faults         int
	Omissive       int
}

// ErrReplayDiverged is returned when a recorded script does not reproduce
// its own run — which would mean the engine or the system under test is not
// deterministic, a fatal property violation of the whole approach.
var ErrReplayDiverged = errors.New("fuzz: recorded script did not reproduce the generated run")

// RunSeed fuzzes one seed: it generates a random schedule while executing it,
// validates the run with the oracle, and — on violation — replay-verifies the
// recorded script and shrinks it. The returned error is fatal (engine
// construction failure or replay divergence); oracle violations are reported
// in the Outcome.
func RunSeed(eng harness.Engine, factory Factory, oracle Oracle, seed int64, opts Options) (Outcome, error) {
	out := Outcome{Seed: seed}
	tgt := factory()
	rec := &recorder{rng: rand.New(rand.NewSource(seed)), gen: opts.Gen, n: len(tgt.Procs)}
	var adv sim.Adversary = rec
	if opts.Gen.omitting() {
		// Only omission-injecting generators present an Omitter to the
		// engine; crash-only campaigns stay on the crash-model path.
		adv = omittingRecorder{rec}
	}
	res, runErr := eng.Run(harness.Job{
		Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: adv, Latency: tgt.Latency,
	})
	if res == nil {
		return out, fmt.Errorf("fuzz: seed %d: %w", seed, runErr)
	}
	out.Executions++
	out.Script = rec.script()
	out.Rounds = res.Rounds
	out.MaxDecideRound = res.MaxDecideRound()
	out.Faults = res.Faults()
	out.Omissive = res.OmissionFaulty()
	out.Err = oracle(tgt.Proposals, res, runErr)
	if out.Err == nil {
		return out, nil
	}

	// The violation must reproduce from the recorded script alone before it
	// is worth reporting (or shrinking): replay and compare the verdicts.
	replay := func(s Script) (error, error) {
		t := factory()
		r, rerr := eng.Run(harness.Job{
			Model: t.Model, Horizon: t.Horizon, Procs: t.Procs, Adv: s.Adversary(), Latency: t.Latency,
		})
		if r == nil {
			return nil, fmt.Errorf("fuzz: replaying seed %d: %w", seed, rerr)
		}
		out.Executions++
		return oracle(t.Proposals, r, rerr), nil
	}
	verr, fatal := replay(out.Script)
	if fatal != nil {
		return out, fatal
	}
	if verr == nil {
		return out, fmt.Errorf("%w (seed %d, script %q)", ErrReplayDiverged, seed, out.Script.String())
	}
	if !opts.Shrink {
		return out, nil
	}

	budget := opts.MaxShrinkRuns
	if budget <= 0 {
		budget = 512
	}
	maxRound := int(tgt.Horizon)
	shrunk, shrunkErr, fatal := Shrink(out.Script, verr, maxRound, budget, replay)
	if fatal != nil {
		return out, fatal
	}
	out.Shrunk, out.ShrunkErr = &shrunk, shrunkErr
	return out, nil
}
