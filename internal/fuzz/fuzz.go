package fuzz

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/harness"
	"repro/internal/sim"
)

// Gen tunes the random-walk schedule generator.
type Gen struct {
	// T is the crash budget: the walk crashes at most T processes.
	T int
	// CrashProb is the per-(process, round) crash probability (default 0.25).
	CrashProb float64
	// MaxCrashRound, if positive, is the last round a crash may be injected
	// in. Crashes after every correct process has decided cannot affect the
	// outcome, so campaigns bound this at the protocol's round bound to keep
	// schedules dense.
	MaxCrashRound int
}

// crashProb returns the configured or default crash probability.
func (g Gen) crashProb() float64 {
	if g.CrashProb <= 0 {
		return 0.25
	}
	return g.CrashProb
}

// recorder is the generating adversary: a seeded random walk over the legal
// crash choices of the model (crash or not, data-step vs control-step crash
// point, escaped subset / prefix), recording every crash it injects as a
// replayable Event. On the deterministic engine — which consults the
// adversary in a fixed (round, process) order — the walk is a pure function
// of the seed.
type recorder struct {
	rng     *rand.Rand
	gen     Gen
	crashes int
	events  []Event
}

// Crashes implements sim.Adversary. The choice tree mirrors
// adversary.FromChooser: crash point first (data step vs control step, when
// a control sequence exists), then either a uniform escaped subset (data
// step) or full data plus a uniform escaped prefix (control step).
func (rec *recorder) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if rec.crashes >= rec.gen.T {
		return false, sim.CrashOutcome{}
	}
	if rec.gen.MaxCrashRound > 0 && int(r) > rec.gen.MaxCrashRound {
		return false, sim.CrashOutcome{}
	}
	if rec.rng.Float64() >= rec.gen.crashProb() {
		return false, sim.CrashOutcome{}
	}
	rec.crashes++
	mask := make([]bool, len(plan.Data))
	ctrl := 0
	if len(plan.Control) > 0 && rec.rng.Intn(2) == 1 {
		// Control-step crash: the data step completed, a prefix escapes.
		for i := range mask {
			mask[i] = true
		}
		ctrl = rec.rng.Intn(len(plan.Control) + 1)
	} else {
		// Data-step crash: an arbitrary subset escapes, no control messages.
		for i := range mask {
			mask[i] = rec.rng.Intn(2) == 1
		}
	}
	rec.events = append(rec.events, Event{
		Proc: int(p), Round: int(r), Data: append([]bool(nil), mask...), Ctrl: ctrl,
	})
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: ctrl}
}

// script returns the recorded schedule in canonical order.
func (rec *recorder) script() Script {
	s := Script{Events: rec.events}
	s.normalize()
	return s
}

// Target is one system under test: the engine inputs plus the proposals the
// oracle validates against.
type Target struct {
	Model     sim.Model
	Horizon   sim.Round
	Procs     []sim.Process
	Proposals []sim.Value
}

// Factory builds a fresh Target per execution (processes are stateful, so
// every run needs its own). Factories used by a parallel campaign must be
// safe for concurrent calls, which any factory constructing a fresh process
// set per call is.
type Factory func() Target

// Oracle validates one finished run; a non-nil error flags a violation.
// runErr is the engine's own error (e.g. horizon exhaustion without
// decisions), which consensus oracles treat as a termination violation.
type Oracle func(proposals []sim.Value, res *sim.Result, runErr error) error

// Options tunes a per-seed fuzz run.
type Options struct {
	// Gen configures the schedule generator.
	Gen Gen
	// Shrink minimizes the recorded script on violation.
	Shrink bool
	// MaxShrinkRuns caps the shrinker's replay budget (default 512).
	MaxShrinkRuns int
}

// Outcome is the result of fuzzing one seed.
type Outcome struct {
	// Seed is the generator seed of the run.
	Seed int64
	// Script is the recorded crash schedule.
	Script Script
	// Err is the oracle violation, nil for a passing run.
	Err error
	// Shrunk is the minimized script when shrinking ran (Err != nil and
	// Options.Shrink); it fails the oracle with ShrunkErr.
	Shrunk *Script
	// ShrunkErr is the oracle violation of the shrunk script.
	ShrunkErr error
	// Executions counts engine runs spent on this seed (1 + replay + shrink).
	Executions int
	// Rounds, MaxDecideRound and Faults summarize the generated run.
	Rounds         sim.Round
	MaxDecideRound sim.Round
	Faults         int
}

// ErrReplayDiverged is returned when a recorded script does not reproduce
// its own run — which would mean the engine or the system under test is not
// deterministic, a fatal property violation of the whole approach.
var ErrReplayDiverged = errors.New("fuzz: recorded script did not reproduce the generated run")

// RunSeed fuzzes one seed: it generates a random schedule while executing it,
// validates the run with the oracle, and — on violation — replay-verifies the
// recorded script and shrinks it. The returned error is fatal (engine
// construction failure or replay divergence); oracle violations are reported
// in the Outcome.
func RunSeed(eng harness.Engine, factory Factory, oracle Oracle, seed int64, opts Options) (Outcome, error) {
	out := Outcome{Seed: seed}
	tgt := factory()
	rec := &recorder{rng: rand.New(rand.NewSource(seed)), gen: opts.Gen}
	res, runErr := eng.Run(harness.Job{
		Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: rec,
	})
	if res == nil {
		return out, fmt.Errorf("fuzz: seed %d: %w", seed, runErr)
	}
	out.Executions++
	out.Script = rec.script()
	out.Rounds = res.Rounds
	out.MaxDecideRound = res.MaxDecideRound()
	out.Faults = res.Faults()
	out.Err = oracle(tgt.Proposals, res, runErr)
	if out.Err == nil {
		return out, nil
	}

	// The violation must reproduce from the recorded script alone before it
	// is worth reporting (or shrinking): replay and compare the verdicts.
	replay := func(s Script) (error, error) {
		t := factory()
		r, rerr := eng.Run(harness.Job{
			Model: t.Model, Horizon: t.Horizon, Procs: t.Procs, Adv: s.Adversary(),
		})
		if r == nil {
			return nil, fmt.Errorf("fuzz: replaying seed %d: %w", seed, rerr)
		}
		out.Executions++
		return oracle(t.Proposals, r, rerr), nil
	}
	verr, fatal := replay(out.Script)
	if fatal != nil {
		return out, fatal
	}
	if verr == nil {
		return out, fmt.Errorf("%w (seed %d, script %q)", ErrReplayDiverged, seed, out.Script.String())
	}
	if !opts.Shrink {
		return out, nil
	}

	budget := opts.MaxShrinkRuns
	if budget <= 0 {
		budget = 512
	}
	maxRound := int(tgt.Horizon)
	shrunk, shrunkErr, fatal := Shrink(out.Script, verr, maxRound, budget, replay)
	if fatal != nil {
		return out, fatal
	}
	out.Shrunk, out.ShrunkErr = &shrunk, shrunkErr
	return out, nil
}
