package fuzz

import (
	"strings"
	"testing"
)

func TestParseFindings(t *testing.T) {
	text := "p1@r1:/0\n\n  p1@r1:00000/0;p2@r2:1111/1  \n\np2@r1:ro:011\n"
	scripts, err := ParseFindings(text)
	if err != nil {
		t.Fatalf("ParseFindings: %v", err)
	}
	want := []string{"p1@r1:/0", "p1@r1:00000/0;p2@r2:1111/1", "p2@r1:ro:011"}
	if len(scripts) != len(want) {
		t.Fatalf("got %d scripts, want %d", len(scripts), len(want))
	}
	for i, s := range scripts {
		if s.String() != want[i] {
			t.Errorf("script %d = %q, want %q", i, s, want[i])
		}
	}
	if got, err := ParseFindings("\n\n"); err != nil || got != nil {
		t.Fatalf("blank artifact: got %v, %v", got, err)
	}
}

func TestParseFindingsNamesBadLine(t *testing.T) {
	_, err := ParseFindings("p1@r1:/0\nnot a script\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line not named: %v", err)
	}
}

func TestScriptMaxProc(t *testing.T) {
	cases := []struct {
		script string
		want   int
	}{
		{"", 0},
		{"p3@r1:/0", 3},
		{"p1@r1:ro:01100", 5},
		{"p2@r1:/0;p7@r2:ro:011", 7},
	}
	for _, tc := range cases {
		s, err := Parse(tc.script)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.script, err)
		}
		if got := s.MaxProc(); got != tc.want {
			t.Errorf("MaxProc(%q) = %d, want %d", tc.script, got, tc.want)
		}
	}
}
