// Package fuzz turns the deterministic engine into a property-based tester:
// a seeded random-walk adversary drives executions through randomly sampled
// crash schedules at sizes the exhaustive explorer (internal/check) cannot
// reach, every sampled choice is recorded into a compact replayable Script,
// each run is validated against the consensus oracles, and violating scripts
// are minimized by a delta-debugging shrinker while preserving the failure.
//
// The pipeline per seed is
//
//	generate (recording adversary) → validate (oracle) → replay-verify →
//	shrink (fewer crashes → later crashes → smaller escape sets)
//
// and every stage is a deterministic function of the seed, which is what lets
// the campaign runner (agree.Fuzz) fan seeds across a worker pool and still
// produce bit-identical reports at any worker count.
package fuzz

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Event is one recorded crash: process Proc crashes during its send phase of
// round Round, the data messages selected by Data escape (positionally
// against the plan of that round), and Ctrl control messages (a prefix of the
// ordered sequence) escape. The model's single-crash-point rule means a
// non-zero Ctrl implies every Data entry is true (the data step completed).
type Event struct {
	Proc  int
	Round int
	Data  []bool
	Ctrl  int
}

// String renders the event in the script format: p<proc>@r<round>:<mask>/<ctrl>,
// the mask as '1'/'0' per data message, e.g. "p3@r1:101/0".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d@r%d:", e.Proc, e.Round)
	for _, d := range e.Data {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	fmt.Fprintf(&b, "/%d", e.Ctrl)
	return b.String()
}

// escapes returns how many messages of the event escape (shrink ordering).
func (e Event) escapes() int {
	n := e.Ctrl
	for _, d := range e.Data {
		if d {
			n++
		}
	}
	return n
}

// Script is a replayable crash schedule: at most one event per process, in
// (round, process) order. The empty script is the failure-free schedule.
//
// A script is order-insensitive — replaying it is a pure function of
// (process, round, plan) — so it reproduces identically on every engine,
// including the goroutine-per-process lockstep runtime.
type Script struct {
	Events []Event
}

// String renders the script as ';'-joined events ("" for the empty script),
// the format accepted by Parse, agree.ReplayFaults and agreefuzz -replay.
func (s Script) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Crashes returns the number of crash events.
func (s Script) Crashes() int { return len(s.Events) }

// Clone returns a deep copy, safe to mutate independently.
func (s Script) Clone() Script {
	out := Script{Events: make([]Event, len(s.Events))}
	for i, e := range s.Events {
		out.Events[i] = e
		out.Events[i].Data = append([]bool(nil), e.Data...)
	}
	return out
}

// normalize sorts events into canonical (round, process) order.
func (s *Script) normalize() {
	sort.Slice(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		return a.Proc < b.Proc
	})
}

// validate rejects malformed scripts: events must name positive processes
// and rounds, keep Ctrl non-negative, respect the single-crash-point rule
// (Ctrl > 0 requires a fully-true mask), and no process may crash twice.
func (s Script) validate() error {
	seen := map[int]bool{}
	for _, e := range s.Events {
		if e.Proc < 1 {
			return fmt.Errorf("fuzz: event %s: process out of range", e)
		}
		if e.Round < 1 {
			return fmt.Errorf("fuzz: event %s: round out of range", e)
		}
		if e.Ctrl < 0 {
			return fmt.Errorf("fuzz: event %s: negative control prefix", e)
		}
		if e.Ctrl > 0 {
			for _, d := range e.Data {
				if !d {
					return fmt.Errorf("fuzz: event %s: control prefix with partial data (crash point is unique)", e)
				}
			}
		}
		if seen[e.Proc] {
			return fmt.Errorf("fuzz: p%d crashes twice", e.Proc)
		}
		seen[e.Proc] = true
	}
	return nil
}

// Parse decodes a script rendered by Script.String. The empty string is the
// empty (failure-free) script.
func Parse(text string) (Script, error) {
	var s Script
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ";") {
		e, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return Script{}, err
		}
		s.Events = append(s.Events, e)
	}
	s.normalize()
	if err := s.validate(); err != nil {
		return Script{}, err
	}
	return s, nil
}

// parseEvent decodes one "p<proc>@r<round>:<mask>/<ctrl>" element.
func parseEvent(text string) (Event, error) {
	bad := func() (Event, error) {
		return Event{}, fmt.Errorf("fuzz: bad script event %q (want p<proc>@r<round>:<mask>/<ctrl>)", text)
	}
	rest, ok := strings.CutPrefix(text, "p")
	if !ok {
		return bad()
	}
	procStr, rest, ok := strings.Cut(rest, "@r")
	if !ok {
		return bad()
	}
	roundStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return bad()
	}
	maskStr, ctrlStr, ok := strings.Cut(rest, "/")
	if !ok {
		return bad()
	}
	proc, err := strconv.Atoi(procStr)
	if err != nil {
		return bad()
	}
	round, err := strconv.Atoi(roundStr)
	if err != nil {
		return bad()
	}
	ctrl, err := strconv.Atoi(ctrlStr)
	if err != nil {
		return bad()
	}
	e := Event{Proc: proc, Round: round, Ctrl: ctrl}
	for _, c := range maskStr {
		switch c {
		case '1':
			e.Data = append(e.Data, true)
		case '0':
			e.Data = append(e.Data, false)
		default:
			return bad()
		}
	}
	return e, nil
}

// replayer replays a Script as a sim.Adversary. It is a pure read-only
// function of (process, round, plan) — safe for the lockstep runtime's
// concurrent (mutex-serialized, but scheduling-ordered) consultation — and
// total over mutated scripts: the mask is matched positionally against the
// concrete plan (missing positions drop, extras are ignored), the control
// prefix clamps to the plan's control sequence, and if any delivered data
// bit is false the control prefix is forced to zero so the outcome always
// respects the model's single-crash-point rule.
type replayer struct {
	byProc map[int]Event
}

// Adversary returns a replaying sim.Adversary for the script.
func (s Script) Adversary() sim.Adversary {
	r := &replayer{byProc: make(map[int]Event, len(s.Events))}
	for _, e := range s.Events {
		r.byProc[e.Proc] = e
	}
	return r
}

// Crashes implements sim.Adversary.
func (r *replayer) Crashes(p sim.ProcID, rd sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	e, ok := r.byProc[int(p)]
	if !ok || e.Round != int(rd) {
		return false, sim.CrashOutcome{}
	}
	mask := make([]bool, len(plan.Data))
	full := true
	for i := range mask {
		if i < len(e.Data) && e.Data[i] {
			mask[i] = true
		} else {
			full = false
		}
	}
	ctrl := e.Ctrl
	if ctrl > len(plan.Control) {
		ctrl = len(plan.Control)
	}
	if !full {
		ctrl = 0
	}
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: ctrl}
}
