// Package fuzz turns the deterministic engine into a property-based tester:
// a seeded random-walk adversary drives executions through randomly sampled
// fault schedules — crash faults and send/receive-omission faults — at sizes
// the exhaustive explorer (internal/check) cannot reach, every sampled choice
// is recorded into a compact replayable Script, each run is validated against
// the consensus oracles, and violating scripts are minimized by a
// delta-debugging shrinker while preserving the failure.
//
// The pipeline per seed is
//
//	generate (recording adversary) → validate (oracle) → replay-verify →
//	shrink (fewer events → later events → smaller fault footprints)
//
// and every stage is a deterministic function of the seed, which is what lets
// the campaign runner (agree.Fuzz) fan seeds across a worker pool and still
// produce bit-identical reports at any worker count.
package fuzz

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// EventKind distinguishes the fault classes a script event can carry.
type EventKind uint8

const (
	// EventCrash is a crash fault: the process dies during its send phase,
	// the selected data subset and control prefix escape. The zero value, so
	// pre-omission scripts keep their meaning.
	EventCrash EventKind = iota
	// EventSendOmit is a send-omission fault: the process stays alive but
	// the masked-out messages of this round's send plan silently vanish.
	EventSendOmit
	// EventRecvOmit is a receive-omission fault: the process stays alive but
	// every round-r message from the masked-out senders vanishes at its
	// interface.
	EventRecvOmit
)

// String returns the kind's script tag.
func (k EventKind) String() string {
	switch k {
	case EventSendOmit:
		return "so"
	case EventRecvOmit:
		return "ro"
	default:
		return "crash"
	}
}

// Event is one recorded fault, keyed by (Proc, Round, Kind).
//
// For EventCrash: the data messages selected by Data escape (positionally
// against the plan of that round, missing positions drop) and Ctrl control
// messages (a prefix of the ordered sequence) escape; the model's
// single-crash-point rule means a non-zero Ctrl implies every Data entry is
// true.
//
// For EventSendOmit: Data and CtrlMask are delivered-masks over the round's
// data messages and control sequence (missing positions are DELIVERED — an
// omission names what it drops, the mirror image of the crash convention).
//
// For EventRecvOmit: From is a delivered-mask over senders (index i =
// p_{i+1}; missing positions are delivered).
type Event struct {
	Kind  EventKind
	Proc  int
	Round int
	Data  []bool
	Ctrl  int
	// CtrlMask is the send-omission delivered-mask over the ordered control
	// sequence (EventSendOmit only; a crash cuts a prefix, an omission may
	// drop any subset).
	CtrlMask []bool
	// From is the receive-omission delivered-mask over senders
	// (EventRecvOmit only).
	From []bool
}

// String renders the event in the script format:
//
//	crash      p<proc>@r<round>:<data mask>/<ctrl prefix>   e.g. "p3@r1:101/0"
//	send-omit  p<proc>@r<round>:so:<data mask>/<ctrl mask>  e.g. "p3@r1:so:01/11"
//	recv-omit  p<proc>@r<round>:ro:<sender mask>            e.g. "p3@r1:ro:011"
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "p%d@r%d:", e.Proc, e.Round)
	switch e.Kind {
	case EventSendOmit:
		b.WriteString("so:")
		writeMask(&b, e.Data)
		b.WriteByte('/')
		writeMask(&b, e.CtrlMask)
	case EventRecvOmit:
		b.WriteString("ro:")
		writeMask(&b, e.From)
	default:
		writeMask(&b, e.Data)
		fmt.Fprintf(&b, "/%d", e.Ctrl)
	}
	return b.String()
}

// writeMask renders a boolean mask as '1'/'0' per position.
func writeMask(b *strings.Builder, mask []bool) {
	for _, d := range mask {
		if d {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
}

// escapes returns how many messages of the event escape (shrink ordering).
func (e Event) escapes() int {
	n := e.Ctrl
	for _, d := range e.Data {
		if d {
			n++
		}
	}
	return n
}

// clone returns a deep copy of the event.
func (e Event) clone() Event {
	e.Data = append([]bool(nil), e.Data...)
	e.CtrlMask = append([]bool(nil), e.CtrlMask...)
	e.From = append([]bool(nil), e.From...)
	return e
}

// Script is a replayable fault schedule: crash and omission events in
// canonical (round, process, kind) order — at most one crash per process,
// at most one event per (kind, process, round). The empty script is the
// failure-free schedule.
//
// A script is order-insensitive — replaying it is a pure function of
// (process, round, plan) — so it reproduces identically on every engine,
// including the goroutine-per-process lockstep runtime.
type Script struct {
	Events []Event
}

// String renders the script as ';'-joined events ("" for the empty script),
// the format accepted by Parse, agree.ReplayFaults and agreefuzz -replay.
func (s Script) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Crashes returns the number of crash events.
func (s Script) Crashes() int {
	n := 0
	for _, e := range s.Events {
		if e.Kind == EventCrash {
			n++
		}
	}
	return n
}

// Omissions returns the number of omission events (send and receive).
func (s Script) Omissions() int { return len(s.Events) - s.Crashes() }

// OmissiveProcs returns the number of distinct processes with at least one
// omission event — the omission-fault budget a replay of the script spends.
func (s Script) OmissiveProcs() int {
	procs := map[int]bool{}
	for _, e := range s.Events {
		if e.Kind != EventCrash {
			procs[e.Proc] = true
		}
	}
	return len(procs)
}

// Clone returns a deep copy, safe to mutate independently.
func (s Script) Clone() Script {
	out := Script{Events: make([]Event, len(s.Events))}
	for i, e := range s.Events {
		out.Events[i] = e.clone()
	}
	return out
}

// normalize sorts events into canonical (round, process, kind) order.
func (s *Script) normalize() {
	sort.Slice(s.Events, func(i, j int) bool {
		a, b := s.Events[i], s.Events[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Kind < b.Kind
	})
}

// validate rejects malformed scripts: events must name positive processes
// and rounds; a crash must keep Ctrl non-negative and respect the
// single-crash-point rule (Ctrl > 0 requires a fully-true mask); no process
// may crash twice; no (kind, process, round) may repeat; and a process's
// omission events must precede its crash round (from the crash round on it
// sends and receives nothing, so later omissions could never fire).
func (s Script) validate() error {
	crashRound := map[int]int{}
	for _, e := range s.Events {
		if e.Kind == EventCrash {
			if crashRound[e.Proc] != 0 {
				return fmt.Errorf("fuzz: p%d crashes twice", e.Proc)
			}
			crashRound[e.Proc] = e.Round
		}
	}
	type key struct {
		k    EventKind
		p, r int
	}
	seen := map[key]bool{}
	for _, e := range s.Events {
		if e.Proc < 1 {
			return fmt.Errorf("fuzz: event %s: process out of range", e)
		}
		if e.Round < 1 {
			return fmt.Errorf("fuzz: event %s: round out of range", e)
		}
		switch e.Kind {
		case EventCrash:
			if e.Ctrl < 0 {
				return fmt.Errorf("fuzz: event %s: negative control prefix", e)
			}
			if e.Ctrl > 0 {
				for _, d := range e.Data {
					if !d {
						return fmt.Errorf("fuzz: event %s: control prefix with partial data (crash point is unique)", e)
					}
				}
			}
		case EventSendOmit, EventRecvOmit:
			if cr := crashRound[e.Proc]; cr != 0 && e.Round >= cr {
				return fmt.Errorf("fuzz: event %s: omission at or after p%d's crash round %d", e, e.Proc, cr)
			}
			// An omission event must drop something: all-delivered masks are
			// a semantic no-op, yet they would mark the process omissive and
			// flip replay onto the omission-model oracle.
			if !dropsAny(e.Data) && !dropsAny(e.CtrlMask) && !dropsAny(e.From) {
				return fmt.Errorf("fuzz: event %s: omission drops nothing", e)
			}
		}
		k := key{e.Kind, e.Proc, e.Round}
		if seen[k] {
			return fmt.Errorf("fuzz: duplicate %s event for p%d@r%d", e.Kind, e.Proc, e.Round)
		}
		seen[k] = true
	}
	return nil
}

// dropsAny reports whether a delivered-mask suppresses at least one position.
func dropsAny(mask []bool) bool {
	for _, d := range mask {
		if !d {
			return true
		}
	}
	return false
}

// Parse decodes a script rendered by Script.String. The empty string is the
// empty (failure-free) script.
func Parse(text string) (Script, error) {
	var s Script
	text = strings.TrimSpace(text)
	if text == "" {
		return s, nil
	}
	for _, part := range strings.Split(text, ";") {
		e, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return Script{}, err
		}
		s.Events = append(s.Events, e)
	}
	s.normalize()
	if err := s.validate(); err != nil {
		return Script{}, err
	}
	return s, nil
}

// parseEvent decodes one script element: "p<proc>@r<round>:<mask>/<ctrl>"
// (crash), "p<proc>@r<round>:so:<mask>/<mask>" (send omission) or
// "p<proc>@r<round>:ro:<mask>" (receive omission).
func parseEvent(text string) (Event, error) {
	bad := func() (Event, error) {
		return Event{}, fmt.Errorf("fuzz: bad script event %q (want p<proc>@r<round>:<mask>/<ctrl>, :so:<mask>/<mask> or :ro:<mask>)", text)
	}
	rest, ok := strings.CutPrefix(text, "p")
	if !ok {
		return bad()
	}
	procStr, rest, ok := strings.Cut(rest, "@r")
	if !ok {
		return bad()
	}
	roundStr, rest, ok := strings.Cut(rest, ":")
	if !ok {
		return bad()
	}
	proc, err := strconv.Atoi(procStr)
	if err != nil {
		return bad()
	}
	round, err := strconv.Atoi(roundStr)
	if err != nil {
		return bad()
	}
	e := Event{Proc: proc, Round: round}
	switch {
	case strings.HasPrefix(rest, "so:"):
		e.Kind = EventSendOmit
		dataStr, ctrlStr, ok := strings.Cut(strings.TrimPrefix(rest, "so:"), "/")
		if !ok {
			return bad()
		}
		if e.Data, err = parseMask(dataStr); err != nil {
			return bad()
		}
		if e.CtrlMask, err = parseMask(ctrlStr); err != nil {
			return bad()
		}
	case strings.HasPrefix(rest, "ro:"):
		e.Kind = EventRecvOmit
		if e.From, err = parseMask(strings.TrimPrefix(rest, "ro:")); err != nil {
			return bad()
		}
	default:
		maskStr, ctrlStr, ok := strings.Cut(rest, "/")
		if !ok {
			return bad()
		}
		if e.Ctrl, err = strconv.Atoi(ctrlStr); err != nil {
			return bad()
		}
		if e.Data, err = parseMask(maskStr); err != nil {
			return bad()
		}
	}
	return e, nil
}

// parseMask decodes a '1'/'0' mask (the empty mask is valid).
func parseMask(text string) ([]bool, error) {
	var mask []bool
	for _, c := range text {
		switch c {
		case '1':
			mask = append(mask, true)
		case '0':
			mask = append(mask, false)
		default:
			return nil, fmt.Errorf("fuzz: bad mask %q", text)
		}
	}
	return mask, nil
}

// replayer replays a Script as a sim.Adversary with omission support. It is
// a pure read-only function of (process, round, plan) — safe for the
// lockstep runtime's concurrent (mutex-serialized, but scheduling-ordered)
// consultation — and total over mutated scripts: crash masks are matched
// positionally against the concrete plan (missing positions drop, extras are
// ignored) with the control prefix clamped and forced to zero under partial
// data; omission masks are matched positionally with missing positions
// DELIVERED, so a mutated omission can only shrink toward the fault-free
// schedule.
type replayer struct {
	crashByProc map[int]Event
	sendOmit    map[[2]int]Event // keyed (proc, round)
	recvOmit    map[[2]int]Event
}

// Adversary returns a replaying sim.Adversary for the script. Crash-only
// scripts get a non-Omitter adversary, so their replay rides the engines'
// crash-model path (no omission scratch, no per-(process, round) Omits
// consults) exactly like the pre-omission code; scripts with omission
// events get the omitting variant.
func (s Script) Adversary() sim.Adversary {
	r := &replayer{
		crashByProc: map[int]Event{},
		sendOmit:    map[[2]int]Event{},
		recvOmit:    map[[2]int]Event{},
	}
	for _, e := range s.Events {
		switch e.Kind {
		case EventSendOmit:
			r.sendOmit[[2]int{e.Proc, e.Round}] = e
		case EventRecvOmit:
			r.recvOmit[[2]int{e.Proc, e.Round}] = e
		default:
			r.crashByProc[e.Proc] = e
		}
	}
	if len(r.sendOmit) == 0 && len(r.recvOmit) == 0 {
		return r
	}
	return omittingReplayer{r}
}

// Crashes implements sim.Adversary.
func (r *replayer) Crashes(p sim.ProcID, rd sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	e, ok := r.crashByProc[int(p)]
	if !ok || e.Round != int(rd) {
		return false, sim.CrashOutcome{}
	}
	mask := make([]bool, len(plan.Data))
	full := true
	for i := range mask {
		if i < len(e.Data) && e.Data[i] {
			mask[i] = true
		} else {
			full = false
		}
	}
	ctrl := e.Ctrl
	if ctrl > len(plan.Control) {
		ctrl = len(plan.Control)
	}
	if !full {
		ctrl = 0
	}
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: ctrl}
}

// omittingReplayer is the sim.Omitter face of a replayer, attached only
// when the script actually carries omission events.
type omittingReplayer struct{ *replayer }

// Omits implements sim.Omitter.
func (r omittingReplayer) Omits(p sim.ProcID, rd sim.Round, plan sim.SendPlan) sim.Omission {
	var om sim.Omission
	if e, ok := r.sendOmit[[2]int{int(p), int(rd)}]; ok {
		om.Data = sim.DeliveredMask(e.Data, len(plan.Data))
		om.Ctrl = sim.DeliveredMask(e.CtrlMask, len(plan.Control))
	}
	if e, ok := r.recvOmit[[2]int{int(p), int(rd)}]; ok {
		om.Recv = append([]bool(nil), e.From...)
	}
	return om
}
