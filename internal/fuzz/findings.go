package fuzz

import (
	"fmt"
	"strings"
)

// ParseFindings decodes an `agreefuzz -findings-out` artifact: one replay
// script per line, blank lines ignored. Each script is parsed and validated;
// a malformed line is an error naming its line number. This is the bridge
// from a fuzz campaign's counterexample artifact to the scenario catalog
// (cmd/agreesim -convert): every finding becomes a checked-in scenario file,
// not a flag incantation.
func ParseFindings(text string) ([]Script, error) {
	var out []Script
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("fuzz: findings line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// MaxProc returns the highest process id the script names (0 for the empty
// script) — the minimum system size a replay needs.
func (s Script) MaxProc() int {
	max := 0
	for _, e := range s.Events {
		if e.Proc > max {
			max = e.Proc
		}
		if len(e.From) > max {
			max = len(e.From)
		}
	}
	return max
}
