package fuzz

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
)

// These tests cover the omission extension of the script grammar, the
// recording walk and the shrinker: send/receive-omission events sampled by
// the generator must replay bit-identically, findings must shrink to minimal
// omission scripts, and the grammar must reject malformed omission clauses.

func TestScriptRoundTripOmission(t *testing.T) {
	cases := []string{
		"p1@r1:so:01/11",
		"p2@r2:ro:101",
		"p3@r1:101/0;p1@r2:so:/0;p2@r2:ro:01",
		"p1@r1:so:0/;p1@r1:ro:0",
	}
	for _, text := range cases {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Errorf("round trip %q -> %q", text, got)
		}
	}
	// Events renormalize into (round, process, kind) order: crashes sort
	// before a same-slot send omission, send before receive omissions.
	s, err := Parse("p2@r2:ro:01;p1@r2:so:/0;p3@r1:101/0")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), "p3@r1:101/0;p1@r2:so:/0;p2@r2:ro:01"; got != want {
		t.Errorf("normalize: got %q, want %q", got, want)
	}
	if s.Crashes() != 1 || s.Omissions() != 2 {
		t.Errorf("counts: %d crashes, %d omissions, want 1 and 2", s.Crashes(), s.Omissions())
	}
}

func TestParseRejectsOmission(t *testing.T) {
	cases := []string{
		"p1@r1:so:01",               // no ctrl mask
		"p1@r1:so:02/1",             // bad mask digit
		"p1@r1:ro:",                 // no-op: the empty mask drops nothing
		"p1@r1:so:1/1",              // no-op: all-delivered masks drop nothing
		"p1@r1:ro:111",              // no-op: every sender delivered
		"p0@r1:so:0/1",              // process out of range
		"p1@r0:ro:0",                // round out of range
		"p1@r1:so:0/1;p1@r1:so:0/0", // duplicate send omission
		"p1@r1:ro:1;p1@r1:ro:0",     // duplicate receive omission (and a no-op)
		"p1@r1:10/0;p1@r1:so:0/1",   // omission at the crash round
		"p1@r1:10/0;p1@r3:ro:0",     // omission after the crash round
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
	// The mirror image of the crash-then-omission cases is legal: omissions
	// strictly before the crash round.
	if _, err := Parse("p1@r1:so:0/1;p1@r2:10/0"); err != nil {
		t.Errorf("omission before crash rejected: %v", err)
	}
}

// TestRecordedOmissionScriptReplaysIdentically extends the determinism
// keystone to the omission model: a mixed crash+omission walk must reproduce
// bit for bit — rounds, decisions, crash set, omissive set and traffic
// counters — from its recorded script alone.
func TestRecordedOmissionScriptReplaysIdentically(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(9, core.Options{})
	gen := Gen{T: 3, CrashProb: 0.2, SendOmitProb: 0.15, RecvOmitProb: 0.1, MaxOmissive: 4}
	for seed := int64(0); seed < 50; seed++ {
		tgt := factory()
		rec := &recorder{rng: rand.New(rand.NewSource(seed)), gen: gen, n: len(tgt.Procs)}
		want, wantErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: omittingRecorder{rec},
		})
		if want == nil {
			t.Fatalf("seed %d: %v", seed, wantErr)
		}
		script := rec.script()
		if err := script.validate(); err != nil {
			t.Fatalf("seed %d: recorded script %q invalid: %v", seed, script.String(), err)
		}

		tgt2 := factory()
		got, gotErr := eng.Run(harness.Job{
			Model: tgt2.Model, Horizon: tgt2.Horizon, Procs: tgt2.Procs, Adv: script.Adversary(),
		})
		if got == nil {
			t.Fatalf("seed %d replay: %v", seed, gotErr)
		}
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: engine errors diverged: %v vs %v", seed, wantErr, gotErr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: replay of %q diverged:\n generated %+v\n replayed  %+v",
				seed, script.String(), want, got)
		}
	}
}

// TestOmissionBreaksAgreementAndShrinksToOneEvent is the omission ablation
// at fuzzer level: the faithful algorithm — provably safe under crash faults
// — must fail uniform agreement under omission schedules (the paper's
// reliable-channel assumption at work), and the finding must shrink to a
// single omission event that replays deterministically.
func TestOmissionBreaksAgreementAndShrinksToOneEvent(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(6, core.Options{})
	oracle := ConsensusOracle(nil)
	opts := Options{
		Gen:    Gen{T: 0, SendOmitProb: 0.15, RecvOmitProb: 0.1, MaxOmissive: 3},
		Shrink: true,
	}
	var out Outcome
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		o, err := RunSeed(eng, factory, oracle, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if o.Err != nil && errors.Is(o.Err, check.ErrAgreement) {
			out, found = o, true
		}
	}
	if !found {
		t.Fatal("no agreement violation in 300 omission seeds")
	}
	if out.Faults != 0 {
		t.Errorf("crashes = %d, want 0 (pure omission walk)", out.Faults)
	}
	if out.Shrunk == nil {
		t.Fatal("no shrunk script")
	}
	if got := len(out.Shrunk.Events); got != 1 {
		t.Errorf("shrunk script %q has %d events, want 1", out.Shrunk.String(), got)
	}
	if out.Shrunk.Crashes() != 0 {
		t.Errorf("shrunk script %q contains crash events", out.Shrunk.String())
	}
	if !errors.Is(out.ShrunkErr, check.ErrAgreement) {
		t.Errorf("shrunk script fails with %v, want uniform agreement", out.ShrunkErr)
	}

	// Deterministic replay of the shrunk script: identical results twice.
	var results []*sim.Result
	for i := 0; i < 2; i++ {
		tgt := factory()
		res, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: out.Shrunk.Adversary(),
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		if verr := oracle(tgt.Proposals, res, runErr); !errors.Is(verr, check.ErrAgreement) {
			t.Fatalf("replay %d of %q: %v, want agreement violation", i, out.Shrunk.String(), verr)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("replays diverged: %+v vs %+v", results[0], results[1])
	}
}

// TestShrinkRedeliversOmittedMessages exercises the omission mask pass with
// a synthetic oracle failing whenever any omission happened: the minimum is
// one omission event, and the shrinker must not be able to re-deliver its
// last suppressed message (that would erase the fault and pass the oracle).
func TestShrinkRedeliversOmittedMessages(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(5, core.Options{})
	anyOmission := func(_ []sim.Value, res *sim.Result, runErr error) error {
		if runErr != nil {
			return runErr
		}
		if res.OmissionFaulty() > 0 {
			return errors.New("omission observed")
		}
		return nil
	}
	opts := Options{
		Gen:    Gen{T: 0, SendOmitProb: 0.4, RecvOmitProb: 0.3, MaxOmissive: 4},
		Shrink: true,
	}
	out := findViolation(t, eng, factory, anyOmission, opts, 50)
	if out.Shrunk == nil {
		t.Fatal("no shrunk script")
	}
	s := *out.Shrunk
	if len(s.Events) != 1 {
		t.Fatalf("shrunk to %d events (%q), want 1", len(s.Events), s.String())
	}
	ev := s.Events[0]
	if ev.Kind == EventCrash {
		t.Fatalf("shrunk event %s is a crash", ev)
	}
	// Note: an all-delivered omission event would still count as omissive at
	// the engine, so the synthetic oracle cannot force drops to survive; the
	// real guarantee is minimal event count plus deterministic replay, pinned
	// by the agreement-violation test above.
	t.Logf("shrunk script: %q (from %q)", s.String(), out.Script.String())
}
