package fuzz

// Shrink minimizes a violating script by delta debugging: candidate
// simplifications are replayed through test, and a candidate is kept exactly
// when it still fails the oracle. Simplification passes run in preference
// order — fewer fault events (ddmin-style chunk removal), later fault rounds
// (bounded by maxRound), smaller fault footprints (shorter control prefixes
// and fewer escaped data messages for crashes; fewer omitted messages and
// blocked senders for omissions) — and repeat until a full cycle makes no
// progress or the replay budget is spent.
//
// test returns (oracle violation, fatal error): the candidate is kept when
// the violation is non-nil. serr is the violation of s itself (already
// verified by the caller). Every accepted mutation is monotone — the event
// count never grows, rounds never move earlier, fault footprints never grow —
// so the pass cycle terminates even without the budget.
//
// Shrink returns the minimized script, the oracle violation it fails with,
// and any fatal replay error (which aborts the shrink and returns the best
// script found so far).
func Shrink(s Script, serr error, maxRound, budget int, test func(Script) (error, error)) (Script, error, error) {
	cur := s.Clone()
	curErr := serr
	runs := 0
	var fatal error

	// try replays a candidate; it reports whether the candidate still fails
	// (and was adopted). A spent budget, a fatal error, or a structurally
	// invalid candidate (e.g. a delayed omission colliding with another
	// event) makes it a no-op.
	try := func(cand Script) bool {
		if fatal != nil || runs >= budget {
			return false
		}
		if cand.validate() != nil {
			return false
		}
		runs++
		verr, ferr := test(cand)
		if ferr != nil {
			fatal = ferr
			return false
		}
		if verr == nil {
			return false
		}
		cand.normalize()
		cur, curErr = cand, verr
		return true
	}

	done := func() bool { return fatal != nil || runs >= budget }

	for {
		progress := false

		// Pass 1 — fewer events: remove chunks of events, halving the chunk
		// size down to single events (ddmin).
		for chunk := len(cur.Events); chunk >= 1 && !done(); chunk /= 2 {
			for lo := 0; lo+chunk <= len(cur.Events) && !done(); {
				cand := cur.Clone()
				cand.Events = append(cand.Events[:lo], cand.Events[lo+chunk:]...)
				if try(cand) {
					progress = true
					// cur shrank; the window at lo now holds new events.
					continue
				}
				lo++
			}
		}

		// Pass 2 — later faults: greedily delay each remaining event round
		// by round up to maxRound. Events are addressed by their
		// (kind, process, round) identity, the key tracking the event as it
		// moves; a move that would collide with another event or cross the
		// process's crash round is rejected by validation inside try.
		for _, k := range eventKeys(cur) {
			for !done() {
				i := eventIndex(cur, k)
				if i < 0 || cur.Events[i].Round >= maxRound {
					break
				}
				cand := cur.Clone()
				cand.Events[i].Round++
				if !try(cand) {
					break
				}
				k.round++
				progress = true
			}
		}

		// Pass 3 — smaller crash escape sets: shorten the control prefix
		// (toward zero first, then by halves and single steps), then drop
		// escaped data messages one by one once no control message escapes.
		for _, k := range eventKeys(cur) {
			if k.kind != EventCrash {
				continue
			}
			for !done() {
				i := eventIndex(cur, k)
				if i < 0 || cur.Events[i].Ctrl == 0 {
					break
				}
				c := cur.Events[i].Ctrl
				accepted := false
				tried := map[int]bool{}
				for _, next := range []int{0, c / 2, c - 1} {
					if next >= c || tried[next] {
						continue
					}
					tried[next] = true
					cand := cur.Clone()
					cand.Events[i].Ctrl = next
					if try(cand) {
						accepted = true
						progress = true
						break
					}
					if done() {
						break
					}
				}
				if !accepted {
					break
				}
			}
			for bit := 0; !done(); bit++ {
				i := eventIndex(cur, k)
				if i < 0 || cur.Events[i].Ctrl != 0 || bit >= len(cur.Events[i].Data) {
					break
				}
				if !cur.Events[i].Data[bit] {
					continue
				}
				cand := cur.Clone()
				cand.Events[i].Data[bit] = false
				if try(cand) {
					progress = true
				}
			}
		}

		// Pass 4 — smaller omission footprints: re-deliver omitted messages
		// and unblock senders one by one (flip mask bits toward true, the
		// fault-free direction). Flipping an event's last suppressed bit
		// would make it an all-delivered no-op, which validation rejects
		// inside try — removal of whole events is pass 1's job.
		for _, k := range eventKeys(cur) {
			if k.kind == EventCrash {
				continue
			}
			for _, field := range []func(*Event) []bool{
				func(e *Event) []bool { return e.Data },
				func(e *Event) []bool { return e.CtrlMask },
				func(e *Event) []bool { return e.From },
			} {
				for bit := 0; !done(); bit++ {
					i := eventIndex(cur, k)
					if i < 0 || bit >= len(field(&cur.Events[i])) {
						break
					}
					if field(&cur.Events[i])[bit] {
						continue
					}
					cand := cur.Clone()
					field(&cand.Events[i])[bit] = true
					if try(cand) {
						progress = true
					}
				}
			}
		}

		if !progress || done() {
			return cur, curErr, fatal
		}
	}
}

// evKey identifies an event across renormalizations: scripts hold at most
// one event per (kind, process, round).
type evKey struct {
	kind        EventKind
	proc, round int
}

// eventKeys returns the identities of every event, in canonical script order.
func eventKeys(s Script) []evKey {
	out := make([]evKey, len(s.Events))
	for i, e := range s.Events {
		out[i] = evKey{e.Kind, e.Proc, e.Round}
	}
	return out
}

// eventIndex returns the index of the event with the given identity, or -1
// if it was removed.
func eventIndex(s Script, k evKey) int {
	for i, e := range s.Events {
		if e.Kind == k.kind && e.Proc == k.proc && e.Round == k.round {
			return i
		}
	}
	return -1
}
