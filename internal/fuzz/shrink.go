package fuzz

// Shrink minimizes a violating script by delta debugging: candidate
// simplifications are replayed through test, and a candidate is kept exactly
// when it still fails the oracle. Simplification passes run in preference
// order — fewer crash events (ddmin-style chunk removal), later crash rounds
// (bounded by maxRound), smaller escape sets (shorter control prefixes, then
// fewer escaped data messages) — and repeat until a full cycle makes no
// progress or the replay budget is spent.
//
// test returns (oracle violation, fatal error): the candidate is kept when
// the violation is non-nil. serr is the violation of s itself (already
// verified by the caller). Every accepted mutation is monotone — the event
// count never grows, rounds never move earlier, escape sets never grow — so
// the pass cycle terminates even without the budget.
//
// Shrink returns the minimized script, the oracle violation it fails with,
// and any fatal replay error (which aborts the shrink and returns the best
// script found so far).
func Shrink(s Script, serr error, maxRound, budget int, test func(Script) (error, error)) (Script, error, error) {
	cur := s.Clone()
	curErr := serr
	runs := 0
	var fatal error

	// try replays a candidate; it reports whether the candidate still fails
	// (and was adopted). A spent budget or fatal error makes it a no-op.
	try := func(cand Script) bool {
		if fatal != nil || runs >= budget {
			return false
		}
		runs++
		verr, ferr := test(cand)
		if ferr != nil {
			fatal = ferr
			return false
		}
		if verr == nil {
			return false
		}
		cand.normalize()
		cur, curErr = cand, verr
		return true
	}

	done := func() bool { return fatal != nil || runs >= budget }

	for {
		progress := false

		// Pass 1 — fewer crashes: remove chunks of events, halving the chunk
		// size down to single events (ddmin).
		for chunk := len(cur.Events); chunk >= 1 && !done(); chunk /= 2 {
			for lo := 0; lo+chunk <= len(cur.Events) && !done(); {
				cand := cur.Clone()
				cand.Events = append(cand.Events[:lo], cand.Events[lo+chunk:]...)
				if try(cand) {
					progress = true
					// cur shrank; the window at lo now holds new events.
					continue
				}
				lo++
			}
		}

		// Pass 2 — later crashes: greedily delay each remaining event round
		// by round up to maxRound. Events are addressed by process (stable
		// across the renormalization that each accepted move triggers).
		for _, proc := range procs(cur) {
			for !done() {
				i := eventIndex(cur, proc)
				if i < 0 || cur.Events[i].Round >= maxRound {
					break
				}
				cand := cur.Clone()
				cand.Events[i].Round++
				if !try(cand) {
					break
				}
				progress = true
			}
		}

		// Pass 3 — smaller escape sets: shorten the control prefix (toward
		// zero first, then by halves and single steps), then drop escaped
		// data messages one by one once no control message escapes.
		for _, proc := range procs(cur) {
			for !done() {
				i := eventIndex(cur, proc)
				if i < 0 || cur.Events[i].Ctrl == 0 {
					break
				}
				c := cur.Events[i].Ctrl
				accepted := false
				tried := map[int]bool{}
				for _, next := range []int{0, c / 2, c - 1} {
					if next >= c || tried[next] {
						continue
					}
					tried[next] = true
					cand := cur.Clone()
					cand.Events[i].Ctrl = next
					if try(cand) {
						accepted = true
						progress = true
						break
					}
					if done() {
						break
					}
				}
				if !accepted {
					break
				}
			}
			for bit := 0; !done(); bit++ {
				i := eventIndex(cur, proc)
				if i < 0 || cur.Events[i].Ctrl != 0 || bit >= len(cur.Events[i].Data) {
					break
				}
				if !cur.Events[i].Data[bit] {
					continue
				}
				cand := cur.Clone()
				cand.Events[i].Data[bit] = false
				if try(cand) {
					progress = true
				}
			}
		}

		if !progress || done() {
			return cur, curErr, fatal
		}
	}
}

// procs returns the processes with a crash event, in canonical script order.
func procs(s Script) []int {
	out := make([]int, len(s.Events))
	for i, e := range s.Events {
		out[i] = e.Proc
	}
	return out
}

// eventIndex returns the index of proc's event, or -1 if it was removed.
func eventIndex(s Script, proc int) int {
	for i, e := range s.Events {
		if e.Proc == proc {
			return i
		}
	}
	return -1
}
