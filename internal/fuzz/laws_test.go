package fuzz

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/sim"
)

// mutatedEngine wraps a harness engine and corrupts the result after the
// adapter's own audit has passed — exactly where a law-breaking engine bug
// would sit. The fuzz campaign's LawOracle is the only line of defense left,
// which is what these tests prove works.
type mutatedEngine struct {
	harness.Engine
	mutate func(*sim.Result)
}

func (m mutatedEngine) Run(job harness.Job) (*sim.Result, error) {
	res, err := m.Engine.Run(job)
	if res != nil && err == nil {
		m.mutate(res)
	}
	return res, err
}

// lawHunt fuzzes seeds with the given oracle until a violation surfaces,
// then requires it to be classified under wantLaw and shrunk to at most
// maxEvents fault events.
func lawHunt(t *testing.T, eng harness.Engine, factory Factory, oracle Oracle, gen Gen, wantLaw string, maxEvents int) {
	t.Helper()
	out := findViolation(t, eng, factory, oracle, Options{Gen: gen, Shrink: true}, 200)
	if got := laws.Of(out.Err); got != wantLaw {
		t.Fatalf("violation classified as %q (%v), want %q", got, out.Err, wantLaw)
	}
	if out.Shrunk == nil {
		t.Fatalf("law violation was not shrunk (script %q)", out.Script.String())
	}
	if got := laws.Of(out.ShrunkErr); got != wantLaw {
		t.Fatalf("shrunk violation classified as %q (%v), want %q", got, out.ShrunkErr, wantLaw)
	}
	if n := len(out.Shrunk.Events); n > maxEvents {
		t.Errorf("shrunk script %q has %d events, want <= %d", out.Shrunk.String(), n, maxEvents)
	}
}

// TestPlantedDoubleCountIsCaughtAndShrunk plants the double-counted-delivery
// mutation: whenever a crash dropped messages, the ledger claims one extra
// delivery. Message conservation must flag it, classify it as
// conservation-data, and shrink the hunt to a single crash event.
func TestPlantedDoubleCountIsCaughtAndShrunk(t *testing.T) {
	eng := mutatedEngine{Engine: newEngine(t), mutate: func(res *sim.Result) {
		if res.Counters.DroppedData > 0 {
			res.Ledger.DeliveredData++
		}
	}}
	factory := crwFactory(6, core.Options{})
	oracle := Oracles(ConsensusOracle(check.BoundFPlus1), LawOracle(laws.Budget{Crashes: 3, Omissive: 0}))
	lawHunt(t, eng, factory, oracle, Gen{T: 3, CrashProb: 0.3}, laws.LawConservationData, 1)
}

// TestPlantedBudgetLeakIsCaughtAndShrunk plants the leaked-omission mutation:
// once any process turns omissive, the engine reports a phantom second one —
// an adversary spending past its budget. The budget law must flag it under
// omission-budget and shrink to a single omission event. The law oracle
// stands alone here: the crash-model algorithm makes no round-bound (or even
// agreement) promise under omission faults, so a composed consensus oracle
// would legitimately fire first on unrelated seeds.
func TestPlantedBudgetLeakIsCaughtAndShrunk(t *testing.T) {
	eng := mutatedEngine{Engine: newEngine(t), mutate: func(res *sim.Result) {
		if len(res.Omissive) >= 1 {
			res.Omissive[99] = 1
		}
	}}
	factory := crwFactory(6, core.Options{})
	lawHunt(t, eng, factory, LawOracle(laws.Budget{Crashes: 0, Omissive: 1}),
		Gen{SendOmitProb: 0.2, MaxOmissive: 1}, laws.LawOmissionBudget, 1)
}

// TestPlantedClockViolationIsCaughtAndShrunk plants a surfaced clock
// violation on every faulty run (the genuine detection path — a mangled
// tie-break key inside the event core — is proven in internal/des and
// internal/timed; here the campaign-side plumbing is under test: the law
// oracle must classify and shrink it like any other violation).
func TestPlantedClockViolationIsCaughtAndShrunk(t *testing.T) {
	eng := mutatedEngine{Engine: newEngine(t), mutate: func(res *sim.Result) {
		if res.Faults() > 0 {
			res.ClockViolation = "des: FIFO tie order violated at t=3: event #7 ran after #9"
		}
	}}
	factory := crwFactory(6, core.Options{})
	oracle := Oracles(ConsensusOracle(check.BoundFPlus1), LawOracle(laws.Budget{Crashes: 3, Omissive: 0}))
	lawHunt(t, eng, factory, oracle, Gen{T: 3, CrashProb: 0.3}, laws.LawClock, 1)
}

// TestLawOracleQuietOnFaithfulEngines is the no-false-positive half: with no
// mutation planted, a campaign with the law oracle standing finds nothing,
// with and without omissions. The crash-only case composes the consensus
// oracle (the production pairing); the omission case runs the law oracle
// alone — omission faults can legitimately break the crash-model algorithm's
// consensus promises, but the conservation laws must hold regardless.
func TestLawOracleQuietOnFaithfulEngines(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(9, core.Options{})
	cases := []struct {
		name   string
		gen    Gen
		oracle Oracle
	}{
		{"crash-only", Gen{T: 4, CrashProb: 0.3},
			Oracles(ConsensusOracle(check.BoundFPlus1), LawOracle(laws.Budget{Crashes: 4, Omissive: 0}))},
		{"omissions", Gen{T: 2, CrashProb: 0.2, SendOmitProb: 0.2, RecvOmitProb: 0.2, MaxOmissive: 3},
			LawOracle(laws.Budget{Crashes: 2, Omissive: 3})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				out, err := RunSeed(eng, factory, tc.oracle, seed, Options{Gen: tc.gen})
				if err != nil {
					t.Fatal(err)
				}
				if out.Err != nil {
					t.Fatalf("seed %d: false positive %v (script %q)", seed, out.Err, out.Script.String())
				}
			}
		})
	}
}
