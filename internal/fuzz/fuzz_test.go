package fuzz

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/sim"
)

// crwFactory builds a fresh paper-algorithm system of n processes per call.
func crwFactory(n int, opts core.Options) Factory {
	return func() Target {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		model := sim.ModelExtended
		if opts.CommitAsData {
			model = sim.ModelClassic
		}
		return Target{
			Model:     model,
			Horizon:   sim.Round(n + 2),
			Procs:     core.NewSystem(props, opts),
			Proposals: props,
		}
	}
}

// newEngine returns a fresh deterministic harness engine.
func newEngine(t *testing.T) harness.Engine {
	t.Helper()
	eng, err := harness.New(harness.KindDeterministic)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestScriptRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"p1@r1:/0",
		"p3@r1:101/0",
		"p2@r2:111/2;p4@r3:10/0",
	}
	for _, text := range cases {
		s, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := s.String(); got != text {
			t.Errorf("round trip %q -> %q", text, got)
		}
	}
	// Events are renormalized into (round, process) order.
	s, err := Parse("p4@r3:10/0;p2@r2:111/2")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), "p2@r2:111/2;p4@r3:10/0"; got != want {
		t.Errorf("normalize: got %q, want %q", got, want)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		"p1@r1",               // no mask/ctrl
		"p1@r1:102/0",         // bad mask digit
		"p0@r1:1/0",           // process out of range
		"p1@r0:1/0",           // round out of range
		"p1@r1:1/-1",          // negative control prefix
		"p1@r1:10/1",          // control prefix with partial data
		"p1@r1:1/0;p1@r2:1/0", // double crash
		"bogus",
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted", text)
		}
	}
}

// TestRecordedScriptReplaysIdentically is the determinism keystone: the
// schedule a random walk records must reproduce the walk's run bit for bit
// when replayed — same rounds, decisions, crash set and traffic counters.
func TestRecordedScriptReplaysIdentically(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(9, core.Options{})
	for seed := int64(0); seed < 50; seed++ {
		tgt := factory()
		rec := &recorder{rng: rand.New(rand.NewSource(seed)), gen: Gen{T: 4, CrashProb: 0.3}}
		want, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: rec,
		})
		if runErr != nil {
			t.Fatalf("seed %d: %v", seed, runErr)
		}
		script := rec.script()

		tgt2 := factory()
		got, runErr := eng.Run(harness.Job{
			Model: tgt2.Model, Horizon: tgt2.Horizon, Procs: tgt2.Procs, Adv: script.Adversary(),
		})
		if runErr != nil {
			t.Fatalf("seed %d replay: %v", seed, runErr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("seed %d: replay of %q diverged:\n generated %+v\n replayed  %+v",
				seed, script.String(), want, got)
		}
	}
}

// TestFaithfulAlgorithmSurvivesFuzzing fuzzes the paper's algorithm at a
// size far beyond the exhaustive explorer's reach: no seed may violate
// uniform consensus or the f+1 round bound.
func TestFaithfulAlgorithmSurvivesFuzzing(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(16, core.Options{})
	oracle := ConsensusOracle(check.BoundFPlus1)
	for seed := int64(0); seed < 200; seed++ {
		out, err := RunSeed(eng, factory, oracle, seed, Options{Gen: Gen{T: 8, CrashProb: 0.2}})
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			t.Fatalf("seed %d: false positive %v (script %q)", seed, out.Err, out.Script.String())
		}
	}
}

// findViolation fuzzes seeds until the oracle flags one, returning the
// outcome (with its shrunk script).
func findViolation(t *testing.T, eng harness.Engine, factory Factory, oracle Oracle, opts Options, maxSeeds int64) Outcome {
	t.Helper()
	for seed := int64(0); seed < maxSeeds; seed++ {
		out, err := RunSeed(eng, factory, oracle, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if out.Err != nil {
			return out
		}
	}
	t.Fatalf("no violation in %d seeds", maxSeeds)
	return Outcome{}
}

// TestPlantedAgreementBugIsCaughtAndShrunk plants the CommitAsData mutation
// (the commit rides the data step, so a crash can deliver the commit without
// the data — uniform agreement provably breaks, experiment E10) and requires
// the fuzzer to catch it and shrink the schedule to at most 3 crash events
// that replay deterministically.
func TestPlantedAgreementBugIsCaughtAndShrunk(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(4, core.Options{CommitAsData: true})
	oracle := ConsensusOracle(nil)
	out := findViolation(t, eng, factory, oracle, Options{
		Gen: Gen{T: 3, CrashProb: 0.35}, Shrink: true,
	}, 500)
	if !errors.Is(out.Err, check.ErrAgreement) {
		t.Fatalf("violation is %v, want uniform agreement", out.Err)
	}
	if out.Shrunk == nil {
		t.Fatal("no shrunk script")
	}
	if got := out.Shrunk.Crashes(); got > 3 {
		t.Errorf("shrunk script has %d crash events (%q), want <= 3", got, out.Shrunk.String())
	}
	if !errors.Is(out.ShrunkErr, check.ErrAgreement) {
		t.Errorf("shrunk script fails with %v, want uniform agreement", out.ShrunkErr)
	}
	if out.Shrunk.Crashes() > out.Script.Crashes() {
		t.Errorf("shrinker grew the script: %d -> %d events", out.Script.Crashes(), out.Shrunk.Crashes())
	}

	// The shrunk script must replay deterministically: two fresh replays
	// produce identical results and the identical violation.
	var errs []string
	var results []*sim.Result
	for i := 0; i < 2; i++ {
		tgt := factory()
		res, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: out.Shrunk.Adversary(),
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		verr := oracle(tgt.Proposals, res, runErr)
		if verr == nil {
			t.Fatalf("replay %d of shrunk script %q passed", i, out.Shrunk.String())
		}
		errs = append(errs, verr.Error())
		results = append(results, res)
	}
	if errs[0] != errs[1] {
		t.Errorf("replays diverged: %q vs %q", errs[0], errs[1])
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("replayed results diverged: %+v vs %+v", results[0], results[1])
	}
}

// TestPlantedOracleMutationIsCaught mutates the oracle instead of the
// protocol: the f+1 round-bound check is weakened to the classic
// min(f+2, t+1) bound. On the ascending-commit-order ablation — whose
// executions can decide after f+1 rounds — the faithful oracle must catch
// violations the weakened oracle misses, and the first such finding must
// shrink to at most 3 crash events that replay deterministically.
//
// (A weakened *agreement* check — non-uniform, survivors only — is not
// observable at this engine's granularity: deciding and halting are atomic
// at the end of the receive phase and the adversary is only consulted for
// alive, unhalted processes, so no process can ever crash after deciding
// and uniform agreement coincides with plain agreement. The round bound is
// the weakest oracle clause with an observable mutation.)
func TestPlantedOracleMutationIsCaught(t *testing.T) {
	eng := newEngine(t)
	const n, tt = 5, 3
	factory := crwFactory(n, core.Options{Order: core.OrderAscending})
	faithful := ConsensusOracle(check.BoundFPlus1)
	weakened := ConsensusOracle(check.BoundClassic(tt))

	var caught, missed int
	var first *Outcome
	opts := Options{Gen: Gen{T: tt, CrashProb: 0.35}, Shrink: true}
	for seed := int64(0); seed < 500; seed++ {
		out, err := RunSeed(eng, factory, faithful, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		if out.Err == nil {
			continue
		}
		if !errors.Is(out.Err, check.ErrRoundBound) {
			t.Fatalf("seed %d: ascending-order ablation violated %v, want only the round bound", seed, out.Err)
		}
		caught++
		// Re-run the same recorded schedule under the weakened oracle.
		tgt := factory()
		res, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: out.Script.Adversary(),
		})
		if weakened(tgt.Proposals, res, runErr) == nil {
			missed++
			if first == nil {
				o := out
				first = &o
			}
		}
	}
	if caught == 0 {
		t.Fatal("faithful oracle caught nothing on the ascending-order ablation")
	}
	if missed == 0 {
		t.Fatalf("weakened oracle missed none of %d round-bound violations; the planted mutation is not observable", caught)
	}
	t.Logf("faithful oracle caught %d violations, weakened bound missed %d of them", caught, missed)

	if first.Shrunk == nil {
		t.Fatal("no shrunk script for the first missed finding")
	}
	if got := first.Shrunk.Crashes(); got > 3 {
		t.Errorf("shrunk script has %d crash events (%q), want <= 3", got, first.Shrunk.String())
	}
	// Deterministic replay: two fresh replays agree on result and verdict.
	var results []*sim.Result
	for i := 0; i < 2; i++ {
		tgt := factory()
		res, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: first.Shrunk.Adversary(),
		})
		if verr := faithful(tgt.Proposals, res, runErr); !errors.Is(verr, check.ErrRoundBound) {
			t.Fatalf("replay %d of shrunk script %q: %v, want round-bound violation", i, first.Shrunk.String(), verr)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("replayed results diverged: %+v vs %+v", results[0], results[1])
	}
}

// TestPlantedRoundBoundMutationShrinksToEmpty plants a too-strict round
// bound (f instead of f+1): even the failure-free execution violates it, so
// the shrinker must strip every crash event and return the empty script.
func TestPlantedRoundBoundMutationShrinksToEmpty(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(6, core.Options{})
	mutated := ConsensusOracle(func(f int) sim.Round { return sim.Round(f) })
	out := findViolation(t, eng, factory, mutated, Options{
		Gen: Gen{T: 3, CrashProb: 0.3}, Shrink: true,
	}, 50)
	if !errors.Is(out.Err, check.ErrRoundBound) {
		t.Fatalf("violation is %v, want round bound", out.Err)
	}
	if out.Shrunk == nil || out.Shrunk.Crashes() != 0 {
		t.Fatalf("shrunk script %q, want the empty (failure-free) script", out.Shrunk.String())
	}
}

// TestShrinkPrefersLaterAndSmaller exercises the secondary shrink passes on
// a synthetic oracle that fails whenever any crash event exists: the minimum
// is a single fully-silent crash in the last allowed round.
func TestShrinkPrefersLaterAndSmaller(t *testing.T) {
	eng := newEngine(t)
	factory := crwFactory(5, core.Options{})
	anyCrash := func(_ []sim.Value, res *sim.Result, runErr error) error {
		if runErr != nil {
			return runErr
		}
		if res.Faults() > 0 {
			return errors.New("crash observed")
		}
		return nil
	}
	out := findViolation(t, eng, factory, anyCrash, Options{
		Gen: Gen{T: 4, CrashProb: 0.5}, Shrink: true,
	}, 50)
	if out.Shrunk == nil {
		t.Fatal("no shrunk script")
	}
	s := *out.Shrunk
	if s.Crashes() != 1 {
		t.Fatalf("shrunk to %d events (%q), want 1", s.Crashes(), s.String())
	}
	ev := s.Events[0]
	if ev.escapes() != 0 {
		t.Errorf("shrunk event %s still lets %d messages escape, want 0", ev, ev.escapes())
	}
	// The crash round was pushed as late as the run still crashes: for a
	// system that decides in round <= horizon, any round up to the last round
	// the process is still alive-and-sending qualifies; it must at least have
	// moved past round 1 unless only round 1 reproduces.
	if ev.Round < 1 {
		t.Errorf("bad shrunk round %d", ev.Round)
	}
	t.Logf("shrunk script: %q (from %q)", s.String(), out.Script.String())
}
