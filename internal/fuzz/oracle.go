package fuzz

import (
	"repro/internal/check"
	"repro/internal/sim"
)

// ConsensusOracle is the standard fuzzing oracle: any engine error (horizon
// exhaustion, model violation) is a failure, the run must satisfy uniform
// consensus (validity, uniform agreement, termination — check.Consensus),
// and, when bound is non-nil, every decision must land within bound(f) rounds
// (check.RoundBound). Pass check.BoundFPlus1 for the paper's algorithm,
// check.BoundClassic(t) for the early-stopping baseline.
func ConsensusOracle(bound func(f int) sim.Round) Oracle {
	return func(proposals []sim.Value, res *sim.Result, runErr error) error {
		if runErr != nil {
			return runErr
		}
		if err := check.Consensus(proposals, res); err != nil {
			return err
		}
		if bound != nil {
			return check.RoundBound(res, bound)
		}
		return nil
	}
}
