package fuzz

import (
	"repro/internal/check"
	"repro/internal/laws"
	"repro/internal/sim"
)

// ConsensusOracle is the standard fuzzing oracle: any engine error (horizon
// exhaustion, model violation) is a failure, the run must satisfy uniform
// consensus (validity, uniform agreement, termination — check.Consensus),
// and, when bound is non-nil, every decision must land within bound(f) rounds
// (check.RoundBound). Pass check.BoundFPlus1 for the paper's algorithm,
// check.BoundClassic(t) for the early-stopping baseline.
func ConsensusOracle(bound func(f int) sim.Round) Oracle {
	return func(proposals []sim.Value, res *sim.Result, runErr error) error {
		if runErr != nil {
			return runErr
		}
		if err := check.Consensus(proposals, res); err != nil {
			return err
		}
		if bound != nil {
			return check.RoundBound(res, bound)
		}
		return nil
	}
}

// LawOracle is the standing law-audit oracle: every successfully finished
// run must satisfy the per-run laws of internal/laws — message conservation,
// ledger/counter consistency, the event-clock contract, and the given fault
// budget. Engine errors pass through untouched (a partial run is legitimately
// unbalanced; the consensus oracle owns run errors), so LawOracle composes
// with ConsensusOracle via Oracles without double-reporting.
//
// A violation found by this oracle replays and shrinks exactly like a
// consensus violation: laws are pure functions of the run's result, and the
// result is a deterministic function of the script.
func LawOracle(b laws.Budget) Oracle {
	return func(_ []sim.Value, res *sim.Result, runErr error) error {
		if runErr != nil {
			return nil
		}
		return laws.AuditAll(res, b)
	}
}

// Oracles combines several oracles into one: each is consulted in order and
// the first violation wins.
func Oracles(oracles ...Oracle) Oracle {
	return func(proposals []sim.Value, res *sim.Result, runErr error) error {
		for _, o := range oracles {
			if err := o(proposals, res, runErr); err != nil {
				return err
			}
		}
		return nil
	}
}
