// Package diagram renders execution transcripts as ASCII space-time
// diagrams: one column per process, one block of lines per round, with
// message arrows, crashes, decisions and halts. It turns the trace of a
// counterexample or a worst-case schedule into something a reader can check
// against the paper's proofs at a glance.
package diagram

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Render produces a space-time diagram for an n-process execution from its
// transcript.
func Render(log *trace.Log, n int) string {
	if log == nil || log.Len() == 0 {
		return "(empty trace)\n"
	}
	var b strings.Builder

	// Group events by round, preserving order within a round.
	rounds := map[int][]trace.Event{}
	maxRound := 0
	for _, e := range log.Events() {
		rounds[e.Round] = append(rounds[e.Round], e)
		if e.Round > maxRound {
			maxRound = e.Round
		}
	}

	// Header: process columns.
	b.WriteString("      ")
	for p := 1; p <= n; p++ {
		fmt.Fprintf(&b, "%-6s", fmt.Sprintf("p%d", p))
	}
	b.WriteByte('\n')

	crashed := map[int]bool{}
	halted := map[int]bool{}
	for r := 0; r <= maxRound; r++ {
		evs := rounds[r]
		if len(evs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "r%-4d ", r)
		// Status line: process lifecycle at the start of the round.
		for p := 1; p <= n; p++ {
			switch {
			case crashed[p]:
				b.WriteString("✗     ")
			case halted[p]:
				b.WriteString("■     ")
			default:
				b.WriteString("│     ")
			}
		}
		b.WriteByte('\n')

		for _, e := range evs {
			switch e.Kind {
			case trace.KindSend:
				fmt.Fprintf(&b, "      %s\n", arrow(e, n))
			case trace.KindDrop:
				fmt.Fprintf(&b, "      %s (dropped)\n", arrow(e, n))
			case trace.KindCrash:
				crashed[e.From] = true
				fmt.Fprintf(&b, "      %s✗ CRASH p%d %s\n", pad(e.From), e.From, e.Detail)
			case trace.KindDecide:
				fmt.Fprintf(&b, "      %s● DECIDE p%d %s\n", pad(e.From), e.From, e.Detail)
			case trace.KindHalt:
				halted[e.From] = true
				fmt.Fprintf(&b, "      %s■ HALT p%d\n", pad(e.From), e.From)
			}
		}
	}

	// Footer: final decisions summary.
	b.WriteString("\nlegend: │ alive  ✗ crashed  ■ returned  ● decision  -> data  => control\n")
	return b.String()
}

// pad indents to process p's column.
func pad(p int) string { return strings.Repeat(" ", (p-1)*6) }

// arrow renders a message edge between two process columns.
func arrow(e trace.Event, n int) string {
	from, to := e.From, e.To
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	head := "->"
	if e.Detail == "control" {
		head = "=>"
	}
	width := (hi-lo)*6 - 1
	if width < 1 {
		width = 1
	}
	line := strings.Repeat("-", width)
	if from < to {
		return fmt.Sprintf("%s%s%s%s p%d%s p%d", pad(lo), "+", line, head, from, head, to)
	}
	return fmt.Sprintf("%s<%s%s p%d%s p%d", pad(lo), line, "+", from, head, to)
}

// Summary renders a one-line-per-round digest: who sent, who crashed, who
// decided.
func Summary(log *trace.Log) string {
	if log == nil {
		return ""
	}
	type roundInfo struct {
		senders map[int]bool
		crashes []int
		decides []int
	}
	rounds := map[int]*roundInfo{}
	get := func(r int) *roundInfo {
		if rounds[r] == nil {
			rounds[r] = &roundInfo{senders: map[int]bool{}}
		}
		return rounds[r]
	}
	maxRound := 0
	for _, e := range log.Events() {
		if e.Round > maxRound {
			maxRound = e.Round
		}
		switch e.Kind {
		case trace.KindSend:
			get(e.Round).senders[e.From] = true
		case trace.KindCrash:
			get(e.Round).crashes = append(get(e.Round).crashes, e.From)
		case trace.KindDecide:
			get(e.Round).decides = append(get(e.Round).decides, e.From)
		}
	}
	var b strings.Builder
	for r := 1; r <= maxRound; r++ {
		ri := rounds[r]
		if ri == nil {
			continue
		}
		senders := make([]int, 0, len(ri.senders))
		for s := range ri.senders {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		sort.Ints(ri.crashes)
		sort.Ints(ri.decides)
		fmt.Fprintf(&b, "round %d: senders %v, crashes %v, decisions %v\n",
			r, senders, ri.crashes, ri.decides)
	}
	return b.String()
}
