package diagram_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/sim"
	"repro/internal/trace"
)

// traced runs a CRW instance with the given adversary and returns its log.
func traced(t *testing.T, n int, adv sim.Adversary) *trace.Log {
	t.Helper()
	props := make([]sim.Value, n)
	for i := range props {
		props[i] = sim.Value(100 + i)
	}
	log := trace.New()
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Trace: log},
		core.NewSystem(props, core.Options{}), adv)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return log
}

func TestRenderFailureFree(t *testing.T) {
	log := traced(t, 4, adversary.None{})
	out := diagram.Render(log, 4)
	for _, want := range []string{"p1", "p4", "DECIDE p1", "DECIDE p4", "HALT p1", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram lacks %q:\n%s", want, out)
		}
	}
	// Control messages render with the => head.
	if !strings.Contains(out, "=>") {
		t.Errorf("diagram lacks control arrows:\n%s", out)
	}
}

func TestRenderCrash(t *testing.T) {
	log := traced(t, 4, adversary.CoordinatorKiller{F: 1})
	out := diagram.Render(log, 4)
	if !strings.Contains(out, "CRASH p1") {
		t.Errorf("diagram lacks crash marker:\n%s", out)
	}
	if !strings.Contains(out, "(dropped)") {
		t.Errorf("diagram lacks dropped messages:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := diagram.Render(nil, 3); !strings.Contains(out, "empty") {
		t.Errorf("nil log rendering = %q", out)
	}
	if out := diagram.Render(trace.New(), 3); !strings.Contains(out, "empty") {
		t.Errorf("empty log rendering = %q", out)
	}
}

func TestSummary(t *testing.T) {
	log := traced(t, 4, adversary.CoordinatorKiller{F: 1})
	s := diagram.Summary(log)
	// p1 crashed delivering nothing, so round 1 has no completed sends.
	if !strings.Contains(s, "round 1: senders [], crashes [1], decisions []") {
		t.Errorf("summary round 1 wrong:\n%s", s)
	}
	if !strings.Contains(s, "round 2: senders [2], crashes [], decisions [2 3 4]") {
		t.Errorf("summary round 2 wrong:\n%s", s)
	}
	if diagram.Summary(nil) != "" {
		t.Error("nil summary not empty")
	}
}

func TestSummarySkipsQuietRounds(t *testing.T) {
	log := trace.New()
	log.Add(trace.Event{Round: 3, Kind: trace.KindSend, From: 1, To: 2})
	s := diagram.Summary(log)
	if strings.Contains(s, "round 1") || strings.Contains(s, "round 2") {
		t.Errorf("summary includes quiet rounds:\n%s", s)
	}
}
