package async_test

import (
	"sync"
	"testing"

	"repro/internal/async"
)

// pingPong bounces a counter back and forth until it reaches zero.
type pingPong struct {
	mu      sync.Mutex
	starts  bool
	peer    async.NodeID
	initial int
	got     []int
}

func (p *pingPong) Init(ctx *async.Context) {
	if p.starts {
		ctx.Send(p.peer, p.initial)
	}
}

func (p *pingPong) OnMessage(ctx *async.Context, m async.Message) {
	v := m.Payload.(int)
	p.mu.Lock()
	p.got = append(p.got, v)
	p.mu.Unlock()
	if v > 0 {
		ctx.Send(m.From, v-1)
	}
}

func TestPingPongRunsToQuiescence(t *testing.T) {
	a := &pingPong{starts: true, peer: 2, initial: 10}
	b := &pingPong{}
	eng, err := async.NewEngine([]async.Handler{a, b})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// b received 10, 8, 6, 4, 2, 0; a received 9, 7, 5, 3, 1.
	if len(b.got) != 6 || len(a.got) != 5 {
		t.Fatalf("a got %v, b got %v", a.got, b.got)
	}
	if eng.MessagesSent() != 11 {
		t.Errorf("messages sent = %d, want 11", eng.MessagesSent())
	}
}

func TestFIFOPerChannel(t *testing.T) {
	// A sender's messages to one destination arrive in send order.
	type burst struct{ seq int }
	recvd := make(chan int, 100)
	sender := handlerFunc{
		init: func(ctx *async.Context) {
			for i := 0; i < 50; i++ {
				ctx.Send(2, burst{i})
			}
		},
	}
	receiver := handlerFunc{
		onMessage: func(_ *async.Context, m async.Message) {
			recvd <- m.Payload.(burst).seq
		},
	}
	eng, err := async.NewEngine([]async.Handler{sender, receiver})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	close(recvd)
	want := 0
	for seq := range recvd {
		if seq != want {
			t.Fatalf("FIFO violated: got %d, want %d", seq, want)
		}
		want++
	}
	if want != 50 {
		t.Fatalf("received %d messages, want 50", want)
	}
}

// handlerFunc adapts closures to async.Handler.
type handlerFunc struct {
	init      func(*async.Context)
	onMessage func(*async.Context, async.Message)
}

func (h handlerFunc) Init(ctx *async.Context) {
	if h.init != nil {
		h.init(ctx)
	}
}

func (h handlerFunc) OnMessage(ctx *async.Context, m async.Message) {
	if h.onMessage != nil {
		h.onMessage(ctx, m)
	}
}

func TestBroadcastReachesEveryone(t *testing.T) {
	const n = 6
	var mu sync.Mutex
	got := map[async.NodeID]int{}
	handlers := make([]async.Handler, n)
	handlers[0] = handlerFunc{init: func(ctx *async.Context) { ctx.Broadcast("hello") }}
	for i := 1; i < n; i++ {
		handlers[i] = handlerFunc{onMessage: func(ctx *async.Context, m async.Message) {
			mu.Lock()
			got[ctx.ID()]++
			mu.Unlock()
		}}
	}
	eng, err := async.NewEngine(handlers)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != n-1 {
		t.Fatalf("broadcast reached %d nodes, want %d", len(got), n-1)
	}
	for id, c := range got {
		if c != 1 {
			t.Errorf("node %d received %d copies", id, c)
		}
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := async.NewEngine(nil); err == nil {
		t.Error("accepted empty system")
	}
	if _, err := async.NewEngine([]async.Handler{nil}); err == nil {
		t.Error("accepted nil handler")
	}
}

func TestQuiescenceWithNoTraffic(t *testing.T) {
	eng, err := async.NewEngine([]async.Handler{handlerFunc{}, handlerFunc{}})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run() // must return promptly with nothing to deliver
	if eng.MessagesSent() != 0 {
		t.Errorf("messages sent = %d, want 0", eng.MessagesSent())
	}
}
