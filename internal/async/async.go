// Package async is a goroutine-based asynchronous message-passing engine
// with reliable FIFO channels and no timing assumptions — the fault-free
// asynchronous substrate used by the Chandy–Lamport snapshot algorithm
// (internal/snapshot), the paper's canonical related-work example of
// synchronization messages (reference [6]).
//
// Every node runs in its own goroutine with an unbounded FIFO mailbox.
// Messages from one sender to one destination are delivered in send order
// (per-channel FIFO, the assumption Chandy–Lamport requires); messages from
// different senders interleave arbitrarily, depending on the Go scheduler —
// genuine asynchrony.
//
// A run starts by calling every node's Init and ends at quiescence: when
// every handler has returned and no message is in flight. In-flight
// accounting uses a WaitGroup incremented at send time and decremented after
// the receiving handler returns, so the count can only reach zero when the
// system is globally idle.
package async

import (
	"errors"
	"fmt"
	"sync"
)

// NodeID identifies a node (1-based, like sim.ProcID).
type NodeID int

// Message is a delivered message.
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
}

// Handler is the behaviour of one node. The engine calls Init once, then
// OnMessage serially (one goroutine per node) for every delivered message.
type Handler interface {
	// Init runs when the system starts; use it to send initial messages.
	Init(ctx *Context)
	// OnMessage handles one delivered message.
	OnMessage(ctx *Context, m Message)
}

// Context gives a handler access to the engine. It is only valid during the
// handler invocation it was passed to (Init or OnMessage).
type Context struct {
	engine *Engine
	id     NodeID
}

// ID returns the node this context belongs to.
func (c *Context) ID() NodeID { return c.id }

// N returns the number of nodes in the system.
func (c *Context) N() int { return len(c.engine.nodes) }

// Send delivers payload to the node `to` over the FIFO channel (c.ID() → to).
// Sending to self or to a nonexistent node panics: both indicate protocol
// bugs in a fault-free substrate.
func (c *Context) Send(to NodeID, payload any) {
	if to == c.id {
		panic(fmt.Sprintf("async: node %d sends to itself", c.id))
	}
	c.engine.send(Message{From: c.id, To: to, Payload: payload})
}

// Broadcast sends payload to every other node, in id order.
func (c *Context) Broadcast(payload any) {
	for i := 1; i <= c.N(); i++ {
		if NodeID(i) != c.id {
			c.Send(NodeID(i), payload)
		}
	}
}

// mailbox is an unbounded FIFO queue with blocking receive.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put enqueues a message.
func (m *mailbox) put(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

// get dequeues the next message, blocking until one arrives or the mailbox
// closes (ok=false).
func (m *mailbox) get() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// close wakes all waiters and drops future messages.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// node pairs a handler with its mailbox.
type node struct {
	id      NodeID
	handler Handler
	mbox    *mailbox
}

// Engine executes a set of nodes until quiescence.
type Engine struct {
	nodes    []*node
	inflight sync.WaitGroup
	msgCount sync.Mutex
	sent     int
}

// NewEngine builds an engine over handlers; handlers[i] becomes node i+1.
func NewEngine(handlers []Handler) (*Engine, error) {
	if len(handlers) == 0 {
		return nil, errors.New("async: no nodes")
	}
	e := &Engine{}
	for i, h := range handlers {
		if h == nil {
			return nil, fmt.Errorf("async: nil handler at index %d", i)
		}
		e.nodes = append(e.nodes, &node{id: NodeID(i + 1), handler: h, mbox: newMailbox()})
	}
	return e, nil
}

// send queues a message for delivery and accounts it as in-flight.
func (e *Engine) send(m Message) {
	if m.To < 1 || int(m.To) > len(e.nodes) {
		panic(fmt.Sprintf("async: send to nonexistent node %d", m.To))
	}
	e.inflight.Add(1)
	e.msgCount.Lock()
	e.sent++
	e.msgCount.Unlock()
	e.nodes[m.To-1].mbox.put(m)
}

// MessagesSent returns the total number of messages sent during the run.
func (e *Engine) MessagesSent() int {
	e.msgCount.Lock()
	defer e.msgCount.Unlock()
	return e.sent
}

// Run executes all nodes until quiescence: every Init and OnMessage handler
// has returned and no message remains undelivered. It then stops the node
// goroutines and returns.
func (e *Engine) Run() {
	// One in-flight token per Init keeps the count positive until every
	// initial burst of sends is accounted.
	e.inflight.Add(len(e.nodes))
	for _, n := range e.nodes {
		n := n
		go func() {
			ctx := &Context{engine: e, id: n.id}
			n.handler.Init(ctx)
			e.inflight.Done()
			for {
				m, ok := n.mbox.get()
				if !ok {
					return
				}
				n.handler.OnMessage(ctx, m)
				e.inflight.Done()
			}
		}()
	}
	e.inflight.Wait()
	for _, n := range e.nodes {
		n.mbox.close()
	}
}
