package simulate_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/simulate"
)

func props(n int) []sim.Value {
	vs := make([]sim.Value, n)
	for i := range vs {
		vs[i] = sim.Value(100 + i)
	}
	return vs
}

func TestStrideAndRoundConversion(t *testing.T) {
	if simulate.Stride(5) != 5 {
		t.Errorf("Stride(5) = %d, want 5", simulate.Stride(5))
	}
	if r := simulate.MacroRound(1, 4); r != 1 {
		t.Errorf("MacroRound(1,4) = %d, want 1", r)
	}
	if r := simulate.MacroRound(4, 4); r != 1 {
		t.Errorf("MacroRound(4,4) = %d, want 1", r)
	}
	if r := simulate.MacroRound(5, 4); r != 2 {
		t.Errorf("MacroRound(5,4) = %d, want 2", r)
	}
	if r := simulate.MicroRounds(3, 4); r != 12 {
		t.Errorf("MicroRounds(3,4) = %d, want 12", r)
	}
	if r := simulate.MacroRound(0, 4); r != 0 {
		t.Errorf("MacroRound(0,4) = %d, want 0", r)
	}
}

func TestSimulatedCRWFailureFree(t *testing.T) {
	// The paper's algorithm simulated on the classic model decides in one
	// macro round = n micro rounds when p1 is correct, with the same value.
	const n = 5
	pr := props(n)
	procs := simulate.OnClassic(core.NewSystem(pr, core.Options{}))
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic,
		Horizon: simulate.MicroRounds(sim.Round(n+2), n)}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := check.Consensus(pr, res); err != nil {
		t.Fatal(err)
	}
	if got, want := simulate.MacroRound(res.MaxDecideRound(), n), sim.Round(1); got != want {
		t.Errorf("macro decide round = %d, want %d (micro %d)", got, want, res.MaxDecideRound())
	}
	for id, v := range res.Decisions {
		if v != pr[0] {
			t.Errorf("p%d decided %d, want %d", id, int64(v), int64(pr[0]))
		}
	}
}

func TestSimulationPreservesPrefixSemantics(t *testing.T) {
	// Crash p1 in the micro round carrying control position 2 (micro round 3
	// for n=4: phases are data,c0,c1,c2), delivering nothing in that micro
	// round. p1's control order is descending [p4, p3, p2], so positions 0
	// and 1 escaped: exactly p4 and p3 received the commit — a prefix — and
	// decide in macro round 1; p2 decides in macro round 2 under p2's own
	// coordination with p1's locked value.
	const n = 4
	pr := props(n)
	procs := simulate.OnClassic(core.NewSystem(pr, core.Options{}))
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 3, DeliverAllData: false}, // micro round 3 = control position 1 (0-based)
	})
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic,
		Horizon: simulate.MicroRounds(sim.Round(n+2), n)}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := check.Consensus(pr, res); err != nil {
		t.Fatal(err)
	}
	// Crash in micro round 3 means control positions 0 (micro 2) escaped but
	// position 1 (micro 3) did not: only p4 has the commit in macro round 1.
	if mr := simulate.MacroRound(res.DecideRound[4], n); mr != 1 {
		t.Errorf("p4 decided in macro round %d, want 1", mr)
	}
	for _, id := range []sim.ProcID{2, 3} {
		if mr := simulate.MacroRound(res.DecideRound[id], n); mr != 2 {
			t.Errorf("p%d decided in macro round %d, want 2", id, mr)
		}
	}
	// Everyone decides p1's locked value (the data step completed).
	for id, v := range res.Decisions {
		if v != pr[0] {
			t.Errorf("p%d decided %d, want %d", id, int64(v), int64(pr[0]))
		}
	}
}

func TestSimulatedRunsSatisfyConsensusUnderRandomFaults(t *testing.T) {
	const n = 5
	for seed := int64(0); seed < 40; seed++ {
		pr := props(n)
		procs := simulate.OnClassic(core.NewSystem(pr, core.Options{}))
		adv := adversary.NewRandom(seed, 0.05, n-1)
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic,
			Horizon: simulate.MicroRounds(sim.Round(n+2), n)}, procs, adv)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := check.Consensus(pr, res); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestExhaustiveSimulatedCRW(t *testing.T) {
	// Model-check the simulation itself for a small system: every execution
	// of the simulated protocol satisfies uniform consensus, and decisions
	// happen within f+1 macro rounds.
	const n, budget = 3, 20_000_000
	factory := func(ch interface{ Choose(int) int }) check.Execution {
		pr := props(n)
		procs := simulate.OnClassic(core.NewSystem(pr, core.Options{}))
		return check.Execution{
			Procs:     procs,
			Adv:       adversary.NewFromChooser(ch, n-1, simulate.MicroRounds(sim.Round(n), n)),
			Cfg:       sim.Config{Model: sim.ModelClassic, Horizon: simulate.MicroRounds(sim.Round(n+2), n)},
			Proposals: pr,
		}
	}
	validator := func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if err := check.Consensus(ex.Proposals, res); err != nil {
			return err
		}
		return check.RoundBound(res, func(f int) sim.Round {
			return simulate.MicroRounds(sim.Round(f+1), n)
		})
	}
	stats, err := check.Explore(factory, validator, check.ExploreOpts{Budget: budget})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(stats.Counterexamples) != 0 {
		ce := stats.Counterexamples[0]
		t.Fatalf("violation: %v (script %v)", ce.Err, ce.Script)
	}
	t.Logf("%d executions, max micro decide round %d", stats.Executions, stats.MaxDecideRound)
}

func TestClassicProtocolRunsUnchangedUnderExtended(t *testing.T) {
	// The other direction of the equivalence: a classic protocol (here the
	// paper's algorithm in CommitAsData form, which is control-free) runs
	// under the extended model with identical results.
	pr := props(4)
	run := func(model sim.Model) *sim.Result {
		procs := core.NewSystem(pr, core.Options{CommitAsData: true})
		eng, err := sim.NewEngine(sim.Config{Model: model, Horizon: 8}, procs,
			adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
				1: {Round: 1, DeliverAllData: true},
			}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(sim.ModelClassic), run(sim.ModelExtended)
	if a.Rounds != b.Rounds {
		t.Errorf("rounds differ: classic %d vs extended %d", a.Rounds, b.Rounds)
	}
	for id, v := range a.Decisions {
		if b.Decisions[id] != v {
			t.Errorf("p%d: decisions differ: %d vs %d", id, int64(v), int64(b.Decisions[id]))
		}
	}
}
