// Package simulate implements the mutual simulations of Section 2.2, which
// establish that the extended synchronous model and the traditional
// synchronous model have the same computability power.
//
// Classic on extended: trivial. A classic-model protocol never emits control
// messages, so it runs unchanged under the extended model with identical
// round counts (the engine accepts data-only plans in either model).
//
// Extended on classic: each extended round is expanded into 1 + (n-1) classic
// micro rounds — one data micro round followed by one micro round per control
// position. Sending each control message in its own micro round enforces the
// prescribed sending order, and the classic crash rule then yields exactly
// the extended model's semantics:
//
//   - a crash in the data micro round delivers an arbitrary subset of the
//     data messages and no control message (nothing was sent yet in later
//     micro rounds);
//   - a crash in control micro round i delivers all data plus the control
//     messages of micro rounds < i — a prefix of the ordered sequence — and,
//     within micro round i itself, the arbitrary-subset rule applied to a
//     single message means it is delivered or not.
//
// The cost is the round inflation the paper calls "non-efficient": a factor
// of n (measured by experiment E6).
package simulate

import (
	"fmt"

	"repro/internal/sim"
)

// Marker is the classic-model encoding of a control message: a one-bit data
// payload. The wrapper converts it back into a Control-kind message before
// handing it to the wrapped extended-model process.
type Marker struct{}

// Bits returns 1, the cost of a control message.
func (Marker) Bits() int { return 1 }

// String renders the marker.
func (Marker) String() string { return "marker" }

// Stride returns the number of classic micro rounds that one extended round
// expands into for an n-process system: one data micro round plus one micro
// round per possible control position (n-1).
func Stride(n int) int { return n }

// MacroRound converts a classic micro round number to the extended (macro)
// round it belongs to.
func MacroRound(micro sim.Round, n int) sim.Round {
	if micro <= 0 {
		return 0
	}
	return (micro-1)/sim.Round(Stride(n)) + 1
}

// MicroRounds returns the number of classic rounds needed to simulate r
// extended rounds.
func MicroRounds(r sim.Round, n int) sim.Round { return r * sim.Round(Stride(n)) }

// OnClassic wraps extended-model processes so they run under the classic
// model. The returned processes implement sim.Process for a classic-model
// engine whose horizon must cover MicroRounds of the wrapped protocol's
// horizon.
func OnClassic(procs []sim.Process) []sim.Process {
	n := len(procs)
	out := make([]sim.Process, n)
	for i, p := range procs {
		out[i] = &wrapper{inner: p, n: n}
	}
	return out
}

// wrapper adapts one extended-model process to the classic model.
type wrapper struct {
	inner sim.Process
	n     int

	plan  sim.SendPlan  // the inner plan of the current macro round
	inbox []sim.Message // buffered deliveries of the current macro round
}

// ID implements sim.Process.
func (w *wrapper) ID() sim.ProcID { return w.inner.ID() }

// phase returns the macro round and the phase within it: phase 0 is the data
// micro round, phase i >= 1 carries control position i.
func (w *wrapper) phase(micro sim.Round) (macro sim.Round, phase int) {
	stride := sim.Round(Stride(w.n))
	macro = (micro-1)/stride + 1
	phase = int((micro - 1) % stride)
	return macro, phase
}

// Send implements sim.Process for the classic engine.
func (w *wrapper) Send(micro sim.Round) sim.SendPlan {
	macro, phase := w.phase(micro)
	if phase == 0 {
		w.plan = w.inner.Send(macro)
		w.inbox = w.inbox[:0]
		return sim.SendPlan{Data: w.plan.Data}
	}
	idx := phase - 1
	if idx >= len(w.plan.Control) {
		return sim.SendPlan{}
	}
	return sim.SendPlan{Data: []sim.Outgoing{{To: w.plan.Control[idx], Payload: Marker{}}}}
}

// Receive implements sim.Process: it buffers micro-round deliveries and hands
// the reconstructed extended-round inbox to the inner process at the end of
// the macro round.
func (w *wrapper) Receive(micro sim.Round, inbox []sim.Message) {
	macro, phase := w.phase(micro)
	for _, m := range inbox {
		if _, ok := m.Payload.(Marker); ok {
			w.inbox = append(w.inbox, sim.Message{
				From: m.From, To: m.To, Round: macro, Kind: sim.Control,
			})
			continue
		}
		m.Round = macro
		w.inbox = append(w.inbox, m)
	}
	if phase == Stride(w.n)-1 {
		w.inner.Receive(macro, w.inbox)
		w.inbox = nil
	}
}

// Decided implements sim.Process.
func (w *wrapper) Decided() (sim.Value, bool) { return w.inner.Decided() }

// Halted implements sim.Process.
func (w *wrapper) Halted() bool { return w.inner.Halted() }

// String renders the wrapper.
func (w *wrapper) String() string { return fmt.Sprintf("classic-sim(%v)", w.inner) }
