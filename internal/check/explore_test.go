package check_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/earlystop"
	"repro/internal/consensus/floodset"
	"repro/internal/core"
	"repro/internal/sim"
)

func TestBacktrackerEnumeratesFullTree(t *testing.T) {
	// A fixed choice structure Choose(2) then Choose(3) has 6 leaves.
	bt := check.NewBacktracker()
	seen := map[string]bool{}
	for {
		a := bt.Choose(2)
		b := bt.Choose(3)
		key := fmt.Sprintf("%d-%d", a, b)
		if seen[key] {
			t.Fatalf("duplicate execution %s", key)
		}
		seen[key] = true
		if !bt.Next() {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d executions, want 6", len(seen))
	}
}

func TestBacktrackerDependentTree(t *testing.T) {
	// The shape of later choices may depend on earlier picks; count leaves of
	// Choose(2) -> {0: Choose(2), 1: leaf}: 3 executions.
	bt := check.NewBacktracker()
	count := 0
	for {
		if bt.Choose(2) == 0 {
			bt.Choose(2)
		}
		count++
		if !bt.Next() {
			break
		}
	}
	if count != 3 {
		t.Fatalf("enumerated %d executions, want 3", count)
	}
}

func TestBacktrackerTrivialChoices(t *testing.T) {
	bt := check.NewBacktracker()
	if v := bt.Choose(1); v != 0 {
		t.Errorf("Choose(1) = %d, want 0", v)
	}
	if v := bt.Choose(0); v != 0 {
		t.Errorf("Choose(0) = %d, want 0", v)
	}
	if bt.Next() {
		t.Error("Next() = true for a tree with no real choices")
	}
}

func TestReplayerReproducesScript(t *testing.T) {
	r := &check.Replayer{Values: []int{1, 2, 0}}
	got := []int{r.Choose(2), r.Choose(3), r.Choose(2), r.Choose(5)}
	want := []int{1, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("choice %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Out-of-range script values are clamped.
	r2 := &check.Replayer{Values: []int{9}}
	if v := r2.Choose(3); v != 2 {
		t.Errorf("clamped choice = %d, want 2", v)
	}
}

// crwFactory builds executions of the paper's algorithm with n processes and
// crash budget t, every nondeterministic choice resolved by the chooser.
func crwFactory(n, t int, opts core.Options) check.RunFactory {
	return func(ch interface{ Choose(int) int }) check.Execution {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		model := sim.ModelExtended
		if opts.CommitAsData {
			model = sim.ModelClassic
		}
		return check.Execution{
			Procs:     core.NewSystem(props, opts),
			Adv:       adversary.NewFromChooser(ch, t, sim.Round(n)),
			Cfg:       sim.Config{Model: model, Horizon: sim.Round(n + 2)},
			Proposals: props,
		}
	}
}

// fullValidator checks the uniform consensus spec plus the f+1 bound and
// rejects engine errors.
func fullValidator(bound func(int) sim.Round) check.Validator {
	return func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if err := check.Consensus(ex.Proposals, res); err != nil {
			return err
		}
		if bound != nil {
			return check.RoundBound(res, bound)
		}
		return nil
	}
}

func TestExhaustiveCRWSmall(t *testing.T) {
	// Experiment E5: enumerate EVERY execution of the faithful algorithm for
	// small systems. Every execution must satisfy uniform consensus and the
	// f+1 decision bound of Theorem 1, and the bound must be attained
	// (tightness: some execution with f = t crashes decides only at t+1).
	cases := []struct {
		n, t int
	}{
		{3, 1},
		{3, 2},
		{4, 1},
		{4, 2},
		{5, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n=%d,t=%d", tc.n, tc.t), func(t *testing.T) {
			stats, err := check.Explore(crwFactory(tc.n, tc.t, core.Options{}),
				fullValidator(check.BoundFPlus1),
				check.ExploreOpts{Budget: 20_000_000})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if len(stats.Counterexamples) != 0 {
				ce := stats.Counterexamples[0]
				t.Fatalf("violation after %d executions: %v (script %v, decisions %v)",
					stats.Executions, ce.Err, ce.Script, ce.Result.Decisions)
			}
			if stats.MaxFaults != tc.t {
				t.Errorf("max faults = %d, want %d", stats.MaxFaults, tc.t)
			}
			// Tightness: the f+1 bound is met with equality somewhere.
			if want := sim.Round(tc.t + 1); stats.MaxDecideRound != want {
				t.Errorf("max decide round = %d, want exactly %d (bound tight)",
					stats.MaxDecideRound, want)
			}
			t.Logf("n=%d t=%d: %d executions, max decide round %d",
				tc.n, tc.t, stats.Executions, stats.MaxDecideRound)
		})
	}
}

func TestExhaustiveAscendingOrderViolatesBound(t *testing.T) {
	// Experiment E10a: with the ascending commit order, the explorer finds an
	// execution violating the f+1 bound (but never an agreement violation).
	agreementOnly := func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		return check.Consensus(ex.Proposals, res)
	}
	stats, err := check.Explore(crwFactory(4, 1, core.Options{Order: core.OrderAscending}),
		agreementOnly, check.ExploreOpts{Budget: 20_000_000})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(stats.Counterexamples) != 0 {
		t.Fatalf("agreement violated under ascending order: %v", stats.Counterexamples[0].Err)
	}
	// Now check the round bound: it must fail somewhere.
	stats, err = check.Explore(crwFactory(4, 1, core.Options{Order: core.OrderAscending}),
		fullValidator(check.BoundFPlus1), check.ExploreOpts{Budget: 20_000_000})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(stats.Counterexamples) == 0 {
		t.Fatal("ascending commit order unexpectedly satisfies the f+1 bound everywhere")
	}
	if !errors.Is(stats.Counterexamples[0].Err, check.ErrRoundBound) {
		t.Fatalf("counterexample error = %v, want round bound violation", stats.Counterexamples[0].Err)
	}
	t.Logf("found bound violation, script %v", stats.Counterexamples[0].Script)
}

func TestExhaustiveCommitAsDataViolatesAgreement(t *testing.T) {
	// Experiment E10b: without the two-step send structure (commit sent as an
	// ordinary data message), the explorer finds a uniform agreement
	// violation.
	stats, err := check.Explore(crwFactory(3, 1, core.Options{CommitAsData: true}),
		fullValidator(nil), check.ExploreOpts{Budget: 20_000_000})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if len(stats.Counterexamples) == 0 {
		t.Fatal("commit-as-data unexpectedly satisfies uniform agreement everywhere")
	}
	found := false
	for _, ce := range stats.Counterexamples {
		if errors.Is(ce.Err, check.ErrAgreement) {
			found = true
			t.Logf("agreement counterexample: %v (script %v)", ce.Err, ce.Script)
		}
	}
	if !found {
		// The first violation may be a round-bound artifact; search deeper.
		stats, err = check.Explore(crwFactory(3, 1, core.Options{CommitAsData: true}),
			func(ex check.Execution, res *sim.Result, engineErr error) error {
				if engineErr != nil {
					return nil // tolerate horizon issues; we want agreement only
				}
				if err := check.Consensus(ex.Proposals, res); errors.Is(err, check.ErrAgreement) {
					return err
				}
				return nil
			}, check.ExploreOpts{Budget: 20_000_000})
		if err != nil {
			t.Fatalf("explore: %v", err)
		}
		if len(stats.Counterexamples) == 0 {
			t.Fatal("no uniform agreement violation found for commit-as-data")
		}
	}
}

func TestExhaustiveEarlyStop(t *testing.T) {
	// The classic early-stopping baseline satisfies uniform consensus and the
	// min(f+2, t+1) bound on every execution of small systems.
	cases := []struct{ n, t int }{{3, 1}, {3, 2}, {4, 1}}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n=%d,t=%d", tc.n, tc.t), func(t *testing.T) {
			factory := func(ch interface{ Choose(int) int }) check.Execution {
				props := make([]sim.Value, tc.n)
				for i := range props {
					props[i] = sim.Value(10 + i)
				}
				return check.Execution{
					Procs:     earlystop.NewSystem(props, tc.t, 8),
					Adv:       adversary.NewFromChooser(ch, tc.t, sim.Round(tc.t+1)),
					Cfg:       sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tc.t + 2)},
					Proposals: props,
				}
			}
			stats, err := check.Explore(factory, fullValidator(check.BoundClassic(tc.t)),
				check.ExploreOpts{Budget: 20_000_000})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if len(stats.Counterexamples) != 0 {
				ce := stats.Counterexamples[0]
				t.Fatalf("violation: %v (script %v, decisions %v, crashed %v)",
					ce.Err, ce.Script, ce.Result.Decisions, ce.Result.Crashed)
			}
			t.Logf("n=%d t=%d: %d executions, max decide round %d",
				tc.n, tc.t, stats.Executions, stats.MaxDecideRound)
		})
	}
}

func TestExhaustiveFloodSet(t *testing.T) {
	// FloodSet satisfies uniform consensus on every execution and always
	// takes exactly t+1 rounds.
	cases := []struct{ n, t int }{{3, 1}, {3, 2}}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n=%d,t=%d", tc.n, tc.t), func(t *testing.T) {
			factory := func(ch interface{ Choose(int) int }) check.Execution {
				props := make([]sim.Value, tc.n)
				for i := range props {
					props[i] = sim.Value(10 + i)
				}
				return check.Execution{
					Procs:     floodset.NewSystem(props, tc.t, 8),
					Adv:       adversary.NewFromChooser(ch, tc.t, sim.Round(tc.t+1)),
					Cfg:       sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tc.t + 2)},
					Proposals: props,
				}
			}
			validator := func(ex check.Execution, res *sim.Result, engineErr error) error {
				if engineErr != nil {
					return engineErr
				}
				if err := check.Consensus(ex.Proposals, res); err != nil {
					return err
				}
				// Every decider decides exactly at round t+1: no early stopping.
				for id, r := range res.DecideRound {
					if r != sim.Round(tc.t+1) {
						return fmt.Errorf("p%d decided at round %d, want %d", id, r, tc.t+1)
					}
				}
				return nil
			}
			stats, err := check.Explore(factory, validator, check.ExploreOpts{Budget: 20_000_000})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if len(stats.Counterexamples) != 0 {
				ce := stats.Counterexamples[0]
				t.Fatalf("violation: %v (script %v)", ce.Err, ce.Script)
			}
			t.Logf("n=%d t=%d: %d executions", tc.n, tc.t, stats.Executions)
		})
	}
}

func TestExploreBudgetExhaustion(t *testing.T) {
	_, err := check.Explore(crwFactory(4, 2, core.Options{}), fullValidator(nil),
		check.ExploreOpts{Budget: 10})
	if !errors.Is(err, check.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
