package check

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseScript parses a comma-separated choice script ("1,0,2") into the
// []int form accepted by Replayer — the format counterexamples are printed
// in by the explorer CLIs (agreexplore -replay).
func ParseScript(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("check: bad script element %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ScriptString renders a choice script in the ParseScript format.
func ScriptString(script []int) string {
	parts := make([]string, len(script))
	for i, v := range script {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}
