package check

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrBudget is returned by Explore when the execution budget is exhausted
// before the choice space was covered.
var ErrBudget = errors.New("check: execution budget exhausted before exploration completed")

// choice is one resolved choice point: the value picked and its domain size.
type choice struct {
	picked int
	n      int
}

// Backtracker is an adversary.Chooser that enumerates all choice sequences
// in lexicographic order. Use it in a loop:
//
//	bt := NewBacktracker()
//	for {
//	    runExecutionWith(bt)
//	    if !bt.Next() { break }
//	}
//
// Every call sequence of Choose within one execution must be a deterministic
// function of the previously returned values (which holds for the
// deterministic engine), so the recorded script uniquely identifies an
// execution.
type Backtracker struct {
	script []choice
	pos    int
	// frozen is the length of the script prefix Next may not modify. A
	// frozen backtracker enumerates exactly the subtree of executions whose
	// first choices match the prefix; the parallel explorer shards the choice
	// space this way.
	frozen int
}

// NewBacktracker returns a chooser positioned at the all-zeros script.
func NewBacktracker() *Backtracker { return &Backtracker{} }

// newBacktrackerFrozen returns a chooser whose first len(prefix) choices are
// pinned: it starts at the lexicographically-first script extending the
// prefix and Next never backtracks into the pinned region.
func newBacktrackerFrozen(prefix []choice) *Backtracker {
	return &Backtracker{script: append([]choice(nil), prefix...), frozen: len(prefix)}
}

// Choose implements adversary.Chooser: it replays the current script and
// extends it with 0-picks at fresh choice points.
func (b *Backtracker) Choose(n int) int {
	if n <= 1 {
		return 0
	}
	if b.pos < len(b.script) {
		v := b.script[b.pos].picked
		b.pos++
		return v
	}
	b.script = append(b.script, choice{picked: 0, n: n})
	b.pos++
	return 0
}

// Next advances to the next script in lexicographic order and rewinds the
// replay position. It returns false when the space (the frozen-prefix
// subtree, for a sharded backtracker) is exhausted.
func (b *Backtracker) Next() bool {
	for len(b.script) > b.frozen {
		last := len(b.script) - 1
		b.script[last].picked++
		if b.script[last].picked < b.script[last].n {
			b.pos = 0
			return true
		}
		b.script = b.script[:last]
	}
	return false
}

// Script returns the current choice script (picked values only), which
// reproduces the execution when fed to a replaying chooser. The returned
// slice is a fresh exact-size copy, safe to retain.
func (b *Backtracker) Script() []int {
	out := make([]int, len(b.script))
	for i, c := range b.script {
		out[i] = c.picked
	}
	return out
}

// choices returns a copy of the raw script with domain sizes, used by the
// parallel explorer to derive frozen prefixes.
func (b *Backtracker) choices() []choice {
	return append([]choice(nil), b.script...)
}

// Replayer is a chooser that replays a fixed script (and picks 0 beyond its
// end); it reproduces an execution found by the explorer.
type Replayer struct {
	Values []int
	pos    int
}

// Choose implements adversary.Chooser.
func (r *Replayer) Choose(n int) int {
	if r.pos >= len(r.Values) {
		return 0
	}
	v := r.Values[r.pos]
	r.pos++
	if v >= n {
		v = n - 1
	}
	return v
}

// Execution is one run produced by a RunFactory: the engine inputs plus the
// proposals needed to validate the consensus specification.
type Execution struct {
	Procs     []sim.Process
	Adv       sim.Adversary
	Cfg       sim.Config
	Proposals []sim.Value
}

// RunFactory builds a fresh execution whose nondeterminism is resolved by
// the given chooser. It is invoked once per explored execution.
//
// The explorer reuses one engine across the executions of a factory (via
// sim.Engine.Reset) whenever consecutive executions share a Config, so a
// factory should return the same Model/Horizon/Trace every call — which every
// fixed-scenario factory naturally does. Factories passed to ExploreParallel
// must additionally be safe for concurrent calls.
type RunFactory func(ch interface{ Choose(int) int }) Execution

// Validator inspects a finished run; returning an error flags a violation.
// engineErr is the engine's own error (e.g. horizon exhaustion), which the
// validator may tolerate or reject.
type Validator func(ex Execution, res *sim.Result, engineErr error) error

// Counterexample records a violating execution.
type Counterexample struct {
	Script []int
	Err    error
	Result *sim.Result
}

// Stats aggregates an exploration.
type Stats struct {
	// Executions is the number of distinct executions explored.
	Executions int
	// MaxRounds is the maximum run length seen.
	MaxRounds sim.Round
	// MaxDecideRound is the latest decision round seen in any execution.
	MaxDecideRound sim.Round
	// MaxFaults is the largest number of crashes in any execution.
	MaxFaults int
	// Counterexamples are the violations found (up to the configured limit).
	Counterexamples []Counterexample
}

// merge folds another Stats (a disjoint shard of the same space) into s,
// concatenating counterexamples in the order given.
func (s *Stats) merge(o Stats) {
	s.Executions += o.Executions
	if o.MaxRounds > s.MaxRounds {
		s.MaxRounds = o.MaxRounds
	}
	if o.MaxDecideRound > s.MaxDecideRound {
		s.MaxDecideRound = o.MaxDecideRound
	}
	if o.MaxFaults > s.MaxFaults {
		s.MaxFaults = o.MaxFaults
	}
	s.Counterexamples = append(s.Counterexamples, o.Counterexamples...)
}

// observe folds one execution's result into the aggregate.
func (s *Stats) observe(res *sim.Result) {
	s.Executions++
	if res.Rounds > s.MaxRounds {
		s.MaxRounds = res.Rounds
	}
	if m := res.MaxDecideRound(); m > s.MaxDecideRound {
		s.MaxDecideRound = m
	}
	if f := res.Faults(); f > s.MaxFaults {
		s.MaxFaults = f
	}
}

// ExploreOpts tunes an exploration.
type ExploreOpts struct {
	// Budget caps the number of executions (0 = unlimited). Exceeding it
	// returns ErrBudget alongside the partial stats.
	Budget int
	// MaxCounterexamples stops the search after this many violations
	// (default 1).
	MaxCounterexamples int
	// Workers sets the worker-pool size for ExploreParallel (0 = GOMAXPROCS).
	// Sequential Explore ignores it.
	Workers int
}

// engineRunner runs a sequence of executions, reusing one engine whenever the
// configs are compatible (same model/horizon/trace).
type engineRunner struct {
	eng *sim.Engine
	cfg sim.Config
}

// run executes ex, returning the result and the engine's run error; the
// third return is a construction error (bad processes/adversary), which is
// fatal to an exploration.
func (er *engineRunner) run(ex Execution) (*sim.Result, error, error) {
	if er.eng != nil &&
		ex.Cfg.Model == er.cfg.Model && ex.Cfg.Horizon == er.cfg.Horizon &&
		ex.Cfg.Trace == er.cfg.Trace {
		if err := er.eng.Reset(ex.Procs, ex.Adv); err != nil {
			return nil, nil, err
		}
	} else {
		eng, err := sim.NewEngine(ex.Cfg, ex.Procs, ex.Adv)
		if err != nil {
			return nil, nil, err
		}
		er.eng, er.cfg = eng, ex.Cfg
	}
	res, runErr := er.eng.Run()
	return res, runErr, nil
}

// Explore enumerates every execution generated by the factory under a
// backtracking chooser, validating each. It returns aggregate statistics and
// any counterexamples found.
func Explore(factory RunFactory, validate Validator, opts ExploreOpts) (Stats, error) {
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = 1
	}
	bt := NewBacktracker()
	var er engineRunner
	var stats Stats
	for {
		if opts.Budget > 0 && stats.Executions >= opts.Budget {
			return stats, fmt.Errorf("%w (after %d executions)", ErrBudget, stats.Executions)
		}
		ex := factory(bt)
		res, runErr, err := er.run(ex)
		if err != nil {
			return stats, fmt.Errorf("check: building engine: %w", err)
		}
		stats.observe(res)
		if verr := validate(ex, res, runErr); verr != nil {
			stats.Counterexamples = append(stats.Counterexamples, Counterexample{
				Script: bt.Script(),
				Err:    verr,
				Result: res,
			})
			if len(stats.Counterexamples) >= opts.MaxCounterexamples {
				return stats, nil
			}
		}
		if !bt.Next() {
			return stats, nil
		}
	}
}
