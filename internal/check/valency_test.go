package check_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
)

// valencyFactory builds CRW executions over explicit proposals, optionally
// forcing the first `cleanRounds` rounds crash-free before the chooser takes
// over (the Staged adversary's job).
func valencyFactory(proposals []sim.Value, t int, cleanRounds sim.Round) check.RunFactory {
	n := len(proposals)
	return func(ch interface{ Choose(int) int }) check.Execution {
		props := append([]sim.Value(nil), proposals...)
		var adv sim.Adversary = adversary.NewFromChooser(ch, t, sim.Round(n))
		if cleanRounds > 0 {
			adv = adversary.Staged{Until: cleanRounds, First: adversary.None{}, Rest: adv}
		}
		return check.Execution{
			Procs:     core.NewSystem(props, core.Options{}),
			Adv:       adv,
			Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2)},
			Proposals: props,
		}
	}
}

func TestMixedProposalsAreBivalent(t *testing.T) {
	// The seed of the paper's lower bound (Theorem 3, via [2]): with mixed
	// proposals the initial configuration is bivalent — the adversary can
	// steer the run to either value.
	v, err := check.ValencySet(valencyFactory([]sim.Value{0, 1, 1}, 2, 0),
		check.ExploreOpts{Budget: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bivalent() {
		t.Fatalf("mixed proposals not bivalent: %v (over %d executions)", v, v.Executions)
	}
	if len(v.Values) != 2 || v.Values[0] != 0 || v.Values[1] != 1 {
		t.Errorf("valency = %v, want {0, 1}", v.Values)
	}
}

func TestUniformProposalsAreUnivalent(t *testing.T) {
	// Validity makes all-same-proposal configurations trivially univalent.
	v, err := check.ValencySet(valencyFactory([]sim.Value{7, 7, 7}, 2, 0),
		check.ExploreOpts{Budget: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if v.Bivalent() || len(v.Values) != 1 || v.Values[0] != 7 {
		t.Errorf("valency = %v, want univalent {7}", v)
	}
}

func TestCleanRoundForcesUnivalence(t *testing.T) {
	// The heart of the agreement proof (Lemma 2): once the round-1
	// coordinator completes line 4 without crashing, its estimate is locked
	// — every continuation, however adversarial, decides p1's value. In
	// valency terms: one clean round collapses the bivalent initial
	// configuration to a univalent one.
	v, err := check.ValencySet(valencyFactory([]sim.Value{0, 1, 1}, 2, 1),
		check.ExploreOpts{Budget: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if v.Bivalent() {
		t.Fatalf("configuration after a clean round still bivalent: %v", v)
	}
	if len(v.Values) != 1 || v.Values[0] != 0 {
		t.Errorf("locked value = %v, want p1's proposal 0", v.Values)
	}
	// With a clean first round everyone has decided: exactly one execution.
	if v.Executions != 1 {
		t.Errorf("executions = %d, want 1 (run ends in round 1)", v.Executions)
	}
}

func TestBivalenceMaintainedByCrashingCoordinators(t *testing.T) {
	// The adversary that realizes the lower bound keeps the configuration
	// bivalent by killing each coordinator silently: after rounds 1..k of
	// silent coordinator deaths (k <= t-1... up to t), the remaining
	// configuration is still bivalent as long as processes with distinct
	// estimates remain. Pin rounds 1..k to the killer, explore the rest.
	proposals := []sim.Value{0, 1, 2, 3}
	const tt = 3
	for k := 1; k <= 2; k++ {
		k := k
		factory := func(ch interface{ Choose(int) int }) check.Execution {
			props := append([]sim.Value(nil), proposals...)
			rest := adversary.NewFromChooser(ch, tt-k, 4)
			adv := adversary.Staged{
				Until: sim.Round(k),
				First: adversary.CoordinatorKiller{F: k},
				Rest:  rest,
			}
			return check.Execution{
				Procs:     core.NewSystem(props, core.Options{}),
				Adv:       adv,
				Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 6},
				Proposals: props,
			}
		}
		v, err := check.ValencySet(factory, check.ExploreOpts{Budget: 10_000_000})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !v.Bivalent() {
			t.Errorf("k=%d: configuration univalent too early: %v", k, v)
		}
		// The values still reachable are exactly the surviving estimates.
		for _, val := range v.Values {
			if int(val) < k {
				t.Errorf("k=%d: dead coordinator's value %d still reachable", k, int64(val))
			}
		}
	}
}

func TestStagedAdversaryBoundary(t *testing.T) {
	// Staged switches exactly after Until: a killer confined to round 1 must
	// not crash the round-2 coordinator.
	adv := adversary.Staged{
		Until: 1,
		First: adversary.CoordinatorKiller{F: 3},
		Rest:  adversary.None{},
	}
	plan := sim.SendPlan{}
	if crash, _ := adv.Crashes(1, 1, plan); !crash {
		t.Error("round-1 crash suppressed")
	}
	if crash, _ := adv.Crashes(2, 2, plan); crash {
		t.Error("round-2 crash leaked through the stage boundary")
	}
}
