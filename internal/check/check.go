// Package check validates consensus executions and exhaustively explores the
// space of crash schedules for small systems.
//
// The validators encode the uniform consensus specification of Section 3.1
// (validity, uniform agreement, termination) plus round-bound predicates for
// the theorems being reproduced (Theorem 1's f+1 bound, the classic
// min(f+2, t+1) bound).
//
// The explorer turns the deterministic engine into a bounded model checker:
// every nondeterministic choice of an execution (crash or not, escaped data
// subset, escaped control prefix) is resolved by a backtracking Chooser, and
// the explorer enumerates all choice sequences in lexicographic order. For
// the system sizes used in experiment E5 (n <= 5, t <= 2) this enumerates
// every execution of the model, which is exactly the quantification the
// paper's proofs (and its lower bound, Theorem 4) range over.
package check

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Violation errors returned by the validators.
var (
	ErrValidity    = errors.New("check: validity violated (decision not a proposal)")
	ErrAgreement   = errors.New("check: uniform agreement violated (two distinct decisions)")
	ErrTermination = errors.New("check: termination violated (surviving process never decided)")
	ErrRoundBound  = errors.New("check: decision round bound violated")
)

// Consensus validates the uniform consensus specification against a finished
// run: every decided value is a proposal; no two processes (correct or
// faulty) decided differently; every process that did not crash decided.
func Consensus(proposals []sim.Value, res *sim.Result) error {
	prop := make(map[sim.Value]bool, len(proposals))
	for _, v := range proposals {
		prop[v] = true
	}
	for id, v := range res.Decisions {
		if !prop[v] {
			return fmt.Errorf("%w: p%d decided %d, proposals %v", ErrValidity, id, int64(v), proposals)
		}
	}
	if d := res.DistinctDecisions(); len(d) > 1 {
		return fmt.Errorf("%w: decisions %v by %v", ErrAgreement, d, res.Decisions)
	}
	for i := 1; i <= len(proposals); i++ {
		id := sim.ProcID(i)
		if _, crashed := res.Crashed[id]; crashed {
			continue
		}
		if _, ok := res.Decisions[id]; !ok {
			return fmt.Errorf("%w: p%d alive after %d rounds", ErrTermination, id, res.Rounds)
		}
	}
	return nil
}

// RoundBound validates that no process decided after bound(f), where f is
// the number of crashes that occurred in the run. Pass core's f+1 bound as
// func(f int) sim.Round { return sim.Round(f + 1) }.
func RoundBound(res *sim.Result, bound func(f int) sim.Round) error {
	limit := bound(res.Faults())
	for id, r := range res.DecideRound {
		if r > limit {
			return fmt.Errorf("%w: p%d decided at round %d > bound %d (f=%d)",
				ErrRoundBound, id, r, limit, res.Faults())
		}
	}
	return nil
}

// BoundFPlus1 is Theorem 1's bound for the extended model.
func BoundFPlus1(f int) sim.Round { return sim.Round(f + 1) }

// BoundClassic returns the classic-model early-stopping bound min(f+2, t+1)
// for resilience t.
func BoundClassic(t int) func(f int) sim.Round {
	return func(f int) sim.Round {
		b := f + 2
		if t+1 < b {
			b = t + 1
		}
		return sim.Round(b)
	}
}
