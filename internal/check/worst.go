package check

import (
	"fmt"

	"repro/internal/sim"
)

// Worst is the result of a worst-schedule search: the choice script of the
// execution that maximizes the latest decision round, together with that
// round and the number of crashes the schedule uses.
//
// This makes the tightness half of the paper's optimality claim
// constructive: rather than asserting "some execution needs f+1 rounds", the
// search returns the execution. For the faithful algorithm the result always
// matches the coordinator-killer schedule from the proof of Theorem 4.
type Worst struct {
	Script      []int
	DecideRound sim.Round
	Faults      int
	Rounds      sim.Round
	Executions  int
}

// FindWorstSchedule enumerates all executions produced by the factory and
// returns the one whose latest decision happens latest (ties broken by fewer
// faults, making the witness as economical as possible). Runs that violate
// the consensus spec or fail to finish are reported as errors: a worst-case
// search over a broken protocol is meaningless.
func FindWorstSchedule(factory RunFactory, opts ExploreOpts) (*Worst, error) {
	bt := NewBacktracker()
	var er engineRunner
	worst := &Worst{}
	for {
		if opts.Budget > 0 && worst.Executions >= opts.Budget {
			return worst, fmt.Errorf("%w (after %d executions)", ErrBudget, worst.Executions)
		}
		ex := factory(bt)
		res, runErr, err := er.run(ex)
		if err != nil {
			return worst, fmt.Errorf("check: building engine: %w", err)
		}
		worst.Executions++
		if runErr != nil {
			return worst, fmt.Errorf("check: execution %v failed: %w", bt.Script(), runErr)
		}
		if err := Consensus(ex.Proposals, res); err != nil {
			return worst, fmt.Errorf("check: execution %v violates consensus: %w", bt.Script(), err)
		}
		d := res.MaxDecideRound()
		if d > worst.DecideRound || (d == worst.DecideRound && len(worst.Script) == 0) {
			worst.Script = bt.Script() // already a fresh copy
			worst.DecideRound = d
			worst.Faults = res.Faults()
			worst.Rounds = res.Rounds
		}
		if !bt.Next() {
			return worst, nil
		}
	}
}
