package check

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/sim"
)

// e5Factory is the E5 workload: the faithful algorithm at n=4, t=2 (151
// executions, zero violations).
func e5Factory(ch interface{ Choose(int) int }) Execution {
	props := []sim.Value{10, 11, 12, 13}
	return Execution{
		Procs:     core.NewSystem(props, core.Options{}),
		Adv:       adversary.NewFromChooser(ch, 2, 4),
		Cfg:       sim.Config{Model: sim.ModelExtended, Horizon: 6},
		Proposals: props,
	}
}

// e10Factory is the E10 workload: the commit-as-data ablation at n=3, t=1,
// whose space contains uniform-agreement violations.
func e10Factory(ch interface{ Choose(int) int }) Execution {
	props := []sim.Value{10, 11, 12}
	return Execution{
		Procs:     core.NewSystem(props, core.Options{CommitAsData: true}),
		Adv:       adversary.NewFromChooser(ch, 1, 3),
		Cfg:       sim.Config{Model: sim.ModelClassic, Horizon: 5},
		Proposals: props,
	}
}

// fullValidator checks consensus plus the f+1 bound.
func fullValidator(ex Execution, res *sim.Result, engineErr error) error {
	if engineErr != nil {
		return engineErr
	}
	if err := Consensus(ex.Proposals, res); err != nil {
		return err
	}
	return RoundBound(res, BoundFPlus1)
}

// consensusValidator checks the consensus spec only.
func consensusValidator(ex Execution, res *sim.Result, engineErr error) error {
	if engineErr != nil {
		return engineErr
	}
	return Consensus(ex.Proposals, res)
}

// scriptsOf projects the counterexample scripts.
func scriptsOf(ces []Counterexample) [][]int {
	out := make([][]int, len(ces))
	for i, ce := range ces {
		out[i] = ce.Script
	}
	return out
}

// assertSameExploration compares every Stats field the determinism guarantee
// covers: executions, maxima, and the exact counterexample script sequence.
func assertSameExploration(t *testing.T, seq, par Stats) {
	t.Helper()
	if par.Executions != seq.Executions {
		t.Errorf("executions: parallel %d, sequential %d", par.Executions, seq.Executions)
	}
	if par.MaxRounds != seq.MaxRounds {
		t.Errorf("max rounds: parallel %d, sequential %d", par.MaxRounds, seq.MaxRounds)
	}
	if par.MaxDecideRound != seq.MaxDecideRound {
		t.Errorf("max decide round: parallel %d, sequential %d", par.MaxDecideRound, seq.MaxDecideRound)
	}
	if par.MaxFaults != seq.MaxFaults {
		t.Errorf("max faults: parallel %d, sequential %d", par.MaxFaults, seq.MaxFaults)
	}
	if !reflect.DeepEqual(scriptsOf(par.Counterexamples), scriptsOf(seq.Counterexamples)) {
		t.Errorf("counterexample scripts differ:\nparallel   %v\nsequential %v",
			scriptsOf(par.Counterexamples), scriptsOf(seq.Counterexamples))
	}
}

// TestExploreParallelMatchesSequentialE5 is the differential test on the
// faithful-algorithm space: a complete exploration with no violations must
// produce identical stats across worker counts.
func TestExploreParallelMatchesSequentialE5(t *testing.T) {
	opts := ExploreOpts{Budget: 1_000_000, MaxCounterexamples: 1 << 20}
	seq, err := Explore(e5Factory, fullValidator, opts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if len(seq.Counterexamples) != 0 {
		t.Fatalf("sequential found unexpected violations: %v", scriptsOf(seq.Counterexamples))
	}
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Workers = workers
			par, err := ExploreParallel(e5Factory, fullValidator, o)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			assertSameExploration(t, seq, par)
		})
	}
}

// TestExploreParallelMatchesSequentialE10 is the differential test on the
// ablation space, which contains real counterexamples: with the limit set
// above the total violation count both searches run to completion, so the
// parallel explorer must report the exact same counterexample set, in the
// same lexicographic order.
func TestExploreParallelMatchesSequentialE10(t *testing.T) {
	opts := ExploreOpts{Budget: 1_000_000, MaxCounterexamples: 1 << 20}
	seq, err := Explore(e10Factory, consensusValidator, opts)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if len(seq.Counterexamples) == 0 {
		t.Fatal("sequential found no violations; the E10 ablation space must contain some")
	}
	for _, workers := range []int{2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			o := opts
			o.Workers = workers
			par, err := ExploreParallel(e10Factory, consensusValidator, o)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			assertSameExploration(t, seq, par)
		})
	}
}

// TestExploreParallelBudget checks that the shared ticket counter enforces
// Budget exactly: the parallel explorer runs precisely Budget executions and
// reports ErrBudget, like the sequential one.
func TestExploreParallelBudget(t *testing.T) {
	// Budget 40 with 4 workers is below the workers*16 threshold: the
	// documented sequential fallback, with sequential budget semantics.
	opts := ExploreOpts{Budget: 40, MaxCounterexamples: 1 << 20, Workers: 4}
	if got := EffectiveWorkers(opts); got != 1 {
		t.Fatalf("EffectiveWorkers = %d, want 1 (sequential fallback)", got)
	}
	par, err := ExploreParallel(e5Factory, fullValidator, opts)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if par.Executions != 40 {
		t.Errorf("executions = %d, want exactly the budget 40", par.Executions)
	}
	// Budget 100 with 4 workers stays parallel (100 >= 64) and is below the
	// 151-execution space: the shared atomic ticket must stop the pool at
	// exactly 100 counted executions.
	opts = ExploreOpts{Budget: 100, MaxCounterexamples: 1 << 20, Workers: 4}
	if got := EffectiveWorkers(opts); got != 4 {
		t.Fatalf("EffectiveWorkers = %d, want 4 (parallel path)", got)
	}
	for i := 0; i < 10; i++ {
		par, err = ExploreParallel(e5Factory, fullValidator, opts)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("iteration %d: err = %v, want ErrBudget", i, err)
		}
		if par.Executions != 100 {
			t.Errorf("iteration %d: executions = %d, want exactly the budget 100", i, par.Executions)
		}
	}
}

// TestExploreParallelCounterexampleLimit checks early termination: the
// search must stop at the limit and report exactly that many genuine
// violations.
func TestExploreParallelCounterexampleLimit(t *testing.T) {
	opts := ExploreOpts{Budget: 1_000_000, MaxCounterexamples: 1, Workers: 4}
	par, err := ExploreParallel(e10Factory, consensusValidator, opts)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(par.Counterexamples) != 1 {
		t.Fatalf("got %d counterexamples, want 1", len(par.Counterexamples))
	}
	// The reported script must reproduce a genuine violation.
	ce := par.Counterexamples[0]
	ex := e10Factory(&Replayer{Values: ce.Script})
	eng, err := sim.NewEngine(ex.Cfg, ex.Procs, ex.Adv)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := eng.Run()
	if verr := consensusValidator(ex, res, runErr); verr == nil {
		t.Errorf("counterexample script %v does not reproduce a violation", ce.Script)
	}
}

// TestExploreParallelLimitBeatsBudget pins the outcome precedence: whenever
// the counterexample limit is reached, the run is a success (nil error) even
// if other workers exhausted the ticket budget concurrently; ErrBudget is
// only reported when the search stopped without reaching the limit.
func TestExploreParallelLimitBeatsBudget(t *testing.T) {
	// Small budgets take the documented sequential fallback.
	for budget := 1; budget <= 19; budget++ {
		par, err := ExploreParallel(e10Factory, consensusValidator,
			ExploreOpts{Budget: budget, MaxCounterexamples: 1, Workers: 4})
		switch {
		case len(par.Counterexamples) >= 1:
			if err != nil {
				t.Errorf("budget %d: found a counterexample but got err %v", budget, err)
			}
		case err == nil:
			t.Errorf("budget %d: no counterexample and no error; want ErrBudget", budget)
		case !errors.Is(err, ErrBudget):
			t.Errorf("budget %d: err = %v, want ErrBudget", budget, err)
		}
	}
	// Genuinely parallel path: budget 100 ≥ workers*16 on the 151-execution
	// E5 space with a synthetic validator that flags every ≥1-fault
	// execution, so workers race the counterexample limit against ticket
	// exhaustion.
	popts := ExploreOpts{Budget: 100, MaxCounterexamples: 1, Workers: 4}
	if got := EffectiveWorkers(popts); got != 4 {
		t.Fatalf("EffectiveWorkers = %d, want 4 (parallel path)", got)
	}
	faultFlagger := func(ex Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if res.Faults() >= 1 {
			return errors.New("synthetic: faulty execution flagged")
		}
		return nil
	}
	for i := 0; i < 20; i++ {
		par, err := ExploreParallel(e5Factory, faultFlagger, popts)
		if len(par.Counterexamples) >= 1 && err != nil {
			t.Fatalf("iteration %d: found a counterexample but got err %v", i, err)
		}
		if len(par.Counterexamples) == 0 {
			t.Fatalf("iteration %d: no counterexample found on a space full of them", i)
		}
	}
}

// TestExploreEngineReuse guards the Reset path: exploring twice with the
// same factory must give identical results whether or not the engine is
// reused (the sequential explorer reuses it internally; a fresh Explore call
// starts from scratch).
func TestExploreEngineReuse(t *testing.T) {
	a, err := Explore(e5Factory, fullValidator, ExploreOpts{Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(e5Factory, fullValidator, ExploreOpts{Budget: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	assertSameExploration(t, a, b)
	if a.Executions != 151 {
		t.Errorf("E5 space = %d executions, want the documented 151", a.Executions)
	}
}
