package check

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// fatalErr wraps a construction error so the atomic.Value always stores one
// concrete type.
type fatalErr struct{ err error }

// EffectiveWorkers returns the worker count ExploreParallel will actually
// use for these options: the requested Workers (default GOMAXPROCS), or 1 —
// meaning the sequential explorer runs — when parallelism cannot pay for
// itself. Probe executions are warm-up work outside the budget ticket, so
// for small budgets that overhead would dominate (and sequential semantics —
// the lexicographically first Budget executions — are strictly more useful
// there); such budgets are served sequentially. Callers that report the
// search methodology (e.g. cmd/agreexplore) use this to print what ran.
func EffectiveWorkers(opts ExploreOpts) int {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > 1 && opts.Budget > 0 && opts.Budget < workers*16 {
		return 1
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// maxShardProbes bounds the number of probe executions spent splitting the
// choice space; beyond it the explorer stops subdividing and runs with the
// shards it has.
const maxShardProbes = 1024

// ExploreParallel explores the same execution space as Explore, split across
// a worker pool. The choice space is sharded by choice-script prefix: probe
// runs discover the domain of the first few choice points, the resulting
// subtrees become work units (in lexicographic order), and opts.Workers
// goroutines (default GOMAXPROCS) drain them, each with its own Backtracker
// frozen at the unit's prefix and its own reusable engine.
//
// Determinism guarantee: an exploration that runs to completion — neither
// Budget exhausted nor MaxCounterexamples reached — produces exactly the
// sequential Explore result: identical Executions, MaxRounds, MaxDecideRound
// and MaxFaults, and an identical counterexample list in the same
// (lexicographic script) order, because the units partition the space and are
// merged in order. When the search stops early at MaxCounterexamples, the
// reported counterexamples are all genuine and truncated to the limit, but —
// as workers race into different subtrees — they may be a different subset
// than the sequential search would report, and Executions reflects the work
// actually done. Budget is enforced exactly via a shared atomic ticket: at
// most Budget executions are explored and counted, and exceeding the space
// returns ErrBudget just like the sequential explorer. (The sharding phase
// additionally runs a bounded number of uncounted probe executions — capped
// at Budget/8 when a budget is set; budgets too small to amortize that
// overhead are served by the sequential explorer directly.)
//
// The factory and validator are called concurrently and must be safe for
// concurrent use (every factory that builds a fresh process set per call is).
func ExploreParallel(factory RunFactory, validate Validator, opts ExploreOpts) (Stats, error) {
	if opts.MaxCounterexamples <= 0 {
		opts.MaxCounterexamples = 1
	}
	workers := EffectiveWorkers(opts)
	if workers == 1 {
		return Explore(factory, validate, opts)
	}

	units, err := shardPrefixes(factory, workers, opts.Budget)
	if err != nil {
		return Stats{}, err
	}
	if len(units) == 1 {
		// No choice points worth splitting (or a single-execution space).
		return Explore(factory, validate, opts)
	}

	var (
		tickets   atomic.Int64 // execution admission counter (budget)
		ceCount   atomic.Int64 // counterexamples found so far, across workers
		stop      atomic.Bool  // set on budget exhaustion or CE limit
		budgetHit atomic.Bool
		nextUnit  atomic.Int64 // work-unit queue cursor
		fatal     atomic.Value // first construction error, if any (fatalErr)
	)
	results := make([]Stats, len(units))

	runUnit := func(prefix []choice, out *Stats) {
		bt := newBacktrackerFrozen(prefix)
		var er engineRunner
		for {
			if stop.Load() {
				return
			}
			if opts.Budget > 0 && tickets.Add(1) > int64(opts.Budget) {
				budgetHit.Store(true)
				stop.Store(true)
				return
			}
			ex := factory(bt)
			res, runErr, err := er.run(ex)
			if err != nil {
				fatal.Store(fatalErr{fmt.Errorf("check: building engine: %w", err)})
				stop.Store(true)
				return
			}
			out.observe(res)
			if verr := validate(ex, res, runErr); verr != nil {
				out.Counterexamples = append(out.Counterexamples, Counterexample{
					Script: bt.Script(),
					Err:    verr,
					Result: res,
				})
				if ceCount.Add(1) >= int64(opts.MaxCounterexamples) {
					stop.Store(true)
					return
				}
			}
			if !bt.Next() {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextUnit.Add(1)) - 1
				if i >= len(units) || stop.Load() {
					return
				}
				runUnit(units[i], &results[i])
			}
		}()
	}
	wg.Wait()

	var stats Stats
	for _, r := range results {
		stats.merge(r)
	}
	if len(stats.Counterexamples) > opts.MaxCounterexamples {
		stats.Counterexamples = stats.Counterexamples[:opts.MaxCounterexamples]
	}
	if fe, ok := fatal.Load().(fatalErr); ok {
		return stats, fe.err
	}
	// Reaching the counterexample limit is a successful outcome and takes
	// precedence over a concurrent budget exhaustion, mirroring the
	// sequential explorer (which returns nil the moment the limit is hit).
	if ceCount.Load() >= int64(opts.MaxCounterexamples) {
		return stats, nil
	}
	if budgetHit.Load() {
		return stats, fmt.Errorf("%w (after %d executions)", ErrBudget, stats.Executions)
	}
	return stats, nil
}

// shardPrefixes splits the factory's choice space into subtree prefixes, in
// lexicographic order. It probes the space breadth-first: each probe runs the
// lexicographically-first execution under a prefix to learn the domain of the
// next choice point, and the prefix is replaced by one child per domain
// value. Expansion stops once there are comfortably more units than workers
// (for load balancing — subtree sizes are very uneven), every unit is a
// complete execution, or the probe budget is spent.
//
// Probe executions are warm-up work only: they are re-explored (and counted)
// by the worker that owns the subtree, so stats are unaffected. They do not
// consume Budget tickets; when a budget is set, the probe count is capped at
// an eighth of it so the uncounted overhead stays marginal.
func shardPrefixes(factory RunFactory, workers, budget int) ([][]choice, error) {
	probeCap := maxShardProbes
	if budget > 0 && budget/8 < probeCap {
		probeCap = budget / 8
	}
	want := workers * 8
	units := [][]choice{nil} // the root: the whole space
	leaf := []bool{false}
	probes := 0
	var er engineRunner // one engine, reused across all probes
	for len(units) < want && probes < probeCap {
		expanded := false
		for i := 0; i < len(units) && len(units) < want && probes < probeCap; i++ {
			if leaf[i] {
				continue
			}
			bt := newBacktrackerFrozen(units[i])
			ex := factory(bt)
			if _, _, err := er.run(ex); err != nil {
				return nil, fmt.Errorf("check: building engine: %w", err)
			}
			probes++
			script := bt.choices()
			depth := len(units[i])
			if len(script) <= depth {
				// The first execution under this prefix finishes without
				// further choice points, so the subtree is that single
				// execution: nothing to split.
				leaf[i] = true
				continue
			}
			dom := script[depth].n
			children := make([][]choice, dom)
			childLeaf := make([]bool, dom)
			for v := 0; v < dom; v++ {
				child := make([]choice, depth+1)
				copy(child, units[i])
				child[depth] = choice{picked: v, n: dom}
				children[v] = child
			}
			units = append(units[:i], append(children, units[i+1:]...)...)
			leaf = append(leaf[:i], append(childLeaf, leaf[i+1:]...)...)
			i += dom - 1
			expanded = true
		}
		if !expanded {
			break
		}
	}
	return units, nil
}
