package check_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestFindWorstScheduleMatchesTPlus1(t *testing.T) {
	// The search must discover the t+1-round witness of Theorem 4's
	// tightness — the schedule that crashes one coordinator per round.
	for _, tc := range []struct{ n, t int }{{3, 1}, {3, 2}, {4, 2}, {5, 2}} {
		worst, err := check.FindWorstSchedule(crwFactory(tc.n, tc.t, core.Options{}),
			check.ExploreOpts{Budget: 20_000_000})
		if err != nil {
			t.Fatalf("n=%d t=%d: %v", tc.n, tc.t, err)
		}
		if got, want := worst.DecideRound, sim.Round(tc.t+1); got != want {
			t.Errorf("n=%d t=%d: worst decide round = %d, want %d", tc.n, tc.t, got, want)
		}
		if worst.Faults != tc.t {
			t.Errorf("n=%d t=%d: worst schedule uses %d faults, want %d (one crash per round)",
				tc.n, tc.t, worst.Faults, tc.t)
		}
	}
}

func TestWorstScheduleReplays(t *testing.T) {
	// The returned script reproduces the worst execution exactly when fed
	// through a Replayer, and its transcript shows the crash cascade.
	const n, tt = 4, 2
	worst, err := check.FindWorstSchedule(crwFactory(n, tt, core.Options{}),
		check.ExploreOpts{Budget: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	props := []sim.Value{10, 11, 12, 13}
	log := trace.New()
	eng, err := sim.NewEngine(
		sim.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2), Trace: log},
		core.NewSystem(props, core.Options{}),
		adversary.NewFromChooser(&check.Replayer{Values: worst.Script}, tt, sim.Round(n)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxDecideRound() != worst.DecideRound {
		t.Errorf("replayed decide round = %d, want %d", res.MaxDecideRound(), worst.DecideRound)
	}
	if res.Faults() != worst.Faults {
		t.Errorf("replayed faults = %d, want %d", res.Faults(), worst.Faults)
	}
	if len(log.Filter(trace.KindCrash)) != worst.Faults {
		t.Errorf("transcript shows %d crashes, want %d", len(log.Filter(trace.KindCrash)), worst.Faults)
	}
}

func TestFindWorstRejectsBrokenProtocols(t *testing.T) {
	// Searching the commit-as-data ablation hits an agreement violation and
	// must surface it instead of returning a bogus worst case.
	_, err := check.FindWorstSchedule(crwFactory(3, 1, core.Options{CommitAsData: true}),
		check.ExploreOpts{Budget: 20_000_000})
	if err == nil {
		t.Fatal("expected a consensus violation error")
	}
}
