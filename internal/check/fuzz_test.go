package check_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
)

// FuzzConsensusValidators is the native fuzz target for the consensus
// oracles: arbitrary bytes are decoded into a system size within the
// exhaustively-verified envelope (n <= 5, t <= 2, the E5 space) plus a
// choice script for the chooser-driven adversary, and the resulting
// execution of the faithful algorithm must satisfy uniform consensus and
// the f+1 round bound. Any input the fuzzer finds that trips an oracle is
// either an engine/protocol bug or an oracle bug — both fatal.
//
// Run the checked-in corpus as part of the normal test suite, or hunt with
//
//	go test -fuzz=FuzzConsensusValidators -fuzztime=20s ./internal/check
func FuzzConsensusValidators(f *testing.F) {
	f.Add([]byte{3, 1, 1, 0, 0, 0, 1})
	f.Add([]byte{4, 2, 1, 1, 1, 0, 1, 0, 2})
	f.Add([]byte{5, 2, 0, 1, 0, 1, 0, 1, 0, 1})
	f.Add([]byte{2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := 2 + int(data[0]%4)  // 2..5
		tt := 1 + int(data[1]%2) // 1..2
		if tt >= n {
			tt = n - 1
		}
		script := make([]int, 0, len(data)-2)
		for _, b := range data[2:] {
			script = append(script, int(b))
		}
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		adv := adversary.NewFromChooser(&check.Replayer{Values: script}, tt, sim.Round(n))
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelExtended, Horizon: sim.Round(n + 2)},
			core.NewSystem(props, core.Options{}), adv)
		if err != nil {
			t.Fatal(err)
		}
		res, runErr := eng.Run()
		if runErr != nil {
			t.Fatalf("n=%d t=%d script %s: engine: %v", n, tt, check.ScriptString(script), runErr)
		}
		if err := check.Consensus(props, res); err != nil {
			t.Fatalf("n=%d t=%d script %s: %v", n, tt, check.ScriptString(script), err)
		}
		if err := check.RoundBound(res, check.BoundFPlus1); err != nil {
			t.Fatalf("n=%d t=%d script %s: %v", n, tt, check.ScriptString(script), err)
		}
	})
}

func TestParseScriptRoundTrip(t *testing.T) {
	script, err := check.ParseScript("1, 0,2")
	if err != nil {
		t.Fatal(err)
	}
	if got := check.ScriptString(script); got != "1,0,2" {
		t.Errorf("round trip: %q", got)
	}
	if _, err := check.ParseScript("1,x"); err == nil {
		t.Error("accepted a malformed script")
	}
}
