package adversary_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/sim"
)

// plan builds a send plan with nd data messages and nc control destinations.
func plan(nd, nc int) sim.SendPlan {
	var p sim.SendPlan
	for i := 0; i < nd; i++ {
		p.Data = append(p.Data, sim.Outgoing{To: sim.ProcID(i + 2), Payload: sim.Est{V: 1, B: 8}})
	}
	for i := 0; i < nc; i++ {
		p.Control = append(p.Control, sim.ProcID(nc-i+1))
	}
	return p
}

func TestNoneNeverCrashes(t *testing.T) {
	var a adversary.None
	for r := sim.Round(1); r <= 10; r++ {
		for p := sim.ProcID(1); p <= 8; p++ {
			if crash, _ := a.Crashes(p, r, plan(3, 3)); crash {
				t.Fatalf("None crashed p%d at round %d", p, r)
			}
		}
	}
}

func TestScriptMatchesRoundAndProcess(t *testing.T) {
	s := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		2: {Round: 3, DeliverAllData: true, CtrlPrefix: 1},
	})
	if crash, _ := s.Crashes(2, 2, plan(2, 2)); crash {
		t.Error("crashed at wrong round")
	}
	if crash, _ := s.Crashes(1, 3, plan(2, 2)); crash {
		t.Error("crashed wrong process")
	}
	crash, out := s.Crashes(2, 3, plan(2, 2))
	if !crash {
		t.Fatal("scripted crash did not fire")
	}
	if !out.DataDelivered[0] || !out.DataDelivered[1] || out.CtrlPrefix != 1 {
		t.Errorf("outcome = %+v, want full data + prefix 1", out)
	}
	if !out.ValidFor(plan(2, 2)) {
		t.Error("scripted outcome invalid")
	}
}

func TestScriptCtrlAllClamps(t *testing.T) {
	s := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: adversary.CtrlAll},
	})
	_, out := s.Crashes(1, 1, plan(1, 4))
	if out.CtrlPrefix != 4 {
		t.Errorf("CtrlAll prefix = %d, want 4", out.CtrlPrefix)
	}
	// Oversized explicit prefixes clamp too.
	s2 := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: 99},
	})
	_, out = s2.Crashes(1, 1, plan(1, 4))
	if out.CtrlPrefix != 4 {
		t.Errorf("oversized prefix = %d, want clamped 4", out.CtrlPrefix)
	}
}

func TestScriptDataMaskPositional(t *testing.T) {
	s := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DataMask: []bool{true}},
	})
	_, out := s.Crashes(1, 1, plan(3, 0))
	if !out.DataDelivered[0] || out.DataDelivered[1] || out.DataDelivered[2] {
		t.Errorf("mask = %v, want [true false false]", out.DataDelivered)
	}
}

func TestCoordinatorKillerTargetsCoordinators(t *testing.T) {
	k := adversary.CoordinatorKiller{F: 2}
	if crash, _ := k.Crashes(1, 1, plan(3, 3)); !crash {
		t.Error("p1 not crashed in round 1")
	}
	if crash, _ := k.Crashes(2, 2, plan(3, 3)); !crash {
		t.Error("p2 not crashed in round 2")
	}
	if crash, _ := k.Crashes(3, 3, plan(3, 3)); crash {
		t.Error("p3 crashed beyond F")
	}
	if crash, _ := k.Crashes(2, 1, plan(3, 3)); crash {
		t.Error("non-coordinator crashed")
	}
}

func TestRandomRespectsBudgetAndValidity(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := adversary.NewRandom(seed, 0.9, 3)
		crashes := 0
		for r := sim.Round(1); r <= 10; r++ {
			for p := sim.ProcID(1); p <= 8; p++ {
				pl := plan(4, 4)
				crash, out := a.Crashes(p, r, pl)
				if !crash {
					continue
				}
				crashes++
				if !out.ValidFor(pl) {
					t.Fatalf("seed %d: invalid outcome %+v", seed, out)
				}
			}
		}
		if crashes > 3 {
			t.Errorf("seed %d: %d crashes exceed budget 3", seed, crashes)
		}
		if a.Crashed() != crashes {
			t.Errorf("seed %d: Crashed() = %d, want %d", seed, a.Crashed(), crashes)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	results := func(seed int64) []bool {
		a := adversary.NewRandom(seed, 0.5, 5)
		var out []bool
		for i := 0; i < 50; i++ {
			crash, _ := a.Crashes(sim.ProcID(i%5+1), sim.Round(i/5+1), plan(2, 2))
			out = append(out, crash)
		}
		return out
	}
	a, b := results(7), results(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

// seqChooser replays a fixed sequence of choices.
type seqChooser struct {
	vals []int
	pos  int
}

func (c *seqChooser) Choose(n int) int {
	if c.pos >= len(c.vals) {
		return 0
	}
	v := c.vals[c.pos] % n
	c.pos++
	return v
}

func TestFromChooserOutcomesAlwaysValid(t *testing.T) {
	// Whatever the chooser picks, the produced outcome must be legal for the
	// plan (the model constraint: control prefix > 0 implies full data).
	for seed := 0; seed < 200; seed++ {
		ch := &seqChooser{vals: []int{1, seed % 2, seed % 3, seed % 5, seed % 7, 1, 0, 1}}
		a := adversary.NewFromChooser(ch, 2, 5)
		pl := plan(3, 3)
		crash, out := a.Crashes(1, 1, pl)
		if crash && !out.ValidFor(pl) {
			t.Fatalf("seed %d: invalid outcome %+v", seed, out)
		}
	}
}

func TestFromChooserRespectsBudgetAndHorizon(t *testing.T) {
	ch := &seqChooser{vals: []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}}
	a := adversary.NewFromChooser(ch, 1, 2)
	if crash, _ := a.Crashes(1, 3, plan(0, 0)); crash {
		t.Error("crashed beyond MaxCrashRound")
	}
	if crash, _ := a.Crashes(1, 1, plan(0, 0)); !crash {
		t.Error("first crash did not fire")
	}
	if a.Crashed() != 1 {
		t.Errorf("Crashed() = %d, want 1", a.Crashed())
	}
	if crash, _ := a.Crashes(2, 1, plan(0, 0)); crash {
		t.Error("crashed beyond budget")
	}
}

func TestRandChooserInRange(t *testing.T) {
	c := adversary.NewRandChooser(3)
	for i := 0; i < 1000; i++ {
		n := i%7 + 1
		v := c.Choose(n)
		if v < 0 || v >= n {
			t.Fatalf("Choose(%d) = %d out of range", n, v)
		}
	}
	if c.Choose(1) != 0 || c.Choose(0) != 0 {
		t.Error("degenerate domains must return 0")
	}
}
