package adversary

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

var omitPlan = sim.SendPlan{
	Data: []sim.Outgoing{
		{To: 2, Payload: sim.Est{V: 1, B: 8}},
		{To: 3, Payload: sim.Est{V: 1, B: 8}},
	},
	Control: []sim.ProcID{3, 2},
}

func TestOmissionPlanMaterialization(t *testing.T) {
	cases := []struct {
		name string
		plan OmissionPlan
		want sim.Omission
	}{
		{"drop all send", OmissionPlan{Round: 1, DropAllSend: true},
			sim.Omission{Data: []bool{false, false}, Ctrl: []bool{false, false}}},
		{"positional send masks pad with delivered", OmissionPlan{Round: 1, SendData: []bool{false}, SendCtrl: []bool{true, false}},
			sim.Omission{Data: []bool{false, true}, Ctrl: []bool{true, false}}},
		{"oversized masks truncate", OmissionPlan{Round: 1, SendData: []bool{true, false, false, false}},
			sim.Omission{Data: []bool{true, false}}},
		{"drop all recv", OmissionPlan{Round: 1, DropAllRecv: true},
			sim.Omission{Recv: []bool{false, false, false}}},
		{"recv mask copied", OmissionPlan{Round: 1, Recv: []bool{true, false}},
			sim.Omission{Recv: []bool{true, false}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewOmissionScript(3, map[sim.ProcID][]OmissionPlan{1: {tc.plan}})
			got := s.Omits(1, 1, omitPlan)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("got %+v, want %+v", got, tc.want)
			}
			if !got.ValidFor(omitPlan) {
				t.Errorf("materialized omission %+v invalid for the plan", got)
			}
		})
	}
	// Wrong round and wrong process omit nothing.
	s := NewOmissionScript(3, map[sim.ProcID][]OmissionPlan{1: {{Round: 2, DropAllSend: true}}})
	if !s.Omits(1, 1, omitPlan).IsZero() || !s.Omits(2, 2, omitPlan).IsZero() {
		t.Error("script omitted outside its (process, round) slots")
	}
	if crash, _ := s.Crashes(1, 2, omitPlan); crash {
		t.Error("omission script crashed a process")
	}
}

func TestRandomOmissionDeterministicAndBounded(t *testing.T) {
	sample := func() []sim.Omission {
		a := NewRandomOmission(42, 0.5, 0.5, 2, 4)
		var out []sim.Omission
		for r := sim.Round(1); r <= 4; r++ {
			for p := sim.ProcID(1); p <= 4; p++ {
				out = append(out, a.Omits(p, r, omitPlan))
			}
		}
		if a.Faulty() > 2 {
			t.Fatalf("faulty = %d, want <= 2 (MaxFaulty)", a.Faulty())
		}
		return out
	}
	first, second := sample(), sample()
	if !reflect.DeepEqual(first, second) {
		t.Error("same seed produced different omission sequences")
	}
	any := false
	for _, om := range first {
		if !om.IsZero() {
			any = true
		}
	}
	if !any {
		t.Error("probability 0.5 never omitted anything")
	}

	never := NewRandomOmission(42, 0, 0, 4, 4)
	for p := sim.ProcID(1); p <= 4; p++ {
		if !never.Omits(p, 1, omitPlan).IsZero() {
			t.Error("probability 0 omitted")
		}
	}
}

// TestStagedStaysCrashOnly pins the cost contract: Staged composes
// crash-only stages (the valency analysis) and must not be an Omitter —
// otherwise every staged exhaustive search would pay the engines' omission
// machinery for nothing. Mixed scenarios compose omissions via Combine.
func TestStagedStaysCrashOnly(t *testing.T) {
	var st sim.Adversary = Staged{Until: 1, First: None{}, Rest: None{}}
	if _, ok := st.(sim.Omitter); ok {
		t.Error("Staged implements sim.Omitter; crash-only valency searches would pay for omissions")
	}
}

// TestFromChooserOmissionSplit pins the compatibility guarantee: the plain
// crash-only FromChooser is NOT an Omitter — the engines skip the omission
// machinery for it entirely, so pre-omission exploration spaces and
// allocation profiles are unchanged — while the omitting variant consults
// the chooser for its omission decisions.
func TestFromChooserOmissionSplit(t *testing.T) {
	counting := &countingChooser{}
	var plain sim.Adversary = NewFromChooser(counting, 1, 3)
	if _, ok := plain.(sim.Omitter); ok {
		t.Error("crash-only FromChooser implements sim.Omitter; crash-model exploration would pay for omissions")
	}

	with := NewFromChooserWithOmissions(counting, 1, 3, 1, 3)
	if _, ok := any(with).(sim.Omitter); !ok {
		t.Fatal("OmittingFromChooser does not implement sim.Omitter")
	}
	with.Omits(1, 1, omitPlan)
	if counting.calls == 0 {
		t.Error("budgeted Omits consumed no choices")
	}
	if !with.Omits(1, 4, omitPlan).IsZero() {
		t.Error("omission injected beyond MaxCrashRound")
	}
}

type countingChooser struct{ calls int }

func (c *countingChooser) Choose(n int) int { c.calls++; return 0 }
