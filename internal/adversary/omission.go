package adversary

// Omission adversaries: the send/receive-omission fault model, one notch
// below crash faults in severity and the canonical next fault class for
// synchronous consensus. An omission-faulty process stays alive and keeps
// executing the protocol — individual messages it sends or receives simply
// vanish. The paper's algorithm assumes reliable channels and crash faults
// only, so omission adversaries are how the repository demonstrates that
// assumption is load-bearing (and how far the guarantees stretch before it
// breaks).
//
// Mirroring the crash adversaries, three flavours are provided: scripted
// (OmissionScript), seeded random (RandomOmission) and chooser-driven
// (OmittingFromChooser, for the exhaustive explorer).
// Combine composes any crash adversary with any omitter into a mixed
// crash+omission scenario.

import (
	"math/rand"

	"repro/internal/sim"
)

// OmissionPlan describes the omission faults of one process in one round.
// The zero plan (beyond Round) omits nothing.
type OmissionPlan struct {
	// Round is the round the omissions apply to.
	Round sim.Round
	// SendData, if non-nil, selects which data messages of the round's send
	// plan are transmitted ('true' = transmitted); it is matched positionally
	// and missing positions are transmitted.
	SendData []bool
	// SendCtrl, if non-nil, selects which control messages are transmitted,
	// positionally against the ordered control sequence. Unlike a crash —
	// which cuts the sequence at a prefix — an omission may drop any subset.
	SendCtrl []bool
	// DropAllSend suppresses the entire send plan (both steps), overriding
	// SendData/SendCtrl.
	DropAllSend bool
	// Recv, if non-nil, selects which senders' messages reach the process
	// this round (index i = p_{i+1}, 'true' = delivered); missing positions
	// are delivered.
	Recv []bool
	// DropAllRecv suppresses every delivery to the process this round,
	// overriding Recv.
	DropAllRecv bool
}

// omission materializes the plan against a concrete send plan, for a system
// of n processes.
func (op OmissionPlan) omission(plan sim.SendPlan, n int) sim.Omission {
	var om sim.Omission
	if op.DropAllSend {
		om.Data = make([]bool, len(plan.Data))
		om.Ctrl = make([]bool, len(plan.Control))
	} else {
		if op.SendData != nil {
			om.Data = sim.DeliveredMask(op.SendData, len(plan.Data))
		}
		if op.SendCtrl != nil {
			om.Ctrl = sim.DeliveredMask(op.SendCtrl, len(plan.Control))
		}
	}
	switch {
	case op.DropAllRecv:
		om.Recv = make([]bool, n)
	case op.Recv != nil:
		om.Recv = append([]bool(nil), op.Recv...)
	}
	return om
}

// OmissionScript injects omission faults according to explicit per-process
// plans; it never crashes anybody. A process may have plans in several rounds
// (omissions, unlike crashes, are repeatable); the first plan matching the
// round applies. As a pure function of (process, round, plan) it is
// order-insensitive and replays identically on every engine.
type OmissionScript struct {
	// N is the number of processes (needed to materialize DropAllRecv).
	N int
	// Plans maps each omission-faulty process to its per-round plans.
	Plans map[sim.ProcID][]OmissionPlan
}

// NewOmissionScript builds a scripted omission adversary for an n-process
// system.
func NewOmissionScript(n int, plans map[sim.ProcID][]OmissionPlan) *OmissionScript {
	return &OmissionScript{N: n, Plans: plans}
}

// Crashes implements sim.Adversary: a pure omission script crashes nobody.
func (s *OmissionScript) Crashes(sim.ProcID, sim.Round, sim.SendPlan) (bool, sim.CrashOutcome) {
	return false, sim.CrashOutcome{}
}

// Omits implements sim.Omitter.
func (s *OmissionScript) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	for _, op := range s.Plans[p] {
		if op.Round == r {
			return op.omission(plan, s.N)
		}
	}
	return sim.Omission{}
}

// RandomOmission injects omission faults at random: once a process commits an
// omission it counts against the MaxFaulty budget of distinct omission-faulty
// processes; each of its outgoing messages is omitted with probability
// SendProb and each sender's deliveries to it are omitted with probability
// RecvProb, independently per round. With MaxFaulty = n and RecvProb = 0 this
// is exactly the classic lossy-channel ablation (every message independently
// lost with SendProb), which is how E14 demonstrates the model's
// reliable-channel precondition.
//
// RandomOmission is deterministic for a fixed seed on the deterministic
// engine; like every stateful randomized adversary it is order-sensitive and
// must not be used for cross-engine comparison.
type RandomOmission struct {
	rng       *rand.Rand
	SendProb  float64
	RecvProb  float64
	MaxFaulty int
	N         int

	faulty map[sim.ProcID]bool
}

// NewRandomOmission builds a seeded random omission adversary for an
// n-process system: at most maxFaulty distinct processes turn omission
// faulty, each dropping sent messages with probability sendProb and inbound
// senders with probability recvProb.
func NewRandomOmission(seed int64, sendProb, recvProb float64, maxFaulty, n int) *RandomOmission {
	return &RandomOmission{
		rng: rand.New(rand.NewSource(seed)), SendProb: sendProb, RecvProb: recvProb,
		MaxFaulty: maxFaulty, N: n, faulty: make(map[sim.ProcID]bool),
	}
}

// Crashes implements sim.Adversary: a pure omission adversary crashes nobody.
func (a *RandomOmission) Crashes(sim.ProcID, sim.Round, sim.SendPlan) (bool, sim.CrashOutcome) {
	return false, sim.CrashOutcome{}
}

// Omits implements sim.Omitter.
func (a *RandomOmission) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	if !a.faulty[p] && len(a.faulty) >= a.MaxFaulty {
		return sim.Omission{}
	}
	var om sim.Omission
	dropped := false
	for i := range plan.Data {
		if a.rng.Float64() < a.SendProb {
			if om.Data == nil {
				om.Data = allTrue(len(plan.Data))
			}
			om.Data[i] = false
			dropped = true
		}
	}
	for i := range plan.Control {
		if a.rng.Float64() < a.SendProb {
			if om.Ctrl == nil {
				om.Ctrl = allTrue(len(plan.Control))
			}
			om.Ctrl[i] = false
			dropped = true
		}
	}
	if a.RecvProb > 0 {
		for q := 1; q <= a.N; q++ {
			if sim.ProcID(q) == p {
				continue
			}
			if a.rng.Float64() < a.RecvProb {
				if om.Recv == nil {
					om.Recv = allTrue(a.N)
				}
				om.Recv[q-1] = false
				dropped = true
			}
		}
	}
	if !dropped {
		return sim.Omission{}
	}
	a.faulty[p] = true
	return om
}

// Faulty returns how many distinct processes have committed omission faults.
func (a *RandomOmission) Faulty() int { return len(a.faulty) }

// allTrue returns a delivered-mask of length k with every message delivered.
func allTrue(k int) []bool {
	out := make([]bool, k)
	for i := range out {
		out[i] = true
	}
	return out
}

// combined composes a crash adversary with an omitter into one mixed
// crash+omission adversary. The engines guarantee the omitter is only
// consulted for processes the crash adversary spared this round.
type combined struct {
	crash sim.Adversary
	omit  sim.Omitter
}

// Combine returns an adversary that crashes per crash and omits per omit —
// the mixed fault scenario. It is order-insensitive exactly when both parts
// are.
func Combine(crash sim.Adversary, omit sim.Omitter) sim.Adversary {
	return combined{crash: crash, omit: omit}
}

// Crashes implements sim.Adversary.
func (c combined) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	return c.crash.Crashes(p, r, plan)
}

// Omits implements sim.Omitter.
func (c combined) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	return c.omit.Omits(p, r, plan)
}
