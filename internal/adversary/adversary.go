// Package adversary provides crash adversaries for the synchronous engines.
//
// An adversary decides, for every process and round, whether the process
// crashes during its send phase and — if it does — which of its data messages
// escape (an arbitrary subset, per the model) and how long a prefix of its
// ordered control sequence escapes.
//
// The package offers:
//
//   - None: the failure-free adversary.
//   - Script: explicit per-process crash plans (used to pin down the
//     worst-case scenarios from the paper's proofs).
//   - CoordinatorKiller: crashes the coordinator of each of the first F
//     rounds, the schedule that forces the paper's algorithm to its f+1
//     round bound.
//   - Random: seeded randomized fault injection.
//   - FromChooser: a generic adversary driven by a Chooser, the hook used by
//     the exhaustive explorer in internal/check to enumerate every schedule.
package adversary

import (
	"math/rand"

	"repro/internal/sim"
)

// CtrlAll requests delivery of the full control sequence in a crash plan.
const CtrlAll = -1

// None is the failure-free adversary: no process ever crashes.
type None struct{}

// Crashes always reports no crash.
func (None) Crashes(sim.ProcID, sim.Round, sim.SendPlan) (bool, sim.CrashOutcome) {
	return false, sim.CrashOutcome{}
}

// CrashPlan describes one scripted crash.
type CrashPlan struct {
	// Round is the round in which the process crashes (during its send
	// phase).
	Round sim.Round
	// DeliverAllData delivers every data message of the plan when true and
	// none when false, unless DataMask overrides it.
	DeliverAllData bool
	// DataMask, if non-nil, selects exactly which data messages escape; it is
	// matched positionally against the plan (missing positions are false).
	DataMask []bool
	// CtrlPrefix is the number of control messages (a prefix of the ordered
	// sequence) that escape; CtrlAll delivers all of them. Values beyond the
	// sequence length are clamped.
	CtrlPrefix int
}

// Script crashes processes according to explicit plans. Processes without a
// plan never crash.
type Script struct {
	Plans map[sim.ProcID]CrashPlan
}

// NewScript builds a Script adversary from plans keyed by process.
func NewScript(plans map[sim.ProcID]CrashPlan) *Script {
	return &Script{Plans: plans}
}

// Crashes implements sim.Adversary.
func (s *Script) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	cp, ok := s.Plans[p]
	if !ok || cp.Round != r {
		return false, sim.CrashOutcome{}
	}
	return true, cp.outcome(plan)
}

// outcome materializes the plan's truncation against a concrete send plan.
func (cp CrashPlan) outcome(plan sim.SendPlan) sim.CrashOutcome {
	mask := make([]bool, len(plan.Data))
	switch {
	case cp.DataMask != nil:
		copy(mask, cp.DataMask)
	case cp.DeliverAllData:
		for i := range mask {
			mask[i] = true
		}
	}
	prefix := cp.CtrlPrefix
	if prefix == CtrlAll || prefix > len(plan.Control) {
		prefix = len(plan.Control)
	}
	if prefix < 0 {
		prefix = 0
	}
	return sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: prefix}
}

// CoordinatorKiller crashes the coordinator p_r of round r, for every
// r = 1..F. With DeliverAllData=false and CtrlPrefix=0 it is the schedule
// that forces the paper's algorithm to run for exactly F+1 rounds (the
// matching execution for the lower bound of Section 5).
type CoordinatorKiller struct {
	// F is the number of coordinators to crash (the paper's f).
	F int
	// DeliverAllData controls whether the dying coordinator's data messages
	// escape.
	DeliverAllData bool
	// CtrlPrefix is the escaped control prefix length (CtrlAll for all).
	CtrlPrefix int
}

// Crashes implements sim.Adversary: p crashes in round r iff p == p_r and
// r <= F.
func (k CoordinatorKiller) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if int(r) > k.F || sim.ProcID(r) != p {
		return false, sim.CrashOutcome{}
	}
	cp := CrashPlan{Round: r, DeliverAllData: k.DeliverAllData, CtrlPrefix: k.CtrlPrefix}
	return true, cp.outcome(plan)
}

// Random injects crashes at random: each alive process crashes in each round
// with probability CrashProb, as long as fewer than MaxCrashes processes have
// crashed. The escaped data subset and control prefix are uniform.
//
// Random is deterministic for a fixed seed, so randomized experiments are
// reproducible.
type Random struct {
	rng        *rand.Rand
	CrashProb  float64
	MaxCrashes int
	crashes    int
}

// NewRandom builds a seeded random adversary that crashes at most maxCrashes
// processes, each alive process crashing with probability p per round.
func NewRandom(seed int64, p float64, maxCrashes int) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), CrashProb: p, MaxCrashes: maxCrashes}
}

// Crashes implements sim.Adversary. The crash point is drawn first: either
// during the data step (random subset escapes, no control message) or during
// the control step (all data escaped, random prefix) — never a mix, since the
// two steps are sequential and a process crashes at a single point in time.
func (a *Random) Crashes(_ sim.ProcID, _ sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if a.crashes >= a.MaxCrashes || a.rng.Float64() >= a.CrashProb {
		return false, sim.CrashOutcome{}
	}
	a.crashes++
	mask := make([]bool, len(plan.Data))
	if len(plan.Control) > 0 && a.rng.Intn(2) == 1 {
		// Crash during the control step: the data step completed.
		for i := range mask {
			mask[i] = true
		}
		return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: a.rng.Intn(len(plan.Control) + 1)}
	}
	// Crash during the data step: arbitrary subset, no control messages.
	for i := range mask {
		mask[i] = a.rng.Intn(2) == 1
	}
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: 0}
}

// Crashed returns how many processes the adversary has crashed so far.
func (a *Random) Crashed() int { return a.crashes }

// Staged composes two adversaries around a round boundary: First controls
// rounds 1..Until, Rest controls every later round. It is used by the
// valency analysis (internal/check) to pin down the behaviour of a prefix of
// the execution — e.g. "round 1 is crash-free" — and quantify over all
// continuations.
type Staged struct {
	Until sim.Round
	First sim.Adversary
	Rest  sim.Adversary
}

// Crashes implements sim.Adversary.
//
// Staged is deliberately NOT a sim.Omitter: its only users compose
// crash-only adversaries (the valency analysis), and implementing Omits
// would route those exhaustive searches through the engines' omission
// machinery for nothing. Compose omission stages with Combine instead.
func (s Staged) Crashes(p sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if r <= s.Until {
		return s.First.Crashes(p, r, plan)
	}
	return s.Rest.Crashes(p, r, plan)
}

// Chooser resolves nondeterministic choices. Choose(n) returns a value in
// [0, n). A backtracking Chooser turns the engine into an exhaustive model
// checker (see internal/check); a seeded Chooser gives randomized testing.
type Chooser interface {
	Choose(n int) int
}

// RandChooser is a Chooser drawing uniformly from a seeded source.
type RandChooser struct {
	rng *rand.Rand
}

// NewRandChooser returns a seeded random chooser.
func NewRandChooser(seed int64) *RandChooser {
	return &RandChooser{rng: rand.New(rand.NewSource(seed))}
}

// Choose returns a uniform value in [0, n).
func (c *RandChooser) Choose(n int) int {
	if n <= 1 {
		return 0
	}
	return c.rng.Intn(n)
}

// FromChooser is a generic adversary whose every decision is delegated to a
// Chooser. Each round, for each alive process (while the crash budget T is
// not exhausted), it asks the chooser whether to crash it; on a crash it asks
// for the escaped data subset (one binary choice per message) and the control
// prefix length.
//
// MaxCrashRound bounds the rounds in which crashes may occur, which keeps the
// exhaustive search space finite; crashes after the last interesting round
// cannot affect decisions that already happened.
type FromChooser struct {
	C Chooser
	// T is the crash budget (the model's resilience bound t).
	T int
	// MaxCrashRound is the last round a crash may occur in (0 = no limit).
	MaxCrashRound sim.Round

	crashes int
}

// NewFromChooser builds a chooser-driven adversary with crash budget t and
// crash horizon maxRound.
func NewFromChooser(c Chooser, t int, maxRound sim.Round) *FromChooser {
	return &FromChooser{C: c, T: t, MaxCrashRound: maxRound}
}

// Crashes implements sim.Adversary. The choice tree per crash is: crash
// point (data step vs control step, when a control sequence exists), then —
// for a data-step crash — one binary choice per data message, or — for a
// control-step crash — the escaped prefix length (with full data delivery).
// This enumerates exactly the legal outcomes of the model, no more.
func (a *FromChooser) Crashes(_ sim.ProcID, r sim.Round, plan sim.SendPlan) (bool, sim.CrashOutcome) {
	if a.crashes >= a.T {
		return false, sim.CrashOutcome{}
	}
	if a.MaxCrashRound > 0 && r > a.MaxCrashRound {
		return false, sim.CrashOutcome{}
	}
	if a.C.Choose(2) == 0 {
		return false, sim.CrashOutcome{}
	}
	a.crashes++
	mask := make([]bool, len(plan.Data))
	if len(plan.Control) > 0 && a.C.Choose(2) == 1 {
		// Crash during the control step: all data escaped, prefix chosen.
		for i := range mask {
			mask[i] = true
		}
		return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: a.C.Choose(len(plan.Control) + 1)}
	}
	// Crash during the data step: arbitrary subset, no control messages.
	for i := range mask {
		mask[i] = a.C.Choose(2) == 1
	}
	return true, sim.CrashOutcome{DataDelivered: mask, CtrlPrefix: 0}
}

// Crashed returns how many processes have been crashed so far.
func (a *FromChooser) Crashed() int { return a.crashes }

// maxEnumMsgs clamps the per-event enumeration width: only the first 16
// messages (or senders) of a step are omittable, which keeps the Choose
// domain within int range. Proof-sized systems never reach the clamp.
const maxEnumMsgs = 16

// OmittingFromChooser extends FromChooser with bounded-omission enumeration.
// It is a separate type — not a flag on FromChooser — so crash-only
// exploration keeps a non-Omitter adversary: the engines then skip the
// omission machinery entirely and the crash-model choice spaces (and the
// engine's allocation profile) are bit-identical to the pre-omission code.
type OmittingFromChooser struct {
	FromChooser
	// OmissionBudget is the maximum number of omission events the adversary
	// may inject.
	OmissionBudget int
	// Procs is the system size n, required for receive-omission enumeration.
	Procs int

	omitted int
}

// NewFromChooserWithOmissions builds a chooser-driven adversary that, beyond
// crashes, enumerates bounded-omission schedules for an n-process system: up
// to omitBudget omission events, each either a send omission (any non-empty
// subset of the round's messages suppressed) or a receive omission (any
// non-empty subset of senders blocked). This is what lets the exhaustive
// explorer search the omission fault model at proof sizes.
func NewFromChooserWithOmissions(c Chooser, t int, maxRound sim.Round, omitBudget, n int) *OmittingFromChooser {
	return &OmittingFromChooser{
		FromChooser:    FromChooser{C: c, T: t, MaxCrashRound: maxRound},
		OmissionBudget: omitBudget,
		Procs:          n,
	}
}

// Omits implements sim.Omitter. While budget remains, the choice tree per
// (process, round) is: omit or not; send vs receive omission (when both are
// possible); then the non-empty suppressed subset — of the round's
// data+control messages for a send omission, of the other processes for a
// receive omission. MaxCrashRound bounds omission events exactly like
// crashes.
func (a *OmittingFromChooser) Omits(p sim.ProcID, r sim.Round, plan sim.SendPlan) sim.Omission {
	if a.omitted >= a.OmissionBudget {
		return sim.Omission{}
	}
	if a.MaxCrashRound > 0 && r > a.MaxCrashRound {
		return sim.Omission{}
	}
	kSend := len(plan.Data) + len(plan.Control)
	if kSend > maxEnumMsgs {
		kSend = maxEnumMsgs
	}
	kRecv := a.Procs - 1
	if kRecv > maxEnumMsgs {
		kRecv = maxEnumMsgs
	}
	if kSend <= 0 && kRecv <= 0 {
		return sim.Omission{}
	}
	if a.C.Choose(2) == 0 {
		return sim.Omission{}
	}
	a.omitted++
	send := kSend > 0
	if send && kRecv > 0 {
		send = a.C.Choose(2) == 0
	}
	if send {
		// Send omission: a non-empty suppressed subset of the round's
		// messages, data positions first, then control positions.
		sub := a.C.Choose(1<<kSend-1) + 1
		om := sim.Omission{Data: allTrue(len(plan.Data)), Ctrl: allTrue(len(plan.Control))}
		for i := 0; i < kSend; i++ {
			if sub>>i&1 == 0 {
				continue
			}
			if i < len(plan.Data) {
				om.Data[i] = false
			} else {
				om.Ctrl[i-len(plan.Data)] = false
			}
		}
		return om
	}
	// Receive omission: a non-empty blocked subset of the other processes.
	sub := a.C.Choose(1<<kRecv-1) + 1
	recv := allTrue(a.Procs)
	idx := 0
	for q := 1; q <= a.Procs && idx < kRecv; q++ {
		if sim.ProcID(q) == p {
			continue
		}
		if sub>>idx&1 == 1 {
			recv[q-1] = false
		}
		idx++
	}
	return sim.Omission{Recv: recv}
}

// OmissionEvents returns how many omission events have been injected so far.
func (a *OmittingFromChooser) OmissionEvents() int { return a.omitted }
