package stats_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestSampleBasics(t *testing.T) {
	var s stats.Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Max() != 0 {
		t.Error("empty sample not zeroed")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if s.Mean() != 2.5 {
		t.Errorf("Mean = %g, want 2.5", s.Mean())
	}
	if s.Max() != 4 {
		t.Errorf("Max = %g, want 4", s.Max())
	}
	if want := math.Sqrt(1.25); math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", s.StdDev(), want)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestPercentile(t *testing.T) {
	var s stats.Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {99, 99}, {100, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	var empty stats.Sample
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw uint8) bool {
		var s stats.Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return s.Percentile(a) <= s.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanWithinMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s stats.Sample
		min, max := float64(raw[0]), float64(raw[0])
		for _, v := range raw {
			fv := float64(v)
			s.Add(fv)
			if fv < min {
				min = fv
			}
			if fv > max {
				max = fv
			}
		}
		return s.Mean() >= min && s.Mean() <= max && s.Max() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := stats.NewHistogram()
	for _, v := range []int{1, 1, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Count(3) != 3 || h.Count(2) != 1 || h.Count(9) != 0 {
		t.Errorf("counts wrong: %v", h.String())
	}
	if got := h.Fraction(1); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("Fraction(1) = %g", got)
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("Keys = %v", keys)
	}
	if h.String() != "1:2 2:1 3:3" {
		t.Errorf("String = %q", h.String())
	}
	empty := stats.NewHistogram()
	if empty.Fraction(1) != 0 {
		t.Error("empty fraction not 0")
	}
}
