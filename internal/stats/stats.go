// Package stats provides average-case analysis of the consensus protocols
// under randomized fault injection.
//
// The paper's practical argument (Section 2.2) leans on failures being rare:
// "f = 0 and f = 1 are the most common values". This package quantifies that
// argument by sweeping crash probabilities and measuring the distribution of
// decision rounds, message counts and decision times across seeds — the
// expected-case companion to the worst-case theorems (experiment E11).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations of one scalar metric.
type Sample struct {
	values []float64
}

// Add records one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	if len(s.values) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)))
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	max := 0.0
	for i, v := range s.values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank; 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// String renders mean ± stddev (max).
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f±%.2f (max %.0f)", s.Mean(), s.StdDev(), s.Max())
}

// Histogram counts integer-valued observations.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{counts: map[int]int{}} }

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations equal to v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// Keys returns the observed values in increasing order.
func (h *Histogram) Keys() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// String renders "v:count" pairs in order.
func (h *Histogram) String() string {
	out := ""
	for i, k := range h.Keys() {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%d", k, h.counts[k])
	}
	return out
}
