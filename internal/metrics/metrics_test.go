package metrics_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestZeroValueReady(t *testing.T) {
	var c metrics.Counters
	if c.TotalMsgs() != 0 || c.TotalBits() != 0 {
		t.Error("zero value not empty")
	}
}

func TestAddDataAndCtrl(t *testing.T) {
	var c metrics.Counters
	c.AddData(64)
	c.AddData(8)
	c.AddCtrl()
	if c.DataMsgs != 2 || c.DataBits != 72 {
		t.Errorf("data = %d msgs / %d bits, want 2/72", c.DataMsgs, c.DataBits)
	}
	if c.CtrlMsgs != 1 || c.CtrlBits != 1 {
		t.Errorf("ctrl = %d msgs / %d bits, want 1/1", c.CtrlMsgs, c.CtrlBits)
	}
	if c.TotalMsgs() != 3 || c.TotalBits() != 73 {
		t.Errorf("totals = %d msgs / %d bits, want 3/73", c.TotalMsgs(), c.TotalBits())
	}
}

func TestMerge(t *testing.T) {
	a := metrics.Counters{DataMsgs: 1, CtrlMsgs: 2, DataBits: 10, CtrlBits: 2,
		DroppedData: 3, DroppedCtrl: 4, Rounds: 5}
	b := metrics.Counters{DataMsgs: 10, CtrlMsgs: 20, DataBits: 100, CtrlBits: 20,
		DroppedData: 30, DroppedCtrl: 40, Rounds: 50}
	a.Merge(b)
	want := metrics.Counters{DataMsgs: 11, CtrlMsgs: 22, DataBits: 110, CtrlBits: 22,
		DroppedData: 33, DroppedCtrl: 44, Rounds: 55}
	if a != want {
		t.Errorf("merged = %+v, want %+v", a, want)
	}
}

func TestMergeCommutesOnTotals(t *testing.T) {
	f := func(a, b metrics.Counters) bool {
		x, y := a, b
		x.Merge(b)
		y.Merge(a)
		return x.TotalMsgs() == y.TotalMsgs() && x.TotalBits() == y.TotalBits()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	c := metrics.Counters{Rounds: 3, DataMsgs: 2, DataBits: 128, CtrlMsgs: 4, CtrlBits: 4}
	s := c.String()
	for _, want := range []string{"rounds=3", "data=2(128b)", "ctrl=4(4b)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q lacks %q", s, want)
		}
	}
}
