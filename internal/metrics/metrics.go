// Package metrics provides counters for communication and time costs of
// simulated distributed executions.
//
// The accounting rules follow the paper's Theorem 2: a data message carrying a
// b-bit proposal costs b bits, a control (synchronization) message costs one
// bit, and the cost of an execution is the sum over messages that were
// actually transmitted (a message truncated by a crash before it left the
// sender costs nothing).
package metrics

import "fmt"

// Counters accumulates communication costs of one execution.
//
// The zero value is ready to use.
type Counters struct {
	// DataMsgs is the number of data messages actually transmitted.
	DataMsgs int
	// CtrlMsgs is the number of control (synchronization) messages actually
	// transmitted.
	CtrlMsgs int
	// DataBits is the total payload size of transmitted data messages in bits.
	DataBits int
	// CtrlBits is the total size of transmitted control messages in bits
	// (one bit each, per the paper's footnote 7).
	CtrlBits int
	// DroppedData counts data messages suppressed by a crash during the data
	// sending step.
	DroppedData int
	// DroppedCtrl counts control messages suppressed by a crash during the
	// control sending step (the suffix that never left the sender).
	DroppedCtrl int
	// OmittedData counts data messages suppressed by a send-omission fault
	// (the sender stays alive; the message never reaches the channel).
	OmittedData int
	// OmittedCtrl counts control messages suppressed by a send-omission
	// fault.
	OmittedCtrl int
	// OmittedRecv counts messages of either kind suppressed by a
	// receive-omission fault at their destination (the message was
	// transmitted — and is counted in DataMsgs/CtrlMsgs — but the faulty
	// receiver never sees it).
	OmittedRecv int
	// Late counts messages whose sampled latency exceeded the synchrony
	// bound on a continuous-time engine: a timing fault. The message was
	// transmitted (counted in DataMsgs/CtrlMsgs) but missed its round and is
	// handled exactly like a receive omission — dropped before the
	// receiver's inbox — while being accounted separately from the
	// adversary-injected OmittedRecv. Always zero on round-based engines and
	// under latency models that respect the bound.
	Late int
	// Rounds is the number of rounds the execution lasted.
	Rounds int
}

// TotalMsgs returns the number of messages of either kind that were
// transmitted.
func (c *Counters) TotalMsgs() int { return c.DataMsgs + c.CtrlMsgs }

// TotalBits returns the total number of bits transmitted.
func (c *Counters) TotalBits() int { return c.DataBits + c.CtrlBits }

// AddData records one transmitted data message of the given payload size.
func (c *Counters) AddData(bits int) {
	c.DataMsgs++
	c.DataBits += bits
}

// AddCtrl records one transmitted control message (one bit).
func (c *Counters) AddCtrl() {
	c.CtrlMsgs++
	c.CtrlBits++
}

// Merge adds the counts of other into c.
func (c *Counters) Merge(other Counters) {
	c.DataMsgs += other.DataMsgs
	c.CtrlMsgs += other.CtrlMsgs
	c.DataBits += other.DataBits
	c.CtrlBits += other.CtrlBits
	c.DroppedData += other.DroppedData
	c.DroppedCtrl += other.DroppedCtrl
	c.OmittedData += other.OmittedData
	c.OmittedCtrl += other.OmittedCtrl
	c.OmittedRecv += other.OmittedRecv
	c.Late += other.Late
	c.Rounds += other.Rounds
}

// Minus returns the per-field difference c - prev: the traffic of the
// interval between two snapshots. The telemetry layer uses it to turn the
// engines' cumulative counters into per-round series samples.
func (c Counters) Minus(prev Counters) Counters {
	return Counters{
		DataMsgs:    c.DataMsgs - prev.DataMsgs,
		CtrlMsgs:    c.CtrlMsgs - prev.CtrlMsgs,
		DataBits:    c.DataBits - prev.DataBits,
		CtrlBits:    c.CtrlBits - prev.CtrlBits,
		DroppedData: c.DroppedData - prev.DroppedData,
		DroppedCtrl: c.DroppedCtrl - prev.DroppedCtrl,
		OmittedData: c.OmittedData - prev.OmittedData,
		OmittedCtrl: c.OmittedCtrl - prev.OmittedCtrl,
		OmittedRecv: c.OmittedRecv - prev.OmittedRecv,
		Late:        c.Late - prev.Late,
		Rounds:      c.Rounds - prev.Rounds,
	}
}

// Ledger is the per-kind delivery ledger backing the message-conservation
// law (internal/laws): every transmitted message — already counted in
// Counters.DataMsgs/CtrlMsgs — must end up in exactly one of the sinks below,
// per kind:
//
//	sent == delivered + recv-omitted + late + dead-dest + halted-dest
//
// The engines increment the sink counters at the point a message's fate is
// decided: Delivered* when it enters a receiver's sorted inbox for the
// compute phase, RecvOmit* when an adversarial receive omission suppresses
// it, Late* when its sampled latency misses the synchrony bound (timed
// engine only), DeadDest* when its destination has crashed (before arrival
// or during the same round), and HaltedDest* when its destination has halted
// (decided and returned — alive, but nobody is consuming).
//
// All fields are plain integers — no maps, no pointers — so the ledger rides
// the engines' zero-allocation hot paths and results stay comparable with ==.
// The zero value is ready to use.
type Ledger struct {
	// DeliveredData/DeliveredCtrl count messages that reached a receiver's
	// compute phase (after receive-omission filtering).
	DeliveredData int
	DeliveredCtrl int
	// RecvOmitData/RecvOmitCtrl split Counters.OmittedRecv by kind.
	RecvOmitData int
	RecvOmitCtrl int
	// LateData/LateCtrl split Counters.Late by kind (timed engine only).
	LateData int
	LateCtrl int
	// DeadDestData/DeadDestCtrl count transmitted messages that vanished
	// because their destination crashed (before arrival, or during the round
	// of transmission).
	DeadDestData int
	DeadDestCtrl int
	// HaltedDestData/HaltedDestCtrl count transmitted messages discarded
	// because their destination had halted.
	HaltedDestData int
	HaltedDestCtrl int
}

// Delivered counts one message entering a receiver's compute phase.
func (l *Ledger) Delivered(ctrl bool) {
	if ctrl {
		l.DeliveredCtrl++
	} else {
		l.DeliveredData++
	}
}

// RecvOmitted counts one message suppressed by a receive-omission fault.
func (l *Ledger) RecvOmitted(ctrl bool) {
	if ctrl {
		l.RecvOmitCtrl++
	} else {
		l.RecvOmitData++
	}
}

// Late counts one timing-faulted message (timed engine).
func (l *Ledger) Late(ctrl bool) {
	if ctrl {
		l.LateCtrl++
	} else {
		l.LateData++
	}
}

// DeadDest counts one message whose destination has crashed.
func (l *Ledger) DeadDest(ctrl bool) {
	if ctrl {
		l.DeadDestCtrl++
	} else {
		l.DeadDestData++
	}
}

// HaltedDest counts one message whose destination has halted.
func (l *Ledger) HaltedDest(ctrl bool) {
	if ctrl {
		l.HaltedDestCtrl++
	} else {
		l.HaltedDestData++
	}
}

// Merge adds the counts of other into l.
func (l *Ledger) Merge(other Ledger) {
	l.DeliveredData += other.DeliveredData
	l.DeliveredCtrl += other.DeliveredCtrl
	l.RecvOmitData += other.RecvOmitData
	l.RecvOmitCtrl += other.RecvOmitCtrl
	l.LateData += other.LateData
	l.LateCtrl += other.LateCtrl
	l.DeadDestData += other.DeadDestData
	l.DeadDestCtrl += other.DeadDestCtrl
	l.HaltedDestData += other.HaltedDestData
	l.HaltedDestCtrl += other.HaltedDestCtrl
}

// Minus returns the per-field difference l - prev, mirroring Counters.Minus
// for per-round delivery deltas.
func (l Ledger) Minus(prev Ledger) Ledger {
	return Ledger{
		DeliveredData:  l.DeliveredData - prev.DeliveredData,
		DeliveredCtrl:  l.DeliveredCtrl - prev.DeliveredCtrl,
		RecvOmitData:   l.RecvOmitData - prev.RecvOmitData,
		RecvOmitCtrl:   l.RecvOmitCtrl - prev.RecvOmitCtrl,
		LateData:       l.LateData - prev.LateData,
		LateCtrl:       l.LateCtrl - prev.LateCtrl,
		DeadDestData:   l.DeadDestData - prev.DeadDestData,
		DeadDestCtrl:   l.DeadDestCtrl - prev.DeadDestCtrl,
		HaltedDestData: l.HaltedDestData - prev.HaltedDestData,
		HaltedDestCtrl: l.HaltedDestCtrl - prev.HaltedDestCtrl,
	}
}

// SinkData returns the total data-message sink count — the right-hand side of
// the conservation identity for the data kind.
func (l *Ledger) SinkData() int {
	return l.DeliveredData + l.RecvOmitData + l.LateData + l.DeadDestData + l.HaltedDestData
}

// SinkCtrl returns the total control-message sink count.
func (l *Ledger) SinkCtrl() int {
	return l.DeliveredCtrl + l.RecvOmitCtrl + l.LateCtrl + l.DeadDestCtrl + l.HaltedDestCtrl
}

// String renders the ledger in a compact single-line form.
func (l *Ledger) String() string {
	return fmt.Sprintf("delivered=%d/%d recv-omit=%d/%d late=%d/%d dead-dest=%d/%d halted-dest=%d/%d",
		l.DeliveredData, l.DeliveredCtrl, l.RecvOmitData, l.RecvOmitCtrl,
		l.LateData, l.LateCtrl, l.DeadDestData, l.DeadDestCtrl,
		l.HaltedDestData, l.HaltedDestCtrl)
}

// String renders the counters in a compact single-line form. The omission
// counters appear only when an omission fault actually fired, so the common
// crash-model output is unchanged.
func (c *Counters) String() string {
	s := fmt.Sprintf("rounds=%d data=%d(%db) ctrl=%d(%db) dropped=%d/%d",
		c.Rounds, c.DataMsgs, c.DataBits, c.CtrlMsgs, c.CtrlBits,
		c.DroppedData, c.DroppedCtrl)
	if c.OmittedData != 0 || c.OmittedCtrl != 0 || c.OmittedRecv != 0 {
		s += fmt.Sprintf(" omitted=%d/%d/%d", c.OmittedData, c.OmittedCtrl, c.OmittedRecv)
	}
	if c.Late != 0 {
		s += fmt.Sprintf(" late=%d", c.Late)
	}
	return s
}
