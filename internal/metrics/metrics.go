// Package metrics provides counters for communication and time costs of
// simulated distributed executions.
//
// The accounting rules follow the paper's Theorem 2: a data message carrying a
// b-bit proposal costs b bits, a control (synchronization) message costs one
// bit, and the cost of an execution is the sum over messages that were
// actually transmitted (a message truncated by a crash before it left the
// sender costs nothing).
package metrics

import "fmt"

// Counters accumulates communication costs of one execution.
//
// The zero value is ready to use.
type Counters struct {
	// DataMsgs is the number of data messages actually transmitted.
	DataMsgs int
	// CtrlMsgs is the number of control (synchronization) messages actually
	// transmitted.
	CtrlMsgs int
	// DataBits is the total payload size of transmitted data messages in bits.
	DataBits int
	// CtrlBits is the total size of transmitted control messages in bits
	// (one bit each, per the paper's footnote 7).
	CtrlBits int
	// DroppedData counts data messages suppressed by a crash during the data
	// sending step.
	DroppedData int
	// DroppedCtrl counts control messages suppressed by a crash during the
	// control sending step (the suffix that never left the sender).
	DroppedCtrl int
	// OmittedData counts data messages suppressed by a send-omission fault
	// (the sender stays alive; the message never reaches the channel).
	OmittedData int
	// OmittedCtrl counts control messages suppressed by a send-omission
	// fault.
	OmittedCtrl int
	// OmittedRecv counts messages of either kind suppressed by a
	// receive-omission fault at their destination (the message was
	// transmitted — and is counted in DataMsgs/CtrlMsgs — but the faulty
	// receiver never sees it).
	OmittedRecv int
	// Late counts messages whose sampled latency exceeded the synchrony
	// bound on a continuous-time engine: a timing fault. The message was
	// transmitted (counted in DataMsgs/CtrlMsgs) but missed its round and is
	// handled exactly like a receive omission — dropped before the
	// receiver's inbox — while being accounted separately from the
	// adversary-injected OmittedRecv. Always zero on round-based engines and
	// under latency models that respect the bound.
	Late int
	// Rounds is the number of rounds the execution lasted.
	Rounds int
}

// TotalMsgs returns the number of messages of either kind that were
// transmitted.
func (c *Counters) TotalMsgs() int { return c.DataMsgs + c.CtrlMsgs }

// TotalBits returns the total number of bits transmitted.
func (c *Counters) TotalBits() int { return c.DataBits + c.CtrlBits }

// AddData records one transmitted data message of the given payload size.
func (c *Counters) AddData(bits int) {
	c.DataMsgs++
	c.DataBits += bits
}

// AddCtrl records one transmitted control message (one bit).
func (c *Counters) AddCtrl() {
	c.CtrlMsgs++
	c.CtrlBits++
}

// Merge adds the counts of other into c.
func (c *Counters) Merge(other Counters) {
	c.DataMsgs += other.DataMsgs
	c.CtrlMsgs += other.CtrlMsgs
	c.DataBits += other.DataBits
	c.CtrlBits += other.CtrlBits
	c.DroppedData += other.DroppedData
	c.DroppedCtrl += other.DroppedCtrl
	c.OmittedData += other.OmittedData
	c.OmittedCtrl += other.OmittedCtrl
	c.OmittedRecv += other.OmittedRecv
	c.Late += other.Late
	c.Rounds += other.Rounds
}

// String renders the counters in a compact single-line form. The omission
// counters appear only when an omission fault actually fired, so the common
// crash-model output is unchanged.
func (c *Counters) String() string {
	s := fmt.Sprintf("rounds=%d data=%d(%db) ctrl=%d(%db) dropped=%d/%d",
		c.Rounds, c.DataMsgs, c.DataBits, c.CtrlMsgs, c.CtrlBits,
		c.DroppedData, c.DroppedCtrl)
	if c.OmittedData != 0 || c.OmittedCtrl != 0 || c.OmittedRecv != 0 {
		s += fmt.Sprintf(" omitted=%d/%d/%d", c.OmittedData, c.OmittedCtrl, c.OmittedRecv)
	}
	if c.Late != 0 {
		s += fmt.Sprintf(" late=%d", c.Late)
	}
	return s
}
