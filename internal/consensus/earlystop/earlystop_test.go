package earlystop_test

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/earlystop"
	"repro/internal/sim"
)

func run(t *testing.T, proposals []sim.Value, tt int, adv sim.Adversary) *sim.Result {
	t.Helper()
	procs := earlystop.NewSystem(proposals, tt, 8)
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tt + 2)}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestFailureFreeDecidesInTwoRounds(t *testing.T) {
	// With f=0 every process hears from all n in round 1, sets the early
	// flag, and decides during round 2 — the classic model's floor, one
	// round behind the paper's algorithm.
	props := []sim.Value{30, 10, 20, 40, 50}
	res := run(t, props, 4, adversary.None{})
	if got := res.MaxDecideRound(); got != 2 {
		t.Errorf("decide round = %d, want 2", got)
	}
	for id, v := range res.Decisions {
		if v != 10 {
			t.Errorf("p%d decided %d, want min 10", id, int64(v))
		}
	}
}

func TestBoundMinFPlus2TPlus1(t *testing.T) {
	const n = 7
	tt := n - 1
	for f := 0; f <= tt; f++ {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(100 + i)
		}
		res := run(t, props, tt, adversary.CoordinatorKiller{F: f})
		if err := check.Consensus(props, res); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		if err := check.RoundBound(res, check.BoundClassic(tt)); err != nil {
			t.Errorf("f=%d: %v", f, err)
		}
		want := earlystop.RoundBound(res.Faults(), tt)
		if got := res.MaxDecideRound(); got > want {
			t.Errorf("f=%d: decide round %d exceeds min(f+2,t+1) = %d", f, got, want)
		}
	}
}

func TestRoundBoundHelper(t *testing.T) {
	cases := []struct{ f, t, want int }{
		{0, 5, 2}, {1, 5, 3}, {4, 5, 6}, {5, 5, 6}, {3, 3, 4},
	}
	for _, c := range cases {
		if got := earlystop.RoundBound(c.f, c.t); got != sim.Round(c.want) {
			t.Errorf("RoundBound(%d,%d) = %d, want %d", c.f, c.t, got, c.want)
		}
	}
}

func TestHiddenMinimumHandledUniformly(t *testing.T) {
	// The dangerous scenario for early deciders: a small value leaks to one
	// process before its holder crashes. Uniform agreement must hold no
	// matter who decides first. (This is exactly the scenario family that
	// makes uniform consensus require f+2 rounds in the classic model.)
	props := []sim.Value{1, 50, 60, 70}
	for mask := 0; mask < 8; mask++ {
		adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
			1: {Round: 1, DataMask: []bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}},
		})
		res := run(t, props, 3, adv)
		if err := check.Consensus(props, res); err != nil {
			t.Errorf("mask %03b: %v", mask, err)
		}
	}
}

func TestEarlyFlagPropagates(t *testing.T) {
	// A process that receives a flagged message inherits the flag and
	// decides one round later, even if it witnessed too many crashes to set
	// the flag itself.
	props := []sim.Value{10, 20, 30, 40, 50}
	// p5 crashes silently in round 1: p1..p4 see one crash (n-heard = 1 >= 1
	// is false: 5-5... they hear 4+self? n - nb = 1 < 1 fails) — walk it:
	// nb = 4 (p1..p4), n-nb = 1, r=1: not early. Round 2: all hear 4 again,
	// n-nb = 1 < 2: early. Round 3: broadcast flag, decide. f=1: bound f+2=3. ✓
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		5: {Round: 1},
	})
	res := run(t, props, 4, adv)
	if err := check.Consensus(props, res); err != nil {
		t.Fatal(err)
	}
	if got := res.MaxDecideRound(); got != 3 {
		t.Errorf("decide round = %d, want 3 (= f+2)", got)
	}
}

func TestMessageBitsIncludeFlag(t *testing.T) {
	props := []sim.Value{1, 2, 3}
	procs := earlystop.NewSystem(props, 1, 16)
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: 4}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Each message carries est (16 bits) + early flag (1 bit) = 17 bits.
	if res.Counters.DataBits%17 != 0 {
		t.Errorf("data bits = %d, not a multiple of b+1 = 17", res.Counters.DataBits)
	}
}

func TestPropertyUniformAndBoundedUnderRandomFaults(t *testing.T) {
	prop := func(seedRaw, nRaw uint8) bool {
		n := int(nRaw%6) + 3
		tt := n - 1
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value((int(seedRaw)*11 + i*3) % 40)
		}
		procs := earlystop.NewSystem(props, tt, 8)
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tt + 2)},
			procs, adversary.NewRandom(int64(seedRaw), 0.3, tt))
		if err != nil {
			return false
		}
		res, err := eng.Run()
		if err != nil {
			return false
		}
		if check.Consensus(props, res) != nil {
			return false
		}
		return check.RoundBound(res, check.BoundClassic(tt)) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEstMsgPayload(t *testing.T) {
	m := earlystop.EstMsg{Est: 5, Early: true, B: 32}
	if m.Bits() != 33 {
		t.Errorf("Bits = %d, want 33", m.Bits())
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}
