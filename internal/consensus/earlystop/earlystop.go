// Package earlystop implements the classic early-stopping uniform consensus
// algorithm for the traditional synchronous model, deciding in
// min(f+2, t+1) rounds where f is the actual number of crashes — the round
// complexity the paper's introduction cites as the classic-model lower bound
// [7, 8, 13] and the main baseline the extended model's f+1 bound is
// measured against (experiments E3 and E4).
//
// The algorithm (Raynal, "Consensus in Synchronous Systems: a Concise Guided
// Tour", PRDC 2002 — reference [16] of the paper): every process floods its
// current estimate together with an "early" flag. A process sets the flag at
// the end of round r when it heard from more than n-r processes (it has
// then witnessed fewer than r crashes, so one of rounds 1..r was clean from
// its point of view and its estimate can no longer be beaten), or when it
// receives a flagged message. A flagged process broadcasts once more and
// decides. Everyone decides at the end of round t+1 at the latest.
package earlystop

import (
	"fmt"

	"repro/internal/sim"
)

// EstMsg is the payload: the sender's estimate and its early-decision flag.
// It costs b+1 bits.
type EstMsg struct {
	Est   sim.Value
	Early bool
	B     int
}

// Bits returns b+1: the estimate plus the flag bit.
func (m EstMsg) Bits() int { return m.B + 1 }

// String renders the payload for traces.
func (m EstMsg) String() string { return fmt.Sprintf("est(%d,early=%t)", int64(m.Est), m.Early) }

// Protocol is one early-stopping process. It implements sim.Process and runs
// under sim.ModelClassic.
type Protocol struct {
	id sim.ProcID
	n  int
	t  int
	b  int

	est   sim.Value
	early bool

	decided  bool
	decision sim.Value
	halted   bool
}

// New returns process p_id out of n tolerating t crashes, proposing v with
// bit width b (<=0 defaults to 64).
func New(id sim.ProcID, n, t int, proposal sim.Value, b int) *Protocol {
	if b <= 0 {
		b = 64
	}
	return &Protocol{id: id, n: n, t: t, b: b, est: proposal}
}

// NewSystem builds the n processes of one instance; proposals[i] belongs to
// p_{i+1}.
func NewSystem(proposals []sim.Value, t, b int) []sim.Process {
	procs := make([]sim.Process, len(proposals))
	for i, v := range proposals {
		procs[i] = New(sim.ProcID(i+1), len(proposals), t, v, b)
	}
	return procs
}

// ID implements sim.Process.
func (p *Protocol) ID() sim.ProcID { return p.id }

// MaxRounds returns the worst-case round count t+1.
func (p *Protocol) MaxRounds() sim.Round { return sim.Round(p.t + 1) }

// Send broadcasts the current estimate and early flag to every other process.
func (p *Protocol) Send(r sim.Round) sim.SendPlan {
	if r > p.MaxRounds() {
		return sim.SendPlan{}
	}
	payload := EstMsg{Est: p.est, Early: p.early, B: p.b}
	plan := sim.SendPlan{Data: make([]sim.Outgoing, 0, p.n-1)}
	for j := 1; j <= p.n; j++ {
		if sim.ProcID(j) == p.id {
			continue
		}
		plan.Data = append(plan.Data, sim.Outgoing{To: sim.ProcID(j), Payload: payload})
	}
	return plan
}

// Receive runs the computation phase of round r: if the early flag was set
// at the end of a previous round, the process has just re-broadcast it and
// decides now. Otherwise it lowers its estimate to the minimum heard, and
// sets the early flag if it witnessed fewer than r crashes or saw a flagged
// message.
func (p *Protocol) Receive(r sim.Round, inbox []sim.Message) {
	if p.early {
		// The flag was set at the end of round r-1; the flagged estimate was
		// broadcast during this round's send phase, so deciding is safe.
		p.decide(p.est)
		return
	}
	heard := 1 // itself
	sawEarly := false
	for _, m := range inbox {
		msg, ok := m.Payload.(EstMsg)
		if !ok {
			continue
		}
		heard++
		if msg.Est < p.est {
			p.est = msg.Est
		}
		if msg.Early {
			sawEarly = true
		}
	}
	if sawEarly || p.n-heard < int(r) {
		p.early = true
	}
	if r >= p.MaxRounds() {
		p.decide(p.est)
	}
}

func (p *Protocol) decide(v sim.Value) {
	p.decided = true
	p.decision = v
	p.halted = true
}

// Decided implements sim.Process.
func (p *Protocol) Decided() (sim.Value, bool) { return p.decision, p.decided }

// Halted implements sim.Process.
func (p *Protocol) Halted() bool { return p.halted }

// RoundBound returns the classic-model decision bound min(f+2, t+1) for f
// actual crashes and resilience t.
func RoundBound(f, t int) sim.Round {
	b := f + 2
	if t+1 < b {
		b = t + 1
	}
	return sim.Round(b)
}
