// Package floodset implements the classic FloodSet consensus algorithm for
// the traditional round-based synchronous model (Lynch, "Distributed
// Algorithms", §6.2), one of the two classic baselines the paper compares
// its extended-model algorithm against.
//
// Every process floods the values it learns: in round 1 it broadcasts its own
// proposal; in each later round it broadcasts the values it learned in the
// previous round. After t+1 rounds every pair of processes that reached the
// end of the execution holds the same set of values W (there must have been a
// clean round among the t+1), so deciding min(W) yields uniform agreement.
//
// The algorithm always runs for exactly t+1 rounds regardless of the actual
// number of crashes f — this is the "no early stopping" baseline for
// experiment E4.
package floodset

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ValueSet is the payload: the set of newly learned values, sorted. Its cost
// is b bits per value, following the bit accounting of the paper.
type ValueSet struct {
	Values []sim.Value
	B      int // bit width of one value
}

// Bits returns the payload size: one b-bit slot per value.
func (s ValueSet) Bits() int { return len(s.Values) * s.B }

// String renders the set for traces.
func (s ValueSet) String() string { return fmt.Sprintf("set%v", s.Values) }

// Protocol is one FloodSet process. It implements sim.Process and runs under
// sim.ModelClassic (it never emits control messages).
type Protocol struct {
	id sim.ProcID
	n  int
	t  int
	b  int

	known map[sim.Value]bool
	fresh []sim.Value // values learned in the previous round, to flood next

	decided  bool
	decision sim.Value
	halted   bool
}

// New returns the process p_id out of n tolerating t crashes, proposing v
// with bit width b (<=0 defaults to 64).
func New(id sim.ProcID, n, t int, proposal sim.Value, b int) *Protocol {
	if b <= 0 {
		b = 64
	}
	return &Protocol{
		id:    id,
		n:     n,
		t:     t,
		b:     b,
		known: map[sim.Value]bool{proposal: true},
		fresh: []sim.Value{proposal},
	}
}

// NewSystem builds the n processes of one instance; proposals[i] belongs to
// p_{i+1}.
func NewSystem(proposals []sim.Value, t, b int) []sim.Process {
	procs := make([]sim.Process, len(proposals))
	for i, v := range proposals {
		procs[i] = New(sim.ProcID(i+1), len(proposals), t, v, b)
	}
	return procs
}

// ID implements sim.Process.
func (p *Protocol) ID() sim.ProcID { return p.id }

// Rounds returns the fixed round count of the algorithm, t+1.
func (p *Protocol) Rounds() sim.Round { return sim.Round(p.t + 1) }

// Send floods the values learned in the previous round to every other
// process (rounds 1..t+1).
func (p *Protocol) Send(r sim.Round) sim.SendPlan {
	if r > p.Rounds() || len(p.fresh) == 0 {
		return sim.SendPlan{}
	}
	vals := append([]sim.Value(nil), p.fresh...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	payload := ValueSet{Values: vals, B: p.b}
	plan := sim.SendPlan{Data: make([]sim.Outgoing, 0, p.n-1)}
	for j := 1; j <= p.n; j++ {
		if sim.ProcID(j) == p.id {
			continue
		}
		plan.Data = append(plan.Data, sim.Outgoing{To: sim.ProcID(j), Payload: payload})
	}
	return plan
}

// Receive accumulates flooded values; at the end of round t+1 it decides the
// minimum of its set.
func (p *Protocol) Receive(r sim.Round, inbox []sim.Message) {
	p.fresh = p.fresh[:0]
	for _, m := range inbox {
		set, ok := m.Payload.(ValueSet)
		if !ok {
			continue
		}
		for _, v := range set.Values {
			if !p.known[v] {
				p.known[v] = true
				p.fresh = append(p.fresh, v)
			}
		}
	}
	if r == p.Rounds() {
		p.decide(p.min())
	}
}

// min returns the smallest known value.
func (p *Protocol) min() sim.Value {
	first := true
	var m sim.Value
	for v := range p.known {
		if first || v < m {
			m = v
			first = false
		}
	}
	return m
}

func (p *Protocol) decide(v sim.Value) {
	p.decided = true
	p.decision = v
	p.halted = true
}

// Decided implements sim.Process.
func (p *Protocol) Decided() (sim.Value, bool) { return p.decision, p.decided }

// Halted implements sim.Process.
func (p *Protocol) Halted() bool { return p.halted }
