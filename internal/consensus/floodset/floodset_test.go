package floodset_test

import (
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/floodset"
	"repro/internal/sim"
)

func run(t *testing.T, proposals []sim.Value, tt int, adv sim.Adversary) *sim.Result {
	t.Helper()
	procs := floodset.NewSystem(proposals, tt, 8)
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tt + 2)}, procs, adv)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestDecidesMinAfterTPlus1Rounds(t *testing.T) {
	props := []sim.Value{30, 10, 20, 40}
	res := run(t, props, 2, adversary.None{})
	if res.Rounds != 3 {
		t.Errorf("rounds = %d, want t+1 = 3", res.Rounds)
	}
	for id, v := range res.Decisions {
		if v != 10 {
			t.Errorf("p%d decided %d, want min 10", id, int64(v))
		}
		if res.DecideRound[id] != 3 {
			t.Errorf("p%d decided at round %d, want 3", id, res.DecideRound[id])
		}
	}
}

func TestNoEarlyStoppingEvenFailureFree(t *testing.T) {
	// FloodSet cannot exploit f=0: it always runs t+1 rounds — this is the
	// baseline behaviour experiment E4 contrasts with early stopping.
	for tt := 1; tt <= 5; tt++ {
		props := []sim.Value{5, 4, 3, 2, 1, 6}
		res := run(t, props, tt, adversary.None{})
		if res.Rounds != sim.Round(tt+1) {
			t.Errorf("t=%d: rounds = %d, want %d", tt, res.Rounds, tt+1)
		}
	}
}

func TestPartialDeliveryStillUniform(t *testing.T) {
	// p1 holds the minimum and leaks it to a single process before dying;
	// flooding must spread it to everyone within t+1 rounds.
	props := []sim.Value{1, 50, 60, 70}
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1, DataMask: []bool{true, false, false}}, // only p2 learns 1
	})
	res := run(t, props, 2, adv)
	if err := check.Consensus(props, res); err != nil {
		t.Fatal(err)
	}
	for id, v := range res.Decisions {
		if v != 1 {
			t.Errorf("p%d decided %d, want 1", id, int64(v))
		}
	}
}

func TestValueHiddenFromEveryoneIsNotDecided(t *testing.T) {
	// p1 dies without leaking its minimum to anyone: the survivors must
	// agree on the minimum of the remaining values.
	props := []sim.Value{1, 50, 60, 70}
	adv := adversary.NewScript(map[sim.ProcID]adversary.CrashPlan{
		1: {Round: 1}, // nothing escapes
	})
	res := run(t, props, 2, adv)
	if err := check.Consensus(props, res); err != nil {
		t.Fatal(err)
	}
	for id, v := range res.Decisions {
		if v != 50 {
			t.Errorf("p%d decided %d, want 50", id, int64(v))
		}
	}
}

func TestFloodsOnlyNewValues(t *testing.T) {
	// Message economy: in a failure-free run, round 1 carries proposals
	// (n(n-1) messages), round 2 floods the newly learned values, and later
	// rounds are silent — no process learns anything new.
	props := []sim.Value{3, 1, 2}
	res := run(t, props, 2, adversary.None{})
	// Round 1: 6 msgs; round 2: 6 msgs (each learned 2 new values); round 3:
	// nothing new -> 0 msgs.
	if res.Counters.DataMsgs != 12 {
		t.Errorf("data messages = %d, want 12", res.Counters.DataMsgs)
	}
}

func TestBitAccountingPerValue(t *testing.T) {
	props := []sim.Value{3, 1, 2}
	procs := floodset.NewSystem(props, 1, 16)
	eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: 4}, procs, adversary.None{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: 6 single-value messages (16 bits each); round 2: 6 messages
	// carrying 2 values each (32 bits each).
	if want := 6*16 + 6*32; res.Counters.DataBits != want {
		t.Errorf("data bits = %d, want %d", res.Counters.DataBits, want)
	}
}

func TestPropertyUniformUnderRandomFaults(t *testing.T) {
	prop := func(seedRaw, nRaw uint8) bool {
		n := int(nRaw%6) + 3
		tt := n - 1
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value((int(seedRaw)*7 + i*13) % 50)
		}
		procs := floodset.NewSystem(props, tt, 8)
		eng, err := sim.NewEngine(sim.Config{Model: sim.ModelClassic, Horizon: sim.Round(tt + 2)},
			procs, adversary.NewRandom(int64(seedRaw), 0.25, tt))
		if err != nil {
			return false
		}
		res, err := eng.Run()
		if err != nil {
			return false
		}
		return check.Consensus(props, res) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestValueSetPayload(t *testing.T) {
	s := floodset.ValueSet{Values: []sim.Value{1, 2, 3}, B: 8}
	if s.Bits() != 24 {
		t.Errorf("Bits = %d, want 24", s.Bits())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}
