package mr99_test

import (
	"fmt"
	"testing"

	"repro/internal/check"
	"repro/internal/consensus/mr99"
	"repro/internal/sim"
)

func props(n int) []sim.Value {
	vs := make([]sim.Value, n)
	for i := range vs {
		vs[i] = sim.Value(100 + i)
	}
	return vs
}

// validate checks uniform consensus on an MR99 result.
func validate(proposals []sim.Value, res *mr99.Result) error {
	prop := map[sim.Value]bool{}
	for _, v := range proposals {
		prop[v] = true
	}
	distinct := map[sim.Value]bool{}
	for id, v := range res.Decisions {
		if !prop[v] {
			return fmt.Errorf("p%d decided non-proposal %d", id, int64(v))
		}
		distinct[v] = true
	}
	if len(distinct) > 1 {
		return fmt.Errorf("agreement violated: %v", res.Decisions)
	}
	for i := 1; i <= len(proposals); i++ {
		id := sim.ProcID(i)
		if _, crashed := res.Crashed[id]; crashed {
			continue
		}
		if _, ok := res.Decisions[id]; !ok {
			return fmt.Errorf("alive p%d never decided", id)
		}
	}
	return nil
}

func TestFailureFreeImmediateGST(t *testing.T) {
	// With an accurate failure detector from round 1, everyone decides the
	// first coordinator's proposal in round 1.
	pr := props(5)
	res, err := mr99.Run(mr99.Config{N: 5, T: 2}, pr, &mr99.GSTOracle{GST: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(pr, res); err != nil {
		t.Fatal(err)
	}
	for id, v := range res.Decisions {
		if v != pr[0] {
			t.Errorf("p%d decided %d, want %d", id, int64(v), int64(pr[0]))
		}
		if res.DecideRound[id] != 1 {
			t.Errorf("p%d decided in round %d, want 1", id, res.DecideRound[id])
		}
	}
}

func TestCoordinatorCrashDelaysDecision(t *testing.T) {
	// p1 crashes before round 1: round 1 produces only ⊥, round 2 (p2
	// coordinating) decides p2's proposal.
	pr := props(5)
	res, err := mr99.Run(mr99.Config{N: 5, T: 2}, pr,
		&mr99.GSTOracle{GST: 1, Crashes: map[sim.ProcID]int{1: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(pr, res); err != nil {
		t.Fatal(err)
	}
	for id, v := range res.Decisions {
		if v != pr[1] {
			t.Errorf("p%d decided %d, want %d", id, int64(v), int64(pr[1]))
		}
		if res.DecideRound[id] != 2 {
			t.Errorf("p%d decided in round %d, want 2", id, res.DecideRound[id])
		}
	}
}

func TestLateGSTDelaysDecision(t *testing.T) {
	// Before GST every process falsely suspects the coordinator — except the
	// coordinator itself, which trivially holds its own estimate. So in each
	// pre-GST round the coordinator's aux is its estimate while everyone
	// else's is ⊥: quorums containing the coordinator see one non-⊥ value
	// and adopt it. p1's proposal is therefore adopted by everyone in round
	// 1 and carried through the coordinator chain; the decision happens at
	// round GST, with p1's value.
	pr := props(5)
	const gst = 4
	res, err := mr99.Run(mr99.Config{N: 5, T: 2}, pr, &mr99.GSTOracle{GST: gst})
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(pr, res); err != nil {
		t.Fatal(err)
	}
	for id := range res.Decisions {
		if res.DecideRound[id] != gst {
			t.Errorf("p%d decided in round %d, want %d", id, res.DecideRound[id], gst)
		}
	}
	for id, v := range res.Decisions {
		if v != pr[0] {
			t.Errorf("p%d decided %d, want %d (p1's value adopted in round 1)", id, int64(v), int64(pr[0]))
		}
	}
}

func TestBridgeMessageStructure(t *testing.T) {
	// Experiment E8: one failure-free MR99 round costs n-1 step-1 messages
	// plus n(n-1) step-2 messages, versus n-1 data + n-1 commit messages for
	// the paper's synchronous algorithm — the commit replaces the entire
	// all-to-all second step.
	const n = 6
	pr := props(n)
	res, err := mr99.Run(mr99.Config{N: n, T: 2}, pr, &mr99.GSTOracle{GST: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 1 {
		t.Fatalf("rounds traced = %d, want 1", len(res.Trace))
	}
	tr := res.Trace[0]
	if tr.Step1Msgs != n-1 {
		t.Errorf("step-1 messages = %d, want %d", tr.Step1Msgs, n-1)
	}
	if tr.Step2Msgs != n*(n-1) {
		t.Errorf("step-2 messages = %d, want %d", tr.Step2Msgs, n*(n-1))
	}
	if len(tr.Deciders) != n {
		t.Errorf("deciders = %v, want all %d", tr.Deciders, n)
	}
}

func TestResilienceBoundEnforced(t *testing.T) {
	if _, err := mr99.Run(mr99.Config{N: 4, T: 2}, props(4), &mr99.GSTOracle{GST: 1}); err == nil {
		t.Error("accepted t >= n/2")
	}
	if _, err := mr99.Run(mr99.Config{N: 3, T: 1}, props(2), &mr99.GSTOracle{GST: 1}); err == nil {
		t.Error("accepted proposal count mismatch")
	}
}

func TestOracleStarvationGuard(t *testing.T) {
	// A GST beyond MaxRounds starves the run; the executor reports it rather
	// than looping forever.
	_, err := mr99.Run(mr99.Config{N: 3, T: 1, MaxRounds: 5}, props(3), &mr99.GSTOracle{GST: 100})
	if err == nil {
		t.Fatal("expected starvation error")
	}
}

func TestExhaustiveMR99SmallSystem(t *testing.T) {
	// Model-check MR99 for n=3, t=1 over every chooser-resolved execution
	// with a chaotic prefix of 2 rounds: false suspicions, crashes and
	// adversarial quorums before GST cannot break uniform consensus.
	const n, tt, gst = 3, 1, 3
	pr := props(n)
	bt := check.NewBacktracker()
	executions := 0
	for {
		oracle := &mr99.ChooserOracle{C: bt, T: tt, GST: gst}
		res, err := mr99.Run(mr99.Config{N: n, T: tt, MaxRounds: gst + 3}, pr, oracle)
		executions++
		if err != nil {
			t.Fatalf("execution %d: %v", executions, err)
		}
		if err := validate(pr, res); err != nil {
			t.Fatalf("execution %d: %v", executions, err)
		}
		if !bt.Next() {
			break
		}
		if executions > 5_000_000 {
			t.Fatal("execution budget exceeded")
		}
	}
	t.Logf("explored %d MR99 executions", executions)
	if executions < 100 {
		t.Errorf("suspiciously few executions (%d): chooser not exercised?", executions)
	}
}

func TestQuorumIntersectionLocksValue(t *testing.T) {
	// Once any process decides v in round r, every later decision must be v
	// (the majority/quorum intersection argument). Run many chooser-driven
	// executions of a larger system and check that mixed-round decisions
	// agree.
	const n, tt, gst = 5, 2, 3
	pr := props(n)
	bt := check.NewBacktracker()
	executions := 0
	for executions < 30_000 {
		oracle := &mr99.ChooserOracle{C: bt, T: tt, GST: gst}
		res, err := mr99.Run(mr99.Config{N: n, T: tt, MaxRounds: gst + 3}, pr, oracle)
		executions++
		if err != nil {
			t.Fatalf("execution %d: %v", executions, err)
		}
		if err := validate(pr, res); err != nil {
			t.Fatalf("execution %d: %v", executions, err)
		}
		if !bt.Next() {
			break
		}
	}
	t.Logf("explored %d executions", executions)
}
