// Package mr99 implements the asynchronous uniform consensus algorithm of
// Mostéfaoui and Raynal (DISC 1999) for systems equipped with a failure
// detector of class ◇S — reference [15] of the paper, called MR99 there.
// Section 4 of the paper presents its own synchronous algorithm and MR99 as
// "two implementations in different settings of the very same basic
// principle": experiment E8 runs both and compares their per-round
// communication structure.
//
// Each asynchronous round r has a rotating coordinator c = ((r-1) mod n)+1
// and two communication steps:
//
//  1. c broadcasts its current estimate; every process waits until it
//     receives the estimate or suspects c (◇S query), setting aux to the
//     estimate or ⊥ accordingly.
//  2. every process broadcasts aux and waits for n-t AUX messages (the
//     largest number that cannot deadlock). If a majority of the received
//     AUX values carry the estimate v, the process decides v; if at least
//     one does, it adopts v; otherwise it keeps its estimate.
//
// Deciding processes reliably broadcast the decision so that everyone
// terminates; the executor models this by delivering the decision to all
// alive processes one round later.
//
// Nondeterminism (which processes receive the coordinator's estimate, which
// n-t AUX quorum each process observes, when crashes happen) is delegated to
// an Oracle, so the executor is deterministic and — with a backtracking
// oracle — exhaustively checkable, exactly like the synchronous engine.
//
// The algorithm requires a majority of correct processes (t < n/2), the
// bound the paper quotes from [5] as necessary in this setting.
package mr99

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Unknown is the ⊥ aux value.
const Unknown = sim.NoValue

// Oracle resolves the nondeterminism of an asynchronous execution.
type Oracle interface {
	// CrashesBefore reports whether p crashes before participating in round
	// r (crashed processes stay crashed). The executor enforces the global
	// bound of t crashes.
	CrashesBefore(p sim.ProcID, r int) bool
	// ReceivesEstimate reports whether p obtains the round-r coordinator's
	// estimate in step 1 (true) or gives up after suspecting it (false).
	// When the coordinator is crashed the oracle may return either (the
	// estimate may have been sent before the crash); when it is alive,
	// returning false models a false suspicion (allowed by ◇S only finitely
	// long — the oracle's GST discipline enforces eventual accuracy).
	ReceivesEstimate(p sim.ProcID, r int, coordAlive bool) bool
	// AuxQuorum selects which need (= n-t) AUX senders p observes in step 2,
	// out of the alive senders. The returned slice must be a subset of
	// senders of length need.
	AuxQuorum(p sim.ProcID, r int, senders []sim.ProcID, need int) []sim.ProcID
}

// Config parametrizes a run.
type Config struct {
	N int
	T int // resilience; must satisfy T < N/2
	// MaxRounds aborts runs that fail to decide (oracle starvation guard).
	MaxRounds int
}

// Validate checks the ◇S resilience requirement.
func (c Config) Validate() error {
	if c.N < 1 {
		return errors.New("mr99: need at least one process")
	}
	if c.T < 0 || 2*c.T >= c.N {
		return fmt.Errorf("mr99: need t < n/2, got n=%d t=%d", c.N, c.T)
	}
	return nil
}

// RoundTrace records the communication of one asynchronous round for the
// bridge comparison of experiment E8.
type RoundTrace struct {
	Round       int
	Coordinator sim.ProcID
	// Step1Msgs is the number of estimate messages the coordinator sent.
	Step1Msgs int
	// Step2Msgs is the number of AUX messages broadcast in the second step.
	Step2Msgs int
	// Deciders lists the processes that decided in this round.
	Deciders []sim.ProcID
}

// Result summarizes a run.
type Result struct {
	Decisions   map[sim.ProcID]sim.Value
	DecideRound map[sim.ProcID]int
	Crashed     map[sim.ProcID]int
	Rounds      int
	Trace       []RoundTrace
}

// Faults returns the number of crashes that occurred.
func (r *Result) Faults() int { return len(r.Crashed) }

// proc is the per-process state.
type proc struct {
	id       sim.ProcID
	est      sim.Value
	crashed  bool
	decided  bool
	decision sim.Value
}

// Run executes one consensus instance under the oracle.
func Run(cfg Config, proposals []sim.Value, o Oracle) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(proposals) != cfg.N {
		return nil, fmt.Errorf("mr99: %d proposals for %d processes", len(proposals), cfg.N)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 4 * cfg.N
	}
	procs := make([]*proc, cfg.N)
	for i := range procs {
		procs[i] = &proc{id: sim.ProcID(i + 1), est: proposals[i]}
	}
	res := &Result{
		Decisions:   map[sim.ProcID]sim.Value{},
		DecideRound: map[sim.ProcID]int{},
		Crashed:     map[sim.ProcID]int{},
	}
	majority := cfg.N/2 + 1
	need := cfg.N - cfg.T
	decidedLastRound := false
	var lockedValue sim.Value

	for r := 1; r <= maxRounds; r++ {
		// Crash phase: the oracle may crash processes (within budget t).
		for _, p := range procs {
			if !p.crashed && res.Faults() < cfg.T && o.CrashesBefore(p.id, r) {
				p.crashed = true
				res.Crashed[p.id] = r
			}
		}
		alive := aliveOf(procs)
		if len(alive) == 0 {
			res.Rounds = r
			return res, nil
		}

		// Decision propagation: a decision made in round r-1 reaches every
		// alive process now (reliable broadcast of DECIDE).
		if decidedLastRound {
			for _, p := range alive {
				decide(res, p, lockedValue, r)
			}
			res.Rounds = r
			return res, nil
		}

		coord := procs[(r-1)%cfg.N]
		tr := RoundTrace{Round: r, Coordinator: coord.id}

		// Step 1: coordinator broadcast; receivers set aux. A coordinator
		// crashes only at round boundaries in this executor, so a crashed
		// coordinator sent nothing and every receiver eventually suspects it
		// (aux = ⊥); the pre-GST oracle can still model false suspicion of an
		// alive coordinator.
		aux := map[sim.ProcID]sim.Value{}
		coordAlive := !coord.crashed
		if coordAlive {
			tr.Step1Msgs = cfg.N - 1
		}
		for _, p := range alive {
			got := false
			if coordAlive {
				if p == coord {
					got = true // the coordinator trivially has its own estimate
				} else {
					got = o.ReceivesEstimate(p.id, r, true)
				}
			}
			if got {
				aux[p.id] = coord.est
			} else {
				aux[p.id] = Unknown
			}
		}

		// Step 2: all-to-all AUX exchange; each process observes an
		// oracle-chosen quorum of n-t senders.
		senders := ids(alive)
		tr.Step2Msgs = len(alive) * (cfg.N - 1)
		if len(senders) < need {
			return res, fmt.Errorf("mr99: only %d alive senders for quorum %d (round %d)",
				len(senders), need, r)
		}
		est := coord.est
		anyDecided := false
		for _, p := range alive {
			quorum := o.AuxQuorum(p.id, r, senders, need)
			if err := validQuorum(quorum, senders, need); err != nil {
				return res, fmt.Errorf("mr99: oracle returned bad quorum for p%d round %d: %w",
					p.id, r, err)
			}
			countV := 0
			for _, q := range quorum {
				if aux[q] != Unknown {
					countV++
				}
			}
			switch {
			case countV >= majority:
				decide(res, p, est, r)
				tr.Deciders = append(tr.Deciders, p.id)
				anyDecided = true
			case countV > 0:
				p.est = est
			}
		}
		res.Trace = append(res.Trace, tr)
		res.Rounds = r
		if anyDecided {
			decidedLastRound = true
			lockedValue = est
		}
		if allDecided(alive) {
			return res, nil
		}
	}
	return res, fmt.Errorf("mr99: no decision within %d rounds (oracle starves the run)", maxRounds)
}

// decide records a decision (idempotently) for an alive process.
func decide(res *Result, p *proc, v sim.Value, r int) {
	if p.decided || p.crashed {
		return
	}
	p.decided = true
	p.decision = v
	res.Decisions[p.id] = v
	res.DecideRound[p.id] = r
}

func aliveOf(procs []*proc) []*proc {
	var out []*proc
	for _, p := range procs {
		if !p.crashed {
			out = append(out, p)
		}
	}
	return out
}

func allDecided(procs []*proc) bool {
	for _, p := range procs {
		if !p.decided {
			return false
		}
	}
	return true
}

func ids(procs []*proc) []sim.ProcID {
	out := make([]sim.ProcID, len(procs))
	for i, p := range procs {
		out[i] = p.id
	}
	return out
}

// validQuorum checks an oracle-selected quorum: right size, no duplicates,
// subset of senders.
func validQuorum(quorum, senders []sim.ProcID, need int) error {
	if len(quorum) != need {
		return fmt.Errorf("size %d, want %d", len(quorum), need)
	}
	in := map[sim.ProcID]bool{}
	for _, s := range senders {
		in[s] = true
	}
	seen := map[sim.ProcID]bool{}
	for _, q := range quorum {
		if !in[q] {
			return fmt.Errorf("p%d not an alive sender", q)
		}
		if seen[q] {
			return fmt.Errorf("p%d duplicated", q)
		}
		seen[q] = true
	}
	return nil
}
