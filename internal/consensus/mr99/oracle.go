package mr99

import (
	"sort"

	"repro/internal/sim"
)

// GSTOracle is the standard ◇S behaviour: before round GST the failure
// detector is arbitrary (modelled as: every process suspects every
// coordinator), from round GST on it is accurate (a process suspects the
// coordinator if and only if it has crashed). Crashes happen at scripted
// rounds. AUX quorums are the lowest-id n-t alive senders, favouring
// determinism.
//
// With this oracle a run decides in the first round r >= GST whose
// coordinator is alive — the asynchronous analog of the paper's "decide in
// one round once the coordinator is not suspected".
type GSTOracle struct {
	// GST is the first round with an accurate failure detector (>= 1).
	GST int
	// Crashes maps a process to the round before which it crashes.
	Crashes map[sim.ProcID]int
}

// CrashesBefore implements Oracle.
func (o *GSTOracle) CrashesBefore(p sim.ProcID, r int) bool {
	cr, ok := o.Crashes[p]
	return ok && r >= cr
}

// ReceivesEstimate implements Oracle.
func (o *GSTOracle) ReceivesEstimate(_ sim.ProcID, r int, coordAlive bool) bool {
	if !coordAlive {
		return false
	}
	return r >= o.GST
}

// AuxQuorum implements Oracle: the lowest-id n-t alive senders.
func (o *GSTOracle) AuxQuorum(_ sim.ProcID, _ int, senders []sim.ProcID, need int) []sim.ProcID {
	sorted := append([]sim.ProcID(nil), senders...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[:need]
}

// Chooser is the choice interface used by the backtracking oracle (it
// matches adversary.Chooser and check.Backtracker).
type Chooser interface {
	Choose(n int) int
}

// ChooserOracle resolves every asynchronous choice through a Chooser, making
// MR99 runs exhaustively explorable like the synchronous engines. To keep
// the space finite it enforces a GST discipline: from round GST on, the
// failure detector is accurate and quorums are canonical (lowest ids), so
// every run decides shortly after GST.
type ChooserOracle struct {
	C Chooser
	// T is the crash budget.
	T int
	// GST bounds the chaotic prefix (chooser-driven suspicion and quorums
	// happen only in rounds < GST).
	GST int

	crashes int
}

// CrashesBefore implements Oracle: chooser-driven within budget, only during
// the chaotic prefix.
func (o *ChooserOracle) CrashesBefore(_ sim.ProcID, r int) bool {
	if o.crashes >= o.T || r >= o.GST {
		return false
	}
	if o.C.Choose(2) == 1 {
		o.crashes++
		return true
	}
	return false
}

// ReceivesEstimate implements Oracle.
func (o *ChooserOracle) ReceivesEstimate(_ sim.ProcID, r int, coordAlive bool) bool {
	if r >= o.GST {
		return coordAlive
	}
	// Pre-GST: a crashed coordinator's messages may or may not arrive; an
	// alive coordinator may be falsely suspected. Either way both outcomes
	// are legal.
	return o.C.Choose(2) == 1
}

// AuxQuorum implements Oracle: pre-GST the quorum is an arbitrary
// chooser-selected combination; post-GST it is canonical.
func (o *ChooserOracle) AuxQuorum(p sim.ProcID, r int, senders []sim.ProcID, need int) []sim.ProcID {
	sorted := append([]sim.ProcID(nil), senders...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if r >= o.GST || len(sorted) == need {
		return sorted[:need]
	}
	// Choose a size-need subset: walk the sorted senders, keeping track of
	// how many must still be taken.
	out := make([]sim.ProcID, 0, need)
	remaining := need
	for i, s := range sorted {
		left := len(sorted) - i
		if left == remaining {
			out = append(out, sorted[i:]...)
			break
		}
		if remaining > 0 && o.C.Choose(2) == 1 {
			out = append(out, s)
			remaining--
		}
	}
	return out
}
