// Package prof holds the wall-clock profiling plumbing shared by the four
// CLIs (agreerun, agreesim, agreefuzz, agreeserve): starting and stopping a
// CPU profile, snapshotting a heap profile, and writing telemetry artifacts
// (Chrome trace and metrics timeline JSON) to files. It exists so every
// binary exposes the same -cpuprofile/-memprofile/-telemetry-out/-chrome-trace
// flags with the same semantics, instead of four slightly different copies.
//
// Everything here is wall-clock-side observability; the deterministic
// simulated-time telemetry itself lives in internal/telemetry.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop function.
// An empty path is a no-op returning a nil-safe stop. The caller must invoke
// stop before reading the file (typically via defer in main).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: start cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap snapshots the heap profile to path after a GC, so the profile
// reflects live objects rather than garbage. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create mem profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: write mem profile: %w", err)
	}
	return nil
}

// WriteFile writes a telemetry artifact (already-rendered bytes) to path.
// An empty path is a no-op; "-" writes to stdout.
func WriteFile(path string, data []byte) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		_, err := os.Stdout.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("prof: write %s: %w", path, err)
	}
	return nil
}
