package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartCPUEmptyPathNoop(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be callable, not nil
}

func TestStartCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pb.gz")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to hold.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile file is empty after stop")
	}
	// A second stop from a fresh start must not collide with the first.
	stop2, err := StartCPU(filepath.Join(t.TempDir(), "cpu2.pb.gz"))
	if err != nil {
		t.Fatal(err)
	}
	stop2()
}

func TestWriteHeap(t *testing.T) {
	if err := WriteHeap(""); err != nil {
		t.Errorf("empty path: %v", err)
	}
	path := filepath.Join(t.TempDir(), "mem.pb.gz")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("heap profile file is empty")
	}
	if err := WriteHeap(filepath.Join(t.TempDir(), "no", "such", "dir", "m")); err == nil {
		t.Error("unwritable path: want error, got nil")
	}
}

func TestWriteFile(t *testing.T) {
	if err := WriteFile("", []byte("dropped")); err != nil {
		t.Errorf("empty path: %v", err)
	}
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := WriteFile(path, []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"ok":true}` {
		t.Errorf("wrote %q", got)
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "a"), nil); err == nil {
		t.Error("unwritable path: want error, got nil")
	}
}
