package lan_test

import (
	"math"
	"testing"

	"repro/internal/lan"
	"repro/internal/timing"
)

func TestDerivedParametersPositive(t *testing.T) {
	for _, p := range lan.Profiles() {
		for _, b := range []int{8, 64, 1024, 65536} {
			if p.D(b) <= 0 {
				t.Errorf("%s: D(%d) = %g", p.Name, b, p.D(b))
			}
			if p.Delta() <= 0 {
				t.Errorf("%s: Delta = %g", p.Name, p.Delta())
			}
			if p.Delta() >= p.D(b) {
				t.Errorf("%s: δ (%g) not << D (%g)", p.Name, p.Delta(), p.D(b))
			}
		}
	}
}

func TestDMonotoneInPayload(t *testing.T) {
	for _, p := range lan.Profiles() {
		if p.D(1<<20) <= p.D(64) {
			t.Errorf("%s: D not increasing in payload", p.Name)
		}
	}
}

func TestPaperRealismClaim(t *testing.T) {
	// Section 2.2: "δ < D/(f+1) ... is always satisfied for realistic values
	// of δ and D". With textbook Ethernet numbers the extended model wins for
	// any plausible fault count on every profile (f up to double digits).
	for _, p := range lan.Profiles() {
		upTo := p.ExtendedWinsUpTo(64)
		if upTo < 10 {
			t.Errorf("%s: extended model wins only up to f=%d (ratio %.4f); the paper's realism claim fails",
				p.Name, upTo, p.Ratio(64))
		}
	}
}

func TestExtendedWinsUpToConsistentWithTiming(t *testing.T) {
	// ExtendedWinsUpTo must agree with the timing package's Advantage at the
	// boundary (using a large t so the classic bound is f+2).
	const b = 64
	for _, p := range lan.Profiles() {
		f := p.ExtendedWinsUpTo(b)
		cost := timing.Cost{D: p.D(b), Delta: p.Delta()}
		const bigT = 1 << 20
		if f >= 0 && !cost.ExtendedWins(f, bigT) {
			t.Errorf("%s: claims win at f=%d but Advantage = %g",
				p.Name, f, cost.Advantage(f, bigT))
		}
		if cost.ExtendedWins(f+1, bigT) {
			t.Errorf("%s: claims loss at f=%d but Advantage = %g",
				p.Name, f+1, cost.Advantage(f+1, bigT))
		}
	}
}

func TestMinimumFrameFloor(t *testing.T) {
	// A 1-bit commit costs a full minimum frame: δ must equal the
	// minimum-frame serialization time.
	p := lan.Ethernet100M
	want := p.MinFrameBits / p.BitsPerSecond
	if got := p.Delta(); got != want {
		t.Errorf("Delta = %g, want min-frame time %g", got, want)
	}
}

func TestString(t *testing.T) {
	for _, p := range lan.Profiles() {
		if p.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestMessageLatenciesWithinBounds(t *testing.T) {
	// The per-message latencies the timed engine charges must respect the
	// synchrony bounds the same profile derives: a data message arrives
	// within D (the slack is exactly the processing budget) and a control
	// message within D + δ (pipelined one minimum frame behind the data).
	for _, p := range lan.Profiles() {
		for _, b := range []int{8, 64, 4096} {
			if got, want := p.DataLatency(b), p.D(b); got > want {
				t.Errorf("%s: DataLatency(%d) = %g exceeds D = %g", p.Name, b, got, want)
			}
			if slack := p.D(b) - p.DataLatency(b); math.Abs(slack-p.ProcessingSeconds) > 1e-12*p.ProcessingSeconds {
				t.Errorf("%s: data slack %g, want processing budget %g", p.Name, slack, p.ProcessingSeconds)
			}
			if got, want := p.CtrlLatency(b), p.D(b)+p.Delta(); got > want {
				t.Errorf("%s: CtrlLatency(%d) = %g exceeds D+δ = %g", p.Name, b, got, want)
			}
			if got, want := p.CtrlLatency(b), p.DataLatency(b)+p.Delta(); got != want {
				t.Errorf("%s: CtrlLatency(%d) = %g, want data+δ = %g", p.Name, b, got, want)
			}
		}
	}
}
