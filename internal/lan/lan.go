// Package lan derives the timing parameters of the Section 2.2 cost model
// from concrete local-area-network characteristics.
//
// The paper argues the extended model suits "synchronous systems built on
// top of local area networks with reliable communication" and that the
// winning condition δ < D/(f+1) "is always satisfied for realistic values of
// δ and D". This package makes that argument checkable: given link speed,
// propagation delay, payload size and per-message processing time, it
// computes
//
//	D = propagation + transmission(data frame) + processing
//	δ = transmission(control frame)
//
// because the control message is pipelined immediately behind the data
// message on the same channel — the receiver has both after one extra
// serialization time of a minimum-size frame, with no extra propagation or
// processing budget (footnote 4 of the paper).
package lan

import "fmt"

// Profile describes a LAN technology.
type Profile struct {
	// Name labels the profile.
	Name string
	// BitsPerSecond is the link speed.
	BitsPerSecond float64
	// PropagationSeconds is the one-way propagation delay (cable + switch).
	PropagationSeconds float64
	// ProcessingSeconds is the per-round processing budget included in D.
	ProcessingSeconds float64
	// MinFrameBits is the minimum frame size (a one-bit commit still costs a
	// full minimum frame on real Ethernet).
	MinFrameBits float64
	// OverheadBits is the per-frame header/trailer overhead added to
	// payloads.
	OverheadBits float64
}

// Standard profiles with textbook Ethernet parameters.
var (
	// Ethernet100M is classic switched 100BASE-TX with ~100 m reach.
	Ethernet100M = Profile{
		Name:               "100 Mb/s Ethernet",
		BitsPerSecond:      100e6,
		PropagationSeconds: 5e-6,
		ProcessingSeconds:  200e-6,
		MinFrameBits:       512,
		OverheadBits:       304, // 38 bytes MAC/IP/UDP framing
	}
	// Ethernet1G is switched gigabit Ethernet.
	Ethernet1G = Profile{
		Name:               "1 Gb/s Ethernet",
		BitsPerSecond:      1e9,
		PropagationSeconds: 5e-6,
		ProcessingSeconds:  100e-6,
		MinFrameBits:       4096, // carrier extension / burst minimum
		OverheadBits:       304,
	}
	// Ethernet10G is a 10 GbE datacenter-style segment.
	Ethernet10G = Profile{
		Name:               "10 Gb/s Ethernet",
		BitsPerSecond:      10e9,
		PropagationSeconds: 2e-6,
		ProcessingSeconds:  20e-6,
		MinFrameBits:       512,
		OverheadBits:       304,
	}
)

// Profiles returns the standard profiles.
func Profiles() []Profile { return []Profile{Ethernet100M, Ethernet1G, Ethernet10G} }

// transmission returns the serialization time of a payload of the given
// size, respecting the minimum frame size.
func (p Profile) transmission(payloadBits float64) float64 {
	bits := payloadBits + p.OverheadBits
	if bits < p.MinFrameBits {
		bits = p.MinFrameBits
	}
	return bits / p.BitsPerSecond
}

// D returns the classic round duration for b-bit proposals: the upper bound
// on data-message delivery plus processing.
func (p Profile) D(b int) float64 {
	return p.PropagationSeconds + p.transmission(float64(b)) + p.ProcessingSeconds
}

// Delta returns δ: the extra round time of the extended model, one more
// minimum-size frame serialized back-to-back behind the data frame.
func (p Profile) Delta() float64 {
	return p.transmission(1)
}

// DataLatency returns the transfer latency of a b-bit data message:
// propagation plus serialization, without the per-round processing budget.
// It is what a continuous-time engine charges a data message on this
// profile; the slack D(b) - DataLatency(b) = ProcessingSeconds is the
// processing headroom the synchrony bound leaves the receiver.
func (p Profile) DataLatency(b int) float64 {
	return p.PropagationSeconds + p.transmission(float64(b))
}

// CtrlLatency returns the transfer latency of a control message pipelined
// behind a b-bit data message on the same channel: the data latency plus one
// extra minimum-frame serialization time (δ). Within the extended model's
// D + δ bound by construction.
func (p Profile) CtrlLatency(b int) float64 {
	return p.DataLatency(b) + p.Delta()
}

// Ratio returns δ/D for b-bit proposals.
func (p Profile) Ratio(b int) float64 { return p.Delta() / p.D(b) }

// ExtendedWinsUpTo returns the largest f for which the extended model beats
// the classic model on this profile (δ/D < 1/(f+1) ⇒ f < D/δ - 1). A
// negative return means it never wins.
func (p Profile) ExtendedWinsUpTo(b int) int {
	r := p.Ratio(b)
	if r <= 0 {
		return 1 << 30
	}
	f := int(1 / r) // largest f with f+1 <= 1/r ... adjusted below
	for float64(f+1)*r >= 1 && f > -1 {
		f--
	}
	return f
}

// String renders the profile with its derived parameters for 64-bit values.
func (p Profile) String() string {
	return fmt.Sprintf("%s: D=%.1fµs δ=%.2fµs δ/D=%.4f",
		p.Name, p.D(64)*1e6, p.Delta()*1e6, p.Ratio(64))
}
