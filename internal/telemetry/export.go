package telemetry

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
)

// fmtFloat renders a float in the shortest form that round-trips, the same
// canonical formatting encoding/json uses — so exports are byte-identical
// across runs and survive JSON round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ChromeTrace exports the spans as a Chrome trace_event JSON array that
// loads in Perfetto and chrome://tracing. Each span becomes one complete
// ("ph":"X") event; tracks become threads, named by metadata events.
// Simulated time maps to microseconds (1 time unit = 1s). Spans are emitted
// sorted by (track, start, end, kind, id), so ts is monotone within each
// track and the byte output is deterministic.
func (r *Recorder) ChromeTrace() []byte {
	if r == nil {
		return []byte("[]")
	}
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			// Longer span first so the enclosing interval opens before its
			// children in the track (Perfetto nests by containment).
			return a.End > b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})

	var b bytes.Buffer
	b.WriteByte('[')
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(s)
	}
	// Thread-name metadata for every track that has spans.
	var used [numTracks]bool
	for _, s := range spans {
		if s.Track >= 0 && s.Track < numTracks {
			used[s.Track] = true
		}
	}
	for t := Track(0); t < numTracks; t++ {
		if !used[t] {
			continue
		}
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%q}}`, t, t.String()))
	}
	for _, s := range spans {
		name := s.Kind.String()
		if s.Kind != SpanRun {
			name = fmt.Sprintf("%s %d", name, s.ID)
		}
		emit(fmt.Sprintf(`{"name":%q,"cat":%q,"ph":"X","ts":%s,"dur":%s,"pid":0,"tid":%d,"args":{"count":%d}}`,
			name, s.Kind.String(), fmtFloat(s.Start*1e6), fmtFloat((s.End-s.Start)*1e6), s.Track, s.Count))
	}
	b.WriteByte(']')
	return b.Bytes()
}

// MetricsJSON exports the series and the latency histogram as deterministic
// JSON: series in SeriesID declaration order (empty series omitted), samples
// in recording order, histogram buckets in bound order (zero buckets
// omitted). Two runs of one configuration produce byte-identical output.
func (r *Recorder) MetricsJSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"series":[`)
	if r != nil {
		firstSeries := true
		for id := SeriesID(0); id < NumSeries; id++ {
			samples := r.samples[id]
			if len(samples) == 0 {
				continue
			}
			if !firstSeries {
				b.WriteByte(',')
			}
			firstSeries = false
			fmt.Fprintf(&b, `{"name":%q,"samples":[`, id.String())
			for i, s := range samples {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "[%s,%s]", fmtFloat(s.T), fmtFloat(s.V))
			}
			b.WriteString("]}")
		}
	}
	b.WriteByte(']')
	if r != nil && r.histN > 0 {
		fmt.Fprintf(&b, `,"latency":{"count":%d,"max":%s,"buckets":[`, r.histN, fmtFloat(r.histMax))
		first := true
		for i := 0; i < histBuckets; i++ {
			if r.hist[i] == 0 {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			le := "\"+Inf\""
			if i < histBuckets-1 {
				le = fmtFloat(histUpper(i))
			}
			fmt.Fprintf(&b, `{"le":%s,"count":%d}`, le, r.hist[i])
		}
		b.WriteString("]}")
	}
	b.WriteByte('}')
	return b.Bytes()
}

// SlotTimelineJSON exports the service slot spans as a per-slot timeline:
// one record per committed slot with its launch time, commit time, in-flight
// latency, batch size, instance rounds and cumulative throughput. Slots are
// emitted in commit order (the order the service recorded them), and floats
// use the canonical formatting, so the output is byte-identical across runs.
// Recorders without slot spans (single consensus runs) export an empty list.
func (r *Recorder) SlotTimelineJSON() []byte {
	var b bytes.Buffer
	b.WriteString(`{"slots":[`)
	if r != nil {
		rounds := r.samples[SeriesSlotRounds]
		thru := r.samples[SeriesThroughput]
		i := 0
		for _, s := range r.spans {
			if s.Kind != SpanSlot {
				continue
			}
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, `{"slot":%d,"start":%s,"commit":%s,"latency":%s,"batch":%d`,
				s.ID, fmtFloat(s.Start), fmtFloat(s.End), fmtFloat(s.End-s.Start), s.Count)
			// The slot series are recorded in lockstep with the slot spans,
			// one sample per slot, so index i pairs them.
			if i < len(rounds) {
				fmt.Fprintf(&b, `,"rounds":%s`, fmtFloat(rounds[i].V))
			}
			if i < len(thru) {
				fmt.Fprintf(&b, `,"throughput":%s`, fmtFloat(thru[i].V))
			}
			b.WriteByte('}')
			i++
		}
	}
	b.WriteString(`]}`)
	return b.Bytes()
}

// HistogramTable renders the latency histogram as an aligned text table: one
// row per non-empty bucket with its upper bound, count and cumulative share.
// Empty when nothing was observed.
func (r *Recorder) HistogramTable() string {
	if r == nil || r.histN == 0 {
		return ""
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "%-12s %-10s %s\n", "latency <=", "count", "cumulative")
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		if r.hist[i] == 0 {
			continue
		}
		cum += r.hist[i]
		le := "+Inf"
		if i < histBuckets-1 {
			le = fmtFloat(histUpper(i))
		}
		fmt.Fprintf(&b, "%-12s %-10d %.1f%%\n", le, r.hist[i], 100*float64(cum)/float64(r.histN))
	}
	fmt.Fprintf(&b, "observations %d, max %s\n", r.histN, fmtFloat(r.histMax))
	return b.String()
}

// Timeline renders the spans as a human-readable text timeline, one span per
// line, in the same deterministic order the Chrome export uses.
func (r *Recorder) Timeline() string {
	if r == nil || len(r.spans) == 0 {
		return ""
	}
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End > b.End
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
	var b bytes.Buffer
	for _, s := range spans {
		fmt.Fprintf(&b, "%-8s [%12s, %12s] %s %d",
			s.Track.String(), fmtFloat(s.Start), fmtFloat(s.End), s.Kind.String(), s.ID)
		if s.Count != 0 {
			fmt.Fprintf(&b, " (count=%d)", s.Count)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
