package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// fill records a representative mix of spans, samples and observations.
func fill(r *Recorder) {
	r.Span(SpanRun, TrackEngine, 0, 3, 0, 3)
	r.Span(SpanRound, TrackEngine, 1, 0, 0, 1)
	r.Span(SpanRound, TrackEngine, 2, 0, 1, 2)
	r.Span(SpanBatch, TrackDES, 0, 4, 0.5, 1.5)
	r.Span(SpanSlot, TrackService, 1, 2, 0.1, 1.2)
	r.Sample(SeriesDataMsgs, 1, 6)
	r.Sample(SeriesDataMsgs, 2, 4)
	r.Sample(SeriesHeapSize, 1.5, 8)
	r.Sample(SeriesSlotRounds, 1.2, 1)
	r.Sample(SeriesThroughput, 1.2, 2/1.2)
	r.Observe(1.1)
	r.Observe(0.25)
	r.Observe(1e9) // overflow bucket
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil Recorder reports enabled")
	}
	// Every method must be a no-op, not a panic.
	r.Span(SpanRun, TrackEngine, 0, 0, 0, 1)
	r.Sample(SeriesDataMsgs, 1, 1)
	r.Observe(1)
	r.Reset()
	if got := r.Spans(); got != nil {
		t.Errorf("nil Spans() = %v, want nil", got)
	}
	if got := r.Samples(SeriesDataMsgs); got != nil {
		t.Errorf("nil Samples() = %v, want nil", got)
	}
	if got := r.HistCount(); got != 0 {
		t.Errorf("nil HistCount() = %d, want 0", got)
	}
	if got := string(r.ChromeTrace()); got != "[]" {
		t.Errorf("nil ChromeTrace() = %q, want []", got)
	}
	if got := string(r.MetricsJSON()); got != `{"series":[]}` {
		t.Errorf("nil MetricsJSON() = %q", got)
	}
	if got := string(r.SlotTimelineJSON()); got != `{"slots":[]}` {
		t.Errorf("nil SlotTimelineJSON() = %q", got)
	}
	if got := r.HistogramTable(); got != "" {
		t.Errorf("nil HistogramTable() = %q, want empty", got)
	}
	if got := r.Timeline(); got != "" {
		t.Errorf("nil Timeline() = %q, want empty", got)
	}
}

func TestRecorderCollects(t *testing.T) {
	r := New()
	if !r.Enabled() {
		t.Fatal("fresh Recorder reports disabled")
	}
	fill(r)
	if got := len(r.Spans()); got != 5 {
		t.Errorf("got %d spans, want 5", got)
	}
	if got := len(r.Samples(SeriesDataMsgs)); got != 2 {
		t.Errorf("got %d data-msgs samples, want 2", got)
	}
	if got := r.HistCount(); got != 3 {
		t.Errorf("HistCount = %d, want 3", got)
	}
	// Out-of-range series neither panic nor record.
	r.Sample(NumSeries, 1, 1)
	if got := r.Samples(NumSeries); got != nil {
		t.Errorf("out-of-range Samples() = %v, want nil", got)
	}
}

func TestRecorderReset(t *testing.T) {
	r := New()
	fill(r)
	r.Reset()
	if got := len(r.Spans()); got != 0 {
		t.Errorf("spans after Reset = %d, want 0", got)
	}
	for id := SeriesID(0); id < NumSeries; id++ {
		if got := len(r.Samples(id)); got != 0 {
			t.Errorf("series %s after Reset has %d samples, want 0", id, got)
		}
	}
	if got := r.HistCount(); got != 0 {
		t.Errorf("HistCount after Reset = %d, want 0", got)
	}
	if got := string(r.MetricsJSON()); got != `{"series":[]}` {
		t.Errorf("MetricsJSON after Reset = %q", got)
	}
	// Refilling after Reset reproduces the original export byte-for-byte.
	fresh := New()
	fill(fresh)
	fill(r)
	if !bytes.Equal(r.MetricsJSON(), fresh.MetricsJSON()) {
		t.Error("refilled Recorder exports different metrics JSON than a fresh one")
	}
	if !bytes.Equal(r.ChromeTrace(), fresh.ChromeTrace()) {
		t.Error("refilled Recorder exports a different Chrome trace than a fresh one")
	}
}

func TestHistogramBuckets(t *testing.T) {
	if histUpper(10) != 1 {
		t.Errorf("histUpper(10) = %g, want 1 (2^0)", histUpper(10))
	}
	if histUpper(0) != math.Pow(2, -10) {
		t.Errorf("histUpper(0) = %g, want 2^-10", histUpper(0))
	}
	if !math.IsInf(histUpper(histBuckets-1), 1) {
		t.Errorf("last bucket bound = %g, want +Inf", histUpper(histBuckets-1))
	}
	r := New()
	r.Observe(0.5)  // (0.25, 0.5] -> bucket 9
	r.Observe(1)    // (0.5, 1]    -> bucket 10
	r.Observe(1.5)  // (1, 2]      -> bucket 11
	r.Observe(1e30) // overflow   -> last bucket
	for i, want := range map[int]int64{9: 1, 10: 1, 11: 1, histBuckets - 1: 1} {
		if r.hist[i] != want {
			t.Errorf("bucket %d = %d, want %d", i, r.hist[i], want)
		}
	}
	if r.histMax != 1e30 {
		t.Errorf("histMax = %g, want 1e30", r.histMax)
	}
}

func TestMetricsJSONShape(t *testing.T) {
	r := New()
	fill(r)
	var doc struct {
		Series []struct {
			Name    string       `json:"name"`
			Samples [][2]float64 `json:"samples"`
		} `json:"series"`
		Latency *struct {
			Count   int64   `json:"count"`
			Max     float64 `json:"max"`
			Buckets []struct {
				LE    any   `json:"le"`
				Count int64 `json:"count"`
			} `json:"buckets"`
		} `json:"latency"`
	}
	if err := json.Unmarshal(r.MetricsJSON(), &doc); err != nil {
		t.Fatalf("MetricsJSON is not valid JSON: %v\n%s", err, r.MetricsJSON())
	}
	// Series appear in SeriesID declaration order, empty series omitted.
	want := []string{"data-msgs", "des-heap", "slot-rounds", "throughput"}
	if len(doc.Series) != len(want) {
		t.Fatalf("got %d series, want %d: %s", len(doc.Series), len(want), r.MetricsJSON())
	}
	for i, name := range want {
		if doc.Series[i].Name != name {
			t.Errorf("series[%d] = %q, want %q", i, doc.Series[i].Name, name)
		}
	}
	if doc.Series[0].Samples[0] != [2]float64{1, 6} {
		t.Errorf("data-msgs sample 0 = %v, want [1,6]", doc.Series[0].Samples[0])
	}
	if doc.Latency == nil || doc.Latency.Count != 3 {
		t.Fatalf("latency histogram missing or wrong count: %s", r.MetricsJSON())
	}
	var n int64
	for _, b := range doc.Latency.Buckets {
		n += b.Count
	}
	if n != doc.Latency.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, doc.Latency.Count)
	}
}

func TestSlotTimelineJSON(t *testing.T) {
	r := New()
	fill(r)
	var doc struct {
		Slots []struct {
			Slot       int     `json:"slot"`
			Start      float64 `json:"start"`
			Commit     float64 `json:"commit"`
			Latency    float64 `json:"latency"`
			Batch      int     `json:"batch"`
			Rounds     float64 `json:"rounds"`
			Throughput float64 `json:"throughput"`
		} `json:"slots"`
	}
	if err := json.Unmarshal(r.SlotTimelineJSON(), &doc); err != nil {
		t.Fatalf("SlotTimelineJSON is not valid JSON: %v\n%s", err, r.SlotTimelineJSON())
	}
	if len(doc.Slots) != 1 {
		t.Fatalf("got %d slots, want 1", len(doc.Slots))
	}
	s := doc.Slots[0]
	if s.Slot != 1 || s.Batch != 2 || s.Rounds != 1 {
		t.Errorf("slot record = %+v", s)
	}
	if math.Abs(s.Latency-1.1) > 1e-12 {
		t.Errorf("latency = %g, want 1.1", s.Latency)
	}
}

func TestChromeTraceShape(t *testing.T) {
	r := New()
	fill(r)
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(r.ChromeTrace(), &events); err != nil {
		t.Fatalf("ChromeTrace is not valid JSON: %v\n%s", err, r.ChromeTrace())
	}
	lastTS := map[int]float64{}
	var meta, complete int
	for _, e := range events {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 0 {
				t.Errorf("event %q has negative duration %g", e.Name, e.Dur)
			}
			if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
				t.Errorf("event %q ts %g before previous ts %g on tid %d", e.Name, e.TS, prev, e.TID)
			}
			lastTS[e.TID] = e.TS
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if complete != 5 {
		t.Errorf("got %d complete events, want 5", complete)
	}
	if meta != 3 { // engine, des, service tracks all used
		t.Errorf("got %d thread_name metadata events, want 3", meta)
	}
}

func TestExportDeterminism(t *testing.T) {
	a, b := New(), New()
	fill(a)
	fill(b)
	if !bytes.Equal(a.MetricsJSON(), b.MetricsJSON()) {
		t.Error("two identical recorders export different metrics JSON")
	}
	if !bytes.Equal(a.ChromeTrace(), b.ChromeTrace()) {
		t.Error("two identical recorders export different Chrome traces")
	}
	if !bytes.Equal(a.SlotTimelineJSON(), b.SlotTimelineJSON()) {
		t.Error("two identical recorders export different slot timelines")
	}
	if a.Timeline() != b.Timeline() {
		t.Error("two identical recorders render different timelines")
	}
}

func TestEnumStrings(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if k.String() == "span(?)" {
			t.Errorf("SpanKind %d has no name", k)
		}
	}
	if SpanKind(200).String() != "span(?)" {
		t.Error("out-of-range SpanKind not flagged")
	}
	for tr := Track(0); tr < numTracks; tr++ {
		if tr.String() == "track(?)" {
			t.Errorf("Track %d has no name", tr)
		}
	}
	if Track(-1).String() != "track(?)" {
		t.Error("negative Track not flagged")
	}
	for s := SeriesID(0); s < NumSeries; s++ {
		if s.String() == "series(?)" {
			t.Errorf("SeriesID %d has no name", s)
		}
	}
	if NumSeries.String() != "series(?)" {
		t.Error("out-of-range SeriesID not flagged")
	}
}

func TestProfile(t *testing.T) {
	var nilProf *Profile
	if nilProf.Enabled() {
		t.Fatal("nil Profile reports enabled")
	}
	nilProf.Add(PhaseRun, time.Second) // must not panic
	if nilProf.Get(PhaseRun) != 0 {
		t.Error("nil Profile accumulated time")
	}
	if nilProf.String() != "" {
		t.Errorf("nil Profile String() = %q, want empty", nilProf.String())
	}

	p := NewProfile()
	if !p.Enabled() {
		t.Fatal("fresh Profile reports disabled")
	}
	p.Add(PhaseRun, 2*time.Millisecond)
	p.Add(PhaseRun, 3*time.Millisecond)
	p.Add(PhaseQueueWait, -time.Millisecond)
	p.Add(PhaseQueueWait, 2*time.Millisecond)
	if got := p.Get(PhaseRun); got != 5*time.Millisecond {
		t.Errorf("PhaseRun = %v, want 5ms", got)
	}
	if got := p.Get(PhaseQueueWait); got != time.Millisecond {
		t.Errorf("PhaseQueueWait = %v, want 1ms (negative adds must net out)", got)
	}
	if got := p.Get(NumPhases); got != 0 {
		t.Errorf("out-of-range Get = %v, want 0", got)
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if ph.String() == "phase(?)" {
			t.Errorf("Phase %d has no name", ph)
		}
	}
}

func TestRecorderMethodsAllocFreeWhenNil(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Span(SpanRound, TrackEngine, 1, 0, 0, 1)
		r.Sample(SeriesDataMsgs, 1, 6)
		r.Observe(1.1)
		if r.Enabled() {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Errorf("nil Recorder methods allocate %g/op, want 0", allocs)
	}
}
