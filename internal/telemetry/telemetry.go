// Package telemetry records spans and metric timelines over simulated time.
//
// A Recorder collects three kinds of telemetry from a running engine:
//
//   - spans: intervals of simulated time (a whole run, one round, one service
//     slot, one DES event batch), exportable as a Chrome trace_event JSON
//     that loads in Perfetto / chrome://tracing, and as a text timeline;
//   - series: per-round / per-slot time-series samples (messages by kind,
//     omissions, DES heap depth, pool hit rate, service throughput, ...),
//     keyed by a fixed SeriesID enum so the export order is deterministic;
//   - a commit-latency histogram with fixed power-of-two buckets (Serve).
//
// Everything a Recorder stores is a pure function of the simulated execution
// — sample timestamps are simulated time, rates are computed over simulated
// time — so two runs of one configuration produce byte-identical exports,
// extending the determinism law to telemetry. Wall-clock measurements live
// in the separate Profile type and are never mixed into Recorder exports.
//
// A nil *Recorder is the disabled state: every method is nil-receiver safe
// and takes only value parameters, so the disabled path performs no
// allocation and no locking — engines call it unconditionally on their hot
// paths, and the E-series exact-allocs gate proves the cost is zero.
package telemetry

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds.
const (
	// SpanRun covers one whole engine run.
	SpanRun SpanKind = iota
	// SpanRound covers one protocol round.
	SpanRound
	// SpanSlot covers one replicated-log slot (launch to commit).
	SpanSlot
	// SpanBatch covers one DES event batch (all events at one timestamp).
	SpanBatch
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{"run", "round", "slot", "batch"}

// String returns the lower-case name of the kind.
func (k SpanKind) String() string {
	if k < numSpanKinds {
		return spanKindNames[k]
	}
	return "span(?)"
}

// Track identifies the horizontal lane a span or sample belongs to. Tracks
// become threads in the Chrome trace export, so spans within one track must
// not interleave arbitrarily — each recording site owns its track.
type Track int32

// Tracks.
const (
	// TrackEngine carries run and round spans of the consensus engine.
	TrackEngine Track = iota
	// TrackDES carries event-batch spans and heap/pool samples of the
	// discrete-event core under the timed engine.
	TrackDES
	// TrackService carries slot spans and throughput samples of the
	// replicated-log service.
	TrackService
	numTracks
)

var trackNames = [numTracks]string{"engine", "des", "service"}

// String returns the lower-case name of the track.
func (t Track) String() string {
	if t >= 0 && t < numTracks {
		return trackNames[t]
	}
	return "track(?)"
}

// Span is one interval of simulated time.
type Span struct {
	// Kind classifies the span.
	Kind SpanKind
	// Track is the lane the span renders on.
	Track Track
	// ID is the ordinal within the kind: round number, slot index, batch
	// index. Zero for run spans.
	ID int32
	// Count is a kind-specific magnitude: rounds in a run, events in a
	// batch, commands in a slot. Zero when not meaningful.
	Count int32
	// Start and End are the simulated-time bounds (End >= Start; a round
	// engine uses one time unit per round).
	Start, End float64
}

// SeriesID keys a metric time series. The enum is fixed so exports walk the
// series in declaration order — no map iteration anywhere near an export.
type SeriesID uint8

// Series.
const (
	// SeriesDataMsgs is data messages transmitted per round.
	SeriesDataMsgs SeriesID = iota
	// SeriesCtrlMsgs is control messages transmitted per round.
	SeriesCtrlMsgs
	// SeriesDelivered is messages delivered to inboxes per round (the
	// engine-side view of inbox depth).
	SeriesDelivered
	// SeriesDropped is crash-suppressed messages per round.
	SeriesDropped
	// SeriesOmitted is send- plus receive-omitted messages per round.
	SeriesOmitted
	// SeriesLate is timing-faulted (late) messages per round.
	SeriesLate
	// SeriesHeapSize is the DES pending-event count, sampled at each
	// time-advance boundary.
	SeriesHeapSize
	// SeriesPoolHitRate is the DES event-pool hit rate (hits / allocations)
	// sampled at each time-advance boundary.
	SeriesPoolHitRate
	// SeriesRoundsPerSec is protocol rounds per simulated second, sampled
	// once at the end of a run.
	SeriesRoundsPerSec
	// SeriesSlotRounds is consensus rounds consumed per service slot.
	SeriesSlotRounds
	// SeriesSlotBatch is commands batched per service slot.
	SeriesSlotBatch
	// SeriesThroughput is cumulative committed commands per simulated
	// second, sampled at each slot commit.
	SeriesThroughput
	// NumSeries bounds the enum.
	NumSeries
)

var seriesNames = [NumSeries]string{
	"data-msgs", "ctrl-msgs", "delivered", "dropped", "omitted", "late",
	"des-heap", "des-pool-hit-rate", "rounds-per-sec",
	"slot-rounds", "slot-batch", "throughput",
}

// String returns the export name of the series.
func (s SeriesID) String() string {
	if s < NumSeries {
		return seriesNames[s]
	}
	return "series(?)"
}

// Sample is one (simulated time, value) point of a series.
type Sample struct {
	T, V float64
}

// histBuckets is the number of commit-latency histogram buckets: bucket i
// counts observations in (2^(i-11), 2^(i-10)] simulated-time units — bucket 0
// collects everything at or below 2^-10, the last bucket is the +Inf
// overflow. Fixed bounds keep two runs' histograms structurally identical.
const histBuckets = 32

// histUpper returns the inclusive upper bound of bucket i.
func histUpper(i int) float64 {
	if i >= histBuckets-1 {
		return inf()
	}
	// 2^(i-10): bucket 0 tops out at ~0.001, bucket 30 at 2^20.
	return pow2(i - 10)
}

// pow2 computes 2^e for small integer exponents without importing math.
func pow2(e int) float64 {
	v := 1.0
	for ; e > 0; e-- {
		v *= 2
	}
	for ; e < 0; e++ {
		v /= 2
	}
	return v
}

// inf returns +Inf without importing math.
func inf() float64 { return 1 / zero }

var zero = 0.0

// Recorder collects spans, series samples and the latency histogram of one
// run. It is not safe for concurrent use: one Recorder belongs to one run on
// one goroutine (the worker-pool determinism tests attach one recorder to
// exactly one job).
type Recorder struct {
	spans   []Span
	samples [NumSeries][]Sample
	hist    [histBuckets]int64
	histN   int64
	histMax float64
}

// New returns an enabled, empty Recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether telemetry is being recorded. A nil *Recorder
// reports false; engines use it to skip snapshotting state for deltas.
func (r *Recorder) Enabled() bool { return r != nil }

// Span records one simulated-time interval. No-op on a nil Recorder.
func (r *Recorder) Span(kind SpanKind, track Track, id, count int32, start, end float64) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, Span{Kind: kind, Track: track, ID: id, Count: count, Start: start, End: end})
}

// Sample records one (time, value) point of a series. No-op on a nil
// Recorder or an out-of-range series.
func (r *Recorder) Sample(s SeriesID, t, v float64) {
	if r == nil || s >= NumSeries {
		return
	}
	r.samples[s] = append(r.samples[s], Sample{T: t, V: v})
}

// Observe adds one commit-latency observation to the histogram. No-op on a
// nil Recorder.
func (r *Recorder) Observe(v float64) {
	if r == nil {
		return
	}
	i := 0
	for i < histBuckets-1 && v > histUpper(i) {
		i++
	}
	r.hist[i]++
	r.histN++
	if v > r.histMax {
		r.histMax = v
	}
}

// Reset empties the Recorder for reuse, keeping the allocated capacity.
// No-op on a nil Recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	for i := range r.samples {
		r.samples[i] = r.samples[i][:0]
	}
	r.hist = [histBuckets]int64{}
	r.histN = 0
	r.histMax = 0
}

// Spans returns the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Samples returns the recorded samples of one series in recording order.
func (r *Recorder) Samples(s SeriesID) []Sample {
	if r == nil || s >= NumSeries {
		return nil
	}
	return r.samples[s]
}

// HistCount returns the number of histogram observations.
func (r *Recorder) HistCount() int64 {
	if r == nil {
		return 0
	}
	return r.histN
}
