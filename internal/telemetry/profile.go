package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Phase classifies where wall-clock time goes inside the harness worker
// pool. Unlike Recorder data, phase timers measure the host machine, not the
// simulation: they are for finding the bottleneck of a sweep (are workers
// starved? is the audit expensive? is cross-checking dominating?), and are
// deliberately kept out of every deterministic export.
type Phase uint8

// Phases.
const (
	// PhaseQueueWait is worker time spent outside the job callback: waiting
	// on the work cursor plus pool bookkeeping.
	PhaseQueueWait Phase = iota
	// PhaseRun is time inside engine Run calls.
	PhaseRun
	// PhaseAudit is time inside the post-run law audits.
	PhaseAudit
	// PhaseCrossCheck is time spent re-running configs on other engines.
	PhaseCrossCheck
	// NumPhases bounds the enum.
	NumPhases
)

var phaseNames = [NumPhases]string{"queue-wait", "run", "audit", "cross-check"}

// String returns the phase's name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "phase(?)"
}

// Profile accumulates wall-clock time per phase. It is safe for concurrent
// use (workers add from many goroutines); a nil *Profile discards all
// measurements, so the timers can be threaded unconditionally.
type Profile struct {
	ns [NumPhases]atomic.Int64
}

// NewProfile returns an enabled, zeroed Profile.
func NewProfile() *Profile { return &Profile{} }

// Enabled reports whether measurements are being accumulated.
func (p *Profile) Enabled() bool { return p != nil }

// Add accumulates d into the phase. No-op on a nil Profile.
func (p *Profile) Add(phase Phase, d time.Duration) {
	if p == nil || phase >= NumPhases {
		return
	}
	p.ns[phase].Add(int64(d))
}

// Get returns the accumulated time of one phase.
func (p *Profile) Get(phase Phase) time.Duration {
	if p == nil || phase >= NumPhases {
		return 0
	}
	return time.Duration(p.ns[phase].Load())
}

// String renders all phases on one line.
func (p *Profile) String() string {
	if p == nil {
		return ""
	}
	out := ""
	for ph := Phase(0); ph < NumPhases; ph++ {
		if ph > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%s", ph.String(), p.Get(ph).Round(time.Microsecond))
	}
	return out
}
