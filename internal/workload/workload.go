// Package workload generates client traffic for the replicated-log service
// (internal/smr, agree.Serve): command arrival times on the simulated clock,
// drawn from configurable rate schedules.
//
// Two loop disciplines are supported. An open-loop source (Open) emits
// arrivals independently of the service's progress — the generator of load
// tests, where a saturated server builds queueing delay. A closed-loop
// source (Closed) models a fixed client population: each client submits one
// command, waits for its commit, thinks, and submits the next — the service
// itself drives the feedback, this package only holds the parameters and
// samples think times.
//
// Every sample is drawn from a seeded SplitMix64 stream, so a run replays
// bit-identically for equal seeds: same schedule, same seed, same arrival
// sequence, on every platform. Schedules are consumed strictly left to
// right by a single goroutine (the service loop), so a sequential generator
// — unlike the timed engine's pure per-message latency hashes — is safe
// here.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// RNG is a deterministic SplitMix64 random stream.
type RNG struct{ s uint64 }

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{s: uint64(seed)} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	x := r.s
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Exp returns an exponential sample with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -mean * math.Log(1-r.Float64())
}

// Schedule is an arrival process: Gap samples the inter-arrival time to the
// next command, given the absolute simulated time t of the previous arrival.
// Implementations draw randomness exclusively from the supplied stream.
type Schedule interface {
	Gap(t float64, rng *RNG) float64
	// Validate rejects schedules that cannot generate arrivals.
	Validate() error
	fmt.Stringer
}

// Fixed is a deterministic constant-rate arrival process: one command every
// 1/Rate time units, jitter-free.
type Fixed struct {
	// Rate is the arrival rate in commands per time unit.
	Rate float64
}

// Gap implements Schedule.
func (s Fixed) Gap(float64, *RNG) float64 { return 1 / s.Rate }

// Validate implements Schedule.
func (s Fixed) Validate() error {
	if !(s.Rate > 0) {
		return fmt.Errorf("workload: fixed arrival rate %g must be positive", s.Rate)
	}
	return nil
}

// String implements Schedule.
func (s Fixed) String() string { return fmt.Sprintf("fixed(rate=%g)", s.Rate) }

// Poisson is a memoryless arrival process: exponential inter-arrival times
// with mean 1/Rate.
type Poisson struct {
	// Rate is the mean arrival rate in commands per time unit.
	Rate float64
}

// Gap implements Schedule.
func (s Poisson) Gap(_ float64, rng *RNG) float64 { return rng.Exp(1 / s.Rate) }

// Validate implements Schedule.
func (s Poisson) Validate() error {
	if !(s.Rate > 0) {
		return fmt.Errorf("workload: poisson arrival rate %g must be positive", s.Rate)
	}
	return nil
}

// String implements Schedule.
func (s Poisson) String() string { return fmt.Sprintf("poisson(rate=%g)", s.Rate) }

// Phase is one segment of a cyclic multi-period schedule.
type Phase struct {
	// Dur is the phase length in time units.
	Dur float64
	// Rate is the phase's arrival rate.
	Rate float64
	// Poisson selects exponential inter-arrivals within the phase;
	// false means fixed spacing.
	Poisson bool
}

// Cycle is a bursty / multi-period schedule: it cycles through its phases
// forever, sampling each gap from the phase the current time falls in
// (piecewise-stationary sampling — the gap is drawn entirely from the phase
// that contains the previous arrival, which is the standard simulator
// approximation for rates that change slowly against the gap length).
type Cycle struct {
	Phases []Phase
}

// Bursty is the classic two-period burst pattern: baseline rate for onDur
// out of every period, burst rate for the rest, Poisson within each phase.
func Bursty(baseRate, burstRate, baseDur, burstDur float64) Cycle {
	return Cycle{Phases: []Phase{
		{Dur: baseDur, Rate: baseRate, Poisson: true},
		{Dur: burstDur, Rate: burstRate, Poisson: true},
	}}
}

// phaseAt returns the phase containing absolute time t.
func (s Cycle) phaseAt(t float64) Phase {
	total := 0.0
	for _, p := range s.Phases {
		total += p.Dur
	}
	t = math.Mod(t, total)
	for _, p := range s.Phases {
		if t < p.Dur {
			return p
		}
		t -= p.Dur
	}
	return s.Phases[len(s.Phases)-1]
}

// Gap implements Schedule.
func (s Cycle) Gap(t float64, rng *RNG) float64 {
	p := s.phaseAt(t)
	if p.Poisson {
		return rng.Exp(1 / p.Rate)
	}
	return 1 / p.Rate
}

// Validate implements Schedule.
func (s Cycle) Validate() error {
	if len(s.Phases) == 0 {
		return errors.New("workload: cycle schedule needs at least one phase")
	}
	for i, p := range s.Phases {
		if !(p.Dur > 0) {
			return fmt.Errorf("workload: phase %d duration %g must be positive", i, p.Dur)
		}
		if !(p.Rate > 0) {
			return fmt.Errorf("workload: phase %d rate %g must be positive", i, p.Rate)
		}
	}
	return nil
}

// String implements Schedule.
func (s Cycle) String() string {
	out := "cycle("
	for i, p := range s.Phases {
		if i > 0 {
			out += ","
		}
		kind := "fixed"
		if p.Poisson {
			kind = "poisson"
		}
		out += fmt.Sprintf("%gx%s@%g", p.Dur, kind, p.Rate)
	}
	return out + ")"
}

// Open is an open-loop arrival source: a stream of nondecreasing absolute
// arrival times drawn from a schedule, independent of service progress.
type Open struct {
	sched Schedule
	rng   *RNG
	next  float64
}

// NewOpen returns an open-loop source over the schedule, seeded. The first
// arrival happens one gap after time zero.
func NewOpen(sched Schedule, seed int64) (*Open, error) {
	if sched == nil {
		return nil, errors.New("workload: nil schedule")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	o := &Open{sched: sched, rng: NewRNG(seed)}
	o.next = o.sched.Gap(0, o.rng)
	return o, nil
}

// Peek returns the next arrival time without consuming it.
func (o *Open) Peek() float64 { return o.next }

// Pop consumes and returns the next arrival time.
func (o *Open) Pop() float64 {
	t := o.next
	o.next = t + o.sched.Gap(t, o.rng)
	return t
}

// Closed parameterizes a closed-loop client population: Clients submit one
// command each at time zero; after a client's command commits it thinks for
// a sampled time and submits the next. The service loop owns the feedback;
// ThinkGap samples one think time.
type Closed struct {
	// Clients is the population size.
	Clients int
	// Think is the mean think time between a commit and the client's next
	// command; zero means immediate resubmission.
	Think float64
	// Poisson selects exponential think times; false means fixed.
	Poisson bool

	rng *RNG
}

// NewClosed returns a closed-loop population with a seeded think-time
// stream.
func NewClosed(clients int, think float64, poisson bool, seed int64) (*Closed, error) {
	if clients < 1 {
		return nil, fmt.Errorf("workload: closed loop needs at least one client, got %d", clients)
	}
	if think < 0 {
		return nil, fmt.Errorf("workload: think time %g is negative", think)
	}
	return &Closed{Clients: clients, Think: think, Poisson: poisson, rng: NewRNG(seed)}, nil
}

// ThinkGap samples the think time before a client's next command.
func (c *Closed) ThinkGap() float64 {
	if c.Think == 0 {
		return 0
	}
	if c.Poisson {
		return c.rng.Exp(c.Think)
	}
	return c.Think
}
