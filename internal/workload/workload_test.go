package workload_test

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// drain pops n arrivals from an open source.
func drain(t *testing.T, sched workload.Schedule, seed int64, n int) []float64 {
	t.Helper()
	o, err := workload.NewOpen(sched, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = o.Pop()
	}
	return out
}

func TestOpenDeterministicPerSeed(t *testing.T) {
	scheds := []workload.Schedule{
		workload.Fixed{Rate: 100},
		workload.Poisson{Rate: 100},
		workload.Bursty(50, 500, 1, 0.25),
	}
	for _, s := range scheds {
		a := drain(t, s, 42, 5000)
		b := drain(t, s, 42, 5000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: arrival %d differs across identical seeds: %g vs %g", s, i, a[i], b[i])
			}
		}
		c := drain(t, s, 43, 100)
		if s.String() != (workload.Fixed{Rate: 100}).String() && a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
			t.Errorf("%v: different seeds produced identical arrivals", s)
		}
	}
}

func TestArrivalsNondecreasingAndFinite(t *testing.T) {
	for _, s := range []workload.Schedule{
		workload.Fixed{Rate: 7},
		workload.Poisson{Rate: 7},
		workload.Bursty(2, 40, 3, 1),
	} {
		prev := 0.0
		for i, a := range drain(t, s, 1, 10000) {
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Fatalf("%v: arrival %d is %g", s, i, a)
			}
			if a < prev {
				t.Fatalf("%v: arrival %d at %g precedes %g", s, i, a, prev)
			}
			prev = a
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	const rate, n = 250.0, 100000
	arr := drain(t, workload.Poisson{Rate: rate}, 7, n)
	got := float64(n) / arr[n-1]
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("empirical rate %g, want %g within 5%%", got, rate)
	}
}

func TestFixedSpacing(t *testing.T) {
	arr := drain(t, workload.Fixed{Rate: 4}, 0, 10)
	for i, a := range arr {
		want := float64(i+1) * 0.25
		if math.Abs(a-want) > 1e-12 {
			t.Errorf("arrival %d at %g, want %g", i, a, want)
		}
	}
}

func TestBurstyPhasesChangeRate(t *testing.T) {
	// 1 time unit at rate 10, then 1 at rate 1000, cycling. Count arrivals
	// in each phase of the first cycle.
	s := workload.Cycle{Phases: []workload.Phase{
		{Dur: 1, Rate: 10, Poisson: true},
		{Dur: 1, Rate: 1000, Poisson: true},
	}}
	o, err := workload.NewOpen(s, 11)
	if err != nil {
		t.Fatal(err)
	}
	base, burst := 0, 0
	for {
		a := o.Pop()
		if a >= 2 {
			break
		}
		if a < 1 {
			base++
		} else {
			burst++
		}
	}
	if base > 5*burst/100+30 || burst < 500 {
		t.Errorf("phase counts base=%d burst=%d do not reflect the 10 vs 1000 rates", base, burst)
	}
}

func TestScheduleValidation(t *testing.T) {
	bad := []workload.Schedule{
		workload.Fixed{Rate: 0},
		workload.Fixed{Rate: -3},
		workload.Poisson{Rate: 0},
		workload.Cycle{},
		workload.Cycle{Phases: []workload.Phase{{Dur: 0, Rate: 5}}},
		workload.Cycle{Phases: []workload.Phase{{Dur: 1, Rate: 0}}},
	}
	for _, s := range bad {
		if _, err := workload.NewOpen(s, 0); err == nil {
			t.Errorf("NewOpen accepted invalid schedule %v", s)
		}
	}
}

func TestClosedLoop(t *testing.T) {
	if _, err := workload.NewClosed(0, 1, false, 0); err == nil {
		t.Error("accepted zero clients")
	}
	if _, err := workload.NewClosed(4, -1, false, 0); err == nil {
		t.Error("accepted negative think time")
	}
	c, err := workload.NewClosed(4, 0.5, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if g := c.ThinkGap(); g != 0.5 {
			t.Fatalf("fixed think gap = %g, want 0.5", g)
		}
	}
	p1, err := workload.NewClosed(4, 0.5, true, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := workload.NewClosed(4, 0.5, true, 9)
	sum := 0.0
	for i := 0; i < 1000; i++ {
		g1, g2 := p1.ThinkGap(), p2.ThinkGap()
		if g1 != g2 {
			t.Fatalf("think gap %d differs across identical seeds", i)
		}
		sum += g1
	}
	if mean := sum / 1000; math.Abs(mean-0.5) > 0.1 {
		t.Errorf("poisson think mean %g, want ~0.5", mean)
	}
	z, err := workload.NewClosed(2, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := z.ThinkGap(); g != 0 {
		t.Errorf("zero think gap = %g", g)
	}
}
