package agree_test

import (
	"reflect"
	"testing"

	"repro/agree"
)

// TestExploreFaithful checks the public explorer on the faithful algorithm:
// the documented E5 space (n=4, t=2, 151 executions) with zero violations.
func TestExploreFaithful(t *testing.T) {
	rep, err := agree.Explore(agree.ExploreConfig{N: 4, T: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executions != 151 {
		t.Errorf("executions = %d, want 151", rep.Executions)
	}
	if len(rep.Counterexamples) != 0 {
		t.Errorf("unexpected violations: %v", rep.Counterexamples)
	}
	if rep.MaxDecideRound != 3 {
		t.Errorf("max decide round = %d, want 3 (= t+1)", rep.MaxDecideRound)
	}
}

// TestExploreParallelKnob checks that the Parallel knob produces the same
// report as the sequential search, on both the faithful system and the
// commit-as-data ablation (which has counterexamples).
func TestExploreParallelKnob(t *testing.T) {
	for _, cfg := range []agree.ExploreConfig{
		{N: 4, T: 2, MaxCounterexamples: 1 << 20},
		{N: 3, T: 1, CommitAsData: true, MaxCounterexamples: 1 << 20},
	} {
		seq, err := agree.Explore(cfg)
		if err != nil {
			t.Fatal(err)
		}
		par := cfg
		par.Parallel = true
		par.Workers = 4
		got, err := agree.Explore(par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallel report differs for %+v:\nsequential %+v\nparallel   %+v", cfg, seq, got)
		}
	}
}

// TestExploreAblationFindsViolation checks that the explorer exposes the
// commit-as-data agreement violation through the public API.
func TestExploreAblationFindsViolation(t *testing.T) {
	rep, err := agree.Explore(agree.ExploreConfig{N: 3, T: 1, CommitAsData: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatal("commit-as-data ablation produced no counterexample")
	}
	if rep.Counterexamples[0].Err == nil || len(rep.Counterexamples[0].Script) == 0 {
		t.Errorf("malformed counterexample: %+v", rep.Counterexamples[0])
	}
}
