package agree

import (
	"fmt"
	"strings"

	"repro/internal/des"
	"repro/internal/harness"
	"repro/internal/lan"
	"repro/internal/timed"
)

// LatencySpec configures the latency model of a continuous-time run
// (EngineTimed). The zero value selects the engine's default model (unit
// round, 10% control step, always within the synchrony bound), which makes
// an unconfigured timed run semantically identical to the round engines.
//
// A spec whose sampled latencies always respect the synchrony bound is
// semantically neutral: it changes Report.SimTime and nothing else, so such
// configurations remain eligible for cross-engine checking. Specs that can
// exceed the bound (an out-of-bound JitterLatency) inject timing faults —
// late messages mapped to receive omissions — and are skipped by CrossCheck,
// exactly like order-sensitive fault specs.
type LatencySpec struct {
	kind    string
	d       float64
	delta   float64
	floor   float64
	spread  float64
	seed    int64
	profile string
}

// FixedLatency is the worst-case synchronous network: every data message
// takes exactly d, every control message exactly d+delta. Measured
// completion times equal the analytic Section 2.2 costs, which experiment
// E3 exploits.
func FixedLatency(d, delta float64) LatencySpec {
	return LatencySpec{kind: "fixed", d: d, delta: delta}
}

// ProfileLatency derives D, δ and per-message latencies from a named LAN
// profile of internal/lan: "100m" (100 Mb/s Ethernet), "1g" (gigabit), or
// "10g" (10 GbE). Always within the synchrony bound — the slack is the
// profile's processing budget.
func ProfileLatency(name string) LatencySpec {
	return LatencySpec{kind: "profile", profile: name}
}

// JitterLatency adds seeded random jitter over a latency floor: data
// messages take floor + U[0, spread), control messages the same draw plus
// delta, deterministically per seed (the randomness is a pure per-message
// hash, so replays and cross-run comparisons see identical latencies).
// When floor+spread exceeds d, the tail of the distribution violates the
// synchrony bound: those messages are late, mapped to receive omissions
// (Report.Counters.Late), and the spec becomes ineligible for cross-engine
// checking.
func JitterLatency(seed int64, d, delta, floor, spread float64) LatencySpec {
	return LatencySpec{kind: "jitter", seed: seed, d: d, delta: delta, floor: floor, spread: spread}
}

// IsZero reports whether the spec is the default (engine-chosen) model.
func (l LatencySpec) IsZero() bool { return l.kind == "" }

// lanProfiles maps the public short names onto internal/lan profiles.
var lanProfiles = map[string]lan.Profile{
	"100m": lan.Ethernet100M,
	"1g":   lan.Ethernet1G,
	"10g":  lan.Ethernet10G,
}

// validate rejects specs that cannot define a round.
func (l LatencySpec) validate() error {
	switch l.kind {
	case "":
		return nil
	case "fixed":
		if l.d <= 0 {
			return fmt.Errorf("agree: latency D=%g must be positive", l.d)
		}
		if l.delta < 0 {
			return fmt.Errorf("agree: latency δ=%g is negative", l.delta)
		}
	case "profile":
		if _, ok := lanProfiles[strings.ToLower(l.profile)]; !ok {
			return fmt.Errorf("agree: unknown LAN profile %q (known: 100m, 1g, 10g)", l.profile)
		}
	case "jitter":
		if l.d <= 0 {
			return fmt.Errorf("agree: latency D=%g must be positive", l.d)
		}
		if l.delta < 0 {
			return fmt.Errorf("agree: latency δ=%g is negative", l.delta)
		}
		if l.floor < 0 {
			return fmt.Errorf("agree: latency floor %g is negative", l.floor)
		}
		if l.spread < 0 {
			return fmt.Errorf("agree: latency spread %g is negative", l.spread)
		}
	default:
		return fmt.Errorf("agree: unknown latency spec kind %q", l.kind)
	}
	return nil
}

// withinBound reports whether no sampled latency can exceed the synchrony
// bound, i.e. the spec is semantically neutral and cross-engine comparable.
func (l LatencySpec) withinBound() bool {
	if l.kind == "jitter" {
		return l.floor+l.spread <= l.d
	}
	return true
}

// model materializes the spec for the timed engine; bits is the proposal
// width used by profile-derived serialization (0 defaults to 64). The zero
// spec returns nil, selecting the engine's default model.
func (l LatencySpec) model(bits int) timed.LatencyModel {
	switch l.kind {
	case "fixed":
		return timed.Fixed{D: des.Time(l.d), Delta: des.Time(l.delta)}
	case "profile":
		return timed.Profile{P: lanProfiles[strings.ToLower(l.profile)], Bits: bits}
	case "jitter":
		return timed.Jitter{D: des.Time(l.d), Delta: des.Time(l.delta),
			Floor: des.Time(l.floor), Spread: des.Time(l.spread), Seed: l.seed}
	default:
		return nil
	}
}

// EngineInfo describes one registered engine for discovery (see
// Engines and agreerun -list-engines).
type EngineInfo struct {
	// Kind is the registry key, usable as Config.Engine.
	Kind EngineKind
	// Trace: the engine records execution transcripts (Config.Trace).
	Trace bool
	// Deterministic: identical configurations produce bit-identical reports.
	Deterministic bool
	// Reusable: the engine recycles buffers across runs (cheap sweeps).
	Reusable bool
	// Timed: the engine executes on a simulated wall clock, honors
	// Config.Latency and reports Report.SimTime.
	Timed bool
}

// Engines lists the registered engines in deterministic (sorted) order.
func Engines() []EngineInfo {
	kinds := harness.Kinds()
	out := make([]EngineInfo, 0, len(kinds))
	for _, k := range kinds {
		caps, _ := harness.Lookup(k)
		out = append(out, EngineInfo{
			Kind:          EngineKind(k),
			Trace:         caps.Trace,
			Deterministic: caps.Deterministic,
			Reusable:      caps.Reusable,
			Timed:         caps.Timed,
		})
	}
	return out
}

// LatencyFromFlags assembles a LatencySpec from the CLI latency knobs the
// command-line tools share (-lat-profile, -lat-d, -lat-delta, -lat-floor,
// -lat-spread, -lat-seed), with one precedence rule: a profile name wins,
// then jitter (when a spread is given), then fixed (when d is given); all
// zero selects the engine default. Conflicting combinations are errors so a
// mistyped invocation cannot silently half-apply.
func LatencyFromFlags(profile string, d, delta, floor, spread float64, seed int64) (LatencySpec, error) {
	switch {
	case profile != "":
		if d != 0 || delta != 0 || floor != 0 || spread != 0 {
			return LatencySpec{}, fmt.Errorf("agree: -lat-profile derives every parameter from the LAN profile; it cannot be combined with -lat-d/-lat-delta/-lat-floor/-lat-spread")
		}
		return ProfileLatency(profile), nil
	case spread != 0:
		if d == 0 {
			return LatencySpec{}, fmt.Errorf("agree: -lat-spread requires -lat-d (the synchrony bound)")
		}
		return JitterLatency(seed, d, delta, floor, spread), nil
	case d != 0:
		if floor != 0 {
			return LatencySpec{}, fmt.Errorf("agree: -lat-floor only applies to the jitter model; give -lat-spread as well")
		}
		return FixedLatency(d, delta), nil
	default:
		if delta != 0 || floor != 0 {
			return LatencySpec{}, fmt.Errorf("agree: -lat-delta/-lat-floor need a latency model; give -lat-d (and -lat-spread for jitter)")
		}
		return LatencySpec{}, nil
	}
}
