package agree_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/agree"
)

// mixedSweepBatch builds a batch spanning protocols, engines and fault
// styles whose reports are deterministic (order-insensitive adversaries on
// the lockstep configs, seeded randomness only on the deterministic engine).
func mixedSweepBatch() []agree.Config {
	var configs []agree.Config
	for n := 3; n <= 8; n++ {
		configs = append(configs,
			agree.Config{N: n},
			agree.Config{N: n, Faults: agree.CoordinatorCrashes(n / 2)},
			agree.Config{N: n, Faults: agree.CoordinatorCrashesDelivering(n/2, agree.CtrlAll)},
			agree.Config{N: n, Protocol: agree.ProtocolEarlyStop, Faults: agree.CoordinatorCrashes(1)},
			agree.Config{N: n, Protocol: agree.ProtocolFloodSet, T: n - 1},
			agree.Config{N: n, Engine: agree.EngineLockstep, Faults: agree.ScriptedFaults(
				map[int]agree.CrashPlan{1: {Round: 1, DeliverAllData: true, CtrlPrefix: agree.CtrlAll}})},
			agree.Config{N: n, Faults: agree.RandomFaults(int64(n), 0.2, n-1)},
			agree.Config{N: n, SimulateOnClassic: true},
		)
	}
	return configs
}

// diffItems describes the first difference between two sweep items of the
// same configuration, or returns "".
func diffItems(a, b agree.SweepItem) string {
	if (a.Err == nil) != (b.Err == nil) {
		return fmt.Sprintf("err %v vs %v", a.Err, b.Err)
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		return fmt.Sprintf("err %q vs %q", a.Err, b.Err)
	}
	if (a.Report == nil) != (b.Report == nil) {
		return "report presence differs"
	}
	if a.Report == nil {
		return ""
	}
	ra, rb := a.Report, b.Report
	if ra.Rounds != rb.Rounds || ra.MacroRounds != rb.MacroRounds {
		return fmt.Sprintf("rounds %d/%d vs %d/%d", ra.Rounds, ra.MacroRounds, rb.Rounds, rb.MacroRounds)
	}
	if len(ra.Decisions) != len(rb.Decisions) {
		return "decision counts differ"
	}
	for id, v := range ra.Decisions {
		if rb.Decisions[id] != v || rb.DecideRound[id] != ra.DecideRound[id] {
			return fmt.Sprintf("p%d decision differs", id)
		}
	}
	if len(ra.Crashed) != len(rb.Crashed) {
		return "crash counts differ"
	}
	for id, r := range ra.Crashed {
		if rb.Crashed[id] != r {
			return fmt.Sprintf("p%d crash round differs", id)
		}
	}
	if ra.Counters != rb.Counters {
		return fmt.Sprintf("counters %s vs %s", ra.Counters.String(), rb.Counters.String())
	}
	if (ra.ConsensusErr == nil) != (rb.ConsensusErr == nil) {
		return "consensus verdict differs"
	}
	if ra.Transcript != rb.Transcript || ra.Diagram != rb.Diagram {
		return "transcript/diagram differs"
	}
	return ""
}

// TestSweepDifferentialAcrossWorkers proves the acceptance criterion: a
// parallel sweep at W ∈ {2, 4, 8} returns per-config reports identical to
// the sequential path (W = 1), in the same order, with the same aggregate.
// scripts/verify.sh runs this under -race.
func TestSweepDifferentialAcrossWorkers(t *testing.T) {
	configs := mixedSweepBatch()
	want := agree.Sweep(configs, agree.SweepOptions{Workers: 1})
	if want.Aggregate.Errored != 0 {
		for _, item := range want.Items {
			if item.Err != nil {
				t.Fatalf("sequential baseline errored: %v", item.Err)
			}
		}
	}
	for _, w := range []int{2, 4, 8} {
		got := agree.Sweep(configs, agree.SweepOptions{Workers: w})
		if len(got.Items) != len(want.Items) {
			t.Fatalf("W=%d: %d items, want %d", w, len(got.Items), len(want.Items))
		}
		for i := range want.Items {
			if d := diffItems(want.Items[i], got.Items[i]); d != "" {
				t.Errorf("W=%d config %d: %s", w, i, d)
			}
		}
		if got.Aggregate.Configs != want.Aggregate.Configs ||
			got.Aggregate.Errored != want.Aggregate.Errored ||
			got.Aggregate.Violations != want.Aggregate.Violations ||
			got.Aggregate.Counters != want.Aggregate.Counters {
			t.Errorf("W=%d: aggregate %+v, want %+v", w, got.Aggregate, want.Aggregate)
		}
		for k, v := range want.Aggregate.RoundHistogram {
			if got.Aggregate.RoundHistogram[k] != v {
				t.Errorf("W=%d: histogram[%d] = %d, want %d", w, k, got.Aggregate.RoundHistogram[k], v)
			}
		}
	}
}

// TestSweepMatchesRun proves a sweep item equals the corresponding
// single-shot agree.Run (Run IS a one-element sweep, but this pins the
// batched path with engine reuse against the one-shot path).
func TestSweepMatchesRun(t *testing.T) {
	configs := mixedSweepBatch()
	sr := agree.Sweep(configs, agree.SweepOptions{})
	for i, cfg := range configs {
		rep, err := agree.Run(cfg)
		single := agree.SweepItem{Config: cfg, Report: rep, Err: err}
		if d := diffItems(single, sr.Items[i]); d != "" {
			t.Errorf("config %d: sweep differs from Run: %s", i, d)
		}
	}
}

// TestSweepAllocsPerConfig pins the engine-reuse dividend: amortized
// per-config allocations inside a sweep must undercut a standalone
// agree.Run of the same configuration, which pays engine construction every
// call.
func TestSweepAllocsPerConfig(t *testing.T) {
	cfg := agree.Config{N: 16, Faults: agree.CoordinatorCrashes(3)}
	const batch = 64
	configs := make([]agree.Config, batch)
	for i := range configs {
		configs[i] = cfg
	}
	runAllocs := testing.AllocsPerRun(20, func() {
		if _, err := agree.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	sweepAllocs := testing.AllocsPerRun(5, func() {
		sr := agree.Sweep(configs, agree.SweepOptions{Workers: 1})
		if sr.Aggregate.Errored != 0 {
			t.Fatal("sweep errored")
		}
	}) / batch
	if sweepAllocs >= runAllocs {
		t.Errorf("sweep allocates %.1f allocs/config, want < %.1f (standalone Run)", sweepAllocs, runAllocs)
	}
	// Absolute regression pin for the batched path (protocol construction
	// plus report assembly; the engine itself is reused). Generous headroom
	// over the measured value so only a real regression trips it.
	const maxPerConfig = 160 // measured ~125 at introduction
	if sweepAllocs > maxPerConfig {
		t.Errorf("sweep allocates %.1f allocs/config, want <= %d", sweepAllocs, maxPerConfig)
	}
}

// TestSweepCrossCheck exercises the CrossCheck mode: order-insensitive
// configurations are validated on every other registered engine, while
// order-sensitive (random) fault specs are skipped.
func TestSweepCrossCheck(t *testing.T) {
	configs := []agree.Config{
		{N: 5, Faults: agree.CoordinatorCrashes(2)},
		{N: 5, Protocol: agree.ProtocolEarlyStop, Faults: agree.CoordinatorCrashes(1)},
		{N: 5, Protocol: agree.ProtocolFloodSet},
		{N: 5, Engine: agree.EngineLockstep, Faults: agree.CoordinatorCrashes(1)},
		{N: 5, Faults: agree.RandomFaults(3, 0.3, 4)},
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 2, CrossCheck: true})
	for i, item := range sr.Items {
		if item.Err != nil {
			t.Fatalf("config %d: %v", i, item.Err)
		}
	}
	for i := 0; i < 3; i++ {
		xc := sr.Items[i].CrossChecked
		if len(xc) != 2 || xc[0] != agree.EngineLockstep || xc[1] != agree.EngineTimed {
			t.Errorf("config %d: cross-checked on %v, want [lockstep timed]", i, xc)
		}
	}
	xc := sr.Items[3].CrossChecked
	if len(xc) != 2 || xc[0] != agree.EngineDeterministic || xc[1] != agree.EngineTimed {
		t.Errorf("lockstep config: cross-checked on %v, want [deterministic timed]", xc)
	}
	if len(sr.Items[4].CrossChecked) != 0 {
		t.Errorf("random config: cross-checked on %v, want none (order-sensitive)", sr.Items[4].CrossChecked)
	}
	if sr.Aggregate.CrossChecked != 4 {
		t.Errorf("aggregate cross-checked = %d, want 4", sr.Aggregate.CrossChecked)
	}
}

// TestSweepCapabilityError pins the satellite fix: requesting a diagram on
// an engine without trace support must blame the diagram (the capability
// the user asked for), not claim "tracing requires the deterministic
// engine".
func TestSweepCapabilityError(t *testing.T) {
	_, err := agree.Run(agree.Config{N: 4, Diagram: true, Engine: agree.EngineLockstep})
	if err == nil {
		t.Fatal("diagram accepted on lockstep engine")
	}
	if !strings.Contains(err.Error(), "Diagram") || !strings.Contains(err.Error(), "lockstep") {
		t.Errorf("diagram error does not name the unsupported capability and engine: %v", err)
	}
	_, err = agree.Run(agree.Config{N: 4, Trace: true, Engine: agree.EngineLockstep})
	if err == nil {
		t.Fatal("trace accepted on lockstep engine")
	}
	if !strings.Contains(err.Error(), "Trace") || !strings.Contains(err.Error(), "lockstep") {
		t.Errorf("trace error does not name the unsupported capability and engine: %v", err)
	}
}

// TestSweepIsolatesConfigErrors proves one bad configuration does not
// poison the batch.
func TestSweepIsolatesConfigErrors(t *testing.T) {
	configs := []agree.Config{
		{N: 4},
		{N: 0},
		{N: 4, Protocol: "bogus"},
		{N: 4, Engine: "bogus"},
		{N: 4, Faults: agree.CoordinatorCrashes(1)},
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 3})
	if sr.Items[0].Err != nil || sr.Items[4].Err != nil {
		t.Errorf("valid configs errored: %v, %v", sr.Items[0].Err, sr.Items[4].Err)
	}
	for _, i := range []int{1, 2, 3} {
		if sr.Items[i].Err == nil {
			t.Errorf("config %d: invalid config accepted", i)
		}
		if sr.Items[i].Report != nil {
			t.Errorf("config %d: report returned alongside error", i)
		}
	}
	if sr.Aggregate.Errored != 3 {
		t.Errorf("aggregate errored = %d, want 3", sr.Aggregate.Errored)
	}
}

// TestSweepAggregate checks the aggregate against a by-hand fold of the
// items.
func TestSweepAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var configs []agree.Config
	for i := 0; i < 20; i++ {
		n := rng.Intn(10) + 3
		configs = append(configs, agree.Config{N: n, Faults: agree.CoordinatorCrashes(rng.Intn(n))})
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 4})
	wantHist := map[int]int{}
	var wantMsgs int
	for i, item := range sr.Items {
		if item.Err != nil {
			t.Fatalf("config %d: %v", i, item.Err)
		}
		wantHist[item.Report.MaxDecideRound()]++
		wantMsgs += item.Report.Counters.TotalMsgs()
	}
	if sr.Aggregate.Configs != 20 || sr.Aggregate.Violations != 0 {
		t.Errorf("aggregate = %+v, want 20 configs, 0 violations", sr.Aggregate)
	}
	if got := sr.Aggregate.Counters.TotalMsgs(); got != wantMsgs {
		t.Errorf("aggregate messages = %d, want %d", got, wantMsgs)
	}
	for k, v := range wantHist {
		if sr.Aggregate.RoundHistogram[k] != v {
			t.Errorf("histogram[%d] = %d, want %d", k, sr.Aggregate.RoundHistogram[k], v)
		}
	}
	if len(sr.Aggregate.RoundHistogram) != len(wantHist) {
		t.Errorf("histogram has %d keys, want %d", len(sr.Aggregate.RoundHistogram), len(wantHist))
	}
}
