package agree

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
)

// reportWire is the serialized form of a Report. It exists because Report
// carries an error field (ConsensusErr), which encoding/json cannot round-trip
// as an interface; on the wire it is the error string, "" meaning nil.
// Everything else is integers, strings and integer-keyed maps, all of which
// encoding/json serializes canonically (map keys are emitted in sorted
// order), so the byte-identical determinism law is checkable on this format.
type reportWire struct {
	Rounds       int
	MacroRounds  int
	Decisions    map[int]int64 `json:",omitempty"`
	DecideRound  map[int]int   `json:",omitempty"`
	Crashed      map[int]int   `json:",omitempty"`
	Omissive     map[int]int   `json:",omitempty"`
	Counters     metrics.Counters
	Ledger       metrics.Ledger
	SimTime      float64
	ConsensusErr string `json:",omitempty"`
	Transcript   string `json:",omitempty"`
	Diagram      string `json:",omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r *Report) MarshalJSON() ([]byte, error) {
	w := reportWire{
		Rounds:      r.Rounds,
		MacroRounds: r.MacroRounds,
		Decisions:   r.Decisions,
		DecideRound: r.DecideRound,
		Crashed:     r.Crashed,
		Omissive:    r.Omissive,
		Counters:    r.Counters,
		Ledger:      r.Ledger,
		SimTime:     r.SimTime,
		Transcript:  r.Transcript,
		Diagram:     r.Diagram,
	}
	if r.ConsensusErr != nil {
		w.ConsensusErr = r.ConsensusErr.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Report) UnmarshalJSON(data []byte) error {
	var w reportWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Report{
		Rounds:      w.Rounds,
		MacroRounds: w.MacroRounds,
		Decisions:   w.Decisions,
		DecideRound: w.DecideRound,
		Crashed:     w.Crashed,
		Omissive:    w.Omissive,
		Counters:    w.Counters,
		Ledger:      w.Ledger,
		SimTime:     w.SimTime,
		Transcript:  w.Transcript,
		Diagram:     w.Diagram,
	}
	if w.ConsensusErr != "" {
		r.ConsensusErr = errors.New(w.ConsensusErr)
	}
	return nil
}

// VerifyDeterminism checks the determinism law for one configuration: two
// independent executions must serialize to byte-identical reports, and the
// serialized report must survive a JSON round-trip byte-identically. This is
// deliberately stronger than field-by-field equality — it also pins the
// serialization itself (a map rendered in nondeterministic order, or a float
// that does not round-trip, breaks reproducible experiment snapshots even
// when the in-memory reports compare equal).
//
// The law is checked here rather than on every run — re-running every
// configuration twice would double the cost of every sweep and benchmark.
// It requires an engine with the deterministic capability; campaigns on the
// lockstep runtime cannot promise bit-identical runs and are rejected.
func VerifyDeterminism(cfg Config) error {
	engine := cfg.Engine
	if engine == "" {
		engine = EngineDeterministic
	}
	if caps, ok := harness.Lookup(harness.Kind(engine)); ok && !caps.Deterministic {
		return fmt.Errorf("agree: engine %q makes no determinism promise; VerifyDeterminism requires a deterministic engine", engine)
	}
	first, err := Run(cfg)
	if err != nil {
		return err
	}
	second, err := Run(cfg)
	if err != nil {
		return fmt.Errorf("agree: re-run failed: %w", err)
	}
	ja, err := json.Marshal(first)
	if err != nil {
		return err
	}
	jb, err := json.Marshal(second)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jb) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("two runs of one configuration serialized differently:\n%s\nvs\n%s", ja, jb)}
	}
	var rt Report
	if err := json.Unmarshal(ja, &rt); err != nil {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("serialized report does not deserialize: %v", err)}
	}
	jrt, err := json.Marshal(&rt)
	if err != nil {
		return err
	}
	if !bytes.Equal(ja, jrt) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("report changed across a JSON round-trip:\n%s\nvs\n%s", ja, jrt)}
	}
	return nil
}
