package agree_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/agree"
)

// telemetryShapes are the E-series workload shapes the exact-allocs gate
// tracks, one per engine: telemetry instrumentation rides every hot path
// these exercise.
func telemetryShapes() map[string]agree.Config {
	return map[string]agree.Config{
		"e1-failure-free": {N: 64},
		"deterministic":   {N: 32, Faults: agree.CoordinatorCrashes(4)},
		"lockstep":        {N: 32, Engine: agree.EngineLockstep, Faults: agree.CoordinatorCrashes(4)},
		"timed": {N: 32, Engine: agree.EngineTimed,
			Latency: agree.JitterLatency(7, 1, 0.1, 0.1, 0.85),
			Faults:  agree.CoordinatorCrashes(4)},
	}
}

// TestTelemetryDisabledAllocFree guards the "nil recorder costs nothing"
// promise at the workload level: with Config.Telemetry off (the default),
// per-config allocations on the engine-reuse path must stay at the
// pre-telemetry pins for every E-series shape the exact-allocs benchmark
// gate tracks. The recorder-level proof (nil methods allocate zero) lives in
// internal/telemetry; this is the end-to-end version, and the
// bench_compare.sh allocs/op gate enforces the same bound release to
// release.
func TestTelemetryDisabledAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement loops are slow in -short mode")
	}
	// Pins are measured per-config allocations inside a reuse batch plus
	// headroom; a telemetry hook that allocates on the disabled path would
	// blow well past them (one append per round per series ≈ hundreds).
	pins := map[string]float64{
		"e1-failure-free": 380,
		"deterministic":   320,
		"lockstep":        900,
		"timed":           2500,
	}
	for name, cfg := range telemetryShapes() {
		t.Run(name, func(t *testing.T) {
			const batch = 16
			configs := make([]agree.Config, batch)
			for i := range configs {
				configs[i] = cfg
			}
			perConfig := testing.AllocsPerRun(5, func() {
				sr := agree.Sweep(configs, agree.SweepOptions{Workers: 1})
				if sr.Aggregate.Errored != 0 {
					t.Fatal("sweep errored")
				}
			}) / batch
			if perConfig > pins[name] {
				t.Errorf("telemetry-disabled run allocates %.1f allocs/config, want <= %g", perConfig, pins[name])
			}
		})
	}
}

// TestTelemetryByteIdenticalRuns checks the determinism law on the
// telemetry plane: two independent runs of one configuration export
// byte-identical metrics JSON, Chrome traces and text timelines, on every
// deterministic engine.
func TestTelemetryByteIdenticalRuns(t *testing.T) {
	for name, cfg := range telemetryShapes() {
		t.Run(name, func(t *testing.T) {
			// The law check requires an engine with the deterministic
			// capability; lockstep makes no formal promise, so it gets the
			// direct byte comparison below instead (its barrier discipline
			// makes round-boundary sampling scheduling-independent for
			// order-insensitive faults).
			if cfg.Engine != agree.EngineLockstep {
				if err := agree.VerifyTelemetryDeterminism(cfg); err != nil {
					t.Fatal(err)
				}
			}
			cfg.Telemetry = true
			first, err := agree.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			second, err := agree.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first.Telemetry == nil {
				t.Fatal("Config.Telemetry set but Report.Telemetry is nil")
			}
			if a, b := first.Telemetry.MetricsJSON(), second.Telemetry.MetricsJSON(); !bytes.Equal(a, b) {
				t.Errorf("metrics JSON differs across two runs:\n%s\nvs\n%s", a, b)
			}
			if a, b := first.Telemetry.ChromeTrace(), second.Telemetry.ChromeTrace(); !bytes.Equal(a, b) {
				t.Errorf("Chrome trace differs across two runs:\n%s\nvs\n%s", a, b)
			}
			if a, b := first.Telemetry.Timeline(), second.Telemetry.Timeline(); a != b {
				t.Errorf("timelines differ:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestTelemetryByteIdenticalAcrossWorkers checks that sweep worker
// scheduling cannot leak into telemetry: the same config batch swept at
// Workers=1 and Workers=4 yields byte-identical per-item telemetry exports.
func TestTelemetryByteIdenticalAcrossWorkers(t *testing.T) {
	var configs []agree.Config
	for _, cfg := range telemetryShapes() {
		cfg.Telemetry = true
		configs = append(configs, cfg)
	}
	// Pad with more work so four workers actually interleave.
	for f := 0; f <= 3; f++ {
		configs = append(configs, agree.Config{N: 16, Telemetry: true,
			Faults: agree.CoordinatorCrashes(f)})
	}
	want := agree.Sweep(configs, agree.SweepOptions{Workers: 1})
	got := agree.Sweep(configs, agree.SweepOptions{Workers: 4})
	for i := range configs {
		a, b := want.Items[i].Report, got.Items[i].Report
		if a == nil || b == nil {
			t.Fatalf("config %d: missing report (%v, %v)", i, want.Items[i].Err, got.Items[i].Err)
		}
		if a.Telemetry == nil || b.Telemetry == nil {
			t.Fatalf("config %d: missing telemetry attachment", i)
		}
		if !bytes.Equal(a.Telemetry.MetricsJSON(), b.Telemetry.MetricsJSON()) {
			t.Errorf("config %d: metrics JSON differs between Workers=1 and Workers=4", i)
		}
		if !bytes.Equal(a.Telemetry.ChromeTrace(), b.Telemetry.ChromeTrace()) {
			t.Errorf("config %d: Chrome trace differs between Workers=1 and Workers=4", i)
		}
	}
}

// TestServeTelemetryDeterminism extends the service determinism law to the
// telemetry artifacts: VerifyServeDeterminism with ServeConfig.Telemetry set
// compares the metrics and trace bytes of the two runs too.
func TestServeTelemetryDeterminism(t *testing.T) {
	cfg := agree.ServeConfig{
		N:           4,
		Workload:    agree.PoissonArrivals(5, 1),
		MaxCommands: 40,
		Telemetry:   true,
	}
	if err := agree.VerifyServeDeterminism(cfg); err != nil {
		t.Fatal(err)
	}
	rep, err := agree.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tel := rep.Telemetry()
	if tel == nil {
		t.Fatal("ServeConfig.Telemetry set but report carries no telemetry")
	}
	var doc struct {
		Slots []struct {
			Slot    int     `json:"slot"`
			Latency float64 `json:"latency"`
			Batch   int     `json:"batch"`
		} `json:"slots"`
	}
	if err := json.Unmarshal(tel.SlotTimelineJSON(), &doc); err != nil {
		t.Fatalf("slot timeline is not valid JSON: %v", err)
	}
	if len(doc.Slots) != rep.Slots {
		t.Errorf("slot timeline has %d slots, report says %d", len(doc.Slots), rep.Slots)
	}
	var batched int
	for _, s := range doc.Slots {
		if s.Latency <= 0 {
			t.Errorf("slot %d: non-positive latency %g", s.Slot, s.Latency)
		}
		batched += s.Batch
	}
	if batched != rep.Commands {
		t.Errorf("slot batches sum to %d commands, report says %d", batched, rep.Commands)
	}
	if tel.LatencyTable() == "" {
		t.Error("service run produced an empty latency table")
	}
}

// chromeEvent is the subset of the trace_event schema the exports use.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceValidity checks the Chrome trace export of a real run on
// every engine: the JSON unmarshals into trace_event records, timestamps are
// monotone within each track, durations are non-negative, and the run span
// covers every round span.
func TestChromeTraceValidity(t *testing.T) {
	for name, cfg := range telemetryShapes() {
		t.Run(name, func(t *testing.T) {
			cfg.Telemetry = true
			rep, err := agree.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var events []chromeEvent
			if err := json.Unmarshal(rep.Telemetry.ChromeTrace(), &events); err != nil {
				t.Fatalf("Chrome trace is not valid JSON: %v", err)
			}
			lastTS := map[int]float64{}
			var runStart, runEnd float64
			var rounds int
			haveRun := false
			for _, e := range events {
				switch e.Ph {
				case "M":
					if e.Name != "thread_name" {
						t.Errorf("unexpected metadata event %q", e.Name)
					}
				case "X":
					if e.Dur < 0 {
						t.Errorf("event %q has negative duration %g", e.Name, e.Dur)
					}
					if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
						t.Errorf("event %q ts %g before previous ts %g on tid %d", e.Name, e.TS, prev, e.TID)
					}
					lastTS[e.TID] = e.TS
					switch e.Cat {
					case "run":
						haveRun = true
						runStart, runEnd = e.TS, e.TS+e.Dur
					case "round":
						rounds++
					}
				default:
					t.Errorf("unexpected phase %q in event %q", e.Ph, e.Name)
				}
			}
			if !haveRun {
				t.Fatal("trace has no run span")
			}
			if rounds != rep.Rounds {
				t.Errorf("trace has %d round spans, report ran %d rounds", rounds, rep.Rounds)
			}
			for _, e := range events {
				if e.Ph != "X" || e.Cat != "round" {
					continue
				}
				if e.TS < runStart || e.TS+e.Dur > runEnd {
					t.Errorf("round span %q [%g, %g] escapes the run span [%g, %g]",
						e.Name, e.TS, e.TS+e.Dur, runStart, runEnd)
				}
			}
			if cfg.Engine == agree.EngineTimed {
				var batches int
				for _, e := range events {
					if e.Cat == "batch" {
						batches++
					}
				}
				if batches == 0 {
					t.Error("timed run recorded no DES event-batch spans")
				}
			}
		})
	}
}

// TestTelemetryExcludedFromReportJSON pins the canonical-report contract:
// enabling telemetry must not change the report's JSON serialization (the
// determinism law and golden reports compare those bytes).
func TestTelemetryExcludedFromReportJSON(t *testing.T) {
	cfg := agree.Config{N: 8, Faults: agree.CoordinatorCrashes(1)}
	plain, err := agree.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = true
	instrumented, err := agree.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("telemetry leaks into report JSON:\n%s\nvs\n%s", a, b)
	}
}

// TestScenarioTelemetry checks the scenario runner's telemetry plumbing: an
// opted-in run attaches a recorder per (scenario, engine) result with spans
// covering the reported rounds.
func TestScenarioTelemetry(t *testing.T) {
	rep, err := agree.RunScenarios(agree.ScenarioOptions{
		Dir: "../scenarios", Names: []string{"crash/coordinator-n4"}, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Skipped {
			continue
		}
		ran++
		tel := res.Telemetry()
		if tel == nil {
			t.Fatalf("%s on %s: no telemetry attached", res.Name, res.Engine)
		}
		var events []chromeEvent
		if err := json.Unmarshal(tel.ChromeTrace(), &events); err != nil {
			t.Fatalf("%s on %s: invalid trace: %v", res.Name, res.Engine, err)
		}
		rounds := 0
		for _, e := range events {
			if e.Ph == "X" && e.Cat == "round" {
				rounds++
			}
		}
		if rounds != res.Rounds {
			t.Errorf("%s on %s: %d round spans, report ran %d rounds",
				res.Name, res.Engine, rounds, res.Rounds)
		}
	}
	if ran == 0 {
		t.Fatal("scenario run executed nothing")
	}
	// Off by default: no recorder unless opted in.
	plain, err := agree.RunScenarios(agree.ScenarioOptions{
		Dir: "../scenarios", Names: []string{"crash/coordinator-n4"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Results {
		if !plain.Results[i].Skipped && plain.Results[i].Telemetry() != nil {
			t.Fatal("telemetry attached without opting in")
		}
	}
}

// ExampleTelemetry_Timeline shows the text timeline of a small instrumented
// run.
func ExampleTelemetry_Timeline() {
	rep, err := agree.Run(agree.Config{N: 4, Telemetry: true})
	if err != nil {
		panic(err)
	}
	fmt.Print(rep.Telemetry.Timeline())
	// Output:
	// engine   [           0,            1] run 0 (count=1)
	// engine   [           0,            1] round 1
}
