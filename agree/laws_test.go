package agree_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/agree"
)

// eSeriesConfigs mirrors the E-series experiment grids (internal/experiments)
// at sizes the three engines all handle quickly: E1's worst-case coordinator
// grid and non-coordinator scripts, E4/E9's protocol triples, E2's
// adversarial bit-complexity schedule, and the omission experiments' scripted
// schedules. Every run's report must satisfy the conservation identity —
// sent == delivered + recv-omitted + late + dead-dest + halted-dest per kind.
func eSeriesConfigs() []agree.Config {
	var configs []agree.Config
	// E1: worst-case coordinator crashes.
	for _, n := range []int{4, 8, 16} {
		for _, f := range []int{0, 1, 2, n / 2, n - 1} {
			if f >= n {
				continue
			}
			configs = append(configs, agree.Config{N: n, Protocol: agree.ProtocolCRW,
				Faults: agree.CoordinatorCrashes(f)})
		}
	}
	// E1: non-coordinator crashes decide in one round.
	for _, n := range []int{8, 16} {
		configs = append(configs, agree.Config{N: n, Protocol: agree.ProtocolCRW,
			Faults: agree.ScriptedFaults(map[int]agree.CrashPlan{
				n:     {Round: 1},
				n - 1: {Round: 1},
			})})
	}
	// E4/E9: protocol triples under the same fault schedule.
	for _, n := range []int{4, 8} {
		tt := n - 1
		for _, f := range []int{0, 1, n / 2} {
			configs = append(configs,
				agree.Config{N: n, Protocol: agree.ProtocolCRW,
					Faults: agree.CoordinatorCrashes(f)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolEarlyStop,
					Faults: agree.CoordinatorCrashes(f)},
				agree.Config{N: n, T: tt, Protocol: agree.ProtocolFloodSet,
					Faults: agree.CoordinatorCrashes(f)})
		}
	}
	// E2: the adversarial schedule that maximizes transmitted data.
	for _, n := range []int{4, 8} {
		configs = append(configs, agree.Config{N: n, Bits: 256,
			Faults: agree.CoordinatorCrashesDelivering(n-1, 0)})
		configs = append(configs, agree.Config{N: n,
			Faults: agree.CoordinatorCrashesDelivering(1, agree.CtrlAll)})
	}
	// E15: scripted omissions (deterministic, so all engines agree).
	configs = append(configs, agree.Config{N: 4, Protocol: agree.ProtocolCRW,
		Faults: agree.ScriptedOmissions(map[int][]agree.OmissionPlan{
			2: {{Round: 1, DropAllSend: true}},
			3: {{Round: 1, Recv: []bool{false, true, true, true}}},
		})})
	return configs
}

// TestConservationAcrossESeries pins the message-conservation law on every
// E-series configuration for all three engines. The harness audits each run
// internally as well — this test re-checks the identity on the public Report,
// proving the ledger survives the report assembly, and fails with the books
// spelled out if an engine ever leaks or double-counts a message.
func TestConservationAcrossESeries(t *testing.T) {
	for _, engine := range []agree.EngineKind{
		agree.EngineDeterministic, agree.EngineLockstep, agree.EngineTimed,
	} {
		engine := engine
		t.Run(string(engine), func(t *testing.T) {
			t.Parallel()
			for _, cfg := range eSeriesConfigs() {
				cfg.Engine = engine
				rep, err := agree.Run(cfg)
				if err != nil {
					t.Fatalf("%+v: %v", cfg, err)
				}
				l, c := &rep.Ledger, &rep.Counters
				if got := l.SinkData(); got != c.DataMsgs {
					t.Errorf("%s %+v: %d data messages transmitted, sinks account for %d (%s)",
						engine, cfg.Faults, c.DataMsgs, got, l.String())
				}
				if got := l.SinkCtrl(); got != c.CtrlMsgs {
					t.Errorf("%s %+v: %d control messages transmitted, sinks account for %d (%s)",
						engine, cfg.Faults, c.CtrlMsgs, got, l.String())
				}
				if got := l.RecvOmitData + l.RecvOmitCtrl; got != c.OmittedRecv {
					t.Errorf("%s %+v: ledger receive omissions %d != Counters.OmittedRecv %d",
						engine, cfg.Faults, got, c.OmittedRecv)
				}
			}
		})
	}
}

// TestVerifyDeterminismAcrossESeries checks the determinism law on a slice of
// the E-series grid: byte-identical serialized reports across re-runs and
// JSON round-trips, on both deterministic-capable engines.
func TestVerifyDeterminismAcrossESeries(t *testing.T) {
	cases := []agree.Config{
		{N: 8},
		{N: 8, Faults: agree.CoordinatorCrashes(3)},
		{N: 5, T: 4, Protocol: agree.ProtocolEarlyStop, Faults: agree.CoordinatorCrashes(2)},
		{N: 4, Faults: agree.CoordinatorCrashesDelivering(1, agree.CtrlAll)},
		{N: 4, Engine: agree.EngineTimed, Latency: agree.JitterLatency(7, 1, 0.2, 0.1, 0.5)},
		{N: 6, Engine: agree.EngineTimed, Faults: agree.CoordinatorCrashes(2)},
	}
	for i, cfg := range cases {
		if err := agree.VerifyDeterminism(cfg); err != nil {
			t.Errorf("case %d (%+v): %v", i, cfg, err)
		}
	}
}

// TestVerifyDeterminismRejectsLockstep pins the capability gate: the lockstep
// runtime makes no bit-identical promise, so the determinism law refuses it
// rather than reporting flaky violations.
func TestVerifyDeterminismRejectsLockstep(t *testing.T) {
	err := agree.VerifyDeterminism(agree.Config{N: 4, Engine: agree.EngineLockstep})
	if err == nil {
		t.Fatal("VerifyDeterminism accepted the lockstep engine")
	}
	want := fmt.Sprintf("engine %q makes no determinism promise", agree.EngineLockstep)
	if got := err.Error(); !strings.Contains(got, want) {
		t.Errorf("error = %q, want mention of %q", got, want)
	}
}
