package agree_test

import (
	"math"
	"strings"
	"testing"

	"repro/agree"
)

// TestServeFailureFree pins the service's shape on a clean run: a saturated
// closed-loop log on the timed engine commits one slot per round duration,
// every slot on the one cached engine.
func TestServeFailureFree(t *testing.T) {
	rep, err := agree.Serve(agree.ServeConfig{
		N: 4, RotateLeader: true,
		Latency:     agree.FixedLatency(1, 0.1),
		Workload:    agree.ClosedClients(4, 0, false, 0),
		MaxCommands: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commands != 100 || rep.Slots != 25 {
		t.Errorf("commands/slots = %d/%d, want 100/25", rep.Commands, rep.Slots)
	}
	if rep.TotalRounds != rep.Slots {
		t.Errorf("rounds = %d over %d slots, want one round per failure-free extended slot", rep.TotalRounds, rep.Slots)
	}
	if rep.EnginesBuilt != 1 || rep.EngineReuses != rep.Slots-1 {
		t.Errorf("engines built/reused = %d/%d, want 1/%d", rep.EnginesBuilt, rep.EngineReuses, rep.Slots-1)
	}
	if math.Abs(rep.LatencyP50-1.1) > 1e-9 {
		t.Errorf("p50 latency = %g, want 1.1 (one instance duration)", rep.LatencyP50)
	}
}

// TestServeMidStreamCrashRecovery pins the ISSUE's acceptance scenario
// through the public API: a leader crash mid-stream recovers in exactly the
// analytic one-round bound D+δ with RotateLeader, and in two rounds without
// it (the dead static coordinator wastes the recovery instance's first
// round).
func TestServeMidStreamCrashRecovery(t *testing.T) {
	const roundDur = 1.1
	run := func(rotate bool) *agree.ServeReport {
		t.Helper()
		rep, err := agree.Serve(agree.ServeConfig{
			N: 4, RotateLeader: rotate,
			Latency:     agree.FixedLatency(1, 0.1),
			Workload:    agree.ClosedClients(4, 0, false, 0),
			MaxCommands: 120,
			CrashAt:     map[int]float64{1: 5 * roundDur},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rotated := run(true)
	if len(rotated.Recoveries) != 1 {
		t.Fatalf("recoveries = %v, want exactly one", rotated.Recoveries)
	}
	if got := rotated.Recoveries[0].Time(); math.Abs(got-roundDur) > 1e-9 {
		t.Errorf("rotated recovery = %g, want the one-round analytic bound %g", got, roundDur)
	}
	static := run(false)
	if len(static.Recoveries) != 1 {
		t.Fatalf("static recoveries = %v, want exactly one", static.Recoveries)
	}
	if got := static.Recoveries[0].Time(); math.Abs(got-2*roundDur) > 1e-9 {
		t.Errorf("static recovery = %g, want two round durations %g", got, 2*roundDur)
	}
	// The rotated log also beats the static one on post-crash throughput.
	if rotated.TotalRounds >= static.TotalRounds {
		t.Errorf("rotated log took %d rounds vs static %d, want fewer", rotated.TotalRounds, static.TotalRounds)
	}
}

// TestServeThroughputAcceptance pins the acceptance bar: at n=8 on the timed
// engine with gigabit-Ethernet latencies the service sustains at least one
// million commands per simulated hour, with the full latency distribution
// reported.
func TestServeThroughputAcceptance(t *testing.T) {
	rep, err := agree.Serve(agree.ServeConfig{
		N: 8, RotateLeader: true,
		Latency:     agree.ProfileLatency("1g"),
		Workload:    agree.PoissonArrivals(500_000, 1),
		MaxCommands: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommandsPerHour < 1e6 {
		t.Errorf("sustained %.0f commands per simulated hour, want >= 1e6", rep.CommandsPerHour)
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP99 < rep.LatencyP50 ||
		rep.LatencyP999 < rep.LatencyP99 || rep.LatencyMax < rep.LatencyP999 {
		t.Errorf("latency distribution inconsistent: p50=%g p99=%g p999=%g max=%g",
			rep.LatencyP50, rep.LatencyP99, rep.LatencyP999, rep.LatencyMax)
	}
}

// TestServeBurstyWorkload drives the multi-period schedule end to end: the
// burst phases must push tail latency above the median.
func TestServeBurstyWorkload(t *testing.T) {
	rep, err := agree.Serve(agree.ServeConfig{
		N: 4, RotateLeader: true,
		Latency:  agree.FixedLatency(1, 0.1),
		Workload: agree.BurstyArrivals(0.2, 50, 30, 5, 3),
		Duration: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Commands == 0 {
		t.Fatal("bursty run committed nothing")
	}
	if rep.LatencyP99 <= rep.LatencyP50 {
		t.Errorf("p99 = %g <= p50 = %g; bursts should build a queue and stretch the tail",
			rep.LatencyP99, rep.LatencyP50)
	}
}

// TestServeDeterminismLaw checks the byte-identical replay law over a
// configuration exercising every seeded subsystem at once: Poisson
// arrivals, latency jitter with timing faults, a mid-stream crash, and
// omission injection.
func TestServeDeterminismLaw(t *testing.T) {
	err := agree.VerifyServeDeterminism(agree.ServeConfig{
		N: 6, RotateLeader: true,
		Latency:     agree.JitterLatency(3, 1, 0.1, 0.4, 0.5),
		Workload:    agree.PoissonArrivals(4, 99),
		MaxCommands: 300,
		CrashAt:     map[int]float64{2: 30},
		Omissions:   &agree.ServeOmissions{Procs: []int{5}, SendProb: 0.15, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestServeEarlyStopService runs the classic baseline as the per-slot
// protocol: every failure-free slot costs two rounds (min(f+2, t+1) with
// f=0), so the same workload doubles its rounds against CRW.
func TestServeEarlyStopService(t *testing.T) {
	rep, err := agree.Serve(agree.ServeConfig{
		N: 4, Protocol: agree.ProtocolEarlyStop, RotateLeader: true,
		Latency:     agree.FixedLatency(1, 0.1),
		Workload:    agree.ClosedClients(4, 0, false, 0),
		MaxCommands: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRounds != 2*rep.Slots {
		t.Errorf("earlystop service: %d rounds over %d slots, want 2 per slot", rep.TotalRounds, rep.Slots)
	}
}

// TestServeConfigValidation rejects the unusable configurations with
// telling errors.
func TestServeConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  agree.ServeConfig
		want string
	}{
		{"floodset unsupported", agree.ServeConfig{N: 4, Protocol: agree.ProtocolFloodSet,
			Workload: agree.FixedArrivals(1, 0), MaxCommands: 1}, "not"},
		{"no workload", agree.ServeConfig{N: 4, MaxCommands: 1}, "workload"},
		{"bad rate", agree.ServeConfig{N: 4, Workload: agree.FixedArrivals(0, 0), MaxCommands: 1}, "rate"},
		{"no stop", agree.ServeConfig{N: 4, Workload: agree.FixedArrivals(1, 0)}, "stop condition"},
		{"bad latency", agree.ServeConfig{N: 4, Workload: agree.FixedArrivals(1, 0), MaxCommands: 1,
			Latency: agree.FixedLatency(-1, 0)}, "positive"},
		{"latency needs timed engine", agree.ServeConfig{N: 4, Engine: agree.EngineDeterministic,
			Workload: agree.FixedArrivals(1, 0), MaxCommands: 1,
			Latency: agree.FixedLatency(1, 0.1)}, "timed capability"},
	}
	for _, tc := range cases {
		_, err := agree.Serve(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
