package agree_test

import (
	"math"
	"strings"
	"testing"

	"repro/agree"
)

// TestTimedEngineReport runs one configuration on the timed engine and pins
// the public contract: a measured SimTime consistent with the latency
// parameters, and a report otherwise identical to the deterministic
// engine's.
func TestTimedEngineReport(t *testing.T) {
	cfg := agree.Config{N: 6, Faults: agree.CoordinatorCrashes(2)}
	want, err := agree.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = agree.EngineTimed
	cfg.Latency = agree.FixedLatency(1, 0.25)
	got, err := agree.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.MaxDecideRound() != want.MaxDecideRound() ||
		got.Counters != want.Counters || len(got.Decisions) != len(want.Decisions) {
		t.Errorf("timed report diverges from deterministic: %+v vs %+v", got, want)
	}
	if want.SimTime != 0 {
		t.Errorf("deterministic report has SimTime %g, want 0", want.SimTime)
	}
	if wantTime := float64(got.Rounds) * 1.25; math.Abs(got.SimTime-wantTime) > 1e-9 {
		t.Errorf("SimTime = %g, want rounds·(D+δ) = %g", got.SimTime, wantTime)
	}
	if got.ConsensusErr != nil {
		t.Errorf("consensus violated: %v", got.ConsensusErr)
	}
}

func TestTimedEngineTrace(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 4, Engine: agree.EngineTimed, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Transcript, "decide") || !strings.Contains(rep.Transcript, "t=") {
		t.Errorf("timed transcript lacks timestamped events:\n%s", rep.Transcript)
	}
}

func TestLatencySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  agree.Config
		want string
	}{
		{"latency on round engine", agree.Config{N: 4, Latency: agree.FixedLatency(1, 0.1)}, "timed capability"},
		{"latency on lockstep", agree.Config{N: 4, Engine: agree.EngineLockstep, Latency: agree.FixedLatency(1, 0.1)}, "timed capability"},
		{"non-positive D", agree.Config{N: 4, Engine: agree.EngineTimed, Latency: agree.FixedLatency(0, 0.1)}, "must be positive"},
		{"negative delta", agree.Config{N: 4, Engine: agree.EngineTimed, Latency: agree.FixedLatency(1, -0.1)}, "negative"},
		{"unknown profile", agree.Config{N: 4, Engine: agree.EngineTimed, Latency: agree.ProfileLatency("token-ring")}, "unknown LAN profile"},
		{"negative floor", agree.Config{N: 4, Engine: agree.EngineTimed, Latency: agree.JitterLatency(1, 1, 0.1, -0.5, 0.2)}, "floor"},
		{"negative spread", agree.Config{N: 4, Engine: agree.EngineTimed, Latency: agree.JitterLatency(1, 1, 0.1, 0.5, -0.2)}, "spread"},
	}
	for _, tc := range cases {
		_, err := agree.Run(tc.cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestProfileLatencyRun(t *testing.T) {
	for _, name := range []string{"100m", "1g", "10g"} {
		rep, err := agree.Run(agree.Config{N: 5, Engine: agree.EngineTimed,
			Latency: agree.ProfileLatency(name), Faults: agree.CoordinatorCrashes(1)})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.SimTime <= 0 {
			t.Errorf("%s: SimTime %g", name, rep.SimTime)
		}
		if rep.Counters.Late != 0 {
			t.Errorf("%s: %d late messages on an in-bound LAN profile", name, rep.Counters.Late)
		}
		if rep.MaxDecideRound() != 2 {
			t.Errorf("%s: decide round %d, want f+1 = 2", name, rep.MaxDecideRound())
		}
	}
}

// TestTimedSweepCrossCheck pins the cross-check semantics around latency:
// within-bound specs (even jittered) are compared against the round
// engines; out-of-bound specs are skipped like order-sensitive faults.
func TestTimedSweepCrossCheck(t *testing.T) {
	configs := []agree.Config{
		{N: 5, Engine: agree.EngineTimed, Faults: agree.CoordinatorCrashes(2),
			Latency: agree.JitterLatency(9, 1, 0.1, 0.1, 0.8)}, // floor+spread ≤ D: neutral
		{N: 5, Engine: agree.EngineTimed, Faults: agree.NoFaults(),
			Latency: agree.JitterLatency(9, 1, 0.1, 0.5, 1.5)}, // out of bound: timing faults
	}
	sr := agree.Sweep(configs, agree.SweepOptions{Workers: 1, CrossCheck: true})
	if sr.Items[0].Err != nil {
		t.Fatalf("within-bound item: %v", sr.Items[0].Err)
	}
	xc := sr.Items[0].CrossChecked
	if len(xc) != 2 || xc[0] != agree.EngineDeterministic || xc[1] != agree.EngineLockstep {
		t.Errorf("within-bound jitter cross-checked on %v, want [deterministic lockstep]", xc)
	}
	if sr.Items[1].Err != nil {
		t.Fatalf("out-of-bound item: %v", sr.Items[1].Err)
	}
	if len(sr.Items[1].CrossChecked) != 0 {
		t.Errorf("out-of-bound jitter cross-checked on %v, want none", sr.Items[1].CrossChecked)
	}
}

func TestEnginesListing(t *testing.T) {
	engs := agree.Engines()
	if len(engs) != 3 {
		t.Fatalf("Engines() = %v, want 3 entries", engs)
	}
	byKind := map[agree.EngineKind]agree.EngineInfo{}
	for _, e := range engs {
		byKind[e.Kind] = e
	}
	if e := byKind[agree.EngineTimed]; !e.Timed || !e.Trace || !e.Deterministic || !e.Reusable {
		t.Errorf("timed engine info = %+v", e)
	}
	if e := byKind[agree.EngineDeterministic]; e.Timed || !e.Reusable {
		t.Errorf("deterministic engine info = %+v", e)
	}
}

// TestTimedFuzzCampaign runs a crash campaign on the timed engine with
// cross-checking: the faithful algorithm must produce no findings, and
// every seed replays identically across all three engines.
func TestTimedFuzzCampaign(t *testing.T) {
	rep, err := agree.Fuzz(agree.FuzzConfig{
		N: 8, T: 3, Seeds: 60, Engine: agree.EngineTimed,
		Latency: agree.JitterLatency(4, 1, 0.1, 0.2, 0.7), CrossCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("timed campaign found %d violations in the faithful algorithm: %+v",
			len(rep.Findings), rep.Findings[0])
	}
	if rep.MaxRounds == 0 {
		t.Error("campaign executed no rounds")
	}
}

// TestTimingFaultFuzzFindsViolations is the timing-faults-as-scenarios
// claim: an out-of-bound latency model starves messages, the walk's
// schedule is judged on consensus alone, and the campaign finds (and
// replay-verifies) violations without any crash or omission event — the
// fault is purely temporal.
func TestTimingFaultFuzzFindsViolations(t *testing.T) {
	rep, err := agree.Fuzz(agree.FuzzConfig{
		N: 6, T: 1, Seeds: 40, CrashProb: 0.05, Engine: agree.EngineTimed,
		Latency: agree.JitterLatency(11, 1, 0.1, 0.6, 2.4), // ~58% of messages late
		Shrink:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings under a latency model that starves most messages")
	}
	// Fatal replay divergence would have surfaced as err; reaching here
	// means every finding reproduced from its recorded script under the
	// pure per-message latency hash.
}

func TestFuzzRejectsNonDeterministicEngine(t *testing.T) {
	if _, err := agree.Fuzz(agree.FuzzConfig{N: 4, Seeds: 1, Engine: agree.EngineLockstep}); err == nil ||
		!strings.Contains(err.Error(), "not deterministic") {
		t.Errorf("lockstep fuzz campaign not rejected: %v", err)
	}
	if _, err := agree.Fuzz(agree.FuzzConfig{N: 4, Seeds: 1, Latency: agree.FixedLatency(1, 0.1)}); err == nil ||
		!strings.Contains(err.Error(), "timed capability") {
		t.Errorf("latency on deterministic fuzz campaign not rejected: %v", err)
	}
}

// TestTimedFuzzReplayHonorsEngineAndLatency pins the reproduce contract of
// timed campaigns: FuzzReplayScript must execute on the campaign's engine
// under the campaign's latency model, so a timing-fault finding — whose
// script may be empty or name only an incidental crash — reproduces its
// violation instead of silently passing on the deterministic round engine.
func TestTimedFuzzReplayHonorsEngineAndLatency(t *testing.T) {
	cfg := agree.FuzzConfig{
		N: 6, T: 1, Seeds: 40, CrashProb: 0.05, Engine: agree.EngineTimed,
		Latency: agree.JitterLatency(11, 1, 0.1, 0.6, 2.4),
	}
	rep, err := agree.Fuzz(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("no findings to replay")
	}
	finding := rep.Findings[0]
	replay, err := agree.FuzzReplayScript(cfg, finding.Script, false)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Err == nil {
		t.Fatalf("replaying finding %q under the campaign config reported no violation (engine/latency dropped?)", finding.Script)
	}
	// The same script without the campaign's latency model runs on plain
	// round semantics and must NOT reproduce — that contrast is the point.
	plain := cfg
	plain.Engine, plain.Latency = "", agree.LatencySpec{}
	if replayPlain, err := agree.FuzzReplayScript(plain, finding.Script, false); err == nil && replayPlain.Err != nil {
		t.Logf("note: script %q also violates on the round engine (crash-induced), contrast not observable for this seed", finding.Script)
	}
}

// TestLatencyFromFlags pins the CLI flag-assembly contract: a half-applied
// invocation (a knob that the selected model would silently ignore) is an
// error, never a silently different model.
func TestLatencyFromFlags(t *testing.T) {
	ok := []struct {
		name                    string
		profile                 string
		d, delta, floor, spread float64
		want                    agree.LatencySpec
	}{
		{"default", "", 0, 0, 0, 0, agree.LatencySpec{}},
		{"profile", "1g", 0, 0, 0, 0, agree.ProfileLatency("1g")},
		{"fixed", "", 1, 0.1, 0, 0, agree.FixedLatency(1, 0.1)},
		{"jitter", "", 1, 0.1, 0.2, 0.5, agree.JitterLatency(7, 1, 0.1, 0.2, 0.5)},
	}
	for _, tc := range ok {
		got, err := agree.LatencyFromFlags(tc.profile, tc.d, tc.delta, tc.floor, tc.spread, 7)
		if err != nil || got != tc.want {
			t.Errorf("%s: got (%+v, %v), want %+v", tc.name, got, err, tc.want)
		}
	}
	bad := []struct {
		name                    string
		profile                 string
		d, delta, floor, spread float64
	}{
		{"profile+d", "1g", 1, 0, 0, 0},
		{"profile+delta", "1g", 0, 0.2, 0, 0},
		{"profile+floor", "1g", 0, 0, 0.2, 0},
		{"profile+spread", "1g", 0, 0, 0, 0.5},
		{"spread without d", "", 0, 0, 0, 0.5},
		{"floor without spread", "", 1, 0, 0.5, 0},
		{"floor alone", "", 0, 0, 0.5, 0},
		{"delta alone", "", 0, 0.2, 0, 0},
	}
	for _, tc := range bad {
		if _, err := agree.LatencyFromFlags(tc.profile, tc.d, tc.delta, tc.floor, tc.spread, 7); err == nil {
			t.Errorf("%s: accepted a half-applied flag combination", tc.name)
		}
	}
}
