package agree_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/agree"
)

// writeCatalog materializes a scenario catalog in a temp dir; keys of files
// are catalog-relative paths.
func writeCatalog(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, text := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// smallCatalog is a three-entry catalog spanning the scenario classes: a
// crash scenario with pinned bounds, an omission scenario (consensus-only
// judging; CRW is crash-tolerant, so the send omission breaks agreement and
// the scenario pins exactly that), and a timed-only latency scenario.
func smallCatalog(t *testing.T) string {
	return writeCatalog(t, map[string]string{
		"crash/coordinator.scenario": "scenario: crash/coordinator\nn: 4\nfaults: p1@r1:/0\nexpect: pass\nrounds: 2\ndecide-round-max: 2\n",
		"omission/send.scenario":     "scenario: omission/send\nn: 4\nfaults: p1@r1:so:1000/1111\nexpect: agreement\n",
		"timing/fixed.scenario":      "scenario: timing/fixed\nn: 4\nengines: timed\nlatency: fixed d=1 delta=0.1\nexpect: pass\nsimtime: 1.1\n",
	})
}

func TestRunScenariosCatalog(t *testing.T) {
	rep, err := agree.RunScenarios(agree.ScenarioOptions{Dir: smallCatalog(t)})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if rep.Scenarios != 3 {
		t.Fatalf("Scenarios = %d, want 3", rep.Scenarios)
	}
	// crash + omission run on all three engines, timing on its one engine.
	if rep.Ran != 7 || rep.Skipped != 0 || rep.Failed != 0 {
		t.Fatalf("Ran/Skipped/Failed = %d/%d/%d, want 7/0/0", rep.Ran, rep.Skipped, rep.Failed)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("%s on %s: %v", r.Name, r.Engine, r.Err)
		}
	}
	// Deterministic order: catalog order (sorted names), then engine kind.
	var order []string
	for _, r := range rep.Results {
		order = append(order, r.Name+"/"+string(r.Engine))
	}
	want := []string{
		"crash/coordinator/deterministic", "crash/coordinator/lockstep", "crash/coordinator/timed",
		"omission/send/deterministic", "omission/send/lockstep", "omission/send/timed",
		"timing/fixed/timed",
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("result order %v, want %v", order, want)
	}
}

func TestRunScenariosDeterministicAcrossWorkers(t *testing.T) {
	dir := smallCatalog(t)
	var runs []*agree.ScenarioReport
	for _, workers := range []int{1, 4} {
		rep, err := agree.RunScenarios(agree.ScenarioOptions{Dir: dir, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		runs = append(runs, rep)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatalf("results differ across worker counts:\n%+v\nvs\n%+v", runs[0], runs[1])
	}
}

// TestScenarioWrongVerdictCaught plants a scenario whose expected verdict is
// wrong for the run it describes: the failure must name the scenario file and
// the diverging field with observed-vs-expected values.
func TestScenarioWrongVerdictCaught(t *testing.T) {
	dir := writeCatalog(t, map[string]string{
		"planted/wrong-verdict.scenario": "scenario: planted/wrong-verdict\nn: 4\nexpect: agreement\n",
	})
	rep, err := agree.RunScenarios(agree.ScenarioOptions{Dir: dir, Engines: []agree.EngineKind{agree.EngineDeterministic}})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if rep.Failed != 1 || len(rep.Results) != 1 {
		t.Fatalf("Failed = %d (results %d), want 1 failure", rep.Failed, len(rep.Results))
	}
	got := rep.Results[0].Err
	if got == nil {
		t.Fatal("planted wrong verdict not caught")
	}
	for _, want := range []string{"planted/wrong-verdict.scenario", "deterministic", "verdict pass, expected agreement"} {
		if !strings.Contains(got.Error(), want) {
			t.Errorf("error %q does not mention %q", got, want)
		}
	}
}

// TestScenarioWrongBoundCaught plants scenarios with wrong round and
// decide-round bounds: each must fail naming the file and the field.
func TestScenarioWrongBoundCaught(t *testing.T) {
	dir := writeCatalog(t, map[string]string{
		"planted/wrong-rounds.scenario": "scenario: planted/wrong-rounds\nn: 4\nexpect: pass\nrounds: 99\n",
		"planted/wrong-decide.scenario": "scenario: planted/wrong-decide\nn: 4\nfaults: p1@r1:/0\nexpect: pass\ndecide-round-max: 1\n",
	})
	rep, err := agree.RunScenarios(agree.ScenarioOptions{Dir: dir, Engines: []agree.EngineKind{agree.EngineDeterministic}})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if rep.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", rep.Failed)
	}
	wants := map[string][]string{
		"planted/wrong-decide": {"planted/wrong-decide.scenario", "decide round", "expected <= 1"},
		"planted/wrong-rounds": {"planted/wrong-rounds.scenario", "rounds", "expected 99"},
	}
	for _, r := range rep.Results {
		for _, want := range wants[r.Name] {
			if r.Err == nil || !strings.Contains(r.Err.Error(), want) {
				t.Errorf("%s: error %v does not mention %q", r.Name, r.Err, want)
			}
		}
	}
}

// TestScenarioExpectedViolationPasses checks the other direction: a scenario
// whose expected verdict is a violation passes exactly when the violation
// reproduces on every engine. CRW is crash-tolerant, not omission-tolerant:
// a coordinator that send-omits its decision to everyone but itself breaks
// uniform agreement, and the scenario pins that as its expected verdict.
func TestScenarioExpectedViolationPasses(t *testing.T) {
	src := agree.ScenarioSource{
		File: "omission.scenario",
		Text: "scenario: omission/coordinator-keeps-decision\nn: 4\nfaults: p1@r1:so:1000/1111\nexpect: agreement\n",
	}
	rep, err := agree.RunScenarios(agree.ScenarioOptions{Sources: []agree.ScenarioSource{src}})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("%s on %s: %v", r.Name, r.Engine, r.Err)
		}
		if r.Verdict != "agreement" {
			t.Errorf("%s on %s: verdict %q, want agreement", r.Name, r.Engine, r.Verdict)
		}
	}
}

func TestScenarioEngineSemantics(t *testing.T) {
	latencyScenario := "scenario: timing/fixed\nn: 4\nlatency: fixed d=1 delta=0.1\nexpect: pass\n"

	// Default expansion: a latency scenario skips round engines.
	rep, err := agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{{File: "timing.scenario", Text: latencyScenario}},
	})
	if err != nil {
		t.Fatalf("default expansion: %v", err)
	}
	if rep.Ran != 1 || rep.Skipped != 2 || rep.Failed != 0 {
		t.Fatalf("Ran/Skipped/Failed = %d/%d/%d, want 1/2/0", rep.Ran, rep.Skipped, rep.Failed)
	}
	for _, r := range rep.Results {
		if r.Skipped && !strings.Contains(r.SkipReason, "timed capability") {
			t.Errorf("skip reason %q does not explain the capability gap", r.SkipReason)
		}
	}

	// The Engines override is a sweep knob with the same skip semantics.
	rep, err = agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{{File: "timing.scenario", Text: latencyScenario}},
		Engines: []agree.EngineKind{agree.EngineLockstep},
	})
	if err != nil {
		t.Fatalf("override expansion: %v", err)
	}
	if rep.Ran != 0 || rep.Skipped != 1 {
		t.Fatalf("override: Ran/Skipped = %d/%d, want 0/1", rep.Ran, rep.Skipped)
	}

	// A scenario's own engines list is strict: a round engine under a latency
	// model is a load error naming the file, not a silent skip.
	strict := "scenario: timing/strict\nn: 4\nengines: lockstep\nlatency: fixed d=1 delta=0.1\nexpect: pass\n"
	_, err = agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{{File: "strict.scenario", Text: strict}},
	})
	if err == nil || !strings.Contains(err.Error(), "strict.scenario") || !strings.Contains(err.Error(), "timed capability") {
		t.Fatalf("strict engine mismatch not a load error: %v", err)
	}

	// Unknown kinds are errors in both positions.
	if _, err := agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{{Text: "scenario: x\nn: 3\nexpect: pass\n"}},
		Engines: []agree.EngineKind{"quantum"},
	}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown override engine not caught: %v", err)
	}
	if _, err := agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{{Text: "scenario: x\nn: 3\nengines: quantum\nexpect: pass\n"}},
	}); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Fatalf("unknown scenario engine not caught: %v", err)
	}
}

func TestScenarioNameSelection(t *testing.T) {
	dir := smallCatalog(t)
	rep, err := agree.RunScenarios(agree.ScenarioOptions{
		Dir:     dir,
		Names:   []string{"omission/send", "crash/coordinator"},
		Engines: []agree.EngineKind{agree.EngineDeterministic},
	})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	if len(rep.Results) != 2 || rep.Results[0].Name != "omission/send" || rep.Results[1].Name != "crash/coordinator" {
		t.Fatalf("name selection order wrong: %+v", rep.Results)
	}
	if _, err := agree.RunScenarios(agree.ScenarioOptions{Dir: dir, Names: []string{"no/such"}}); err == nil ||
		!strings.Contains(err.Error(), `unknown scenario "no/such"`) {
		t.Fatalf("unknown name not caught: %v", err)
	}
}

func TestScenarioDuplicateNamesRejected(t *testing.T) {
	src := agree.ScenarioSource{Text: "scenario: dup\nn: 3\nexpect: pass\n"}
	if _, err := agree.RunScenarios(agree.ScenarioOptions{
		Sources: []agree.ScenarioSource{src, src},
	}); err == nil || !strings.Contains(err.Error(), "duplicate scenario name") {
		t.Fatalf("duplicate names not caught: %v", err)
	}
}

// TestScenarioSimTimePinning checks that a timed scenario can pin its exact
// simulated completion time: the same scenario re-run must reproduce SimTime
// bit-for-bit, and a wrong pin must fail naming the field.
func TestScenarioSimTimePinning(t *testing.T) {
	probe := agree.ScenarioSource{
		File: "probe.scenario",
		Text: "scenario: timing/pin\nn: 4\nengines: timed\nlatency: fixed d=1 delta=0.1\nexpect: pass\n",
	}
	rep, err := agree.RunScenarios(agree.ScenarioOptions{Sources: []agree.ScenarioSource{probe}})
	if err != nil || rep.Failed != 0 {
		t.Fatalf("probe run: err=%v failed=%d", err, rep.Failed)
	}
	simTime := rep.Results[0].SimTime
	if simTime <= 0 {
		t.Fatalf("timed run has no SimTime: %+v", rep.Results[0])
	}

	pinned := probe
	pinned.Text = strings.Replace(probe.Text, "expect: pass\n",
		"expect: pass\nsimtime: "+strconv.FormatFloat(simTime, 'g', -1, 64)+"\n", 1)
	rep, err = agree.RunScenarios(agree.ScenarioOptions{Sources: []agree.ScenarioSource{pinned}})
	if err != nil {
		t.Fatalf("pinned run: %v", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("exact simtime pin did not reproduce (pinned %g): %v", simTime, rep.Results[0].Err)
	}

	wrong := probe
	wrong.Text = strings.Replace(probe.Text, "expect: pass\n", "expect: pass\nsimtime-max: 0.001\n", 1)
	rep, err = agree.RunScenarios(agree.ScenarioOptions{Sources: []agree.ScenarioSource{wrong}})
	if err != nil {
		t.Fatalf("wrong-pin run: %v", err)
	}
	if rep.Failed != 1 || !strings.Contains(rep.Results[0].Err.Error(), "simtime") {
		t.Fatalf("wrong simtime bound not caught: %+v", rep.Results[0])
	}
}
