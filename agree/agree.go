// Package agree is the public API of the reproduction: one call configures
// and executes a uniform-consensus run under any of the implemented
// protocols, models, engines and fault scenarios, and returns a validated
// report.
//
// The three protocols are the paper's algorithm (ProtocolCRW, extended
// synchronous model, decides in at most f+1 rounds) and the two classic-model
// baselines it is measured against (ProtocolEarlyStop, min(f+2, t+1) rounds;
// ProtocolFloodSet, always t+1 rounds).
//
// Quickstart:
//
//	report, err := agree.Run(agree.Config{
//	    N:        8,
//	    Protocol: agree.ProtocolCRW,
//	    Faults:   agree.CoordinatorCrashes(2),
//	})
//	// report.Rounds == 3 (= f+1), report.Decisions all equal.
package agree

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/consensus/earlystop"
	"repro/internal/consensus/floodset"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simulate"
)

// Protocol selects the consensus algorithm.
type Protocol string

// Implemented protocols.
const (
	// ProtocolCRW is the paper's rotating-coordinator algorithm for the
	// extended synchronous model (Figure 1).
	ProtocolCRW Protocol = "crw"
	// ProtocolEarlyStop is the classic-model early-stopping uniform
	// consensus baseline (min(f+2, t+1) rounds).
	ProtocolEarlyStop Protocol = "earlystop"
	// ProtocolFloodSet is the classic FloodSet baseline (t+1 rounds).
	ProtocolFloodSet Protocol = "floodset"
)

// EngineKind selects the execution engine.
type EngineKind string

// Implemented engines.
const (
	// EngineDeterministic is the sequential round engine (exact, fast,
	// exhaustively explorable).
	EngineDeterministic EngineKind = "deterministic"
	// EngineLockstep runs one goroutine per process with channel-based
	// message delivery and barrier-synchronized rounds.
	EngineLockstep EngineKind = "lockstep"
	// EngineTimed is the continuous-time discrete-event engine: every
	// message is a timed event priced by a latency model (Config.Latency),
	// round boundaries emerge from timers, and the report carries the
	// measured completion time (Report.SimTime). Latencies beyond the
	// synchrony bound become receive omissions — timing faults.
	EngineTimed EngineKind = "timed"
)

// FaultSpec describes the fault scenario of a run: crash faults, omission
// faults, or a mix of both.
type FaultSpec struct {
	kind       string
	f          int
	deliver    bool
	ctrlPrefix int
	seed       int64
	prob       float64
	recvProb   float64
	max        int
	script     map[sim.ProcID]adversary.CrashPlan
	oscript    map[sim.ProcID][]adversary.OmissionPlan
	fscript    fuzz.Script
}

// NoFaults returns the failure-free scenario.
func NoFaults() FaultSpec { return FaultSpec{kind: "none"} }

// CoordinatorCrashes crashes the coordinator of each of the first f rounds
// silently (no messages escape) — the worst case schedule that forces the
// paper's algorithm to its f+1 bound.
func CoordinatorCrashes(f int) FaultSpec {
	return FaultSpec{kind: "coordkiller", f: f, ctrlPrefix: 0}
}

// CoordinatorCrashesDelivering crashes the first f coordinators after their
// data step completed, with ctrlPrefix control messages escaping
// (adversary.CtrlAll for the full sequence).
func CoordinatorCrashesDelivering(f, ctrlPrefix int) FaultSpec {
	return FaultSpec{kind: "coordkiller", f: f, deliver: true, ctrlPrefix: ctrlPrefix}
}

// RandomFaults crashes each alive process with probability prob per round,
// at most max crashes total, deterministically for a seed.
func RandomFaults(seed int64, prob float64, max int) FaultSpec {
	return FaultSpec{kind: "random", seed: seed, prob: prob, max: max}
}

// ScriptedFaults uses explicit per-process crash plans.
func ScriptedFaults(plans map[int]CrashPlan) FaultSpec {
	script := map[sim.ProcID]adversary.CrashPlan{}
	for p, cp := range plans {
		script[sim.ProcID(p)] = adversary.CrashPlan{
			Round:          sim.Round(cp.Round),
			DeliverAllData: cp.DeliverAllData,
			DataMask:       cp.DataMask,
			CtrlPrefix:     cp.CtrlPrefix,
		}
	}
	return FaultSpec{kind: "script", script: script}
}

// ReplayFaults replays a crash schedule recorded by the fuzzer (agree.Fuzz,
// cmd/agreefuzz), given in the script format of its findings:
// ';'-joined events "p<proc>@r<round>:<data mask>/<ctrl prefix>", the empty
// string being the failure-free schedule. Replay is a pure function of
// (process, round), so the spec is order-insensitive and cross-checks
// cleanly on every engine.
func ReplayFaults(script string) (FaultSpec, error) {
	s, err := fuzz.Parse(script)
	if err != nil {
		return FaultSpec{}, err
	}
	return FaultSpec{kind: "fuzzscript", fscript: s}, nil
}

// CrashPlan mirrors adversary.CrashPlan for the public API.
type CrashPlan struct {
	Round          int
	DeliverAllData bool
	DataMask       []bool
	CtrlPrefix     int
}

// CtrlAll requests full control delivery in a CrashPlan.
const CtrlAll = adversary.CtrlAll

// OmissionPlan mirrors adversary.OmissionPlan for the public API: the
// send/receive omissions of one process in one round. The process stays
// alive — unlike a crash, omissions are repeatable across rounds and the
// faulty process keeps participating in the protocol.
type OmissionPlan struct {
	// Round is the 1-based round the omissions apply to.
	Round int
	// SendData selects which data messages of the round's send plan are
	// transmitted ('true' = transmitted, positional, missing positions
	// transmitted); nil omits nothing from the data step.
	SendData []bool
	// SendCtrl selects which control messages are transmitted — any subset,
	// not just a prefix (the sender is alive and executes the whole step).
	SendCtrl []bool
	// DropAllSend suppresses the entire send plan.
	DropAllSend bool
	// Recv selects which senders' messages reach the process this round
	// (index i = process i+1, 'true' = delivered, missing delivered).
	Recv []bool
	// DropAllRecv suppresses every delivery to the process this round.
	DropAllRecv bool
}

// OmissionFaults returns a randomized omission scenario: at most maxFaulty
// distinct processes turn omission faulty, each omitting every message it
// sends with probability sendProb and blocking each inbound sender with
// probability recvProb per round, deterministically for a seed. With
// maxFaulty = n and recvProb = 0 this is the classic lossy-channel ablation.
//
// Like RandomFaults, the spec is order-sensitive (the adversary is stateful),
// so it is skipped by cross-engine checking.
func OmissionFaults(seed int64, sendProb, recvProb float64, maxFaulty int) FaultSpec {
	return FaultSpec{kind: "randomomit", seed: seed, prob: sendProb, recvProb: recvProb, max: maxFaulty}
}

// ScriptedOmissions uses explicit per-process omission plans (several rounds
// per process allowed). The spec is a pure function of (process, round), so
// it cross-checks cleanly on every engine.
func ScriptedOmissions(plans map[int][]OmissionPlan) FaultSpec {
	return FaultSpec{kind: "omitscript", oscript: convertOmissionPlans(plans)}
}

// CrashesWithOmissions combines scripted crash plans with scripted omission
// plans into one mixed fault scenario: crashes remove processes for good,
// omissions degrade the communication of processes that stay alive. A
// process may appear in both maps as long as its omissions happen strictly
// before its crash round.
func CrashesWithOmissions(crashes map[int]CrashPlan, omissions map[int][]OmissionPlan) FaultSpec {
	spec := ScriptedFaults(crashes)
	spec.kind = "mixed"
	spec.oscript = convertOmissionPlans(omissions)
	return spec
}

// convertOmissionPlans maps the public plans onto the adversary layer.
func convertOmissionPlans(plans map[int][]OmissionPlan) map[sim.ProcID][]adversary.OmissionPlan {
	out := map[sim.ProcID][]adversary.OmissionPlan{}
	for p, ops := range plans {
		for _, op := range ops {
			out[sim.ProcID(p)] = append(out[sim.ProcID(p)], adversary.OmissionPlan{
				Round:       sim.Round(op.Round),
				SendData:    op.SendData,
				SendCtrl:    op.SendCtrl,
				DropAllSend: op.DropAllSend,
				Recv:        op.Recv,
				DropAllRecv: op.DropAllRecv,
			})
		}
	}
	return out
}

// build materializes the adversary for an n-process system.
func (f FaultSpec) build(n int) sim.Adversary {
	switch f.kind {
	case "coordkiller":
		return adversary.CoordinatorKiller{F: f.f, DeliverAllData: f.deliver, CtrlPrefix: f.ctrlPrefix}
	case "random":
		return adversary.NewRandom(f.seed, f.prob, f.max)
	case "script":
		return adversary.NewScript(f.script)
	case "randomomit":
		return adversary.NewRandomOmission(f.seed, f.prob, f.recvProb, f.max, n)
	case "omitscript":
		return adversary.NewOmissionScript(n, f.oscript)
	case "mixed":
		return adversary.Combine(adversary.NewScript(f.script), adversary.NewOmissionScript(n, f.oscript))
	case "fuzzscript":
		return f.fscript.Adversary()
	default:
		return adversary.None{}
	}
}

// validate rejects fault scenarios that are nonsensical for an n-process
// system. Historically these were silently clamped or ignored (a negative f
// crashed nobody, an out-of-range control prefix became 0, a scripted crash
// of p9 in a 4-process run never fired), which made misconfigured sweeps
// look like passing ones; every such case is now a configuration error.
func (f FaultSpec) validate(n int) error {
	switch f.kind {
	case "coordkiller":
		if f.f < 0 {
			return fmt.Errorf("agree: coordinator crash count f=%d is negative", f.f)
		}
		if f.f >= n {
			return fmt.Errorf("agree: coordinator crash count f=%d must leave a survivor (n=%d, so f <= %d)", f.f, n, n-1)
		}
		if f.ctrlPrefix < CtrlAll || f.ctrlPrefix > n-1 {
			return fmt.Errorf("agree: control prefix %d out of range (0..%d, or agree.CtrlAll for the full sequence)", f.ctrlPrefix, n-1)
		}
	case "random":
		if f.prob < 0 || f.prob > 1 {
			return fmt.Errorf("agree: crash probability %g out of [0, 1]", f.prob)
		}
		if f.max < 0 {
			return fmt.Errorf("agree: crash budget max=%d is negative", f.max)
		}
		if f.max >= n {
			return fmt.Errorf("agree: crash budget max=%d must leave a survivor (n=%d, so max <= %d)", f.max, n, n-1)
		}
	case "script":
		if err := validateCrashScript(f.script, n); err != nil {
			return err
		}
	case "randomomit":
		if f.prob < 0 || f.prob > 1 {
			return fmt.Errorf("agree: send-omission probability %g out of [0, 1]", f.prob)
		}
		if f.recvProb < 0 || f.recvProb > 1 {
			return fmt.Errorf("agree: receive-omission probability %g out of [0, 1]", f.recvProb)
		}
		if f.max < 0 {
			return fmt.Errorf("agree: omission-faulty budget max=%d is negative", f.max)
		}
		if f.max > n {
			return fmt.Errorf("agree: omission-faulty budget max=%d exceeds the system size n=%d", f.max, n)
		}
	case "omitscript":
		if err := validateOmissionScript(f.oscript, nil, n); err != nil {
			return err
		}
	case "mixed":
		if err := validateCrashScript(f.script, n); err != nil {
			return err
		}
		if err := validateOmissionScript(f.oscript, f.script, n); err != nil {
			return err
		}
	case "fuzzscript":
		for _, e := range f.fscript.Events {
			if e.Proc > n {
				return fmt.Errorf("agree: replay script faults nonexistent p%d (n=%d)", e.Proc, n)
			}
			if e.Ctrl > n-1 {
				return fmt.Errorf("agree: replay script control prefix %d of p%d out of range (0..%d)", e.Ctrl, e.Proc, n-1)
			}
			if len(e.From) > n {
				return fmt.Errorf("agree: replay script receive-omission mask of p%d names %d senders (n=%d)", e.Proc, len(e.From), n)
			}
		}
		if f.fscript.Crashes() >= n && n > 0 {
			return fmt.Errorf("agree: replay script crashes all %d processes; a run needs a survivor", n)
		}
	}
	return nil
}

// validateCrashScript applies the scripted-crash rules: processes exist,
// rounds are 1-based, control prefixes are in range, and somebody survives.
func validateCrashScript(script map[sim.ProcID]adversary.CrashPlan, n int) error {
	crashes := 0
	for p, cp := range script {
		if p < 1 || int(p) > n {
			return fmt.Errorf("agree: scripted crash of nonexistent p%d (n=%d)", p, n)
		}
		if cp.Round < 1 {
			return fmt.Errorf("agree: scripted crash of p%d in round %d (rounds are 1-based)", p, cp.Round)
		}
		if cp.CtrlPrefix < adversary.CtrlAll || cp.CtrlPrefix > n-1 {
			return fmt.Errorf("agree: scripted control prefix %d of p%d out of range (0..%d, or agree.CtrlAll)", cp.CtrlPrefix, p, n-1)
		}
		crashes++
	}
	if crashes >= n && n > 0 {
		return fmt.Errorf("agree: script crashes all %d processes; a run needs a survivor", n)
	}
	return nil
}

// validateOmissionScript applies the scripted-omission rules: processes
// exist, rounds are 1-based, receive masks name existing processes, no
// duplicate (process, round) plan, and — given the crash script of a mixed
// spec — omissions strictly precede the process's crash round (from that
// round on the process sends and receives nothing, so a later omission could
// never fire and the configuration is almost certainly a mistake).
func validateOmissionScript(oscript map[sim.ProcID][]adversary.OmissionPlan,
	crashes map[sim.ProcID]adversary.CrashPlan, n int) error {
	for p, ops := range oscript {
		if p < 1 || int(p) > n {
			return fmt.Errorf("agree: scripted omission of nonexistent p%d (n=%d)", p, n)
		}
		rounds := map[sim.Round]bool{}
		for _, op := range ops {
			if op.Round < 1 {
				return fmt.Errorf("agree: scripted omission of p%d in round %d (rounds are 1-based)", p, op.Round)
			}
			if rounds[op.Round] {
				return fmt.Errorf("agree: p%d has two omission plans for round %d", p, op.Round)
			}
			rounds[op.Round] = true
			if len(op.Recv) > n {
				return fmt.Errorf("agree: receive-omission mask of p%d names %d senders (n=%d)", p, len(op.Recv), n)
			}
			if cp, crashed := crashes[p]; crashed && op.Round >= cp.Round {
				return fmt.Errorf("agree: omission of p%d in round %d at or after its crash round %d", p, op.Round, cp.Round)
			}
		}
	}
	return nil
}

// budget derives the fault budget a spec is allowed to spend on an n-process
// system — the bound the crash-budget and omission-budget laws audit every
// run against. A spec that can never crash (or never omit) gets a zero
// budget for that class, so a single leaked fault is a law violation.
func (f FaultSpec) budget(n int) laws.Budget {
	switch f.kind {
	case "coordkiller":
		return laws.Budget{Crashes: f.f, Omissive: 0}
	case "random":
		return laws.Budget{Crashes: f.max, Omissive: 0}
	case "script":
		return laws.Budget{Crashes: len(f.script), Omissive: 0}
	case "randomomit":
		return laws.Budget{Crashes: 0, Omissive: f.max}
	case "omitscript":
		return laws.Budget{Crashes: 0, Omissive: len(f.oscript)}
	case "mixed":
		return laws.Budget{Crashes: len(f.script), Omissive: len(f.oscript)}
	case "fuzzscript":
		return laws.Budget{Crashes: f.fscript.Crashes(), Omissive: f.fscript.OmissiveProcs()}
	default: // "none" and the zero spec fault nobody
		return laws.Budget{Crashes: 0, Omissive: 0}
	}
}

// orderInsensitive reports whether the spec's adversary is a pure function
// of (process, round). Cross-engine comparison requires it: the lockstep
// runtime consults the adversary in goroutine scheduling order, so a
// stateful randomized adversary — crash or omission — can legitimately
// diverge between engines.
func (f FaultSpec) orderInsensitive() bool { return f.kind != "random" && f.kind != "randomomit" }

// Config configures a run.
type Config struct {
	// N is the number of processes (required).
	N int
	// T is the resilience bound for the classic baselines; 0 defaults to
	// N-1 (crash-stop consensus tolerates any minority-free bound).
	T int
	// Protocol selects the algorithm (default ProtocolCRW).
	Protocol Protocol
	// Engine selects the execution engine (default EngineDeterministic).
	Engine EngineKind
	// Proposals are the proposed values; nil defaults to 100+i for p_{i+1}.
	Proposals []int64
	// Bits is the proposal bit width b used for Theorem 2 accounting
	// (default 64).
	Bits int
	// Faults is the crash scenario (default NoFaults).
	Faults FaultSpec
	// Latency configures the latency model of a continuous-time run; it
	// requires an engine with the timed capability (EngineTimed). The zero
	// value selects the engine's default within-bound model.
	Latency LatencySpec
	// SimulateOnClassic runs the extended-model protocol through the
	// Section 2.2 simulation on top of the classic model (CRW only).
	SimulateOnClassic bool
	// Trace enables the execution transcript in the report (deterministic
	// engine only).
	Trace bool
	// Diagram additionally renders a space-time diagram of the execution
	// (implies Trace).
	Diagram bool
	// Telemetry records simulated-time spans and metric timelines for the
	// run and attaches them to Report.Telemetry. All engines support it; the
	// recorded content is a pure function of the configuration on
	// deterministic engines (see VerifyTelemetryDeterminism).
	Telemetry bool
}

// Report is the validated outcome of a run.
type Report struct {
	// Rounds is the number of rounds executed (micro rounds when
	// SimulateOnClassic is set; see MacroRounds).
	Rounds int
	// MacroRounds is the extended-model round count (equals Rounds except
	// under SimulateOnClassic).
	MacroRounds int
	// Decisions maps process id to decided value.
	Decisions map[int]int64
	// DecideRound maps process id to decision round.
	DecideRound map[int]int
	// Crashed maps crashed process ids to crash rounds.
	Crashed map[int]int
	// Omissive maps omission-faulty process ids to their number of omissive
	// rounds; omission-faulty processes stay alive and appear in Decisions.
	Omissive map[int]int
	// Counters holds communication costs.
	Counters metrics.Counters
	// Ledger is the delivery ledger of the run: the per-kind fate of every
	// transmitted message, satisfying the conservation identity
	// sent == delivered + recv-omitted + late + dead-dest + halted-dest
	// (audited on every run by internal/laws).
	Ledger metrics.Ledger
	// SimTime is the measured completion time of the run in the latency
	// model's time units; zero on round-abstraction engines. Cross-engine
	// comparison excludes it: it prices the execution, it does not change
	// it.
	SimTime float64
	// ConsensusErr is nil when the run satisfies uniform consensus
	// (validity, uniform agreement, termination).
	ConsensusErr error
	// Transcript is the execution trace when Config.Trace was set.
	Transcript string
	// Diagram is the rendered space-time diagram when Config.Diagram was
	// set.
	Diagram string
	// Telemetry holds the run's spans and metric timelines when
	// Config.Telemetry was set; nil otherwise. It is an in-memory attachment,
	// deliberately excluded from the report's JSON form — export it
	// explicitly with ChromeTrace, MetricsJSON or Timeline.
	Telemetry *Telemetry
}

// Faults returns the number of crashes that occurred.
func (r *Report) Faults() int { return len(r.Crashed) }

// OmissionFaulty returns the number of processes that committed at least one
// omission fault.
func (r *Report) OmissionFaulty() int { return len(r.Omissive) }

// MaxDecideRound returns the latest decision round (macro rounds under
// simulation).
func (r *Report) MaxDecideRound() int {
	max := 0
	for _, rd := range r.DecideRound {
		if rd > max {
			max = rd
		}
	}
	return max
}

// Run executes one consensus instance and validates it. It is the
// single-config path of the sweep runner: the engine is resolved through
// the harness registry — never by a switch in this package — but the batch
// scaffolding (report slice, aggregate fold) is skipped, keeping the
// library's primary entry point lean.
func Run(cfg Config) (*Report, error) {
	cache := harness.NewCache()
	defer cache.Close()
	return runConfig(cfg, cache)
}

// normalize validates a config, fills in the defaults, and materializes the
// proposal vector. It returns the normalized copy.
func normalize(cfg Config) (Config, []sim.Value, error) {
	if cfg.N < 1 {
		return cfg, nil, errors.New("agree: N must be at least 1")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolCRW
	}
	if cfg.Engine == "" {
		cfg.Engine = EngineDeterministic
	}
	if cfg.T <= 0 || cfg.T >= cfg.N {
		cfg.T = cfg.N - 1
	}
	if cfg.N == 1 {
		cfg.T = 0
	}
	if cfg.Diagram {
		cfg.Trace = true
	}
	if err := cfg.Faults.validate(cfg.N); err != nil {
		return cfg, nil, err
	}
	if err := cfg.Latency.validate(); err != nil {
		return cfg, nil, err
	}
	proposals := make([]sim.Value, cfg.N)
	for i := range proposals {
		if cfg.Proposals != nil {
			if len(cfg.Proposals) != cfg.N {
				return cfg, nil, fmt.Errorf("agree: %d proposals for %d processes", len(cfg.Proposals), cfg.N)
			}
			proposals[i] = sim.Value(cfg.Proposals[i])
		} else {
			proposals[i] = sim.Value(100 + i)
		}
	}
	return cfg, proposals, nil
}

// buildProtocol constructs the process set, model, and horizon for a config.
func buildProtocol(cfg Config, proposals []sim.Value) ([]sim.Process, sim.Model, sim.Round, error) {
	switch cfg.Protocol {
	case ProtocolCRW:
		procs := core.NewSystem(proposals, core.Options{Bits: cfg.Bits})
		horizon := sim.Round(cfg.N + 2)
		if cfg.SimulateOnClassic {
			return simulate.OnClassic(procs), sim.ModelClassic,
				simulate.MicroRounds(horizon, cfg.N), nil
		}
		return procs, sim.ModelExtended, horizon, nil
	case ProtocolEarlyStop:
		if cfg.SimulateOnClassic {
			return nil, 0, 0, errors.New("agree: SimulateOnClassic applies to the CRW protocol only")
		}
		return earlystop.NewSystem(proposals, cfg.T, cfg.Bits), sim.ModelClassic,
			sim.Round(cfg.T + 2), nil
	case ProtocolFloodSet:
		if cfg.SimulateOnClassic {
			return nil, 0, 0, errors.New("agree: SimulateOnClassic applies to the CRW protocol only")
		}
		return floodset.NewSystem(proposals, cfg.T, cfg.Bits), sim.ModelClassic,
			sim.Round(cfg.T + 2), nil
	default:
		return nil, 0, 0, fmt.Errorf("agree: unknown protocol %q", cfg.Protocol)
	}
}
