// Package agree is the public API of the reproduction: one call configures
// and executes a uniform-consensus run under any of the implemented
// protocols, models, engines and fault scenarios, and returns a validated
// report.
//
// The three protocols are the paper's algorithm (ProtocolCRW, extended
// synchronous model, decides in at most f+1 rounds) and the two classic-model
// baselines it is measured against (ProtocolEarlyStop, min(f+2, t+1) rounds;
// ProtocolFloodSet, always t+1 rounds).
//
// Quickstart:
//
//	report, err := agree.Run(agree.Config{
//	    N:        8,
//	    Protocol: agree.ProtocolCRW,
//	    Faults:   agree.CoordinatorCrashes(2),
//	})
//	// report.Rounds == 3 (= f+1), report.Decisions all equal.
package agree

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/consensus/earlystop"
	"repro/internal/consensus/floodset"
	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/lockstep"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/simulate"
	"repro/internal/trace"
)

// Protocol selects the consensus algorithm.
type Protocol string

// Implemented protocols.
const (
	// ProtocolCRW is the paper's rotating-coordinator algorithm for the
	// extended synchronous model (Figure 1).
	ProtocolCRW Protocol = "crw"
	// ProtocolEarlyStop is the classic-model early-stopping uniform
	// consensus baseline (min(f+2, t+1) rounds).
	ProtocolEarlyStop Protocol = "earlystop"
	// ProtocolFloodSet is the classic FloodSet baseline (t+1 rounds).
	ProtocolFloodSet Protocol = "floodset"
)

// EngineKind selects the execution engine.
type EngineKind string

// Implemented engines.
const (
	// EngineDeterministic is the sequential round engine (exact, fast,
	// exhaustively explorable).
	EngineDeterministic EngineKind = "deterministic"
	// EngineLockstep runs one goroutine per process with channel-based
	// message delivery and barrier-synchronized rounds.
	EngineLockstep EngineKind = "lockstep"
)

// FaultSpec describes the crash scenario of a run.
type FaultSpec struct {
	kind       string
	f          int
	deliver    bool
	ctrlPrefix int
	seed       int64
	prob       float64
	max        int
	script     map[sim.ProcID]adversary.CrashPlan
}

// NoFaults returns the failure-free scenario.
func NoFaults() FaultSpec { return FaultSpec{kind: "none"} }

// CoordinatorCrashes crashes the coordinator of each of the first f rounds
// silently (no messages escape) — the worst case schedule that forces the
// paper's algorithm to its f+1 bound.
func CoordinatorCrashes(f int) FaultSpec {
	return FaultSpec{kind: "coordkiller", f: f, ctrlPrefix: 0}
}

// CoordinatorCrashesDelivering crashes the first f coordinators after their
// data step completed, with ctrlPrefix control messages escaping
// (adversary.CtrlAll for the full sequence).
func CoordinatorCrashesDelivering(f, ctrlPrefix int) FaultSpec {
	return FaultSpec{kind: "coordkiller", f: f, deliver: true, ctrlPrefix: ctrlPrefix}
}

// RandomFaults crashes each alive process with probability prob per round,
// at most max crashes total, deterministically for a seed.
func RandomFaults(seed int64, prob float64, max int) FaultSpec {
	return FaultSpec{kind: "random", seed: seed, prob: prob, max: max}
}

// ScriptedFaults uses explicit per-process crash plans.
func ScriptedFaults(plans map[int]CrashPlan) FaultSpec {
	script := map[sim.ProcID]adversary.CrashPlan{}
	for p, cp := range plans {
		script[sim.ProcID(p)] = adversary.CrashPlan{
			Round:          sim.Round(cp.Round),
			DeliverAllData: cp.DeliverAllData,
			DataMask:       cp.DataMask,
			CtrlPrefix:     cp.CtrlPrefix,
		}
	}
	return FaultSpec{kind: "script", script: script}
}

// CrashPlan mirrors adversary.CrashPlan for the public API.
type CrashPlan struct {
	Round          int
	DeliverAllData bool
	DataMask       []bool
	CtrlPrefix     int
}

// CtrlAll requests full control delivery in a CrashPlan.
const CtrlAll = adversary.CtrlAll

// build materializes the adversary.
func (f FaultSpec) build() sim.Adversary {
	switch f.kind {
	case "coordkiller":
		return adversary.CoordinatorKiller{F: f.f, DeliverAllData: f.deliver, CtrlPrefix: f.ctrlPrefix}
	case "random":
		return adversary.NewRandom(f.seed, f.prob, f.max)
	case "script":
		return adversary.NewScript(f.script)
	default:
		return adversary.None{}
	}
}

// Config configures a run.
type Config struct {
	// N is the number of processes (required).
	N int
	// T is the resilience bound for the classic baselines; 0 defaults to
	// N-1 (crash-stop consensus tolerates any minority-free bound).
	T int
	// Protocol selects the algorithm (default ProtocolCRW).
	Protocol Protocol
	// Engine selects the execution engine (default EngineDeterministic).
	Engine EngineKind
	// Proposals are the proposed values; nil defaults to 100+i for p_{i+1}.
	Proposals []int64
	// Bits is the proposal bit width b used for Theorem 2 accounting
	// (default 64).
	Bits int
	// Faults is the crash scenario (default NoFaults).
	Faults FaultSpec
	// SimulateOnClassic runs the extended-model protocol through the
	// Section 2.2 simulation on top of the classic model (CRW only).
	SimulateOnClassic bool
	// Trace enables the execution transcript in the report (deterministic
	// engine only).
	Trace bool
	// Diagram additionally renders a space-time diagram of the execution
	// (implies Trace).
	Diagram bool
}

// Report is the validated outcome of a run.
type Report struct {
	// Rounds is the number of rounds executed (micro rounds when
	// SimulateOnClassic is set; see MacroRounds).
	Rounds int
	// MacroRounds is the extended-model round count (equals Rounds except
	// under SimulateOnClassic).
	MacroRounds int
	// Decisions maps process id to decided value.
	Decisions map[int]int64
	// DecideRound maps process id to decision round.
	DecideRound map[int]int
	// Crashed maps crashed process ids to crash rounds.
	Crashed map[int]int
	// Counters holds communication costs.
	Counters metrics.Counters
	// ConsensusErr is nil when the run satisfies uniform consensus
	// (validity, uniform agreement, termination).
	ConsensusErr error
	// Transcript is the execution trace when Config.Trace was set.
	Transcript string
	// Diagram is the rendered space-time diagram when Config.Diagram was
	// set.
	Diagram string
}

// Faults returns the number of crashes that occurred.
func (r *Report) Faults() int { return len(r.Crashed) }

// MaxDecideRound returns the latest decision round (macro rounds under
// simulation).
func (r *Report) MaxDecideRound() int {
	max := 0
	for _, rd := range r.DecideRound {
		if rd > max {
			max = rd
		}
	}
	return max
}

// Run executes one consensus instance and validates it.
func Run(cfg Config) (*Report, error) {
	if cfg.N < 1 {
		return nil, errors.New("agree: N must be at least 1")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolCRW
	}
	if cfg.Engine == "" {
		cfg.Engine = EngineDeterministic
	}
	if cfg.T <= 0 || cfg.T >= cfg.N {
		cfg.T = cfg.N - 1
	}
	if cfg.N == 1 {
		cfg.T = 0
	}
	proposals := make([]sim.Value, cfg.N)
	for i := range proposals {
		if cfg.Proposals != nil {
			if len(cfg.Proposals) != cfg.N {
				return nil, fmt.Errorf("agree: %d proposals for %d processes", len(cfg.Proposals), cfg.N)
			}
			proposals[i] = sim.Value(cfg.Proposals[i])
		} else {
			proposals[i] = sim.Value(100 + i)
		}
	}

	procs, model, horizon, err := buildProtocol(cfg, proposals)
	if err != nil {
		return nil, err
	}

	adv := cfg.Faults.build()
	if cfg.Diagram {
		cfg.Trace = true
	}
	var res *sim.Result
	var log *trace.Log
	switch cfg.Engine {
	case EngineDeterministic:
		if cfg.Trace {
			log = trace.New()
		}
		eng, err := sim.NewEngine(sim.Config{Model: model, Horizon: horizon, Trace: log}, procs, adv)
		if err != nil {
			return nil, err
		}
		res, err = eng.Run()
		if err != nil {
			return nil, err
		}
	case EngineLockstep:
		if cfg.Trace {
			return nil, errors.New("agree: tracing requires the deterministic engine")
		}
		rt, err := lockstep.New(lockstep.Config{Model: model, Horizon: horizon}, procs, adv)
		if err != nil {
			return nil, err
		}
		res, err = rt.Run()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("agree: unknown engine %q", cfg.Engine)
	}

	rep := &Report{
		Rounds:       int(res.Rounds),
		MacroRounds:  int(res.Rounds),
		Decisions:    make(map[int]int64, len(res.Decisions)),
		DecideRound:  make(map[int]int, len(res.DecideRound)),
		Crashed:      make(map[int]int, len(res.Crashed)),
		Counters:     res.Counters,
		ConsensusErr: check.Consensus(proposals, res),
	}
	if cfg.SimulateOnClassic {
		rep.MacroRounds = int(simulate.MacroRound(res.Rounds, cfg.N))
	}
	for id, v := range res.Decisions {
		rep.Decisions[int(id)] = int64(v)
		dr := res.DecideRound[id]
		if cfg.SimulateOnClassic {
			dr = simulate.MacroRound(dr, cfg.N)
		}
		rep.DecideRound[int(id)] = int(dr)
	}
	for id, r := range res.Crashed {
		rep.Crashed[int(id)] = int(r)
	}
	if log != nil {
		rep.Transcript = log.String()
		if cfg.Diagram {
			rep.Diagram = diagram.Render(log, cfg.N)
		}
	}
	return rep, nil
}

// buildProtocol constructs the process set, model, and horizon for a config.
func buildProtocol(cfg Config, proposals []sim.Value) ([]sim.Process, sim.Model, sim.Round, error) {
	switch cfg.Protocol {
	case ProtocolCRW:
		procs := core.NewSystem(proposals, core.Options{Bits: cfg.Bits})
		horizon := sim.Round(cfg.N + 2)
		if cfg.SimulateOnClassic {
			return simulate.OnClassic(procs), sim.ModelClassic,
				simulate.MicroRounds(horizon, cfg.N), nil
		}
		return procs, sim.ModelExtended, horizon, nil
	case ProtocolEarlyStop:
		if cfg.SimulateOnClassic {
			return nil, 0, 0, errors.New("agree: SimulateOnClassic applies to the CRW protocol only")
		}
		return earlystop.NewSystem(proposals, cfg.T, cfg.Bits), sim.ModelClassic,
			sim.Round(cfg.T + 2), nil
	case ProtocolFloodSet:
		if cfg.SimulateOnClassic {
			return nil, 0, 0, errors.New("agree: SimulateOnClassic applies to the CRW protocol only")
		}
		return floodset.NewSystem(proposals, cfg.T, cfg.Bits), sim.ModelClassic,
			sim.Round(cfg.T + 2), nil
	default:
		return nil, 0, 0, fmt.Errorf("agree: unknown protocol %q", cfg.Protocol)
	}
}
