package agree

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/sim"
)

// ExploreConfig configures an exhaustive exploration of the paper's
// algorithm (or one of its ablations): every crash schedule and delivery
// truncation the model allows for the given system size is enumerated and
// validated against uniform consensus and the f+1 round bound.
type ExploreConfig struct {
	// N is the number of processes (required; keep small — the space is
	// exhaustive).
	N int
	// T is the crash budget (default N-1).
	T int
	// OrderAscending flips the commit order to ascending (ablation: the f+1
	// bound fails).
	OrderAscending bool
	// CommitAsData folds the commit into the data step (ablation: uniform
	// agreement fails).
	CommitAsData bool
	// OmissionBudget additionally enumerates bounded-omission schedules: up
	// to this many omission events (send omissions of any non-empty message
	// subset, receive omissions of any non-empty sender subset) on top of
	// the crash schedules. The paper assumes reliable channels and crash
	// faults only, so with a non-zero budget the search is expected to find
	// agreement violations — the omission ablation. The f+1 round bound (a
	// crash-model theorem) is not checked when the budget is non-zero.
	OmissionBudget int
	// OmissionOnly zeroes the crash budget (T defaults to N-1 otherwise —
	// there is no way to express "no crashes" through T itself), so the
	// search enumerates pure omission schedules; it requires a non-zero
	// OmissionBudget. Every counterexample then contains zero crashes by
	// construction.
	OmissionOnly bool
	// Budget caps the number of executions (default 50,000,000).
	Budget int
	// MaxCounterexamples stops the search after this many violations
	// (default 1).
	MaxCounterexamples int
	// Parallel shards the choice space across a worker pool. The exploration
	// result is identical to the sequential one whenever the search runs to
	// completion (see check.ExploreParallel for the exact guarantee).
	Parallel bool
	// Workers sets the pool size when Parallel is set (0 = GOMAXPROCS).
	Workers int
}

// ExploreCounterexample is one violating execution, identified by its choice
// script (replayable via cmd/agreexplore -replay).
type ExploreCounterexample struct {
	// Script is the choice script reproducing the execution.
	Script []int
	// Err describes the violated property.
	Err error
}

// ExploreReport aggregates an exploration.
type ExploreReport struct {
	// Executions is the number of distinct executions explored.
	Executions int
	// MaxRounds is the maximum run length seen.
	MaxRounds int
	// MaxDecideRound is the latest decision round seen in any execution.
	MaxDecideRound int
	// MaxFaults is the largest number of crashes in any execution.
	MaxFaults int
	// Counterexamples are the violations found (empty for the faithful
	// algorithm).
	Counterexamples []ExploreCounterexample
}

// Explore exhaustively model-checks the configured system. It is the public
// face of the internal/check explorer, wired to the paper's algorithm.
func Explore(cfg ExploreConfig) (*ExploreReport, error) {
	if cfg.N < 1 {
		return nil, errors.New("agree: N must be at least 1")
	}
	if cfg.T <= 0 || cfg.T >= cfg.N {
		cfg.T = cfg.N - 1
	}
	if cfg.N == 1 {
		cfg.T = 0
	}
	if cfg.OmissionOnly {
		if cfg.OmissionBudget <= 0 {
			return nil, errors.New("agree: OmissionOnly requires a non-zero OmissionBudget")
		}
		cfg.T = 0
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 50_000_000
	}
	opts := core.Options{CommitAsData: cfg.CommitAsData}
	if cfg.OrderAscending {
		opts.Order = core.OrderAscending
	}
	model := sim.ModelExtended
	if cfg.CommitAsData {
		model = sim.ModelClassic
	}
	n, t, omit := cfg.N, cfg.T, cfg.OmissionBudget
	factory := func(ch interface{ Choose(int) int }) check.Execution {
		props := make([]sim.Value, n)
		for i := range props {
			props[i] = sim.Value(10 + i)
		}
		var adv sim.Adversary = adversary.NewFromChooser(ch, t, sim.Round(n))
		if omit > 0 {
			adv = adversary.NewFromChooserWithOmissions(ch, t, sim.Round(n), omit, n)
		}
		return check.Execution{
			Procs:     core.NewSystem(props, opts),
			Adv:       adv,
			Cfg:       sim.Config{Model: model, Horizon: sim.Round(n + 2)},
			Proposals: props,
		}
	}
	validator := func(ex check.Execution, res *sim.Result, engineErr error) error {
		if engineErr != nil {
			return engineErr
		}
		if err := check.Consensus(ex.Proposals, res); err != nil {
			return err
		}
		if omit > 0 {
			// The f+1 bound is a crash-model theorem; under omission
			// schedules only the consensus properties are checked.
			return nil
		}
		return check.RoundBound(res, check.BoundFPlus1)
	}
	eopts := check.ExploreOpts{
		Budget:             cfg.Budget,
		MaxCounterexamples: cfg.MaxCounterexamples,
		Workers:            cfg.Workers,
	}
	var stats check.Stats
	var err error
	if cfg.Parallel {
		stats, err = check.ExploreParallel(factory, validator, eopts)
	} else {
		stats, err = check.Explore(factory, validator, eopts)
	}
	if err != nil {
		return nil, fmt.Errorf("agree: explore: %w", err)
	}
	rep := &ExploreReport{
		Executions:     stats.Executions,
		MaxRounds:      int(stats.MaxRounds),
		MaxDecideRound: int(stats.MaxDecideRound),
		MaxFaults:      stats.MaxFaults,
	}
	for _, ce := range stats.Counterexamples {
		rep.Counterexamples = append(rep.Counterexamples, ExploreCounterexample{
			Script: ce.Script,
			Err:    ce.Err,
		})
	}
	return rep, nil
}
