package agree

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/diagram"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/metrics"
	"repro/internal/simulate"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// SweepOptions tunes a batch execution.
type SweepOptions struct {
	// Workers is the worker-pool size: 0 means GOMAXPROCS, 1 runs the batch
	// sequentially on the calling goroutine. Reports are returned in input
	// order and are identical for every worker count.
	Workers int
	// CrossCheck additionally runs every configuration on each other
	// registered engine that supports it and diffs the semantic outcome
	// (rounds, decisions, crash set, traffic counters) against the primary
	// report; a divergence surfaces as the item's Err. Configurations with
	// an order-sensitive fault spec (RandomFaults) are skipped — their
	// CrossChecked list stays empty.
	CrossCheck bool
	// Profile, when non-nil, accumulates wall-clock phase timings over the
	// whole sweep: queue-wait (worker idle + pool overhead), run (engine
	// execution), audit (laws + consensus validation + report assembly) and
	// cross-check. Wall-clock observability only — it never touches the
	// reports, which stay bit-identical with or without it.
	Profile *telemetry.Profile
}

// SweepItem is the outcome of one configuration of a sweep.
type SweepItem struct {
	// Config is the configuration as submitted.
	Config Config
	// Report is the validated report; nil when Err is a configuration or
	// engine error (it is retained alongside a cross-check divergence Err).
	Report *Report
	// Err is the run error, if any: invalid configuration, engine failure,
	// or cross-check divergence.
	Err error
	// CrossChecked lists the engines the report was additionally verified
	// against when SweepOptions.CrossCheck was set.
	CrossChecked []EngineKind
}

// SweepAggregate summarizes a sweep.
type SweepAggregate struct {
	// Configs is the number of configurations submitted.
	Configs int
	// Errored counts items whose Err is non-nil.
	Errored int
	// Violations counts error-free reports whose ConsensusErr is non-nil.
	Violations int
	// CrossChecked counts error-free items verified on at least one other
	// engine.
	CrossChecked int
	// RoundHistogram maps the latest decision round (macro rounds under
	// simulation) to the number of error-free runs that decided there.
	RoundHistogram map[int]int
	// Counters accumulates the traffic counters of every error-free run;
	// items with a non-nil Err (including cross-check divergences, which
	// keep their primary report) are excluded from all report-derived
	// aggregates.
	Counters metrics.Counters
	// EnginesBuilt and EngineReuses account for the worker pool's engine
	// caches: constructions vs jobs served by an already-built engine
	// (the Reusable capability's dividend). They are the only
	// worker-count-dependent fields of the aggregate — a pool of w workers
	// builds up to w engines per kind touched — and are excluded from the
	// sweep's bit-identical-across-worker-counts guarantee.
	EnginesBuilt int
	// EngineReuses counts jobs served by a previously-built engine.
	EngineReuses int
}

// SweepReport is the result of a Sweep: per-configuration items in input
// order plus the aggregate.
type SweepReport struct {
	Items     []SweepItem
	Aggregate SweepAggregate
}

// Sweep executes a batch of configurations across a worker pool. Each worker
// owns one engine per engine kind and rewinds it between configurations
// (sim.Engine.Reset), so a sweep of a thousand scenarios constructs a
// handful of engines. Items are returned in input order, bit-identical for
// every worker count; per-configuration failures are reported in the item,
// never by panicking or aborting the rest of the batch.
func Sweep(configs []Config, opts SweepOptions) *SweepReport {
	sr := &SweepReport{Items: make([]SweepItem, len(configs))}
	prof := opts.Profile
	stats := harness.ForEachProf(len(configs), opts.Workers, prof, func(cache *harness.Cache, i int) {
		item := &sr.Items[i]
		item.Config = configs[i]
		item.Report, item.Err = runConfigProf(configs[i], cache, prof)
		if item.Err != nil || !opts.CrossCheck {
			return
		}
		var t0 time.Time
		if prof.Enabled() {
			t0 = time.Now()
		}
		item.CrossChecked, item.Err = crossCheck(configs[i], item.Report, cache)
		if prof.Enabled() {
			prof.Add(telemetry.PhaseCrossCheck, time.Since(t0))
		}
	})
	agg := &sr.Aggregate
	agg.Configs = len(configs)
	agg.EnginesBuilt, agg.EngineReuses = stats.Built, stats.ReuseHits
	agg.RoundHistogram = make(map[int]int)
	for i := range sr.Items {
		item := &sr.Items[i]
		if item.Err != nil {
			// Errored items — including cross-check divergences, which
			// retain their primary report — contribute nothing else: the
			// histogram, counters and violation count cover exactly the
			// error-free runs.
			agg.Errored++
			continue
		}
		if len(item.CrossChecked) > 0 {
			agg.CrossChecked++
		}
		if item.Report.ConsensusErr != nil {
			agg.Violations++
		}
		agg.RoundHistogram[item.Report.MaxDecideRound()]++
		agg.Counters.Merge(item.Report.Counters)
	}
	return sr
}

// runConfig executes one configuration on an engine drawn from the worker's
// cache and assembles the validated report.
func runConfig(cfg Config, cache *harness.Cache) (*Report, error) {
	return runConfigProf(cfg, cache, nil)
}

// runConfigProf is runConfig with an optional wall-clock phase profile: the
// engine execution is charged to telemetry.PhaseRun, everything after it
// (law audit, consensus validation, report assembly) to telemetry.PhaseAudit.
// A nil profile reads no clocks.
func runConfigProf(cfg Config, cache *harness.Cache, prof *telemetry.Profile) (*Report, error) {
	cfg, proposals, err := normalize(cfg)
	if err != nil {
		return nil, err
	}
	kind := harness.Kind(cfg.Engine)
	caps, ok := harness.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("agree: unknown engine %q", cfg.Engine)
	}
	if cfg.Trace && !caps.Trace {
		feature := "Trace"
		if cfg.Diagram {
			feature = "Diagram"
		}
		return nil, fmt.Errorf("agree: Config.%s is not supported by engine %q (engine lacks the trace capability)",
			feature, cfg.Engine)
	}
	if !cfg.Latency.IsZero() && !caps.Timed {
		return nil, fmt.Errorf("agree: Config.Latency is not supported by engine %q (engine lacks the timed capability)",
			cfg.Engine)
	}
	procs, model, horizon, err := buildProtocol(cfg, proposals)
	if err != nil {
		return nil, err
	}
	var log *trace.Log
	if cfg.Trace {
		log = trace.New()
	}
	var rec *telemetry.Recorder
	if cfg.Telemetry {
		rec = telemetry.New()
	}
	eng, err := cache.Get(kind)
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if prof.Enabled() {
		t0 = time.Now()
	}
	res, err := eng.Run(harness.Job{
		Model:     model,
		Horizon:   horizon,
		Procs:     procs,
		Adv:       cfg.Faults.build(cfg.N),
		Trace:     log,
		Latency:   cfg.Latency.model(cfg.Bits),
		Telemetry: rec,
	})
	if prof.Enabled() {
		prof.Add(telemetry.PhaseRun, time.Since(t0))
		defer func(t time.Time) { prof.Add(telemetry.PhaseAudit, time.Since(t)) }(time.Now())
	}
	if err != nil {
		return nil, err
	}
	// The engine adapter audited the budget-free laws; the fault budget is
	// config knowledge the engines never see, so its law is audited here —
	// the single wiring point every Run, Sweep and cross-check goes through.
	if aerr := laws.AuditBudget(res, cfg.Faults.budget(cfg.N)); aerr != nil {
		return nil, aerr
	}

	rep := &Report{
		Rounds:       int(res.Rounds),
		MacroRounds:  int(res.Rounds),
		Decisions:    make(map[int]int64, len(res.Decisions)),
		DecideRound:  make(map[int]int, len(res.DecideRound)),
		Crashed:      make(map[int]int, len(res.Crashed)),
		Counters:     res.Counters,
		Ledger:       res.Ledger,
		SimTime:      res.SimTime,
		ConsensusErr: check.Consensus(proposals, res),
	}
	if cfg.SimulateOnClassic {
		rep.MacroRounds = int(simulate.MacroRound(res.Rounds, cfg.N))
	}
	for id, v := range res.Decisions {
		rep.Decisions[int(id)] = int64(v)
		dr := res.DecideRound[id]
		if cfg.SimulateOnClassic {
			dr = simulate.MacroRound(dr, cfg.N)
		}
		rep.DecideRound[int(id)] = int(dr)
	}
	for id, r := range res.Crashed {
		rep.Crashed[int(id)] = int(r)
	}
	for id, c := range res.Omissive {
		if rep.Omissive == nil {
			rep.Omissive = make(map[int]int, len(res.Omissive))
		}
		rep.Omissive[int(id)] = c
	}
	if log != nil {
		rep.Transcript = log.String()
		if cfg.Diagram {
			rep.Diagram = diagram.Render(log, cfg.N)
		}
	}
	if rec != nil {
		rep.Telemetry = &Telemetry{rec: rec}
	}
	return rep, nil
}

// crossCheck re-runs cfg on every other registered engine that supports it
// and diffs the semantic outcome against the primary report. It returns the
// engines compared; a non-nil error reports the first divergence (or a
// reference-engine failure). Order-sensitive fault specs are skipped
// entirely — comparing engines that consult a stateful adversary in
// different orders proves nothing.
func crossCheck(cfg Config, primary *Report, cache *harness.Cache) ([]EngineKind, error) {
	if !cfg.Faults.orderInsensitive() {
		return nil, nil
	}
	if !cfg.Latency.withinBound() {
		// An out-of-bound latency model injects timing faults — semantics
		// only continuous-time engines realize; comparing against the round
		// abstraction proves nothing.
		return nil, nil
	}
	primaryKind := cfg.Engine
	if primaryKind == "" {
		primaryKind = EngineDeterministic
	}
	var checked []EngineKind
	for _, kind := range harness.Kinds() {
		if kind == harness.Kind(primaryKind) {
			continue
		}
		ref := cfg
		ref.Engine = EngineKind(kind)
		ref.Trace, ref.Diagram, ref.Telemetry = false, false, false
		if caps, _ := harness.Lookup(kind); !caps.Timed {
			// A within-bound latency spec is semantically neutral — it only
			// prices the execution — so the round engines run the same
			// configuration without it.
			ref.Latency = LatencySpec{}
		}
		refRep, err := runConfig(ref, cache)
		if err != nil {
			return checked, fmt.Errorf("agree: crosscheck on engine %q: %w", kind, err)
		}
		if diff := diffReports(primary, refRep); diff != "" {
			return checked, fmt.Errorf("agree: crosscheck divergence between engines %q and %q: %s",
				primaryKind, kind, diff)
		}
		checked = append(checked, EngineKind(kind))
	}
	return checked, nil
}

// diffReports compares the semantic fields of two reports of the same
// configuration and returns a description of the first difference, or "".
// Transcript and Diagram are presentation artifacts of trace-capable
// engines, and SimTime is the continuous-time engines' price tag on the
// same semantic execution; all three are deliberately excluded.
func diffReports(a, b *Report) string {
	if a.Rounds != b.Rounds {
		return fmt.Sprintf("rounds %d vs %d", a.Rounds, b.Rounds)
	}
	if a.MacroRounds != b.MacroRounds {
		return fmt.Sprintf("macro rounds %d vs %d", a.MacroRounds, b.MacroRounds)
	}
	if len(a.Decisions) != len(b.Decisions) {
		return fmt.Sprintf("%d vs %d deciders", len(a.Decisions), len(b.Decisions))
	}
	for id, v := range a.Decisions {
		bv, ok := b.Decisions[id]
		if !ok {
			return fmt.Sprintf("p%d decided only on one engine", id)
		}
		if v != bv {
			return fmt.Sprintf("p%d decided %d vs %d", id, v, bv)
		}
		if a.DecideRound[id] != b.DecideRound[id] {
			return fmt.Sprintf("p%d decide round %d vs %d", id, a.DecideRound[id], b.DecideRound[id])
		}
	}
	if len(a.Crashed) != len(b.Crashed) {
		return fmt.Sprintf("%d vs %d crashes", len(a.Crashed), len(b.Crashed))
	}
	for id, r := range a.Crashed {
		if br, ok := b.Crashed[id]; !ok || r != br {
			return fmt.Sprintf("p%d crash round %d vs %d", id, r, br)
		}
	}
	if len(a.Omissive) != len(b.Omissive) {
		return fmt.Sprintf("%d vs %d omission-faulty processes", len(a.Omissive), len(b.Omissive))
	}
	for id, c := range a.Omissive {
		if bc, ok := b.Omissive[id]; !ok || c != bc {
			return fmt.Sprintf("p%d omissive rounds %d vs %d", id, c, bc)
		}
	}
	if a.Counters != b.Counters {
		return fmt.Sprintf("counters %s vs %s", a.Counters.String(), b.Counters.String())
	}
	if a.Ledger != b.Ledger {
		return fmt.Sprintf("ledger %s vs %s", a.Ledger.String(), b.Ledger.String())
	}
	if (a.ConsensusErr == nil) != (b.ConsensusErr == nil) {
		return fmt.Sprintf("consensus verdict %v vs %v", a.ConsensusErr, b.ConsensusErr)
	}
	return ""
}
