package agree

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// FuzzConfig configures a randomized fuzzing campaign: Seeds independent
// random-walk executions of the configured protocol, each validated against
// the consensus oracles (validity, uniform agreement, termination, and the
// protocol's round bound), with violating schedules minimized into
// replayable scripts.
//
// Fuzzing complements the exhaustive explorer (Explore): the explorer proves
// properties for proof-sized systems (n <= 5), the fuzzer samples the same
// choice space at production sizes and under schedules the proofs quantify
// over but the experiments never pin down.
type FuzzConfig struct {
	// N is the number of processes (required).
	N int
	// T is the crash budget per execution (default N-1).
	T int
	// Protocol selects the algorithm (default ProtocolCRW).
	Protocol Protocol
	// Engine selects the engine the campaign's random walks execute on
	// (default EngineDeterministic). The engine must advertise the
	// deterministic capability: findings are replay-verified against the
	// recorded script, which requires reproducible executions. With
	// EngineTimed the campaign runs on continuous time — combine with
	// Latency to fuzz under timing faults.
	Engine EngineKind
	// Latency configures the latency model of a timed campaign (requires an
	// engine with the timed capability). An out-of-bound spec makes late
	// messages part of every walk; such campaigns are judged on the
	// consensus properties alone and skip cross-engine checking (the round
	// engines cannot reproduce timing faults).
	Latency LatencySpec
	// Seeds is the number of seeds to fuzz (default 64); seed i is Seed+i.
	Seeds int
	// Seed is the base seed (default 1).
	Seed int64
	// CrashProb is the per-(process, round) crash probability of the random
	// walk (default 0.25).
	CrashProb float64
	// SendOmitProb is the per-(process, round) probability of injecting a
	// send-omission event (a random non-empty subset of the round's messages
	// vanishes while the sender stays alive). Zero keeps the campaign in the
	// crash model.
	SendOmitProb float64
	// RecvOmitProb is the per-(process, round) probability of injecting a
	// receive-omission event (a random non-empty subset of senders blocked).
	RecvOmitProb float64
	// MaxOmissive bounds the distinct omission-faulty processes per
	// execution (default N-1 when an omission probability is set).
	MaxOmissive int
	// OmissionOnly disables crash injection, making the walk a pure
	// omission campaign; it requires a non-zero omission probability.
	OmissionOnly bool
	// OrderAscending fuzzes the ascending-commit-order ablation (CRW only):
	// the f+1 bound is expected to fall.
	OrderAscending bool
	// CommitAsData fuzzes the commit-as-data ablation (CRW only): uniform
	// agreement is expected to fall.
	CommitAsData bool
	// Laws additionally arms the standing law-audit oracle: every run must
	// satisfy the per-run laws of internal/laws — message conservation,
	// ledger/counter consistency, the event-clock contract, and the
	// campaign's fault budget. A law violation is reported, replayed and
	// shrunk exactly like a consensus violation, and classified by law name
	// in FuzzFinding.Law.
	Laws bool
	// Shrink minimizes every violating schedule by delta debugging.
	Shrink bool
	// MaxShrinkRuns caps the shrinker's replay budget per finding
	// (default 512).
	MaxShrinkRuns int
	// Workers is the worker-pool size: 0 means GOMAXPROCS, 1 runs the
	// campaign sequentially. The report is bit-identical for every worker
	// count: each seed is a deterministic function of itself alone, and
	// results are merged in seed order.
	Workers int
	// CrossCheck replays every finding's script (the shrunk script when
	// shrinking ran) on each other registered engine and diffs the semantic
	// outcome against the deterministic engine's. Campaigns under an
	// out-of-bound latency model skip it: their findings depend on timing
	// faults the round engines cannot reproduce.
	CrossCheck bool
	// Telemetry records a span and metrics recording for a single replay
	// (FuzzReplayScript), attached to FuzzReplayReport.Telemetry. Campaign
	// runs (Fuzz) ignore it: thousands of per-seed recordings would be
	// noise, and the replay path is where a finding gets examined.
	Telemetry bool
}

// FuzzFinding is one violating execution of a campaign.
type FuzzFinding struct {
	// Seed is the seed whose random walk produced the violation.
	Seed int64
	// Err is the violated property.
	Err error
	// Law is the name of the violated law when Err is a law violation from
	// the FuzzConfig.Laws oracle (e.g. "conservation-data", "crash-budget"),
	// and "" for consensus violations. It classifies the shrunk violation
	// when shrinking ran (the class may shift while shrinking), the original
	// otherwise.
	Law string
	// Script is the recorded crash schedule (agree.ReplayFaults format).
	Script string
	// Shrunk is the minimized script when FuzzConfig.Shrink was set; it
	// fails with ShrunkErr (the violation may shift class while shrinking,
	// e.g. from a round-bound to an agreement violation).
	Shrunk string
	// ShrunkErr is the violation the shrunk script fails with.
	ShrunkErr error
	// ShrunkCrashes is the crash-event count of the shrunk script.
	ShrunkCrashes int
	// ShrunkOmissions is the omission-event count of the shrunk script.
	ShrunkOmissions int
	// CrossChecked lists the engines the finding's script was replayed on
	// when FuzzConfig.CrossCheck was set.
	CrossChecked []EngineKind
	// CrossCheckErr reports a cross-engine divergence (or reference-engine
	// failure) while replaying the finding's script.
	CrossCheckErr error
}

// FuzzReport aggregates a campaign.
type FuzzReport struct {
	// Seeds is the number of seeds fuzzed.
	Seeds int
	// Executions is the total number of engine runs, including replay
	// verification, shrinking and cross-check runs.
	Executions int
	// Findings are the violations, in seed order.
	Findings []FuzzFinding
	// MaxRounds, MaxDecideRound, MaxFaults and MaxOmissionFaulty summarize
	// the generated runs (MaxFaults counts crashes, MaxOmissionFaulty the
	// omission-faulty processes of the most omissive run).
	MaxRounds         int
	MaxDecideRound    int
	MaxFaults         int
	MaxOmissionFaulty int
	// RoundHistogram maps the latest decision round of each passing run to
	// its frequency — the scenario-diversity profile of the campaign.
	RoundHistogram map[int]int
}

// fuzzOutcome carries one seed's result through the worker pool.
type fuzzOutcome struct {
	out          fuzz.Outcome
	fatal        error
	crossChecked []EngineKind
	crossErr     error
	crossRuns    int
}

// normalizeFuzz validates a campaign config and fills in the defaults.
func normalizeFuzz(cfg FuzzConfig) (FuzzConfig, error) {
	if cfg.N < 1 {
		return cfg, errors.New("agree: N must be at least 1")
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtocolCRW
	}
	if cfg.Protocol != ProtocolCRW && (cfg.OrderAscending || cfg.CommitAsData) {
		return cfg, errors.New("agree: the ablations apply to the CRW protocol only")
	}
	if cfg.Engine == "" {
		cfg.Engine = EngineDeterministic
	}
	caps, ok := harness.Lookup(harness.Kind(cfg.Engine))
	if !ok {
		return cfg, fmt.Errorf("agree: unknown engine %q", cfg.Engine)
	}
	if !caps.Deterministic {
		return cfg, fmt.Errorf("agree: engine %q is not deterministic; fuzz campaigns require reproducible replay", cfg.Engine)
	}
	if err := cfg.Latency.validate(); err != nil {
		return cfg, err
	}
	if !cfg.Latency.IsZero() && !caps.Timed {
		return cfg, fmt.Errorf("agree: FuzzConfig.Latency is not supported by engine %q (engine lacks the timed capability)", cfg.Engine)
	}
	if cfg.T <= 0 || cfg.T >= cfg.N {
		cfg.T = cfg.N - 1
	}
	if cfg.N == 1 {
		cfg.T = 0
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.CrashProb < 0 || cfg.CrashProb > 1 {
		return cfg, fmt.Errorf("agree: crash probability %g out of [0, 1]", cfg.CrashProb)
	}
	if cfg.CrashProb == 0 {
		cfg.CrashProb = 0.25
	}
	if cfg.SendOmitProb < 0 || cfg.SendOmitProb > 1 {
		return cfg, fmt.Errorf("agree: send-omission probability %g out of [0, 1]", cfg.SendOmitProb)
	}
	if cfg.RecvOmitProb < 0 || cfg.RecvOmitProb > 1 {
		return cfg, fmt.Errorf("agree: receive-omission probability %g out of [0, 1]", cfg.RecvOmitProb)
	}
	omitting := cfg.SendOmitProb > 0 || cfg.RecvOmitProb > 0
	if cfg.OmissionOnly && !omitting {
		return cfg, errors.New("agree: OmissionOnly requires a non-zero omission probability")
	}
	if cfg.MaxOmissive < 0 {
		return cfg, fmt.Errorf("agree: omission-faulty budget %d is negative", cfg.MaxOmissive)
	}
	if cfg.MaxOmissive > cfg.N {
		return cfg, fmt.Errorf("agree: omission-faulty budget %d exceeds the system size n=%d", cfg.MaxOmissive, cfg.N)
	}
	if omitting && cfg.MaxOmissive == 0 {
		cfg.MaxOmissive = cfg.N - 1
	}
	return cfg, nil
}

// fuzzFactory builds the per-execution target factory for a campaign.
func fuzzFactory(cfg FuzzConfig) fuzz.Factory {
	return func() fuzz.Target {
		props := make([]sim.Value, cfg.N)
		for i := range props {
			props[i] = sim.Value(100 + i)
		}
		if cfg.Protocol == ProtocolCRW {
			opts := core.Options{CommitAsData: cfg.CommitAsData}
			if cfg.OrderAscending {
				opts.Order = core.OrderAscending
			}
			model := sim.ModelExtended
			if cfg.CommitAsData {
				model = sim.ModelClassic
			}
			return fuzz.Target{
				Model:     model,
				Horizon:   sim.Round(cfg.N + 2),
				Procs:     core.NewSystem(props, opts),
				Proposals: props,
			}
		}
		// The classic baselines share buildProtocol with Run/Sweep.
		procs, model, horizon, err := buildProtocol(Config{
			N: cfg.N, T: cfg.T, Protocol: cfg.Protocol,
		}, props)
		if err != nil {
			// Unreachable: normalizeFuzz pinned the protocol to a known one.
			panic(err)
		}
		return fuzz.Target{Model: model, Horizon: horizon, Procs: procs, Proposals: props}
	}
}

// withLatency attaches a campaign's latency model to every target the
// factory produces (timed campaigns only; the model is nil otherwise and
// the field stays zero).
func withLatency(factory fuzz.Factory, spec LatencySpec) fuzz.Factory {
	lm := spec.model(0)
	if lm == nil {
		return factory
	}
	return func() fuzz.Target {
		tgt := factory()
		tgt.Latency = lm
		return tgt
	}
}

// fuzzOracle returns the consensus oracle with the protocol's round bound.
// Omission campaigns check consensus only: the round bounds are crash-model
// theorems (their f counts crashes), and under omission faults the paper's
// reliable-channel assumption predicts consensus itself breaks — which is
// exactly what the oracle should report, not a bound artifact. Timing-fault
// campaigns (an out-of-bound latency model) degrade into receive omissions
// and are judged the same way.
func fuzzOracle(cfg FuzzConfig) fuzz.Oracle {
	if cfg.SendOmitProb > 0 || cfg.RecvOmitProb > 0 || !cfg.Latency.withinBound() {
		return fuzz.ConsensusOracle(nil)
	}
	switch cfg.Protocol {
	case ProtocolEarlyStop:
		return fuzz.ConsensusOracle(check.BoundClassic(cfg.T))
	case ProtocolFloodSet:
		t := cfg.T
		return fuzz.ConsensusOracle(func(int) sim.Round { return sim.Round(t + 1) })
	default:
		return fuzz.ConsensusOracle(check.BoundFPlus1)
	}
}

// Fuzz runs a randomized fuzzing campaign across the harness worker pool.
// Each worker draws its deterministic engine from a private cache
// (sim.Engine.Reset reuse, exactly like Sweep), seeds are fanned out through
// the same work-stealing cursor, and outcomes are merged in seed order — the
// report is bit-identical for every worker count.
func Fuzz(cfg FuzzConfig) (*FuzzReport, error) {
	cfg, err := normalizeFuzz(cfg)
	if err != nil {
		return nil, err
	}
	factory := fuzzFactory(cfg)
	oracle := fuzzOracle(cfg)
	genT := cfg.T
	if cfg.OmissionOnly {
		genT = 0
	}
	if cfg.Laws {
		// The generator enforces these budgets while recording, so any excess
		// the audit observes was leaked by an engine, not injected by a walk.
		omBudget := 0
		if cfg.SendOmitProb > 0 || cfg.RecvOmitProb > 0 {
			omBudget = cfg.MaxOmissive
		}
		oracle = fuzz.Oracles(oracle, fuzz.LawOracle(laws.Budget{Crashes: genT, Omissive: omBudget}))
	}
	opts := fuzz.Options{
		Gen: fuzz.Gen{
			T: genT, CrashProb: cfg.CrashProb,
			SendOmitProb: cfg.SendOmitProb, RecvOmitProb: cfg.RecvOmitProb,
			MaxOmissive: cfg.MaxOmissive,
		},
		Shrink:        cfg.Shrink,
		MaxShrinkRuns: cfg.MaxShrinkRuns,
	}

	factory = withLatency(factory, cfg.Latency)
	outcomes := make([]fuzzOutcome, cfg.Seeds)
	harness.ForEach(cfg.Seeds, cfg.Workers, func(cache *harness.Cache, i int) {
		slot := &outcomes[i]
		eng, err := cache.Get(harness.Kind(cfg.Engine))
		if err != nil {
			slot.fatal = err
			return
		}
		seed := cfg.Seed + int64(i)
		// Tag the seed's samples so a -cpuprofile of a campaign decomposes by
		// (engine, seed) in pprof's tags view. Free when no profile is active.
		pprof.Do(context.Background(),
			pprof.Labels("engine", string(cfg.Engine), "seed", strconv.FormatInt(seed, 10)),
			func(context.Context) {
				slot.out, slot.fatal = fuzz.RunSeed(eng, factory, oracle, seed, opts)
			})
		if slot.fatal != nil || slot.out.Err == nil || !cfg.CrossCheck || !cfg.Latency.withinBound() {
			return
		}
		script := slot.out.Script
		if slot.out.Shrunk != nil {
			script = *slot.out.Shrunk
		}
		slot.crossChecked, slot.crossRuns, slot.crossErr = crossCheckScript(cache, factory, script)
	})

	rep := &FuzzReport{Seeds: cfg.Seeds, RoundHistogram: make(map[int]int)}
	for i := range outcomes {
		slot := &outcomes[i]
		if slot.fatal != nil {
			return nil, slot.fatal
		}
		out := &slot.out
		rep.Executions += out.Executions + slot.crossRuns
		if r := int(out.Rounds); r > rep.MaxRounds {
			rep.MaxRounds = r
		}
		if r := int(out.MaxDecideRound); r > rep.MaxDecideRound {
			rep.MaxDecideRound = r
		}
		if out.Faults > rep.MaxFaults {
			rep.MaxFaults = out.Faults
		}
		if out.Omissive > rep.MaxOmissionFaulty {
			rep.MaxOmissionFaulty = out.Omissive
		}
		if out.Err == nil {
			rep.RoundHistogram[int(out.MaxDecideRound)]++
			continue
		}
		finding := FuzzFinding{
			Seed:          out.Seed,
			Err:           out.Err,
			Law:           laws.Of(out.Err),
			Script:        out.Script.String(),
			CrossChecked:  slot.crossChecked,
			CrossCheckErr: slot.crossErr,
		}
		if out.Shrunk != nil {
			finding.Shrunk = out.Shrunk.String()
			finding.ShrunkErr = out.ShrunkErr
			finding.Law = laws.Of(out.ShrunkErr)
			finding.ShrunkCrashes = out.Shrunk.Crashes()
			finding.ShrunkOmissions = out.Shrunk.Omissions()
		}
		rep.Findings = append(rep.Findings, finding)
	}
	return rep, nil
}

// FuzzReplayReport is the outcome of replaying one script via
// FuzzReplayScript.
type FuzzReplayReport struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// Decisions, DecideRound, Crashed and Omissive mirror Report's fields.
	Decisions   map[int]int64
	DecideRound map[int]int
	Crashed     map[int]int
	Omissive    map[int]int
	// Err is the oracle verdict: nil when the run satisfies uniform
	// consensus and the protocol's round bound.
	Err error
	// Law names the violated law when Err is a law violation ("" otherwise).
	Law string
	// Transcript is the execution trace when requested.
	Transcript string
	// Telemetry is the replay's span and timeline recording when
	// FuzzConfig.Telemetry was set; nil otherwise.
	Telemetry *Telemetry
}

// FuzzReplayScript re-executes one crash script under a campaign
// configuration — the same protocol construction, horizon, engine, latency
// model and oracle the campaign itself used, so a finding's "reproduce with
// -replay" contract cannot drift from the code that produced it (a
// timing-fault finding from a timed campaign only reproduces on the timed
// engine under the campaign's latency model). The script is validated
// against the system size exactly like ReplayFaults specs are at Run time.
func FuzzReplayScript(cfg FuzzConfig, script string, withTrace bool) (*FuzzReplayReport, error) {
	cfg, err := normalizeFuzz(cfg)
	if err != nil {
		return nil, err
	}
	s, err := fuzz.Parse(script)
	if err != nil {
		return nil, err
	}
	if err := (FaultSpec{kind: "fuzzscript", fscript: s}).validate(cfg.N); err != nil {
		return nil, err
	}
	var log *trace.Log
	if withTrace {
		log = trace.New()
	}
	var rec *telemetry.Recorder
	if cfg.Telemetry {
		rec = telemetry.New()
	}
	tgt := withLatency(fuzzFactory(cfg), cfg.Latency)()
	cache := harness.NewCache()
	defer cache.Close()
	eng, err := cache.Get(harness.Kind(cfg.Engine))
	if err != nil {
		return nil, err
	}
	res, runErr := eng.Run(harness.Job{
		Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: s.Adversary(),
		Trace: log, Latency: tgt.Latency, Telemetry: rec,
	})
	if res == nil {
		return nil, runErr
	}
	oracle := fuzzOracle(cfg)
	if s.Omissions() > 0 {
		// An omission script is judged by the omission-model oracle even
		// when the replay flags omit the campaign's omission probabilities:
		// the crash-model round bounds do not apply to it.
		oracle = fuzz.ConsensusOracle(nil)
	}
	if cfg.Laws {
		// A replay injects exactly the script's faults, so the budget the
		// audit holds the run to is the script's own footprint: anything the
		// engine reports beyond it was leaked by the engine.
		oracle = fuzz.Oracles(oracle,
			fuzz.LawOracle(laws.Budget{Crashes: s.Crashes(), Omissive: s.OmissiveProcs()}))
	}
	rep := &FuzzReplayReport{
		Rounds:      int(res.Rounds),
		Decisions:   make(map[int]int64, len(res.Decisions)),
		DecideRound: make(map[int]int, len(res.DecideRound)),
		Crashed:     make(map[int]int, len(res.Crashed)),
		Err:         oracle(tgt.Proposals, res, runErr),
	}
	rep.Law = laws.Of(rep.Err)
	for id, v := range res.Decisions {
		rep.Decisions[int(id)] = int64(v)
		rep.DecideRound[int(id)] = int(res.DecideRound[id])
	}
	for id, r := range res.Crashed {
		rep.Crashed[int(id)] = int(r)
	}
	for id, c := range res.Omissive {
		if rep.Omissive == nil {
			rep.Omissive = make(map[int]int, len(res.Omissive))
		}
		rep.Omissive[int(id)] = c
	}
	if log != nil {
		rep.Transcript = log.String()
	}
	if rec != nil {
		rep.Telemetry = &Telemetry{rec: rec}
	}
	return rep, nil
}

// crossCheckScript replays a script on the deterministic engine and on every
// other registered engine, diffing the semantic outcome (rounds, decisions,
// crash set, traffic counters). It returns the engines compared, the number
// of engine runs spent, and the first divergence (or reference-engine
// failure).
func crossCheckScript(cache *harness.Cache, factory fuzz.Factory, script fuzz.Script) ([]EngineKind, int, error) {
	runs := 0
	runOn := func(kind harness.Kind) (*sim.Result, error) {
		eng, err := cache.Get(kind)
		if err != nil {
			return nil, err
		}
		tgt := factory()
		runs++
		res, runErr := eng.Run(harness.Job{
			Model: tgt.Model, Horizon: tgt.Horizon, Procs: tgt.Procs, Adv: script.Adversary(),
		})
		if res == nil {
			return nil, runErr
		}
		// Run errors (e.g. horizon exhaustion on a violating schedule) are
		// part of the semantic outcome; both engines must agree on them via
		// the result they return alongside.
		return res, nil
	}
	primary, err := runOn(harness.KindDeterministic)
	if err != nil {
		return nil, runs, fmt.Errorf("agree: fuzz crosscheck reference run: %w", err)
	}
	var checked []EngineKind
	for _, kind := range harness.Kinds() {
		if kind == harness.KindDeterministic {
			continue
		}
		ref, err := runOn(kind)
		if err != nil {
			return checked, runs, fmt.Errorf("agree: fuzz crosscheck on engine %q: %w", kind, err)
		}
		if diff := diffResults(primary, ref); diff != "" {
			return checked, runs, fmt.Errorf("agree: fuzz crosscheck divergence between engines %q and %q replaying %q: %s",
				harness.KindDeterministic, kind, script.String(), diff)
		}
		checked = append(checked, EngineKind(kind))
	}
	return checked, runs, nil
}

// diffResults compares the semantic fields of two engine results for one
// script and returns a description of the first difference, or "".
func diffResults(a, b *sim.Result) string {
	if a.Rounds != b.Rounds {
		return fmt.Sprintf("rounds %d vs %d", a.Rounds, b.Rounds)
	}
	if len(a.Decisions) != len(b.Decisions) {
		return fmt.Sprintf("%d vs %d deciders", len(a.Decisions), len(b.Decisions))
	}
	for id, v := range a.Decisions {
		bv, ok := b.Decisions[id]
		if !ok {
			return fmt.Sprintf("p%d decided only on one engine", id)
		}
		if v != bv {
			return fmt.Sprintf("p%d decided %d vs %d", id, int64(v), int64(bv))
		}
		if a.DecideRound[id] != b.DecideRound[id] {
			return fmt.Sprintf("p%d decide round %d vs %d", id, a.DecideRound[id], b.DecideRound[id])
		}
	}
	if len(a.Crashed) != len(b.Crashed) {
		return fmt.Sprintf("%d vs %d crashes", len(a.Crashed), len(b.Crashed))
	}
	for id, r := range a.Crashed {
		if br, ok := b.Crashed[id]; !ok || r != br {
			return fmt.Sprintf("p%d crash round %d vs %d", id, r, br)
		}
	}
	if len(a.Omissive) != len(b.Omissive) {
		return fmt.Sprintf("%d vs %d omission-faulty processes", len(a.Omissive), len(b.Omissive))
	}
	for id, c := range a.Omissive {
		if bc, ok := b.Omissive[id]; !ok || c != bc {
			return fmt.Sprintf("p%d omissive rounds %d vs %d", id, c, bc)
		}
	}
	if a.Counters != b.Counters {
		return fmt.Sprintf("counters %s vs %s", a.Counters.String(), b.Counters.String())
	}
	if a.Ledger != b.Ledger {
		return fmt.Sprintf("ledger %s vs %s", a.Ledger.String(), b.Ledger.String())
	}
	return ""
}
