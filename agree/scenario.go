package agree

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ScenarioSource is one in-memory scenario: the file label used in error
// messages plus the scenario text. The scenario catalog on disk is the
// primary source (ScenarioOptions.Dir); Sources exist for tests and for the
// finding-to-scenario converter, which must execute a scenario before it is
// written anywhere.
type ScenarioSource struct {
	// File labels the scenario in results and expectation-mismatch errors.
	File string
	// Text is the scenario in the file format of internal/scenario.
	Text string
}

// ScenarioOptions configures a catalog run.
type ScenarioOptions struct {
	// Dir is the catalog directory: every *.scenario file under it is loaded,
	// with the name-matches-path discipline enforced. Empty skips the disk
	// catalog (Sources only).
	Dir string
	// Names filters the run to the named scenarios, in the given order
	// (empty = the whole set in catalog order). Unknown names are errors.
	Names []string
	// Sources are additional in-memory scenarios, appended after the catalog
	// entries.
	Sources []ScenarioSource
	// Engines overrides the engine selection of every scenario: each
	// scenario runs on every listed engine it supports (unsupported
	// combinations are reported as skipped, not errors — the override is a
	// sweep knob, unlike a scenario's own engines list, which is strict).
	Engines []EngineKind
	// Workers sizes the worker pool: 0 means GOMAXPROCS, 1 runs
	// sequentially. Each worker owns a private engine cache, so a catalog of
	// hundreds of entries pays for one engine per kind per worker. The
	// result order is deterministic for every worker count.
	Workers int
	// Telemetry records a span and metrics recording for every executed
	// (scenario, engine) pair, attached to the result (ScenarioResult
	// .Telemetry method). Each run gets its own recorder, so the option
	// composes with any worker count.
	Telemetry bool
}

// ScenarioResult is the outcome of one scenario on one engine.
type ScenarioResult struct {
	// Name and File identify the scenario; Engine the registry kind it ran on.
	Name   string
	File   string
	Engine EngineKind
	// Skipped reports that the engine cannot execute the scenario (e.g. a
	// round engine asked to run a latency scenario via the Engines override);
	// SkipReason says why. Skipped results carry no outcome.
	Skipped    bool
	SkipReason string
	// Verdict is the observed verdict class (scenario.Classify); Rounds,
	// MaxDecideRound and SimTime are the observed outcome.
	Verdict        string
	Rounds         int
	MaxDecideRound int
	SimTime        float64
	// Err is non-nil when the run diverged from the scenario's expectation
	// (or failed to execute); the message names the scenario file and the
	// diverging field.
	Err error
	// telemetry is the run's recording when ScenarioOptions.Telemetry was
	// set; access it via the Telemetry method.
	telemetry *Telemetry
}

// Telemetry returns the result's span and timeline recording, or nil when
// ScenarioOptions.Telemetry was not set (or the run was skipped).
func (r *ScenarioResult) Telemetry() *Telemetry { return r.telemetry }

// ScenarioReport aggregates a catalog run.
type ScenarioReport struct {
	// Scenarios is the number of distinct scenarios loaded.
	Scenarios int
	// Ran, Skipped and Failed count (scenario, engine) results.
	Ran, Skipped, Failed int
	// Results holds every (scenario, engine) outcome, ordered by scenario
	// name (catalog order), then engine kind — deterministic for every
	// worker count.
	Results []ScenarioResult
}

// scenarioJob is one (scenario, engine) execution slot.
type scenarioJob struct {
	entry     scenario.Entry
	kind      harness.Kind
	caps      harness.Capabilities
	skip      string // non-empty: skip with this reason
	telemetry bool
}

// RunScenarios loads a scenario catalog and executes every entry on every
// selected engine through the harness registry, checking each run against
// the scenario's expected verdict and bounds. It is the scenario-level
// public entry: cmd/agreesim, CI's catalog gates and scripts/verify.sh are
// thin wrappers around it.
//
// Execution fans (scenario, engine) pairs across a worker pool with
// per-worker engine reuse (one cache per worker, exactly like Sweep and
// Fuzz); results come back in deterministic catalog order regardless of the
// worker count. Every run is audited by the standing laws with the fault
// script's own budget, so a scenario expecting "pass" also pins the
// law-audit result.
func RunScenarios(opts ScenarioOptions) (*ScenarioReport, error) {
	entries, err := loadScenarioSet(opts)
	if err != nil {
		return nil, err
	}
	jobs, err := expandScenarioJobs(entries, opts.Engines)
	if err != nil {
		return nil, err
	}

	results := make([]ScenarioResult, len(jobs))
	harness.ForEach(len(jobs), opts.Workers, func(cache *harness.Cache, i int) {
		job := jobs[i]
		res := &results[i]
		res.Name = job.entry.Scenario.Name
		res.File = job.entry.File
		res.Engine = EngineKind(job.kind)
		if job.skip != "" {
			res.Skipped, res.SkipReason = true, job.skip
			return
		}
		job.telemetry = opts.Telemetry
		runScenarioJob(cache, job, res)
	})

	rep := &ScenarioReport{Scenarios: len(entries), Results: results}
	for i := range results {
		switch {
		case results[i].Skipped:
			rep.Skipped++
		case results[i].Err != nil:
			rep.Failed++
			rep.Ran++
		default:
			rep.Ran++
		}
	}
	return rep, nil
}

// loadScenarioSet assembles the scenario set of a run: the disk catalog,
// then the in-memory sources, filtered by name, with duplicate names
// rejected.
func loadScenarioSet(opts ScenarioOptions) ([]scenario.Entry, error) {
	var entries []scenario.Entry
	if opts.Dir != "" {
		dirEntries, err := scenario.LoadDir(opts.Dir)
		if err != nil {
			return nil, err
		}
		entries = dirEntries
	}
	for i, src := range opts.Sources {
		s, err := scenario.Parse(src.Text)
		if err != nil {
			file := src.File
			if file == "" {
				file = fmt.Sprintf("source %d", i+1)
			}
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		entries = append(entries, scenario.Entry{File: src.File, Scenario: s})
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if seen[e.Scenario.Name] {
			return nil, fmt.Errorf("agree: duplicate scenario name %q", e.Scenario.Name)
		}
		seen[e.Scenario.Name] = true
	}
	if len(opts.Names) == 0 {
		if len(entries) == 0 {
			return nil, fmt.Errorf("agree: no scenarios to run")
		}
		return entries, nil
	}
	byName := map[string]scenario.Entry{}
	for _, e := range entries {
		byName[e.Scenario.Name] = e
	}
	var filtered []scenario.Entry
	for _, name := range opts.Names {
		e, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("agree: unknown scenario %q (catalog has %d entries; see -list)", name, len(entries))
		}
		filtered = append(filtered, e)
	}
	return filtered, nil
}

// expandScenarioJobs resolves each scenario's engine set into concrete
// (scenario, engine) jobs. A scenario's own engines list is strict: unknown
// kinds and capability mismatches are errors naming the file. The Engines
// override and the default all-engines expansion are sweep knobs: engines
// that cannot execute the scenario become skipped results instead.
func expandScenarioJobs(entries []scenario.Entry, override []EngineKind) ([]scenarioJob, error) {
	for _, ek := range override {
		if _, ok := harness.Lookup(harness.Kind(ek)); !ok {
			return nil, fmt.Errorf("agree: unknown engine %q (registered: %v)", ek, harness.Kinds())
		}
	}
	var jobs []scenarioJob
	for _, e := range entries {
		sc := e.Scenario
		var kinds []harness.Kind
		strict := false
		switch {
		case len(override) > 0:
			for _, ek := range override {
				kinds = append(kinds, harness.Kind(ek))
			}
			sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		case len(sc.Engines) > 0:
			strict = true
			for _, name := range sc.Engines {
				kinds = append(kinds, harness.Kind(name))
			}
		default:
			kinds = harness.Kinds()
		}
		for _, kind := range kinds {
			caps, ok := harness.Lookup(kind)
			if !ok {
				return nil, fmt.Errorf("agree: scenario %q (%s): unknown engine %q (registered: %v)",
					sc.Name, e.File, kind, harness.Kinds())
			}
			job := scenarioJob{entry: e, kind: kind, caps: caps}
			if !sc.Latency.IsZero() && !caps.Timed {
				if strict {
					return nil, fmt.Errorf("agree: scenario %q (%s): engine %q lacks the timed capability its latency model requires",
						sc.Name, e.File, kind)
				}
				job.skip = fmt.Sprintf("engine %q lacks the timed capability the scenario's latency model requires", kind)
			}
			jobs = append(jobs, job)
		}
	}
	return jobs, nil
}

// scenarioLatencySpec converts the format-level latency onto the public spec
// (already validated by the scenario parser).
func scenarioLatencySpec(l scenario.Latency) LatencySpec {
	switch l.Kind {
	case "fixed":
		return FixedLatency(l.D, l.Delta)
	case "profile":
		return ProfileLatency(l.Profile)
	case "jitter":
		return JitterLatency(l.Seed, l.D, l.Delta, l.Floor, l.Spread)
	default:
		return LatencySpec{}
	}
}

// scenarioTarget materializes the system under test of a scenario: process
// set, model, horizon and proposals — the same construction the fuzzer's
// campaign factory uses, ablations included.
func scenarioTarget(sc *scenario.Scenario) ([]sim.Process, sim.Model, sim.Round, []sim.Value, error) {
	props := make([]sim.Value, sc.N)
	for i := range props {
		if sc.Proposals != nil {
			props[i] = sim.Value(sc.Proposals[i])
		} else {
			props[i] = sim.Value(100 + i)
		}
	}
	if sc.Protocol == "" || sc.Protocol == "crw" {
		opts := core.Options{CommitAsData: sc.CommitAsData}
		if sc.OrderAscending {
			opts.Order = core.OrderAscending
		}
		model := sim.ModelExtended
		if sc.CommitAsData {
			model = sim.ModelClassic
		}
		return core.NewSystem(props, opts), model, sim.Round(sc.N + 2), props, nil
	}
	procs, model, horizon, err := buildProtocol(Config{
		N: sc.N, T: sc.T, Protocol: Protocol(sc.Protocol),
	}, props)
	return procs, model, horizon, props, err
}

// scenarioBound returns the protocol's decision round bound, or nil when the
// scenario is judged on the consensus properties alone (omission scripts and
// timing-fault latency models — the round bounds are crash-model theorems).
func scenarioBound(sc *scenario.Scenario) func(f int) sim.Round {
	if sc.ConsensusOnly() {
		return nil
	}
	t := sc.T
	if t <= 0 || t >= sc.N {
		t = sc.N - 1
	}
	if sc.N == 1 {
		t = 0
	}
	switch sc.Protocol {
	case "earlystop":
		return check.BoundClassic(t)
	case "floodset":
		bound := sim.Round(t + 1)
		return func(int) sim.Round { return bound }
	default:
		return check.BoundFPlus1
	}
}

// runScenarioJob executes one (scenario, engine) pair and fills the result:
// run through the harness, judge with the consensus-and-laws oracle, classify
// the verdict, and check it against the scenario's expectation.
func runScenarioJob(cache *harness.Cache, job scenarioJob, res *ScenarioResult) {
	sc := job.entry.Scenario
	fail := func(err error) {
		res.Verdict = scenario.VerdictError
		res.Err = fmt.Errorf("scenario %q (%s) on engine %s: %w", sc.Name, job.entry.File, job.kind, err)
	}
	eng, err := cache.Get(job.kind)
	if err != nil {
		fail(err)
		return
	}
	procs, model, horizon, props, err := scenarioTarget(sc)
	if err != nil {
		fail(err)
		return
	}
	script := sc.Script()
	var rec *telemetry.Recorder
	if job.telemetry {
		rec = telemetry.New()
	}
	var result *sim.Result
	var runErr error
	// The pprof labels tag every sample taken while this scenario executes
	// with its (engine, scenario) identity, so a -cpuprofile of a catalog run
	// decomposes by scenario in pprof's tags view. Free when no profile is
	// active.
	pprof.Do(context.Background(),
		pprof.Labels("engine", string(job.kind), "scenario", sc.Name),
		func(context.Context) {
			result, runErr = eng.Run(harness.Job{
				Model: model, Horizon: horizon, Procs: procs, Adv: script.Adversary(),
				Latency:   scenarioLatencySpec(sc.Latency).model(0),
				Telemetry: rec,
			})
		})
	if rec != nil {
		res.telemetry = &Telemetry{rec: rec}
	}
	if result == nil {
		fail(runErr)
		return
	}
	oracle := fuzz.Oracles(
		fuzz.ConsensusOracle(scenarioBound(sc)),
		fuzz.LawOracle(laws.Budget{Crashes: script.Crashes(), Omissive: script.OmissiveProcs()}),
	)
	verdictErr := oracle(props, result, runErr)
	res.Verdict = scenario.Classify(verdictErr)
	res.Rounds = int(result.Rounds)
	res.MaxDecideRound = int(result.MaxDecideRound())
	res.SimTime = result.SimTime
	res.Err = sc.Check(job.entry.File, string(job.kind), scenario.Outcome{
		Verdict:        res.Verdict,
		Rounds:         res.Rounds,
		MaxDecideRound: res.MaxDecideRound,
		SimTime:        res.SimTime,
		Timed:          job.caps.Timed,
	})
}
