package agree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// report returns a small consistent report for diff tests.
func testReport() *Report {
	return &Report{
		Rounds:      3,
		MacroRounds: 3,
		Decisions:   map[int]int64{1: 7, 2: 7, 3: 7},
		DecideRound: map[int]int{1: 3, 2: 3, 3: 2},
		Crashed:     map[int]int{2: 1},
		Counters:    metrics.Counters{DataMsgs: 6, DataBits: 384, CtrlMsgs: 2, CtrlBits: 2, Rounds: 3},
	}
}

// TestDiffReports exercises the cross-check comparator field by field: equal
// reports produce no diff, and each semantic divergence is caught and named.
func TestDiffReports(t *testing.T) {
	if d := diffReports(testReport(), testReport()); d != "" {
		t.Errorf("identical reports diff: %s", d)
	}
	cases := []struct {
		name    string
		mutate  func(*Report)
		mention string
	}{
		{"rounds", func(r *Report) { r.Rounds = 4 }, "rounds"},
		{"macro", func(r *Report) { r.MacroRounds = 1 }, "macro"},
		{"decision value", func(r *Report) { r.Decisions[1] = 9 }, "decided"},
		{"decider set", func(r *Report) { delete(r.Decisions, 3) }, "deciders"},
		{"decide round", func(r *Report) { r.DecideRound[3] = 3 }, "decide round"},
		{"crash set", func(r *Report) { delete(r.Crashed, 2) }, "crashes"},
		{"crash round", func(r *Report) { r.Crashed[2] = 2 }, "crash round"},
		{"counters", func(r *Report) { r.Counters.DataMsgs = 5 }, "counters"},
		{"verdict", func(r *Report) { r.ConsensusErr = errors.New("disagreement") }, "verdict"},
	}
	for _, c := range cases {
		mutated := testReport()
		c.mutate(mutated)
		d := diffReports(testReport(), mutated)
		if d == "" {
			t.Errorf("%s: divergence not detected", c.name)
			continue
		}
		if !strings.Contains(d, c.mention) {
			t.Errorf("%s: diff %q does not mention %q", c.name, d, c.mention)
		}
	}
	// Transcript and diagram are presentation-only and must not diff.
	withTrace := testReport()
	withTrace.Transcript, withTrace.Diagram = "transcript", "diagram"
	if d := diffReports(withTrace, testReport()); d != "" {
		t.Errorf("presentation fields diffed: %s", d)
	}
}
