package agree_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/agree"
)

func TestQuickstartShape(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 8, Protocol: agree.ProtocolCRW,
		Faults: agree.CoordinatorCrashes(2)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.Rounds != 3 {
		t.Errorf("rounds = %d, want 3 (= f+1)", rep.Rounds)
	}
	if rep.Faults() != 2 {
		t.Errorf("faults = %d, want 2", rep.Faults())
	}
}

func TestAllProtocolsFailureFree(t *testing.T) {
	for _, p := range []agree.Protocol{agree.ProtocolCRW, agree.ProtocolEarlyStop, agree.ProtocolFloodSet} {
		rep, err := agree.Run(agree.Config{N: 6, Protocol: p})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if rep.ConsensusErr != nil {
			t.Errorf("%s: %v", p, rep.ConsensusErr)
		}
		if len(rep.Decisions) != 6 {
			t.Errorf("%s: %d deciders, want 6", p, len(rep.Decisions))
		}
	}
}

func TestRoundCountsMatchTheory(t *testing.T) {
	// Failure-free round counts: CRW 1, EarlyStop 2, FloodSet t+1.
	const n, tt = 6, 3
	cases := []struct {
		p    agree.Protocol
		want int
	}{
		{agree.ProtocolCRW, 1},
		{agree.ProtocolEarlyStop, 2},
		{agree.ProtocolFloodSet, tt + 1},
	}
	for _, c := range cases {
		rep, err := agree.Run(agree.Config{N: n, T: tt, Protocol: c.p})
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if rep.MaxDecideRound() != c.want {
			t.Errorf("%s: decide round = %d, want %d", c.p, rep.MaxDecideRound(), c.want)
		}
	}
}

func TestLockstepEngineOption(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 5, Engine: agree.EngineLockstep,
		Faults: agree.CoordinatorCrashes(1)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", rep.Rounds)
	}
}

func TestSimulateOnClassicOption(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 4, SimulateOnClassic: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.MacroRounds != 1 {
		t.Errorf("macro rounds = %d, want 1", rep.MacroRounds)
	}
	if rep.Rounds != 4 {
		t.Errorf("micro rounds = %d, want 4 (stride n)", rep.Rounds)
	}
	if _, err := agree.Run(agree.Config{N: 4, Protocol: agree.ProtocolFloodSet,
		SimulateOnClassic: true}); err == nil {
		t.Error("SimulateOnClassic accepted for a classic protocol")
	}
}

func TestTraceOption(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 3, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Transcript, "decide") {
		t.Errorf("transcript lacks decide events:\n%s", rep.Transcript)
	}
	if _, err := agree.Run(agree.Config{N: 3, Trace: true, Engine: agree.EngineLockstep}); err == nil {
		t.Error("trace accepted with lockstep engine")
	}
}

func TestScriptedFaults(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 4, Faults: agree.ScriptedFaults(map[int]agree.CrashPlan{
		1: {Round: 1, DeliverAllData: true, CtrlPrefix: 1},
	})})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.DecideRound[4] != 1 || rep.DecideRound[2] != 2 {
		t.Errorf("decide rounds = %v, want p4@1, p2@2", rep.DecideRound)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := agree.Run(agree.Config{N: 0}); err == nil {
		t.Error("accepted N=0")
	}
	if _, err := agree.Run(agree.Config{N: 3, Protocol: "bogus"}); err == nil {
		t.Error("accepted unknown protocol")
	}
	if _, err := agree.Run(agree.Config{N: 3, Engine: "bogus"}); err == nil {
		t.Error("accepted unknown engine")
	}
	if _, err := agree.Run(agree.Config{N: 3, Proposals: []int64{1}}); err == nil {
		t.Error("accepted proposal count mismatch")
	}
}

func TestCustomProposals(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 3, Proposals: []int64{7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range rep.Decisions {
		if v != 7 {
			t.Errorf("p%d decided %d, want 7 (p1's proposal)", id, v)
		}
	}
}

func TestPropertyFPlus1AcrossConfigs(t *testing.T) {
	// Property: for any n in [2,16] and f < n, the worst-case coordinator
	// killer yields decision at exactly round f+1 with uniform consensus.
	prop := func(nRaw, fRaw uint8) bool {
		n := int(nRaw%15) + 2
		f := int(fRaw) % n
		if f == n { // keep at least one process alive
			f = n - 1
		}
		rep, err := agree.Run(agree.Config{N: n, Faults: agree.CoordinatorCrashes(f)})
		if err != nil || rep.ConsensusErr != nil {
			return false
		}
		return rep.MaxDecideRound() == f+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEarlyStopBound(t *testing.T) {
	// Property: the classic baseline decides within min(f+2, t+1) under
	// random faults, and consensus always holds.
	prop := func(nRaw, seedRaw uint8) bool {
		n := int(nRaw%12) + 3
		tt := n - 1
		rep, err := agree.Run(agree.Config{N: n, T: tt, Protocol: agree.ProtocolEarlyStop,
			Faults: agree.RandomFaults(int64(seedRaw), 0.2, tt)})
		if err != nil || rep.ConsensusErr != nil {
			return false
		}
		bound := rep.Faults() + 2
		if tt+1 < bound {
			bound = tt + 1
		}
		return rep.MaxDecideRound() <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCRWUnderRandomFaults(t *testing.T) {
	// Property: uniform consensus and the f+1 bound hold under arbitrary
	// random fault injection, on both engines.
	prop := func(nRaw, seedRaw uint8, useLockstep bool) bool {
		n := int(nRaw%12) + 3
		engine := agree.EngineDeterministic
		if useLockstep {
			// The lockstep engine serializes adversary calls in scheduling
			// order; random adversaries are order-dependent, so restrict the
			// property to the deterministic engine for fault injection and
			// exercise lockstep failure-free.
			rep, err := agree.Run(agree.Config{N: n, Engine: agree.EngineLockstep})
			return err == nil && rep.ConsensusErr == nil && rep.MaxDecideRound() == 1
		}
		rep, err := agree.Run(agree.Config{N: n, Engine: engine,
			Faults: agree.RandomFaults(int64(seedRaw), 0.25, n-1)})
		if err != nil || rep.ConsensusErr != nil {
			return false
		}
		return rep.MaxDecideRound() <= rep.Faults()+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDiagramOption(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 4, Diagram: true,
		Faults: agree.CoordinatorCrashes(1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CRASH p1", "DECIDE", "legend"} {
		if !strings.Contains(rep.Diagram, want) {
			t.Errorf("diagram lacks %q:\n%s", want, rep.Diagram)
		}
	}
	// Diagram implies Trace.
	if rep.Transcript == "" {
		t.Error("Diagram did not populate the transcript")
	}
}
