package agree_test

import (
	"fmt"

	"repro/agree"
)

// The basic flow: run the paper's algorithm under the worst-case schedule
// for two crashes and observe the f+1 decision round.
func ExampleRun() {
	rep, err := agree.Run(agree.Config{
		N:      6,
		Faults: agree.CoordinatorCrashes(2),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rounds:", rep.Rounds)
	fmt.Println("faults:", rep.Faults())
	fmt.Println("consensus:", rep.ConsensusErr == nil)
	// Output:
	// rounds: 3
	// faults: 2
	// consensus: true
}

// Comparing the three protocols on the same failure-free system shows the
// round-complexity ladder of the paper's introduction: f+1 = 1 (extended
// model) vs min(f+2, t+1) = 2 vs t+1 (classic model).
func ExampleRun_baselines() {
	for _, p := range []agree.Protocol{
		agree.ProtocolCRW, agree.ProtocolEarlyStop, agree.ProtocolFloodSet,
	} {
		rep, err := agree.Run(agree.Config{N: 5, T: 3, Protocol: p})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d round(s)\n", p, rep.MaxDecideRound())
	}
	// Output:
	// crw: 1 round(s)
	// earlystop: 2 round(s)
	// floodset: 4 round(s)
}

// A dying coordinator that completes its data step but reaches only a prefix
// of its ordered commit sequence makes exactly the high-id processes decide
// early — the prefix-delivery rule of the extended model in action.
func ExampleRun_commitPrefix() {
	rep, err := agree.Run(agree.Config{
		N: 5,
		Faults: agree.ScriptedFaults(map[int]agree.CrashPlan{
			1: {Round: 1, DeliverAllData: true, CtrlPrefix: 2}, // commits reach p5, p4
		}),
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("p5 decided at round", rep.DecideRound[5])
	fmt.Println("p2 decided at round", rep.DecideRound[2])
	fmt.Println("agreement:", rep.ConsensusErr == nil)
	// Output:
	// p5 decided at round 1
	// p2 decided at round 2
	// agreement: true
}
