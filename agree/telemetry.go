package agree

// telemetry.go is the public face of internal/telemetry: the Telemetry
// attachment a run carries when Config.Telemetry is set, its export formats
// (Chrome trace_event JSON for Perfetto, deterministic metrics JSON, a plain
// text timeline), and the determinism law extended to telemetry — two runs of
// one configuration on a deterministic engine must export byte-identical
// artifacts.

import (
	"bytes"
	"fmt"

	"repro/internal/harness"
	"repro/internal/laws"
	"repro/internal/telemetry"
)

// Telemetry is a run's recorded spans and metric timelines over simulated
// time. It is attached to Report.Telemetry when Config.Telemetry is set and
// to ServeReport (via its Telemetry method) when ServeConfig.Telemetry is
// set. All content is simulated-time-only: on a deterministic engine it is a
// pure function of the configuration, byte-identical across runs, worker
// counts and machines.
type Telemetry struct {
	rec *telemetry.Recorder
}

// ChromeTrace renders the spans as Chrome trace_event JSON — an array of
// complete ("ph":"X") events with microsecond timestamps, one track per
// span source (engine rounds, DES event batches, service slots). The output
// loads directly in Perfetto (https://ui.perfetto.dev) and chrome://tracing.
// A nil Telemetry renders the empty array.
func (t *Telemetry) ChromeTrace() []byte {
	if t == nil {
		return []byte("[]")
	}
	return t.rec.ChromeTrace()
}

// MetricsJSON renders the metric timelines (per-round message/delivery/fault
// series, DES heap and pool series, service slot series) and the commit
// latency histogram as deterministic JSON: fixed series order, canonical
// float formatting, no map iteration anywhere.
func (t *Telemetry) MetricsJSON() []byte {
	if t == nil {
		return []byte("{}")
	}
	return t.rec.MetricsJSON()
}

// Timeline renders the spans as a human-readable text timeline, one line per
// span in deterministic order.
func (t *Telemetry) Timeline() string {
	if t == nil {
		return ""
	}
	return t.rec.Timeline()
}

// SlotTimelineJSON renders the service run's per-slot timeline — launch,
// commit, latency, batch size, rounds and cumulative throughput per slot —
// as deterministic JSON. Empty slot list for non-service runs.
func (t *Telemetry) SlotTimelineJSON() []byte {
	if t == nil {
		return []byte(`{"slots":[]}`)
	}
	return t.rec.SlotTimelineJSON()
}

// LatencyTable renders the commit-latency histogram as an aligned text
// table (power-of-two buckets, counts, cumulative shares); empty when the
// run observed no latencies.
func (t *Telemetry) LatencyTable() string {
	if t == nil {
		return ""
	}
	return t.rec.HistogramTable()
}

// VerifyTelemetryDeterminism checks the determinism law on the telemetry
// plane: two independent runs of one configuration must export byte-identical
// metrics JSON and byte-identical Chrome traces. This extends VerifyDeterminism
// (which pins the report) to the observability artifacts — a wall-clock reading
// or an iteration-order dependence anywhere in the telemetry path would break
// it. Like VerifyDeterminism it requires an engine with the deterministic
// capability.
func VerifyTelemetryDeterminism(cfg Config) error {
	engine := cfg.Engine
	if engine == "" {
		engine = EngineDeterministic
	}
	if caps, ok := harness.Lookup(harness.Kind(engine)); ok && !caps.Deterministic {
		return fmt.Errorf("agree: engine %q makes no determinism promise; VerifyTelemetryDeterminism requires a deterministic engine", engine)
	}
	cfg.Telemetry = true
	first, err := Run(cfg)
	if err != nil {
		return err
	}
	second, err := Run(cfg)
	if err != nil {
		return fmt.Errorf("agree: re-run failed: %w", err)
	}
	if a, b := first.Telemetry.MetricsJSON(), second.Telemetry.MetricsJSON(); !bytes.Equal(a, b) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("two runs of one configuration exported different metrics timelines:\n%s\nvs\n%s", a, b)}
	}
	if a, b := first.Telemetry.ChromeTrace(), second.Telemetry.ChromeTrace(); !bytes.Equal(a, b) {
		return &laws.Violation{Law: laws.LawDeterminism,
			Detail: fmt.Sprintf("two runs of one configuration exported different Chrome traces:\n%s\nvs\n%s", a, b)}
	}
	return nil
}
