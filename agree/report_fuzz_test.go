package agree

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReportRoundTrip fuzzes the determinism law's serialization leg: any
// byte string that deserializes into a Report must reserialize to the exact
// bytes its first serialization produced. The seed corpus under
// testdata/fuzz/FuzzReportRoundTrip holds reports captured from real runs of
// all three engines (failure-free, coordinator crashes, early stopping with
// crashed destinations, timed with omissions and a consensus error).
func FuzzReportRoundTrip(f *testing.F) {
	f.Fuzz(func(t *testing.T, data []byte) {
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			return // not a report; nothing to round-trip
		}
		j1, err := json.Marshal(&rep)
		if err != nil {
			t.Fatalf("report deserialized from %q does not serialize: %v", data, err)
		}
		var rep2 Report
		if err := json.Unmarshal(j1, &rep2); err != nil {
			t.Fatalf("serialized report does not deserialize: %v\n%s", err, j1)
		}
		j2, err := json.Marshal(&rep2)
		if err != nil {
			t.Fatalf("round-tripped report does not reserialize: %v", err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("report changed across a JSON round-trip:\n%s\nvs\n%s", j1, j2)
		}
	})
}
