package agree_test

import (
	"strings"
	"testing"

	"repro/agree"
)

// TestFaultSpecValidation is the table-driven edge-case audit of FaultSpec
// normalization. Every rejected case below used to be silently clamped or
// ignored (a negative f crashed nobody, f >= n crashed everybody reachable,
// an out-of-range control prefix became 0, a scripted crash of a
// nonexistent process never fired), making misconfigured campaigns look
// like passing ones; they are configuration errors now.
func TestFaultSpecValidation(t *testing.T) {
	const n = 4
	cases := []struct {
		name    string
		faults  agree.FaultSpec
		wantErr string // substring of the error; "" = must be accepted
	}{
		{"no faults", agree.NoFaults(), ""},
		{"coordinator f=0", agree.CoordinatorCrashes(0), ""},
		{"coordinator f=n-1", agree.CoordinatorCrashes(n - 1), ""},
		{"coordinator f negative", agree.CoordinatorCrashes(-1), "negative"},
		{"coordinator f=n", agree.CoordinatorCrashes(n), "survivor"},
		{"coordinator f>n", agree.CoordinatorCrashes(n + 3), "survivor"},
		{"delivering ctrl=CtrlAll", agree.CoordinatorCrashesDelivering(1, agree.CtrlAll), ""},
		{"delivering ctrl=n-1", agree.CoordinatorCrashesDelivering(1, n-1), ""},
		{"delivering ctrl below CtrlAll", agree.CoordinatorCrashesDelivering(1, -2), "control prefix"},
		{"delivering ctrl=n", agree.CoordinatorCrashesDelivering(1, n), "control prefix"},
		{"random prob=0", agree.RandomFaults(1, 0, 2), ""},
		{"random prob=1", agree.RandomFaults(1, 1, 2), ""},
		{"random prob negative", agree.RandomFaults(1, -0.1, 2), "probability"},
		{"random prob>1", agree.RandomFaults(1, 1.5, 2), "probability"},
		{"random max negative", agree.RandomFaults(1, 0.5, -1), "negative"},
		{"random max=n", agree.RandomFaults(1, 0.5, n), "survivor"},
		{"script in range", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1}}), ""},
		{"script round 0", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 0}}), "1-based"},
		{"script round negative", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: -3}}), "1-based"},
		{"script nonexistent proc", agree.ScriptedFaults(map[int]agree.CrashPlan{n + 5: {Round: 1}}), "nonexistent"},
		{"script proc 0", agree.ScriptedFaults(map[int]agree.CrashPlan{0: {Round: 1}}), "nonexistent"},
		{"script ctrl below CtrlAll", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1, CtrlPrefix: -4}}), "control prefix"},
		{"script ctrl=n", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1, DeliverAllData: true, CtrlPrefix: n}}), "control prefix"},
		{"script crashes everyone", agree.ScriptedFaults(map[int]agree.CrashPlan{
			1: {Round: 1}, 2: {Round: 1}, 3: {Round: 1}, 4: {Round: 1}}), "survivor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := agree.Run(agree.Config{N: n, Faults: tc.faults})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if rep.ConsensusErr != nil {
					t.Fatalf("consensus: %v", rep.ConsensusErr)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestOmissionFaultSpecValidation mirrors TestFaultSpecValidation for the
// omission-fault constructors: probabilities outside [0, 1], out-of-range
// processes and rounds, oversized receive masks, duplicate per-round plans
// and omissions scheduled at or after a crash are configuration errors, not
// silently inert scenarios.
func TestOmissionFaultSpecValidation(t *testing.T) {
	const n = 4
	plan := func(p int, ops ...agree.OmissionPlan) map[int][]agree.OmissionPlan {
		return map[int][]agree.OmissionPlan{p: ops}
	}
	cases := []struct {
		name    string
		faults  agree.FaultSpec
		wantErr string // substring of the error; "" = must be accepted
	}{
		{"random ok", agree.OmissionFaults(1, 0.5, 0.5, 2), ""},
		{"random probs at bounds", agree.OmissionFaults(1, 0, 1, n), ""},
		{"random send prob negative", agree.OmissionFaults(1, -0.1, 0, 1), "probability"},
		{"random send prob >1", agree.OmissionFaults(1, 1.5, 0, 1), "probability"},
		{"random recv prob negative", agree.OmissionFaults(1, 0, -0.5, 1), "probability"},
		{"random recv prob >1", agree.OmissionFaults(1, 0, 2, 1), "probability"},
		{"random budget negative", agree.OmissionFaults(1, 0.5, 0, -1), "negative"},
		{"random budget >n", agree.OmissionFaults(1, 0.5, 0, n+1), "exceeds"},
		{"scripted ok", agree.ScriptedOmissions(plan(2, agree.OmissionPlan{Round: 1, DropAllSend: true})), ""},
		{"scripted repeatable rounds", agree.ScriptedOmissions(plan(2,
			agree.OmissionPlan{Round: 1, DropAllSend: true},
			agree.OmissionPlan{Round: 2, DropAllRecv: true})), ""},
		{"scripted nonexistent proc", agree.ScriptedOmissions(plan(n+3, agree.OmissionPlan{Round: 1})), "nonexistent"},
		{"scripted proc 0", agree.ScriptedOmissions(plan(0, agree.OmissionPlan{Round: 1})), "nonexistent"},
		{"scripted round 0", agree.ScriptedOmissions(plan(2, agree.OmissionPlan{Round: 0})), "1-based"},
		{"scripted round negative", agree.ScriptedOmissions(plan(2, agree.OmissionPlan{Round: -2})), "1-based"},
		{"scripted duplicate round", agree.ScriptedOmissions(plan(2,
			agree.OmissionPlan{Round: 1, DropAllSend: true},
			agree.OmissionPlan{Round: 1, DropAllRecv: true})), "two omission plans"},
		{"scripted recv mask too long", agree.ScriptedOmissions(plan(2,
			agree.OmissionPlan{Round: 1, Recv: make([]bool, n+1)})), "senders"},
		{"mixed ok", agree.CrashesWithOmissions(
			map[int]agree.CrashPlan{3: {Round: 2}},
			map[int][]agree.OmissionPlan{3: {{Round: 1, DropAllRecv: true}}}), ""},
		{"mixed omission at crash round", agree.CrashesWithOmissions(
			map[int]agree.CrashPlan{3: {Round: 1}},
			map[int][]agree.OmissionPlan{3: {{Round: 1, DropAllSend: true}}}), "at or after its crash round"},
		{"mixed omission after crash round", agree.CrashesWithOmissions(
			map[int]agree.CrashPlan{3: {Round: 1}},
			map[int][]agree.OmissionPlan{3: {{Round: 2, DropAllSend: true}}}), "at or after its crash round"},
		{"mixed crash rules still apply", agree.CrashesWithOmissions(
			map[int]agree.CrashPlan{n + 1: {Round: 1}}, nil), "nonexistent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := agree.Run(agree.Config{N: n, Faults: tc.faults})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				// Omission scenarios may legitimately violate consensus —
				// that is the whole point of the fault model — so only the
				// configuration acceptance is asserted, not the verdict.
				_ = rep
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReplayFaultsOmissionValidation covers the fuzz-script spec: omission
// clauses referencing nonexistent processes are rejected at Run time exactly
// like crash clauses.
func TestReplayFaultsOmissionValidation(t *testing.T) {
	const n = 4
	cases := []struct {
		script  string
		wantErr string
	}{
		{"p2@r1:so:0/", ""},
		{"p2@r1:ro:0111", ""},
		{"p9@r1:ro:0", "nonexistent"},
		{"p2@r1:ro:01111", "senders"},
	}
	for _, tc := range cases {
		spec, err := agree.ReplayFaults(tc.script)
		if err != nil {
			t.Fatalf("ReplayFaults(%q): %v", tc.script, err)
		}
		_, err = agree.Run(agree.Config{N: n, Faults: spec})
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Run with %q rejected: %v", tc.script, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Run with %q: err %v, want substring %q", tc.script, err, tc.wantErr)
		}
	}
}

// TestOmissionBoundaryBehavior pins the accepted boundary semantics: a
// zero-probability random omission spec omits nothing, and the scripted
// single-DATA omission reproduces the canonical reliable-channel
// counterexample (agreement broken with zero crashes) with the omissive
// process reported in the Report.
func TestOmissionBoundaryBehavior(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 6, Faults: agree.OmissionFaults(7, 0, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OmissionFaulty() != 0 || rep.ConsensusErr != nil {
		t.Errorf("prob 0 spec: %d omissive, consensus %v", rep.OmissionFaulty(), rep.ConsensusErr)
	}

	rep, err = agree.Run(agree.Config{N: 3, Faults: agree.ScriptedOmissions(map[int][]agree.OmissionPlan{
		1: {{Round: 1, SendData: []bool{false}}}, // DATA p1->p2 omitted, COMMIT flows
	})})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr == nil {
		t.Error("single-DATA omission did not break consensus")
	}
	if rep.Faults() != 0 {
		t.Errorf("crashes = %d, want 0", rep.Faults())
	}
	if rep.OmissionFaulty() != 1 || rep.Omissive[1] != 1 {
		t.Errorf("omissive = %v, want p1 with 1 omissive round", rep.Omissive)
	}
}

// TestFaultSpecBoundaryBehavior pins the semantics of the accepted
// boundary cases: probability 0 never crashes, probability 1 crashes
// exactly the budget, and a full CtrlAll prefix delivers the whole control
// sequence (crashing the round-1 coordinator after a complete send phase
// still lets everyone decide in round 1).
func TestFaultSpecBoundaryBehavior(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 6, Faults: agree.RandomFaults(7, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() != 0 {
		t.Errorf("prob 0 crashed %d processes", rep.Faults())
	}

	rep, err = agree.Run(agree.Config{N: 6, Faults: agree.RandomFaults(7, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() != 2 {
		t.Errorf("prob 1 with budget 2 crashed %d processes, want exactly 2", rep.Faults())
	}
	if rep.ConsensusErr != nil {
		t.Errorf("consensus: %v", rep.ConsensusErr)
	}

	rep, err = agree.Run(agree.Config{N: 6, Faults: agree.CoordinatorCrashesDelivering(1, agree.CtrlAll)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.MaxDecideRound() != 1 {
		t.Errorf("full-delivery coordinator crash delayed decision to round %d, want 1", rep.MaxDecideRound())
	}
}
