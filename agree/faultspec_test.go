package agree_test

import (
	"strings"
	"testing"

	"repro/agree"
)

// TestFaultSpecValidation is the table-driven edge-case audit of FaultSpec
// normalization. Every rejected case below used to be silently clamped or
// ignored (a negative f crashed nobody, f >= n crashed everybody reachable,
// an out-of-range control prefix became 0, a scripted crash of a
// nonexistent process never fired), making misconfigured campaigns look
// like passing ones; they are configuration errors now.
func TestFaultSpecValidation(t *testing.T) {
	const n = 4
	cases := []struct {
		name    string
		faults  agree.FaultSpec
		wantErr string // substring of the error; "" = must be accepted
	}{
		{"no faults", agree.NoFaults(), ""},
		{"coordinator f=0", agree.CoordinatorCrashes(0), ""},
		{"coordinator f=n-1", agree.CoordinatorCrashes(n - 1), ""},
		{"coordinator f negative", agree.CoordinatorCrashes(-1), "negative"},
		{"coordinator f=n", agree.CoordinatorCrashes(n), "survivor"},
		{"coordinator f>n", agree.CoordinatorCrashes(n + 3), "survivor"},
		{"delivering ctrl=CtrlAll", agree.CoordinatorCrashesDelivering(1, agree.CtrlAll), ""},
		{"delivering ctrl=n-1", agree.CoordinatorCrashesDelivering(1, n-1), ""},
		{"delivering ctrl below CtrlAll", agree.CoordinatorCrashesDelivering(1, -2), "control prefix"},
		{"delivering ctrl=n", agree.CoordinatorCrashesDelivering(1, n), "control prefix"},
		{"random prob=0", agree.RandomFaults(1, 0, 2), ""},
		{"random prob=1", agree.RandomFaults(1, 1, 2), ""},
		{"random prob negative", agree.RandomFaults(1, -0.1, 2), "probability"},
		{"random prob>1", agree.RandomFaults(1, 1.5, 2), "probability"},
		{"random max negative", agree.RandomFaults(1, 0.5, -1), "negative"},
		{"random max=n", agree.RandomFaults(1, 0.5, n), "survivor"},
		{"script in range", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1}}), ""},
		{"script round 0", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 0}}), "1-based"},
		{"script round negative", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: -3}}), "1-based"},
		{"script nonexistent proc", agree.ScriptedFaults(map[int]agree.CrashPlan{n + 5: {Round: 1}}), "nonexistent"},
		{"script proc 0", agree.ScriptedFaults(map[int]agree.CrashPlan{0: {Round: 1}}), "nonexistent"},
		{"script ctrl below CtrlAll", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1, CtrlPrefix: -4}}), "control prefix"},
		{"script ctrl=n", agree.ScriptedFaults(map[int]agree.CrashPlan{2: {Round: 1, DeliverAllData: true, CtrlPrefix: n}}), "control prefix"},
		{"script crashes everyone", agree.ScriptedFaults(map[int]agree.CrashPlan{
			1: {Round: 1}, 2: {Round: 1}, 3: {Round: 1}, 4: {Round: 1}}), "survivor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := agree.Run(agree.Config{N: n, Faults: tc.faults})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if rep.ConsensusErr != nil {
					t.Fatalf("consensus: %v", rep.ConsensusErr)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestFaultSpecBoundaryBehavior pins the semantics of the accepted
// boundary cases: probability 0 never crashes, probability 1 crashes
// exactly the budget, and a full CtrlAll prefix delivers the whole control
// sequence (crashing the round-1 coordinator after a complete send phase
// still lets everyone decide in round 1).
func TestFaultSpecBoundaryBehavior(t *testing.T) {
	rep, err := agree.Run(agree.Config{N: 6, Faults: agree.RandomFaults(7, 0, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() != 0 {
		t.Errorf("prob 0 crashed %d processes", rep.Faults())
	}

	rep, err = agree.Run(agree.Config{N: 6, Faults: agree.RandomFaults(7, 1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults() != 2 {
		t.Errorf("prob 1 with budget 2 crashed %d processes, want exactly 2", rep.Faults())
	}
	if rep.ConsensusErr != nil {
		t.Errorf("consensus: %v", rep.ConsensusErr)
	}

	rep, err = agree.Run(agree.Config{N: 6, Faults: agree.CoordinatorCrashesDelivering(1, agree.CtrlAll)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConsensusErr != nil {
		t.Fatal(rep.ConsensusErr)
	}
	if rep.MaxDecideRound() != 1 {
		t.Errorf("full-delivery coordinator crash delayed decision to round %d, want 1", rep.MaxDecideRound())
	}
}
